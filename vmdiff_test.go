package repro

// Differential correctness harness for the bytecode VM execution tier:
// every built-in benchmark program runs on both the closure-tree
// interpreter (the reference tier) and the VM, at full range and under
// a chunked multi-device-style partition, and the resulting buffers and
// dynamic profiles must be byte-identical — bit-for-bit float32 values
// and field-for-field counts. A randomized-input property test covers
// kernels written to stress VM-specific paths (fusion shapes, helpers,
// divergent barriers, select, casts).

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/inspire"
)

// compileBothTiers lowers MiniCL source and compiles the named kernel on
// the closure tier, on the scalar VM tier (which must lower
// successfully), and under TierAuto (which additionally attaches the
// vector tier whenever the kernel vectorizes).
func compileBothTiers(t *testing.T, name, source, kernel string) (cl, vmc, atc *exec.Compiled) {
	t.Helper()
	u, err := inspire.LowerSource(name, source)
	if err != nil {
		t.Fatalf("lower %s: %v", name, err)
	}
	inspire.Optimize(u)
	k := u.Kernel(kernel)
	if k == nil {
		t.Fatalf("%s: kernel %q not found", name, kernel)
	}
	cl, err = exec.CompileTier(k, exec.TierClosure)
	if err != nil {
		t.Fatalf("%s: closure compile: %v", name, err)
	}
	vmc, err = exec.CompileTier(k, exec.TierVM)
	if err != nil {
		t.Fatalf("%s: vm compile: %v", name, err)
	}
	if vmc.Tier() != exec.TierVM {
		t.Fatalf("%s: expected VM tier, got %v", name, vmc.Tier())
	}
	atc, err = exec.CompileTier(k, exec.TierAuto)
	if err != nil {
		t.Fatalf("%s: auto compile: %v", name, err)
	}
	return cl, vmc, atc
}

// vecExpected names the built-in programs whose control flow is
// group-uniform at the bytecode level: TierAuto must put them on the
// vector tier. The rest carry varying loop bounds or divergent branches
// inside loop bodies and stay scalar.
var vecExpected = map[string]bool{
	"blackscholes": true, "nbody": true, "md": true, "bitonicsort": true,
	"matmul": true, "matvec": true, "transpose": true, "atax": true,
	"convolution2d": true, "stencil2d": true, "hotspot": true, "srad": true,
	"pathfinder": true, "vecadd": true, "saxpy": true,
}

// diffBuffers requires bitwise-equal buffer contents across tiers.
func diffBuffers(t *testing.T, ctx string, ca, va []exec.Arg) {
	t.Helper()
	for i := range ca {
		cb, vb := ca[i].Buf, va[i].Buf
		if cb == nil {
			continue
		}
		if len(cb.F) != len(vb.F) || len(cb.I) != len(vb.I) {
			t.Fatalf("%s: arg %d: buffer shape mismatch", ctx, i)
		}
		for j := range cb.F {
			if math.Float32bits(cb.F[j]) != math.Float32bits(vb.F[j]) {
				t.Fatalf("%s: arg %d float[%d]: closure %v (%#x) vs vm %v (%#x)",
					ctx, i, j, cb.F[j], math.Float32bits(cb.F[j]), vb.F[j], math.Float32bits(vb.F[j]))
			}
		}
		for j := range cb.I {
			if cb.I[j] != vb.I[j] {
				t.Fatalf("%s: arg %d int[%d]: closure %d vs vm %d", ctx, i, j, cb.I[j], vb.I[j])
			}
		}
	}
}

// diffProfiles requires field-identical dynamic profiles across tiers.
func diffProfiles(t *testing.T, ctx string, cp, vp *exec.Profile) {
	t.Helper()
	if cp.Global0 != vp.Global0 || len(cp.Buckets) != len(vp.Buckets) {
		t.Fatalf("%s: profile shape: closure (%d,%d) vs vm (%d,%d)",
			ctx, cp.Global0, len(cp.Buckets), vp.Global0, len(vp.Buckets))
	}
	for i := range cp.Buckets {
		if cp.Buckets[i] != vp.Buckets[i] {
			t.Fatalf("%s: profile bucket %d:\nclosure %+v\nvm      %+v", ctx, i, cp.Buckets[i], vp.Buckets[i])
		}
	}
}

// runTier executes a launch (all iterations) under opts, returning the
// per-iteration profiles.
func runTier(t *testing.T, ctx string, c *exec.Compiled, args []exec.Arg, nd exec.NDRange, iters int, opts exec.RunOptions) []*exec.Profile {
	t.Helper()
	if iters < 1 {
		iters = 1
	}
	profs := make([]*exec.Profile, iters)
	for it := 0; it < iters; it++ {
		p, err := c.Run(args, nd, opts)
		if err != nil {
			t.Fatalf("%s: iteration %d: %v", ctx, it, err)
		}
		profs[it] = p
	}
	return profs
}

// chunks splits the dim-0 extent into an uneven two-device partition
// aligned to the work-group size, mimicking a CPU/GPU split.
func chunks(nd exec.NDRange) [][2]int {
	g0 := nd.Global[0]
	l0 := nd.Local[0]
	if l0 == 0 {
		if g0%exec.DefaultLocal0 == 0 {
			l0 = exec.DefaultLocal0
		} else {
			l0 = 1
		}
	}
	groups := g0 / l0
	if groups < 2 {
		return [][2]int{{0, g0}}
	}
	// ~30/70 split rounded to a group boundary.
	mid := (groups*3/10 + 1) * l0
	if mid >= g0 {
		mid = g0 - l0
	}
	return [][2]int{{0, mid}, {mid, g0}}
}

// TestVMDifferentialSuite runs all built-in benchmark programs on both
// execution tiers and requires byte-identical buffers and profiles, at
// full range and under a chunked two-device partition.
func TestVMDifferentialSuite(t *testing.T) {
	progs := bench.All()
	if len(progs) != 23 {
		t.Fatalf("expected the 23-program suite, got %d", len(progs))
	}
	// Floor on vector-tier coverage: the per-program tier assertions
	// below enforce the exact expected set, and this guard keeps anyone
	// from quietly shrinking that set when a program regresses to
	// scalar — 15 of the 23 programs must stay vectorizable.
	if nvec := len(vecExpected); nvec < 15 {
		t.Fatalf("vectorizable floor: %d programs in vecExpected, need >= 15", nvec)
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			cl, vmc, atc := compileBothTiers(t, p.Name, p.Source, p.Kernel)
			if want := vecExpected[p.Name]; want != (atc.Tier() == exec.TierVec) {
				t.Fatalf("%s: auto tier %v (vec expected: %v, vecErr: %v)",
					p.Name, atc.Tier(), want, atc.VecError())
			}

			// Full-range run, every application iteration compared.
			ci, err := p.Instance(0)
			if err != nil {
				t.Fatal(err)
			}
			vi, err := p.Instance(0)
			if err != nil {
				t.Fatal(err)
			}
			ai, err := p.Instance(0)
			if err != nil {
				t.Fatal(err)
			}
			iters := p.Iterations
			if iters < 1 {
				iters = 1
			}
			for it := 0; it < iters; it++ {
				ctx := fmt.Sprintf("%s full iter %d", p.Name, it)
				cp := runTier(t, ctx+" closure", cl, ci.Args, ci.ND, 1, exec.RunOptions{})[0]
				vp := runTier(t, ctx+" vm", vmc, vi.Args, vi.ND, 1, exec.RunOptions{})[0]
				ap := runTier(t, ctx+" auto", atc, ai.Args, ai.ND, 1, exec.RunOptions{})[0]
				diffProfiles(t, ctx, cp, vp)
				diffProfiles(t, ctx+" (auto)", cp, ap)
				diffBuffers(t, ctx, ci.Args, vi.Args)
				diffBuffers(t, ctx+" (auto)", ci.Args, ai.Args)
			}

			// Chunked partition run on fresh instances.
			ci2, err := p.Instance(0)
			if err != nil {
				t.Fatal(err)
			}
			vi2, err := p.Instance(0)
			if err != nil {
				t.Fatal(err)
			}
			ai2, err := p.Instance(0)
			if err != nil {
				t.Fatal(err)
			}
			for it := 0; it < iters; it++ {
				for _, ch := range chunks(ci2.ND) {
					ctx := fmt.Sprintf("%s chunk [%d,%d) iter %d", p.Name, ch[0], ch[1], it)
					opts := exec.RunOptions{Lo: ch[0], Hi: ch[1]}
					cp := runTier(t, ctx+" closure", cl, ci2.Args, ci2.ND, 1, opts)[0]
					vp := runTier(t, ctx+" vm", vmc, vi2.Args, vi2.ND, 1, opts)[0]
					ap := runTier(t, ctx+" auto", atc, ai2.Args, ai2.ND, 1, opts)[0]
					diffProfiles(t, ctx, cp, vp)
					diffProfiles(t, ctx+" (auto)", cp, ap)
				}
				diffBuffers(t, fmt.Sprintf("%s chunked iter %d", p.Name, it), ci2.Args, vi2.Args)
				diffBuffers(t, fmt.Sprintf("%s chunked iter %d (auto)", p.Name, it), ci2.Args, ai2.Args)
			}

			// The VM and auto results must still pass the program's own
			// verifier.
			if err := p.Verify(vi, 0); err != nil {
				t.Fatalf("%s: vm output fails program verifier: %v", p.Name, err)
			}
			if err := p.Verify(ai, 0); err != nil {
				t.Fatalf("%s: auto output fails program verifier: %v", p.Name, err)
			}
		})
	}
}

// TestVMDifferentialBarrierModes reruns the barrier kernels of the suite
// under every explicit barrier execution mode on both tiers.
func TestVMDifferentialBarrierModes(t *testing.T) {
	modes := []struct {
		name string
		mode exec.BarrierMode
	}{
		{"auto", exec.BarrierAuto},
		{"pooled", exec.BarrierPooled},
		{"spawn", exec.BarrierSpawn},
	}
	for _, p := range bench.All() {
		p := p
		cl, vmc, atc := compileBothTiers(t, p.Name, p.Source, p.Kernel)
		if !cl.HasBarrier() {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, m := range modes {
				ci, err := p.Instance(0)
				if err != nil {
					t.Fatal(err)
				}
				vi, err := p.Instance(0)
				if err != nil {
					t.Fatal(err)
				}
				ai, err := p.Instance(0)
				if err != nil {
					t.Fatal(err)
				}
				iters := p.Iterations
				if iters < 1 {
					iters = 1
				}
				ctx := fmt.Sprintf("%s mode %s", p.Name, m.name)
				cp := runTier(t, ctx+" closure", cl, ci.Args, ci.ND, iters, exec.RunOptions{Barrier: m.mode})
				vp := runTier(t, ctx+" vm", vmc, vi.Args, vi.ND, iters, exec.RunOptions{Barrier: m.mode})
				ap := runTier(t, ctx+" auto", atc, ai.Args, ai.ND, iters, exec.RunOptions{Barrier: m.mode})
				for it := range cp {
					diffProfiles(t, fmt.Sprintf("%s iter %d", ctx, it), cp[it], vp[it])
					diffProfiles(t, fmt.Sprintf("%s iter %d (auto)", ctx, it), cp[it], ap[it])
				}
				diffBuffers(t, ctx, ci.Args, vi.Args)
				diffBuffers(t, ctx+" (auto)", ci.Args, ai.Args)
			}
		})
	}
}

// vmPropKernels stress VM-specific lowering paths with shapes the suite
// may not cover: fusion candidates split across branches, helper calls
// with buffer and scalar arguments, divergent barriers, selects, casts,
// and fault-adjacent index arithmetic.
var vmPropKernels = []struct {
	name   string
	source string
	kernel string
	nargs  int // float buffers bound, plus one int scalar n
	local  int
	escape bool // work items touch lanes other than their own
}{
	{
		name: "fusion_shapes",
		source: `
kernel void k(global float* a, global float* b, global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float x = a[i] * b[i] + a[i];      // mul-add + load-op shapes
        float y = b[i] * 3.0f;
        int j = i * 4 + 1;                 // const-imm + mul-add int shapes
        int m = j % n;
        out[i] = x + y * a[m];
    }
}
`,
		kernel: "k", nargs: 3,
	},
	{
		name: "helper_calls",
		source: `
float blend(global float* p, int i, float w) {
    if (w < 0.0f) { return -w * p[i]; }
    return w * p[i] + 1.0f;
}
int wrap(int i, int n) { return (i * 7 + 3) % n; }
kernel void k(global float* a, global float* b, global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = blend(a, wrap(i, n), b[i] - 0.5f) + blend(b, i, a[i]);
    }
}
`,
		kernel: "k", nargs: 3, escape: true,
	},
	{
		name: "divergent_barrier",
		source: `
kernel void k(global float* a, global float* out, local float* tile, int n) {
    int l = get_local_id(0);
    int i = get_global_id(0);
    if (l % 2 == 0) {
        tile[l] = a[i] * 2.0f;
        barrier(1);
    } else {
        tile[l] = a[i] + 1.0f;
        barrier(1);
    }
    int other = get_local_size(0) - 1 - l;
    out[i] = tile[other] + tile[l];
}
`,
		kernel: "k", nargs: 2, local: 16, escape: true,
	},
	{
		name: "select_cast_mix",
		source: `
kernel void k(global float* a, global float* b, global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        float v = a[i];
        int q = (int)(v * 8.0f);
        float w = (q > 2) ? b[i] : -b[i];
        bool big = fabs(v) > 0.5f && q != 3;
        out[i] = big ? (w + (float)q) : fmin(w, v);
    }
}
`,
		kernel: "k", nargs: 3,
	},
	{
		name: "loop_accum",
		source: `
kernel void k(global float* a, global float* b, global float* out, int n) {
    int i = get_global_id(0);
    float acc = 0.0f;
    for (int j = 0; j < 8; j = j + 1) {
        int idx = (i + j * 5) % n;
        acc = mad(a[idx], b[idx], acc);
        if (acc > 100.0f) { break; }
    }
    while (acc < -4.0f) { acc = acc * 0.5f + 1.0f; }
    out[i] = acc;
}
`,
		kernel: "k", nargs: 3, escape: true,
	},
}

// TestVMDifferentialRandomized is the property test: each stress kernel
// runs on both tiers over multiple randomized inputs; buffers and
// profiles must be byte-identical every time.
func TestVMDifferentialRandomized(t *testing.T) {
	const n = 512
	const rounds = 8
	for _, tc := range vmPropKernels {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cl, vmc, atc := compileBothTiers(t, tc.name, tc.source, tc.kernel)
			rng := rand.New(rand.NewSource(0xd1ff + int64(len(tc.name))))
			for round := 0; round < rounds; round++ {
				mkArgs := func(data [][]float32) []exec.Arg {
					var args []exec.Arg
					for b := 0; b < tc.nargs; b++ {
						buf := exec.NewFloatBuffer(n)
						copy(buf.F, data[b])
						args = append(args, exec.BufArg(buf))
					}
					if tc.local > 0 {
						args = append(args, exec.LocalArg(tc.local))
					}
					args = append(args, exec.IntArg(n))
					return args
				}
				data := make([][]float32, tc.nargs)
				for b := range data {
					data[b] = make([]float32, n)
					for j := range data[b] {
						data[b][j] = float32(rng.Float64()*4 - 2)
					}
				}
				ca, va, aa := mkArgs(data), mkArgs(data), mkArgs(data)
				nd := exec.ND1(n)
				if tc.local > 0 {
					nd.Local[0] = tc.local
				}
				ctx := fmt.Sprintf("%s round %d", tc.name, round)
				cp := runTier(t, ctx+" closure", cl, ca, nd, 1, exec.RunOptions{})[0]
				vp := runTier(t, ctx+" vm", vmc, va, nd, 1, exec.RunOptions{})[0]
				ap := runTier(t, ctx+" auto", atc, aa, nd, 1, exec.RunOptions{})[0]
				diffProfiles(t, ctx, cp, vp)
				diffProfiles(t, ctx+" (auto)", cp, ap)
				diffBuffers(t, ctx, ca, va)
				diffBuffers(t, ctx+" (auto)", ca, aa)
			}
		})
	}
}

// TestVMDifferentialReconvergence pins the vector tier's divergence
// re-convergence path end to end: a kernel whose groups all split at a
// varying forward branch must still land on the vector tier under
// TierAuto, re-form at the join point (reported through the profile's
// VecReconverges counter, with zero scalar bails), and produce buffers
// and per-bucket profiles byte-identical to the closure tier — at full
// range and under a chunked partition.
func TestVMDifferentialReconvergence(t *testing.T) {
	source := `
kernel void k(global float* a, global float* out, int n) {
    int i = get_global_id(0);
    float x = a[i];
    float r;
    if (x > 0.0f) {
        r = sqrt(x) + x * 1.5f;
    } else {
        r = fabs(x) * 0.5f - 1.0f;
    }
    out[i] = r;
}
`
	cl, _, atc := compileBothTiers(t, "reconverge", source, "k")
	if atc.Tier() != exec.TierVec {
		t.Fatalf("auto tier = %v, want vec (vecErr: %v)", atc.Tier(), atc.VecError())
	}
	const n = 512
	mk := func() []exec.Arg {
		a, out := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		for i := range a.F {
			a.F[i] = float32(1-2*(i%2)) * (0.5 + float32(i%5)*0.25)
		}
		return []exec.Arg{exec.BufArg(a), exec.BufArg(out), exec.IntArg(n)}
	}
	nd := exec.NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{16, 1, 1}}

	ca, aa := mk(), mk()
	cp := runTier(t, "reconverge closure", cl, ca, nd, 1, exec.RunOptions{})[0]
	ap := runTier(t, "reconverge auto", atc, aa, nd, 1, exec.RunOptions{})[0]
	if ap.VecDivergences == 0 || ap.VecReconverges == 0 {
		t.Fatalf("auto tier: divergences=%d reconverges=%d, want both > 0",
			ap.VecDivergences, ap.VecReconverges)
	}
	if ap.VecScalarBails != 0 {
		t.Errorf("auto tier: scalar bails = %d, want 0", ap.VecScalarBails)
	}
	diffProfiles(t, "reconverge full", cp, ap)
	diffBuffers(t, "reconverge full", ca, aa)

	ca2, aa2 := mk(), mk()
	var rec int64
	for _, ch := range chunks(nd) {
		ctx := fmt.Sprintf("reconverge chunk [%d,%d)", ch[0], ch[1])
		opts := exec.RunOptions{Lo: ch[0], Hi: ch[1]}
		cp := runTier(t, ctx+" closure", cl, ca2, nd, 1, opts)[0]
		ap := runTier(t, ctx+" auto", atc, aa2, nd, 1, opts)[0]
		rec += ap.VecReconverges
		diffProfiles(t, ctx, cp, ap)
	}
	if rec == 0 {
		t.Errorf("chunked runs recorded no re-convergences")
	}
	diffBuffers(t, "reconverge chunked", ca2, aa2)
}

// TestVMFaultParity checks that runtime faults surface with identical
// error messages on both tiers.
func TestVMFaultParity(t *testing.T) {
	cases := []struct {
		name   string
		source string
	}{
		{
			name: "oob_load",
			source: `
kernel void k(global float* a, global float* out, int n) {
    int i = get_global_id(0);
    out[i] = a[i + n];
}
`,
		},
		{
			name: "oob_store",
			source: `
kernel void k(global float* a, global float* out, int n) {
    int i = get_global_id(0);
    out[i * 2 + n] = a[i];
}
`,
		},
		{
			name: "div_zero",
			source: `
kernel void k(global float* a, global float* out, int n) {
    int i = get_global_id(0);
    int d = n - n;
    out[i] = a[i % d];
}
`,
		},
		{
			name: "helper_oob",
			source: `
float pick(global float* src, int i) { return src[i + 1000000]; }
kernel void k(global float* a, global float* out, int n) {
    int i = get_global_id(0);
    out[i] = pick(a, i);
}
`,
		},
	}
	const n = 64
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cl, vmc, atc := compileBothTiers(t, tc.name, tc.source, "k")
			mk := func() []exec.Arg {
				return []exec.Arg{
					exec.BufArg(exec.NewFloatBuffer(n)),
					exec.BufArg(exec.NewFloatBuffer(n)),
					exec.IntArg(n),
				}
			}
			_, cerr := cl.Run(mk(), exec.ND1(n), exec.RunOptions{Workers: 1})
			_, verr := vmc.Run(mk(), exec.ND1(n), exec.RunOptions{Workers: 1})
			_, aerr := atc.Run(mk(), exec.ND1(n), exec.RunOptions{Workers: 1})
			if cerr == nil || verr == nil || aerr == nil {
				t.Fatalf("expected faults, closure=%v vm=%v auto=%v", cerr, verr, aerr)
			}
			if cerr.Error() != verr.Error() {
				t.Fatalf("fault message mismatch:\nclosure: %s\nvm:      %s", cerr, verr)
			}
			if cerr.Error() != aerr.Error() {
				t.Fatalf("fault message mismatch:\nclosure: %s\nauto:    %s", cerr, aerr)
			}
		})
	}
}
