package repro

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/ml"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// TestPipelineDeterminism runs the full train-predict pipeline twice and
// demands bit-identical results (the repository's reproducibility
// guarantee).
func TestPipelineDeterminism(t *testing.T) {
	run := func() (string, float64) {
		db, err := harness.Generate(harness.GenOptions{
			Programs:   []string{"vecadd", "matmul", "blackscholes"},
			MaxSizeIdx: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := harness.Figure1(db, "mc2", harness.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0].Predicted, res.GeoMeanVsCPU
	}
	p1, g1 := run()
	p2, g2 := run()
	if p1 != p2 || g1 != g2 {
		t.Fatalf("pipeline not deterministic: (%s, %g) vs (%s, %g)", p1, g1, p2, g2)
	}
}

// claimDB lazily builds the suite-wide database shared by the claim tests.
var (
	claimOnce sync.Once
	claimDBv  *harness.DB
	claimErr  error
)

func claimDB(t *testing.T) *harness.DB {
	t.Helper()
	claimOnce.Do(func() {
		claimDBv, claimErr = harness.Generate(harness.GenOptions{MaxSizeIdx: 4})
	})
	if claimErr != nil {
		t.Fatal(claimErr)
	}
	return claimDBv
}

// TestClaimC1SizeDependence asserts the paper's first claim on the full
// suite at reduced sizes: the oracle partitioning of a substantial
// fraction of programs changes with the problem size.
func TestClaimC1SizeDependence(t *testing.T) {
	db := claimDB(t)
	for _, plat := range []string{"mc1", "mc2"} {
		gap := harness.OracleGap(db, plat)
		if gap.FracSizeDependent < 0.5 {
			t.Errorf("%s: only %.0f%% of programs size-dependent, want >= 50%%",
				plat, gap.FracSizeDependent*100)
		}
	}
}

// TestClaimC2PlatformAsymmetry asserts the paper's second claim: the
// CPU-only default dominates on mc1, the GPU-only default is relatively
// much stronger on mc2.
func TestClaimC2PlatformAsymmetry(t *testing.T) {
	db := claimDB(t)
	rows := harness.DefaultsAsymmetry(db, []string{"mc1", "mc2"})
	mc1, mc2 := rows[0], rows[1]
	if mc1.CPUWins <= mc1.GPUWins {
		t.Errorf("mc1: CPU-only should win most records (%d vs %d)", mc1.CPUWins, mc1.GPUWins)
	}
	if float64(mc2.GPUWins) < 0.3*float64(mc2.CPUWins+mc2.GPUWins) {
		t.Errorf("mc2: GPU-only should win a large share (%d of %d)",
			mc2.GPUWins, mc2.CPUWins+mc2.GPUWins)
	}
	if mc1.MeanCPUGPU <= mc2.MeanCPUGPU {
		t.Error("asymmetry direction inverted between platforms")
	}
}

// TestClaimC3ModelBeatsDefaults asserts the headline claim on a reduced
// database: the ML-guided partitioning beats both defaults on geometric
// mean, on both platforms.
func TestClaimC3ModelBeatsDefaults(t *testing.T) {
	db := claimDB(t)
	for _, plat := range []string{"mc1", "mc2"} {
		res, err := harness.Figure1(db, plat, harness.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		if res.GeoMeanVsCPU < 1.0 {
			t.Errorf("%s: geomean vs CPU-only %.3f < 1", plat, res.GeoMeanVsCPU)
		}
		if res.GeoMeanVsGPU < 1.0 {
			t.Errorf("%s: geomean vs GPU-only %.3f < 1", plat, res.GeoMeanVsGPU)
		}
		if res.MeanOracleEff < 0.6 {
			t.Errorf("%s: oracle efficiency %.2f too low", plat, res.MeanOracleEff)
		}
	}
}

// TestEndToEndUnseenKernel trains on the suite and deploys on a kernel
// that shares no source with any training program, checking output
// correctness under the predicted multi-device partitioning.
func TestEndToEndUnseenKernel(t *testing.T) {
	db, err := harness.Generate(harness.GenOptions{
		Programs:   []string{"vecadd", "saxpy", "matmul", "blackscholes", "reduction", "mandelbrot"},
		MaxSizeIdx: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range device.Platforms() {
		fw, err := core.New(plat)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.Train(db, harness.DefaultModel()); err != nil {
			t.Fatal(err)
		}
		prog, err := core.CompileSource("poly", `
kernel void poly(global const float* x, global float* y, int n) {
	int i = get_global_id(0);
	if (i < n) {
		float v = x[i];
		y[i] = ((v * 0.5 + 1.0) * v - 2.0) * v + 3.0;
	}
}`, "poly")
		if err != nil {
			t.Fatal(err)
		}
		n := 32768
		x, y := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		for i := range x.F {
			x.F[i] = float32(i%17) * 0.1
		}
		rep, err := fw.Run(prog, core.LaunchSpec{
			Args: []exec.Arg{exec.BufArg(x), exec.BufArg(y), exec.IntArg(n)},
			ND:   exec.ND1(n),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			v := float64(x.F[i])
			want := ((v*0.5+1)*v-2)*v + 3
			if math.Abs(float64(y.F[i])-want) > 1e-4 {
				t.Fatalf("%s: y[%d] = %g, want %g", plat.Name, i, y.F[i], want)
			}
		}
		if rep.Partition.Steps() != partition.DefaultSteps {
			t.Errorf("%s: malformed partition %v", plat.Name, rep.Partition)
		}
	}
}

// TestAllProgramsOracleNeverWorseThanDefaults is a suite-wide sanity
// invariant of the measurement pipeline.
func TestAllProgramsOracleNeverWorseThanDefaults(t *testing.T) {
	for _, p := range bench.All() {
		l, _, err := p.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		rt := runtime.New(device.MC2())
		prof, err := rt.Profile(l)
		if err != nil {
			t.Fatal(err)
		}
		_, oracle, err := rt.Best(l, prof)
		if err != nil {
			t.Fatal(err)
		}
		for _, def := range []partition.Partition{rt.CPUOnly(), rt.GPUOnly()} {
			dt, _, err := rt.Price(l, prof, def)
			if err != nil {
				t.Fatal(err)
			}
			if oracle > dt*1.0000001 {
				t.Errorf("%s: oracle %g worse than default %s %g", p.Name, oracle, def, dt)
			}
		}
	}
}

// TestTwoStageAndPipelineOnRealData exercises the extension models on a
// real (reduced) training database end to end.
func TestTwoStageAndPipelineOnRealData(t *testing.T) {
	db, err := harness.Generate(harness.GenOptions{
		Programs:   []string{"vecadd", "matmul", "blackscholes", "mandelbrot", "spmv"},
		MaxSizeIdx: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]ml.NewModel{
		"twostage": harness.TwoStageModel(),
		"pca+knn": func() ml.Classifier {
			return ml.NewPCAPipeline(8, 42, func() ml.Classifier { return ml.NewKNN(5) })
		},
	}
	rows, err := harness.CompareModels(db, "mc1", models)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OracleEff < 0.3 {
			t.Errorf("%s: oracle efficiency %.2f suspiciously low", r.Model, r.OracleEff)
		}
	}
}
