// Package sim prices dynamic kernel profiles on analytic device models.
//
// It is the substitute for running on physical hardware: given the
// operation counts a chunk of the NDRange executes (from internal/exec),
// the static memory-access mix (from internal/inspire), and the bytes that
// must cross the host interconnect (from the backend's transfer plan), it
// computes the wall time a device would take. Timings always include
// memory-transfer overhead, following the paper's methodology (Gregg &
// Hazelwood, ISPASS'11: "Where is the data?").
//
// The model is deliberately first-order — roofline-style compute/bandwidth
// overlap, occupancy-scaled throughput, SIMT divergence and VLIW branch
// penalties, and shared-link contention — because those are exactly the
// effects that move the optimal partitioning with program, problem size
// and platform.
package sim

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/exec"
)

// AccessMix is the fraction of global-memory accesses per pattern class.
// Fractions should sum to 1; an all-zero mix is treated as fully coalesced.
type AccessMix struct {
	Coalesced float64
	Strided   float64
	Indirect  float64
	Uniform   float64
}

// Normalize scales the mix to sum to 1, defaulting to coalesced.
func (m AccessMix) Normalize() AccessMix {
	s := m.Coalesced + m.Strided + m.Indirect + m.Uniform
	if s <= 0 {
		return AccessMix{Coalesced: 1}
	}
	return AccessMix{m.Coalesced / s, m.Strided / s, m.Indirect / s, m.Uniform / s}
}

// Work describes the execution of one chunk on one device: the dynamic
// counts of the chunk, its static access mix, the host-device traffic it
// requires, and how many kernel launches it is part of.
type Work struct {
	Counts      exec.Counts
	Mix         AccessMix
	TransferIn  int64 // bytes host -> device
	TransferOut int64 // bytes device -> host
	Launches    int   // kernel launches (>=1 when any items run)
}

// Options tweaks the cost model, mainly for ablations.
type Options struct {
	// IgnoreTransfers prices kernels as if data were already resident
	// (the accounting mistake the paper warns against). Used by the
	// transfer-ablation experiment.
	IgnoreTransfers bool
	// LinkShare divides interconnect bandwidth, modelling concurrent
	// transfers on a shared PCIe complex: 1 = exclusive, 2 = two devices
	// transferring, etc. Zero means exclusive.
	LinkShare float64
}

// Breakdown itemizes simulated device time in seconds.
type Breakdown struct {
	Compute  float64 // arithmetic + branches + local memory + barriers
	Memory   float64 // global memory traffic on the device
	Kernel   float64 // max(Compute, Memory) after penalties
	Transfer float64 // host link traffic
	Overhead float64 // launch overhead
	Total    float64
}

// divergenceCap bounds the imbalance penalty (a 32-wide SIMT unit cannot
// lose more than 32x to divergence).
const divergenceCap = 32.0

// cpuBarrierOps and gpuBarrierOps price one executed barrier in branch-unit
// operations. Work-group barriers are nearly free in GPU hardware but need
// cross-thread synchronization on a CPU.
const (
	cpuBarrierOps = 32.0
	gpuBarrierOps = 4.0
)

// DeviceTime computes the simulated wall time for w on device d.
func DeviceTime(d *device.Profile, w Work, opts Options) Breakdown {
	var bd Breakdown
	c := &w.Counts
	if c.Items == 0 {
		return bd
	}
	launches := w.Launches
	if launches < 1 {
		launches = 1
	}

	// --- compute time ---
	compute := float64(c.IntOps)/d.IntOpsPerSec +
		float64(c.FloatOps)/d.FloatOpsPerSec +
		float64(c.TransOps)/d.TransOpsPerSec +
		float64(c.OtherBuiltins)/d.FloatOpsPerSec +
		float64(c.LocalOps)/d.LocalOpsPerSec

	totalOps := float64(c.IntOps + c.FloatOps + 4*c.TransOps + c.OtherBuiltins +
		c.GlobalLoads + c.GlobalStores + c.LocalOps)
	branchDensity := 0.0
	if totalOps > 0 {
		branchDensity = float64(c.Branches) / totalOps
	}
	// Branches, with the VLIW wide-issue stall surcharge on branchy code.
	branchCost := float64(c.Branches) / d.BranchPerSec
	branchCost *= 1 + d.VLIWBranchFactor*minF(1, branchDensity*4)
	compute += branchCost

	// Barriers.
	barrierOps := gpuBarrierOps
	if d.Class == device.CPU {
		barrierOps = cpuBarrierOps
	}
	compute += float64(c.Barriers) * barrierOps / d.BranchPerSec

	// SIMT divergence: lockstep execution pays for the slowest item.
	if d.DivergenceFactor > 0 && c.Items > 0 {
		meanItemOps := totalOps / float64(c.Items)
		if meanItemOps > 0 && c.MaxItemOps > 0 {
			imbalance := float64(c.MaxItemOps) / meanItemOps
			if imbalance > 1 {
				penalty := 1 + d.DivergenceFactor*(imbalance-1)
				if penalty > divergenceCap {
					penalty = divergenceCap
				}
				compute *= penalty
			}
		}
	}

	// Occupancy: chunks smaller than the saturation point run at
	// proportionally reduced throughput.
	if d.SaturationItems > 0 && float64(c.Items) < d.SaturationItems {
		compute *= d.SaturationItems / float64(c.Items)
	}

	// --- global memory time ---
	mix := w.Mix.Normalize()
	bytes := float64(c.GlobalLoadBytes() + c.GlobalStoreBytes())
	memTime := bytes / d.MemBandwidth * (mix.Coalesced/d.EffCoalesced +
		mix.Strided/d.EffStrided +
		mix.Indirect/d.EffIndirect +
		mix.Uniform/d.EffUniform)
	if d.Class == device.GPU && d.SaturationItems > 0 && float64(c.Items) < d.SaturationItems {
		// Latency-bound at low occupancy: bandwidth also degrades, but
		// more gently than compute (memory parallelism saturates earlier).
		short := d.SaturationItems / float64(c.Items)
		memTime *= 1 + (short-1)*0.5
	}

	bd.Compute = compute
	bd.Memory = memTime
	// Roofline-style overlap: the device is limited by the slower of the
	// two pipelines, plus a small serial fraction of the faster one.
	const serialFraction = 0.15
	if compute >= memTime {
		bd.Kernel = compute + serialFraction*memTime
	} else {
		bd.Kernel = memTime + serialFraction*compute
	}

	// --- transfers ---
	if !opts.IgnoreTransfers && !d.IsHost() {
		share := opts.LinkShare
		if share < 1 {
			share = 1
		}
		moved := float64(w.TransferIn + w.TransferOut)
		if moved > 0 {
			// Buffers stay resident across launches of an iterative
			// application, so link latency is paid once per direction.
			bd.Transfer = moved/(d.LinkBandwidth/share) + 2*d.LinkLatencySec
		}
	}

	// --- fixed overheads ---
	bd.Overhead = d.LaunchOverheadSec * float64(launches)

	bd.Total = bd.Kernel + bd.Transfer + bd.Overhead
	return bd
}

// Makespan returns the simulated completion time of a partitioned launch:
// all devices run concurrently, so the makespan is the maximum of the
// per-device totals. works must be indexed like plat.Devices; devices with
// zero items contribute nothing. Shared-link platforms divide transfer
// bandwidth among the discrete devices that actually move data.
func Makespan(plat *device.Platform, works []Work, opts Options) (float64, []Breakdown, error) {
	return MakespanInto(nil, plat, works, opts)
}

// MakespanInto is Makespan with caller-supplied breakdown storage: dst is
// reused when its capacity suffices, so the oracle search prices candidates
// without allocating. The computed times are identical to Makespan's.
func MakespanInto(dst []Breakdown, plat *device.Platform, works []Work, opts Options) (float64, []Breakdown, error) {
	if len(works) != len(plat.Devices) {
		return 0, nil, fmt.Errorf("sim: %d works for %d devices", len(works), len(plat.Devices))
	}
	linkUsers := 0
	if plat.LinkShared {
		for i, w := range works {
			if !plat.Devices[i].IsHost() && w.Counts.Items > 0 && (w.TransferIn+w.TransferOut) > 0 {
				linkUsers++
			}
		}
	}
	var breakdowns []Breakdown
	if cap(dst) >= len(works) {
		breakdowns = dst[:len(works)]
	} else {
		breakdowns = make([]Breakdown, len(works))
	}
	var makespan float64
	for i, w := range works {
		o := opts
		if linkUsers > 1 {
			o.LinkShare = float64(linkUsers)
		}
		bd := DeviceTime(plat.Devices[i], w, o)
		breakdowns[i] = bd
		if bd.Total > makespan {
			makespan = bd.Total
		}
	}
	return makespan, breakdowns, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
