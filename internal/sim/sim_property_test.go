package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/exec"
)

// TestDeviceTimeMonotonicInWork: strictly more work never takes less time.
func TestDeviceTimeMonotonicInWork(t *testing.T) {
	devs := []*device.Profile{
		device.MC1().Devices[0], device.MC1().Devices[1],
		device.MC2().Devices[0], device.MC2().Devices[1],
	}
	f := func(items16, ops8, extra8 uint16, devIdx uint8) bool {
		items := int64(items16)%100000 + 1000
		ops := int64(ops8)%500 + 1
		extra := int64(extra8)%500 + 1
		d := devs[int(devIdx)%len(devs)]
		base := Work{
			Counts: exec.Counts{
				Items: items, FloatOps: items * ops,
				GlobalLoads: items, GlobalStores: items,
				MaxItemOps: ops + 2,
			},
			Mix:        AccessMix{Coalesced: 1},
			TransferIn: items * 4, TransferOut: items * 4,
			Launches: 1,
		}
		more := base
		more.Counts.FloatOps += items * extra
		if more.Counts.MaxItemOps < ops+extra+2 {
			more.Counts.MaxItemOps = ops + extra + 2
		}
		t1 := DeviceTime(d, base, Options{}).Total
		t2 := DeviceTime(d, more, Options{}).Total
		return t2 >= t1*0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceTimeNonNegative: no parameter combination yields negative or
// NaN time components.
func TestDeviceTimeNonNegative(t *testing.T) {
	devs := device.MC2().Devices
	f := func(items32 uint32, fl, ld, st, br, ba uint16, devIdx uint8) bool {
		items := int64(items32 % 1e7)
		c := exec.Counts{
			Items:        items,
			FloatOps:     int64(fl) * items / 4,
			GlobalLoads:  int64(ld) * items / 8,
			GlobalStores: int64(st) * items / 8,
			Branches:     int64(br) * items / 8,
			Barriers:     int64(ba) * items / 64,
			MaxItemOps:   int64(fl) + 4,
		}
		w := Work{Counts: c, Mix: AccessMix{Coalesced: 0.5, Strided: 0.3, Indirect: 0.2},
			TransferIn: items, TransferOut: items, Launches: 3}
		bd := DeviceTime(devs[int(devIdx)%len(devs)], w, Options{})
		for _, v := range []float64{bd.Compute, bd.Memory, bd.Kernel, bd.Transfer, bd.Overhead, bd.Total} {
			if v < 0 || v != v { // negative or NaN
				return false
			}
		}
		return bd.Total >= bd.Kernel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMakespanDominatedByComponents: the makespan equals some device's
// total and is at least every device's total... (max semantics).
func TestMakespanMaxSemantics(t *testing.T) {
	plat := device.MC1()
	f := func(a, b, c uint16) bool {
		works := []Work{
			{Counts: exec.Counts{Items: int64(a) + 1, FloatOps: int64(a) * 1000, MaxItemOps: 1000}, Mix: AccessMix{Coalesced: 1}, Launches: 1},
			{Counts: exec.Counts{Items: int64(b) + 1, FloatOps: int64(b) * 1000, MaxItemOps: 1000}, Mix: AccessMix{Coalesced: 1}, TransferIn: int64(b) * 4, Launches: 1},
			{Counts: exec.Counts{Items: int64(c) + 1, FloatOps: int64(c) * 1000, MaxItemOps: 1000}, Mix: AccessMix{Coalesced: 1}, TransferIn: int64(c) * 4, Launches: 1},
		}
		ms, bds, err := Makespan(plat, works, Options{})
		if err != nil {
			return false
		}
		found := false
		for _, bd := range bds {
			if bd.Total > ms {
				return false
			}
			if bd.Total == ms {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
