package sim

import (
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/exec"
)

// computeWork builds a compute-bound workload of n items with ops float
// operations per item.
func computeWork(items, opsPerItem int64) Work {
	return Work{
		Counts: exec.Counts{
			Items:      items,
			FloatOps:   items * opsPerItem,
			MaxItemOps: opsPerItem,
		},
		Mix:      AccessMix{Coalesced: 1},
		Launches: 1,
	}
}

// streamWork builds a memory-bound workload: loads+stores dominate.
func streamWork(items int64) Work {
	return Work{
		Counts: exec.Counts{
			Items:        items,
			FloatOps:     items,
			GlobalLoads:  2 * items,
			GlobalStores: items,
			MaxItemOps:   4,
		},
		Mix:         AccessMix{Coalesced: 1},
		TransferIn:  8 * items,
		TransferOut: 4 * items,
		Launches:    1,
	}
}

func TestZeroItemsZeroTime(t *testing.T) {
	d := device.MC2().Devices[0]
	bd := DeviceTime(d, Work{}, Options{})
	if bd.Total != 0 {
		t.Errorf("empty work cost %g, want 0", bd.Total)
	}
}

func TestComputeScalesWithWork(t *testing.T) {
	d := device.MC2().Devices[0]
	t1 := DeviceTime(d, computeWork(1e6, 100), Options{}).Total
	t2 := DeviceTime(d, computeWork(2e6, 100), Options{}).Total
	if t2 < 1.8*t1 || t2 > 2.2*t1 {
		t.Errorf("doubling work: %g -> %g, want ~2x", t1, t2)
	}
}

func TestCPUHasNoTransfer(t *testing.T) {
	mc2 := device.MC2()
	w := streamWork(1e6)
	cpu := DeviceTime(mc2.Devices[0], w, Options{})
	gpu := DeviceTime(mc2.Devices[1], w, Options{})
	if cpu.Transfer != 0 {
		t.Errorf("CPU transfer time %g, want 0", cpu.Transfer)
	}
	if gpu.Transfer <= 0 {
		t.Errorf("GPU transfer time %g, want > 0", gpu.Transfer)
	}
}

func TestIgnoreTransfersOption(t *testing.T) {
	gpu := device.MC2().Devices[1]
	w := streamWork(1e6)
	with := DeviceTime(gpu, w, Options{})
	without := DeviceTime(gpu, w, Options{IgnoreTransfers: true})
	if without.Total >= with.Total {
		t.Errorf("ignoring transfers did not reduce time: %g vs %g", without.Total, with.Total)
	}
	if without.Transfer != 0 {
		t.Error("IgnoreTransfers left transfer time")
	}
}

func TestTransferChangesStreamingWinner(t *testing.T) {
	// Streaming kernels: with transfers the CPU should win; pretending
	// data is resident flips the verdict to the GPU (the Gregg-Hazelwood
	// effect the paper controls for).
	mc2 := device.MC2()
	w := streamWork(4e6)
	cpu := DeviceTime(mc2.Devices[0], w, Options{}).Total
	gpuWith := DeviceTime(mc2.Devices[1], w, Options{}).Total
	gpuWithout := DeviceTime(mc2.Devices[1], w, Options{IgnoreTransfers: true}).Total
	if cpu >= gpuWith {
		t.Errorf("streaming with transfers: CPU %g should beat GPU %g", cpu, gpuWith)
	}
	if gpuWithout >= cpu {
		t.Errorf("streaming without transfers: GPU %g should beat CPU %g", gpuWithout, cpu)
	}
}

func TestComputeBoundGPUWinsWhenLarge(t *testing.T) {
	mc2 := device.MC2()
	w := computeWork(1e6, 500)
	w.TransferIn, w.TransferOut = 4e6, 4e6
	cpu := DeviceTime(mc2.Devices[0], w, Options{}).Total
	gpu := DeviceTime(mc2.Devices[1], w, Options{}).Total
	if gpu >= cpu {
		t.Errorf("large compute-bound work: GPU %g should beat CPU %g", gpu, cpu)
	}
}

func TestSmallSizeCPUWins(t *testing.T) {
	// Small problem: launch overhead + transfer latency + low occupancy
	// make the GPU lose even on compute-bound code.
	mc2 := device.MC2()
	w := computeWork(256, 500)
	w.TransferIn, w.TransferOut = 1024, 1024
	cpu := DeviceTime(mc2.Devices[0], w, Options{}).Total
	gpu := DeviceTime(mc2.Devices[1], w, Options{}).Total
	if cpu >= gpu {
		t.Errorf("small work: CPU %g should beat GPU %g", cpu, gpu)
	}
}

func TestDivergencePenalizesGPUOnly(t *testing.T) {
	mc2 := device.MC2()
	balanced := computeWork(1e6, 100)
	diverged := computeWork(1e6, 100)
	diverged.Counts.MaxItemOps = 1600 // 16x imbalance
	gpuB := DeviceTime(mc2.Devices[1], balanced, Options{IgnoreTransfers: true}).Total
	gpuD := DeviceTime(mc2.Devices[1], diverged, Options{IgnoreTransfers: true}).Total
	if gpuD <= gpuB {
		t.Errorf("divergence did not slow GPU: %g vs %g", gpuD, gpuB)
	}
	cpuB := DeviceTime(mc2.Devices[0], balanced, Options{}).Total
	cpuD := DeviceTime(mc2.Devices[0], diverged, Options{}).Total
	if cpuD != cpuB {
		t.Errorf("divergence changed CPU time: %g vs %g", cpuD, cpuB)
	}
}

func TestVLIWBranchPenalty(t *testing.T) {
	mc1gpu := device.MC1().Devices[1]
	mc2gpu := device.MC2().Devices[1]
	branchy := computeWork(1e6, 50)
	branchy.Counts.Branches = 20e6 // 40% branch density
	smooth := computeWork(1e6, 50)
	relative := func(d *device.Profile) float64 {
		b := DeviceTime(d, branchy, Options{IgnoreTransfers: true}).Total
		s := DeviceTime(d, smooth, Options{IgnoreTransfers: true}).Total
		return b / s
	}
	if relative(mc1gpu) <= relative(mc2gpu) {
		t.Errorf("branchy code should hurt the VLIW GPU more: mc1 %.2fx vs mc2 %.2fx",
			relative(mc1gpu), relative(mc2gpu))
	}
}

func TestOccupancyPenalty(t *testing.T) {
	gpu := device.MC2().Devices[1]
	// Same total ops split into fewer items: fewer-but-fatter items at
	// low occupancy should not be faster than the saturated version.
	small := computeWork(100, 10000)
	large := computeWork(1e6, 1)
	ts := DeviceTime(gpu, small, Options{IgnoreTransfers: true}).Total
	tl := DeviceTime(gpu, large, Options{IgnoreTransfers: true}).Total
	if ts <= tl {
		t.Errorf("underoccupied chunk not penalized: %g vs %g", ts, tl)
	}
}

func TestAccessMixSlowsStridedOnGPU(t *testing.T) {
	gpu := device.MC2().Devices[1]
	co := streamWork(1e6)
	st := streamWork(1e6)
	st.Mix = AccessMix{Strided: 1}
	tc := DeviceTime(gpu, co, Options{IgnoreTransfers: true}).Total
	ts := DeviceTime(gpu, st, Options{IgnoreTransfers: true}).Total
	if ts <= tc {
		t.Errorf("strided access not penalized: %g vs %g", ts, tc)
	}
}

func TestMixNormalize(t *testing.T) {
	m := AccessMix{}.Normalize()
	if m.Coalesced != 1 {
		t.Errorf("zero mix normalized to %+v, want coalesced 1", m)
	}
	m2 := AccessMix{Coalesced: 2, Strided: 2}.Normalize()
	if m2.Coalesced != 0.5 || m2.Strided != 0.5 {
		t.Errorf("normalize = %+v", m2)
	}
}

func TestMakespanIsMax(t *testing.T) {
	plat := device.MC2()
	works := []Work{computeWork(1e6, 100), computeWork(1e5, 100), {}}
	ms, bds, err := Makespan(plat, works, Options{IgnoreTransfers: true})
	if err != nil {
		t.Fatal(err)
	}
	maxT := 0.0
	for _, bd := range bds {
		if bd.Total > maxT {
			maxT = bd.Total
		}
	}
	if ms != maxT {
		t.Errorf("makespan %g != max breakdown %g", ms, maxT)
	}
	if bds[2].Total != 0 {
		t.Error("idle device has nonzero time")
	}
}

func TestMakespanLinkSharing(t *testing.T) {
	plat := device.MC2()
	one := []Work{{}, streamWork(2e6), {}}
	two := []Work{{}, streamWork(2e6), streamWork(2e6)}
	_, bd1, err := Makespan(plat, one, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, bd2, err := Makespan(plat, two, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bd2[1].Transfer <= bd1[1].Transfer {
		t.Errorf("shared link did not slow concurrent transfers: %g vs %g",
			bd2[1].Transfer, bd1[1].Transfer)
	}
}

func TestMakespanArityError(t *testing.T) {
	if _, _, err := Makespan(device.MC2(), []Work{{}}, Options{}); err == nil {
		t.Error("want works/devices arity error")
	}
}

func TestBreakdownConsistency(t *testing.T) {
	gpu := device.MC2().Devices[1]
	w := streamWork(1e6)
	bd := DeviceTime(gpu, w, Options{})
	if bd.Total != bd.Kernel+bd.Transfer+bd.Overhead {
		t.Errorf("Total %g != Kernel %g + Transfer %g + Overhead %g",
			bd.Total, bd.Kernel, bd.Transfer, bd.Overhead)
	}
	if bd.Kernel < bd.Compute && bd.Kernel < bd.Memory {
		t.Error("Kernel below both pipelines")
	}
}

func TestLaunchesScaleOverheadNotTransfer(t *testing.T) {
	gpu := device.MC2().Devices[1]
	w1 := computeWork(1e6, 100)
	w1.TransferIn = 4e6
	w10 := w1
	w10.Launches = 10
	bd1 := DeviceTime(gpu, w1, Options{})
	bd10 := DeviceTime(gpu, w10, Options{})
	if bd10.Overhead <= bd1.Overhead {
		t.Error("launch overhead must scale with launches")
	}
	// Transfer bytes are charged once (resident buffers); only per-launch
	// latency grows.
	if bd10.Transfer >= 10*bd1.Transfer {
		t.Error("transfers should not scale linearly with launches")
	}
}

// TestMakespanIntoMatchesMakespan checks the scratch-reusing pricing path
// against the allocating one, including breakdown contents and stale-state
// clearing across reuses.
func TestMakespanIntoMatchesMakespan(t *testing.T) {
	plat := device.MC2()
	mkWorks := func(seed int64) []Work {
		works := make([]Work, len(plat.Devices))
		for i := range works {
			works[i] = Work{
				Counts: exec.Counts{
					Items: int64(1000 * (i + 1)), IntOps: 5000, FloatOps: 20000 + seed,
					GlobalLoads: 30000, GlobalStores: 10000, Branches: 2000, MaxItemOps: 60,
				},
				Mix:        AccessMix{Coalesced: 1},
				TransferIn: 1 << 20, TransferOut: 1 << 18, Launches: 1,
			}
		}
		return works
	}
	var scratch []Breakdown
	for seed := int64(0); seed < 3; seed++ {
		works := mkWorks(seed)
		wantT, wantB, err := Makespan(plat, works, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotT, gotB, err := MakespanInto(scratch, plat, works, Options{})
		if err != nil {
			t.Fatal(err)
		}
		scratch = gotB
		if gotT != wantT || !reflect.DeepEqual(gotB, wantB) {
			t.Fatalf("seed %d: MakespanInto (%v, %+v) != Makespan (%v, %+v)", seed, gotT, gotB, wantT, wantB)
		}
	}
}
