package fleet

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// Admission control: every shard gates its request flow through a
// bounded accept queue and a moving p99-latency estimate. The queue
// bound turns overload into fast 429s instead of unbounded goroutine
// pileup; the p99 gate sheds *queued* waiting before it forms, keeping
// admitted-request latency near the target while excess load bounces
// with Retry-After.

// AdmissionConfig bounds one shard's accept path. The zero value admits
// everything (counting only), which keeps single-tenant dev setups
// friction-free.
type AdmissionConfig struct {
	// MaxInflight caps concurrently admitted requests. 0 = unlimited
	// (but see TargetP99).
	MaxInflight int
	// MaxQueue caps requests waiting for an inflight slot; arrivals
	// beyond MaxInflight+MaxQueue shed immediately.
	MaxQueue int
	// TargetP99 is the moving p99 latency target. While the estimate
	// exceeds it, queueing is disabled: a request is admitted only if an
	// inflight slot is immediately free, so waiting never stacks on top
	// of an already-blown tail. Admitted traffic keeps feeding the
	// estimator, letting the estimate recover as load drops. 0 disables
	// the latency gate. Requires an inflight cap; when MaxInflight is 0
	// a default of 4 x GOMAXPROCS is applied.
	TargetP99 time.Duration
	// RetryAfter is the backoff hint attached to sheds (default 1s).
	RetryAfter time.Duration
}

// ShedError reports a request rejected by admission control. The
// serving layer maps it to 429 with a Retry-After header, exactly like
// a tenant QuotaError.
type ShedError struct {
	Platform   string
	Shard      int
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("fleet: shard %s/%d shedding load: %s", e.Platform, e.Shard, e.Reason)
}

// admission is one shard's gate.
type admission struct {
	cfg AdmissionConfig
	sem chan struct{} // inflight slots; nil when unlimited

	depth    atomic.Int64 // admitted + queued right now
	admitted atomic.Uint64
	shed     atomic.Uint64

	mu      sync.Mutex // guards est
	est     *sched.P2
	p99Bits atomic.Uint64 // published Quantile() in ms, float64 bits
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.TargetP99 > 0 && cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	a := &admission{cfg: cfg, est: sched.NewP2(0.99)}
	if cfg.MaxInflight > 0 {
		a.sem = make(chan struct{}, cfg.MaxInflight)
	}
	return a
}

// Permit is an admitted request's token. Release returns the slot and
// feeds the request's latency to the shard's p99 estimator. Permit is a
// value, not a closure, so admitting allocates nothing.
type Permit struct {
	a     *admission
	start time.Time
}

// Release completes the admitted request. Safe on the zero Permit.
func (p Permit) Release() {
	a := p.a
	if a == nil {
		return
	}
	if a.sem != nil {
		<-a.sem
	}
	a.depth.Add(-1)
	ms := float64(time.Since(p.start)) / float64(time.Millisecond)
	a.mu.Lock()
	a.est.Observe(ms)
	q := a.est.Quantile()
	a.mu.Unlock()
	a.p99Bits.Store(math.Float64bits(q))
}

// p99Ms is the last published estimate (lock-free).
func (a *admission) p99Ms() float64 {
	return math.Float64frombits(a.p99Bits.Load())
}

func (a *admission) shedErr(platform string, shard int, reason string) error {
	a.depth.Add(-1)
	a.shed.Add(1)
	return &ShedError{Platform: platform, Shard: shard, Reason: reason, RetryAfter: a.cfg.RetryAfter}
}

// admit gates one request. On success the caller must Release the
// permit when the request completes. A context cancellation while
// queued is reported as the context's error, not a shed — the client
// gave up; the shard did not push back.
func (a *admission) admit(ctx context.Context, platform string, shard int) (Permit, error) {
	d := a.depth.Add(1)
	if a.sem == nil {
		a.admitted.Add(1)
		return Permit{a: a, start: time.Now()}, nil
	}
	if d > int64(a.cfg.MaxInflight+a.cfg.MaxQueue) {
		return Permit{}, a.shedErr(platform, shard, fmt.Sprintf("accept queue full (%d inflight + %d queued)", a.cfg.MaxInflight, a.cfg.MaxQueue))
	}
	select {
	case a.sem <- struct{}{}: // free slot, no waiting
		a.admitted.Add(1)
		return Permit{a: a, start: time.Now()}, nil
	default:
	}
	if t := a.cfg.TargetP99; t > 0 {
		if p99 := a.p99Ms(); p99 > float64(t)/float64(time.Millisecond) {
			return Permit{}, a.shedErr(platform, shard, fmt.Sprintf("p99 estimate %.1fms over target %v", p99, t))
		}
	}
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		return Permit{a: a, start: time.Now()}, nil
	case <-ctx.Done():
		a.depth.Add(-1)
		return Permit{}, ctx.Err()
	}
}
