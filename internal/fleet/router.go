// Package fleet is the shard router in front of internal/engine: one
// engine per (platform, shard) created lazily on first touch, requests
// routed consistently by hashing (platform, tenant), per-shard
// admission control, and fleet-wide stats. It is what lets one serve
// process carry several platforms — `-platforms mc1,mc2` — with tenant
// quota state shared across every shard (engine.Options.SharedTenants)
// while each shard keeps its own program/model/feature caches.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/sched"
)

// Options configures a Router.
type Options struct {
	// Platforms are the served platform names, in order; the first is
	// the default for requests that name none. Must be non-empty.
	Platforms []string
	// ShardsPerPlatform splits each platform's tenants across this many
	// engines (default 1). More shards = more cache and lock isolation
	// between tenant populations, at the cost of per-shard cache warmup.
	ShardsPerPlatform int
	// NewEngine builds the engine for one shard. The router calls it at
	// most once per shard at a time (failures retry on the next request
	// for that shard). It must wire SharedTenants/ObsLog itself if the
	// fleet is to share quota state and the observation pipeline.
	NewEngine func(platform string, shard int) (*engine.Engine, error)
	// Admission is applied per shard.
	Admission AdmissionConfig
}

// Shard is one (platform, index) serving unit: an engine plus its
// admission gate.
type Shard struct {
	Platform string
	Index    int

	eng *engine.Engine
	adm *admission
}

// Engine exposes the shard's engine.
func (s *Shard) Engine() *engine.Engine { return s.eng }

// Admit gates one request through the shard's admission control.
func (s *Shard) Admit(ctx context.Context) (Permit, error) {
	return s.adm.admit(ctx, s.Platform, s.Index)
}

// ShardStats is one shard's admission and engine counters, surfaced
// under /stats.
type ShardStats struct {
	Platform      string       `json:"platform"`
	Shard         int          `json:"shard"`
	Admitted      uint64       `json:"admitted"`
	Shed          uint64       `json:"shed"`
	QueueDepth    int64        `json:"queueDepth"`
	P99EstimateMs float64      `json:"p99EstimateMs"`
	Engine        engine.Stats `json:"engine"`
}

type shardKey struct {
	platform string
	index    int
}

// Router routes requests to lazily created shards.
type Router struct {
	opts    Options
	indexOf map[string]bool // served platforms

	shards sched.Memo[shardKey, *Shard]

	mu      sync.Mutex
	created []*Shard // for stats iteration, in creation order
}

// New validates opts and returns an empty router; no engine exists
// until the first request routes to its shard.
func New(opts Options) (*Router, error) {
	if len(opts.Platforms) == 0 {
		return nil, fmt.Errorf("fleet: no platforms")
	}
	if opts.NewEngine == nil {
		return nil, fmt.Errorf("fleet: NewEngine is required")
	}
	if opts.ShardsPerPlatform <= 0 {
		opts.ShardsPerPlatform = 1
	}
	r := &Router{opts: opts, indexOf: make(map[string]bool, len(opts.Platforms))}
	for _, p := range opts.Platforms {
		if p == "" {
			return nil, fmt.Errorf("fleet: empty platform name")
		}
		if r.indexOf[p] {
			return nil, fmt.Errorf("fleet: duplicate platform %q", p)
		}
		r.indexOf[p] = true
	}
	return r, nil
}

// Platforms returns the served platform names in configured order.
func (r *Router) Platforms() []string { return r.opts.Platforms }

// DefaultPlatform is the platform used when a request names none.
func (r *Router) DefaultPlatform() string { return r.opts.Platforms[0] }

// ShardsPerPlatform reports the configured shard fan-out.
func (r *Router) ShardsPerPlatform() int { return r.opts.ShardsPerPlatform }

// ShardFor resolves the shard serving (platform, tenant), creating its
// engine on first touch. platform "" means the default; an unserved
// platform is an error (the serving layer answers 404). Routing is
// consistent: the same pair always lands on the same shard, and
// concurrent first touches of one shard build exactly one engine
// (sched.Memo single-flight; failures retry on the next request).
func (r *Router) ShardFor(platform, tenant string) (*Shard, error) {
	if platform == "" {
		platform = r.opts.Platforms[0]
	}
	if !r.indexOf[platform] {
		return nil, fmt.Errorf("fleet: platform %q not served", platform)
	}
	idx := int(jumpHash(shardHash(platform, tenant), r.opts.ShardsPerPlatform))
	return r.shards.DoRetryable(shardKey{platform, idx}, func() (*Shard, error) {
		eng, err := r.opts.NewEngine(platform, idx)
		if err != nil {
			return nil, err
		}
		s := &Shard{Platform: platform, Index: idx, eng: eng, adm: newAdmission(r.opts.Admission)}
		r.mu.Lock()
		r.created = append(r.created, s)
		r.mu.Unlock()
		return s, nil
	})
}

// Shards snapshots the created shards sorted by (platform order,
// index).
func (r *Router) Shards() []*Shard {
	r.mu.Lock()
	out := append([]*Shard(nil), r.created...)
	r.mu.Unlock()
	order := make(map[string]int, len(r.opts.Platforms))
	for i, p := range r.opts.Platforms {
		order[p] = i
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return order[out[i].Platform] < order[out[j].Platform]
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Stats snapshots every created shard's admission and engine counters.
func (r *Router) Stats() []ShardStats {
	shards := r.Shards()
	out := make([]ShardStats, 0, len(shards))
	for _, s := range shards {
		out = append(out, ShardStats{
			Platform:      s.Platform,
			Shard:         s.Index,
			Admitted:      s.adm.admitted.Load(),
			Shed:          s.adm.shed.Load(),
			QueueDepth:    s.adm.depth.Load(),
			P99EstimateMs: s.adm.p99Ms(),
			Engine:        s.eng.Stats(),
		})
	}
	return out
}

// shardHash is FNV-1a over platform NUL tenant, inlined so routing
// allocates nothing.
func shardHash(platform, tenant string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(platform); i++ {
		h ^= uint64(platform[i])
		h *= prime64
	}
	h *= prime64 // NUL separator
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return h
}

// jumpHash is Lamping & Veach's jump consistent hash: maps key to a
// bucket in [0, buckets) such that growing the bucket count moves only
// ~1/buckets of the keys — adding shards later re-homes the minimum
// number of tenants.
func jumpHash(key uint64, buckets int) int32 {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int32(b)
}
