package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
)

func testRouter(t *testing.T, opts Options) (*Router, *atomic.Int64) {
	t.Helper()
	db, err := harness.Generate(harness.GenOptions{Programs: []string{"vecadd"}, MaxSizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	var built atomic.Int64
	shared := engine.NewTenantTable()
	if opts.NewEngine == nil {
		opts.NewEngine = func(platform string, shard int) (*engine.Engine, error) {
			built.Add(1)
			return engine.New(engine.Options{
				Platform: platform, DB: db, Model: harness.FastModel(),
				SharedTenants: shared,
			})
		}
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, &built
}

// TestConsistentRoutingUnderConcurrentCreation is the router property
// test: many goroutines hammer the same (platform, tenant) keys during
// lazy creation, every key must land on one stable shard, and each
// shard's engine must be built exactly once. Run under -race in CI.
func TestConsistentRoutingUnderConcurrentCreation(t *testing.T) {
	r, built := testRouter(t, Options{Platforms: []string{"mc1", "mc2"}, ShardsPerPlatform: 4})

	tenants := []string{"", "alice", "bob", "carol", "dave", "erin", "frank", "grace"}
	platforms := []string{"mc1", "mc2"}
	type key struct{ platform, tenant string }
	var mu sync.Mutex
	got := map[key]*Shard{}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := platforms[(g+i)%len(platforms)]
				tn := tenants[(g*7+i)%len(tenants)]
				s, err := r.ShardFor(p, tn)
				if err != nil {
					t.Error(err)
					return
				}
				if s.Platform != p {
					t.Errorf("tenant %q routed to platform %q, want %q", tn, s.Platform, p)
					return
				}
				mu.Lock()
				if prev, ok := got[key{p, tn}]; ok && prev != s {
					t.Errorf("key (%s,%s) routed to two shards: %d and %d", p, tn, prev.Index, s.Index)
				}
				got[key{p, tn}] = s
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	distinct := map[*Shard]bool{}
	for _, s := range got {
		distinct[s] = true
	}
	if int(built.Load()) != len(distinct) {
		t.Errorf("built %d engines for %d distinct shards", built.Load(), len(distinct))
	}
	if n := len(r.Shards()); n != len(distinct) {
		t.Errorf("Shards() = %d, want %d", n, len(distinct))
	}
	// 8 tenants x 2 platforms over 4 shards each: the hash should use
	// more than one shard per platform.
	perPlatform := map[string]map[int]bool{}
	for k, s := range got {
		if perPlatform[k.platform] == nil {
			perPlatform[k.platform] = map[int]bool{}
		}
		perPlatform[k.platform][s.Index] = true
	}
	for p, idxs := range perPlatform {
		if len(idxs) < 2 {
			t.Errorf("platform %s: all 8 tenants on one shard — hash not spreading", p)
		}
	}
}

func TestShardForValidation(t *testing.T) {
	r, _ := testRouter(t, Options{Platforms: []string{"mc2"}})
	if _, err := r.ShardFor("mc9", ""); err == nil {
		t.Error("unknown platform accepted")
	}
	s, err := r.ShardFor("", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if s.Platform != "mc2" {
		t.Errorf("default platform = %q", s.Platform)
	}
	if s.Engine() == nil {
		t.Error("nil engine")
	}
}

// TestEngineCreationFailureRetries: a failed lazy build must not poison
// the shard — the next request retries.
func TestEngineCreationFailureRetries(t *testing.T) {
	db, err := harness.Generate(harness.GenOptions{Programs: []string{"vecadd"}, MaxSizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	r, err := New(Options{
		Platforms: []string{"mc2"},
		NewEngine: func(platform string, shard int) (*engine.Engine, error) {
			if calls.Add(1) == 1 {
				return nil, fmt.Errorf("transient")
			}
			return engine.New(engine.Options{Platform: platform, DB: db, Model: harness.FastModel()})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ShardFor("mc2", ""); err == nil {
		t.Fatal("first touch should fail")
	}
	if _, err := r.ShardFor("mc2", ""); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Errorf("NewEngine called %d times, want 2", calls.Load())
	}
}

// TestAdmissionQueueShedsAndDrains: with a full queue arrivals shed
// with Retry-After, queued requests still complete, and the gate never
// deadlocks the drain.
func TestAdmissionQueueShedsAndDrains(t *testing.T) {
	r, _ := testRouter(t, Options{
		Platforms: []string{"mc2"},
		Admission: AdmissionConfig{MaxInflight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second},
	})
	s, err := r.ShardFor("mc2", "")
	if err != nil {
		t.Fatal(err)
	}

	holder, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Second request queues.
	queued := make(chan error, 1)
	go func() {
		p, err := s.Admit(context.Background())
		if err == nil {
			p.Release()
		}
		queued <- err
	}()
	// Wait until it is actually waiting (depth 2 = 1 inflight + 1 queued).
	for i := 0; s.adm.depth.Load() != 2; i++ {
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third request overflows the queue: shed, not blocked.
	_, err = s.Admit(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overflow err = %v, want ShedError", err)
	}
	if shed.RetryAfter != 2*time.Second || shed.Platform != "mc2" {
		t.Errorf("shed = %+v", shed)
	}

	// Drain: releasing the holder unblocks the queued request.
	holder.Release()
	select {
	case err := <-queued:
		if err != nil {
			t.Fatalf("queued request err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never drained")
	}

	st := r.Stats()[0]
	if st.Admitted != 2 || st.Shed != 1 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want admitted 2, shed 1, depth 0", st)
	}
}

// TestAdmissionCancelWhileQueued: a client hanging up in the queue gets
// its context error and is not counted as shed.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	r, _ := testRouter(t, Options{
		Platforms: []string{"mc2"},
		Admission: AdmissionConfig{MaxInflight: 1, MaxQueue: 4},
	})
	s, err := r.ShardFor("mc2", "")
	if err != nil {
		t.Fatal(err)
	}
	holder, err := s.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx)
		done <- err
	}()
	for i := 0; s.adm.depth.Load() != 2; i++ {
		if i > 1000 {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	holder.Release()
	st := r.Stats()[0]
	if st.Shed != 0 {
		t.Errorf("cancel counted as shed: %+v", st)
	}
	if st.QueueDepth != 0 {
		t.Errorf("depth leaked: %+v", st)
	}
}

// TestAdmissionP99Gate: once the moving p99 estimate exceeds the
// target, waiting is disabled — only immediately free slots admit — and
// the estimate is visible in stats.
func TestAdmissionP99Gate(t *testing.T) {
	r, _ := testRouter(t, Options{
		Platforms: []string{"mc2"},
		Admission: AdmissionConfig{MaxInflight: 1, MaxQueue: 8, TargetP99: time.Millisecond},
	})
	s, err := r.ShardFor("mc2", "")
	if err != nil {
		t.Fatal(err)
	}

	// Blow the estimate: slow admitted requests well past the 1ms target.
	for i := 0; i < 8; i++ {
		p, err := s.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		p.Release()
	}
	if p99 := s.adm.p99Ms(); p99 <= 1 {
		t.Fatalf("p99 estimate %.2fms, want > 1ms after slow requests", p99)
	}

	// Slot free: admits despite the blown estimate (samples keep
	// flowing so the estimate can recover).
	p, err := s.Admit(context.Background())
	if err != nil {
		t.Fatalf("free-slot admit: %v", err)
	}
	// Slot busy: sheds instead of queueing.
	_, err = s.Admit(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("busy admit err = %v, want ShedError", err)
	}
	p.Release()

	st := r.Stats()[0]
	if st.P99EstimateMs <= 1 {
		t.Errorf("stats p99 = %v", st.P99EstimateMs)
	}
	if st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
}

// TestJumpHashProperties: deterministic, in range, and minimal movement
// when the shard count grows.
func TestJumpHashProperties(t *testing.T) {
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		k := shardHash("mc1", fmt.Sprintf("tenant-%d", i))
		a, b := jumpHash(k, 8), jumpHash(k, 8)
		if a != b {
			t.Fatalf("jumpHash not deterministic for key %d", k)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("bucket %d out of range", a)
		}
		if jumpHash(k, 9) != a {
			moved++
		}
	}
	// Growing 8 -> 9 buckets should move ~1/9 of keys; allow slack.
	if moved > keys/5 {
		t.Errorf("%d/%d keys moved adding one bucket; want ~1/9", moved, keys)
	}
	if moved == 0 {
		t.Error("no keys moved adding a bucket — hash ignoring bucket count?")
	}
}
