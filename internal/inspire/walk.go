package inspire

// WalkStmts calls fn for every statement in the block tree, pre-order.
// Returning false from fn stops descent into that statement's children.
func WalkStmts(b *Block, fn func(Stmt) bool) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		walkStmt(s, fn)
	}
}

func walkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch st := s.(type) {
	case *Block:
		for _, inner := range st.Stmts {
			walkStmt(inner, fn)
		}
	case *If:
		WalkStmts(st.Then, fn)
		WalkStmts(st.Else, fn)
	case *For:
		walkStmt(st.Init, fn)
		walkStmt(st.Post, fn)
		WalkStmts(st.Body, fn)
	case *While:
		WalkStmts(st.Body, fn)
	}
}

// WalkExprs calls fn for every expression reachable from the block tree,
// pre-order, including sub-expressions.
func WalkExprs(b *Block, fn func(Expr)) {
	WalkStmts(b, func(s Stmt) bool {
		switch st := s.(type) {
		case *Decl:
			walkExpr(st.Init, fn)
		case *StoreVar:
			walkExpr(st.Value, fn)
		case *StoreElem:
			walkExpr(st.Index, fn)
			walkExpr(st.Value, fn)
		case *If:
			walkExpr(st.Cond, fn)
		case *For:
			walkExpr(st.Cond, fn)
		case *While:
			walkExpr(st.Cond, fn)
		case *Return:
			walkExpr(st.Value, fn)
		case *Eval:
			walkExpr(st.X, fn)
		}
		return true
	})
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch ex := e.(type) {
	case *Load:
		walkExpr(ex.Index, fn)
	case *BinOp:
		walkExpr(ex.L, fn)
		walkExpr(ex.R, fn)
	case *UnOp:
		walkExpr(ex.X, fn)
	case *Select:
		walkExpr(ex.Cond, fn)
		walkExpr(ex.Then, fn)
		walkExpr(ex.Else, fn)
	case *Cast:
		walkExpr(ex.X, fn)
	case *WorkItem:
		walkExpr(ex.Dim, fn)
	case *CallBuiltin:
		for _, a := range ex.Args {
			walkExpr(a, fn)
		}
	case *CallFunc:
		for _, a := range ex.Args {
			walkExpr(a, fn)
		}
	}
}
