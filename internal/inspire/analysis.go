package inspire

import "repro/internal/minicl"

// AccessPattern classifies how a global-memory access indexes the buffer as
// a function of the work-item ID. The classes correspond to the memory
// coalescing behaviour that separates GPU-friendly from GPU-hostile kernels.
type AccessPattern int

// Access patterns, from most to least GPU-friendly.
const (
	// AccessUniform does not depend on the work-item ID (broadcast).
	AccessUniform AccessPattern = iota
	// AccessCoalesced is affine in get_global_id(0) with unit coefficient.
	AccessCoalesced
	// AccessStrided is affine in get_global_id(0) with non-unit coefficient.
	AccessStrided
	// AccessIndirect goes through a loaded value (gather/scatter).
	AccessIndirect
	// AccessUnknown could not be classified (non-affine in the ID).
	AccessUnknown
)

var accessNames = [...]string{"uniform", "coalesced", "strided", "indirect", "unknown"}

// String names the pattern.
func (a AccessPattern) String() string { return accessNames[a] }

// StaticCounts aggregates the static operation mix of a kernel: the "static
// program features" of the paper's §2, extracted from the IR at compile
// time. Raw counts ignore control flow; Weighted counts multiply statements
// inside loops by a nominal trip factor per nesting level, approximating
// dynamic importance without knowing problem sizes.
type StaticCounts struct {
	IntOps            int
	FloatOps          int
	TranscendentalOps int // calls to exp/log/sin/cos/tan/pow/sqrt/rsqrt
	OtherBuiltins     int // min/max/fabs/floor/... (cheap builtins)
	GlobalLoads       int
	GlobalStores      int
	LocalLoads        int
	LocalStores       int
	Branches          int // if statements + selects
	Loops             int
	Barriers          int
	Casts             int
	HelperCalls       int

	// Weighted variants (loop statements count LoopWeight^depth times).
	WeightedIntOps      float64
	WeightedFloatOps    float64
	WeightedTransOps    float64
	WeightedGlobalLoads float64
	WeightedGlobalStore float64
	WeightedBranches    float64

	MaxLoopDepth int

	// Access pattern histogram over global loads+stores.
	Accesses map[AccessPattern]int
}

// LoopWeight is the nominal per-loop trip multiplier used for weighted
// static counts.
const LoopWeight = 16.0

// transcendentals is the set of expensive float builtins.
var transcendentals = map[string]bool{
	"exp": true, "log": true, "log2": true, "sin": true, "cos": true,
	"tan": true, "pow": true, "sqrt": true, "rsqrt": true,
}

// Analyze computes static counts for a kernel function. Helper function
// bodies are folded into the caller's counts once per call site.
func Analyze(fn *Function) *StaticCounts {
	c := &StaticCounts{Accesses: map[AccessPattern]int{}}
	an := &analyzer{counts: c, seen: map[*Function]bool{}, env: buildAffineEnv(fn)}
	an.block(fn.Body, 0)
	return c
}

type analyzer struct {
	counts *StaticCounts
	seen   map[*Function]bool // cycle guard for helper recursion
	env    affineEnv
}

func (an *analyzer) weight(depth int) float64 {
	w := 1.0
	for i := 0; i < depth; i++ {
		w *= LoopWeight
	}
	return w
}

func (an *analyzer) block(b *Block, depth int) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		an.stmt(s, depth)
	}
}

func (an *analyzer) stmt(s Stmt, depth int) {
	c := an.counts
	if depth > c.MaxLoopDepth {
		c.MaxLoopDepth = depth
	}
	switch st := s.(type) {
	case *Block:
		an.block(st, depth)
	case *Decl:
		an.expr(st.Init, depth)
	case *StoreVar:
		an.expr(st.Value, depth)
	case *StoreElem:
		an.expr(st.Index, depth)
		an.expr(st.Value, depth)
		switch st.Buf.Type.Space {
		case minicl.Global:
			c.GlobalStores++
			c.WeightedGlobalStore += an.weight(depth)
			c.Accesses[classifyWithEnv(st.Index, an.env)]++
		case minicl.Local:
			c.LocalStores++
		}
	case *If:
		c.Branches++
		c.WeightedBranches += an.weight(depth)
		an.expr(st.Cond, depth)
		an.block(st.Then, depth)
		an.block(st.Else, depth)
	case *For:
		c.Loops++
		an.stmt(st.Init, depth)
		an.expr(st.Cond, depth+1)
		an.stmt(st.Post, depth+1)
		an.block(st.Body, depth+1)
	case *While:
		c.Loops++
		an.expr(st.Cond, depth+1)
		an.block(st.Body, depth+1)
	case *Return:
		an.expr(st.Value, depth)
	case *Barrier:
		c.Barriers++
	case *Eval:
		an.expr(st.X, depth)
	}
}

func (an *analyzer) expr(e Expr, depth int) {
	if e == nil {
		return
	}
	c := an.counts
	w := an.weight(depth)
	switch ex := e.(type) {
	case *Load:
		an.expr(ex.Index, depth)
		switch ex.Buf.Type.Space {
		case minicl.Global:
			c.GlobalLoads++
			c.WeightedGlobalLoads += w
			c.Accesses[classifyWithEnv(ex.Index, an.env)]++
		case minicl.Local:
			c.LocalLoads++
		}
	case *BinOp:
		an.expr(ex.L, depth)
		an.expr(ex.R, depth)
		if ex.L.ExprType().IsFloat() || ex.Typ.IsFloat() {
			c.FloatOps++
			c.WeightedFloatOps += w
		} else {
			c.IntOps++
			c.WeightedIntOps += w
		}
	case *UnOp:
		an.expr(ex.X, depth)
		if ex.Typ.IsFloat() {
			c.FloatOps++
			c.WeightedFloatOps += w
		} else {
			c.IntOps++
			c.WeightedIntOps += w
		}
	case *Select:
		c.Branches++
		c.WeightedBranches += w
		an.expr(ex.Cond, depth)
		an.expr(ex.Then, depth)
		an.expr(ex.Else, depth)
	case *Cast:
		c.Casts++
		an.expr(ex.X, depth)
	case *WorkItem:
		c.IntOps++ // an index-space query costs about one int op
		an.expr(ex.Dim, depth)
	case *CallBuiltin:
		for _, a := range ex.Args {
			an.expr(a, depth)
		}
		if transcendentals[ex.Name] {
			c.TranscendentalOps++
			c.WeightedTransOps += w
		} else {
			c.OtherBuiltins++
		}
	case *CallFunc:
		c.HelperCalls++
		for _, a := range ex.Args {
			an.expr(a, depth)
		}
		// Inline the helper's counts at the call site unless recursive.
		if !an.seen[ex.Callee] {
			an.seen[ex.Callee] = true
			an.block(ex.Callee.Body, depth)
			an.seen[ex.Callee] = false
		}
	}
}

// AffineEnv maps local variables to the abstract affine value of their
// definition, letting the classifier see through
// "int i = get_global_id(0); ... a[i]". Build one with BuildAffineEnv.
type AffineEnv = affineEnv

// BuildAffineEnv exposes the variable-definition analysis for clients
// (the backend) that classify individual accesses.
func BuildAffineEnv(fn *Function) AffineEnv { return buildAffineEnv(fn) }

// ClassifyIndexEnv classifies an index expression using a prebuilt
// variable environment.
func ClassifyIndexEnv(idx Expr, env AffineEnv) AccessPattern {
	return classifyWithEnv(idx, env)
}

// affineEnv maps local variables to the affine value of their definition,
// letting the classifier see through "int i = get_global_id(0); ... a[i]".
type affineEnv map[*Var]affine

// buildAffineEnv performs one forward pass over the function body, joining
// the affine values of all assignments to each variable. Variables assigned
// conflicting gid dependences are marked non-affine; loop counters (assigned
// init + increment, both gid-independent) stay uniform.
func buildAffineEnv(fn *Function) affineEnv {
	env := affineEnv{}
	record := func(v *Var, e Expr) {
		if e == nil {
			return
		}
		val := affineWith(e, env)
		// After a self-referential update (i = i + 1), constants are stale
		// but the gid coefficient of the join is what matters.
		if old, seen := env[v]; seen {
			if old.gidCoeff != val.gidCoeff || old.hasLoad != val.hasLoad {
				val = affine{nonAffine: old.gidCoeff != val.gidCoeff, hasLoad: old.hasLoad || val.hasLoad}
			}
			val.isConst = false
		}
		env[v] = val
	}
	WalkStmts(fn.Body, func(s Stmt) bool {
		switch st := s.(type) {
		case *Decl:
			record(st.Var, st.Init)
		case *StoreVar:
			record(st.Var, st.Value)
		}
		return true
	})
	return env
}

// ClassifyIndex classifies a buffer index expression by its dependence on
// get_global_id(0). The classification is a conservative symbolic pass:
// unresolved variables are treated as unknown-but-uniform terms, so
// gid*stride+var is still recognized as strided.
func ClassifyIndex(idx Expr) AccessPattern {
	return classifyWithEnv(idx, nil)
}

func classifyWithEnv(idx Expr, env affineEnv) AccessPattern {
	a := affineWith(idx, env)
	switch {
	case a.hasLoad:
		return AccessIndirect
	case a.nonAffine:
		return AccessUnknown
	case a.gidCoeff == 0:
		return AccessUniform
	case a.gidCoeff == 1 || a.gidCoeff == -1:
		return AccessCoalesced
	default:
		return AccessStrided
	}
}

// affine is the abstract value of the symbolic index analysis:
// gidCoeff*gid + (other terms). Unknown coefficients mark nonAffine.
type affine struct {
	gidCoeff  int64 // coefficient of get_global_id(0); 0 = independent
	constVal  int64 // known constant contribution (only meaningful if isConst)
	isConst   bool  // expression is a compile-time constant
	hasLoad   bool  // contains a memory load (indirect)
	nonAffine bool  // gid enters non-affinely (e.g. gid*gid, gid%k)
}

func affineWith(e Expr, env affineEnv) affine {
	switch ex := e.(type) {
	case *ConstInt:
		return affine{constVal: ex.Value, isConst: true}
	case *ConstFloat:
		return affine{isConst: true}
	case *VarRef:
		if env != nil {
			if a, ok := env[ex.Var]; ok {
				return a
			}
		}
		return affine{} // uniform unknown
	case *WorkItem:
		if ex.Query == GlobalID {
			if d, ok := ex.Dim.(*ConstInt); ok && d.Value == 0 {
				return affine{gidCoeff: 1}
			}
			// Higher dimensions are uniform along the partition axis
			// (we always partition dimension 0).
			return affine{}
		}
		if ex.Query == LocalID {
			// local id varies like gid modulo group size: same coalescing.
			return affine{gidCoeff: 1}
		}
		return affine{}
	case *Load:
		return affine{hasLoad: true}
	case *Cast:
		return affineWith(ex.X, env)
	case *UnOp:
		a := affineWith(ex.X, env)
		if ex.Op == OpNeg {
			a.gidCoeff = -a.gidCoeff
			a.constVal = -a.constVal
		}
		return a
	case *BinOp:
		l, r := affineWith(ex.L, env), affineWith(ex.R, env)
		out := affine{
			hasLoad:   l.hasLoad || r.hasLoad,
			nonAffine: l.nonAffine || r.nonAffine,
		}
		switch ex.Op {
		case OpAdd:
			out.gidCoeff = l.gidCoeff + r.gidCoeff
			out.isConst = l.isConst && r.isConst
			out.constVal = l.constVal + r.constVal
		case OpSub:
			out.gidCoeff = l.gidCoeff - r.gidCoeff
			out.isConst = l.isConst && r.isConst
			out.constVal = l.constVal - r.constVal
		case OpMul:
			switch {
			case l.gidCoeff != 0 && r.gidCoeff != 0:
				out.nonAffine = true
			case l.gidCoeff != 0:
				if r.isConst {
					out.gidCoeff = l.gidCoeff * r.constVal
				} else {
					// gid * unknown-uniform: strided with unknown stride.
					out.gidCoeff = 2
				}
			case r.gidCoeff != 0:
				if l.isConst {
					out.gidCoeff = r.gidCoeff * l.constVal
				} else {
					out.gidCoeff = 2
				}
			default:
				out.isConst = l.isConst && r.isConst
				out.constVal = l.constVal * r.constVal
			}
		case OpDiv, OpMod, OpShr, OpShl, OpAnd, OpOr, OpXor:
			if l.gidCoeff != 0 || r.gidCoeff != 0 {
				out.nonAffine = true
			}
		default:
			if l.gidCoeff != 0 || r.gidCoeff != 0 {
				out.nonAffine = true
			}
		}
		return out
	case *Select:
		c, t, f := affineWith(ex.Cond, env), affineWith(ex.Then, env), affineWith(ex.Else, env)
		return affine{
			hasLoad:   c.hasLoad || t.hasLoad || f.hasLoad,
			nonAffine: true, // data-dependent index selection
		}
	case *CallBuiltin:
		out := affine{}
		for _, a := range ex.Args {
			aa := affineWith(a, env)
			out.hasLoad = out.hasLoad || aa.hasLoad
			if aa.gidCoeff != 0 || aa.nonAffine {
				out.nonAffine = true
			}
		}
		return out
	case *CallFunc:
		return affine{nonAffine: true}
	}
	return affine{nonAffine: true}
}
