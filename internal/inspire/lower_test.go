package inspire

import (
	"strings"
	"testing"

	"repro/internal/minicl"
)

const vecaddSrc = `
kernel void vecadd(global const float* a, global const float* b,
                   global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

func mustLower(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := LowerSource("test", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(u); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return u
}

func TestLowerVecadd(t *testing.T) {
	u := mustLower(t, vecaddSrc)
	k := u.Kernel("vecadd")
	if k == nil {
		t.Fatal("kernel vecadd missing")
	}
	if len(k.Params) != 4 {
		t.Fatalf("got %d params, want 4", len(k.Params))
	}
	if k.NumVars != 5 { // 4 params + i
		t.Errorf("NumVars = %d, want 5", k.NumVars)
	}
	// Body: decl i; if.
	if len(k.Body.Stmts) != 2 {
		t.Fatalf("got %d statements, want 2", len(k.Body.Stmts))
	}
	decl, ok := k.Body.Stmts[0].(*Decl)
	if !ok {
		t.Fatalf("first statement %T, want *Decl", k.Body.Stmts[0])
	}
	if _, ok := decl.Init.(*WorkItem); !ok {
		t.Errorf("decl init %T, want *WorkItem", decl.Init)
	}
	ifs, ok := k.Body.Stmts[1].(*If)
	if !ok {
		t.Fatalf("second statement %T, want *If", k.Body.Stmts[1])
	}
	store, ok := ifs.Then.Stmts[0].(*StoreElem)
	if !ok {
		t.Fatalf("then body %T, want *StoreElem", ifs.Then.Stmts[0])
	}
	if store.Buf.Name != "c" {
		t.Errorf("store target %s, want c", store.Buf.Name)
	}
}

func TestLowerCompoundAssign(t *testing.T) {
	u := mustLower(t, `kernel void f(global float* o, int n) {
		float s = 0.0;
		s += 2.0;
		o[0] += s;
	}`)
	k := u.Kernel("f")
	sv, ok := k.Body.Stmts[1].(*StoreVar)
	if !ok {
		t.Fatalf("statement 1 is %T, want *StoreVar", k.Body.Stmts[1])
	}
	bin, ok := sv.Value.(*BinOp)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("compound assign lowered to %s, want (s + 2)", ExprString(sv.Value))
	}
	se, ok := k.Body.Stmts[2].(*StoreElem)
	if !ok {
		t.Fatalf("statement 2 is %T, want *StoreElem", k.Body.Stmts[2])
	}
	binE, ok := se.Value.(*BinOp)
	if !ok || binE.Op != OpAdd {
		t.Fatal("buffer compound assign not expanded to load+add")
	}
	if _, ok := binE.L.(*Load); !ok {
		t.Errorf("compound element assign LHS is %T, want *Load", binE.L)
	}
}

func TestLowerIncDec(t *testing.T) {
	u := mustLower(t, `kernel void f(global int* o) {
		int i = 0;
		i++;
		i--;
		o[0] = i;
	}`)
	k := u.Kernel("f")
	inc := k.Body.Stmts[1].(*StoreVar).Value.(*BinOp)
	if inc.Op != OpAdd {
		t.Errorf("i++ lowered with op %s, want +", inc.Op)
	}
	dec := k.Body.Stmts[2].(*StoreVar).Value.(*BinOp)
	if dec.Op != OpSub {
		t.Errorf("i-- lowered with op %s, want -", dec.Op)
	}
}

func TestLowerImplicitConversion(t *testing.T) {
	u := mustLower(t, `kernel void f(global float* o, int n) {
		o[0] = n;       // int -> float store
		float x = n + 0.5;
		o[1] = x;
	}`)
	k := u.Kernel("f")
	se := k.Body.Stmts[0].(*StoreElem)
	if !se.Value.ExprType().IsFloat() {
		t.Errorf("stored value type %s, want float", se.Value.ExprType())
	}
	if _, ok := se.Value.(*Cast); !ok {
		t.Errorf("int->float store lowered as %T, want *Cast", se.Value)
	}
}

func TestLowerConstFold(t *testing.T) {
	u := mustLower(t, `kernel void f(global float* o) { o[0] = 1 + 0.5; }`)
	se := u.Kernel("f").Body.Stmts[0].(*StoreElem)
	bin := se.Value.(*BinOp)
	if _, ok := bin.L.(*ConstFloat); !ok {
		t.Errorf("int literal in float context lowered as %T, want *ConstFloat", bin.L)
	}
}

func TestLowerIntCondCoercion(t *testing.T) {
	u := mustLower(t, `kernel void f(global int* o, int n) {
		if (n) { o[0] = 1; }
		while (n) { break; }
	}`)
	k := u.Kernel("f")
	ifs := k.Body.Stmts[0].(*If)
	bin, ok := ifs.Cond.(*BinOp)
	if !ok || bin.Op != OpNe {
		t.Errorf("int condition lowered to %s, want (n != 0)", ExprString(ifs.Cond))
	}
}

func TestLowerHelperCall(t *testing.T) {
	u := mustLower(t, `
float sq(float x) { return x * x; }
kernel void f(global float* o) { o[0] = sq(2.0) + sq(3.0); }
`)
	if len(u.Helpers) != 1 {
		t.Fatalf("got %d helpers, want 1", len(u.Helpers))
	}
	k := u.Kernel("f")
	var calls int
	WalkExprs(k.Body, func(e Expr) {
		if cf, ok := e.(*CallFunc); ok {
			calls++
			if cf.Callee != u.Helpers[0] {
				t.Error("call not resolved to helper shell")
			}
		}
	})
	if calls != 2 {
		t.Errorf("found %d helper calls, want 2", calls)
	}
}

func TestLowerBarrier(t *testing.T) {
	u := mustLower(t, `kernel void f(local float* tmp, global float* o) {
		tmp[get_local_id(0)] = 1.0;
		barrier(1);
		o[0] = tmp[0];
	}`)
	k := u.Kernel("f")
	if _, ok := k.Body.Stmts[1].(*Barrier); !ok {
		t.Errorf("statement 1 is %T, want *Barrier", k.Body.Stmts[1])
	}
}

func TestLowerShadowing(t *testing.T) {
	u := mustLower(t, `kernel void f(global int* o, int n) {
		int x = 1;
		for (int i = 0; i < n; i++) {
			int x = 2;
			o[i] = x;
		}
		o[n] = x;
	}`)
	k := u.Kernel("f")
	// Outer x and inner x must be distinct vars: the final store reads the outer one.
	outerDecl := k.Body.Stmts[0].(*Decl)
	lastStore := k.Body.Stmts[2].(*StoreElem)
	vr, ok := lastStore.Value.(*VarRef)
	if !ok {
		t.Fatalf("last store value %T, want *VarRef", lastStore.Value)
	}
	if vr.Var != outerDecl.Var {
		t.Error("outer x reference resolved to inner x")
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	u := mustLower(t, vecaddSrc)
	k := u.Kernel("vecadd")
	// Introduce an undeclared variable reference.
	rogue := &Var{ID: 99, Name: "rogue", Type: minicl.TypeInt}
	k.Body.Stmts = append(k.Body.Stmts, &StoreVar{Var: rogue, Value: &ConstInt{Value: 1, Typ: minicl.TypeInt}})
	if err := Verify(u); err == nil {
		t.Fatal("Verify accepted IR with undeclared variable")
	}
}

func TestVerifyCatchesConstStore(t *testing.T) {
	u := mustLower(t, vecaddSrc)
	k := u.Kernel("vecadd")
	a := k.Params[0] // global const float*
	k.Body.Stmts = append(k.Body.Stmts, &StoreElem{
		Buf: a, Index: &ConstInt{Value: 0, Typ: minicl.TypeInt}, Value: &ConstFloat{Value: 1},
	})
	if err := Verify(u); err == nil || !strings.Contains(err.Error(), "const") {
		t.Fatalf("Verify error = %v, want const-store violation", err)
	}
}

func TestPrintRoundTripStable(t *testing.T) {
	u := mustLower(t, vecaddSrc)
	s1 := Print(u)
	s2 := Print(u)
	if s1 != s2 {
		t.Error("Print is not deterministic")
	}
	for _, want := range []string{"kernel vecadd", "get_global_id", "if", "c%2[", "unit test"} {
		if !strings.Contains(s1, want) {
			t.Errorf("printed IR missing %q:\n%s", want, s1)
		}
	}
}
