package inspire

import "repro/internal/minicl"

// This file implements the compile-time optimization passes the framework
// runs before feature extraction and code generation, mirroring the
// cleanup pipeline of a production source-to-source compiler:
//
//   - constant folding (arithmetic, comparisons, selects on constants)
//   - algebraic simplification (x*1, x+0, x*0, x/1, double negation)
//   - dead code elimination (branches with constant conditions, loops
//     that provably never run, code after return/break/continue)
//
// Passes matter for the reproduction because static features must reflect
// the code a backend would actually run: unfolded constants or dead
// branches would otherwise skew operation mixes.

// Optimize runs the standard pass pipeline over every function of the
// unit, in place, until a fixed point (bounded by a small iteration cap).
func Optimize(u *Unit) {
	for _, f := range append(append([]*Function{}, u.Helpers...), u.Kernels...) {
		for i := 0; i < 4; i++ {
			changed := foldFunction(f)
			if elim := eliminateDead(f); elim {
				changed = true
			}
			if !changed {
				break
			}
		}
	}
}

// --- constant folding and algebraic simplification ---

// foldFunction folds expressions in every statement; reports change.
func foldFunction(f *Function) bool {
	changed := false
	var foldStmt func(s Stmt)
	foldExprP := func(e *Expr) {
		if *e == nil {
			return
		}
		folded, c := foldExpr(*e)
		if c {
			*e = folded
			changed = true
		}
	}
	foldStmt = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, inner := range st.Stmts {
				foldStmt(inner)
			}
		case *Decl:
			foldExprP(&st.Init)
		case *StoreVar:
			foldExprP(&st.Value)
		case *StoreElem:
			foldExprP(&st.Index)
			foldExprP(&st.Value)
		case *If:
			foldExprP(&st.Cond)
			foldStmt(st.Then)
			if st.Else != nil {
				foldStmt(st.Else)
			}
		case *For:
			if st.Init != nil {
				foldStmt(st.Init)
			}
			foldExprP(&st.Cond)
			if st.Post != nil {
				foldStmt(st.Post)
			}
			foldStmt(st.Body)
		case *While:
			foldExprP(&st.Cond)
			foldStmt(st.Body)
		case *Return:
			foldExprP(&st.Value)
		case *Eval:
			foldExprP(&st.X)
		}
	}
	foldStmt(f.Body)
	return changed
}

// foldExpr rewrites an expression bottom-up, returning the (possibly new)
// expression and whether anything changed.
func foldExpr(e Expr) (Expr, bool) {
	switch ex := e.(type) {
	case *BinOp:
		l, cl := foldExpr(ex.L)
		r, cr := foldExpr(ex.R)
		ex.L, ex.R = l, r
		if out, ok := foldBinOp(ex); ok {
			return out, true
		}
		return ex, cl || cr
	case *UnOp:
		x, c := foldExpr(ex.X)
		ex.X = x
		switch ex.Op {
		case OpNeg:
			switch v := x.(type) {
			case *ConstInt:
				return &ConstInt{Value: -v.Value, Typ: ex.Typ}, true
			case *ConstFloat:
				return &ConstFloat{Value: -v.Value}, true
			case *UnOp:
				if v.Op == OpNeg { // --x = x
					return v.X, true
				}
			}
		case OpLNot:
			if v, ok := x.(*ConstBool); ok {
				return &ConstBool{Value: !v.Value}, true
			}
			if v, ok := x.(*UnOp); ok && v.Op == OpLNot { // !!x = x
				return v.X, true
			}
		}
		return ex, c
	case *Select:
		cond, cc := foldExpr(ex.Cond)
		then, ct := foldExpr(ex.Then)
		els, ce := foldExpr(ex.Else)
		ex.Cond, ex.Then, ex.Else = cond, then, els
		if v, ok := cond.(*ConstBool); ok {
			if v.Value {
				return then, true
			}
			return els, true
		}
		return ex, cc || ct || ce
	case *Cast:
		x, c := foldExpr(ex.X)
		ex.X = x
		switch v := x.(type) {
		case *ConstInt:
			if ex.To.IsFloat() {
				return &ConstFloat{Value: float64(v.Value)}, true
			}
			if ex.To.IsInteger() {
				return &ConstInt{Value: v.Value, Typ: ex.To}, true
			}
		case *ConstFloat:
			if ex.To.IsInteger() {
				return &ConstInt{Value: int64(v.Value), Typ: ex.To}, true
			}
			if ex.To.IsFloat() {
				return v, true
			}
		}
		return ex, c
	case *Load:
		idx, c := foldExpr(ex.Index)
		ex.Index = idx
		return ex, c
	case *CallBuiltin:
		changed := false
		for i := range ex.Args {
			a, c := foldExpr(ex.Args[i])
			ex.Args[i] = a
			changed = changed || c
		}
		return ex, changed
	case *CallFunc:
		changed := false
		for i := range ex.Args {
			a, c := foldExpr(ex.Args[i])
			ex.Args[i] = a
			changed = changed || c
		}
		return ex, changed
	case *WorkItem:
		d, c := foldExpr(ex.Dim)
		ex.Dim = d
		return ex, c
	}
	return e, false
}

// foldBinOp handles constant and algebraic binary rewrites.
func foldBinOp(ex *BinOp) (Expr, bool) {
	li, lIsInt := ex.L.(*ConstInt)
	ri, rIsInt := ex.R.(*ConstInt)
	lf, lIsFloat := ex.L.(*ConstFloat)
	rf, rIsFloat := ex.R.(*ConstFloat)
	lb, lIsBool := ex.L.(*ConstBool)
	rb, rIsBool := ex.R.(*ConstBool)

	// Integer constant arithmetic.
	if lIsInt && rIsInt {
		if out, ok := foldIntInt(ex.Op, li.Value, ri.Value, ex.Typ); ok {
			return out, true
		}
	}
	// Float constant arithmetic.
	if lIsFloat && rIsFloat {
		if out, ok := foldFloatFloat(ex.Op, lf.Value, rf.Value); ok {
			return out, true
		}
	}
	// Logical constants.
	if ex.Op == OpLAnd {
		if lIsBool {
			if !lb.Value {
				return &ConstBool{Value: false}, true
			}
			return ex.R, true
		}
		if rIsBool && rb.Value {
			return ex.L, true
		}
	}
	if ex.Op == OpLOr {
		if lIsBool {
			if lb.Value {
				return &ConstBool{Value: true}, true
			}
			return ex.R, true
		}
		if rIsBool && !rb.Value {
			return ex.L, true
		}
	}

	// Algebraic identities (numeric only; float identities below are safe
	// for the values kernels produce: x+0, x*1, x*0 keep sign behaviour
	// close enough for feature extraction and execution parity).
	isZeroR := (rIsInt && ri.Value == 0) || (rIsFloat && rf.Value == 0)
	isOneR := (rIsInt && ri.Value == 1) || (rIsFloat && rf.Value == 1)
	isZeroL := (lIsInt && li.Value == 0) || (lIsFloat && lf.Value == 0)
	isOneL := (lIsInt && li.Value == 1) || (lIsFloat && lf.Value == 1)
	switch ex.Op {
	case OpAdd:
		if isZeroR {
			return ex.L, true
		}
		if isZeroL {
			return ex.R, true
		}
	case OpSub:
		if isZeroR {
			return ex.L, true
		}
	case OpMul:
		if isOneR {
			return ex.L, true
		}
		if isOneL {
			return ex.R, true
		}
		if (isZeroR || isZeroL) && ex.Typ.IsInteger() {
			return &ConstInt{Value: 0, Typ: ex.Typ}, true
		}
	case OpDiv:
		if isOneR {
			return ex.L, true
		}
	case OpShl, OpShr:
		if isZeroR {
			return ex.L, true
		}
	}
	return nil, false
}

func foldIntInt(op Op, a, b int64, t minicl.Type) (Expr, bool) {
	mk := func(v int64) Expr { return &ConstInt{Value: v, Typ: t} }
	mkb := func(v bool) Expr { return &ConstBool{Value: v} }
	switch op {
	case OpAdd:
		return mk(a + b), true
	case OpSub:
		return mk(a - b), true
	case OpMul:
		return mk(a * b), true
	case OpDiv:
		if b == 0 {
			return nil, false // preserve the runtime fault
		}
		return mk(a / b), true
	case OpMod:
		if b == 0 {
			return nil, false
		}
		return mk(a % b), true
	case OpAnd:
		return mk(a & b), true
	case OpOr:
		return mk(a | b), true
	case OpXor:
		return mk(a ^ b), true
	case OpShl:
		return mk(a << uint(b&63)), true
	case OpShr:
		return mk(a >> uint(b&63)), true
	case OpLt:
		return mkb(a < b), true
	case OpLe:
		return mkb(a <= b), true
	case OpGt:
		return mkb(a > b), true
	case OpGe:
		return mkb(a >= b), true
	case OpEq:
		return mkb(a == b), true
	case OpNe:
		return mkb(a != b), true
	}
	return nil, false
}

func foldFloatFloat(op Op, a, b float64) (Expr, bool) {
	mk := func(v float64) Expr { return &ConstFloat{Value: v} }
	mkb := func(v bool) Expr { return &ConstBool{Value: v} }
	switch op {
	case OpAdd:
		return mk(a + b), true
	case OpSub:
		return mk(a - b), true
	case OpMul:
		return mk(a * b), true
	case OpDiv:
		if b == 0 {
			return nil, false // keep Inf/NaN semantics at run time
		}
		return mk(a / b), true
	case OpLt:
		return mkb(a < b), true
	case OpLe:
		return mkb(a <= b), true
	case OpGt:
		return mkb(a > b), true
	case OpGe:
		return mkb(a >= b), true
	case OpEq:
		return mkb(a == b), true
	case OpNe:
		return mkb(a != b), true
	}
	return nil, false
}

// --- dead code elimination ---

// eliminateDead removes statically dead statements; reports change.
func eliminateDead(f *Function) bool {
	changed := false
	var cleanBlock func(b *Block)
	cleanBlock = func(b *Block) {
		if b == nil {
			return
		}
		var out []Stmt
		for _, s := range b.Stmts {
			// Recurse first.
			switch st := s.(type) {
			case *Block:
				cleanBlock(st)
			case *If:
				cleanBlock(st.Then)
				cleanBlock(st.Else)
			case *For:
				cleanBlock(st.Body)
			case *While:
				cleanBlock(st.Body)
			}
			// Constant-condition branches.
			if ifs, ok := s.(*If); ok {
				if c, isConst := ifs.Cond.(*ConstBool); isConst {
					changed = true
					if c.Value {
						out = append(out, ifs.Then)
					} else if ifs.Else != nil {
						out = append(out, ifs.Else)
					}
					continue
				}
			}
			// while(false) never runs.
			if ws, ok := s.(*While); ok {
				if c, isConst := ws.Cond.(*ConstBool); isConst && !c.Value {
					changed = true
					continue
				}
			}
			out = append(out, s)
			// Everything after a terminator in the same block is dead.
			if isTerminator(s) {
				if len(out) < len(b.Stmts) {
					changed = true
				}
				break
			}
		}
		if len(out) != len(b.Stmts) {
			changed = true
		}
		b.Stmts = out
	}
	cleanBlock(f.Body)
	return changed
}

// isTerminator reports whether control cannot flow past the statement.
func isTerminator(s Stmt) bool {
	switch st := s.(type) {
	case *Return, *Break, *Continue:
		return true
	case *Block:
		if len(st.Stmts) == 0 {
			return false
		}
		return isTerminator(st.Stmts[len(st.Stmts)-1])
	}
	return false
}
