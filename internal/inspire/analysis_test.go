package inspire

import (
	"testing"
)

func analyzeSrc(t *testing.T, src, kernel string) *StaticCounts {
	t.Helper()
	u := mustLower(t, src)
	k := u.Kernel(kernel)
	if k == nil {
		t.Fatalf("kernel %q not found", kernel)
	}
	return Analyze(k)
}

func TestAnalyzeVecaddCounts(t *testing.T) {
	c := analyzeSrc(t, vecaddSrc, "vecadd")
	if c.GlobalLoads != 2 {
		t.Errorf("GlobalLoads = %d, want 2", c.GlobalLoads)
	}
	if c.GlobalStores != 1 {
		t.Errorf("GlobalStores = %d, want 1", c.GlobalStores)
	}
	if c.FloatOps != 1 {
		t.Errorf("FloatOps = %d, want 1", c.FloatOps)
	}
	if c.Branches != 1 {
		t.Errorf("Branches = %d, want 1", c.Branches)
	}
	if c.Loops != 0 || c.MaxLoopDepth != 0 {
		t.Errorf("Loops=%d depth=%d, want 0/0", c.Loops, c.MaxLoopDepth)
	}
	if got := c.Accesses[AccessCoalesced]; got != 3 {
		t.Errorf("coalesced accesses = %d, want 3 (a[i], b[i], c[i])", got)
	}
}

func TestAnalyzeLoopWeighting(t *testing.T) {
	src := `kernel void f(global float* o, int n) {
		float s = 0.0;
		for (int i = 0; i < n; i++) {
			s += o[i];
		}
		o[0] = s;
	}`
	c := analyzeSrc(t, src, "f")
	if c.Loops != 1 {
		t.Errorf("Loops = %d, want 1", c.Loops)
	}
	if c.MaxLoopDepth != 1 {
		t.Errorf("MaxLoopDepth = %d, want 1", c.MaxLoopDepth)
	}
	// Loads inside the loop must weigh LoopWeight x a top-level load.
	if c.WeightedGlobalLoads < LoopWeight {
		t.Errorf("WeightedGlobalLoads = %g, want >= %g", c.WeightedGlobalLoads, LoopWeight)
	}
}

func TestAnalyzeNestedLoops(t *testing.T) {
	src := `kernel void mm(global const float* a, global const float* b, global float* c, int n) {
		int i = get_global_id(0);
		for (int j = 0; j < n; j++) {
			float acc = 0.0;
			for (int k = 0; k < n; k++) {
				acc += a[i*n+k] * b[k*n+j];
			}
			c[i*n+j] = acc;
		}
	}`
	c := analyzeSrc(t, src, "mm")
	if c.MaxLoopDepth != 2 {
		t.Errorf("MaxLoopDepth = %d, want 2", c.MaxLoopDepth)
	}
	if c.Loops != 2 {
		t.Errorf("Loops = %d, want 2", c.Loops)
	}
	// Inner-loop float ops should be weighted by LoopWeight^2.
	if c.WeightedFloatOps < LoopWeight*LoopWeight {
		t.Errorf("WeightedFloatOps = %g, want >= %g", c.WeightedFloatOps, LoopWeight*LoopWeight)
	}
}

func TestAnalyzeTranscendentals(t *testing.T) {
	src := `kernel void f(global float* o) {
		int i = get_global_id(0);
		o[i] = exp(sin(1.0)) + fabs(-2.0) + min(1.0, 2.0);
	}`
	c := analyzeSrc(t, src, "f")
	if c.TranscendentalOps != 2 {
		t.Errorf("TranscendentalOps = %d, want 2 (exp, sin)", c.TranscendentalOps)
	}
	if c.OtherBuiltins != 2 {
		t.Errorf("OtherBuiltins = %d, want 2 (fabs, min)", c.OtherBuiltins)
	}
}

func TestAnalyzeHelperInlining(t *testing.T) {
	src := `
float sq(float x) { return x * x; }
kernel void f(global float* o) { o[0] = sq(2.0); }
`
	c := analyzeSrc(t, src, "f")
	if c.HelperCalls != 1 {
		t.Errorf("HelperCalls = %d, want 1", c.HelperCalls)
	}
	if c.FloatOps < 1 {
		t.Errorf("FloatOps = %d, want >=1 (inlined x*x)", c.FloatOps)
	}
}

func TestAnalyzeLocalMemoryAndBarrier(t *testing.T) {
	src := `kernel void f(local float* tmp, global float* o) {
		int l = get_local_id(0);
		tmp[l] = o[l];
		barrier(1);
		o[l] = tmp[0];
	}`
	c := analyzeSrc(t, src, "f")
	if c.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1", c.Barriers)
	}
	if c.LocalStores != 1 || c.LocalLoads != 1 {
		t.Errorf("local stores/loads = %d/%d, want 1/1", c.LocalStores, c.LocalLoads)
	}
}

func TestClassifyIndexPatterns(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want AccessPattern
	}{
		{"coalesced gid", `kernel void f(global float* o) { o[get_global_id(0)] = 1.0; }`, AccessCoalesced},
		{"coalesced gid+1", `kernel void f(global float* o) { o[get_global_id(0) + 1] = 1.0; }`, AccessCoalesced},
		{"uniform", `kernel void f(global float* o, int n) { o[n] = 1.0; }`, AccessUniform},
		{"strided", `kernel void f(global float* o) { o[get_global_id(0) * 4] = 1.0; }`, AccessStrided},
		{"strided unknown", `kernel void f(global float* o, int n) { o[get_global_id(0) * n] = 1.0; }`, AccessStrided},
		{"indirect", `kernel void f(global float* o, global const int* idx) { o[idx[get_global_id(0)]] = 1.0; }`, AccessIndirect},
		{"nonaffine", `kernel void f(global float* o, int n) { o[get_global_id(0) % n] = 1.0; }`, AccessUnknown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := mustLower(t, tc.src)
			k := u.Kernel("f")
			var got AccessPattern = -1
			WalkStmts(k.Body, func(s Stmt) bool {
				if se, ok := s.(*StoreElem); ok {
					got = ClassifyIndex(se.Index)
				}
				return true
			})
			if got != tc.want {
				t.Errorf("classified %s, want %s", got, tc.want)
			}
		})
	}
}

func TestClassifyIndexRowMajor2D(t *testing.T) {
	// i*n + j with i = gid: strided (row-major row per work item).
	src := `kernel void f(global float* o, int n) {
		int i = get_global_id(0);
		for (int j = 0; j < n; j++) {
			o[i * n + j] = 1.0;
		}
	}`
	u := mustLower(t, src)
	var got AccessPattern = -1
	WalkStmts(u.Kernel("f").Body, func(s Stmt) bool {
		if se, ok := s.(*StoreElem); ok {
			got = ClassifyIndex(se.Index)
		}
		return true
	})
	// i is a variable (uniform unknown after decl), so i*n+j is classified
	// uniform: the analysis is intentionally conservative about locals.
	if got != AccessUniform && got != AccessStrided {
		t.Errorf("classified %s, want uniform or strided", got)
	}
}

func TestWalkStmtsStopsDescent(t *testing.T) {
	u := mustLower(t, `kernel void f(global int* o, int n) {
		if (n > 0) { o[0] = 1; o[1] = 2; }
	}`)
	var count int
	WalkStmts(u.Kernel("f").Body, func(s Stmt) bool {
		count++
		_, isIf := s.(*If)
		return !isIf // do not descend into if
	})
	if count != 1 {
		t.Errorf("visited %d statements, want 1 (stopped at if)", count)
	}
}
