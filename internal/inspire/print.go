package inspire

import (
	"fmt"
	"strings"
)

// Print renders the unit as readable pseudo-INSPIRE text, mainly for
// debugging and golden tests.
func Print(u *Unit) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "unit %s\n", u.Name)
	for _, h := range u.Helpers {
		printFunc(&sb, h)
	}
	for _, k := range u.Kernels {
		printFunc(&sb, k)
	}
	return sb.String()
}

// PrintFunction renders a single function.
func PrintFunction(f *Function) string {
	var sb strings.Builder
	printFunc(&sb, f)
	return sb.String()
}

func printFunc(sb *strings.Builder, f *Function) {
	kind := "func"
	if f.Kernel {
		kind = "kernel"
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %s", p.Type, p)
	}
	fmt.Fprintf(sb, "%s %s(%s) -> %s {\n", kind, f.Name, strings.Join(params, ", "), f.Ret)
	printBlock(sb, f.Body, 1)
	sb.WriteString("}\n")
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func printBlock(sb *strings.Builder, b *Block, depth int) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		printStmt(sb, s, depth)
	}
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch st := s.(type) {
	case *Block:
		sb.WriteString("{\n")
		printBlock(sb, st, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	case *Decl:
		if st.Init != nil {
			fmt.Fprintf(sb, "decl %s %s = %s\n", st.Var.Type, st.Var, ExprString(st.Init))
		} else {
			fmt.Fprintf(sb, "decl %s %s\n", st.Var.Type, st.Var)
		}
	case *StoreVar:
		fmt.Fprintf(sb, "%s = %s\n", st.Var, ExprString(st.Value))
	case *StoreElem:
		fmt.Fprintf(sb, "%s[%s] = %s\n", st.Buf, ExprString(st.Index), ExprString(st.Value))
	case *If:
		fmt.Fprintf(sb, "if %s {\n", ExprString(st.Cond))
		printBlock(sb, st.Then, depth+1)
		if st.Else != nil {
			indent(sb, depth)
			sb.WriteString("} else {\n")
			printBlock(sb, st.Else, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *For:
		sb.WriteString("for ")
		if st.Init != nil {
			var tmp strings.Builder
			printStmt(&tmp, st.Init, 0)
			sb.WriteString(strings.TrimSuffix(tmp.String(), "\n"))
		}
		sb.WriteString("; ")
		if st.Cond != nil {
			sb.WriteString(ExprString(st.Cond))
		}
		sb.WriteString("; ")
		if st.Post != nil {
			var tmp strings.Builder
			printStmt(&tmp, st.Post, 0)
			sb.WriteString(strings.TrimSuffix(tmp.String(), "\n"))
		}
		sb.WriteString(" {\n")
		printBlock(sb, st.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	case *While:
		fmt.Fprintf(sb, "while %s {\n", ExprString(st.Cond))
		printBlock(sb, st.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	case *Return:
		if st.Value != nil {
			fmt.Fprintf(sb, "return %s\n", ExprString(st.Value))
		} else {
			sb.WriteString("return\n")
		}
	case *Break:
		sb.WriteString("break\n")
	case *Continue:
		sb.WriteString("continue\n")
	case *Barrier:
		sb.WriteString("barrier\n")
	case *Eval:
		fmt.Fprintf(sb, "eval %s\n", ExprString(st.X))
	default:
		fmt.Fprintf(sb, "?stmt %T\n", s)
	}
}

// ExprString renders an expression as text.
func ExprString(e Expr) string {
	switch ex := e.(type) {
	case nil:
		return "<nil>"
	case *ConstInt:
		return fmt.Sprintf("%d", ex.Value)
	case *ConstFloat:
		return fmt.Sprintf("%g", ex.Value)
	case *ConstBool:
		return fmt.Sprintf("%t", ex.Value)
	case *VarRef:
		return ex.Var.String()
	case *Load:
		return fmt.Sprintf("%s[%s]", ex.Buf, ExprString(ex.Index))
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", ExprString(ex.L), ex.Op, ExprString(ex.R))
	case *UnOp:
		return fmt.Sprintf("(%s %s)", ex.Op, ExprString(ex.X))
	case *Select:
		return fmt.Sprintf("(%s ? %s : %s)", ExprString(ex.Cond), ExprString(ex.Then), ExprString(ex.Else))
	case *Cast:
		return fmt.Sprintf("(%s)(%s)", ex.To, ExprString(ex.X))
	case *WorkItem:
		return fmt.Sprintf("%s(%s)", ex.Query, ExprString(ex.Dim))
	case *CallBuiltin:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", ex.Name, strings.Join(args, ", "))
	case *CallFunc:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", ex.Callee.Name, strings.Join(args, ", "))
	}
	return fmt.Sprintf("?expr %T", e)
}
