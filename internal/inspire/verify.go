package inspire

import (
	"fmt"

	"repro/internal/minicl"
)

// Verify checks structural well-formedness of a lowered unit: every variable
// referenced is a parameter or was declared earlier in scope order, variable
// IDs are dense and unique per function, stores target non-const buffers,
// and expression types are internally consistent. It returns the first
// violation found.
//
// Verify is used by tests and by the compile pipeline in debug mode; a unit
// produced by Lower from a checked program must always verify.
func Verify(u *Unit) error {
	all := append(append([]*Function{}, u.Helpers...), u.Kernels...)
	for _, f := range all {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("function %q: %w", f.Name, err)
		}
	}
	if len(u.Kernels) == 0 {
		return fmt.Errorf("unit %q has no kernels", u.Name)
	}
	return nil
}

func verifyFunc(f *Function) error {
	v := &verifier{declared: map[*Var]bool{}, ids: map[int]*Var{}}
	for _, p := range f.Params {
		if !p.Param {
			return fmt.Errorf("parameter %s not marked Param", p)
		}
		if err := v.declare(p); err != nil {
			return err
		}
	}
	if f.Body == nil {
		return fmt.Errorf("missing body")
	}
	if err := v.block(f.Body); err != nil {
		return err
	}
	if len(v.ids) > f.NumVars {
		return fmt.Errorf("NumVars=%d but %d variables seen", f.NumVars, len(v.ids))
	}
	return nil
}

type verifier struct {
	declared map[*Var]bool
	ids      map[int]*Var
}

func (v *verifier) declare(va *Var) error {
	if v.declared[va] {
		return fmt.Errorf("variable %s declared twice", va)
	}
	if prev, clash := v.ids[va.ID]; clash {
		return fmt.Errorf("variable ID %d used by both %s and %s", va.ID, prev, va)
	}
	v.declared[va] = true
	v.ids[va.ID] = va
	return nil
}

func (v *verifier) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := v.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (v *verifier) stmt(s Stmt) error {
	switch st := s.(type) {
	case nil:
		return nil
	case *Block:
		return v.block(st)
	case *Decl:
		if st.Init != nil {
			if err := v.expr(st.Init); err != nil {
				return err
			}
			if !assignCompatible(st.Var.Type, st.Init.ExprType()) {
				return fmt.Errorf("decl %s: init type %s incompatible with %s",
					st.Var, st.Init.ExprType(), st.Var.Type)
			}
		}
		return v.declare(st.Var)
	case *StoreVar:
		if !v.declared[st.Var] {
			return fmt.Errorf("store to undeclared variable %s", st.Var)
		}
		if st.Var.Type.Ptr {
			return fmt.Errorf("store to pointer variable %s", st.Var)
		}
		if err := v.expr(st.Value); err != nil {
			return err
		}
		if !assignCompatible(st.Var.Type, st.Value.ExprType()) {
			return fmt.Errorf("store to %s: value type %s incompatible with %s",
				st.Var, st.Value.ExprType(), st.Var.Type)
		}
		return nil
	case *StoreElem:
		if !v.declared[st.Buf] {
			return fmt.Errorf("store through undeclared buffer %s", st.Buf)
		}
		if !st.Buf.Type.Ptr {
			return fmt.Errorf("element store through non-pointer %s", st.Buf)
		}
		if st.Buf.Type.Const {
			return fmt.Errorf("store through const buffer %s", st.Buf)
		}
		if err := v.expr(st.Index); err != nil {
			return err
		}
		if !st.Index.ExprType().IsInteger() {
			return fmt.Errorf("non-integer index type %s", st.Index.ExprType())
		}
		if err := v.expr(st.Value); err != nil {
			return err
		}
		if !assignCompatible(st.Buf.Type.Elem(), st.Value.ExprType()) {
			return fmt.Errorf("element store to %s: value type %s incompatible with %s",
				st.Buf, st.Value.ExprType(), st.Buf.Type.Elem())
		}
		return nil
	case *If:
		if err := v.expr(st.Cond); err != nil {
			return err
		}
		if !st.Cond.ExprType().IsBool() {
			return fmt.Errorf("if condition has type %s, want bool", st.Cond.ExprType())
		}
		if err := v.block(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return v.block(st.Else)
		}
		return nil
	case *For:
		if err := v.stmt(st.Init); err != nil {
			return err
		}
		if st.Cond != nil {
			if err := v.expr(st.Cond); err != nil {
				return err
			}
			if !st.Cond.ExprType().IsBool() {
				return fmt.Errorf("for condition has type %s, want bool", st.Cond.ExprType())
			}
		}
		if err := v.stmt(st.Post); err != nil {
			return err
		}
		return v.block(st.Body)
	case *While:
		if err := v.expr(st.Cond); err != nil {
			return err
		}
		if !st.Cond.ExprType().IsBool() {
			return fmt.Errorf("while condition has type %s, want bool", st.Cond.ExprType())
		}
		return v.block(st.Body)
	case *Return:
		if st.Value != nil {
			return v.expr(st.Value)
		}
		return nil
	case *Break, *Continue, *Barrier:
		return nil
	case *Eval:
		return v.expr(st.X)
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (v *verifier) expr(e Expr) error {
	switch ex := e.(type) {
	case nil:
		return nil
	case *ConstInt, *ConstFloat, *ConstBool:
		return nil
	case *VarRef:
		if !v.declared[ex.Var] {
			return fmt.Errorf("reference to undeclared variable %s", ex.Var)
		}
		return nil
	case *Load:
		if !v.declared[ex.Buf] {
			return fmt.Errorf("load through undeclared buffer %s", ex.Buf)
		}
		if !ex.Buf.Type.Ptr {
			return fmt.Errorf("load through non-pointer %s", ex.Buf)
		}
		if err := v.expr(ex.Index); err != nil {
			return err
		}
		if !ex.Index.ExprType().IsInteger() {
			return fmt.Errorf("non-integer load index type %s", ex.Index.ExprType())
		}
		return nil
	case *BinOp:
		if err := v.expr(ex.L); err != nil {
			return err
		}
		if err := v.expr(ex.R); err != nil {
			return err
		}
		if ex.Op.IsCompare() || ex.Op.IsLogical() {
			if !ex.Typ.IsBool() {
				return fmt.Errorf("comparison %s typed %s, want bool", ex.Op, ex.Typ)
			}
		}
		return nil
	case *UnOp:
		return v.expr(ex.X)
	case *Select:
		if err := v.expr(ex.Cond); err != nil {
			return err
		}
		if !ex.Cond.ExprType().IsBool() {
			return fmt.Errorf("select condition has type %s, want bool", ex.Cond.ExprType())
		}
		if err := v.expr(ex.Then); err != nil {
			return err
		}
		return v.expr(ex.Else)
	case *Cast:
		if ex.To.Ptr {
			return fmt.Errorf("cast to pointer type %s", ex.To)
		}
		return v.expr(ex.X)
	case *WorkItem:
		return v.expr(ex.Dim)
	case *CallBuiltin:
		for _, a := range ex.Args {
			if err := v.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *CallFunc:
		if ex.Callee == nil {
			return fmt.Errorf("call with nil callee")
		}
		if len(ex.Args) != len(ex.Callee.Params) {
			return fmt.Errorf("call to %s with %d args, want %d",
				ex.Callee.Name, len(ex.Args), len(ex.Callee.Params))
		}
		for _, a := range ex.Args {
			if err := v.expr(a); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown expression %T", e)
}

// assignCompatible mirrors the front-end assignability rules at the IR level.
func assignCompatible(dst, src minicl.Type) bool {
	if dst.Equal(src) {
		return true
	}
	if dst.Ptr || src.Ptr {
		return false
	}
	if dst.IsFloat() && src.IsInteger() {
		return true
	}
	return dst.IsInteger() && src.IsInteger()
}
