package inspire

import (
	"strings"
	"testing"
)

func optimizeSrc(t *testing.T, src string) *Unit {
	t.Helper()
	u := mustLower(t, src)
	Optimize(u)
	if err := Verify(u); err != nil {
		t.Fatalf("optimized IR fails verification: %v", err)
	}
	return u
}

func TestFoldConstantArithmetic(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global float* o, global int* p) {
		o[0] = 2.0 * 3.0 + 1.0;
		p[0] = (4 + 4) * 2;
		p[1] = 17 % 5;
		p[2] = 1 << 4;
	}`)
	k := u.Kernel("f")
	want := []struct {
		idx  int
		text string
	}{
		{0, "7"}, {1, "16"}, {2, "2"}, {3, "16"},
	}
	for i, w := range want {
		se := k.Body.Stmts[i].(*StoreElem)
		if got := ExprString(se.Value); got != w.text {
			t.Errorf("stmt %d folded to %s, want %s", i, got, w.text)
		}
	}
}

func TestFoldAlgebraicIdentities(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global float* o, float x, int n, global int* p) {
		o[0] = x * 1.0;
		o[1] = x + 0.0;
		o[2] = x / 1.0;
		p[0] = n * 0;
		p[1] = n + 0;
	}`)
	k := u.Kernel("f")
	if got := ExprString(k.Body.Stmts[0].(*StoreElem).Value); got != "x%1" {
		t.Errorf("x*1 folded to %s", got)
	}
	if got := ExprString(k.Body.Stmts[1].(*StoreElem).Value); got != "x%1" {
		t.Errorf("x+0 folded to %s", got)
	}
	if got := ExprString(k.Body.Stmts[3].(*StoreElem).Value); got != "0" {
		t.Errorf("n*0 folded to %s", got)
	}
	if got := ExprString(k.Body.Stmts[4].(*StoreElem).Value); got != "n%2" {
		t.Errorf("n+0 folded to %s", got)
	}
}

func TestFoldPreservesFaults(t *testing.T) {
	// Division by a constant zero must survive to run time, not fold.
	u := optimizeSrc(t, `kernel void f(global int* p) { p[0] = 7 / 0; }`)
	se := u.Kernel("f").Body.Stmts[0].(*StoreElem)
	if _, isConst := se.Value.(*ConstInt); isConst {
		t.Error("7/0 was constant-folded away")
	}
}

func TestDeadBranchElimination(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global int* p, int n) {
		if (1 < 2) {
			p[0] = 1;
		} else {
			p[0] = 2;
		}
		if (false) {
			p[1] = 3;
		}
	}`)
	txt := PrintFunction(u.Kernel("f"))
	if strings.Contains(txt, "if") {
		t.Errorf("constant branches survived:\n%s", txt)
	}
	if strings.Contains(txt, "= 2") || strings.Contains(txt, "= 3") {
		t.Errorf("dead stores survived:\n%s", txt)
	}
	if !strings.Contains(txt, "= 1") {
		t.Errorf("live store eliminated:\n%s", txt)
	}
}

func TestDeadWhileElimination(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global int* p) {
		while (false) { p[0] = 9; }
		p[1] = 1;
	}`)
	txt := PrintFunction(u.Kernel("f"))
	if strings.Contains(txt, "while") {
		t.Errorf("while(false) survived:\n%s", txt)
	}
}

func TestCodeAfterReturnEliminated(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global int* p) {
		p[0] = 1;
		return;
		p[1] = 2;
	}`)
	k := u.Kernel("f")
	if len(k.Body.Stmts) != 2 {
		t.Errorf("got %d statements, want 2 (store + return):\n%s",
			len(k.Body.Stmts), PrintFunction(k))
	}
}

func TestSelectFolding(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global float* o, float x) {
		o[0] = true ? x : 99.0;
		o[1] = 1 > 2 ? 99.0 : x;
	}`)
	k := u.Kernel("f")
	for i := 0; i < 2; i++ {
		se := k.Body.Stmts[i].(*StoreElem)
		if got := ExprString(se.Value); got != "x%1" {
			t.Errorf("select %d folded to %s, want x%%1", i, got)
		}
	}
}

func TestDoubleNegation(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global float* o, float x, global int* p, bool b) {
		o[0] = -(-x);
		p[0] = !!b ? 1 : 0;
	}`)
	k := u.Kernel("f")
	if got := ExprString(k.Body.Stmts[0].(*StoreElem).Value); got != "x%1" {
		t.Errorf("--x folded to %s", got)
	}
}

func TestCastFolding(t *testing.T) {
	u := optimizeSrc(t, `kernel void f(global float* o, global int* p) {
		o[0] = (float)3;
		p[0] = (int)2.9;
	}`)
	k := u.Kernel("f")
	if got := ExprString(k.Body.Stmts[0].(*StoreElem).Value); got != "3" {
		t.Errorf("(float)3 folded to %s", got)
	}
	if got := ExprString(k.Body.Stmts[1].(*StoreElem).Value); got != "2" {
		t.Errorf("(int)2.9 folded to %s", got)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	// The optimizer must not change analysis-visible behaviour of a real
	// kernel: counts may shrink but the access classification stays.
	src := `kernel void f(global const float* a, global float* b, int n) {
		int i = get_global_id(0) * 1 + 0;
		if (i < n && true) {
			b[i] = a[i] * 1.0 + 0.0;
		}
	}`
	u := optimizeSrc(t, src)
	st := Analyze(u.Kernel("f"))
	if st.Accesses[AccessCoalesced] != 2 {
		t.Errorf("coalesced accesses = %d, want 2", st.Accesses[AccessCoalesced])
	}
	// The *1+0 arithmetic should be gone.
	if st.FloatOps != 0 {
		t.Errorf("float ops = %d, want 0 after folding", st.FloatOps)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	src := `kernel void f(global float* o, int n) {
		for (int i = 0; i < n; i++) {
			o[i] = (2.0 + 3.0) * 1.0;
		}
	}`
	u := mustLower(t, src)
	Optimize(u)
	first := Print(u)
	Optimize(u)
	second := Print(u)
	if first != second {
		t.Errorf("Optimize is not idempotent:\n%s\nvs\n%s", first, second)
	}
}
