// Package inspire defines the intermediate representation the framework
// analyses and executes. It plays the role of the Insieme Parallel
// Intermediate Representation (INSPIRE) in the paper: MiniCL kernels are
// lowered into this IR, static program features are extracted from it, the
// multi-device backend derives partition plans from it, and the interpreter
// and timing simulator execute it.
//
// The IR is a typed tree. Types are shared with the front-end
// (internal/minicl.Type) since MiniCL's type lattice is exactly the subset
// the rest of the pipeline needs.
package inspire

import (
	"fmt"

	"repro/internal/minicl"
)

// Op enumerates IR binary and unary operators.
type Op int

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd // bitwise
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLAnd // logical
	OpLOr
	OpNeg // unary
	OpLNot
)

var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpLAnd: "&&", OpLOr: "||", OpNeg: "neg", OpLNot: "!",
}

// String returns the operator's source spelling.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsCompare reports whether the operator yields a bool from two numerics.
func (o Op) IsCompare() bool { return o >= OpLt && o <= OpNe }

// IsLogical reports whether the operator is && or ||.
func (o Op) IsLogical() bool { return o == OpLAnd || o == OpLOr }

// WIQuery enumerates work-item index space queries.
type WIQuery int

// Work-item query kinds, mirroring the OpenCL builtins.
const (
	GlobalID WIQuery = iota
	LocalID
	GroupID
	GlobalSize
	LocalSize
	NumGroups
)

var wiNames = [...]string{
	GlobalID: "get_global_id", LocalID: "get_local_id", GroupID: "get_group_id",
	GlobalSize: "get_global_size", LocalSize: "get_local_size", NumGroups: "get_num_groups",
}

// String returns the OpenCL builtin name of the query.
func (q WIQuery) String() string { return wiNames[q] }

// Var is an IR variable: a kernel parameter or a declared local.
// Vars are compared by identity (pointer), IDs exist for printing and for
// dense interpreter frames.
type Var struct {
	ID    int
	Name  string
	Type  minicl.Type
	Param bool // true for kernel/function parameters
}

// String formats the variable as name%id.
func (v *Var) String() string { return fmt.Sprintf("%s%%%d", v.Name, v.ID) }

// Unit is a lowered program: all kernels plus callable helper functions.
type Unit struct {
	Name    string
	Kernels []*Function
	Helpers []*Function
}

// Kernel returns the kernel named name, or nil.
func (u *Unit) Kernel(name string) *Function {
	for _, k := range u.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Helper returns the helper function named name, or nil.
func (u *Unit) Helper(name string) *Function {
	for _, h := range u.Helpers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Function is a lowered function body with its parameter variables.
// NumVars is the total number of variables (params + locals) so interpreter
// frames can be allocated densely.
type Function struct {
	Name    string
	Kernel  bool
	Params  []*Var
	Ret     minicl.Type
	Body    *Block
	NumVars int
}

// --- Statements ---

// Stmt is implemented by all IR statements.
type Stmt interface{ irStmt() }

// Block is a statement sequence.
type Block struct {
	Stmts []Stmt
}

// Decl declares (and optionally initializes) a local variable.
type Decl struct {
	Var  *Var
	Init Expr // may be nil → zero value
}

// StoreVar assigns a scalar variable.
type StoreVar struct {
	Var   *Var
	Value Expr
}

// StoreElem stores to a buffer element: Buf[Index] = Value.
type StoreElem struct {
	Buf   *Var
	Index Expr
	Value Expr
}

// If is a conditional.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// For is a counted loop. Init and Post may be nil; Cond nil means forever.
type For struct {
	Init Stmt // *Decl or *StoreVar
	Cond Expr
	Post Stmt
	Body *Block
}

// While is a condition-controlled loop.
type While struct {
	Cond Expr
	Body *Block
}

// Return exits the function.
type Return struct {
	Value Expr // nil for void
}

// Break exits the innermost loop.
type Break struct{}

// Continue continues the innermost loop.
type Continue struct{}

// Barrier is a work-group barrier.
type Barrier struct{}

// Eval evaluates an expression for side effects (helper calls).
type Eval struct {
	X Expr
}

func (*Block) irStmt()     {}
func (*Decl) irStmt()      {}
func (*StoreVar) irStmt()  {}
func (*StoreElem) irStmt() {}
func (*If) irStmt()        {}
func (*For) irStmt()       {}
func (*While) irStmt()     {}
func (*Return) irStmt()    {}
func (*Break) irStmt()     {}
func (*Continue) irStmt()  {}
func (*Barrier) irStmt()   {}
func (*Eval) irStmt()      {}

// --- Expressions ---

// Expr is implemented by all IR expressions; all are typed.
type Expr interface {
	irExpr()
	// ExprType returns the static type of the expression.
	ExprType() minicl.Type
}

// ConstInt is an integer constant.
type ConstInt struct {
	Value int64
	Typ   minicl.Type
}

// ConstFloat is a floating-point constant.
type ConstFloat struct{ Value float64 }

// ConstBool is a boolean constant.
type ConstBool struct{ Value bool }

// VarRef reads a scalar variable (or references a buffer parameter when
// passed to helpers).
type VarRef struct{ Var *Var }

// Load reads a buffer element Buf[Index].
type Load struct {
	Buf   *Var
	Index Expr
}

// BinOp is a binary operation.
type BinOp struct {
	Op   Op
	L, R Expr
	Typ  minicl.Type
}

// UnOp is a unary operation (OpNeg, OpLNot).
type UnOp struct {
	Op  Op
	X   Expr
	Typ minicl.Type
}

// Select is the ternary operator.
type Select struct {
	Cond, Then, Else Expr
	Typ              minicl.Type
}

// Cast converts between scalar types.
type Cast struct {
	To minicl.Type
	X  Expr
}

// WorkItem queries the NDRange index space.
type WorkItem struct {
	Query WIQuery
	Dim   Expr
}

// CallBuiltin invokes a math builtin (sqrt, exp, min, ...).
type CallBuiltin struct {
	Name string
	Args []Expr
	Typ  minicl.Type
}

// CallFunc invokes a user helper function.
type CallFunc struct {
	Callee *Function
	Args   []Expr
}

func (*ConstInt) irExpr()    {}
func (*ConstFloat) irExpr()  {}
func (*ConstBool) irExpr()   {}
func (*VarRef) irExpr()      {}
func (*Load) irExpr()        {}
func (*BinOp) irExpr()       {}
func (*UnOp) irExpr()        {}
func (*Select) irExpr()      {}
func (*Cast) irExpr()        {}
func (*WorkItem) irExpr()    {}
func (*CallBuiltin) irExpr() {}
func (*CallFunc) irExpr()    {}

// ExprType implementations.
func (e *ConstInt) ExprType() minicl.Type    { return e.Typ }
func (e *ConstFloat) ExprType() minicl.Type  { return minicl.TypeFloat }
func (e *ConstBool) ExprType() minicl.Type   { return minicl.TypeBool }
func (e *VarRef) ExprType() minicl.Type      { return e.Var.Type }
func (e *Load) ExprType() minicl.Type        { return e.Buf.Type.Elem() }
func (e *BinOp) ExprType() minicl.Type       { return e.Typ }
func (e *UnOp) ExprType() minicl.Type        { return e.Typ }
func (e *Select) ExprType() minicl.Type      { return e.Typ }
func (e *Cast) ExprType() minicl.Type        { return e.To }
func (e *WorkItem) ExprType() minicl.Type    { return minicl.TypeInt }
func (e *CallBuiltin) ExprType() minicl.Type { return e.Typ }
func (e *CallFunc) ExprType() minicl.Type    { return e.Callee.Ret }
