package inspire

import (
	"fmt"

	"repro/internal/minicl"
)

// Lower translates a type-checked MiniCL program into an IR Unit.
// The program must have been checked with minicl.Check (or produced by
// minicl.Compile); lowering trusts the sema type annotations.
func Lower(name string, prog *minicl.Program) (*Unit, error) {
	u := &Unit{Name: name}
	// First pass: create function shells so calls can be resolved.
	shells := make(map[string]*Function, len(prog.Funcs))
	for _, f := range prog.Funcs {
		fn := &Function{Name: f.Name, Kernel: f.IsKernel, Ret: f.Ret}
		shells[f.Name] = fn
		if f.IsKernel {
			u.Kernels = append(u.Kernels, fn)
		} else {
			u.Helpers = append(u.Helpers, fn)
		}
	}
	for _, f := range prog.Funcs {
		lw := &lowerer{shells: shells, vars: map[string]*Var{}}
		if err := lw.lowerFunc(shells[f.Name], f); err != nil {
			return nil, err
		}
	}
	if len(u.Kernels) == 0 {
		return nil, fmt.Errorf("inspire: program %q has no kernels", name)
	}
	return u, nil
}

// LowerSource is a convenience wrapper: parse, check, lower.
func LowerSource(name, src string) (*Unit, error) {
	prog, err := minicl.Compile(src)
	if err != nil {
		return nil, err
	}
	return Lower(name, prog)
}

type lowerer struct {
	shells map[string]*Function
	vars   map[string]*Var // name -> var, flat per-function (sema ensured uniqueness per scope; we rename shadowed vars)
	nextID int
	scopes []map[string]*Var
}

func (lw *lowerer) pushScope() {
	lw.scopes = append(lw.scopes, map[string]*Var{})
}

func (lw *lowerer) popScope() {
	lw.scopes = lw.scopes[:len(lw.scopes)-1]
}

func (lw *lowerer) declare(name string, t minicl.Type, param bool) *Var {
	v := &Var{ID: lw.nextID, Name: name, Type: t, Param: param}
	lw.nextID++
	lw.scopes[len(lw.scopes)-1][name] = v
	return v
}

func (lw *lowerer) lookup(name string) *Var {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (lw *lowerer) lowerFunc(fn *Function, f *minicl.FuncDecl) error {
	lw.pushScope()
	defer lw.popScope()
	for _, p := range f.Params {
		fn.Params = append(fn.Params, lw.declare(p.Name, p.Type, true))
	}
	body, err := lw.lowerBlock(f.Body)
	if err != nil {
		return err
	}
	fn.Body = body
	fn.NumVars = lw.nextID
	return nil
}

func (lw *lowerer) lowerBlock(b *minicl.BlockStmt) (*Block, error) {
	lw.pushScope()
	defer lw.popScope()
	blk := &Block{}
	for _, s := range b.Stmts {
		st, err := lw.lowerStmt(s)
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, st)
	}
	return blk, nil
}

func (lw *lowerer) lowerStmt(s minicl.Stmt) (Stmt, error) {
	switch st := s.(type) {
	case *minicl.BlockStmt:
		return lw.lowerBlock(st)
	case *minicl.DeclStmt:
		var init Expr
		if st.Init != nil {
			e, err := lw.lowerExpr(st.Init)
			if err != nil {
				return nil, err
			}
			init = convert(e, st.Type)
		}
		v := lw.declare(st.Name, st.Type, false)
		return &Decl{Var: v, Init: init}, nil
	case *minicl.AssignStmt:
		return lw.lowerAssign(st)
	case *minicl.IncDecStmt:
		id, ok := st.Target.(*minicl.Ident)
		if !ok {
			return nil, fmt.Errorf("inspire: ++/-- on non-variable at %s", st.Pos)
		}
		v := lw.lookup(id.Name)
		op := OpAdd
		if st.Dec {
			op = OpSub
		}
		return &StoreVar{Var: v, Value: &BinOp{
			Op: op, L: &VarRef{Var: v}, R: &ConstInt{Value: 1, Typ: v.Type}, Typ: v.Type,
		}}, nil
	case *minicl.IfStmt:
		cond, err := lw.lowerCond(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := lw.lowerBlock(st.Then)
		if err != nil {
			return nil, err
		}
		out := &If{Cond: cond, Then: then}
		if st.Else != nil {
			els, err := lw.lowerStmt(st.Else)
			if err != nil {
				return nil, err
			}
			if eb, ok := els.(*Block); ok {
				out.Else = eb
			} else {
				out.Else = &Block{Stmts: []Stmt{els}}
			}
		}
		return out, nil
	case *minicl.ForStmt:
		lw.pushScope()
		defer lw.popScope()
		out := &For{}
		var err error
		if st.Init != nil {
			out.Init, err = lw.lowerStmt(st.Init)
			if err != nil {
				return nil, err
			}
		}
		if st.Cond != nil {
			out.Cond, err = lw.lowerCond(st.Cond)
			if err != nil {
				return nil, err
			}
		}
		if st.Post != nil {
			out.Post, err = lw.lowerStmt(st.Post)
			if err != nil {
				return nil, err
			}
		}
		out.Body, err = lw.lowerBlock(st.Body)
		if err != nil {
			return nil, err
		}
		return out, nil
	case *minicl.WhileStmt:
		cond, err := lw.lowerCond(st.Cond)
		if err != nil {
			return nil, err
		}
		body, err := lw.lowerBlock(st.Body)
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case *minicl.ReturnStmt:
		out := &Return{}
		if st.Value != nil {
			e, err := lw.lowerExpr(st.Value)
			if err != nil {
				return nil, err
			}
			out.Value = e
		}
		return out, nil
	case *minicl.BreakStmt:
		return &Break{}, nil
	case *minicl.ContinueStmt:
		return &Continue{}, nil
	case *minicl.ExprStmt:
		if call, ok := st.X.(*minicl.CallExpr); ok {
			if bi, isB := minicl.Builtins[call.Name]; isB && bi.Barrier {
				return &Barrier{}, nil
			}
		}
		e, err := lw.lowerExpr(st.X)
		if err != nil {
			return nil, err
		}
		return &Eval{X: e}, nil
	}
	return nil, fmt.Errorf("inspire: cannot lower statement %T", s)
}

func (lw *lowerer) lowerAssign(st *minicl.AssignStmt) (Stmt, error) {
	rhs, err := lw.lowerExpr(st.Value)
	if err != nil {
		return nil, err
	}
	binop := func(cur Expr, t minicl.Type) Expr {
		var op Op
		switch st.Op {
		case minicl.PlusAssign:
			op = OpAdd
		case minicl.MinusAssign:
			op = OpSub
		case minicl.StarAssign:
			op = OpMul
		case minicl.SlashAssign:
			op = OpDiv
		default:
			return convert(rhs, t)
		}
		return &BinOp{Op: op, L: cur, R: convert(rhs, t), Typ: t}
	}
	switch target := st.Target.(type) {
	case *minicl.Ident:
		v := lw.lookup(target.Name)
		return &StoreVar{Var: v, Value: binop(&VarRef{Var: v}, v.Type)}, nil
	case *minicl.Index:
		base, ok := target.Base.(*minicl.Ident)
		if !ok {
			return nil, fmt.Errorf("inspire: indexed store through non-variable base at %s", st.Pos)
		}
		buf := lw.lookup(base.Name)
		idx, err := lw.lowerExpr(target.Index)
		if err != nil {
			return nil, err
		}
		el := buf.Type.Elem()
		cur := &Load{Buf: buf, Index: idx}
		return &StoreElem{Buf: buf, Index: idx, Value: binop(cur, el)}, nil
	}
	return nil, fmt.Errorf("inspire: invalid assignment target at %s", st.Pos)
}

// lowerCond lowers a condition, coercing integers to bool (x != 0).
func (lw *lowerer) lowerCond(e minicl.Expr) (Expr, error) {
	x, err := lw.lowerExpr(e)
	if err != nil {
		return nil, err
	}
	t := x.ExprType()
	if t.IsBool() {
		return x, nil
	}
	return &BinOp{Op: OpNe, L: x, R: &ConstInt{Value: 0, Typ: t}, Typ: minicl.TypeBool}, nil
}

func (lw *lowerer) lowerExpr(e minicl.Expr) (Expr, error) {
	switch ex := e.(type) {
	case *minicl.IntLit:
		return &ConstInt{Value: ex.Value, Typ: ex.Type()}, nil
	case *minicl.FloatLit:
		return &ConstFloat{Value: ex.Value}, nil
	case *minicl.BoolLit:
		return &ConstBool{Value: ex.Value}, nil
	case *minicl.Ident:
		v := lw.lookup(ex.Name)
		if v == nil {
			return nil, fmt.Errorf("inspire: unresolved identifier %q at %s", ex.Name, ex.Pos)
		}
		return &VarRef{Var: v}, nil
	case *minicl.Index:
		base, ok := ex.Base.(*minicl.Ident)
		if !ok {
			return nil, fmt.Errorf("inspire: load through non-variable base at %s", ex.Pos)
		}
		buf := lw.lookup(base.Name)
		idx, err := lw.lowerExpr(ex.Index)
		if err != nil {
			return nil, err
		}
		return &Load{Buf: buf, Index: idx}, nil
	case *minicl.UnaryExpr:
		x, err := lw.lowerExpr(ex.X)
		if err != nil {
			return nil, err
		}
		if ex.Op == minicl.Minus {
			return &UnOp{Op: OpNeg, X: x, Typ: ex.Type()}, nil
		}
		cond, err := lw.coerceBool(x)
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: OpLNot, X: cond, Typ: minicl.TypeBool}, nil
	case *minicl.BinaryExpr:
		return lw.lowerBinary(ex)
	case *minicl.CondExpr:
		cond, err := lw.lowerCond(ex.Cond)
		if err != nil {
			return nil, err
		}
		then, err := lw.lowerExpr(ex.Then)
		if err != nil {
			return nil, err
		}
		els, err := lw.lowerExpr(ex.Else)
		if err != nil {
			return nil, err
		}
		t := ex.Type()
		return &Select{Cond: cond, Then: convert(then, t), Else: convert(els, t), Typ: t}, nil
	case *minicl.CastExpr:
		x, err := lw.lowerExpr(ex.X)
		if err != nil {
			return nil, err
		}
		return &Cast{To: ex.To, X: x}, nil
	case *minicl.CallExpr:
		return lw.lowerCall(ex)
	}
	return nil, fmt.Errorf("inspire: cannot lower expression %T", e)
}

func (lw *lowerer) coerceBool(x Expr) (Expr, error) {
	if x.ExprType().IsBool() {
		return x, nil
	}
	return &BinOp{Op: OpNe, L: x, R: &ConstInt{Value: 0, Typ: x.ExprType()}, Typ: minicl.TypeBool}, nil
}

var binOpMap = map[minicl.Kind]Op{
	minicl.Plus: OpAdd, minicl.Minus: OpSub, minicl.Star: OpMul, minicl.Slash: OpDiv,
	minicl.Percent: OpMod, minicl.Amp: OpAnd, minicl.Pipe: OpOr, minicl.Caret: OpXor,
	minicl.Shl: OpShl, minicl.Shr: OpShr,
	minicl.Lt: OpLt, minicl.Le: OpLe, minicl.Gt: OpGt, minicl.Ge: OpGe,
	minicl.EqEq: OpEq, minicl.NotEq: OpNe,
	minicl.AndAnd: OpLAnd, minicl.OrOr: OpLOr,
}

func (lw *lowerer) lowerBinary(ex *minicl.BinaryExpr) (Expr, error) {
	op, ok := binOpMap[ex.Op]
	if !ok {
		return nil, fmt.Errorf("inspire: unknown binary operator %s at %s", ex.Op, ex.Pos)
	}
	l, err := lw.lowerExpr(ex.L)
	if err != nil {
		return nil, err
	}
	r, err := lw.lowerExpr(ex.R)
	if err != nil {
		return nil, err
	}
	switch {
	case op.IsLogical():
		if l, err = lw.coerceBool(l); err != nil {
			return nil, err
		}
		if r, err = lw.coerceBool(r); err != nil {
			return nil, err
		}
		return &BinOp{Op: op, L: l, R: r, Typ: minicl.TypeBool}, nil
	case op.IsCompare():
		ct := commonType(l.ExprType(), r.ExprType())
		return &BinOp{Op: op, L: convert(l, ct), R: convert(r, ct), Typ: minicl.TypeBool}, nil
	default:
		t := ex.Type()
		return &BinOp{Op: op, L: convert(l, t), R: convert(r, t), Typ: t}, nil
	}
}

func (lw *lowerer) lowerCall(ex *minicl.CallExpr) (Expr, error) {
	args := make([]Expr, len(ex.Args))
	for i, a := range ex.Args {
		e, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	if bi, ok := minicl.Builtins[ex.Name]; ok {
		if bi.WorkItem {
			return &WorkItem{Query: wiQueryOf(ex.Name), Dim: args[0]}, nil
		}
		t := ex.Type()
		// Coerce float-builtin args to float, poly-builtin args to the
		// resolved result type.
		for i := range args {
			if bi.Float {
				args[i] = convert(args[i], minicl.TypeFloat)
			} else if bi.Poly {
				args[i] = convert(args[i], t)
			}
		}
		return &CallBuiltin{Name: ex.Name, Args: args, Typ: t}, nil
	}
	callee, ok := lw.shells[ex.Name]
	if !ok {
		return nil, fmt.Errorf("inspire: unresolved call %q at %s", ex.Name, ex.Pos)
	}
	return &CallFunc{Callee: callee, Args: args}, nil
}

func wiQueryOf(name string) WIQuery {
	switch name {
	case "get_global_id":
		return GlobalID
	case "get_local_id":
		return LocalID
	case "get_group_id":
		return GroupID
	case "get_global_size":
		return GlobalSize
	case "get_local_size":
		return LocalSize
	default:
		return NumGroups
	}
}

// convert inserts a Cast when the expression type differs from want.
func convert(e Expr, want minicl.Type) Expr {
	have := e.ExprType()
	if have.Equal(want) || want.Ptr || have.Ptr {
		return e
	}
	// Fold constant conversions immediately.
	switch c := e.(type) {
	case *ConstInt:
		if want.IsFloat() {
			return &ConstFloat{Value: float64(c.Value)}
		}
		if want.IsInteger() {
			return &ConstInt{Value: c.Value, Typ: want}
		}
	case *ConstFloat:
		if want.IsInteger() {
			return &ConstInt{Value: int64(c.Value), Typ: want}
		}
	}
	return &Cast{To: want, X: e}
}

// commonType mirrors sema's unify for lowering-time coercions.
func commonType(a, b minicl.Type) minicl.Type {
	if a.Equal(b) {
		return a
	}
	if a.IsFloat() || b.IsFloat() {
		return minicl.TypeFloat
	}
	if a.IsBool() || b.IsBool() {
		return minicl.TypeBool
	}
	return minicl.TypeInt
}
