package exec

import (
	"fmt"
	"math"

	"repro/internal/exec/vm"
	"repro/internal/inspire"
	"repro/internal/minicl"
)

// ctrl is the control-flow result of a statement closure.
type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// wiState is the per-work-item NDRange coordinate set.
type wiState struct {
	gid, lid, grp [3]int64
	gsz, lsz, ngr [3]int64
}

// frame is the per-work-item execution state.
type frame struct {
	ints   []int64
	floats []float64
	bufs   []*Buffer // global buffer params, by buffer slot
	locals []*Buffer // local buffer params (per work-group), by local slot
	wi     wiState
	cnt    *Counts
	bar    *groupBarrier

	// fuel mirrors vm.Frame.Fuel for the closure tier: a local step
	// allowance burned at loop back-edges and function calls, refilled
	// in batches from the shared budget. nil budget = unlimited.
	fuel   int64
	budget *vm.Budget
}

// tick burns one unit of fuel at a loop back-edge or call, refilling the
// lease from the budget on underflow and throwing the budget's error
// (recovered at the Run boundary) when the lease is denied.
func (f *frame) tick() {
	f.fuel--
	if f.fuel >= 0 {
		return
	}
	lease, err := f.budget.TakeLease()
	if err != nil {
		panic(execError{err})
	}
	f.fuel = lease
}

type (
	intFn   func(*frame) int64
	floatFn func(*frame) float64
	boolFn  func(*frame) bool
	stmtFn  func(*frame) ctrl
)

// slotKind says where a variable lives in a frame.
type slotKind int

const (
	slotInt slotKind = iota
	slotFloat
	slotGlobalBuf
	slotLocalBuf
)

type slot struct {
	kind slotKind
	idx  int
}

// execError is thrown (via panic) for runtime faults inside closures and
// recovered at the Run boundary.
type execError struct{ err error }

func throwf(format string, args ...any) {
	panic(execError{fmt.Errorf(format, args...)})
}

// Compiled is an executable kernel: the IR compiled to closures plus the
// frame layout metadata needed to bind arguments.
type Compiled struct {
	Fn *inspire.Function

	body       stmtFn
	hasBarrier bool
	usesLocal  bool
	lockstep   gStmt // nil when barriers are not provably uniform

	nInts, nFloats  int
	nGlobal, nLocal int
	paramSlots      []slot // parallel to Fn.Params
	slotOf          []slot // by Var.ID
	retIsFloat      bool

	// Bytecode VM tier (see tier.go). vmProg is nil on the closure tier;
	// vmErr records why the VM lowering was skipped under TierAuto.
	vmProg *vm.Func
	vmErr  error

	// SIMT vector tier. vecProg is nil when the kernel runs scalar;
	// vecErr records why vectorization was skipped under TierAuto.
	vecProg *vm.VecFunc
	vecErr  error
}

// HasBarrier reports whether the kernel (including helpers) executes
// work-group barriers and therefore needs synchronous group execution.
func (c *Compiled) HasBarrier() bool { return c.hasBarrier }

// LockstepEligible reports whether the kernel's barriers were proven to
// sit under group-uniform control flow, enabling the single-goroutine
// lockstep group executor (the default barrier path). Ineligible kernels
// run groups on the blocking worker-pool path instead.
func (c *Compiled) LockstepEligible() bool { return c.lockstep != nil }

// compiler compiles one function (kernel or helper).
type compiler struct {
	out     *Compiled
	helpers map[*inspire.Function]*Compiled
}

// Compile translates an IR function into an executable kernel on the
// process-wide default tier (see DefaultTier): closures always, plus
// the bytecode VM when it is selected and the kernel lowers.
func Compile(fn *inspire.Function) (*Compiled, error) {
	return CompileTier(fn, DefaultTier())
}

// compileClosure builds the closure-tree interpreter, the reference
// execution tier.
func compileClosure(fn *inspire.Function) (c *Compiled, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(execError); ok {
				c, err = nil, ee.err
				return
			}
			panic(r)
		}
	}()
	return compileWith(fn, map[*inspire.Function]*Compiled{}), nil
}

func compileWith(fn *inspire.Function, helpers map[*inspire.Function]*Compiled) *Compiled {
	if done, ok := helpers[fn]; ok {
		return done
	}
	out := &Compiled{Fn: fn, slotOf: make([]slot, fn.NumVars)}
	helpers[fn] = out // pre-register to guard against recursion
	cc := &compiler{out: out, helpers: helpers}
	// Assign slots to params first, then discover locals from Decls.
	for _, p := range fn.Params {
		out.paramSlots = append(out.paramSlots, cc.assign(p))
	}
	inspire.WalkStmts(fn.Body, func(s inspire.Stmt) bool {
		if d, ok := s.(*inspire.Decl); ok {
			cc.assign(d.Var)
		}
		return true
	})
	out.body = cc.block(fn.Body)
	out.retIsFloat = fn.Ret.IsFloat()
	if fn.Kernel && out.hasBarrier {
		out.lockstep = cc.lockstepCompile(fn)
	}
	return out
}

func (cc *compiler) assign(v *inspire.Var) slot {
	o := cc.out
	if v.ID >= len(o.slotOf) {
		grown := make([]slot, v.ID+1)
		copy(grown, o.slotOf)
		o.slotOf = grown
	}
	var s slot
	switch {
	case v.Type.Ptr && v.Type.Space == minicl.Local:
		s = slot{slotLocalBuf, o.nLocal}
		o.nLocal++
		o.usesLocal = true
	case v.Type.Ptr:
		s = slot{slotGlobalBuf, o.nGlobal}
		o.nGlobal++
	case v.Type.IsFloat():
		s = slot{slotFloat, o.nFloats}
		o.nFloats++
	default: // int, uint, bool in int slots
		s = slot{slotInt, o.nInts}
		o.nInts++
	}
	o.slotOf[v.ID] = s
	return s
}

func (cc *compiler) slotFor(v *inspire.Var) slot { return cc.out.slotOf[v.ID] }

// bufferFor returns a closure fetching the Buffer a pointer var refers to.
func (cc *compiler) bufferFor(v *inspire.Var) func(*frame) *Buffer {
	s := cc.slotFor(v)
	idx := s.idx
	if s.kind == slotLocalBuf {
		return func(f *frame) *Buffer { return f.locals[idx] }
	}
	return func(f *frame) *Buffer { return f.bufs[idx] }
}

// --- statements ---

func (cc *compiler) block(b *inspire.Block) stmtFn {
	if b == nil || len(b.Stmts) == 0 {
		return func(*frame) ctrl { return ctrlNext }
	}
	stmts := make([]stmtFn, len(b.Stmts))
	for i, s := range b.Stmts {
		stmts[i] = cc.stmt(s)
	}
	if len(stmts) == 1 {
		return stmts[0]
	}
	return func(f *frame) ctrl {
		for _, s := range stmts {
			if c := s(f); c != ctrlNext {
				return c
			}
		}
		return ctrlNext
	}
}

func (cc *compiler) stmt(s inspire.Stmt) stmtFn {
	switch st := s.(type) {
	case *inspire.Block:
		return cc.block(st)
	case *inspire.Decl:
		return cc.declStmt(st)
	case *inspire.StoreVar:
		return cc.storeVar(st)
	case *inspire.StoreElem:
		return cc.storeElem(st)
	case *inspire.If:
		cond := cc.boolExpr(st.Cond)
		then := cc.block(st.Then)
		if st.Else == nil {
			return func(f *frame) ctrl {
				f.cnt.Branches++
				if cond(f) {
					return then(f)
				}
				return ctrlNext
			}
		}
		els := cc.block(st.Else)
		return func(f *frame) ctrl {
			f.cnt.Branches++
			if cond(f) {
				return then(f)
			}
			return els(f)
		}
	case *inspire.For:
		var init, post stmtFn
		if st.Init != nil {
			init = cc.stmt(st.Init)
		}
		var cond boolFn
		if st.Cond != nil {
			cond = cc.boolExpr(st.Cond)
		}
		if st.Post != nil {
			post = cc.stmt(st.Post)
		}
		body := cc.block(st.Body)
		return func(f *frame) ctrl {
			if init != nil {
				if c := init(f); c == ctrlReturn {
					return c
				}
			}
			for {
				f.tick()
				if cond != nil {
					f.cnt.Branches++
					if !cond(f) {
						return ctrlNext
					}
				}
				switch body(f) {
				case ctrlBreak:
					return ctrlNext
				case ctrlReturn:
					return ctrlReturn
				}
				if post != nil {
					if c := post(f); c == ctrlReturn {
						return c
					}
				}
			}
		}
	case *inspire.While:
		cond := cc.boolExpr(st.Cond)
		body := cc.block(st.Body)
		return func(f *frame) ctrl {
			for {
				f.tick()
				f.cnt.Branches++
				if !cond(f) {
					return ctrlNext
				}
				switch body(f) {
				case ctrlBreak:
					return ctrlNext
				case ctrlReturn:
					return ctrlReturn
				}
			}
		}
	case *inspire.Return:
		if st.Value == nil {
			return func(*frame) ctrl { return ctrlReturn }
		}
		// Return values go to the dedicated last slot of the bank (frames
		// are allocated one slot larger than the variable count).
		if st.Value.ExprType().IsFloat() {
			val := cc.floatExpr(st.Value)
			return func(f *frame) ctrl {
				f.floats[len(f.floats)-1] = val(f)
				return ctrlReturn
			}
		}
		val := cc.intExpr(st.Value)
		return func(f *frame) ctrl {
			f.ints[len(f.ints)-1] = val(f)
			return ctrlReturn
		}
	case *inspire.Break:
		return func(*frame) ctrl { return ctrlBreak }
	case *inspire.Continue:
		return func(*frame) ctrl { return ctrlContinue }
	case *inspire.Barrier:
		cc.out.hasBarrier = true
		return func(f *frame) ctrl {
			f.cnt.Barriers++
			if f.bar != nil {
				f.bar.wait()
			}
			return ctrlNext
		}
	case *inspire.Eval:
		switch {
		case st.X.ExprType().IsFloat():
			e := cc.floatExpr(st.X)
			return func(f *frame) ctrl { e(f); return ctrlNext }
		case st.X.ExprType().Equal(minicl.TypeVoid):
			throwf("exec: void expression statement not supported")
			return nil
		default:
			e := cc.intExpr(st.X)
			return func(f *frame) ctrl { e(f); return ctrlNext }
		}
	}
	throwf("exec: cannot compile statement %T", s)
	return nil
}

func (cc *compiler) declStmt(st *inspire.Decl) stmtFn {
	s := cc.slotFor(st.Var)
	switch s.kind {
	case slotFloat:
		idx := s.idx
		if st.Init == nil {
			return func(f *frame) ctrl { f.floats[idx] = 0; return ctrlNext }
		}
		val := cc.floatExpr(st.Init)
		return func(f *frame) ctrl { f.floats[idx] = val(f); return ctrlNext }
	case slotInt:
		idx := s.idx
		if st.Init == nil {
			return func(f *frame) ctrl { f.ints[idx] = 0; return ctrlNext }
		}
		val := cc.intExpr(st.Init)
		return func(f *frame) ctrl { f.ints[idx] = val(f); return ctrlNext }
	}
	throwf("exec: cannot declare pointer-typed local %s", st.Var)
	return nil
}

func (cc *compiler) storeVar(st *inspire.StoreVar) stmtFn {
	s := cc.slotFor(st.Var)
	switch s.kind {
	case slotFloat:
		idx := s.idx
		val := cc.floatExpr(st.Value)
		return func(f *frame) ctrl { f.floats[idx] = val(f); return ctrlNext }
	case slotInt:
		idx := s.idx
		val := cc.intExpr(st.Value)
		return func(f *frame) ctrl { f.ints[idx] = val(f); return ctrlNext }
	}
	throwf("exec: cannot store to pointer variable %s", st.Var)
	return nil
}

func (cc *compiler) storeElem(st *inspire.StoreElem) stmtFn {
	buf := cc.bufferFor(st.Buf)
	idx := cc.intExpr(st.Index)
	isLocal := st.Buf.Type.Space == minicl.Local
	name := st.Buf.Name
	if st.Buf.Type.Elem().IsFloat() {
		val := cc.floatExpr(st.Value)
		return func(f *frame) ctrl {
			b := buf(f)
			i := idx(f)
			if i < 0 || i >= int64(len(b.F)) {
				throwf("exec: store to %s[%d] out of bounds (len %d)", name, i, len(b.F))
			}
			b.F[i] = float32(val(f))
			if isLocal {
				f.cnt.LocalOps++
			} else {
				f.cnt.GlobalStores++
			}
			return ctrlNext
		}
	}
	val := cc.intExpr(st.Value)
	return func(f *frame) ctrl {
		b := buf(f)
		i := idx(f)
		if i < 0 || i >= int64(len(b.I)) {
			throwf("exec: store to %s[%d] out of bounds (len %d)", name, i, len(b.I))
		}
		b.I[i] = int32(val(f))
		if isLocal {
			f.cnt.LocalOps++
		} else {
			f.cnt.GlobalStores++
		}
		return ctrlNext
	}
}

// --- expressions ---

// intExpr compiles an integer-valued expression (bools yield 0/1).
func (cc *compiler) intExpr(e inspire.Expr) intFn {
	t := e.ExprType()
	if t.IsBool() {
		b := cc.boolExpr(e)
		return func(f *frame) int64 {
			if b(f) {
				return 1
			}
			return 0
		}
	}
	if t.IsFloat() {
		fe := cc.floatExpr(e)
		return func(f *frame) int64 { return int64(fe(f)) }
	}
	switch ex := e.(type) {
	case *inspire.ConstInt:
		v := ex.Value
		return func(*frame) int64 { return v }
	case *inspire.VarRef:
		s := cc.slotFor(ex.Var)
		if s.kind != slotInt {
			throwf("exec: int read of non-int variable %s", ex.Var)
		}
		idx := s.idx
		return func(f *frame) int64 { return f.ints[idx] }
	case *inspire.Load:
		buf := cc.bufferFor(ex.Buf)
		idx := cc.intExpr(ex.Index)
		isLocal := ex.Buf.Type.Space == minicl.Local
		name := ex.Buf.Name
		return func(f *frame) int64 {
			b := buf(f)
			i := idx(f)
			if i < 0 || i >= int64(len(b.I)) {
				throwf("exec: load %s[%d] out of bounds (len %d)", name, i, len(b.I))
			}
			if isLocal {
				f.cnt.LocalOps++
			} else {
				f.cnt.GlobalLoads++
			}
			return int64(b.I[i])
		}
	case *inspire.BinOp:
		return cc.intBinOp(ex)
	case *inspire.UnOp:
		x := cc.intExpr(ex.X)
		return func(f *frame) int64 { f.cnt.IntOps++; return -x(f) }
	case *inspire.Select:
		cond := cc.boolExpr(ex.Cond)
		then := cc.intExpr(ex.Then)
		els := cc.intExpr(ex.Else)
		return func(f *frame) int64 {
			f.cnt.Branches++
			if cond(f) {
				return then(f)
			}
			return els(f)
		}
	case *inspire.Cast:
		return cc.intExpr(ex.X) // int<->uint<->bool handled by operand paths
	case *inspire.WorkItem:
		return cc.workItem(ex)
	case *inspire.CallBuiltin:
		return cc.intBuiltin(ex)
	case *inspire.CallFunc:
		call := cc.callFunc(ex)
		return func(f *frame) int64 {
			child := call(f)
			return child.ints[len(child.ints)-1]
		}
	}
	throwf("exec: cannot compile int expression %T", e)
	return nil
}

func (cc *compiler) intBinOp(ex *inspire.BinOp) intFn {
	l := cc.intExpr(ex.L)
	r := cc.intExpr(ex.R)
	switch ex.Op {
	case inspire.OpAdd:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) + r(f) }
	case inspire.OpSub:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) - r(f) }
	case inspire.OpMul:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) * r(f) }
	case inspire.OpDiv:
		return func(f *frame) int64 {
			f.cnt.IntOps++
			d := r(f)
			if d == 0 {
				throwf("exec: integer division by zero")
			}
			return l(f) / d
		}
	case inspire.OpMod:
		return func(f *frame) int64 {
			f.cnt.IntOps++
			d := r(f)
			if d == 0 {
				throwf("exec: integer modulo by zero")
			}
			return l(f) % d
		}
	case inspire.OpAnd:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) & r(f) }
	case inspire.OpOr:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) | r(f) }
	case inspire.OpXor:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) ^ r(f) }
	case inspire.OpShl:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) << uint(r(f)&63) }
	case inspire.OpShr:
		return func(f *frame) int64 { f.cnt.IntOps++; return l(f) >> uint(r(f)&63) }
	}
	throwf("exec: bad int binop %s", ex.Op)
	return nil
}

// floatExpr compiles a float-valued expression; ints are converted.
func (cc *compiler) floatExpr(e inspire.Expr) floatFn {
	t := e.ExprType()
	if !t.IsFloat() {
		ie := cc.intExpr(e)
		return func(f *frame) float64 { return float64(ie(f)) }
	}
	switch ex := e.(type) {
	case *inspire.ConstFloat:
		v := ex.Value
		return func(*frame) float64 { return v }
	case *inspire.VarRef:
		s := cc.slotFor(ex.Var)
		if s.kind != slotFloat {
			throwf("exec: float read of non-float variable %s", ex.Var)
		}
		idx := s.idx
		return func(f *frame) float64 { return f.floats[idx] }
	case *inspire.Load:
		buf := cc.bufferFor(ex.Buf)
		idx := cc.intExpr(ex.Index)
		isLocal := ex.Buf.Type.Space == minicl.Local
		name := ex.Buf.Name
		return func(f *frame) float64 {
			b := buf(f)
			i := idx(f)
			if i < 0 || i >= int64(len(b.F)) {
				throwf("exec: load %s[%d] out of bounds (len %d)", name, i, len(b.F))
			}
			if isLocal {
				f.cnt.LocalOps++
			} else {
				f.cnt.GlobalLoads++
			}
			return float64(b.F[i])
		}
	case *inspire.BinOp:
		l := cc.floatExpr(ex.L)
		r := cc.floatExpr(ex.R)
		switch ex.Op {
		case inspire.OpAdd:
			return func(f *frame) float64 { f.cnt.FloatOps++; return l(f) + r(f) }
		case inspire.OpSub:
			return func(f *frame) float64 { f.cnt.FloatOps++; return l(f) - r(f) }
		case inspire.OpMul:
			return func(f *frame) float64 { f.cnt.FloatOps++; return l(f) * r(f) }
		case inspire.OpDiv:
			return func(f *frame) float64 { f.cnt.FloatOps++; return l(f) / r(f) }
		}
		throwf("exec: bad float binop %s", ex.Op)
	case *inspire.UnOp:
		x := cc.floatExpr(ex.X)
		return func(f *frame) float64 { f.cnt.FloatOps++; return -x(f) }
	case *inspire.Select:
		cond := cc.boolExpr(ex.Cond)
		then := cc.floatExpr(ex.Then)
		els := cc.floatExpr(ex.Else)
		return func(f *frame) float64 {
			f.cnt.Branches++
			if cond(f) {
				return then(f)
			}
			return els(f)
		}
	case *inspire.Cast:
		return cc.floatExpr(ex.X)
	case *inspire.CallBuiltin:
		return cc.floatBuiltin(ex)
	case *inspire.CallFunc:
		call := cc.callFunc(ex)
		return func(f *frame) float64 {
			child := call(f)
			return child.floats[len(child.floats)-1]
		}
	}
	throwf("exec: cannot compile float expression %T", e)
	return nil
}

func (cc *compiler) boolExpr(e inspire.Expr) boolFn {
	t := e.ExprType()
	if !t.IsBool() {
		ie := cc.intExpr(e)
		return func(f *frame) bool { return ie(f) != 0 }
	}
	switch ex := e.(type) {
	case *inspire.ConstBool:
		v := ex.Value
		return func(*frame) bool { return v }
	case *inspire.VarRef:
		s := cc.slotFor(ex.Var)
		idx := s.idx
		return func(f *frame) bool { return f.ints[idx] != 0 }
	case *inspire.UnOp: // LNot
		x := cc.boolExpr(ex.X)
		return func(f *frame) bool { f.cnt.IntOps++; return !x(f) }
	case *inspire.Select:
		cond := cc.boolExpr(ex.Cond)
		then := cc.boolExpr(ex.Then)
		els := cc.boolExpr(ex.Else)
		return func(f *frame) bool {
			f.cnt.Branches++
			if cond(f) {
				return then(f)
			}
			return els(f)
		}
	case *inspire.Cast:
		return cc.boolExpr(ex.X)
	case *inspire.BinOp:
		if ex.Op.IsLogical() {
			l := cc.boolExpr(ex.L)
			r := cc.boolExpr(ex.R)
			if ex.Op == inspire.OpLAnd {
				return func(f *frame) bool { f.cnt.IntOps++; return l(f) && r(f) }
			}
			return func(f *frame) bool { f.cnt.IntOps++; return l(f) || r(f) }
		}
		// Comparison: operand types decide int vs float comparison.
		if ex.L.ExprType().IsFloat() || ex.R.ExprType().IsFloat() {
			l := cc.floatExpr(ex.L)
			r := cc.floatExpr(ex.R)
			switch ex.Op {
			case inspire.OpLt:
				return func(f *frame) bool { f.cnt.FloatOps++; return l(f) < r(f) }
			case inspire.OpLe:
				return func(f *frame) bool { f.cnt.FloatOps++; return l(f) <= r(f) }
			case inspire.OpGt:
				return func(f *frame) bool { f.cnt.FloatOps++; return l(f) > r(f) }
			case inspire.OpGe:
				return func(f *frame) bool { f.cnt.FloatOps++; return l(f) >= r(f) }
			case inspire.OpEq:
				return func(f *frame) bool { f.cnt.FloatOps++; return l(f) == r(f) }
			case inspire.OpNe:
				return func(f *frame) bool { f.cnt.FloatOps++; return l(f) != r(f) }
			}
		}
		l := cc.intExpr(ex.L)
		r := cc.intExpr(ex.R)
		switch ex.Op {
		case inspire.OpLt:
			return func(f *frame) bool { f.cnt.IntOps++; return l(f) < r(f) }
		case inspire.OpLe:
			return func(f *frame) bool { f.cnt.IntOps++; return l(f) <= r(f) }
		case inspire.OpGt:
			return func(f *frame) bool { f.cnt.IntOps++; return l(f) > r(f) }
		case inspire.OpGe:
			return func(f *frame) bool { f.cnt.IntOps++; return l(f) >= r(f) }
		case inspire.OpEq:
			return func(f *frame) bool { f.cnt.IntOps++; return l(f) == r(f) }
		case inspire.OpNe:
			return func(f *frame) bool { f.cnt.IntOps++; return l(f) != r(f) }
		}
	}
	throwf("exec: cannot compile bool expression %T", e)
	return nil
}

func (cc *compiler) workItem(ex *inspire.WorkItem) intFn {
	dim := cc.intExpr(ex.Dim)
	q := ex.Query
	return func(f *frame) int64 {
		f.cnt.IntOps++
		d := dim(f)
		if d < 0 || d > 2 {
			throwf("exec: work-item query dimension %d out of range", d)
		}
		switch q {
		case inspire.GlobalID:
			return f.wi.gid[d]
		case inspire.LocalID:
			return f.wi.lid[d]
		case inspire.GroupID:
			return f.wi.grp[d]
		case inspire.GlobalSize:
			return f.wi.gsz[d]
		case inspire.LocalSize:
			return f.wi.lsz[d]
		default:
			return f.wi.ngr[d]
		}
	}
}

// transNames marks expensive float builtins for profiling.
var transNames = map[string]bool{
	"exp": true, "log": true, "log2": true, "sin": true, "cos": true,
	"tan": true, "pow": true, "sqrt": true, "rsqrt": true,
}

func (cc *compiler) floatBuiltin(ex *inspire.CallBuiltin) floatFn {
	args := make([]floatFn, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = cc.floatExpr(a)
	}
	trans := transNames[ex.Name]
	count := func(f *frame) {
		if trans {
			f.cnt.TransOps++
		} else {
			f.cnt.OtherBuiltins++
		}
	}
	switch ex.Name {
	case "sqrt":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Sqrt(a(f)) }
	case "rsqrt":
		a := args[0]
		return func(f *frame) float64 { count(f); return 1 / math.Sqrt(a(f)) }
	case "fabs":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Abs(a(f)) }
	case "exp":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Exp(a(f)) }
	case "log":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Log(a(f)) }
	case "log2":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Log2(a(f)) }
	case "sin":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Sin(a(f)) }
	case "cos":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Cos(a(f)) }
	case "tan":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Tan(a(f)) }
	case "pow":
		a, b := args[0], args[1]
		return func(f *frame) float64 { count(f); return math.Pow(a(f), b(f)) }
	case "fmin", "min":
		a, b := args[0], args[1]
		return func(f *frame) float64 { count(f); return math.Min(a(f), b(f)) }
	case "fmax", "max":
		a, b := args[0], args[1]
		return func(f *frame) float64 { count(f); return math.Max(a(f), b(f)) }
	case "fma", "mad":
		a, b, c := args[0], args[1], args[2]
		return func(f *frame) float64 { count(f); return a(f)*b(f) + c(f) }
	case "floor":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Floor(a(f)) }
	case "ceil":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Ceil(a(f)) }
	case "abs":
		a := args[0]
		return func(f *frame) float64 { count(f); return math.Abs(a(f)) }
	case "clamp":
		a, lo, hi := args[0], args[1], args[2]
		return func(f *frame) float64 {
			count(f)
			return math.Max(lo(f), math.Min(a(f), hi(f)))
		}
	}
	throwf("exec: unknown float builtin %q", ex.Name)
	return nil
}

func (cc *compiler) intBuiltin(ex *inspire.CallBuiltin) intFn {
	args := make([]intFn, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = cc.intExpr(a)
	}
	switch ex.Name {
	case "min":
		a, b := args[0], args[1]
		return func(f *frame) int64 {
			f.cnt.OtherBuiltins++
			return min(a(f), b(f))
		}
	case "max":
		a, b := args[0], args[1]
		return func(f *frame) int64 {
			f.cnt.OtherBuiltins++
			return max(a(f), b(f))
		}
	case "abs":
		a := args[0]
		return func(f *frame) int64 {
			f.cnt.OtherBuiltins++
			v := a(f)
			if v < 0 {
				return -v
			}
			return v
		}
	case "clamp":
		a, lo, hi := args[0], args[1], args[2]
		return func(f *frame) int64 {
			f.cnt.OtherBuiltins++
			return max(lo(f), min(a(f), hi(f)))
		}
	}
	throwf("exec: unknown int builtin %q", ex.Name)
	return nil
}

// callFunc compiles a helper call: evaluate arguments, run the callee's
// body in a fresh child frame, and hand the frame back for return-value
// extraction. Scalar returns use slot 0 of the respective bank (reserved
// because the callee's first declared variable could collide — so we shift
// callee slots by one).
func (cc *compiler) callFunc(ex *inspire.CallFunc) func(*frame) *frame {
	callee := compileWith(ex.Callee, cc.helpers)
	if callee.body == nil {
		throwf("exec: recursive helper %q not supported", ex.Callee.Name)
	}
	if callee.hasBarrier {
		cc.out.hasBarrier = true
	}
	type binder func(parent, child *frame)
	binders := make([]binder, len(ex.Args))
	for i, a := range ex.Args {
		ps := callee.paramSlots[i]
		switch ps.kind {
		case slotFloat:
			val := cc.floatExpr(a)
			idx := ps.idx
			binders[i] = func(p, c *frame) { c.floats[idx] = val(p) }
		case slotInt:
			val := cc.intExpr(a)
			idx := ps.idx
			binders[i] = func(p, c *frame) { c.ints[idx] = val(p) }
		case slotGlobalBuf:
			vr, ok := a.(*inspire.VarRef)
			if !ok {
				throwf("exec: buffer argument to %q must be a parameter reference", ex.Callee.Name)
			}
			src := cc.bufferFor(vr.Var)
			idx := ps.idx
			binders[i] = func(p, c *frame) { c.bufs[idx] = src(p) }
		case slotLocalBuf:
			vr, ok := a.(*inspire.VarRef)
			if !ok {
				throwf("exec: local buffer argument to %q must be a parameter reference", ex.Callee.Name)
			}
			src := cc.bufferFor(vr.Var)
			idx := ps.idx
			binders[i] = func(p, c *frame) { c.locals[idx] = src(p) }
		}
	}
	nInts, nFloats := callee.nInts+1, callee.nFloats+1
	nG, nL := callee.nGlobal, callee.nLocal
	body := callee.body
	return func(parent *frame) *frame {
		parent.tick()
		child := &frame{
			ints:   make([]int64, nInts),
			floats: make([]float64, nFloats),
			wi:     parent.wi,
			cnt:    parent.cnt,
			bar:    parent.bar,
			budget: parent.budget,
		}
		if nG > 0 {
			child.bufs = make([]*Buffer, nG)
		}
		if nL > 0 {
			child.locals = make([]*Buffer, nL)
		}
		for _, b := range binders {
			b(parent, child)
		}
		body(child)
		return child
	}
}
