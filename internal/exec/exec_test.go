package exec

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/inspire"
)

func compileSrc(t *testing.T, src, kernel string) *Compiled {
	t.Helper()
	u, err := inspire.LowerSource("test", src)
	if err != nil {
		t.Fatal(err)
	}
	k := u.Kernel(kernel)
	if k == nil {
		t.Fatalf("kernel %q not found", kernel)
	}
	c, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const vecaddSrc = `
kernel void vecadd(global const float* a, global const float* b,
                   global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

func TestRunVecadd(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 256
	a, b, out := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.F[i] = float32(i)
		b.F[i] = float32(2 * i)
	}
	prof, err := c.Run([]Arg{BufArg(a), BufArg(b), BufArg(out), IntArg(n)}, ND1(n), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if want := float32(3 * i); out.F[i] != want {
			t.Fatalf("out[%d] = %g, want %g", i, out.F[i], want)
		}
	}
	tot := prof.Total()
	if tot.Items != int64(n) {
		t.Errorf("Items = %d, want %d", tot.Items, n)
	}
	if tot.GlobalLoads != int64(2*n) {
		t.Errorf("GlobalLoads = %d, want %d", tot.GlobalLoads, 2*n)
	}
	if tot.GlobalStores != int64(n) {
		t.Errorf("GlobalStores = %d, want %d", tot.GlobalStores, n)
	}
	if tot.FloatOps != int64(n) {
		t.Errorf("FloatOps = %d, want %d", tot.FloatOps, n)
	}
	if tot.Branches != int64(n) {
		t.Errorf("Branches = %d, want %d", tot.Branches, n)
	}
}

func TestRunLoopSum(t *testing.T) {
	src := `kernel void rowsum(global const float* a, global float* out, int n) {
		int i = get_global_id(0);
		float s = 0.0;
		for (int j = 0; j < n; j++) {
			s += a[i * n + j];
		}
		out[i] = s;
	}`
	c := compileSrc(t, src, "rowsum")
	rows, cols := 64, 33
	a, out := NewFloatBuffer(rows*cols), NewFloatBuffer(rows)
	for i := range a.F {
		a.F[i] = 1.0
	}
	if _, err := c.Run([]Arg{BufArg(a), BufArg(out), IntArg(cols)}, ND1(rows), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if out.F[i] != float32(cols) {
			t.Fatalf("out[%d] = %g, want %d", i, out.F[i], cols)
		}
	}
}

func TestRunHelperCall(t *testing.T) {
	src := `
float axpb(float a, float x, float b) { return a * x + b; }
int twice(int v) { return v * 2; }
kernel void f(global float* o, global int* p) {
	int i = get_global_id(0);
	o[i] = axpb(2.0, (float)i, 1.0);
	p[i] = twice(i);
}`
	c := compileSrc(t, src, "f")
	n := 64
	o, p := NewFloatBuffer(n), NewIntBuffer(n)
	if _, err := c.Run([]Arg{BufArg(o), BufArg(p)}, ND1(n), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if want := float32(2*i + 1); o.F[i] != want {
			t.Fatalf("o[%d] = %g, want %g", i, o.F[i], want)
		}
		if p.I[i] != int32(2*i) {
			t.Fatalf("p[%d] = %d, want %d", i, p.I[i], 2*i)
		}
	}
}

func TestRunBarrierReduction(t *testing.T) {
	src := `kernel void reduce(global const float* in, global float* out, local float* tmp, int n) {
		int gid = get_global_id(0);
		int lid = get_local_id(0);
		tmp[lid] = gid < n ? in[gid] : 0.0;
		barrier(1);
		for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {
			if (lid < s) {
				tmp[lid] += tmp[lid + s];
			}
			barrier(1);
		}
		if (lid == 0) {
			out[get_group_id(0)] = tmp[0];
		}
	}`
	c := compileSrc(t, src, "reduce")
	if !c.HasBarrier() {
		t.Fatal("HasBarrier() = false for barrier kernel")
	}
	n := 1024
	lsz := 64
	groups := n / lsz
	in, out := NewFloatBuffer(n), NewFloatBuffer(groups)
	var want float64
	for i := 0; i < n; i++ {
		in.F[i] = float32(i % 7)
		want += float64(i % 7)
	}
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{lsz, 1, 1}}
	if _, err := c.Run([]Arg{BufArg(in), BufArg(out), LocalArg(lsz), IntArg(n)}, nd, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	var got float64
	for g := 0; g < groups; g++ {
		got += float64(out.F[g])
	}
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("reduction total = %g, want %g", got, want)
	}
}

func TestRunChunkedMatchesFull(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 512
	mk := func() (*Buffer, *Buffer, *Buffer) {
		a, b, o := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
		for i := 0; i < n; i++ {
			a.F[i] = float32(i) * 0.5
			b.F[i] = float32(n - i)
		}
		return a, b, o
	}
	a1, b1, full := mk()
	if _, err := c.Run([]Arg{BufArg(a1), BufArg(b1), BufArg(full), IntArg(n)}, ND1(n), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	a2, b2, chunked := mk()
	args := []Arg{BufArg(a2), BufArg(b2), BufArg(chunked), IntArg(n)}
	// Execute as three chunks: [0,192), [192,448), [448,512).
	for _, ch := range [][2]int{{0, 192}, {192, 448}, {448, 512}} {
		if _, err := c.Run(args, ND1(n), RunOptions{Lo: ch[0], Hi: ch[1]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if full.F[i] != chunked.F[i] {
			t.Fatalf("chunked[%d] = %g, full = %g", i, chunked.F[i], full.F[i])
		}
	}
}

func TestRunChunkProfileCoversOnlyChunk(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 640
	a, b, o := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	args := []Arg{BufArg(a), BufArg(b), BufArg(o), IntArg(n)}
	prof, err := c.Run(args, ND1(n), RunOptions{Lo: 128, Hi: 384})
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.Total().Items; got != 256 {
		t.Errorf("chunk profile items = %d, want 256", got)
	}
	if got := prof.Range(0, 128).Items; got != 0 {
		t.Errorf("items outside chunk = %d, want 0", got)
	}
}

func TestRun2DTranspose(t *testing.T) {
	src := `kernel void transpose(global const float* in, global float* out, int w, int h) {
		int x = get_global_id(0);
		int y = get_global_id(1);
		if (x < w && y < h) {
			out[x * h + y] = in[y * w + x];
		}
	}`
	c := compileSrc(t, src, "transpose")
	w, h := 64, 32
	in, out := NewFloatBuffer(w*h), NewFloatBuffer(w*h)
	for i := range in.F {
		in.F[i] = float32(i)
	}
	if _, err := c.Run([]Arg{BufArg(in), BufArg(out), IntArg(w), IntArg(h)}, ND2(w, h), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if out.F[x*h+y] != in.F[y*w+x] {
				t.Fatalf("transpose mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestRunDivergentWorkload(t *testing.T) {
	// Items with high gid iterate much longer: MaxItemOps must exceed the mean.
	src := `kernel void diverge(global float* o, int n) {
		int i = get_global_id(0);
		float s = 0.0;
		for (int j = 0; j < i; j++) {
			s += 1.0;
		}
		o[i] = s;
	}`
	c := compileSrc(t, src, "diverge")
	n := 512
	o := NewFloatBuffer(n)
	prof, err := c.Run([]Arg{BufArg(o), IntArg(n)}, ND1(n), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tot := prof.Total()
	mean := tot.totalOps() / tot.Items
	if tot.MaxItemOps <= mean {
		t.Errorf("MaxItemOps = %d, want > mean %d", tot.MaxItemOps, mean)
	}
	if o.F[n-1] != float32(n-1) {
		t.Errorf("o[%d] = %g, want %d", n-1, o.F[n-1], n-1)
	}
	// The last bucket must be more expensive than the first.
	first := prof.Range(0, n/10)
	last := prof.Range(n-n/10, n)
	if last.FloatOps <= first.FloatOps {
		t.Errorf("bucketing lost the gradient: first %d floatOps, last %d", first.FloatOps, last.FloatOps)
	}
}

func TestRunErrors(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 64
	a, b, o := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	good := []Arg{BufArg(a), BufArg(b), BufArg(o), IntArg(n)}

	if _, err := c.Run(good[:3], ND1(n), RunOptions{}); err == nil {
		t.Error("want arity error")
	}
	if _, err := c.Run([]Arg{IntArg(1), BufArg(b), BufArg(o), IntArg(n)}, ND1(n), RunOptions{}); err == nil {
		t.Error("want missing-buffer error")
	}
	if _, err := c.Run(good, NDRange{Global: [3]int{100, 1, 1}, Local: [3]int{64, 1, 1}}, RunOptions{}); err == nil {
		t.Error("want divisibility error")
	}
	if _, err := c.Run(good, ND1(n), RunOptions{Lo: 3, Hi: 64}); err == nil {
		t.Error("want chunk alignment error")
	}
	if _, err := c.Run(good, ND1(n), RunOptions{Lo: 0, Hi: 128}); err == nil {
		t.Error("want chunk range error")
	}
}

func TestRunOutOfBounds(t *testing.T) {
	src := `kernel void oob(global float* o) {
		o[get_global_id(0) + 1000000] = 1.0;
	}`
	c := compileSrc(t, src, "oob")
	o := NewFloatBuffer(16)
	_, err := c.Run([]Arg{BufArg(o)}, ND1(16), RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("err = %v, want out-of-bounds", err)
	}
}

func TestRunDivideByZero(t *testing.T) {
	src := `kernel void dbz(global int* o, int d) {
		o[get_global_id(0)] = 7 / d;
	}`
	c := compileSrc(t, src, "dbz")
	o := NewIntBuffer(16)
	_, err := c.Run([]Arg{BufArg(o), IntArg(0)}, ND1(16), RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
	// Float division by zero is Inf, not an error.
	src2 := `kernel void fdbz(global float* o, float d) {
		o[get_global_id(0)] = 1.0 / d;
	}`
	c2 := compileSrc(t, src2, "fdbz")
	fo := NewFloatBuffer(16)
	if _, err := c2.Run([]Arg{BufArg(fo), FloatArg(0)}, ND1(16), RunOptions{}); err != nil {
		t.Fatalf("float div by zero errored: %v", err)
	}
	if !math.IsInf(float64(fo.F[0]), 1) {
		t.Errorf("1/0 = %g, want +Inf", fo.F[0])
	}
}

func TestRunMathBuiltins(t *testing.T) {
	src := `kernel void m(global float* o) {
		o[0] = sqrt(4.0);
		o[1] = exp(0.0);
		o[2] = fmin(3.0, 2.0);
		o[3] = fmax(3.0, 2.0);
		o[4] = fabs(-5.5);
		o[5] = pow(2.0, 10.0);
		o[6] = clamp(7.0, 0.0, 1.0);
		o[7] = mad(2.0, 3.0, 4.0);
		o[8] = floor(1.7);
		o[9] = rsqrt(4.0);
		o[10] = log2(8.0);
	}`
	c := compileSrc(t, src, "m")
	o := NewFloatBuffer(16)
	if _, err := c.Run([]Arg{BufArg(o)}, ND1(1), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 1, 2, 3, 5.5, 1024, 1, 10, 1, 0.5, 3}
	for i, w := range want {
		if math.Abs(float64(o.F[i]-w)) > 1e-5 {
			t.Errorf("o[%d] = %g, want %g", i, o.F[i], w)
		}
	}
}

func TestRunIntBuiltinsAndOps(t *testing.T) {
	src := `kernel void m(global int* o, int n) {
		o[0] = min(3, n);
		o[1] = max(3, n);
		o[2] = abs(-9);
		o[3] = clamp(n, 0, 4);
		o[4] = n % 3;
		o[5] = n / 2;
		o[6] = n << 1;
		o[7] = n >> 1;
		o[8] = n & 3;
		o[9] = n | 8;
		o[10] = n ^ 1;
		o[11] = -n;
		o[12] = n > 3 && n < 100 ? 1 : 0;
		o[13] = !(n > 3) ? 1 : 0;
	}`
	c := compileSrc(t, src, "m")
	o := NewIntBuffer(16)
	if _, err := c.Run([]Arg{BufArg(o), IntArg(7)}, ND1(1), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 7, 9, 4, 1, 3, 14, 3, 3, 15, 6, -7, 1, 0}
	for i, w := range want {
		if o.I[i] != w {
			t.Errorf("o[%d] = %d, want %d", i, o.I[i], w)
		}
	}
}

func TestRunWhileBreakContinue(t *testing.T) {
	src := `kernel void wbc(global int* o) {
		int i = 0;
		int acc = 0;
		while (true) {
			i++;
			if (i == 3) { continue; }
			if (i > 6) { break; }
			acc += i;
		}
		o[get_global_id(0)] = acc;
	}`
	c := compileSrc(t, src, "wbc")
	o := NewIntBuffer(4)
	if _, err := c.Run([]Arg{BufArg(o)}, ND1(4), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	// 1+2+4+5+6 = 18
	if o.I[0] != 18 {
		t.Errorf("acc = %d, want 18", o.I[0])
	}
}

func TestProfileRangeAdditive(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 1000
	a, b, o := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	prof, err := c.Run([]Arg{BufArg(a), BufArg(b), BufArg(o), IntArg(n)}, NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{1, 1, 1}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(cutRaw uint16) bool {
		cut := int(cutRaw) % (n + 1)
		left := prof.Range(0, cut)
		right := prof.Range(cut, n)
		tot := prof.Total()
		sum := left.GlobalLoads + right.GlobalLoads
		// Proportional attribution may round at bucket-cutting boundaries.
		return absI64(sum-tot.GlobalLoads) <= int64(len(prof.Buckets))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestRunDeterministic(t *testing.T) {
	src := `kernel void trig(global float* o, int n) {
		int i = get_global_id(0);
		o[i] = sin((float)i * 0.001) * cos((float)i * 0.002);
	}`
	c := compileSrc(t, src, "trig")
	n := 4096
	run := func() []float32 {
		o := NewFloatBuffer(n)
		if _, err := c.Run([]Arg{BufArg(o), IntArg(n)}, ND1(n), RunOptions{}); err != nil {
			t.Fatal(err)
		}
		return o.F
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic output at %d: %g vs %g", i, r1[i], r2[i])
		}
	}
}

func TestCompileRejectsRecursion(t *testing.T) {
	u, err := inspire.LowerSource("t", `
int f(int x) { return f(x); }
kernel void k(global int* o) { o[0] = 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	// Build a self-referential helper call manually to probe the guard:
	// compiling the helper that calls itself must not hang or crash.
	helper := u.Helpers[0]
	if _, err := Compile(helper); err == nil {
		// Recursion guard yields a nil body which surfaces as an error
		// either at compile or run time; compile-time is preferred but
		// the important property is "no infinite loop", which reaching
		// this line at all proves.
		t.Log("recursive helper compiled; guard relies on run-time check")
	}
}

func TestNDRangeNormalization(t *testing.T) {
	nd, err := ND1(128).normalized()
	if err != nil {
		t.Fatal(err)
	}
	if nd.Local[0] != DefaultLocal0 {
		t.Errorf("default local = %d, want %d", nd.Local[0], DefaultLocal0)
	}
	nd2, err := ND1(67).normalized()
	if err != nil {
		t.Fatal(err)
	}
	if nd2.Local[0] != 1 {
		t.Errorf("non-divisible default local = %d, want 1", nd2.Local[0])
	}
	if ND2(8, 4).Items() != 32 {
		t.Errorf("Items = %d, want 32", ND2(8, 4).Items())
	}
}

func TestBufferHelpers(t *testing.T) {
	b := NewFloatBuffer(10)
	if b.Len() != 10 || b.Bytes() != 40 {
		t.Errorf("Len/Bytes = %d/%d, want 10/40", b.Len(), b.Bytes())
	}
	b.F[3] = 7
	cl := b.Clone()
	cl.F[3] = 9
	if b.F[3] != 7 {
		t.Error("Clone aliases original")
	}
	ib := NewIntBuffer(4)
	ib.I[0] = 5
	icl := ib.Clone()
	if icl.I[0] != 5 || icl.Len() != 4 {
		t.Error("int clone broken")
	}
}
