package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/inspire"
)

// vmdiff: the bytecode VM must produce buffers AND profiles
// byte-identical to the closure tier for every kernel shape — straight
// lines, loops (back-edge counter flushes), divergence, barriers,
// fused super-instructions, and faulting runs. This is the contract
// that lets the VM batch profile counters per basic block: any drift
// in a single counter fails here.

type vmdiffCase struct {
	name   string
	src    string
	kernel string
	args   func() []Arg
	nd     NDRange
}

func vmdiffCases() []vmdiffCase {
	randFloats := func(n int, seed int64) *Buffer {
		b := NewFloatBuffer(n)
		r := rand.New(rand.NewSource(seed))
		for i := range b.F {
			b.F[i] = r.Float32()*4 - 2
		}
		return b
	}
	return []vmdiffCase{
		{
			name: "straightline arithmetic",
			src: `kernel void k(global float* a, global float* out, int n) {
				int i = get_global_id(0);
				float x = a[i];
				out[i] = x * x + 2.0f * x - 0.5f;
			}`,
			kernel: "k",
			args:   func() []Arg { return []Arg{BufArg(randFloats(64, 1)), BufArg(NewFloatBuffer(64)), IntArg(64)} },
			nd:     ND1(64),
		},
		{
			name: "loop with divergent trip counts",
			src: `kernel void k(global float* out, int n) {
				int i = get_global_id(0);
				float acc = 0.0f;
				for (int j = 0; j < i % 7; j = j + 1) {
					acc = acc + (float)j * 0.25f;
				}
				out[i] = acc;
			}`,
			kernel: "k",
			args:   func() []Arg { return []Arg{BufArg(NewFloatBuffer(96)), IntArg(96)} },
			nd:     ND1(96),
		},
		{
			name: "branch divergence and builtins",
			src: `kernel void k(global float* a, global float* out, int n) {
				int i = get_global_id(0);
				float x = a[i];
				if (x > 0.0f) {
					out[i] = sqrt(x) + exp(x);
				} else {
					out[i] = fabs(x) * min(x, -0.25f);
				}
			}`,
			kernel: "k",
			args:   func() []Arg { return []Arg{BufArg(randFloats(128, 2)), BufArg(NewFloatBuffer(128)), IntArg(128)} },
			nd:     ND1(128),
		},
		{
			name: "matmul fused mac",
			src: `kernel void k(global const float* a, global const float* b,
					global float* c, int n) {
				int row = get_global_id(1);
				int col = get_global_id(0);
				float acc = 0.0f;
				for (int t = 0; t < n; t = t + 1) {
					acc = acc + a[row * n + t] * b[t * n + col];
				}
				c[row * n + col] = acc;
			}`,
			kernel: "k",
			args: func() []Arg {
				return []Arg{BufArg(randFloats(64, 3)), BufArg(randFloats(64, 4)), BufArg(NewFloatBuffer(64)), IntArg(8)}
			},
			nd: ND2(8, 8),
		},
		{
			name: "local memory barrier reduction",
			src: `kernel void k(global const float* in, global float* out,
					local float* tile, int n) {
				int l = get_local_id(0);
				int g = get_global_id(0);
				tile[l] = in[g];
				barrier(1);
				if (l == 0) {
					float s = 0.0f;
					for (int j = 0; j < get_local_size(0); j = j + 1) {
						s = s + tile[j];
					}
					out[get_group_id(0)] = s;
				}
			}`,
			kernel: "k",
			args: func() []Arg {
				return []Arg{BufArg(randFloats(64, 5)), BufArg(NewFloatBuffer(8)), LocalArg(8), IntArg(64)}
			},
			nd: NDRange{Global: [3]int{64, 1, 1}, Local: [3]int{8, 1, 1}},
		},
		{
			name: "integer ops and stores",
			src: `kernel void k(global int* out, int n) {
				int i = get_global_id(0);
				int v = (i * 37 + 11) % 13;
				v = (v << 2) ^ (i & 5);
				out[i] = clamp(v, 2, 40);
			}`,
			kernel: "k",
			args:   func() []Arg { return []Arg{BufArg(NewIntBuffer(80)), IntArg(80)} },
			nd:     ND1(80),
		},
	}
}

// TestVMDiffProfilesByteIdentical runs every case on both tiers and
// requires bit-equal output buffers and byte-identical profile buckets.
func TestVMDiffProfilesByteIdentical(t *testing.T) {
	for _, tc := range vmdiffCases() {
		t.Run(tc.name, func(t *testing.T) {
			cVM := compileTierSrc(t, tc.src, tc.kernel, TierVM)
			cCl := compileTierSrc(t, tc.src, tc.kernel, TierClosure)
			cAu := compileTierSrc(t, tc.src, tc.kernel, TierAuto)

			argsVM, argsCl, argsAu := tc.args(), tc.args(), tc.args()
			pVM, err := cVM.Run(argsVM, tc.nd, RunOptions{})
			if err != nil {
				t.Fatalf("vm run: %v", err)
			}
			pCl, err := cCl.Run(argsCl, tc.nd, RunOptions{})
			if err != nil {
				t.Fatalf("closure run: %v", err)
			}
			pAu, err := cAu.Run(argsAu, tc.nd, RunOptions{})
			if err != nil {
				t.Fatalf("auto (%v) run: %v", cAu.Tier(), err)
			}

			for ai := range argsVM {
				b := argsVM[ai].Buf
				if b == nil {
					continue
				}
				if !reflect.DeepEqual(b.F, argsCl[ai].Buf.F) || !reflect.DeepEqual(b.I, argsCl[ai].Buf.I) {
					t.Errorf("arg %d buffers differ between tiers", ai)
				}
				if !reflect.DeepEqual(b.F, argsAu[ai].Buf.F) || !reflect.DeepEqual(b.I, argsAu[ai].Buf.I) {
					t.Errorf("arg %d buffers differ between vm and auto (%v)", ai, cAu.Tier())
				}
			}
			if pVM.Global0 != pCl.Global0 || len(pVM.Buckets) != len(pCl.Buckets) {
				t.Fatalf("profile shape: vm %d/%d buckets, closure %d/%d",
					pVM.Global0, len(pVM.Buckets), pCl.Global0, len(pCl.Buckets))
			}
			for b := range pVM.Buckets {
				if pVM.Buckets[b] != pCl.Buckets[b] {
					t.Errorf("bucket %d:\n  vm      %+v\n  closure %+v", b, pVM.Buckets[b], pCl.Buckets[b])
				}
				if pAu.Buckets[b] != pCl.Buckets[b] {
					t.Errorf("bucket %d:\n  auto    %+v\n  closure %+v", b, pAu.Buckets[b], pCl.Buckets[b])
				}
			}
		})
	}
}

// TestVMDiffFaultProfiles: counter flushes on the fault paths must
// match the closure tier too — the partially executed item's counts
// land (or not) identically. Errors must carry the same message.
func TestVMDiffFaultProfiles(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		kernel string
		args   func() []Arg
		nd     NDRange
	}{
		{
			name: "divide by zero",
			src: `kernel void k(global int* out, int n) {
				int i = get_global_id(0);
				out[i] = 12 / (i - (n / 2));
			}`,
			kernel: "k",
			args:   func() []Arg { return []Arg{BufArg(NewIntBuffer(16)), IntArg(16)} },
			nd:     ND1(16),
		},
		{
			name: "store out of bounds",
			src: `kernel void k(global float* out, int n) {
				int i = get_global_id(0);
				out[i * 3] = 1.0f;
			}`,
			kernel: "k",
			args:   func() []Arg { return []Arg{BufArg(NewFloatBuffer(16)), IntArg(16)} },
			nd:     ND1(16),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cVM := compileTierSrc(t, tc.src, tc.kernel, TierVM)
			cCl := compileTierSrc(t, tc.src, tc.kernel, TierClosure)
			cVe := compileTierSrc(t, tc.src, tc.kernel, TierVec)
			_, errVM := cVM.Run(tc.args(), tc.nd, RunOptions{})
			_, errCl := cCl.Run(tc.args(), tc.nd, RunOptions{})
			_, errVe := cVe.Run(tc.args(), tc.nd, RunOptions{})
			if errVM == nil || errCl == nil || errVe == nil {
				t.Fatalf("want faults on all tiers, got vm=%v closure=%v vec=%v", errVM, errCl, errVe)
			}
			if errVM.Error() != errCl.Error() {
				t.Errorf("fault messages differ:\n  vm      %v\n  closure %v", errVM, errCl)
			}
			if errVe.Error() != errCl.Error() {
				t.Errorf("fault messages differ:\n  vec     %v\n  closure %v", errVe, errCl)
			}
		})
	}
}

// TestVecDivergenceBailParity pins the vector tier's scalarization
// path: a data-dependent forward branch vectorizes statically (the
// lanes are checked for agreement at runtime), so with mixed-sign data
// some groups converge and run vectorized to completion while others
// diverge mid-kernel and complete on the scalar VM. Buffers and
// profiles must stay byte-identical to the closure tier either way.
func TestVecDivergenceBailParity(t *testing.T) {
	src := `kernel void k(global float* a, global float* out, int n) {
		int i = get_global_id(0);
		float x = a[i] * 0.5f;
		if (x > 0.0f) {
			out[i] = sqrt(x) + x * 3.0f;
		} else {
			out[i] = fabs(x) - 1.0f;
		}
	}`
	cVe := compileTierSrc(t, src, "k", TierVec)
	cCl := compileTierSrc(t, src, "k", TierClosure)
	if cVe.Tier() != TierVec {
		t.Fatalf("tier = %v, want vec", cVe.Tier())
	}
	const n = 256
	fill := func(mode string) []Arg {
		a, out := NewFloatBuffer(n), NewFloatBuffer(n)
		r := rand.New(rand.NewSource(7))
		for i := range a.F {
			switch mode {
			case "uniform": // every lane takes the same side
				a.F[i] = 1.5
			case "grouped": // agreement within each 16-item group
				a.F[i] = float32(1 - 2*((i/16)%2))
			default: // per-item signs: every group diverges
				a.F[i] = r.Float32()*4 - 2
			}
		}
		return []Arg{BufArg(a), BufArg(out), IntArg(n)}
	}
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{16, 1, 1}}
	for _, mode := range []string{"uniform", "grouped", "mixed"} {
		t.Run(mode, func(t *testing.T) {
			argsVe, argsCl := fill(mode), fill(mode)
			pVe, err := cVe.Run(argsVe, nd, RunOptions{})
			if err != nil {
				t.Fatalf("vec run: %v", err)
			}
			pCl, err := cCl.Run(argsCl, nd, RunOptions{})
			if err != nil {
				t.Fatalf("closure run: %v", err)
			}
			if !reflect.DeepEqual(argsVe[1].Buf.F, argsCl[1].Buf.F) {
				t.Errorf("%s: output buffers differ between vec and closure", mode)
			}
			for b := range pCl.Buckets {
				if pVe.Buckets[b] != pCl.Buckets[b] {
					t.Errorf("%s bucket %d:\n  vec     %+v\n  closure %+v", mode, b, pVe.Buckets[b], pCl.Buckets[b])
				}
			}
		})
	}
}

// TestVecDivergenceReconvergeParity pins the v2 masked-execution path:
// a data-dependent forward branch with per-item signs diverges every
// group, the sides run compacted, and the group re-forms at the join
// point and finishes vectorized. The profile must record the
// re-convergences (and no scalar bails), and buffers plus per-bucket
// counts must stay byte-identical to the closure tier even though the
// two sides retired different instruction mixes per lane.
func TestVecDivergenceReconvergeParity(t *testing.T) {
	src := `kernel void k(global float* a, global float* out, int n) {
		int i = get_global_id(0);
		float x = a[i];
		float r = 0.0f;
		if (x > 0.0f) {
			r = sqrt(x) * 2.0f + exp(x * 0.25f);
		} else {
			r = fabs(x) - 0.5f;
		}
		out[i] = r + x;
	}`
	cVe := compileTierSrc(t, src, "k", TierVec)
	cCl := compileTierSrc(t, src, "k", TierClosure)
	if cVe.Tier() != TierVec {
		t.Fatalf("tier = %v, want vec", cVe.Tier())
	}
	const n = 256
	mk := func() []Arg {
		a, out := NewFloatBuffer(n), NewFloatBuffer(n)
		for i := range a.F {
			// Alternating signs: every group splits on the branch.
			a.F[i] = float32(1-2*(i%2)) * (0.25 + float32(i%7)*0.125)
		}
		return []Arg{BufArg(a), BufArg(out), IntArg(n)}
	}
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{16, 1, 1}}
	argsVe, argsCl := mk(), mk()
	pVe, err := cVe.Run(argsVe, nd, RunOptions{})
	if err != nil {
		t.Fatalf("vec run: %v", err)
	}
	pCl, err := cCl.Run(argsCl, nd, RunOptions{})
	if err != nil {
		t.Fatalf("closure run: %v", err)
	}
	if pVe.VecDivergences == 0 || pVe.VecReconverges == 0 {
		t.Fatalf("divergences=%d reconverges=%d, want both > 0",
			pVe.VecDivergences, pVe.VecReconverges)
	}
	if pVe.VecScalarBails != 0 {
		t.Errorf("scalar bails = %d, want 0 (region is re-convergible)", pVe.VecScalarBails)
	}
	if pCl.VecDivergences != 0 || pCl.VecReconverges != 0 || pCl.VecScalarBails != 0 {
		t.Errorf("closure tier reported vec counters: %d/%d/%d",
			pCl.VecDivergences, pCl.VecReconverges, pCl.VecScalarBails)
	}
	if !reflect.DeepEqual(argsVe[1].Buf.F, argsCl[1].Buf.F) {
		t.Errorf("output buffers differ between vec and closure")
	}
	for b := range pCl.Buckets {
		if pVe.Buckets[b] != pCl.Buckets[b] {
			t.Errorf("bucket %d:\n  vec     %+v\n  closure %+v", b, pVe.Buckets[b], pCl.Buckets[b])
		}
	}
}

// TestVecDivergenceMaskedFaultOrder: a fault inside a masked side must
// surface with the message of the canonically FIRST faulting item —
// even when that item's side ran second in the masked schedule. The
// side frames park would-fault lanes pre-instruction, the group bails
// with per-lane PCs, and the scalar completion walks items in order.
func TestVecDivergenceMaskedFaultOrder(t *testing.T) {
	// Odd items (x < 0 side) fault on an out-of-bounds load; even items
	// run clean. The first faulting item is item 1.
	src := `kernel void k(global float* a, global float* out, int n) {
		int i = get_global_id(0);
		float x = a[i];
		if (x > 0.0f) {
			out[i] = x * 2.0f;
		} else {
			out[i] = a[i + n] * 0.5f;
		}
	}`
	cVe := compileTierSrc(t, src, "k", TierVec)
	cCl := compileTierSrc(t, src, "k", TierClosure)
	if cVe.Tier() != TierVec {
		t.Fatalf("tier = %v, want vec", cVe.Tier())
	}
	const n = 64
	mk := func() []Arg {
		a, out := NewFloatBuffer(n), NewFloatBuffer(n)
		for i := range a.F {
			a.F[i] = float32(1 - 2*(i%2)) // +1, -1, +1, ...
		}
		return []Arg{BufArg(a), BufArg(out), IntArg(n)}
	}
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{16, 1, 1}}
	_, errVe := cVe.Run(mk(), nd, RunOptions{Workers: 1})
	_, errCl := cCl.Run(mk(), nd, RunOptions{Workers: 1})
	if errVe == nil || errCl == nil {
		t.Fatalf("want faults on both tiers, got vec=%v closure=%v", errVe, errCl)
	}
	if errVe.Error() != errCl.Error() {
		t.Errorf("fault messages differ:\n  vec     %v\n  closure %v", errVe, errCl)
	}
}

// BenchmarkVMProfileBatching exercises the block-batched counter path
// on a loop-heavy kernel (64-iteration MAC loop per item), where the
// per-iteration counter cost dominated before batching.
func BenchmarkVMProfileBatching(b *testing.B) {
	src := `kernel void mm(global const float* a, global const float* x,
			global float* c, int n) {
		int row = get_global_id(1);
		int col = get_global_id(0);
		float acc = 0.0f;
		for (int t = 0; t < n; t = t + 1) {
			acc = acc + a[row * n + t] * x[t * n + col];
		}
		c[row * n + col] = acc;
	}`
	u, err := inspire.LowerSource("bench", src)
	if err != nil {
		b.Fatal(err)
	}
	k := u.Kernel("mm")
	if k == nil {
		b.Fatal("kernel mm not found")
	}
	c, err := CompileTier(k, TierVM)
	if err != nil {
		b.Fatal(err)
	}
	const n = 64
	args := []Arg{
		BufArg(NewFloatBuffer(n * n)), BufArg(NewFloatBuffer(n * n)),
		BufArg(NewFloatBuffer(n * n)), IntArg(n),
	}
	nd := ND2(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(args, nd, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(n * n * n * 8)
}
