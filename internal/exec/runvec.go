package exec

import "repro/internal/exec/vm"

// Vector (SIMT) execution path of the group runner. When the kernel
// vectorized, runGroup dispatches here: the whole work group executes on
// one W-wide VecFrame, a single dispatch loop retiring every lane per
// instruction. The scalar VM frames built by initVM stay alongside —
// when the lanes diverge at a varying branch (or some lane would fault),
// the vector frame's lanes are scattered into them and the group
// completes on the scalar VM, which reproduces canonical item-order
// semantics (including fault messages) exactly.

// initVec builds the runner's W-lane vector frame. No-op when the
// kernel is not vectorized or groups are single-item (the scalar VM
// path is strictly better at W=1).
func (r *groupRunner) initVec() {
	p := r.c.vecProg
	if p == nil || r.itemsPer <= 1 || r.vmFrames == nil {
		return
	}
	w := r.itemsPer
	vf := p.NewVecFrame(w)
	vf.B = r.budget
	// Share the buffer slot tables initVM built: local slots alias the
	// runner's per-group locals, so the per-group clear stays visible.
	f0 := r.vmFrames[0]
	vf.Globals = f0.Globals
	vf.Locals = f0.Locals
	// Scalar parameters broadcast into every lane.
	for i := range p.Params {
		pr := &p.Params[i]
		switch pr.Kind {
		case vm.ParamInt:
			vf.SetI(pr.Index, f0.I[pr.Index])
		case vm.ParamFloat:
			vf.SetF(pr.Index, f0.F[pr.Index])
		}
	}
	// Launch-constant WI rows broadcast once; the local-id ramps are
	// also group-invariant (lane li <-> local coords with l0 innermost,
	// matching the scalar item loops).
	for d := 0; d < 3; d++ {
		for l := 0; l < w; l++ {
			vf.WI[vm.WIGlobalSize][d][l] = r.gsz[d]
			vf.WI[vm.WILocalSize][d][l] = r.lsz[d]
			vf.WI[vm.WINumGroups][d][l] = r.ngr[d]
		}
	}
	l01 := r.lsz[0] * r.lsz[1]
	for l := 0; l < w; l++ {
		vf.WI[vm.WILocalID][0][l] = int64(l) % r.lsz[0]
		vf.WI[vm.WILocalID][1][l] = (int64(l) / r.lsz[0]) % r.lsz[1]
		vf.WI[vm.WILocalID][2][l] = int64(l) / l01
	}
	r.vecFrame = vf
}

// runGroupVec executes one work group on the vector tier.
func (r *groupRunner) runGroupVec(g0, g1, g2 int) {
	vf := r.vecFrame
	g := [3]int64{int64(g0), int64(g1), int64(g2)}
	for d := 0; d < 3; d++ {
		grp := vf.WI[vm.WIGroupID][d]
		gid := vf.WI[vm.WIGlobalID][d]
		lid := vf.WI[vm.WILocalID][d]
		base := g[d] * r.lsz[d]
		for l := range grp {
			grp[l] = g[d]
			gid[l] = base + lid[l]
		}
	}
	vf.Reset()
	st, err := r.c.vecProg.Run(vf)
	r.vecDiv += vf.Divergences
	r.vecRec += vf.Reconverges
	if err != nil {
		panic(execError{err})
	}
	if st == vm.Diverged {
		r.bailGroupVec(g0, g1, g2)
		return
	}
	lid0 := vf.WI[vm.WILocalID][0]
	if vf.Laned {
		// The group diverged and re-formed: lanes that took different
		// sides carry different counts (shared counts plus a per-lane
		// delta from the masked region).
		for l := 0; l < vf.W; l++ {
			c := Counts(vf.LaneCounts(l))
			c.Items = 1
			c.MaxItemOps = c.totalOps()
			r.buckets[r.bucketByL0[lid0[l]]].Add(&c)
		}
		return
	}
	// Convergent execution: every lane retired the same instruction
	// sequence, so the frame's counts are each item's counts.
	c := Counts(vf.Cnt)
	c.Items = 1
	c.MaxItemOps = c.totalOps()
	for l := 0; l < vf.W; l++ {
		r.buckets[r.bucketByL0[lid0[l]]].Add(&c)
	}
}

// bailGroupVec scalarizes a diverged group: each lane's registers,
// parked PC, and accumulated counts transfer into the per-item scalar
// frames, which then complete on the scalar VM in canonical item order.
// On a pre-instruction park the diverging instruction has neither
// executed nor counted on the vector frame, so the scalar rerun picks
// it up exactly once; on a partial re-formation bail each lane resumes
// from its own PC with its own counts. Either way — counts, stores,
// and fault messages land byte-identical to an all-scalar run.
func (r *groupRunner) bailGroupVec(g0, g1, g2 int) {
	vf := r.vecFrame
	p := r.c.vmProg
	vp := r.c.vecProg
	r.vecBail++
	li := 0
	for l2 := 0; l2 < int(r.lsz[2]); l2++ {
		for l1 := 0; l1 < int(r.lsz[1]); l1++ {
			for l0 := 0; l0 < int(r.lsz[0]); l0++ {
				f := r.vmFrames[li]
				r.setupItemVM(f, g0, g1, g2, l0, l1, l2)
				// ScatterLane knows the frame layout: uniform registers
				// come from the scalar slots, and a partially re-formed
				// bail hands each lane its own PC and counts.
				vp.ScatterLane(vf, li, f)
				li++
			}
		}
	}
	if !r.barrier {
		for _, f := range r.vmFrames {
			r.vmRunToHalt(f)
			r.finishItemVM(f)
		}
		return
	}
	// Barrier kernels reach here only in lockstep mode (runGroup gates
	// the vector path on it), so complete via suspend-resume rounds.
	for i, f := range r.vmFrames {
		f.Barrier = nil
		r.vmDone[i] = false
	}
	remaining := r.itemsPer
	for remaining > 0 {
		for i, f := range r.vmFrames {
			if r.vmDone[i] {
				continue
			}
			st, err := p.Run(f)
			if err != nil {
				panic(execError{err})
			}
			if st == vm.Halted {
				r.vmDone[i] = true
				remaining--
			}
		}
	}
	for _, f := range r.vmFrames {
		r.finishItemVM(f)
	}
}
