package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/inspire"
)

// spinSrc loops forever: the induction variable walks away from the
// bound, so only a resource budget can stop it. Lowerable on both tiers.
const spinSrc = `kernel void spin(global float* out) {
	int i = 0;
	while (i < 2) {
		i = i - 1;
	}
	out[get_global_id(0)] = 1.0;
}`

func compileTierSrc(t *testing.T, src, kernel string, tier Tier) *Compiled {
	t.Helper()
	u, err := inspire.LowerSource("test", src)
	if err != nil {
		t.Fatal(err)
	}
	k := u.Kernel(kernel)
	if k == nil {
		t.Fatalf("kernel %q not found", kernel)
	}
	c, err := CompileTier(k, tier)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func wantBudgetErr(t *testing.T, err error, kind string) *BudgetError {
	t.Helper()
	if err == nil {
		t.Fatalf("run succeeded, want %s budget abort", kind)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BudgetError", err, err)
	}
	if be.Kind != kind {
		t.Fatalf("BudgetError.Kind = %q, want %q (err: %v)", be.Kind, kind, be)
	}
	return be
}

func eachTier(t *testing.T, fn func(t *testing.T, tier Tier)) {
	for _, tc := range []struct {
		name string
		tier Tier
	}{{"vm", TierVM}, {"closure", TierClosure}, {"vec", TierVec}} {
		t.Run(tc.name, func(t *testing.T) { fn(t, tc.tier) })
	}
}

func TestStepBudgetAbortsInfiniteLoop(t *testing.T) {
	eachTier(t, func(t *testing.T, tier Tier) {
		c := compileTierSrc(t, spinSrc, "spin", tier)
		out := NewFloatBuffer(64)
		b := NewBudget(context.Background(), 100_000, 0)
		done := make(chan error, 1)
		go func() {
			_, err := c.Run([]Arg{BufArg(out)}, ND1(64), RunOptions{Budget: b})
			done <- err
		}()
		select {
		case err := <-done:
			be := wantBudgetErr(t, err, BudgetSteps)
			if be.Limit != 100_000 {
				t.Errorf("Limit = %d, want 100000", be.Limit)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("budgeted infinite loop did not abort within 30s")
		}
	})
}

func TestDeadlineBudgetAbortsInfiniteLoop(t *testing.T) {
	eachTier(t, func(t *testing.T, tier Tier) {
		c := compileTierSrc(t, spinSrc, "spin", tier)
		out := NewFloatBuffer(64)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		b := NewBudget(ctx, 0, 0)
		start := time.Now()
		_, err := c.Run([]Arg{BufArg(out)}, ND1(64), RunOptions{Budget: b})
		wantBudgetErr(t, err, BudgetDeadline)
		if el := time.Since(start); el > 10*time.Second {
			t.Errorf("deadline abort took %v, want well under 10s", el)
		}
	})
}

func TestCancelAbortsInfiniteLoop(t *testing.T) {
	eachTier(t, func(t *testing.T, tier Tier) {
		c := compileTierSrc(t, spinSrc, "spin", tier)
		out := NewFloatBuffer(64)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		b := NewBudget(ctx, 0, 0)
		_, err := c.Run([]Arg{BufArg(out)}, ND1(64), RunOptions{Budget: b})
		wantBudgetErr(t, err, BudgetDeadline)
	})
}

func TestMemoryBudgetAbortsLocalAllocation(t *testing.T) {
	src := `kernel void fill(global float* out, local float* tmp) {
		int lid = get_local_id(0);
		tmp[lid] = 1.0;
		out[get_global_id(0)] = tmp[lid];
	}`
	eachTier(t, func(t *testing.T, tier Tier) {
		c := compileTierSrc(t, src, "fill", tier)
		out := NewFloatBuffer(64)
		// 64 floats of local memory = 256 bytes per worker; a 100-byte
		// budget must refuse the very first allocation.
		b := NewBudget(context.Background(), 0, 100)
		_, err := c.Run([]Arg{BufArg(out), LocalArg(64)}, ND1(64), RunOptions{Budget: b})
		wantBudgetErr(t, err, BudgetMemory)
	})
}

// TestBudgetedRunMatchesUnbudgeted pins that a generous budget changes
// nothing observable: buffers and profiles stay byte-identical, so the
// vmdiff parity guarantees extend to budgeted serving.
func TestBudgetedRunMatchesUnbudgeted(t *testing.T) {
	src := `kernel void rowsum(global const float* a, global float* out, int n) {
		int i = get_global_id(0);
		float s = 0.0;
		for (int j = 0; j < n; j++) {
			s += a[i * n + j];
		}
		out[i] = s;
	}`
	eachTier(t, func(t *testing.T, tier Tier) {
		c := compileTierSrc(t, src, "rowsum", tier)
		n := 64
		run := func(b *Budget) ([]float32, *Profile) {
			a, out := NewFloatBuffer(n*n), NewFloatBuffer(n)
			for i := range a.F {
				a.F[i] = float32(i%13) * 0.5
			}
			prof, err := c.Run([]Arg{BufArg(a), BufArg(out), IntArg(n)}, ND1(n), RunOptions{Budget: b})
			if err != nil {
				t.Fatal(err)
			}
			return out.F, prof
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		plain, plainProf := run(nil)
		budgeted, budgetedProf := run(NewBudget(ctx, 1_000_000_000, 1<<30))
		for i := range plain {
			if plain[i] != budgeted[i] {
				t.Fatalf("out[%d]: budgeted %g != unbudgeted %g", i, budgeted[i], plain[i])
			}
		}
		if pt, bt := plainProf.Total(), budgetedProf.Total(); pt != bt {
			t.Errorf("profile totals diverge: %+v vs %+v", pt, bt)
		}
	})
}

// TestStepBudgetBarrierPathsNoHang drives a barrier kernel that spins
// forever through every barrier execution mode with a small step budget:
// each must return a structured abort rather than deadlock at the
// barrier (items that abort leave the barrier; survivors exhaust the
// shared pool and abort too).
func TestStepBudgetBarrierPathsNoHang(t *testing.T) {
	src := `kernel void bspin(global float* out, local float* tmp) {
		int lid = get_local_id(0);
		tmp[lid] = 1.0;
		barrier(1);
		int i = 0;
		while (i < 2) {
			i = i - 1;
		}
		out[get_global_id(0)] = tmp[lid];
	}`
	for _, mode := range []struct {
		name string
		m    BarrierMode
	}{{"auto", BarrierAuto}, {"pooled", BarrierPooled}, {"spawn", BarrierSpawn}} {
		t.Run(mode.name, func(t *testing.T) {
			eachTier(t, func(t *testing.T, tier Tier) {
				c := compileTierSrc(t, src, "bspin", tier)
				out := NewFloatBuffer(128)
				b := NewBudget(context.Background(), 200_000, 0)
				done := make(chan error, 1)
				go func() {
					_, err := c.Run([]Arg{BufArg(out), LocalArg(64)}, ND1(128),
						RunOptions{Budget: b, Barrier: mode.m})
					done <- err
				}()
				select {
				case err := <-done:
					wantBudgetErr(t, err, BudgetSteps)
				case <-time.After(30 * time.Second):
					t.Fatalf("barrier mode %s: budgeted spin did not abort", mode.name)
				}
			})
		})
	}
}

// TestExpiredBackstopStraightLine pins the between-groups deadline check:
// a kernel with no loops never burns fuel, but an already-expired budget
// still aborts the launch.
func TestExpiredBackstopStraightLine(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 256
	a, b, out := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the launch starts
	bud := NewBudget(ctx, 0, 0)
	_, err := c.Run([]Arg{BufArg(a), BufArg(b), BufArg(out), IntArg(n)}, ND1(n), RunOptions{Budget: bud})
	wantBudgetErr(t, err, BudgetDeadline)
}
