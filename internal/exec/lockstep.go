package exec

// Lockstep group execution.
//
// The OpenCL execution model requires work-group barriers to be reached by
// every item of the group under group-uniform control flow. When the
// compiler can prove that property statically, a whole work group can run
// on a single goroutine: the statement tree is walked once per group, with
// barrier-free segments executed item-by-item through the ordinary
// per-item closures and barriers degenerating to sequencing points. This
// removes every goroutine park the blocking barrier path pays (one per
// item per barrier generation), which dominates barrier-kernel cost on the
// host.
//
// Counts are byte-identical to the blocking paths because the exact same
// per-item closures run the exact same number of times per item: loop and
// branch conditions are still evaluated (and counted) on every active
// frame, and the group-level decision is taken from the first active frame
// with a divergence check. Kernels the analysis cannot prove uniform fall
// back to the pooled blocking path.

import (
	"repro/internal/inspire"
)

// groupExec is the per-group context of a lockstep execution: the group's
// frames plus the active mask (items that returned early stop executing,
// mirroring a goroutine item that left the barrier).
type groupExec struct {
	frames []*frame
	active []bool
}

// gStmt executes one statement across all active items of a group.
// It returns group-level control flow (break/continue of uniform loops).
type gStmt func(g *groupExec) ctrl

// uniformInfo is the per-function variable uniformity map: vars[v] is true
// when v provably holds the same value in every work item of a group.
type uniformInfo struct {
	vars map[*inspire.Var]bool
}

// exprUniform reports whether e evaluates to the same value on every item
// of a work group.
func (u *uniformInfo) exprUniform(e inspire.Expr) bool {
	switch ex := e.(type) {
	case nil:
		return true
	case *inspire.ConstInt, *inspire.ConstFloat, *inspire.ConstBool:
		return true
	case *inspire.VarRef:
		return u.vars[ex.Var]
	case *inspire.BinOp:
		return u.exprUniform(ex.L) && u.exprUniform(ex.R)
	case *inspire.UnOp:
		return u.exprUniform(ex.X)
	case *inspire.Select:
		return u.exprUniform(ex.Cond) && u.exprUniform(ex.Then) && u.exprUniform(ex.Else)
	case *inspire.Cast:
		return u.exprUniform(ex.X)
	case *inspire.WorkItem:
		switch ex.Query {
		case inspire.GlobalSize, inspire.LocalSize, inspire.NumGroups, inspire.GroupID:
			return u.exprUniform(ex.Dim)
		}
		return false
	case *inspire.CallBuiltin:
		for _, a := range ex.Args {
			if !u.exprUniform(a) {
				return false
			}
		}
		return true
	}
	// Loads (memory may diverge) and helper calls: conservative.
	return false
}

// analyzeUniform computes variable uniformity to a fixpoint: a variable is
// uniform when every assignment to it has a uniform right-hand side AND
// executes under group-uniform control flow.
func analyzeUniform(fn *inspire.Function) *uniformInfo {
	u := &uniformInfo{vars: map[*inspire.Var]bool{}}
	for _, p := range fn.Params {
		if !p.Type.Ptr {
			u.vars[p] = true
		}
	}
	inspire.WalkStmts(fn.Body, func(s inspire.Stmt) bool {
		if d, ok := s.(*inspire.Decl); ok {
			u.vars[d.Var] = true // optimistic start; fixpoint demotes
		}
		return true
	})
	var visit func(s inspire.Stmt, ctxUniform bool) bool
	changed := false
	demote := func(v *inspire.Var) {
		if u.vars[v] {
			u.vars[v] = false
			changed = true
		}
	}
	visitBlock := func(b *inspire.Block, ctx bool) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			ctx = visit(s, ctx) && ctx
		}
	}
	visit = func(s inspire.Stmt, ctx bool) bool {
		switch st := s.(type) {
		case *inspire.Block:
			visitBlock(st, ctx)
		case *inspire.Decl:
			if st.Init != nil && (!ctx || !u.exprUniform(st.Init)) {
				demote(st.Var)
			}
		case *inspire.StoreVar:
			if !ctx || !u.exprUniform(st.Value) {
				demote(st.Var)
			}
		case *inspire.If:
			inner := ctx && u.exprUniform(st.Cond)
			visitBlock(st.Then, inner)
			visitBlock(st.Else, inner)
		case *inspire.For:
			if st.Init != nil {
				visit(st.Init, ctx)
			}
			inner := ctx && (st.Cond == nil || u.exprUniform(st.Cond))
			visitBlock(st.Body, inner)
			if st.Post != nil {
				visit(st.Post, inner)
			}
		case *inspire.While:
			inner := ctx && u.exprUniform(st.Cond)
			visitBlock(st.Body, inner)
		}
		return true
	}
	for {
		changed = false
		visitBlock(fn.Body, true)
		if !changed {
			return u
		}
	}
}

// stmtHasBarrier reports whether the statement subtree executes a barrier,
// including through helper calls.
func (cc *compiler) stmtHasBarrier(s inspire.Stmt) bool {
	found := false
	b := &inspire.Block{Stmts: []inspire.Stmt{s}}
	inspire.WalkStmts(b, func(st inspire.Stmt) bool {
		if _, ok := st.(*inspire.Barrier); ok {
			found = true
		}
		return true
	})
	if found {
		return true
	}
	inspire.WalkExprs(b, func(e inspire.Expr) {
		if call, ok := e.(*inspire.CallFunc); ok {
			if cc.calleeHasBarrier(call.Callee, map[*inspire.Function]bool{}) {
				found = true
			}
		}
	})
	return found
}

func (cc *compiler) calleeHasBarrier(fn *inspire.Function, seen map[*inspire.Function]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	found := false
	inspire.WalkStmts(fn.Body, func(st inspire.Stmt) bool {
		if _, ok := st.(*inspire.Barrier); ok {
			found = true
		}
		return true
	})
	inspire.WalkExprs(fn.Body, func(e inspire.Expr) {
		if call, ok := e.(*inspire.CallFunc); ok && cc.calleeHasBarrier(call.Callee, seen) {
			found = true
		}
	})
	return found
}

// escapesBC reports whether the barrier-free subtree can yield a break or
// continue that escapes it (returns are fine — they deactivate the item).
func escapesBC(s inspire.Stmt) bool {
	switch st := s.(type) {
	case *inspire.Break, *inspire.Continue:
		return true
	case *inspire.Block:
		for _, c := range st.Stmts {
			if escapesBC(c) {
				return true
			}
		}
	case *inspire.If:
		for _, b := range []*inspire.Block{st.Then, st.Else} {
			if b == nil {
				continue
			}
			for _, c := range b.Stmts {
				if escapesBC(c) {
					return true
				}
			}
		}
	}
	// For/While consume their own break/continue.
	return false
}

// lockstepCompile builds the group-lockstep executor for a barrier kernel,
// or returns nil when the kernel's barriers are not provably under
// group-uniform control flow.
func (cc *compiler) lockstepCompile(fn *inspire.Function) gStmt {
	u := analyzeUniform(fn)
	g, ok := cc.gBlock(fn.Body, u)
	if !ok {
		return nil
	}
	return g
}

// gSeg runs a barrier-free per-item statement closure over every active
// frame, deactivating items that return.
func gSeg(sf stmtFn) gStmt {
	return func(g *groupExec) ctrl {
		for i, f := range g.frames {
			if !g.active[i] {
				continue
			}
			if sf(f) == ctrlReturn {
				g.active[i] = false
			}
		}
		return ctrlNext
	}
}

// gTick burns one loop back-edge of fuel on every active frame,
// mirroring the tick the per-item For/While closures pay, so uniform
// group loops respect step budgets exactly like the other paths.
func gTick(g *groupExec) {
	for i, f := range g.frames {
		if g.active[i] {
			f.tick()
		}
	}
}

// gCond evaluates a uniform condition on every active frame (counting a
// branch per frame, exactly like the per-item closures) and returns the
// group decision plus whether any item is still active.
func gCond(g *groupExec, cond boolFn) (dec, any bool) {
	for i, f := range g.frames {
		if !g.active[i] {
			continue
		}
		f.cnt.Branches++
		v := cond(f)
		if !any {
			dec, any = v, true
		} else if v != dec {
			throwf("exec: divergent control flow at uniform condition")
		}
	}
	return dec, any
}

func (cc *compiler) gBlock(b *inspire.Block, u *uniformInfo) (gStmt, bool) {
	if b == nil || len(b.Stmts) == 0 {
		return func(*groupExec) ctrl { return ctrlNext }, true
	}
	var steps []gStmt
	for _, s := range b.Stmts {
		gs, ok := cc.gStmtCompile(s, u)
		if !ok {
			return nil, false
		}
		steps = append(steps, gs)
	}
	if len(steps) == 1 {
		return steps[0], true
	}
	return func(g *groupExec) ctrl {
		for _, st := range steps {
			if c := st(g); c != ctrlNext {
				return c
			}
		}
		return ctrlNext
	}, true
}

func (cc *compiler) gStmtCompile(s inspire.Stmt, u *uniformInfo) (gStmt, bool) {
	// Uniform structural break/continue: execution only reaches a
	// lockstep block uniformly, so these apply to the whole group.
	switch s.(type) {
	case *inspire.Break:
		return func(*groupExec) ctrl { return ctrlBreak }, true
	case *inspire.Continue:
		return func(*groupExec) ctrl { return ctrlContinue }, true
	}
	if !cc.stmtHasBarrier(s) {
		if escapesBC(s) {
			return nil, false
		}
		return gSeg(cc.stmt(s)), true
	}
	switch st := s.(type) {
	case *inspire.Barrier:
		// The per-item closure with a nil frame barrier: counts the
		// barrier and synchronizes by construction (segments sequence).
		return gSeg(cc.stmt(st)), true
	case *inspire.Block:
		return cc.gBlock(st, u)
	case *inspire.If:
		if !u.exprUniform(st.Cond) {
			return nil, false
		}
		cond := cc.boolExpr(st.Cond)
		gThen, ok := cc.gBlock(st.Then, u)
		if !ok {
			return nil, false
		}
		var gElse gStmt
		if st.Else != nil {
			if gElse, ok = cc.gBlock(st.Else, u); !ok {
				return nil, false
			}
		}
		return func(g *groupExec) ctrl {
			dec, any := gCond(g, cond)
			if !any {
				return ctrlNext
			}
			if dec {
				return gThen(g)
			}
			if gElse != nil {
				return gElse(g)
			}
			return ctrlNext
		}, true
	case *inspire.For:
		if st.Cond != nil && !u.exprUniform(st.Cond) {
			return nil, false
		}
		var init, post gStmt
		if st.Init != nil {
			if cc.stmtHasBarrier(st.Init) || escapesBC(st.Init) {
				return nil, false
			}
			init = gSeg(cc.stmt(st.Init))
		}
		var cond boolFn
		if st.Cond != nil {
			cond = cc.boolExpr(st.Cond)
		}
		if st.Post != nil {
			if cc.stmtHasBarrier(st.Post) || escapesBC(st.Post) {
				return nil, false
			}
			post = gSeg(cc.stmt(st.Post))
		}
		body, ok := cc.gBlock(st.Body, u)
		if !ok {
			return nil, false
		}
		return func(g *groupExec) ctrl {
			if init != nil {
				init(g)
			}
			for {
				gTick(g)
				if cond != nil {
					dec, any := gCond(g, cond)
					if !any || !dec {
						return ctrlNext
					}
				} else if !g.anyActive() {
					return ctrlNext
				}
				if c := body(g); c == ctrlBreak {
					return ctrlNext
				}
				if post != nil {
					post(g)
				}
			}
		}, true
	case *inspire.While:
		if !u.exprUniform(st.Cond) {
			return nil, false
		}
		cond := cc.boolExpr(st.Cond)
		body, ok := cc.gBlock(st.Body, u)
		if !ok {
			return nil, false
		}
		return func(g *groupExec) ctrl {
			for {
				gTick(g)
				dec, any := gCond(g, cond)
				if !any || !dec {
					return ctrlNext
				}
				if c := body(g); c == ctrlBreak {
					return ctrlNext
				}
			}
		}, true
	}
	// A barrier reached through a helper call in a value position:
	// cannot be segmented.
	return nil, false
}

func (g *groupExec) anyActive() bool {
	for _, a := range g.active {
		if a {
			return true
		}
	}
	return false
}
