// Package exec executes INSPIRE kernels over an OpenCL-style NDRange.
//
// It serves two roles in the framework:
//
//   - Correctness: kernels run against real host buffers, so benchmark
//     outputs can be verified against Go reference implementations.
//   - Profiling: every run produces a dynamic operation Profile, bucketed
//     along dimension 0 of the NDRange. The timing simulator
//     (internal/sim) prices these buckets on a device model, and because
//     bucket counts are additive, the cost of ANY contiguous partition
//     chunk is derived from one profiling run — the exhaustive
//     partitioning search of the training phase never re-executes kernels.
//
// Kernels are compiled to typed closures (one func per IR node) rather
// than walked, which keeps per-operation overhead low enough to profile
// millions of work items in tests.
package exec

import (
	"fmt"
	"sync"

	"repro/internal/minicl"
)

// Buffer is a typed device/host buffer. Exactly one of F or I is non-nil,
// matching Kind. MiniCL float is 32-bit, so floats are stored as float32
// (arithmetic happens in float64 and is rounded on store, like C).
type Buffer struct {
	Kind minicl.BasicKind
	F    []float32
	I    []int32
}

// NewFloatBuffer allocates a float buffer of n elements.
func NewFloatBuffer(n int) *Buffer {
	return &Buffer{Kind: minicl.Float, F: make([]float32, n)}
}

// NewIntBuffer allocates an int buffer of n elements.
func NewIntBuffer(n int) *Buffer {
	return &Buffer{Kind: minicl.Int, I: make([]int32, n)}
}

// Len returns the element count.
func (b *Buffer) Len() int {
	if b.F != nil {
		return len(b.F)
	}
	return len(b.I)
}

// Bytes returns the buffer size in bytes (4-byte elements).
func (b *Buffer) Bytes() int64 { return int64(b.Len()) * 4 }

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	nb := &Buffer{Kind: b.Kind}
	if b.F != nil {
		nb.F = append([]float32(nil), b.F...)
	}
	if b.I != nil {
		nb.I = append([]int32(nil), b.I...)
	}
	return nb
}

// Arg is one kernel argument. For pointer parameters set Buf (global) or
// LocalLen (local: the runtime allocates a per-group buffer of that many
// elements). For scalar parameters set Int or Float according to the
// parameter type.
type Arg struct {
	Buf      *Buffer
	LocalLen int
	Int      int64
	Float    float64
}

// BufArg wraps a buffer argument.
func BufArg(b *Buffer) Arg { return Arg{Buf: b} }

// IntArg wraps an int scalar argument.
func IntArg(v int) Arg { return Arg{Int: int64(v)} }

// FloatArg wraps a float scalar argument.
func FloatArg(v float64) Arg { return Arg{Float: v} }

// LocalArg requests a per-group local buffer of n elements.
func LocalArg(n int) Arg { return Arg{LocalLen: n} }

// NDRange is the kernel launch geometry, up to 3 dimensions. Zero entries
// in Global beyond the used rank are treated as 1. Local sizes must divide
// the corresponding global sizes; a zero Local[0] picks a default.
type NDRange struct {
	Global [3]int
	Local  [3]int
}

// ND1 builds a 1-D range with the default local size.
func ND1(global int) NDRange { return NDRange{Global: [3]int{global, 1, 1}} }

// ND2 builds a 2-D range with the default local size.
func ND2(gx, gy int) NDRange { return NDRange{Global: [3]int{gx, gy, 1}} }

// DefaultLocal0 is the work-group size used along dimension 0 when the
// launch does not specify one and the global size is divisible by it.
const DefaultLocal0 = 64

// Normalized returns the range with zero entries defaulted and local
// sizes validated; clients needing the effective work-group size (e.g.
// for chunk alignment) should call this.
func (nd NDRange) Normalized() (NDRange, error) { return nd.normalized() }

// normalized returns the range with zero entries defaulted.
func (nd NDRange) normalized() (NDRange, error) {
	for d := 0; d < 3; d++ {
		if nd.Global[d] == 0 {
			nd.Global[d] = 1
		}
		if nd.Global[d] < 0 {
			return nd, fmt.Errorf("exec: negative global size in dim %d", d)
		}
	}
	if nd.Local[0] == 0 {
		if nd.Global[0]%DefaultLocal0 == 0 {
			nd.Local[0] = DefaultLocal0
		} else {
			nd.Local[0] = 1
		}
	}
	for d := 1; d < 3; d++ {
		if nd.Local[d] == 0 {
			nd.Local[d] = 1
		}
	}
	for d := 0; d < 3; d++ {
		if nd.Global[d]%nd.Local[d] != 0 {
			return nd, fmt.Errorf("exec: global size %d not divisible by local size %d in dim %d",
				nd.Global[d], nd.Local[d], d)
		}
	}
	return nd, nil
}

// Items returns the total number of work items.
func (nd NDRange) Items() int64 {
	n := int64(1)
	for d := 0; d < 3; d++ {
		g := nd.Global[d]
		if g == 0 {
			g = 1
		}
		n *= int64(g)
	}
	return n
}

// Counts is a dynamic operation profile: the execution counts of one work
// item, one profile bucket, or an aggregated chunk.
type Counts struct {
	Items         int64 // work items executed
	IntOps        int64
	FloatOps      int64
	TransOps      int64 // transcendental builtin calls
	OtherBuiltins int64
	GlobalLoads   int64 // element loads from global buffers
	GlobalStores  int64
	LocalOps      int64 // local-memory loads+stores
	Branches      int64 // executed branch decisions
	Barriers      int64
	MaxItemOps    int64 // max per-item total op count seen (imbalance proxy)
}

// totalOps is the per-item work metric used for MaxItemOps.
func (c *Counts) totalOps() int64 {
	return c.IntOps + c.FloatOps + 4*c.TransOps + c.OtherBuiltins +
		c.GlobalLoads + c.GlobalStores + c.LocalOps
}

// Add accumulates o into c, taking the max of MaxItemOps.
func (c *Counts) Add(o *Counts) {
	c.Items += o.Items
	c.IntOps += o.IntOps
	c.FloatOps += o.FloatOps
	c.TransOps += o.TransOps
	c.OtherBuiltins += o.OtherBuiltins
	c.GlobalLoads += o.GlobalLoads
	c.GlobalStores += o.GlobalStores
	c.LocalOps += o.LocalOps
	c.Branches += o.Branches
	c.Barriers += o.Barriers
	if o.MaxItemOps > c.MaxItemOps {
		c.MaxItemOps = o.MaxItemOps
	}
}

// GlobalLoadBytes returns bytes read from global memory (4-byte elements).
func (c *Counts) GlobalLoadBytes() int64 { return c.GlobalLoads * 4 }

// GlobalStoreBytes returns bytes written to global memory.
func (c *Counts) GlobalStoreBytes() int64 { return c.GlobalStores * 4 }

// Profile is the dynamic profile of one kernel launch, bucketed along
// dimension 0 so that the cost of any contiguous dim-0 chunk can be
// reconstructed without re-execution.
//
// Range queries run in O(1) through a lazily built index (prefix sums for
// the additive fields, a sparse table for the MaxItemOps maximum). The
// index is constructed once on the first query; Buckets must not be
// mutated after that point.
type Profile struct {
	// Global0 is the dim-0 extent the profile covers.
	Global0 int
	// Buckets partition [0, Global0) into len(Buckets) contiguous spans.
	Buckets []Counts

	// Vector-tier divergence telemetry for the launch. VecDivergences
	// counts lane disagreements at varying branches; VecReconverges is
	// the subset that re-formed at the join point and finished W-wide;
	// VecScalarBails counts groups that fell back to per-item scalar
	// completion. These do not affect pricing — they are execution-path
	// observability, surfaced through /stats.
	VecDivergences int64
	VecReconverges int64
	VecScalarBails int64

	idxOnce sync.Once
	idx     *profileIndex
}

// DefaultBuckets is the profile resolution along dim 0.
const DefaultBuckets = 200

// bucketOf maps a dim-0 index to its bucket.
func (p *Profile) bucketOf(x int) int {
	return x * len(p.Buckets) / p.Global0
}

// profileIndex is the constant-time range-query structure of a profile.
type profileIndex struct {
	// start[b] is the first dim-0 index of bucket b; start[nb] == Global0.
	start []int
	// pre[b] holds the exact sums of the additive fields of Buckets[:b]
	// (MaxItemOps is left zero; maxima are answered by the sparse table).
	pre []Counts
	// maxTab[k][i] is the maximum MaxItemOps over Buckets[i : i+2^k].
	maxTab [][]int64
	// log2[n] is floor(log2(n)) for 1 <= n <= nb.
	log2 []uint8
}

// Precompute builds the range-query index eagerly. Callers that share one
// profile across many concurrent pricing workers (the oracle search, the
// training sweep) call this once up front so the workers never contend on
// the lazy construction.
func (p *Profile) Precompute() {
	if len(p.Buckets) > 0 {
		p.index()
	}
}

func (p *Profile) index() *profileIndex {
	p.idxOnce.Do(p.buildIndex)
	return p.idx
}

func (p *Profile) buildIndex() {
	nb := len(p.Buckets)
	ix := &profileIndex{
		start: make([]int, nb+1),
		pre:   make([]Counts, nb+1),
		log2:  make([]uint8, nb+1),
	}
	for b := 0; b <= nb; b++ {
		ix.start[b] = b * p.Global0 / nb
	}
	for b := range p.Buckets {
		s := ix.pre[b]
		s.addAdditive(&p.Buckets[b])
		ix.pre[b+1] = s
	}
	for n := 2; n <= nb; n++ {
		ix.log2[n] = ix.log2[n/2] + 1
	}
	levels := int(ix.log2[nb]) + 1
	ix.maxTab = make([][]int64, levels)
	base := make([]int64, nb)
	for b := range p.Buckets {
		base[b] = p.Buckets[b].MaxItemOps
	}
	ix.maxTab[0] = base
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		prev := ix.maxTab[k-1]
		row := make([]int64, nb-2*half+1)
		for i := range row {
			row[i] = max(prev[i], prev[i+half])
		}
		ix.maxTab[k] = row
	}
	p.idx = ix
}

// addAdditive accumulates o's additive fields into c (MaxItemOps excluded).
func (c *Counts) addAdditive(o *Counts) {
	c.Items += o.Items
	c.IntOps += o.IntOps
	c.FloatOps += o.FloatOps
	c.TransOps += o.TransOps
	c.OtherBuiltins += o.OtherBuiltins
	c.GlobalLoads += o.GlobalLoads
	c.GlobalStores += o.GlobalStores
	c.LocalOps += o.LocalOps
	c.Branches += o.Branches
	c.Barriers += o.Barriers
}

// subAdditive subtracts o's additive fields from c.
func (c *Counts) subAdditive(o *Counts) {
	c.Items -= o.Items
	c.IntOps -= o.IntOps
	c.FloatOps -= o.FloatOps
	c.TransOps -= o.TransOps
	c.OtherBuiltins -= o.OtherBuiltins
	c.GlobalLoads -= o.GlobalLoads
	c.GlobalStores -= o.GlobalStores
	c.LocalOps -= o.LocalOps
	c.Branches -= o.Branches
	c.Barriers -= o.Barriers
}

// scaleFloor returns c's additive fields scaled by off/width with exact
// integer floor division (the remainder scheme that makes sub-range counts
// conserve totals: inner(x) is monotone and inner(width) == c).
func (c *Counts) scaleFloor(off, width int) Counts {
	o, w := int64(off), int64(width)
	return Counts{
		Items:         c.Items * o / w,
		IntOps:        c.IntOps * o / w,
		FloatOps:      c.FloatOps * o / w,
		TransOps:      c.TransOps * o / w,
		OtherBuiltins: c.OtherBuiltins * o / w,
		GlobalLoads:   c.GlobalLoads * o / w,
		GlobalStores:  c.GlobalStores * o / w,
		LocalOps:      c.LocalOps * o / w,
		Branches:      c.Branches * o / w,
		Barriers:      c.Barriers * o / w,
	}
}

// bucketAt returns the bucket whose span [start[b], start[b+1]) contains
// dim-0 index x. The multiplicative estimate is off by at most one step
// when Global0 is not divisible by the bucket count, so the correction
// loops run O(1) times.
func (ix *profileIndex) bucketAt(x int) int {
	nb := len(ix.start) - 1
	g := ix.start[nb]
	b := x * nb / g
	if b > nb-1 {
		b = nb - 1
	}
	for b+1 < nb && ix.start[b+1] <= x {
		b++
	}
	for b > 0 && ix.start[b] > x {
		b--
	}
	return b
}

// prefixAt returns the additive counts attributed to [0, x).
func (p *Profile) prefixAt(ix *profileIndex, x int) Counts {
	nb := len(p.Buckets)
	if x <= 0 {
		return Counts{}
	}
	if x >= p.Global0 {
		return ix.pre[nb]
	}
	b := ix.bucketAt(x)
	out := ix.pre[b]
	if off := x - ix.start[b]; off > 0 {
		part := p.Buckets[b].scaleFloor(off, ix.start[b+1]-ix.start[b])
		out.addAdditive(&part)
	}
	return out
}

// maxOver answers the maximum MaxItemOps over buckets [bLo, bHi].
func (ix *profileIndex) maxOver(bLo, bHi int) int64 {
	k := ix.log2[bHi-bLo+1]
	return max(ix.maxTab[k][bLo], ix.maxTab[k][bHi-(1<<k)+1])
}

// Range aggregates the profile over dim-0 indices [lo, hi) in O(1).
//
// Whole-bucket spans are exact integer sums. When a boundary cuts a
// bucket, the bucket's counts are attributed by the exact floor-scaled
// prefix inner(x) = c*(x-bucketStart)/bucketWidth, so adjacent sub-ranges
// always conserve totals: Range(a,b) + Range(b,c) == Range(a,c) for every
// additive field. MaxItemOps is the maximum over every overlapped bucket
// (an imbalance proxy is not divisible).
func (p *Profile) Range(lo, hi int) Counts {
	if lo < 0 {
		lo = 0
	}
	if hi > p.Global0 {
		hi = p.Global0
	}
	if lo >= hi || len(p.Buckets) == 0 {
		return Counts{}
	}
	ix := p.index()
	out := p.prefixAt(ix, hi)
	pre := p.prefixAt(ix, lo)
	out.subAdditive(&pre)
	out.MaxItemOps = ix.maxOver(ix.bucketAt(lo), ix.bucketAt(hi-1))
	return out
}

// RangeNaive is the O(buckets) reference implementation of Range: a linear
// scan with the same exact remainder scheme. It is retained for the
// equivalence property test and the pricing benchmarks; Range agrees with
// it bit-for-bit on every profile with at most Global0 buckets (the
// invariant Run guarantees — wider profiles would contain zero-width
// buckets with no well-defined point attribution).
func (p *Profile) RangeNaive(lo, hi int) Counts {
	var out Counts
	if lo < 0 {
		lo = 0
	}
	if hi > p.Global0 {
		hi = p.Global0
	}
	if lo >= hi {
		return out
	}
	nb := len(p.Buckets)
	for b := 0; b < nb; b++ {
		bLo := b * p.Global0 / nb
		bHi := (b + 1) * p.Global0 / nb
		if bHi <= lo || bLo >= hi {
			continue
		}
		ovLo, ovHi := bLo, bHi
		if lo > ovLo {
			ovLo = lo
		}
		if hi < ovHi {
			ovHi = hi
		}
		c := &p.Buckets[b]
		if ovLo == bLo && ovHi == bHi {
			out.Add(c)
			continue
		}
		w := bHi - bLo
		part := c.scaleFloor(ovHi-bLo, w)
		low := c.scaleFloor(ovLo-bLo, w)
		part.subAdditive(&low)
		part.MaxItemOps = c.MaxItemOps
		out.Add(&part)
	}
	return out
}

// Total aggregates the whole profile.
func (p *Profile) Total() Counts { return p.Range(0, p.Global0) }
