// Package exec executes INSPIRE kernels over an OpenCL-style NDRange.
//
// It serves two roles in the framework:
//
//   - Correctness: kernels run against real host buffers, so benchmark
//     outputs can be verified against Go reference implementations.
//   - Profiling: every run produces a dynamic operation Profile, bucketed
//     along dimension 0 of the NDRange. The timing simulator
//     (internal/sim) prices these buckets on a device model, and because
//     bucket counts are additive, the cost of ANY contiguous partition
//     chunk is derived from one profiling run — the exhaustive
//     partitioning search of the training phase never re-executes kernels.
//
// Kernels are compiled to typed closures (one func per IR node) rather
// than walked, which keeps per-operation overhead low enough to profile
// millions of work items in tests.
package exec

import (
	"fmt"

	"repro/internal/minicl"
)

// Buffer is a typed device/host buffer. Exactly one of F or I is non-nil,
// matching Kind. MiniCL float is 32-bit, so floats are stored as float32
// (arithmetic happens in float64 and is rounded on store, like C).
type Buffer struct {
	Kind minicl.BasicKind
	F    []float32
	I    []int32
}

// NewFloatBuffer allocates a float buffer of n elements.
func NewFloatBuffer(n int) *Buffer {
	return &Buffer{Kind: minicl.Float, F: make([]float32, n)}
}

// NewIntBuffer allocates an int buffer of n elements.
func NewIntBuffer(n int) *Buffer {
	return &Buffer{Kind: minicl.Int, I: make([]int32, n)}
}

// Len returns the element count.
func (b *Buffer) Len() int {
	if b.F != nil {
		return len(b.F)
	}
	return len(b.I)
}

// Bytes returns the buffer size in bytes (4-byte elements).
func (b *Buffer) Bytes() int64 { return int64(b.Len()) * 4 }

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	nb := &Buffer{Kind: b.Kind}
	if b.F != nil {
		nb.F = append([]float32(nil), b.F...)
	}
	if b.I != nil {
		nb.I = append([]int32(nil), b.I...)
	}
	return nb
}

// Arg is one kernel argument. For pointer parameters set Buf (global) or
// LocalLen (local: the runtime allocates a per-group buffer of that many
// elements). For scalar parameters set Int or Float according to the
// parameter type.
type Arg struct {
	Buf      *Buffer
	LocalLen int
	Int      int64
	Float    float64
}

// BufArg wraps a buffer argument.
func BufArg(b *Buffer) Arg { return Arg{Buf: b} }

// IntArg wraps an int scalar argument.
func IntArg(v int) Arg { return Arg{Int: int64(v)} }

// FloatArg wraps a float scalar argument.
func FloatArg(v float64) Arg { return Arg{Float: v} }

// LocalArg requests a per-group local buffer of n elements.
func LocalArg(n int) Arg { return Arg{LocalLen: n} }

// NDRange is the kernel launch geometry, up to 3 dimensions. Zero entries
// in Global beyond the used rank are treated as 1. Local sizes must divide
// the corresponding global sizes; a zero Local[0] picks a default.
type NDRange struct {
	Global [3]int
	Local  [3]int
}

// ND1 builds a 1-D range with the default local size.
func ND1(global int) NDRange { return NDRange{Global: [3]int{global, 1, 1}} }

// ND2 builds a 2-D range with the default local size.
func ND2(gx, gy int) NDRange { return NDRange{Global: [3]int{gx, gy, 1}} }

// DefaultLocal0 is the work-group size used along dimension 0 when the
// launch does not specify one and the global size is divisible by it.
const DefaultLocal0 = 64

// Normalized returns the range with zero entries defaulted and local
// sizes validated; clients needing the effective work-group size (e.g.
// for chunk alignment) should call this.
func (nd NDRange) Normalized() (NDRange, error) { return nd.normalized() }

// normalized returns the range with zero entries defaulted.
func (nd NDRange) normalized() (NDRange, error) {
	for d := 0; d < 3; d++ {
		if nd.Global[d] == 0 {
			nd.Global[d] = 1
		}
		if nd.Global[d] < 0 {
			return nd, fmt.Errorf("exec: negative global size in dim %d", d)
		}
	}
	if nd.Local[0] == 0 {
		if nd.Global[0]%DefaultLocal0 == 0 {
			nd.Local[0] = DefaultLocal0
		} else {
			nd.Local[0] = 1
		}
	}
	for d := 1; d < 3; d++ {
		if nd.Local[d] == 0 {
			nd.Local[d] = 1
		}
	}
	for d := 0; d < 3; d++ {
		if nd.Global[d]%nd.Local[d] != 0 {
			return nd, fmt.Errorf("exec: global size %d not divisible by local size %d in dim %d",
				nd.Global[d], nd.Local[d], d)
		}
	}
	return nd, nil
}

// Items returns the total number of work items.
func (nd NDRange) Items() int64 {
	n := int64(1)
	for d := 0; d < 3; d++ {
		g := nd.Global[d]
		if g == 0 {
			g = 1
		}
		n *= int64(g)
	}
	return n
}

// Counts is a dynamic operation profile: the execution counts of one work
// item, one profile bucket, or an aggregated chunk.
type Counts struct {
	Items         int64 // work items executed
	IntOps        int64
	FloatOps      int64
	TransOps      int64 // transcendental builtin calls
	OtherBuiltins int64
	GlobalLoads   int64 // element loads from global buffers
	GlobalStores  int64
	LocalOps      int64 // local-memory loads+stores
	Branches      int64 // executed branch decisions
	Barriers      int64
	MaxItemOps    int64 // max per-item total op count seen (imbalance proxy)
}

// totalOps is the per-item work metric used for MaxItemOps.
func (c *Counts) totalOps() int64 {
	return c.IntOps + c.FloatOps + 4*c.TransOps + c.OtherBuiltins +
		c.GlobalLoads + c.GlobalStores + c.LocalOps
}

// Add accumulates o into c, taking the max of MaxItemOps.
func (c *Counts) Add(o *Counts) {
	c.Items += o.Items
	c.IntOps += o.IntOps
	c.FloatOps += o.FloatOps
	c.TransOps += o.TransOps
	c.OtherBuiltins += o.OtherBuiltins
	c.GlobalLoads += o.GlobalLoads
	c.GlobalStores += o.GlobalStores
	c.LocalOps += o.LocalOps
	c.Branches += o.Branches
	c.Barriers += o.Barriers
	if o.MaxItemOps > c.MaxItemOps {
		c.MaxItemOps = o.MaxItemOps
	}
}

// GlobalLoadBytes returns bytes read from global memory (4-byte elements).
func (c *Counts) GlobalLoadBytes() int64 { return c.GlobalLoads * 4 }

// GlobalStoreBytes returns bytes written to global memory.
func (c *Counts) GlobalStoreBytes() int64 { return c.GlobalStores * 4 }

// Profile is the dynamic profile of one kernel launch, bucketed along
// dimension 0 so that the cost of any contiguous dim-0 chunk can be
// reconstructed without re-execution.
type Profile struct {
	// Global0 is the dim-0 extent the profile covers.
	Global0 int
	// Buckets partition [0, Global0) into len(Buckets) contiguous spans.
	Buckets []Counts
}

// DefaultBuckets is the profile resolution along dim 0.
const DefaultBuckets = 200

// bucketOf maps a dim-0 index to its bucket.
func (p *Profile) bucketOf(x int) int {
	return x * len(p.Buckets) / p.Global0
}

// Range aggregates the profile over dim-0 indices [lo, hi). Bucket counts
// are attributed proportionally when chunk boundaries cut a bucket.
func (p *Profile) Range(lo, hi int) Counts {
	var out Counts
	if lo < 0 {
		lo = 0
	}
	if hi > p.Global0 {
		hi = p.Global0
	}
	if lo >= hi {
		return out
	}
	nb := len(p.Buckets)
	for b := 0; b < nb; b++ {
		bLo := b * p.Global0 / nb
		bHi := (b + 1) * p.Global0 / nb
		if bHi <= lo || bLo >= hi {
			continue
		}
		ovLo, ovHi := bLo, bHi
		if lo > ovLo {
			ovLo = lo
		}
		if hi < ovHi {
			ovHi = hi
		}
		c := p.Buckets[b]
		if ovLo == bLo && ovHi == bHi {
			out.Add(&c)
			continue
		}
		frac := float64(ovHi-ovLo) / float64(bHi-bLo)
		scaled := Counts{
			Items:         int64(float64(c.Items) * frac),
			IntOps:        int64(float64(c.IntOps) * frac),
			FloatOps:      int64(float64(c.FloatOps) * frac),
			TransOps:      int64(float64(c.TransOps) * frac),
			OtherBuiltins: int64(float64(c.OtherBuiltins) * frac),
			GlobalLoads:   int64(float64(c.GlobalLoads) * frac),
			GlobalStores:  int64(float64(c.GlobalStores) * frac),
			LocalOps:      int64(float64(c.LocalOps) * frac),
			Branches:      int64(float64(c.Branches) * frac),
			Barriers:      int64(float64(c.Barriers) * frac),
			MaxItemOps:    c.MaxItemOps,
		}
		out.Add(&scaled)
	}
	return out
}

// Total aggregates the whole profile.
func (p *Profile) Total() Counts { return p.Range(0, p.Global0) }
