package vm

import (
	"fmt"
	"math/bits"
	"os"
)

// SIMT vector execution tier. Vectorize analyzes a compiled Func for
// register uniformity at the bytecode level and, when the kernel's loop
// structure is group-uniform, produces a VecFunc that executes W work
// items per instruction dispatch: varying registers become W-wide lane
// arrays, straight-line arms loop over lanes inside one switch arm, and
// branches take one comparison per group (statically uniform
// conditions) or one lane-agreement scan (varying forward conditions).
//
// Uniform scalarization: registers proven group-uniform live in a
// single scalar slot (VecFrame.SI/SF) instead of W lanes, and every
// instruction whose destination is uniform executes exactly once per
// dispatch (scal[pc]); uniform operands feeding a varying instruction
// are broadcast into scratch lanes on demand (srcU[pc] marks them).
// Loads with uniform indices are uniform too — the lanes run in
// instruction-level lockstep against the same memory state, so a load
// from the same address yields lane-equal values. The lane storage of
// a uniform register is never written and holds garbage: all readers —
// dispatch arms, divergence sub-frames, the bail-out scatter — must
// consult the uniformity classification.
//
// Divergence re-convergence: the tier is optimistic about statically
// varying forward branches, and the group runs full-width as long as
// every lane agrees at runtime (the common `if (gid < n)` guard
// converges for every aligned group). On disagreement the group splits:
// each side of the branch runs as a compacted sub-group (width = its
// lane count) through the same dispatch loop up to the join point
// recorded at vectorize time (the branch's immediate post-dominator),
// then the group re-forms and resumes full-width. Only irreducible
// divergence — no safe join point, nested splits beyond the depth cap,
// or a would-fault lane inside a split — falls back to the full bail:
// Run returns Diverged and the caller completes each lane on the scalar
// VM from its per-lane PC. Scalar completion walks items in canonical
// order, so it reproduces the canonical item-order fault message and
// per-item counts exactly, and buffer/profile/fault parity with the
// scalar VM and closure tiers is preserved byte-for-byte.
//
// Counter and budget accounting: under convergent execution every lane
// retires the same instruction sequence, so the packed profile
// accumulators (counts.go) are charged once per dispatch — they hold
// per-item counts, which the caller replicates into each item's bucket
// — and scalarized instructions charge the same per-item constants
// (executing once per dispatch is exactly the per-item cost). Budget
// fuel is charged W per taken jump (W items each spent one step); a
// scalarized jump still charges W. After a split the sides accumulate
// per-lane count deltas (VecFrame.LaneCnt) on top of the shared
// counts, so per-item totals stay exact. The spill-room cadence is
// identical to the scalar VM.
//
// REPRO_VEC_V1 (env) disables scalarization and re-convergence while
// keeping the same admission rules: every register stays
// lane-materialized and any disagreement bails the whole group to
// scalar frames, matching the PR 9 tier for A/B benchmarking.

// VecFunc is the vectorized view of a compiled kernel: the same
// bytecode, plus the uniformity classification that drives
// scalarization and branch handling.
type VecFunc struct {
	*Func

	// condUniform[pc] is true when the conditional jump at pc has a
	// statically group-uniform condition: one test decides the whole
	// group. Varying conditions get a runtime agreement scan.
	condUniform []bool

	// uniI/uniF record the register classification (true = proven
	// group-uniform) for the disassembler, the bail-out scatter, and
	// the split fill/scatter.
	uniI, uniF []bool

	// scalarized is true when uniform registers live in the frame's
	// scalar slots (v2). Under REPRO_VEC_V1 it is false and every
	// register is lane-materialized.
	scalarized bool

	// scal[pc] is true when the instruction at pc executes once per
	// dispatch on the scalar slots: its destination register (and
	// therefore every operand) is uniform, or it is a store of a
	// uniform value to a uniform index, or a conditional jump with a
	// uniform condition.
	scal []bool

	// srcU[pc] marks which register operands of a non-scalarized
	// instruction are uniform and must be read from the scalar slots
	// (broadcast on demand) instead of their garbage lane storage.
	srcU []uint8

	// joinPC[pc] is the re-convergence point of the varying
	// conditional jump at pc — its immediate post-dominator — or -1
	// when the divergent region is ineligible (contains a barrier,
	// writes a uniform register, or stores through a uniform index)
	// and disagreement must take the full scalar bail.
	joinPC []int

	// regionI/regionF[pc] (set only where joinPC[pc] >= 0) mark the
	// varying registers the divergent region reads or writes, and
	// regionWI[pc] whether it queries a work-item row: the split
	// fill/scatter copies only these instead of the whole frame, which
	// is most of the cost of a divergence on register-heavy kernels.
	regionI, regionF [][]bool
	regionWI         []bool
}

// srcU operand bits. B and C follow the instruction's register fields;
// X is the third register operand (packed in Imm for FmtFabcImm /
// FmtIabcImm, r/r3 for the index-fused loads), X2 is macidx.f's r2.
const (
	srcUB uint8 = 1 << iota
	srcUC
	srcUX
	srcUX2
)

// UniformConds reports how many of the kernel's conditional jumps have
// statically uniform conditions, and the total number of conditional
// jumps.
func (p *VecFunc) UniformConds() (uniform, total int) {
	for pc := range p.Code {
		if _, ok := condJumpTarget(&p.Code[pc], pc); ok {
			total++
			if p.condUniform[pc] {
				uniform++
			}
		}
	}
	return uniform, total
}

// ScalarizedOps reports how many instructions execute once per dispatch
// on the scalar slots.
func (p *VecFunc) ScalarizedOps() int {
	n := 0
	for _, s := range p.scal {
		if s {
			n++
		}
	}
	return n
}

// ceilPow2 rounds n up to the next power of two (minimum 1), so
// register indices can be masked instead of bounds-checked.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// jumpTarget returns the target of any jump instruction (conditional or
// not) and whether in jumps at all.
func jumpTarget(in *Instr, pc int) (int, bool) {
	switch in.Op {
	case OpJmp, OpJZBr, OpJZLog, OpJNZLog, OpJCmpI, OpJCmpF:
		return int(in.Imm), true
	case OpJCmpIImm:
		return int(in.C), true
	case OpIncJCmpI:
		_, t := unpackCcTarget(in.Imm)
		return int(t), true
	}
	return 0, false
}

// condJumpTarget returns the target of a conditional jump, or ok=false
// for every other instruction (including OpJmp).
func condJumpTarget(in *Instr, pc int) (int, bool) {
	if in.Op == OpJmp {
		return 0, false
	}
	return jumpTarget(in, pc)
}

// Vectorize classifies every register of p as group-uniform or varying
// and decides whether the kernel's loop structure admits SIMT
// execution. It fails when a loop back-edge condition is varying (the
// lanes would iterate different trip counts) or a varying conditional
// jump sits inside a loop body (the lanes would diverge every
// iteration); varying forward branches outside loops are admitted,
// checked for agreement at runtime, and annotated with their
// re-convergence point when the divergent region is safe to run
// masked.
func Vectorize(p *Func) (*VecFunc, error) {
	nI, nF := max(p.NumI, 1), max(p.NumF, 1)
	varI := make([]bool, nI)
	varF := make([]bool, nF)
	markI := func(r int32, v bool, changed *bool) {
		if v && !varI[r] {
			varI[r] = true
			*changed = true
		}
	}
	markF := func(r int32, v bool, changed *bool) {
		if v && !varF[r] {
			varF[r] = true
			*changed = true
		}
	}

	// Flow-insensitive fixpoint: a register is varying if any write to
	// it anywhere is varying. This is sound because every control path
	// the vector loop actually follows is convergent (uniform branches
	// by induction, varying branches by the runtime agreement check,
	// divergent regions by the no-uniform-write eligibility rule), so
	// a "uniform" register always holds lane-equal values whenever it
	// is read. Loads are uniform when every index component is
	// uniform: the lanes read the same address against the same memory
	// state.
	for changed := true; changed; {
		changed = false
		for i := range p.Code {
			in := &p.Code[i]
			info, ok := LookupOp(in.Op)
			if !ok {
				return nil, fmt.Errorf("exec: vec: illegal opcode %d at pc %d", in.Op, i)
			}
			switch info.Fmt {
			case FmtNone, FmtJmp, FmtJCond, FmtJCmpI, FmtJCmpIImm, FmtJCmpF,
				FmtBar, FmtStoreF, FmtStoreI:
				// No register result.
			case FmtIab:
				markI(in.A, varI[in.B], &changed)
			case FmtIabc:
				markI(in.A, varI[in.B] || varI[in.C], &changed)
			case FmtIabImm:
				markI(in.A, varI[in.B], &changed)
			case FmtIaImm:
				// Constant: uniform.
			case FmtFabc:
				markF(in.A, varF[in.B] || varF[in.C], &changed)
			case FmtFab:
				markF(in.A, varF[in.B], &changed)
			case FmtFaPool:
				// Constant: uniform.
			case FmtFaIb:
				markF(in.A, varI[in.B], &changed)
			case FmtIaFb:
				markI(in.A, varF[in.B], &changed)
			case FmtIaFbc:
				markI(in.A, varF[in.B] || varF[in.C], &changed)
			case FmtFabcImm:
				markF(in.A, varF[in.B] || varF[in.C] || varF[int32(in.Imm)], &changed)
			case FmtIabcImm:
				markI(in.A, varI[in.B] || varI[in.C] || varI[int32(in.Imm)], &changed)
			case FmtMulImmAdd:
				markI(in.A, varI[in.B] || varI[in.C], &changed)
			case FmtWI:
				markI(in.A, in.B == WIGlobalID || in.B == WILocalID, &changed)
			case FmtWIDyn:
				markI(in.A, in.B == WIGlobalID || in.B == WILocalID || varI[in.C], &changed)
			case FmtLoadF:
				markF(in.A, varI[in.C], &changed)
			case FmtLoadI:
				markI(in.A, varI[in.C], &changed)
			case FmtFusedLdF:
				markF(in.A, varF[in.B] || varI[in.C], &changed)
			case FmtFusedMacF:
				markF(in.A, varF[in.B] || varI[in.C], &changed)
			case FmtLdIdxF:
				_, _, r3 := unpackMemIdx(in.Imm)
				markF(in.A, varI[in.B] || varI[in.C] || varI[r3], &changed)
			case FmtMacIdxF:
				_, _, r2, r3 := unpackMacIdx(in.Imm)
				markF(in.A, varF[in.B] || varI[in.C] || varI[r2] || varI[r3], &changed)
			case FmtIncJCmpI:
				markI(in.A, varI[in.A] || varI[in.B], &changed)
			default:
				return nil, fmt.Errorf("exec: vec: unhandled operand format for %s at pc %d", in.Op, i)
			}
		}
	}

	condU := make([]bool, len(p.Code))
	uniformCond := func(in *Instr) bool {
		switch in.Op {
		case OpJZBr, OpJZLog, OpJNZLog:
			return !varI[in.A]
		case OpJCmpI:
			return !varI[in.A] && !varI[in.B]
		case OpJCmpIImm:
			return !varI[in.A]
		case OpJCmpF:
			return !varF[in.A] && !varF[in.B]
		case OpIncJCmpI:
			return !varI[in.A] && !varI[in.B] && !varI[in.C]
		}
		return false
	}

	// Loop bodies are the union of all backward-jump spans [target, pc].
	inLoop := make([]bool, len(p.Code))
	for i := range p.Code {
		if t, ok := jumpTarget(&p.Code[i], i); ok && t <= i {
			for j := t; j <= i; j++ {
				inLoop[j] = true
			}
		}
	}

	for i := range p.Code {
		in := &p.Code[i]
		t, ok := condJumpTarget(in, i)
		if !ok {
			continue
		}
		u := uniformCond(in)
		condU[i] = u
		if u {
			continue
		}
		if t <= i {
			return nil, fmt.Errorf("exec: vec: varying loop back-edge at pc %d (%s)", i, in.Op)
		}
		if in.Op == OpIncJCmpI {
			// addjcmp.i mutates its counter before testing; a divergence
			// bail-out could not restore pre-instruction state.
			return nil, fmt.Errorf("exec: vec: varying fused loop counter at pc %d", i)
		}
		if inLoop[i] {
			return nil, fmt.Errorf("exec: vec: varying branch inside loop body at pc %d (%s)", i, in.Op)
		}
	}

	vf := &VecFunc{Func: p, condUniform: condU, uniI: notAll(varI), uniF: notAll(varF)}
	vf.scal = make([]bool, len(p.Code))
	vf.srcU = make([]uint8, len(p.Code))
	vf.joinPC = make([]int, len(p.Code))
	for i := range vf.joinPC {
		vf.joinPC[i] = -1
	}
	if os.Getenv("REPRO_VEC_V1") != "" {
		// Compatibility mode: lane-materialize everything, bail on any
		// disagreement. Same admission rules, PR 9 execution.
		return vf, nil
	}
	vf.scalarized = true
	vf.computeScal(varI, varF)
	vf.computeJoins(varI, varF)
	return vf, nil
}

func notAll(v []bool) []bool {
	u := make([]bool, len(v))
	for i, b := range v {
		u[i] = !b
	}
	return u
}

// computeScal fills scal (instructions that execute once per dispatch
// on the scalar slots) and srcU (uniform operands of vector
// instructions that must be broadcast from the scalar slots).
func (vf *VecFunc) computeScal(varI, varF []bool) {
	p := vf.Func
	uI := func(r int32) bool { return !varI[r] }
	uF := func(r int32) bool { return !varF[r] }
	for i := range p.Code {
		in := &p.Code[i]
		info, _ := LookupOp(in.Op)
		var s bool
		var u uint8
		setI := func(bit uint8, r int32) {
			if uI(r) {
				u |= bit
			}
		}
		setF := func(bit uint8, r int32) {
			if uF(r) {
				u |= bit
			}
		}
		switch info.Fmt {
		case FmtNone, FmtJmp, FmtBar:
			// Never scalarized, no register reads.
		case FmtIab, FmtIabImm:
			s = uI(in.A)
			if !s {
				setI(srcUB, in.B)
			}
		case FmtIabc:
			s = uI(in.A)
			if !s {
				setI(srcUB, in.B)
				setI(srcUC, in.C)
			}
		case FmtIaImm:
			s = uI(in.A)
		case FmtFab:
			s = uF(in.A)
			if !s {
				setF(srcUB, in.B)
			}
		case FmtFabc:
			s = uF(in.A)
			if !s {
				setF(srcUB, in.B)
				setF(srcUC, in.C)
			}
		case FmtFaPool:
			s = uF(in.A)
		case FmtFaIb:
			s = uF(in.A)
			if !s {
				setI(srcUB, in.B)
			}
		case FmtIaFb:
			s = uI(in.A)
			if !s {
				setF(srcUB, in.B)
			}
		case FmtIaFbc:
			s = uI(in.A)
			if !s {
				setF(srcUB, in.B)
				setF(srcUC, in.C)
			}
		case FmtFabcImm:
			s = uF(in.A)
			if !s {
				setF(srcUB, in.B)
				setF(srcUC, in.C)
				setF(srcUX, int32(in.Imm))
			}
		case FmtIabcImm:
			s = uI(in.A)
			if !s {
				setI(srcUB, in.B)
				setI(srcUC, in.C)
				setI(srcUX, int32(in.Imm))
			}
		case FmtMulImmAdd:
			s = uI(in.A)
			if !s {
				setI(srcUB, in.B)
				setI(srcUC, in.C)
			}
		case FmtWI:
			s = uI(in.A)
		case FmtWIDyn:
			s = uI(in.A)
			if !s {
				setI(srcUC, in.C)
			}
		case FmtLoadF:
			s = uF(in.A)
			if !s {
				setI(srcUC, in.C)
			}
		case FmtLoadI:
			s = uI(in.A)
			if !s {
				setI(srcUC, in.C)
			}
		case FmtStoreF:
			s = uF(in.A) && uI(in.C)
			if !s {
				setF(srcUB, in.A)
				setI(srcUC, in.C)
			}
		case FmtStoreI:
			s = uI(in.A) && uI(in.C)
			if !s {
				setI(srcUB, in.A)
				setI(srcUC, in.C)
			}
		case FmtFusedLdF, FmtFusedMacF:
			s = uF(in.A)
			if !s {
				setF(srcUB, in.B)
				setI(srcUC, in.C)
			}
		case FmtLdIdxF:
			s = uF(in.A)
			if !s {
				_, _, r3 := unpackMemIdx(in.Imm)
				setI(srcUB, in.B)
				setI(srcUC, in.C)
				setI(srcUX, r3)
			}
		case FmtMacIdxF:
			s = uF(in.A)
			if !s {
				_, _, r2, r3 := unpackMacIdx(in.Imm)
				setF(srcUB, in.B)
				setI(srcUC, in.C)
				setI(srcUX2, r2)
				setI(srcUX, r3)
			}
		case FmtJCond:
			// The only register operand of a varying jz/jnz condition
			// is by definition varying: no broadcast bits needed.
			s = vf.condUniform[i]
		case FmtJCmpI:
			s = vf.condUniform[i]
			if !s {
				setI(srcUB, in.A)
				setI(srcUC, in.B)
			}
		case FmtJCmpIImm:
			s = vf.condUniform[i]
		case FmtJCmpF:
			s = vf.condUniform[i]
			if !s {
				setF(srcUB, in.A)
				setF(srcUC, in.B)
			}
		case FmtIncJCmpI:
			// A varying addjcmp.i is rejected at admission, so this is
			// always the statically uniform loop counter.
			s = vf.condUniform[i]
		}
		vf.scal[i] = s
		vf.srcU[i] = u
	}
}

// computeJoins records, for every varying conditional jump, the point
// where a split group can re-form: the branch's immediate
// post-dominator, provided the divergent region between the branch and
// the join is safe to run one side at a time — no barriers (the sides
// would deadlock each other), no writes to uniform registers (the
// sides would disagree about a "uniform" value at the join), and no
// stores through a uniform index (side order would replace the
// canonical item order for the conflicting writes).
func (vf *VecFunc) computeJoins(varI, varF []bool) {
	p := vf.Func
	n := len(p.Code)
	anyVarying := false
	for i := range p.Code {
		if _, ok := condJumpTarget(&p.Code[i], i); ok && !vf.condUniform[i] {
			anyVarying = true
			break
		}
	}
	if !anyVarying {
		return
	}

	// succs returns the successor nodes of pc in the CFG whose virtual
	// exit node is n (reached by halt and by running off the end).
	succs := func(v int) (int, int) {
		in := &p.Code[v]
		if in.Op == OpHalt {
			return n, -1
		}
		if in.Op == OpJmp {
			return int(in.Imm), -1
		}
		nx := v + 1
		if nx > n {
			nx = n
		}
		if t, ok := condJumpTarget(in, v); ok {
			return nx, t
		}
		return nx, -1
	}

	// Post-dominator sets as bitsets over nodes 0..n: pdom[exit] =
	// {exit}, pdom[v] = {v} ∪ ∩ pdom[succ]. Kernels are a few hundred
	// instructions at most, so the quadratic dataflow is irrelevant at
	// compile time.
	words := (n + 1 + 63) / 64
	pd := make([]uint64, (n+1)*words)
	row := func(v int) []uint64 { return pd[v*words : (v+1)*words] }
	for v := 0; v < n; v++ {
		r := row(v)
		for w := range r {
			r[w] = ^uint64(0)
		}
	}
	row(n)[n/64] = 1 << (n % 64)
	tmp := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for v := n - 1; v >= 0; v-- {
			s1, s2 := succs(v)
			copy(tmp, row(s1))
			if s2 >= 0 {
				r2 := row(s2)
				for w := range tmp {
					tmp[w] &= r2[w]
				}
			}
			tmp[v/64] |= 1 << (v % 64)
			r := row(v)
			for w := range tmp {
				if r[w] != tmp[w] {
					copy(r, tmp)
					changed = true
					break
				}
			}
		}
	}

	card := func(v int) int {
		c := 0
		for _, w := range row(v) {
			c += bits.OnesCount64(w)
		}
		return c
	}

	vf.regionI = make([][]bool, n)
	vf.regionF = make([][]bool, n)
	vf.regionWI = make([]bool, n)

	seen := make([]bool, n+1)
	stack := make([]int, 0, n)
	// touch marks every register operand (sources and destination) of
	// the instruction in the region's copy sets; uniform registers are
	// skipped at fill/scatter time, so marking them here is harmless.
	touch := func(in *Instr, tI, tF []bool, wi *bool) {
		info, _ := LookupOp(in.Op)
		mI := func(r int32) { tI[r] = true }
		mF := func(r int32) { tF[r] = true }
		switch info.Fmt {
		case FmtNone, FmtJmp, FmtBar:
		case FmtJCond:
			mI(in.A)
		case FmtJCmpI:
			mI(in.A)
			mI(in.B)
		case FmtJCmpIImm:
			mI(in.A)
		case FmtJCmpF:
			mF(in.A)
			mF(in.B)
		case FmtStoreF:
			mF(in.A)
			mI(in.C)
		case FmtStoreI:
			mI(in.A)
			mI(in.C)
		case FmtIab, FmtIabImm:
			mI(in.A)
			mI(in.B)
		case FmtIabc, FmtMulImmAdd, FmtIncJCmpI:
			mI(in.A)
			mI(in.B)
			mI(in.C)
		case FmtIaImm:
			mI(in.A)
		case FmtFab:
			mF(in.A)
			mF(in.B)
		case FmtFabc:
			mF(in.A)
			mF(in.B)
			mF(in.C)
		case FmtFaPool:
			mF(in.A)
		case FmtFaIb:
			mF(in.A)
			mI(in.B)
		case FmtIaFb:
			mI(in.A)
			mF(in.B)
		case FmtIaFbc:
			mI(in.A)
			mF(in.B)
			mF(in.C)
		case FmtFabcImm:
			mF(in.A)
			mF(in.B)
			mF(in.C)
			mF(int32(in.Imm))
		case FmtIabcImm:
			mI(in.A)
			mI(in.B)
			mI(in.C)
			mI(int32(in.Imm))
		case FmtWI:
			mI(in.A)
			*wi = true
		case FmtWIDyn:
			mI(in.A)
			mI(in.C)
			*wi = true
		case FmtLoadF:
			mF(in.A)
			mI(in.C)
		case FmtLoadI:
			mI(in.A)
			mI(in.C)
		case FmtFusedLdF, FmtFusedMacF:
			mF(in.A)
			mF(in.B)
			mI(in.C)
		case FmtLdIdxF:
			_, _, r3 := unpackMemIdx(in.Imm)
			mF(in.A)
			mI(in.B)
			mI(in.C)
			mI(r3)
		case FmtMacIdxF:
			_, _, r2, r3 := unpackMacIdx(in.Imm)
			mF(in.A)
			mF(in.B)
			mI(in.C)
			mI(r2)
			mI(r3)
		}
	}
	regionOK := func(pc, j int, tI, tF []bool, wi *bool) bool {
		for i := range seen {
			seen[i] = false
		}
		stack = stack[:0]
		push := func(v int) {
			if v >= 0 && v != j && !seen[v] {
				seen[v] = true
				if v < n {
					stack = append(stack, v)
				}
			}
		}
		s1, s2 := succs(pc)
		push(s1)
		push(s2)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			in := &p.Code[v]
			if in.Op == OpBar {
				return false
			}
			if isF, r, ok := destReg(in); ok {
				if (isF && !varF[r]) || (!isF && !varI[r]) {
					return false
				}
			}
			info, _ := LookupOp(in.Op)
			if (info.Fmt == FmtStoreF || info.Fmt == FmtStoreI) && !varI[in.C] {
				return false
			}
			touch(in, tI, tF, wi)
			a, b := succs(v)
			push(a)
			push(b)
		}
		return true
	}

	for i := range p.Code {
		if _, ok := condJumpTarget(&p.Code[i], i); !ok || vf.condUniform[i] {
			continue
		}
		// The immediate post-dominator is the strict post-dominator
		// with the largest pdom set (strict pdoms form a chain; the
		// nearest one post-dominates into all the others).
		best, bestCard := -1, -1
		r := row(i)
		for w, word := range r {
			for word != 0 {
				b := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if b == i {
					continue
				}
				if c := card(b); c > bestCard {
					best, bestCard = b, c
				}
			}
		}
		tI := make([]bool, len(varI))
		tF := make([]bool, len(varF))
		var wi bool
		if best >= 0 && regionOK(i, best, tI, tF, &wi) {
			vf.joinPC[i] = best
			vf.regionI[i] = tI
			vf.regionF[i] = tF
			vf.regionWI[i] = wi
		}
	}
}

// VecFrame is the per-group SIMT execution state: W-wide lane arrays
// for the varying registers of both files (lane-major: register r
// occupies [r*W, r*W+W)), scalar slots for the uniform registers, the
// shared buffer tables, the work-item lane vectors, and the group's
// counts.
type VecFrame struct {
	W int

	I []int64   // ceilPow2(NumI) * W lanes (varying registers)
	F []float64 // ceilPow2(NumF) * W lanes

	// SI/SF are the scalar slots: one value per uniform register,
	// written by scalarized instructions and by SetI/SetF argument
	// binding. A uniform register's lane storage is garbage.
	SI []int64
	SF []float64

	Globals []Buf
	Locals  []Buf

	// WI holds the six work-item query rows as lane vectors indexed by
	// the same order as Frame.WI; gid and lid are per-lane ramps, the
	// rest are broadcast.
	WI [6][3][]int64

	// Cnt holds the counts shared by every lane: under convergent
	// execution one accumulation stands for each item. After a
	// divergence split the sides differ, and the per-lane deltas land
	// in LaneCnt (Laned reports whether any exist); an item's total is
	// Cnt plus its lane's delta (LaneCounts).
	Cnt     Counts
	Laned   bool
	LaneCnt []Counts

	PC int

	// PCLaned marks a full bail out of a divergence split: the lanes
	// stopped at different PCs (LanePC) and the caller must complete
	// each lane from its own program point. Otherwise every lane is at
	// PC.
	PCLaned bool
	LanePC  []int

	// Stop is the re-convergence join point when this frame executes
	// one side of a split (-1 otherwise): Run returns as soon as the
	// PC reaches it.
	Stop int

	// Divergences counts runtime lane disagreements at varying
	// branches; Reconverges counts the splits that re-formed at the
	// join. The difference escalated to a scalar bail.
	Divergences int64
	Reconverges int64

	// Fuel is the group's step allowance, charged W per taken jump and
	// refilled in leases from B exactly like Frame.Fuel.
	Fuel int64
	B    *Budget

	idx        []int64   // scratch lane indices for two-pass memory ops
	bcI        []int64   // broadcast scratch: 3 int operand slots
	bcF        []float64 // broadcast scratch: 3 float operand slots
	mi, mf     int32     // pow2 register-index masks
	depth      int       // split nesting depth (0 = full group)
	subs       [2]*VecFrame
	sel0, sel1 []int // split lane partitions (parent lane numbers)
}

// NewVecFrame allocates a W-lane frame for p. Buffers, scalar
// arguments, and WI rows are bound by the caller.
func (p *VecFunc) NewVecFrame(w int) *VecFrame {
	ni, nf := ceilPow2(p.NumI), ceilPow2(p.NumF)
	f := &VecFrame{
		W:    w,
		I:    make([]int64, ni*w),
		F:    make([]float64, nf*w),
		SI:   make([]int64, ni),
		SF:   make([]float64, nf),
		idx:  make([]int64, w),
		bcI:  make([]int64, 3*w),
		bcF:  make([]float64, 3*w),
		mi:   int32(ni - 1),
		mf:   int32(nf - 1),
		sel0: make([]int, 0, w),
		sel1: make([]int, 0, w),
		Stop: -1,
	}
	if p.NumGlobals > 0 {
		f.Globals = make([]Buf, p.NumGlobals)
	}
	if p.NumLocal > 0 {
		f.Locals = make([]Buf, p.NumLocal)
	}
	for q := range f.WI {
		for d := range f.WI[q] {
			f.WI[q][d] = make([]int64, w)
		}
	}
	return f
}

// lanesI returns register r's int lane slice. The register index is
// pow2-masked, so no encoding can index out of the file.
// lanesI and lanesF are written as a reslice chain rather than the
// obvious f.I[o:o+f.W]: that keeps their inline cost under the reduced
// budget the compiler applies to inlinees of a "big" function, so the
// VecFunc.Run dispatch loop gets them inlined instead of paying a call
// per operand read.
func (f *VecFrame) lanesI(r int32) []int64 {
	return f.I[int(r&f.mi)*f.W:][:f.W]
}

func (f *VecFrame) lanesF(r int32) []float64 {
	return f.F[int(r&f.mf)*f.W:][:f.W]
}

// splatI fills broadcast slot s with v and returns it as a lane slice.
func (f *VecFrame) splatI(s int, v int64) []int64 {
	a := f.bcI[s*f.W : s*f.W+f.W]
	for l := range a {
		a[l] = v
	}
	return a
}

func (f *VecFrame) splatF(s int, v float64) []float64 {
	a := f.bcF[s*f.W : s*f.W+f.W]
	for l := range a {
		a[l] = v
	}
	return a
}

// rdI returns register r as a lane slice for a vector arm: the real
// lanes when r is varying, or its scalar slot broadcast into scratch
// slot s when uniform (lane storage of uniform registers is garbage).
func (f *VecFrame) rdI(r int32, uniform bool, s int) []int64 {
	if uniform {
		return f.splatI(s, f.SI[r&f.mi])
	}
	return f.lanesI(r)
}

func (f *VecFrame) rdF(r int32, uniform bool, s int) []float64 {
	if uniform {
		return f.splatF(s, f.SF[r&f.mf])
	}
	return f.lanesF(r)
}

// SetI binds a scalar into int register r: every lane and the scalar
// slot, so the value is visible whichever storage the classification
// selects (argument binding).
func (f *VecFrame) SetI(r int32, v int64) {
	a := f.lanesI(r)
	for l := range a {
		a[l] = v
	}
	f.SI[r&f.mi] = v
}

// SetF binds a scalar into float register r.
func (f *VecFrame) SetF(r int32, v float64) {
	a := f.lanesF(r)
	for l := range a {
		a[l] = v
	}
	f.SF[r&f.mf] = v
}

// Reset rewinds the frame to the kernel entry and clears its counts
// and divergence state. Register lanes keep their values, mirroring
// Frame.Reset.
func (f *VecFrame) Reset() {
	f.PC = 0
	f.Cnt = Counts{}
	f.Stop = -1
	f.Laned = false
	f.PCLaned = false
	f.Divergences = 0
	f.Reconverges = 0
}

// spend burns w units of fuel (one per lane) at a taken jump, refilling
// the lease from the budget on underflow.
func (f *VecFrame) spend(w int64) error {
	f.Fuel -= w
	for f.Fuel < 0 {
		lease, err := f.B.TakeLease()
		if err != nil {
			return err
		}
		f.Fuel += lease
	}
	return nil
}

func (p *VecFunc) exitVec(f *VecFrame, a0, a1 uint64, pc int) {
	f.Cnt.addPacked(a0, a1)
	f.PC = pc
}

// addCounts accumulates s into d field by field.
func addCounts(d, s *Counts) {
	d.Items += s.Items
	d.IntOps += s.IntOps
	d.FloatOps += s.FloatOps
	d.TransOps += s.TransOps
	d.OtherBuiltins += s.OtherBuiltins
	d.GlobalLoads += s.GlobalLoads
	d.GlobalStores += s.GlobalStores
	d.LocalOps += s.LocalOps
	d.Branches += s.Branches
	d.Barriers += s.Barriers
	d.MaxItemOps += s.MaxItemOps
}

// LaneCounts returns lane li's accumulated per-item counts: the shared
// counts plus the lane's divergence delta, if any.
func (f *VecFrame) LaneCounts(li int) Counts {
	c := f.Cnt
	if f.Laned {
		addCounts(&c, &f.LaneCnt[li])
	}
	return c
}

// ensureLaned activates the per-lane count deltas, zeroed.
func (f *VecFrame) ensureLaned() {
	if f.Laned {
		return
	}
	if f.LaneCnt == nil {
		f.LaneCnt = make([]Counts, len(f.idx))
	}
	for i := range f.LaneCnt {
		f.LaneCnt[i] = Counts{}
	}
	f.Laned = true
}

// ensurePCLaned activates the per-lane PC array.
func (f *VecFrame) ensurePCLaned() {
	if f.LanePC == nil {
		f.LanePC = make([]int, len(f.idx))
	}
}

// ScatterLane copies lane li of the vector frame into a scalar Frame:
// registers (uniform registers come from the scalar slots), the lane's
// program point, and its accumulated counts. The exec layer uses it to
// hand a lane to the scalar VM on a divergence bail.
func (p *VecFunc) ScatterLane(f *VecFrame, li int, dst *Frame) {
	for r := 0; r < p.NumI; r++ {
		if p.scalarized && p.uniI[r] {
			dst.I[r] = f.SI[r]
		} else {
			dst.I[r] = f.I[r*f.W+li]
		}
	}
	for r := 0; r < p.NumF; r++ {
		if p.scalarized && p.uniF[r] {
			dst.F[r] = f.SF[r]
		} else {
			dst.F[r] = f.F[r*f.W+li]
		}
	}
	if f.PCLaned {
		dst.PC = f.LanePC[li]
	} else {
		dst.PC = f.PC
	}
	dst.Cnt = f.LaneCounts(li)
}

// subFrame returns the lazily allocated side frame i, dimensioned for
// this frame's full width.
func (p *VecFunc) subFrame(f *VecFrame, i int) *VecFrame {
	s := f.subs[i]
	if s == nil {
		s = p.NewVecFrame(len(f.idx))
		f.subs[i] = s
	}
	return s
}

// fillSub prepares side frame s to run the lanes sel of f from start
// to the join point stop for the divergent region of the branch at
// pc: varying registers the region touches (and, when it queries
// them, the WI rows) are compacted into lanes 0..len(sel)-1 —
// registers outside the region's touch set are skipped entirely —
// the scalar slots are aliased (the region cannot write a uniform
// register), and buffers and budget are shared.
func (p *VecFunc) fillSub(f, s *VecFrame, sel []int, start, stop, pc int) {
	k := len(sel)
	s.W = k
	s.Globals, s.Locals = f.Globals, f.Locals
	s.B = f.B
	s.SI, s.SF = f.SI, f.SF
	s.depth = f.depth + 1
	s.Stop = stop
	s.PC = start
	s.Cnt = Counts{}
	s.Laned = false
	s.PCLaned = false
	s.Divergences = 0
	s.Reconverges = 0
	tI, tF := p.regionI[pc], p.regionF[pc]
	for r := 0; r < p.NumI; r++ {
		if !tI[r] || (p.scalarized && p.uniI[r]) {
			continue
		}
		src := f.I[r*f.W:]
		dst := s.I[r*k:]
		for i, l := range sel {
			dst[i] = src[l]
		}
	}
	for r := 0; r < p.NumF; r++ {
		if !tF[r] || (p.scalarized && p.uniF[r]) {
			continue
		}
		src := f.F[r*f.W:]
		dst := s.F[r*k:]
		for i, l := range sel {
			dst[i] = src[l]
		}
	}
	if p.regionWI[pc] {
		for q := range f.WI {
			for d := range f.WI[q] {
				src := f.WI[q][d]
				dst := s.WI[q][d]
				for i, l := range sel {
					dst[i] = src[l]
				}
			}
		}
	}
}

// scatterSub merges side frame s back into f after the side ran the
// region of the branch at pc: touched varying registers return to
// their parent lanes, the side's counts become per-lane deltas on the
// parent, and (on a bail) each lane's stopping PC is recorded.
// Divergence statistics aggregate up.
func (p *VecFunc) scatterSub(f, s *VecFrame, sel []int, withPC bool, pc int) {
	k := len(sel)
	tI, tF := p.regionI[pc], p.regionF[pc]
	for r := 0; r < p.NumI; r++ {
		if !tI[r] || (p.scalarized && p.uniI[r]) {
			continue
		}
		src := s.I[r*k:]
		dst := f.I[r*f.W:]
		for i, l := range sel {
			dst[l] = src[i]
		}
	}
	for r := 0; r < p.NumF; r++ {
		if !tF[r] || (p.scalarized && p.uniF[r]) {
			continue
		}
		src := s.F[r*k:]
		dst := f.F[r*f.W:]
		for i, l := range sel {
			dst[l] = src[i]
		}
	}
	f.ensureLaned()
	for i, l := range sel {
		c := s.Cnt
		if s.Laned {
			addCounts(&c, &s.LaneCnt[i])
		}
		addCounts(&f.LaneCnt[l], &c)
	}
	if withPC {
		f.ensurePCLaned()
		for i, l := range sel {
			if s.PCLaned {
				f.LanePC[l] = s.LanePC[i]
			} else {
				f.LanePC[l] = s.PC
			}
		}
	}
	f.Divergences += s.Divergences
	f.Reconverges += s.Reconverges
}
