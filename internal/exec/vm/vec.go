package vm

import "fmt"

// SIMT vector execution tier. Vectorize analyzes a compiled Func for
// register uniformity at the bytecode level and, when the kernel's loop
// structure is group-uniform, produces a VecFunc that executes W work
// items per instruction dispatch: register files become W-wide lane
// arrays, straight-line arms loop over lanes inside one switch arm, and
// branches take one comparison per group (statically uniform
// conditions) or one lane-agreement scan (varying forward conditions).
//
// The tier is optimistic: statically varying forward branches are
// allowed, and the group runs vectorized as long as every lane agrees
// at runtime (the common `if (gid < n)` guard converges for every
// aligned group). On disagreement — or on any would-fault lane — Run
// returns Diverged with the PC parked at the offending instruction,
// which has neither executed nor counted, and the caller scalarizes:
// each lane's registers are copied into a per-item scalar Frame and
// completed on the scalar VM. Scalar completion reproduces the
// canonical item-order fault message and per-item counts exactly, so
// the vector tier needs no fault strings of its own and buffer/profile/
// fault parity with the scalar VM and closure tiers is preserved
// byte-for-byte.
//
// Counter and budget accounting: under convergent execution every lane
// retires the same instruction sequence, so the packed profile
// accumulators (counts.go) are charged once per dispatch — they hold
// per-item counts, which the caller replicates into each item's bucket
// — while budget fuel is charged W per taken jump (W items each spent
// one step). The spill-room cadence is identical to the scalar VM.

// VecFunc is the vectorized view of a compiled kernel: the same
// bytecode, plus the uniformity classification that drives branch
// handling.
type VecFunc struct {
	*Func

	// condUniform[pc] is true when the conditional jump at pc has a
	// statically group-uniform condition: one lane-0 test decides the
	// whole group. Varying conditions get a runtime agreement scan.
	condUniform []bool

	// uniI/uniF record the register classification (true = proven
	// group-uniform) for the disassembler and tests.
	uniI, uniF []bool
}

// UniformConds reports how many of the kernel's conditional jumps have
// statically uniform conditions, and the total number of conditional
// jumps.
func (p *VecFunc) UniformConds() (uniform, total int) {
	for pc := range p.Code {
		if _, ok := condJumpTarget(&p.Code[pc], pc); ok {
			total++
			if p.condUniform[pc] {
				uniform++
			}
		}
	}
	return uniform, total
}

// ceilPow2 rounds n up to the next power of two (minimum 1), so
// register indices can be masked instead of bounds-checked.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// jumpTarget returns the target of any jump instruction (conditional or
// not) and whether in jumps at all.
func jumpTarget(in *Instr, pc int) (int, bool) {
	switch in.Op {
	case OpJmp, OpJZBr, OpJZLog, OpJNZLog, OpJCmpI, OpJCmpF:
		return int(in.Imm), true
	case OpJCmpIImm:
		return int(in.C), true
	case OpIncJCmpI:
		_, t := unpackCcTarget(in.Imm)
		return int(t), true
	}
	return 0, false
}

// condJumpTarget returns the target of a conditional jump, or ok=false
// for every other instruction (including OpJmp).
func condJumpTarget(in *Instr, pc int) (int, bool) {
	if in.Op == OpJmp {
		return 0, false
	}
	return jumpTarget(in, pc)
}

// Vectorize classifies every register of p as group-uniform or varying
// and decides whether the kernel's loop structure admits SIMT
// execution. It fails when a loop back-edge condition is varying (the
// lanes would iterate different trip counts) or a varying conditional
// jump sits inside a loop body (the lanes would diverge every
// iteration); varying forward branches outside loops are admitted and
// checked for agreement at runtime.
func Vectorize(p *Func) (*VecFunc, error) {
	nI, nF := max(p.NumI, 1), max(p.NumF, 1)
	varI := make([]bool, nI)
	varF := make([]bool, nF)
	markI := func(r int32, v bool, changed *bool) {
		if v && !varI[r] {
			varI[r] = true
			*changed = true
		}
	}
	markF := func(r int32, v bool, changed *bool) {
		if v && !varF[r] {
			varF[r] = true
			*changed = true
		}
	}

	// Flow-insensitive fixpoint: a register is varying if any write to
	// it anywhere is varying. This is sound because every control path
	// the vector loop actually follows is convergent (uniform branches
	// by induction, varying branches by the runtime agreement check),
	// so a "uniform" register always holds lane-equal values whenever
	// it is read.
	for changed := true; changed; {
		changed = false
		for i := range p.Code {
			in := &p.Code[i]
			info, ok := LookupOp(in.Op)
			if !ok {
				return nil, fmt.Errorf("exec: vec: illegal opcode %d at pc %d", in.Op, i)
			}
			switch info.Fmt {
			case FmtNone, FmtJmp, FmtJCond, FmtJCmpI, FmtJCmpIImm, FmtJCmpF,
				FmtBar, FmtStoreF, FmtStoreI:
				// No register result.
			case FmtIab:
				markI(in.A, varI[in.B], &changed)
			case FmtIabc:
				markI(in.A, varI[in.B] || varI[in.C], &changed)
			case FmtIabImm:
				markI(in.A, varI[in.B], &changed)
			case FmtIaImm:
				// Constant: uniform.
			case FmtFabc:
				markF(in.A, varF[in.B] || varF[in.C], &changed)
			case FmtFab:
				markF(in.A, varF[in.B], &changed)
			case FmtFaPool:
				// Constant: uniform.
			case FmtFaIb:
				markF(in.A, varI[in.B], &changed)
			case FmtIaFb:
				markI(in.A, varF[in.B], &changed)
			case FmtIaFbc:
				markI(in.A, varF[in.B] || varF[in.C], &changed)
			case FmtFabcImm:
				markF(in.A, varF[in.B] || varF[in.C] || varF[int32(in.Imm)], &changed)
			case FmtIabcImm:
				markI(in.A, varI[in.B] || varI[in.C] || varI[int32(in.Imm)], &changed)
			case FmtMulImmAdd:
				markI(in.A, varI[in.B] || varI[in.C], &changed)
			case FmtWI:
				markI(in.A, in.B == WIGlobalID || in.B == WILocalID, &changed)
			case FmtWIDyn:
				markI(in.A, in.B == WIGlobalID || in.B == WILocalID || varI[in.C], &changed)
			case FmtLoadF, FmtFusedLdF, FmtFusedMacF, FmtLdIdxF, FmtMacIdxF:
				// Loads are varying: lanes read different addresses.
				markF(in.A, true, &changed)
			case FmtLoadI:
				markI(in.A, true, &changed)
			case FmtIncJCmpI:
				markI(in.A, varI[in.A] || varI[in.B], &changed)
			default:
				return nil, fmt.Errorf("exec: vec: unhandled operand format for %s at pc %d", in.Op, i)
			}
		}
	}

	condU := make([]bool, len(p.Code))
	uniformCond := func(in *Instr) bool {
		switch in.Op {
		case OpJZBr, OpJZLog, OpJNZLog:
			return !varI[in.A]
		case OpJCmpI:
			return !varI[in.A] && !varI[in.B]
		case OpJCmpIImm:
			return !varI[in.A]
		case OpJCmpF:
			return !varF[in.A] && !varF[in.B]
		case OpIncJCmpI:
			return !varI[in.A] && !varI[in.B] && !varI[in.C]
		}
		return false
	}

	// Loop bodies are the union of all backward-jump spans [target, pc].
	inLoop := make([]bool, len(p.Code))
	for i := range p.Code {
		if t, ok := jumpTarget(&p.Code[i], i); ok && t <= i {
			for j := t; j <= i; j++ {
				inLoop[j] = true
			}
		}
	}

	for i := range p.Code {
		in := &p.Code[i]
		t, ok := condJumpTarget(in, i)
		if !ok {
			continue
		}
		u := uniformCond(in)
		condU[i] = u
		if u {
			continue
		}
		if t <= i {
			return nil, fmt.Errorf("exec: vec: varying loop back-edge at pc %d (%s)", i, in.Op)
		}
		if in.Op == OpIncJCmpI {
			// addjcmp.i mutates its counter before testing; a divergence
			// bail-out could not restore pre-instruction state.
			return nil, fmt.Errorf("exec: vec: varying fused loop counter at pc %d", i)
		}
		if inLoop[i] {
			return nil, fmt.Errorf("exec: vec: varying branch inside loop body at pc %d (%s)", i, in.Op)
		}
	}

	return &VecFunc{Func: p, condUniform: condU, uniI: notAll(varI), uniF: notAll(varF)}, nil
}

func notAll(v []bool) []bool {
	u := make([]bool, len(v))
	for i, b := range v {
		u[i] = !b
	}
	return u
}

// VecFrame is the per-group SIMT execution state: W-wide lane arrays
// for both register files (lane-major: register r occupies
// [r*W, r*W+W)), the shared buffer tables, the work-item lane vectors,
// and the group's per-item counts.
type VecFrame struct {
	W int

	I []int64   // ceilPow2(NumI) * W lanes
	F []float64 // ceilPow2(NumF) * W lanes

	Globals []Buf
	Locals  []Buf

	// WI holds the six work-item query rows as lane vectors indexed by
	// the same order as Frame.WI; gid and lid are per-lane ramps, the
	// rest are broadcast.
	WI [6][3][]int64

	// Cnt holds per-item counts: under convergent execution every lane
	// retires the same sequence, so one accumulation stands for each
	// item. The caller replicates it into per-item profile buckets.
	Cnt Counts
	PC  int

	// Fuel is the group's step allowance, charged W per taken jump and
	// refilled in leases from B exactly like Frame.Fuel.
	Fuel int64
	B    *Budget

	idx    []int64 // scratch lane indices for two-pass memory ops
	mi, mf int32   // pow2 register-index masks
}

// NewVecFrame allocates a W-lane frame for p. Buffers, scalar
// arguments, and WI rows are bound by the caller.
func (p *VecFunc) NewVecFrame(w int) *VecFrame {
	ni, nf := ceilPow2(p.NumI), ceilPow2(p.NumF)
	f := &VecFrame{
		W:   w,
		I:   make([]int64, ni*w),
		F:   make([]float64, nf*w),
		idx: make([]int64, w),
		mi:  int32(ni - 1),
		mf:  int32(nf - 1),
	}
	if p.NumGlobals > 0 {
		f.Globals = make([]Buf, p.NumGlobals)
	}
	if p.NumLocal > 0 {
		f.Locals = make([]Buf, p.NumLocal)
	}
	for q := range f.WI {
		for d := range f.WI[q] {
			f.WI[q][d] = make([]int64, w)
		}
	}
	return f
}

// lanesI returns register r's int lane slice. The register index is
// pow2-masked, so no encoding can index out of the file.
func (f *VecFrame) lanesI(r int32) []int64 {
	o := int(r&f.mi) * f.W
	return f.I[o : o+f.W]
}

func (f *VecFrame) lanesF(r int32) []float64 {
	o := int(r&f.mf) * f.W
	return f.F[o : o+f.W]
}

// SetI broadcasts a scalar into every lane of int register r (argument
// binding).
func (f *VecFrame) SetI(r int32, v int64) {
	a := f.lanesI(r)
	for l := range a {
		a[l] = v
	}
}

// SetF broadcasts a scalar into every lane of float register r.
func (f *VecFrame) SetF(r int32, v float64) {
	a := f.lanesF(r)
	for l := range a {
		a[l] = v
	}
}

// Reset rewinds the frame to the kernel entry and clears its counts.
// Register lanes keep their values, mirroring Frame.Reset.
func (f *VecFrame) Reset() {
	f.PC = 0
	f.Cnt = Counts{}
}

// spend burns w units of fuel (one per lane) at a taken jump, refilling
// the lease from the budget on underflow.
func (f *VecFrame) spend(w int64) error {
	f.Fuel -= w
	for f.Fuel < 0 {
		lease, err := f.B.TakeLease()
		if err != nil {
			return err
		}
		f.Fuel += lease
	}
	return nil
}

func (p *VecFunc) exitVec(f *VecFrame, a0, a1 uint64, pc int) {
	f.Cnt.addPacked(a0, a1)
	f.PC = pc
}
