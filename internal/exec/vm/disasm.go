package vm

import (
	"fmt"
	"strings"

	"repro/internal/inspire"
)

// Disassemble renders a compiled function as stable, human-readable
// text: a header with the register and buffer layout, the constant
// pool, and one line per instruction. Golden tests pin this output so
// encoding changes are deliberate.
func Disassemble(p *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s\n", p.Name)
	fmt.Fprintf(&b, "  regs: i=%d f=%d globals=%d locals=%d fused=%d\n",
		p.NumI, p.NumF, p.NumGlobals, p.NumLocal, p.Fused)
	if len(p.Params) > 0 {
		b.WriteString("  params:")
		for _, pr := range p.Params {
			switch pr.Kind {
			case ParamInt:
				fmt.Fprintf(&b, " i%d", pr.Index)
			case ParamFloat:
				fmt.Fprintf(&b, " f%d", pr.Index)
			case ParamGlobal:
				fmt.Fprintf(&b, " g%d", pr.Index)
			case ParamLocal:
				fmt.Fprintf(&b, " l%d", pr.Index)
			}
		}
		b.WriteByte('\n')
	}
	for i, v := range p.FPool {
		fmt.Fprintf(&b, "  fpool[%d] = %g\n", i, v)
	}
	for pc := range p.Code {
		fmt.Fprintf(&b, "%4d  %s\n", pc, disasmInstr(p, &p.Code[pc]))
	}
	return b.String()
}

// Disassemble renders the vectorized view of the kernel: the scalar
// disassembly plus the uniformity classification that drives the SIMT
// tier — a header summarizing it and a per-instruction marker column
// ('u' = statically uniform branch condition, executed once per group;
// 'v' = varying branch, runtime lane-agreement scan with masked
// re-convergence on disagreement; 's' = scalarized, the instruction
// retires once on the scalar slots instead of once per lane). Golden
// tests pin this output so classification changes are deliberate.
func (p *VecFunc) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vec func %s\n", p.Name)
	uni, total := p.UniformConds()
	nui, nuf := 0, 0
	for _, u := range p.uniI {
		if u {
			nui++
		}
	}
	for _, u := range p.uniF {
		if u {
			nuf++
		}
	}
	fmt.Fprintf(&b, "  uniform: conds=%d/%d iregs=%d/%d fregs=%d/%d scal=%d/%d\n",
		uni, total, nui, len(p.uniI), nuf, len(p.uniF), p.ScalarizedOps(), len(p.Code))
	for pc := range p.Code {
		mark := byte(' ')
		if _, ok := condJumpTarget(&p.Code[pc], pc); ok {
			if p.condUniform[pc] {
				mark = 'u'
			} else {
				mark = 'v'
			}
		} else if len(p.scal) > 0 && p.scal[pc] {
			mark = 's'
		}
		fmt.Fprintf(&b, "%4d %c %s\n", pc, mark, disasmInstr(p.Func, &p.Code[pc]))
	}
	return b.String()
}

func disasmInstr(p *Func, in *Instr) string {
	info, ok := LookupOp(in.Op)
	if !ok {
		return fmt.Sprintf("op(%d) a=%d b=%d c=%d imm=%d", uint8(in.Op), in.A, in.B, in.C, in.Imm)
	}
	name := fmt.Sprintf("%-10s", info.Name)
	switch info.Fmt {
	case FmtNone, FmtBar:
		return strings.TrimRight(name, " ")
	case FmtIabc:
		return fmt.Sprintf("%s i%d <- i%d, i%d", name, in.A, in.B, in.C)
	case FmtIab:
		return fmt.Sprintf("%s i%d <- i%d", name, in.A, in.B)
	case FmtIabImm:
		return fmt.Sprintf("%s i%d <- i%d, #%d", name, in.A, in.B, in.Imm)
	case FmtIaImm:
		return fmt.Sprintf("%s i%d <- #%d", name, in.A, in.Imm)
	case FmtFabc:
		return fmt.Sprintf("%s f%d <- f%d, f%d", name, in.A, in.B, in.C)
	case FmtFab:
		return fmt.Sprintf("%s f%d <- f%d", name, in.A, in.B)
	case FmtFaPool:
		return fmt.Sprintf("%s f%d <- fpool[%d]", name, in.A, in.Imm)
	case FmtFaIb:
		return fmt.Sprintf("%s f%d <- i%d", name, in.A, in.B)
	case FmtIaFb:
		return fmt.Sprintf("%s i%d <- f%d", name, in.A, in.B)
	case FmtIaFbc:
		return fmt.Sprintf("%s i%d <- f%d, f%d", name, in.A, in.B, in.C)
	case FmtFabcImm:
		return fmt.Sprintf("%s f%d <- f%d, f%d, f%d", name, in.A, in.B, in.C, in.Imm)
	case FmtIabcImm:
		return fmt.Sprintf("%s i%d <- i%d, i%d, i%d", name, in.A, in.B, in.C, in.Imm)
	case FmtMulImmAdd:
		return fmt.Sprintf("%s i%d <- i%d * #%d + i%d", name, in.A, in.B, in.Imm, in.C)
	case FmtJmp:
		return fmt.Sprintf("%s -> %d", name, in.Imm)
	case FmtJCond:
		return fmt.Sprintf("%s i%d -> %d", name, in.A, in.Imm)
	case FmtWI:
		return fmt.Sprintf("%s i%d <- %s(%d)", name, in.A, inspire.WIQuery(in.B), in.C)
	case FmtWIDyn:
		return fmt.Sprintf("%s i%d <- %s(i%d)", name, in.A, inspire.WIQuery(in.B), in.C)
	case FmtLoadF:
		return fmt.Sprintf("%s f%d <- %s:%d[i%d]", name, in.A, p.Names[in.Imm], in.B, in.C)
	case FmtLoadI:
		return fmt.Sprintf("%s i%d <- %s:%d[i%d]", name, in.A, p.Names[in.Imm], in.B, in.C)
	case FmtStoreF:
		return fmt.Sprintf("%s %s:%d[i%d] <- f%d", name, p.Names[in.Imm], in.B, in.C, in.A)
	case FmtStoreI:
		return fmt.Sprintf("%s %s:%d[i%d] <- i%d", name, p.Names[in.Imm], in.B, in.C, in.A)
	case FmtFusedLdF:
		slot, nm := unpackMem(in.Imm)
		return fmt.Sprintf("%s f%d <- f%d, %s:%d[i%d]", name, in.A, in.B, p.Names[nm], slot, in.C)
	case FmtFusedMacF:
		slot, nm := unpackMem(in.Imm)
		return fmt.Sprintf("%s f%d <- f%d + f%d*%s:%d[i%d]", name, in.A, in.A, in.B, p.Names[nm], slot, in.C)
	case FmtLdIdxF:
		slot, nm, r := unpackMemIdx(in.Imm)
		return fmt.Sprintf("%s f%d <- %s:%d[i%d*i%d+i%d]", name, in.A, p.Names[nm], slot, in.B, in.C, r)
	case FmtMacIdxF:
		slot, nm, r2, r3 := unpackMacIdx(in.Imm)
		return fmt.Sprintf("%s f%d <- f%d + f%d*%s:%d[i%d*i%d+i%d]", name, in.A, in.A, in.B, p.Names[nm], slot, in.C, r2, r3)
	case FmtIncJCmpI:
		cc, tgt := unpackCcTarget(in.Imm)
		return fmt.Sprintf("%s i%d += i%d; if i%d %s i%d -> %d", name, in.A, in.B, in.A, ccNames[cc], in.C, tgt)
	case FmtJCmpI:
		return fmt.Sprintf("%s if i%d %s i%d -> %d", name, in.A, ccNames[in.C], in.B, in.Imm)
	case FmtJCmpIImm:
		return fmt.Sprintf("%s if i%d %s #%d -> %d", name, in.A, ccNames[in.B], in.Imm, in.C)
	case FmtJCmpF:
		return fmt.Sprintf("%s if f%d %s f%d -> %d", name, in.A, ccNames[in.C], in.B, in.Imm)
	default:
		return fmt.Sprintf("%s a=%d b=%d c=%d imm=%d", name, in.A, in.B, in.C, in.Imm)
	}
}
