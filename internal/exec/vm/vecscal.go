package vm

import "math"

// scalRun executes the maximal run of scalarized instructions starting
// at *pc — instructions whose destination (and therefore operands) are
// group-uniform execute exactly once per dispatch against the frame's
// scalar slots, mirroring the scalar VM arm for arm. Counter charges
// are the same per-item constants the vector arms use (one charge per
// dispatch IS the per-item count), and a taken jump still spends W
// fuel: W items each took one step.
//
// Returns done=false when dispatch should continue in the vector
// switch at the updated *pc. Otherwise the run ended the whole
// dispatch: the join point was reached (joined), a lane would have
// faulted — all lanes, the operands are uniform — and the frame is
// parked pre-instruction and uncounted for the scalar rerun
// (Diverged), or the budget drained (Halted with the error).
func (p *VecFunc) scalRun(f *VecFrame, a0p, a1p *uint64, pcp *int, wd int64) (Status, bool, error) {
	code := p.Code
	si, sf := f.SI, f.SF
	mi, mf := f.mi, f.mf
	a0, a1 := *a0p, *a1p
	pc := *pcp
	out := func() {
		*a0p, *a1p, *pcp = a0, a1, pc
	}
	for pc < len(code) {
		if pc == f.Stop {
			out()
			p.exitVec(f, a0, a1, pc)
			return joined, true, nil
		}
		if !p.scal[pc] {
			out()
			return 0, false, nil
		}
		in := &code[pc]
		switch in.Op {
		case OpMovI:
			si[in.A&mi] = si[in.B&mi]
		case OpMovF:
			sf[in.A&mf] = sf[in.B&mf]
		case OpLdcI:
			si[in.A&mi] = in.Imm
		case OpLdcF:
			sf[in.A&mf] = p.FPool[in.Imm]
		case OpI2F:
			sf[in.A&mf] = float64(si[in.B&mi])
		case OpF2I:
			si[in.A&mi] = int64(sf[in.B&mf])
		case OpSnzI:
			si[in.A&mi] = b2i(si[in.B&mi] != 0)

		case OpAddI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] + si[in.C&mi]
		case OpSubI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] - si[in.C&mi]
		case OpMulI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] * si[in.C&mi]
		case OpDivI:
			if si[in.C&mi] == 0 {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] / si[in.C&mi]
		case OpModI:
			if si[in.C&mi] == 0 {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] % si[in.C&mi]
		case OpAndI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] & si[in.C&mi]
		case OpOrI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] | si[in.C&mi]
		case OpXorI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] ^ si[in.C&mi]
		case OpShlI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] << uint(si[in.C&mi]&63)
		case OpShrI:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] >> uint(si[in.C&mi]&63)
		case OpNegI:
			a0 += lIntOp
			si[in.A&mi] = -si[in.B&mi]
		case OpNotB:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] == 0)

		case OpAddIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] + in.Imm
		case OpMulIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] * in.Imm
		case OpDivIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] / in.Imm
		case OpModIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] % in.Imm
		case OpShlIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] << uint(in.Imm&63)
		case OpShrIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] >> uint(in.Imm&63)
		case OpAndIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] & in.Imm
		case OpOrIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] | in.Imm
		case OpXorIImm:
			a0 += lIntOp
			si[in.A&mi] = si[in.B&mi] ^ in.Imm

		case OpLtI:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] < si[in.C&mi])
		case OpLeI:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] <= si[in.C&mi])
		case OpGtI:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] > si[in.C&mi])
		case OpGeI:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] >= si[in.C&mi])
		case OpEqI:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] == si[in.C&mi])
		case OpNeI:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] != si[in.C&mi])

		case OpLtIImm:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] < in.Imm)
		case OpLeIImm:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] <= in.Imm)
		case OpGtIImm:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] > in.Imm)
		case OpGeIImm:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] >= in.Imm)
		case OpEqIImm:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] == in.Imm)
		case OpNeIImm:
			a0 += lIntOp
			si[in.A&mi] = b2i(si[in.B&mi] != in.Imm)

		case OpAddF:
			a0 += lFloatOp
			sf[in.A&mf] = sf[in.B&mf] + sf[in.C&mf]
		case OpSubF:
			a0 += lFloatOp
			sf[in.A&mf] = sf[in.B&mf] - sf[in.C&mf]
		case OpMulF:
			a0 += lFloatOp
			sf[in.A&mf] = sf[in.B&mf] * sf[in.C&mf]
		case OpDivF:
			a0 += lFloatOp
			sf[in.A&mf] = sf[in.B&mf] / sf[in.C&mf]
		case OpNegF:
			a0 += lFloatOp
			sf[in.A&mf] = -sf[in.B&mf]

		case OpLtF:
			a0 += lFloatOp
			si[in.A&mi] = b2i(sf[in.B&mf] < sf[in.C&mf])
		case OpLeF:
			a0 += lFloatOp
			si[in.A&mi] = b2i(sf[in.B&mf] <= sf[in.C&mf])
		case OpGtF:
			a0 += lFloatOp
			si[in.A&mi] = b2i(sf[in.B&mf] > sf[in.C&mf])
		case OpGeF:
			a0 += lFloatOp
			si[in.A&mi] = b2i(sf[in.B&mf] >= sf[in.C&mf])
		case OpEqF:
			a0 += lFloatOp
			si[in.A&mi] = b2i(sf[in.B&mf] == sf[in.C&mf])
		case OpNeF:
			a0 += lFloatOp
			si[in.A&mi] = b2i(sf[in.B&mf] != sf[in.C&mf])

		case OpJZBr:
			a1 += lBranch
			if si[in.A&mi] == 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					out()
					p.exitVec(f, a0, a1, pc)
					return Halted, true, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJZLog:
			a0 += lIntOp
			if si[in.A&mi] == 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					out()
					p.exitVec(f, a0, a1, pc)
					return Halted, true, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJNZLog:
			a0 += lIntOp
			if si[in.A&mi] != 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					out()
					p.exitVec(f, a0, a1, pc)
					return Halted, true, err
				}
				pc = int(in.Imm)
				continue
			}

		case OpWI:
			a0 += lIntOp
			si[in.A&mi] = f.WI[in.B][in.C][0]
		case OpWIDyn:
			dim := si[in.C&mi]
			if uint64(dim) > 2 {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lIntOp
			si[in.A&mi] = f.WI[in.B][dim][0]

		case OpLdGF:
			b := &f.Globals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lGLoad
			sf[in.A&mf] = float64(b.F[i])
		case OpLdGI:
			b := &f.Globals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.I)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lGLoad
			si[in.A&mi] = int64(b.I[i])
		case OpLdLF:
			b := &f.Locals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a1 += lLocalOp
			sf[in.A&mf] = float64(b.F[i])
		case OpLdLI:
			b := &f.Locals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.I)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a1 += lLocalOp
			si[in.A&mi] = int64(b.I[i])

		case OpStGF:
			// Scalarized store: uniform value to a uniform index. Every
			// item writes the same value to the same cell, so one store
			// retires the W of them; the count stays per-item.
			b := &f.Globals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a1 += lGStore
			b.F[i] = float32(sf[in.A&mf])
		case OpStGI:
			b := &f.Globals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.I)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a1 += lGStore
			b.I[i] = int32(si[in.A&mi])
		case OpStLF:
			b := &f.Locals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a1 += lLocalOp
			b.F[i] = float32(sf[in.A&mf])
		case OpStLI:
			b := &f.Locals[in.B]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(b.I)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a1 += lLocalOp
			b.I[i] = int32(si[in.A&mi])

		case OpSqrtF:
			a0 += lTransOp
			sf[in.A&mf] = math.Sqrt(sf[in.B&mf])
		case OpRsqrtF:
			a0 += lTransOp
			sf[in.A&mf] = 1 / math.Sqrt(sf[in.B&mf])
		case OpExpF:
			a0 += lTransOp
			sf[in.A&mf] = math.Exp(sf[in.B&mf])
		case OpLogF:
			a0 += lTransOp
			sf[in.A&mf] = math.Log(sf[in.B&mf])
		case OpLog2F:
			a0 += lTransOp
			sf[in.A&mf] = math.Log2(sf[in.B&mf])
		case OpSinF:
			a0 += lTransOp
			sf[in.A&mf] = math.Sin(sf[in.B&mf])
		case OpCosF:
			a0 += lTransOp
			sf[in.A&mf] = math.Cos(sf[in.B&mf])
		case OpTanF:
			a0 += lTransOp
			sf[in.A&mf] = math.Tan(sf[in.B&mf])
		case OpPowF:
			a0 += lTransOp
			sf[in.A&mf] = math.Pow(sf[in.B&mf], sf[in.C&mf])
		case OpAbsF:
			a0 += lOtherB
			sf[in.A&mf] = math.Abs(sf[in.B&mf])
		case OpFloorF:
			a0 += lOtherB
			sf[in.A&mf] = math.Floor(sf[in.B&mf])
		case OpCeilF:
			a0 += lOtherB
			sf[in.A&mf] = math.Ceil(sf[in.B&mf])
		case OpMinF:
			a0 += lOtherB
			sf[in.A&mf] = math.Min(sf[in.B&mf], sf[in.C&mf])
		case OpMaxF:
			a0 += lOtherB
			sf[in.A&mf] = math.Max(sf[in.B&mf], sf[in.C&mf])
		case OpFmaF:
			a0 += lOtherB
			sf[in.A&mf] = sf[in.B&mf]*sf[in.C&mf] + sf[int32(in.Imm)&mf]
		case OpClampF:
			a0 += lOtherB
			sf[in.A&mf] = math.Max(sf[in.C&mf], math.Min(sf[in.B&mf], sf[int32(in.Imm)&mf]))

		case OpMinI:
			a0 += lOtherB
			si[in.A&mi] = min(si[in.B&mi], si[in.C&mi])
		case OpMaxI:
			a0 += lOtherB
			si[in.A&mi] = max(si[in.B&mi], si[in.C&mi])
		case OpAbsI:
			a0 += lOtherB
			v := si[in.B&mi]
			if v < 0 {
				v = -v
			}
			si[in.A&mi] = v
		case OpClampI:
			a0 += lOtherB
			si[in.A&mi] = max(si[in.C&mi], min(si[in.B&mi], si[int32(in.Imm)&mi]))

		case OpMulAddI:
			a0 += 2 * lIntOp
			si[in.A&mi] = si[in.B&mi]*si[in.C&mi] + si[int32(in.Imm)&mi]
		case OpMulImmAddI:
			a0 += 2 * lIntOp
			si[in.A&mi] = si[in.B&mi]*in.Imm + si[in.C&mi]
		case OpMulAddF:
			a0 += 2 * lFloatOp
			// Explicit conversion as in the scalar arm: the product
			// rounds separately, never contracted into an FMA.
			sf[in.A&mf] = float64(sf[in.B&mf]*sf[in.C&mf]) + sf[int32(in.Imm)&mf]
		case OpMulMulF:
			a0 += 2 * lFloatOp
			sf[in.A&mf] = float64(sf[in.B&mf]*sf[in.C&mf]) * sf[int32(in.Imm)&mf]
		case OpAddRsqrtF:
			a0 += lFloatOp + lTransOp
			sf[in.A&mf] = 1 / math.Sqrt(sf[in.B&mf]+sf[in.C&mf])

		case OpAddFLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(bb.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lFloatOp + lGLoad
			sf[in.A&mf] = sf[in.B&mf] + float64(bb.F[i])
		case OpMulFLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(bb.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lFloatOp + lGLoad
			sf[in.A&mf] = sf[in.B&mf] * float64(bb.F[i])
		case OpSubFLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(bb.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lFloatOp + lGLoad
			sf[in.A&mf] = sf[in.B&mf] - float64(bb.F[i])
		case OpLdSubFG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(bb.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += lFloatOp + lGLoad
			sf[in.A&mf] = float64(bb.F[i]) - sf[in.B&mf]
		case OpMulAccLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			i := si[in.C&mi]
			if uint64(i) >= uint64(len(bb.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += 2*lFloatOp + lGLoad
			sf[in.A&mf] = sf[in.A&mf] + float64(sf[in.B&mf]*float64(bb.F[i]))
		case OpLdGFIdx:
			slot, _, r3 := unpackMemIdx(in.Imm)
			bb := &f.Globals[slot]
			v := si[in.B&mi]*si[in.C&mi] + si[r3&mi]
			if uint64(v) >= uint64(len(bb.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += 2*lIntOp + lGLoad
			sf[in.A&mf] = float64(bb.F[v])
		case OpMacLdGIdx:
			slot, _, r2, r3 := unpackMacIdx(in.Imm)
			bb := &f.Globals[slot]
			v := si[in.C&mi]*si[r2&mi] + si[r3&mi]
			if uint64(v) >= uint64(len(bb.F)) {
				out()
				p.exitVec(f, a0, a1, pc)
				return Diverged, true, nil
			}
			a0 += 2*lIntOp + 2*lFloatOp + lGLoad
			sf[in.A&mf] = sf[in.A&mf] + float64(sf[in.B&mf]*float64(bb.F[v]))

		case OpJCmpI:
			a0 += lIntOp
			a1 += lBranch
			if ccHoldsI(in.C, si[in.A&mi], si[in.B&mi]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					out()
					p.exitVec(f, a0, a1, pc)
					return Halted, true, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJCmpIImm:
			a0 += lIntOp
			a1 += lBranch
			if ccHoldsI(in.B, si[in.A&mi], in.Imm) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					out()
					p.exitVec(f, a0, a1, pc)
					return Halted, true, err
				}
				pc = int(in.C)
				continue
			}
		case OpJCmpF:
			a0 += lFloatOp
			a1 += lBranch
			if ccHoldsF(in.C, sf[in.A&mf], sf[in.B&mf]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					out()
					p.exitVec(f, a0, a1, pc)
					return Halted, true, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpIncJCmpI:
			a0 += 2 * lIntOp
			a1 += lBranch
			v := si[in.A&mi] + si[in.B&mi]
			si[in.A&mi] = v
			cc, target := unpackCcTarget(in.Imm)
			if ccHoldsI(cc, v, si[in.C&mi]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					out()
					p.exitVec(f, a0, a1, pc)
					return Halted, true, err
				}
				pc = int(target)
				continue
			}

		default:
			// scal is only ever set for the formats above; treat
			// anything else as vector work.
			out()
			return 0, false, nil
		}
		pc++
	}
	out()
	p.exitVec(f, a0, a1, pc)
	return Halted, true, nil
}
