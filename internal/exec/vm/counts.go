package vm

import "fmt"

// Batched profile counting. Every opcode's counter contribution is
// static — OpAddI is always one IntOp, OpMacLdGIdx is always two
// IntOps, one global load and two FloatOps — so the dispatch loop does
// not need to bump memory-resident counters per instruction. Instead
// the nine countable fields are packed into 12-bit lanes of two uint64
// words (five lanes in word 0, four in word 1) held in a pair of
// register accumulators, and each counting arm folds its contribution
// in with a single add of a compile-time lane constant. The
// accumulators are unpacked into the frame's Counts only when lane
// headroom runs out or the item exits.
//
// Lane overflow is bounded statically: Compile rejects kernels whose
// per-lane code totals exceed a lane (thousands of counted ops, far
// beyond real kernels), so one linear pass over the code can add at
// most maxLane to any lane. Taken jumps — the only way to execute more
// than one linear pass — decrement a spill countdown carried in the
// unused top bits of the second accumulator word and spill when it
// runs out, so no lane can ever overflow into its neighbor.
//
// Fault parity is the delicate part. The per-instruction scheme
// counted div/mod-by-zero, bad OpWIDyn dimensions and budget-exhausted
// jumps BEFORE faulting, but checked load/store bounds before
// counting. The arms preserve that by placement: count-then-check ops
// add their constant at the top of the arm, check-then-count ops after
// the bounds check, so profiles remain byte-identical with the closure
// tier and with earlier VM builds.

const (
	laneBits = 12
	laneMax  = 1<<laneBits - 1

	// The spill countdown lives in the top bits of accumulator word 1
	// (lanes use only 48 of its 64 bits). Run seeds it with Func.room
	// and spends one roomOne per taken jump; addPacked's lane masks
	// ignore the countdown bits.
	roomShift = 48
	roomOne   = 1 << roomShift

	// Per-lane unit constants for the dispatch arms: one counted op of
	// a given class is a single constant add to the right accumulator.
	// Word 0 lanes (a0).
	lIntOp   = 1
	lFloatOp = 1 << laneBits
	lTransOp = 1 << (2 * laneBits)
	lOtherB  = 1 << (3 * laneBits)
	lGLoad   = 1 << (4 * laneBits)
	// Word 1 lanes (a1).
	lGStore  = 1
	lLocalOp = 1 << laneBits
	lBranch  = 1 << (2 * laneBits)
	lBarrier = 1 << (3 * laneBits)
)

// staticCounts returns op's fixed contribution to the profile.
func staticCounts(op Opcode) Counts {
	var c Counts
	switch op {
	case OpAddI, OpSubI, OpMulI, OpDivI, OpModI, OpAndI, OpOrI, OpXorI,
		OpShlI, OpShrI, OpNegI, OpNotB,
		OpAddIImm, OpMulIImm, OpDivIImm, OpModIImm, OpShlIImm, OpShrIImm,
		OpAndIImm, OpOrIImm, OpXorIImm,
		OpLtI, OpLeI, OpGtI, OpGeI, OpEqI, OpNeI,
		OpLtIImm, OpLeIImm, OpGtIImm, OpGeIImm, OpEqIImm, OpNeIImm,
		OpJZLog, OpJNZLog, OpWI, OpWIDyn:
		c.IntOps = 1
	case OpMulAddI, OpMulImmAddI:
		c.IntOps = 2
	case OpAddF, OpSubF, OpMulF, OpDivF, OpNegF,
		OpLtF, OpLeF, OpGtF, OpGeF, OpEqF, OpNeF:
		c.FloatOps = 1
	case OpMulAddF, OpMulMulF:
		c.FloatOps = 2
	case OpSqrtF, OpRsqrtF, OpExpF, OpLogF, OpLog2F, OpSinF, OpCosF,
		OpTanF, OpPowF:
		c.TransOps = 1
	case OpAbsF, OpFloorF, OpCeilF, OpMinF, OpMaxF, OpFmaF, OpClampF,
		OpMinI, OpMaxI, OpAbsI, OpClampI:
		c.OtherBuiltins = 1
	case OpLdGF, OpLdGI:
		c.GlobalLoads = 1
	case OpStGF, OpStGI:
		c.GlobalStores = 1
	case OpLdLF, OpLdLI, OpStLF, OpStLI:
		c.LocalOps = 1
	case OpJZBr:
		c.Branches = 1
	case OpBar:
		c.Barriers = 1
	case OpAddFLdG, OpMulFLdG, OpSubFLdG, OpLdSubFG:
		c.GlobalLoads = 1
		c.FloatOps = 1
	case OpMulAccLdG:
		c.GlobalLoads = 1
		c.FloatOps = 2
	case OpAddRsqrtF:
		c.FloatOps = 1
		c.TransOps = 1
	case OpLdGFIdx:
		c.IntOps = 2
		c.GlobalLoads = 1
	case OpMacLdGIdx:
		c.IntOps = 2
		c.GlobalLoads = 1
		c.FloatOps = 2
	case OpJCmpI, OpJCmpIImm:
		c.IntOps = 1
		c.Branches = 1
	case OpJCmpF:
		c.FloatOps = 1
		c.Branches = 1
	case OpIncJCmpI:
		c.IntOps = 2
		c.Branches = 1
	}
	return c
}

// addPacked unpacks two accumulator words into the counter struct.
func (c *Counts) addPacked(a0, a1 uint64) {
	c.IntOps += int64(a0 & laneMax)
	c.FloatOps += int64(a0 >> laneBits & laneMax)
	c.TransOps += int64(a0 >> (2 * laneBits) & laneMax)
	c.OtherBuiltins += int64(a0 >> (3 * laneBits) & laneMax)
	c.GlobalLoads += int64(a0 >> (4 * laneBits) & laneMax)
	c.GlobalStores += int64(a1 & laneMax)
	c.LocalOps += int64(a1 >> laneBits & laneMax)
	c.Branches += int64(a1 >> (2 * laneBits) & laneMax)
	c.Barriers += int64(a1 >> (3 * laneBits) & laneMax)
}

// buildProfile checks the code's counter totals against the lane
// limit and derives the spill cadence. Called once at the end of
// compilation, after fusion has settled the final code.
func (p *Func) buildProfile() error {
	var sum Counts
	for i := range p.Code {
		c := staticCounts(p.Code[i].Op)
		sum.IntOps += c.IntOps
		sum.FloatOps += c.FloatOps
		sum.TransOps += c.TransOps
		sum.OtherBuiltins += c.OtherBuiltins
		sum.GlobalLoads += c.GlobalLoads
		sum.GlobalStores += c.GlobalStores
		sum.LocalOps += c.LocalOps
		sum.Branches += c.Branches
		sum.Barriers += c.Barriers
	}
	maxLane := int64(1)
	for _, v := range [...]int64{
		sum.IntOps, sum.FloatOps, sum.TransOps, sum.OtherBuiltins,
		sum.GlobalLoads, sum.GlobalStores, sum.LocalOps, sum.Branches,
		sum.Barriers,
	} {
		if v > laneMax {
			return fmt.Errorf("exec: vm: kernel %s too large to profile (%d counted ops, lane limit %d)", p.Name, v, laneMax)
		}
		maxLane = max(maxLane, v)
	}
	// One linear pass over the code adds at most maxLane to any
	// accumulator lane, so room passes are always safe before a spill
	// is forced.
	p.room = laneMax / int(maxLane)
	return nil
}

// exit spills the accumulated lanes into the frame's counters and
// parks the PC. One call on every way out of the dispatch loop; cold
// relative to the loop itself.
func (p *Func) exit(f *Frame, a0, a1 uint64, pc int) {
	f.Cnt.addPacked(a0, a1)
	f.PC = pc
}
