package vm

import "testing"

// TestSuspendResume drives the barrier protocol directly: with no
// Barrier callback, Run must stop at each barrier with Suspended and
// continue from the saved PC on the next call.
func TestSuspendResume(t *testing.T) {
	src := `
kernel void k(global float* out, local float* tile, int n) {
	int l = get_local_id(0);
	tile[l] = (float)l;
	barrier(1);
	out[l] = tile[l] + 1.0f;
	barrier(1);
	out[l] = out[l] * 2.0f;
}`
	p := compileKernel(t, "susp", src, "k", Options{})
	f := p.NewFrame()
	f.Globals = []Buf{{F: make([]float32, 4)}}
	f.Locals = []Buf{{F: make([]float32, 4)}}
	f.WI[WILocalSize] = [3]int64{4, 1, 1}
	f.WI[WIGlobalSize] = [3]int64{4, 1, 1}
	f.WI[WINumGroups] = [3]int64{1, 1, 1}
	f.WI[WILocalID] = [3]int64{2, 0, 0}
	f.WI[WIGlobalID] = [3]int64{2, 0, 0}
	// n is the only scalar param.
	for _, pr := range p.Params {
		if pr.Kind == ParamInt {
			f.I[pr.Index] = 4
		}
	}

	suspends := 0
	for {
		st, err := p.Run(f)
		if err != nil {
			t.Fatal(err)
		}
		if st == Halted {
			break
		}
		suspends++
		if suspends > 2 {
			t.Fatalf("more suspends than barriers")
		}
	}
	if suspends != 2 {
		t.Fatalf("got %d suspends, want 2", suspends)
	}
	if got := f.Globals[0].F[2]; got != 6 {
		t.Fatalf("out[2] = %g, want 6", got)
	}
	if f.Cnt.Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2", f.Cnt.Barriers)
	}

	// With a callback installed, Run must block through both barriers
	// and halt in one call.
	f.Reset()
	calls := 0
	f.Barrier = func() { calls++ }
	st, err := p.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if st != Halted || calls != 2 {
		t.Fatalf("callback mode: status %v, calls %d", st, calls)
	}
}
