package vm

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestSuspendResume drives the barrier protocol directly: with no
// Barrier callback, Run must stop at each barrier with Suspended and
// continue from the saved PC on the next call.
func TestSuspendResume(t *testing.T) {
	src := `
kernel void k(global float* out, local float* tile, int n) {
	int l = get_local_id(0);
	tile[l] = (float)l;
	barrier(1);
	out[l] = tile[l] + 1.0f;
	barrier(1);
	out[l] = out[l] * 2.0f;
}`
	p := compileKernel(t, "susp", src, "k", Options{})
	f := p.NewFrame()
	f.Globals = []Buf{{F: make([]float32, 4)}}
	f.Locals = []Buf{{F: make([]float32, 4)}}
	f.WI[WILocalSize] = [3]int64{4, 1, 1}
	f.WI[WIGlobalSize] = [3]int64{4, 1, 1}
	f.WI[WINumGroups] = [3]int64{1, 1, 1}
	f.WI[WILocalID] = [3]int64{2, 0, 0}
	f.WI[WIGlobalID] = [3]int64{2, 0, 0}
	// n is the only scalar param.
	for _, pr := range p.Params {
		if pr.Kind == ParamInt {
			f.I[pr.Index] = 4
		}
	}

	suspends := 0
	for {
		st, err := p.Run(f)
		if err != nil {
			t.Fatal(err)
		}
		if st == Halted {
			break
		}
		suspends++
		if suspends > 2 {
			t.Fatalf("more suspends than barriers")
		}
	}
	if suspends != 2 {
		t.Fatalf("got %d suspends, want 2", suspends)
	}
	if got := f.Globals[0].F[2]; got != 6 {
		t.Fatalf("out[2] = %g, want 6", got)
	}
	if f.Cnt.Barriers != 2 {
		t.Fatalf("Barriers = %d, want 2", f.Cnt.Barriers)
	}

	// With a callback installed, Run must block through both barriers
	// and halt in one call.
	f.Reset()
	calls := 0
	f.Barrier = func() { calls++ }
	st, err := p.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if st != Halted || calls != 2 {
		t.Fatalf("callback mode: status %v, calls %d", st, calls)
	}
}

// vectorizeKernel compiles and vectorizes, failing the test on either.
func vectorizeKernel(t *testing.T, name, source, kernel string) *VecFunc {
	t.Helper()
	p := compileKernel(t, name, source, kernel, Options{})
	vp, err := Vectorize(p)
	if err != nil {
		t.Fatalf("%s: vectorize: %v", name, err)
	}
	return vp
}

// bindVecWI fills the launch-constant WI rows and the local-id ramp for
// a single 1-D group of w lanes starting at global id base.
func bindVecWI(f *VecFrame, w int, base int64) {
	for l := 0; l < w; l++ {
		f.WI[WIGlobalSize][0][l] = int64(w)
		f.WI[WILocalSize][0][l] = int64(w)
		for d := 1; d < 3; d++ {
			f.WI[WIGlobalSize][d][l] = 1
			f.WI[WILocalSize][d][l] = 1
			f.WI[WINumGroups][d][l] = 1
		}
		f.WI[WINumGroups][0][l] = 1
		f.WI[WILocalID][0][l] = int64(l)
		f.WI[WIGlobalID][0][l] = base + int64(l)
	}
}

// TestVecLaneRamps drives the vector tier directly: the global-id query
// must materialize as a per-lane ramp, and a gid-indexed store must
// scatter each lane to its own element in one dispatch.
func TestVecLaneRamps(t *testing.T) {
	src := `kernel void ramp(global float* out, int n) {
		int i = get_global_id(0);
		out[i] = (float)(i * 2);
	}`
	vp := vectorizeKernel(t, "ramp", src, "ramp")
	const w = 8
	f := vp.NewVecFrame(w)
	f.Globals = []Buf{{F: make([]float32, w)}}
	bindVecWI(f, w, 0)
	for _, pr := range vp.Params {
		if pr.Kind == ParamInt {
			f.SetI(pr.Index, w)
		}
	}
	st, err := vp.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if st != Halted {
		t.Fatalf("status = %v, want Halted", st)
	}
	for i, v := range f.Globals[0].F {
		if v != float32(2*i) {
			t.Fatalf("out[%d] = %g, want %g", i, v, float32(2*i))
		}
	}
	// Lane layout invariant: register r's lanes live at [r*W, r*W+W).
	for r := int32(0); r < int32(vp.NumI); r++ {
		lanes := f.lanesI(r)
		for l := range lanes {
			if &lanes[l] != &f.I[int(r)*w+l] {
				t.Fatalf("lanesI(%d)[%d] does not alias I[%d]", r, l, int(r)*w+l)
			}
		}
	}
}

// TestVecFramePow2 pins the pow2 register-file rounding on both frame
// kinds: masks must cover the file exactly.
func TestVecFramePow2(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 8, 9, 17} {
		want := ceilPow2(n)
		if want&(want-1) != 0 || want < 1 || want < n || (want > 1 && want/2 >= n) {
			t.Fatalf("ceilPow2(%d) = %d", n, want)
		}
	}
	p := &Func{NumI: 5, NumF: 3}
	sf := p.NewFrame()
	if len(sf.I) != 8 || len(sf.F) != 4 {
		t.Fatalf("scalar frame files %d/%d, want 8/4", len(sf.I), len(sf.F))
	}
	vp := &VecFunc{Func: p}
	vf := vp.NewVecFrame(4)
	if len(vf.I) != 8*4 || len(vf.F) != 4*4 || vf.mi != 7 || vf.mf != 3 {
		t.Fatalf("vec frame files %d/%d masks %d/%d", len(vf.I), len(vf.F), vf.mi, vf.mf)
	}
}

// TestVectorizeRejects pins the eligibility rules: varying loop
// back-edges, varying branches inside loop bodies, and varying fused
// loop counters must all refuse to vectorize.
func TestVectorizeRejects(t *testing.T) {
	cases := []struct {
		name, src, kernel, wantErr string
	}{
		{
			name: "varying_trip_count",
			src: `kernel void k(global float* out, int n) {
				int i = get_global_id(0);
				float acc = 0.0f;
				for (int j = 0; j < i % 7; j = j + 1) {
					acc = acc + 1.0f;
				}
				out[i] = acc;
			}`,
			kernel: "k", wantErr: "loop",
		},
		{
			name: "varying_branch_in_loop",
			src: `kernel void k(global float* a, global float* out, int n) {
				int i = get_global_id(0);
				float acc = 0.0f;
				for (int j = 0; j < n; j = j + 1) {
					if (a[i + j] > 0.5f) {
						acc = acc + 1.0f;
					}
				}
				out[i] = acc;
			}`,
			kernel: "k", wantErr: "inside loop body",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := compileKernel(t, tc.name, tc.src, tc.kernel, Options{})
			if _, err := Vectorize(p); err == nil {
				t.Fatalf("vectorized, want rejection")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	// And the admitted shape: a varying forward guard outside any loop.
	vp := vectorizeKernel(t, "guard", `kernel void k(global float* out, int n) {
		int i = get_global_id(0);
		if (i < n) { out[i] = 1.0f; }
	}`, "k")
	if uni, total := vp.UniformConds(); total != 1 || uni != 0 {
		t.Fatalf("guard kernel conds = %d/%d, want 0/1", uni, total)
	}
	// A branch on a uniform-index load inside a loop is admitted now:
	// lockstep lanes load the same cell, so the condition is uniform.
	vp = vectorizeKernel(t, "uload", `kernel void k(global float* a, global float* out, int n) {
		int i = get_global_id(0);
		float acc = 0.0f;
		for (int j = 0; j < n; j = j + 1) {
			if (a[j] > 0.5f) {
				acc = acc + a[j];
			}
		}
		out[i] = acc;
	}`, "k")
	if uni, total := vp.UniformConds(); uni != total {
		t.Fatalf("uniform-load kernel conds = %d/%d, want all uniform", uni, total)
	}
}

// TestVecDivergenceReconverges: when lanes disagree at a varying
// branch whose region has a safe join point, Run must split the group,
// run both sides masked, and re-form at the join — finishing the whole
// group W-wide with per-lane counts instead of bailing to scalar.
func TestVecDivergenceReconverges(t *testing.T) {
	src := `kernel void k(global float* a, global float* out, int n) {
		int i = get_global_id(0);
		float x = a[i];
		if (x > 0.0f) {
			out[i] = x * 2.0f;
		} else {
			out[i] = -x;
		}
	}`
	vp := vectorizeKernel(t, "div", src, "k")
	const w = 4
	f := vp.NewVecFrame(w)
	in := make([]float32, w)
	for i := range in {
		in[i] = float32(1 - 2*(i%2)) // alternating signs: lanes disagree
	}
	f.Globals = []Buf{{F: in}, {F: make([]float32, w)}}
	bindVecWI(f, w, 0)
	for _, pr := range vp.Params {
		if pr.Kind == ParamInt {
			f.SetI(pr.Index, w)
		}
	}
	st, err := vp.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if st != Halted {
		t.Fatalf("status = %v, want Halted", st)
	}
	if f.Divergences != 1 || f.Reconverges != 1 {
		t.Fatalf("Divergences/Reconverges = %d/%d, want 1/1", f.Divergences, f.Reconverges)
	}
	for i, v := range f.Globals[1].F {
		want := -in[i]
		if in[i] > 0 {
			want = in[i] * 2
		}
		if v != want {
			t.Fatalf("out[%d] = %g, want %g", i, v, want)
		}
	}
	// Counts went per-lane at the split: each item still saw exactly
	// one conditional branch, whichever side it took.
	if !f.Laned {
		t.Fatal("re-converged frame has no per-lane counts")
	}
	for l := 0; l < w; l++ {
		if c := f.LaneCounts(l); c.Branches != 1 {
			t.Fatalf("lane %d Branches = %d, want 1", l, c.Branches)
		}
	}
}

// TestVecDivergenceParksPC: a divergent region that is ineligible for
// re-formation (here: a store through a uniform index, whose side-order
// writes could differ from canonical item order) must take the full
// bail — Diverged with the PC parked at the branch and the branch
// itself uncounted, so a scalar rerun re-executes it exactly once.
func TestVecDivergenceParksPC(t *testing.T) {
	src := `kernel void k(global float* a, global float* out, int n) {
		int i = get_global_id(0);
		float x = a[i];
		if (x > 0.0f) {
			out[0] = x;
		}
		out[i] = x;
	}`
	vp := vectorizeKernel(t, "divbail", src, "k")
	const w = 4
	f := vp.NewVecFrame(w)
	in := make([]float32, w)
	for i := range in {
		in[i] = float32(1 - 2*(i%2)) // alternating signs: lanes disagree
	}
	f.Globals = []Buf{{F: in}, {F: make([]float32, w)}}
	bindVecWI(f, w, 0)
	for _, pr := range vp.Params {
		if pr.Kind == ParamInt {
			f.SetI(pr.Index, w)
		}
	}
	st, err := vp.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if st != Diverged {
		t.Fatalf("status = %v, want Diverged", st)
	}
	if f.PCLaned {
		t.Fatal("full bail must park a single shared PC")
	}
	in2 := &vp.Code[f.PC]
	if _, ok := condJumpTarget(in2, f.PC); !ok || vp.condUniform[f.PC] {
		t.Fatalf("parked PC %d is not a varying conditional jump", f.PC)
	}
	if f.Divergences != 1 {
		t.Fatalf("Divergences = %d, want 1", f.Divergences)
	}
	if f.Cnt.Branches != 0 {
		t.Fatalf("diverging branch was counted: Branches = %d", f.Cnt.Branches)
	}
	for _, v := range f.Globals[1].F {
		if v != 0 {
			t.Fatalf("store retired before divergence: out = %v", f.Globals[1].F)
		}
	}
}

// TestVecScalarization pins the uniform-scalarization analysis: a
// kernel whose loop counter, bound, and scale parameter are all uniform
// must report scalarized instructions and still produce exact results,
// with the uniform registers living in the scalar slots.
func TestVecScalarization(t *testing.T) {
	src := `kernel void k(global float* x, global float* out, float alpha, int n) {
		int i = get_global_id(0);
		float acc = 0.0f;
		for (int j = 0; j < n; j = j + 1) {
			acc = acc + alpha * x[j];
		}
		out[i] = acc + (float)i;
	}`
	vp := vectorizeKernel(t, "scal", src, "k")
	if vp.ScalarizedOps() == 0 {
		t.Fatal("no scalarized instructions in a uniform-loop kernel")
	}
	const w = 8
	f := vp.NewVecFrame(w)
	in := make([]float32, w)
	for i := range in {
		in[i] = float32(i) + 0.5
	}
	f.Globals = []Buf{{F: in}, {F: make([]float32, w)}}
	bindVecWI(f, w, 0)
	for _, pr := range vp.Params {
		switch pr.Kind {
		case ParamInt:
			f.SetI(pr.Index, w)
		case ParamFloat:
			f.SetF(pr.Index, 3)
		}
	}
	st, err := vp.Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if st != Halted {
		t.Fatalf("status = %v, want Halted", st)
	}
	acc := 0.0
	for j := range in {
		acc = acc + 3*float64(in[j])
	}
	for i, v := range f.Globals[1].F {
		if want := float32(acc + float64(i)); v != want {
			t.Fatalf("out[%d] = %g, want %g", i, v, want)
		}
	}
}

// TestVecBudgetExhaustionMidGroup: a spinning vectorized group must
// abort with a structured steps error once the shared budget drains —
// fuel is charged W per taken jump, so exhaustion hits mid-group.
func TestVecBudgetExhaustionMidGroup(t *testing.T) {
	src := `kernel void spin(global float* out) {
		int i = 0;
		while (i < 2) {
			i = i - 1;
		}
		out[get_global_id(0)] = 1.0;
	}`
	vp := vectorizeKernel(t, "spin", src, "spin")
	const w = 16
	f := vp.NewVecFrame(w)
	f.Globals = []Buf{{F: make([]float32, w)}}
	bindVecWI(f, w, 0)
	f.B = NewBudget(context.Background(), 100_000, 0)
	_, err := vp.Run(f)
	if err == nil {
		t.Fatal("spin completed under a step budget")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Kind != BudgetSteps {
		t.Fatalf("err = %v, want steps BudgetError", err)
	}
}
