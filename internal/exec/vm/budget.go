package vm

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Resource budgets for untrusted kernels.
//
// A Budget bounds one launch (or one request spanning several chunked
// launches) along three axes: executed steps, allocated buffer bytes,
// and wall-clock time. Enforcement is amortized so that trusted,
// unbudgeted launches pay almost nothing: each frame carries a local
// fuel counter decremented at loop back-edges (taken jumps in the VM,
// loop iterations and helper calls in the closure tier), and only the
// slow path — refilling an exhausted lease — touches the shared atomic
// step pool and checks the deadline and the context. Leases stay finite
// whenever a deadline or a context is attached, so even a kernel with an
// unlimited step budget re-checks the clock every few thousand
// iterations and can never outlive its deadline by more than one lease.
//
// The Budget lives in this package (the innermost execution layer) so
// both tiers can share it; package exec re-exports the types under their
// public names (exec.Budget, exec.BudgetError).

// Budget exhaustion kinds, reported in BudgetError.Kind.
const (
	BudgetSteps    = "steps"
	BudgetMemory   = "memory"
	BudgetDeadline = "deadline"
)

// BudgetError is the structured, deterministic abort of a budgeted
// launch: which budget ran out, how much was spent, and the limit.
// Spent and Limit are steps, bytes, or milliseconds depending on Kind.
type BudgetError struct {
	Kind  string `json:"kind"` // "steps", "memory" or "deadline"
	Spent int64  `json:"spent"`
	Limit int64  `json:"limit"`
}

func (e *BudgetError) Error() string {
	switch e.Kind {
	case BudgetMemory:
		return fmt.Sprintf("exec: memory budget exceeded: %d bytes charged, limit %d", e.Spent, e.Limit)
	case BudgetDeadline:
		if e.Limit > 0 {
			return fmt.Sprintf("exec: deadline exceeded after %dms (budget %dms)", e.Spent, e.Limit)
		}
		return fmt.Sprintf("exec: execution canceled after %dms", e.Spent)
	default:
		return fmt.Sprintf("exec: step budget exhausted: %d steps, limit %d", e.Spent, e.Limit)
	}
}

// stepLease is how many steps a frame takes from the shared pool at
// once. Large enough that the atomic slow path is amortized to noise,
// small enough that deadline checks stay responsive (a few thousand
// loop iterations between clock reads).
const stepLease = 4096

// unboundedFuel is the lease handed to frames with nothing to enforce:
// effectively infinite, so the slow path runs once per frame lifetime.
const unboundedFuel = math.MaxInt64 / 2

// Budget is a shared, concurrency-safe resource budget for one launch.
// All methods are safe on a nil receiver (no limits enforced), so
// unbudgeted callers pass nil without branching.
type Budget struct {
	steps atomic.Int64 // remaining step pool (only used when stepLimit > 0)
	mem   atomic.Int64 // bytes charged so far

	stepLimit int64
	memLimit  int64

	start       time.Time
	deadline    time.Time
	hasDeadline bool
	done        <-chan struct{}
}

// NewBudget builds a budget enforcing up to maxSteps executed steps and
// maxMemBytes of buffer allocation (either 0 = unlimited), plus the
// context's deadline and cancellation. Returns nil — the no-op budget —
// when there is nothing to enforce.
func NewBudget(ctx context.Context, maxSteps, maxMemBytes int64) *Budget {
	deadline, hasDeadline := ctx.Deadline()
	done := ctx.Done()
	if maxSteps <= 0 && maxMemBytes <= 0 && !hasDeadline && done == nil {
		return nil
	}
	b := &Budget{
		stepLimit:   max(maxSteps, 0),
		memLimit:    max(maxMemBytes, 0),
		start:       time.Now(),
		deadline:    deadline,
		hasDeadline: hasDeadline,
		done:        done,
	}
	b.steps.Store(b.stepLimit)
	return b
}

// TakeLease withdraws a batch of steps from the shared pool for one
// frame's local fuel counter. It is the enforcement slow path: it checks
// cancellation and the deadline, then the step pool. The returned lease
// is finite whenever any time bound exists, so frames re-enter this path
// periodically even with unlimited steps.
func (b *Budget) TakeLease() (int64, error) {
	if b == nil {
		return unboundedFuel, nil
	}
	if err := b.Expired(); err != nil {
		return 0, err
	}
	if b.stepLimit <= 0 {
		if !b.hasDeadline && b.done == nil {
			return unboundedFuel, nil
		}
		return stepLease, nil
	}
	for {
		cur := b.steps.Load()
		if cur <= 0 {
			return 0, &BudgetError{Kind: BudgetSteps, Spent: b.stepLimit, Limit: b.stepLimit}
		}
		take := int64(stepLease)
		if take > cur {
			take = cur
		}
		if b.steps.CompareAndSwap(cur, cur-take) {
			return take, nil
		}
	}
}

// ChargeMem records n bytes of buffer allocation against the memory
// budget, returning a BudgetError once the cumulative charge exceeds the
// limit. Charges are never refunded: the budget bounds how much a
// request may ever allocate, not its high-water mark.
func (b *Budget) ChargeMem(n int64) error {
	if b == nil || b.memLimit <= 0 || n <= 0 {
		return nil
	}
	if used := b.mem.Add(n); used > b.memLimit {
		return &BudgetError{Kind: BudgetMemory, Spent: used, Limit: b.memLimit}
	}
	return nil
}

// Expired reports (without blocking) whether the budget's context was
// canceled or its deadline passed. The group runner calls this between
// work groups, covering straight-line kernels that never touch fuel.
func (b *Budget) Expired() error {
	if b == nil {
		return nil
	}
	if b.done != nil {
		select {
		case <-b.done:
			return b.deadlineErr()
		default:
		}
	}
	if b.hasDeadline && time.Now().After(b.deadline) {
		return b.deadlineErr()
	}
	return nil
}

func (b *Budget) deadlineErr() *BudgetError {
	e := &BudgetError{Kind: BudgetDeadline, Spent: time.Since(b.start).Milliseconds()}
	if b.hasDeadline {
		e.Limit = b.deadline.Sub(b.start).Milliseconds()
	}
	return e
}

// refill replenishes the frame's fuel from its budget, returning the
// budget's error when the lease is denied. Called from Run's dispatch
// loop when fuel runs out.
func (f *Frame) refill() error {
	lease, err := f.B.TakeLease()
	if err != nil {
		return err
	}
	f.Fuel = lease
	return nil
}
