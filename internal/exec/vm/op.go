// Package vm executes INSPIRE kernels as compact register bytecode.
//
// It is the fast execution tier behind internal/exec: the closure-tree
// interpreter (exec/compile.go) pays an indirect Go call per IR node per
// work item, while this package lowers an already-sema-checked kernel to
// a flat []Instr over two register files (int64 and float64) and runs it
// in one tight switch-based dispatch loop. Helper calls are inlined at
// compile time, so a kernel is always a single flat code array with no
// call machinery, and a peephole pass fuses the common
// load-compute-store and index-arithmetic sequences into
// super-instructions.
//
// Dynamic operation counts (Counts) are maintained exactly as the
// closure tier maintains them — every instruction bumps the same
// counters the equivalent closure would have bumped, and fused
// super-instructions bump the sum of their parts — so profiles are
// byte-identical between tiers. The closure tier remains the
// always-available reference implementation (same role RangeNaive plays
// for profile range queries).
package vm

import "fmt"

// Opcode identifies one VM instruction.
type Opcode uint8

// Instruction set. Operand conventions are per-opcode and documented in
// the metadata registry below; broadly A is the destination register,
// B/C are source registers, and Imm holds an immediate, a jump target,
// a constant-pool index, or a packed memory operand.
const (
	OpNop Opcode = iota
	OpHalt

	// Moves and constants.
	OpMovI // I[A] = I[B]
	OpMovF // F[A] = F[B]
	OpLdcI // I[A] = Imm
	OpLdcF // F[A] = FPool[Imm]
	OpI2F  // F[A] = float64(I[B])
	OpF2I  // I[A] = int64(F[B])
	OpSnzI // I[A] = I[B] != 0 ? 1 : 0 (bool conversion; uncounted)

	// Integer ALU (IntOps++): I[A] = I[B] op I[C].
	OpAddI
	OpSubI
	OpMulI
	OpDivI
	OpModI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpNegI // I[A] = -I[B]
	OpNotB // I[A] = !I[B] (logical not on 0/1)

	// Integer ALU with immediate (IntOps++): I[A] = I[B] op Imm.
	OpAddIImm
	OpMulIImm
	OpDivIImm // Imm != 0, checked at fuse time
	OpModIImm
	OpShlIImm
	OpShrIImm
	OpAndIImm
	OpOrIImm
	OpXorIImm

	// Integer comparisons (IntOps++): I[A] = I[B] cmp I[C] ? 1 : 0.
	OpLtI
	OpLeI
	OpGtI
	OpGeI
	OpEqI
	OpNeI

	// Integer comparisons with immediate (IntOps++): I[A] = I[B] cmp Imm.
	OpLtIImm
	OpLeIImm
	OpGtIImm
	OpGeIImm
	OpEqIImm
	OpNeIImm

	// Float ALU (FloatOps++): F[A] = F[B] op F[C].
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF // F[A] = -F[B]

	// Float comparisons (FloatOps++): I[A] = F[B] cmp F[C] ? 1 : 0.
	OpLtF
	OpLeF
	OpGtF
	OpGeF
	OpEqF
	OpNeF

	// Control flow. Targets are absolute instruction indices.
	OpJmp    // pc = Imm
	OpJZBr   // Branches++; if I[A] == 0 pc = Imm (If/While/For/Select)
	OpJZLog  // IntOps++;   if I[A] == 0 pc = Imm (short-circuit &&)
	OpJNZLog // IntOps++;   if I[A] != 0 pc = Imm (short-circuit ||)

	// Work-item queries (IntOps++). B is the WIQuery, the dimension is
	// the constant C (OpWI) or read from I[C] with a range check (OpWIDyn).
	OpWI
	OpWIDyn

	// Memory. B = buffer slot, C = index register, Imm = name-pool index
	// for fault messages. Loads/stores count GlobalLoads/GlobalStores
	// (global space) or LocalOps (local space), exactly like the closures.
	OpLdGF // F[A] = globals[B].F[I[C]]
	OpLdGI // I[A] = globals[B].I[I[C]]
	OpLdLF // F[A] = locals[B].F[I[C]]
	OpLdLI // I[A] = locals[B].I[I[C]]
	OpStGF // globals[B].F[I[C]] = float32(F[A])
	OpStGI // globals[B].I[I[C]] = int32(I[A])
	OpStLF // locals[B].F[I[C]] = float32(F[A])
	OpStLI // locals[B].I[I[C]] = int32(I[A])

	// Float builtins. Unary: F[A] = op(F[B]). Binary: F[A] = op(F[B], F[C]).
	// Transcendentals count TransOps++, the rest OtherBuiltins++.
	OpSqrtF
	OpRsqrtF
	OpExpF
	OpLogF
	OpLog2F
	OpSinF
	OpCosF
	OpTanF
	OpPowF
	OpAbsF
	OpFloorF
	OpCeilF
	OpMinF
	OpMaxF
	OpFmaF   // F[A] = F[B]*F[C] + F[Imm] (unfused multiply-add, like the closure)
	OpClampF // F[A] = max(F[C], min(F[B], F[Imm]))

	// Integer builtins (OtherBuiltins++).
	OpMinI
	OpMaxI
	OpAbsI   // I[A] = |I[B]|
	OpClampI // I[A] = max(I[C], min(I[B], I[Imm]))

	// Work-group barrier (Barriers++). Calls Frame.Barrier when set,
	// otherwise suspends the frame (lockstep execution).
	OpBar

	// Super-instructions, produced only by the peephole fuser. Each
	// counts exactly what its unfused sequence would have counted.
	OpMulAddI    // IntOps += 2;   I[A] = I[B]*I[C] + I[Imm]
	OpMulImmAddI // IntOps += 2;   I[A] = I[B]*imm + I[C] (imm packed in Imm)
	OpMulAddF    // FloatOps += 2; F[A] = F[B]*F[C] + F[Imm]
	OpAddFLdG    // FloatOps++, GlobalLoads++; F[A] = F[B] + load(packed, I[C])
	OpMulFLdG    // FloatOps++, GlobalLoads++; F[A] = F[B] * load(packed, I[C])
	OpJCmpI      // IntOps++, Branches++;   if I[A] cc(C) I[B] pc = Imm
	OpJCmpIImm   // IntOps++, Branches++;   if I[A] cc(B) imm(Imm) pc = C
	OpJCmpF      // FloatOps++, Branches++; if F[A] cc(C) F[B] pc = Imm
	OpSubFLdG    // FloatOps++, GlobalLoads++; F[A] = F[B] - load(packed, I[C])
	OpLdSubFG    // FloatOps++, GlobalLoads++; F[A] = load(packed, I[C]) - F[B]
	OpMulAccLdG  // FloatOps += 2, GlobalLoads++; F[A] += F[B] * load(packed, I[C])
	OpMulMulF    // FloatOps += 2; F[A] = F[B]*F[C]*F[Imm] (two rounded multiplies)
	OpLdGFIdx    // IntOps += 2, GlobalLoads++; F[A] = load(slot, I[B]*I[C]+I[r])
	OpMacLdGIdx  // IntOps += 2, FloatOps += 2, GlobalLoads++; F[A] += F[B]*load(slot, I[C]*I[r2]+I[r3])
	OpIncJCmpI   // IntOps += 2, Branches++; I[A] += I[B]; if I[A] cc I[C] pc = target (cc|target in Imm)
	OpAddRsqrtF  // FloatOps++, TransOps++; F[A] = 1/sqrt(F[B]+F[C]) (softened inverse distance)

	opCount // sentinel
)

// Condition codes for OpJCmp*.
const (
	CcLt = iota
	CcLe
	CcGt
	CcGe
	CcEq
	CcNe
)

var ccNames = [...]string{CcLt: "lt", CcLe: "le", CcGt: "gt", CcGe: "ge", CcEq: "eq", CcNe: "ne"}

// invCc inverts a condition code (for loop rotation: the back-jump runs
// the loop test with the opposite sense of the exiting head compare).
var invCc = [...]int32{CcLt: CcGe, CcLe: CcGt, CcGt: CcLe, CcGe: CcLt, CcEq: CcNe, CcNe: CcEq}

// Instr is one VM instruction. The operand meaning is per-opcode (see
// the opcode comments); unused fields are zero.
type Instr struct {
	Op      Opcode
	A, B, C int32
	Imm     int64
}

// Fmt describes an opcode's operand shape, for the disassembler and the
// peephole fuser's register-use analysis.
type Fmt uint8

// Operand formats.
const (
	FmtNone    Fmt = iota
	FmtIabc        // I[A] <- I[B], I[C]
	FmtIab         // I[A] <- I[B]
	FmtIabImm      // I[A] <- I[B], Imm
	FmtIaImm       // I[A] <- Imm
	FmtFabc        // F[A] <- F[B], F[C]
	FmtFab         // F[A] <- F[B]
	FmtFaPool      // F[A] <- FPool[Imm]
	FmtFaIb        // F[A] <- I[B]
	FmtIaFb        // I[A] <- F[B]
	FmtIaFbc       // I[A] <- F[B], F[C]
	FmtFabcImm     // F[A] <- F[B], F[C], F[Imm]
	FmtIabcImm     // I[A] <- I[B], I[C], I[Imm]
	FmtMulImmAdd   // I[A] <- I[B]*imm, I[C]
	FmtJmp         // pc <- Imm
	FmtJCond       // test I[A]; pc <- Imm
	FmtWI          // I[A] <- query B, const dim C
	FmtWIDyn       // I[A] <- query B, dim I[C]
	FmtLoadF       // F[A] <- buf B [I[C]]
	FmtLoadI       // I[A] <- buf B [I[C]]
	FmtStoreF      // buf B [I[C]] <- F[A]
	FmtStoreI      // buf B [I[C]] <- I[A]
	FmtFusedLdF    // F[A] <- F[B] op load(packed Imm, I[C])
	FmtJCmpI       // if I[A] cc(C) I[B]: pc <- Imm
	FmtJCmpIImm    // if I[A] cc(B) imm(Imm): pc <- C
	FmtJCmpF       // if F[A] cc(C) F[B]: pc <- Imm
	FmtFusedMacF   // F[A] <- F[A] + F[B] * load(packed Imm, I[C])
	FmtLdIdxF      // F[A] <- buf [I[B]*I[C] + I[r]], packed Imm
	FmtMacIdxF     // F[A] <- F[A] + F[B] * buf [I[C]*I[r2] + I[r3]], packed Imm
	FmtIncJCmpI    // I[A] += I[B]; if I[A] cc I[C]: pc <- target
	FmtBar
)

// OpInfo is the registered metadata of one opcode: its mnemonic, its
// operand format, and whether the peephole pass created it (super).
type OpInfo struct {
	Name  string
	Fmt   Fmt
	Super bool
}

var opTable [opCount]OpInfo

// registerOp records opcode metadata; duplicate registration panics so
// mnemonic collisions are caught at init.
func registerOp(op Opcode, name string, f Fmt, super bool) {
	if opTable[op].Name != "" {
		panic(fmt.Sprintf("vm: opcode %d (%s) already registered", op, opTable[op].Name))
	}
	opTable[op] = OpInfo{Name: name, Fmt: f, Super: super}
}

// LookupOp returns the metadata registered for an opcode.
func LookupOp(op Opcode) (OpInfo, bool) {
	if int(op) >= len(opTable) || opTable[op].Name == "" {
		return OpInfo{}, false
	}
	return opTable[op], true
}

// String returns the opcode mnemonic.
func (op Opcode) String() string {
	if info, ok := LookupOp(op); ok {
		return info.Name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

func init() {
	registerOp(OpNop, "nop", FmtNone, false)
	registerOp(OpHalt, "halt", FmtNone, false)
	registerOp(OpMovI, "mov.i", FmtIab, false)
	registerOp(OpMovF, "mov.f", FmtFab, false)
	registerOp(OpLdcI, "ldc.i", FmtIaImm, false)
	registerOp(OpLdcF, "ldc.f", FmtFaPool, false)
	registerOp(OpI2F, "i2f", FmtFaIb, false)
	registerOp(OpF2I, "f2i", FmtIaFb, false)
	registerOp(OpSnzI, "snz.i", FmtIab, false)
	registerOp(OpAddI, "add.i", FmtIabc, false)
	registerOp(OpSubI, "sub.i", FmtIabc, false)
	registerOp(OpMulI, "mul.i", FmtIabc, false)
	registerOp(OpDivI, "div.i", FmtIabc, false)
	registerOp(OpModI, "mod.i", FmtIabc, false)
	registerOp(OpAndI, "and.i", FmtIabc, false)
	registerOp(OpOrI, "or.i", FmtIabc, false)
	registerOp(OpXorI, "xor.i", FmtIabc, false)
	registerOp(OpShlI, "shl.i", FmtIabc, false)
	registerOp(OpShrI, "shr.i", FmtIabc, false)
	registerOp(OpNegI, "neg.i", FmtIab, false)
	registerOp(OpNotB, "not.b", FmtIab, false)
	registerOp(OpAddIImm, "add.i.k", FmtIabImm, true)
	registerOp(OpMulIImm, "mul.i.k", FmtIabImm, true)
	registerOp(OpDivIImm, "div.i.k", FmtIabImm, true)
	registerOp(OpModIImm, "mod.i.k", FmtIabImm, true)
	registerOp(OpShlIImm, "shl.i.k", FmtIabImm, true)
	registerOp(OpShrIImm, "shr.i.k", FmtIabImm, true)
	registerOp(OpAndIImm, "and.i.k", FmtIabImm, true)
	registerOp(OpOrIImm, "or.i.k", FmtIabImm, true)
	registerOp(OpXorIImm, "xor.i.k", FmtIabImm, true)
	registerOp(OpLtI, "lt.i", FmtIabc, false)
	registerOp(OpLeI, "le.i", FmtIabc, false)
	registerOp(OpGtI, "gt.i", FmtIabc, false)
	registerOp(OpGeI, "ge.i", FmtIabc, false)
	registerOp(OpEqI, "eq.i", FmtIabc, false)
	registerOp(OpNeI, "ne.i", FmtIabc, false)
	registerOp(OpLtIImm, "lt.i.k", FmtIabImm, true)
	registerOp(OpLeIImm, "le.i.k", FmtIabImm, true)
	registerOp(OpGtIImm, "gt.i.k", FmtIabImm, true)
	registerOp(OpGeIImm, "ge.i.k", FmtIabImm, true)
	registerOp(OpEqIImm, "eq.i.k", FmtIabImm, true)
	registerOp(OpNeIImm, "ne.i.k", FmtIabImm, true)
	registerOp(OpAddF, "add.f", FmtFabc, false)
	registerOp(OpSubF, "sub.f", FmtFabc, false)
	registerOp(OpMulF, "mul.f", FmtFabc, false)
	registerOp(OpDivF, "div.f", FmtFabc, false)
	registerOp(OpNegF, "neg.f", FmtFab, false)
	registerOp(OpLtF, "lt.f", FmtIaFbc, false)
	registerOp(OpLeF, "le.f", FmtIaFbc, false)
	registerOp(OpGtF, "gt.f", FmtIaFbc, false)
	registerOp(OpGeF, "ge.f", FmtIaFbc, false)
	registerOp(OpEqF, "eq.f", FmtIaFbc, false)
	registerOp(OpNeF, "ne.f", FmtIaFbc, false)
	registerOp(OpJmp, "jmp", FmtJmp, false)
	registerOp(OpJZBr, "jz.br", FmtJCond, false)
	registerOp(OpJZLog, "jz.and", FmtJCond, false)
	registerOp(OpJNZLog, "jnz.or", FmtJCond, false)
	registerOp(OpWI, "wi", FmtWI, false)
	registerOp(OpWIDyn, "wi.dyn", FmtWIDyn, false)
	registerOp(OpLdGF, "ld.gf", FmtLoadF, false)
	registerOp(OpLdGI, "ld.gi", FmtLoadI, false)
	registerOp(OpLdLF, "ld.lf", FmtLoadF, false)
	registerOp(OpLdLI, "ld.li", FmtLoadI, false)
	registerOp(OpStGF, "st.gf", FmtStoreF, false)
	registerOp(OpStGI, "st.gi", FmtStoreI, false)
	registerOp(OpStLF, "st.lf", FmtStoreF, false)
	registerOp(OpStLI, "st.li", FmtStoreI, false)
	registerOp(OpSqrtF, "sqrt.f", FmtFab, false)
	registerOp(OpRsqrtF, "rsqrt.f", FmtFab, false)
	registerOp(OpExpF, "exp.f", FmtFab, false)
	registerOp(OpLogF, "log.f", FmtFab, false)
	registerOp(OpLog2F, "log2.f", FmtFab, false)
	registerOp(OpSinF, "sin.f", FmtFab, false)
	registerOp(OpCosF, "cos.f", FmtFab, false)
	registerOp(OpTanF, "tan.f", FmtFab, false)
	registerOp(OpPowF, "pow.f", FmtFabc, false)
	registerOp(OpAbsF, "abs.f", FmtFab, false)
	registerOp(OpFloorF, "floor.f", FmtFab, false)
	registerOp(OpCeilF, "ceil.f", FmtFab, false)
	registerOp(OpMinF, "min.f", FmtFabc, false)
	registerOp(OpMaxF, "max.f", FmtFabc, false)
	registerOp(OpFmaF, "fma.f", FmtFabcImm, false)
	registerOp(OpClampF, "clamp.f", FmtFabcImm, false)
	registerOp(OpMinI, "min.i", FmtIabc, false)
	registerOp(OpMaxI, "max.i", FmtIabc, false)
	registerOp(OpAbsI, "abs.i", FmtIab, false)
	registerOp(OpClampI, "clamp.i", FmtIabcImm, false)
	registerOp(OpBar, "barrier", FmtBar, false)
	registerOp(OpMulAddI, "muladd.i", FmtIabcImm, true)
	registerOp(OpMulImmAddI, "mulkadd.i", FmtMulImmAdd, true)
	registerOp(OpMulAddF, "muladd.f", FmtFabcImm, true)
	registerOp(OpAddFLdG, "addld.f", FmtFusedLdF, true)
	registerOp(OpMulFLdG, "mulld.f", FmtFusedLdF, true)
	registerOp(OpJCmpI, "jcmp.i", FmtJCmpI, true)
	registerOp(OpJCmpIImm, "jcmp.i.k", FmtJCmpIImm, true)
	registerOp(OpJCmpF, "jcmp.f", FmtJCmpF, true)
	registerOp(OpSubFLdG, "subld.f", FmtFusedLdF, true)
	registerOp(OpLdSubFG, "ldsub.f", FmtFusedLdF, true)
	registerOp(OpMulAccLdG, "macld.f", FmtFusedMacF, true)
	registerOp(OpMulMulF, "mulmul.f", FmtFabcImm, true)
	registerOp(OpLdGFIdx, "ldidx.f", FmtLdIdxF, true)
	registerOp(OpMacLdGIdx, "macidx.f", FmtMacIdxF, true)
	registerOp(OpIncJCmpI, "addjcmp.i", FmtIncJCmpI, true)
	registerOp(OpAddRsqrtF, "addrsqrt.f", FmtFabc, true)
}

// destReg reports the register an instruction writes, if any, and
// which file it lives in. Jumps (except the fused counter), stores,
// barriers, nop and halt write no register. The vector tier's
// uniformity analysis keys on this to find region-safe divergence
// joins.
func destReg(in *Instr) (isF bool, r int32, ok bool) {
	info, known := LookupOp(in.Op)
	if !known {
		return false, 0, false
	}
	switch info.Fmt {
	case FmtIab, FmtIabc, FmtIabImm, FmtIaImm, FmtIaFb, FmtIaFbc,
		FmtIabcImm, FmtMulImmAdd, FmtWI, FmtWIDyn, FmtLoadI, FmtIncJCmpI:
		return false, in.A, true
	case FmtFab, FmtFabc, FmtFaPool, FmtFaIb, FmtFabcImm,
		FmtLoadF, FmtFusedLdF, FmtFusedMacF, FmtLdIdxF, FmtMacIdxF:
		return true, in.A, true
	}
	return false, 0, false
}

// packMem packs a buffer slot and a name-pool index into the Imm field
// of a fused load super-instruction.
func packMem(slot int32, name int32) int64 { return int64(slot)<<32 | int64(uint32(name)) }

func unpackMem(imm int64) (slot int32, name int32) {
	return int32(imm >> 32), int32(uint32(imm))
}

// packMemIdx packs a buffer slot, name-pool index, and the addend
// register of a fused multiply-add index: slot<<48 | reg<<32 | name.
// Fuse-time range guards keep every field in bounds.
func packMemIdx(slot, name, reg int32) int64 {
	return int64(slot)<<48 | int64(reg)<<32 | int64(uint32(name))
}

func unpackMemIdx(imm int64) (slot, name, reg int32) {
	return int32(imm >> 48), int32(uint32(imm)), int32((imm >> 32) & 0xffff)
}

// packMacIdx packs the memory operand of macidx.f, whose index needs two
// more registers: slot<<48 | r3<<32 | r2<<16 | name (name and registers
// each limited to 16 bits, guarded at fuse time).
func packMacIdx(slot, name, r2, r3 int32) int64 {
	return int64(slot)<<48 | int64(r3)<<32 | int64(r2)<<16 | int64(uint16(name))
}

func unpackMacIdx(imm int64) (slot, name, r2, r3 int32) {
	return int32(imm >> 48), int32(imm & 0xffff), int32((imm >> 16) & 0xffff), int32((imm >> 32) & 0xffff)
}

// packCcTarget packs a condition code and jump target for addjcmp.i.
func packCcTarget(cc int32, target int64) int64 { return int64(cc)<<32 | target }

func unpackCcTarget(imm int64) (cc int32, target int64) {
	return int32(imm >> 32), int64(uint32(imm))
}
