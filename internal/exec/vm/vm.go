package vm

import (
	"fmt"
	"math"
)

// Counts mirrors exec.Counts field-for-field so the two convert
// directly; the VM bumps exactly the counters the closure tier bumps.
type Counts struct {
	Items         int64
	IntOps        int64
	FloatOps      int64
	TransOps      int64
	OtherBuiltins int64
	GlobalLoads   int64
	GlobalStores  int64
	LocalOps      int64
	Branches      int64
	Barriers      int64
	MaxItemOps    int64
}

// Buf is a typed buffer view. Exactly one of F or I is non-nil; the
// slices alias the executor's backing buffers.
type Buf struct {
	F []float32
	I []int32
}

// ParamKind classifies a kernel parameter for argument binding.
type ParamKind uint8

// Parameter kinds.
const (
	ParamInt    ParamKind = iota // scalar in I[Index]
	ParamFloat                   // scalar in F[Index]
	ParamGlobal                  // global buffer in Globals[Index]
	ParamLocal                   // local buffer in Locals[Index]
)

// Param maps one kernel parameter to its register or buffer slot.
type Param struct {
	Kind  ParamKind
	Index int32
}

// Func is a compiled kernel: flat bytecode over two register files plus
// the constant pools and binding metadata.
type Func struct {
	Name  string
	Code  []Instr
	FPool []float64 // float constants, indexed by OpLdcF Imm
	Names []string  // buffer names for fault messages

	NumI, NumF           int // register file sizes (variables + temporaries)
	NumGlobals, NumLocal int // buffer slot table sizes
	Params               []Param
	Fused                int // super-instructions created by the peephole pass

	// room seeds the packed-counter spill countdown (see counts.go).
	room int
}

// Status reports how a Run call ended.
type Status uint8

// Run statuses.
const (
	// Halted: the work item finished (end of kernel or return).
	Halted Status = iota
	// Suspended: the work item reached a barrier with no Barrier
	// callback installed; Run resumes after the barrier on the next call.
	Suspended
)

// Frame.WI row indices, matching inspire.WIQuery order.
const (
	WIGlobalID = iota
	WILocalID
	WIGroupID
	WIGlobalSize
	WILocalSize
	WINumGroups
)

// Frame is the per-work-item execution state: the register files, the
// bound buffers, the NDRange coordinates, and the dynamic counts.
type Frame struct {
	I []int64
	F []float64

	Globals []Buf
	Locals  []Buf

	// WI holds the six work-item query vectors indexed by
	// inspire.WIQuery order: gid, lid, group, gsize, lsize, ngroups.
	WI [6][3]int64

	Cnt Counts
	PC  int

	// Barrier, when non-nil, is invoked at OpBar (blocking barrier
	// modes). When nil, OpBar suspends the frame instead (lockstep).
	Barrier func()

	// Fuel is the frame's local step allowance, decremented at taken
	// jumps (one per loop iteration). When it underflows, Run refills it
	// from B; a nil B grants an effectively unlimited lease. Fuel
	// deliberately survives Reset so a lease spans work items.
	Fuel int64
	B    *Budget
}

// spend burns one unit of fuel, refilling the lease from the budget on
// underflow. The fast path is a decrement and compare; only lease
// boundaries touch the shared budget.
func (f *Frame) spend() error {
	f.Fuel--
	if f.Fuel >= 0 {
		return nil
	}
	return f.refill()
}

// NewFrame allocates a frame sized for fn. Buffers, scalar arguments
// and WI vectors are bound by the caller.
func (fn *Func) NewFrame() *Frame {
	// Register files are rounded up to powers of two so Run can mask
	// register indices instead of bounds-checking them; nothing outside
	// the VM observes the padding.
	f := &Frame{
		I: make([]int64, ceilPow2(fn.NumI)),
		F: make([]float64, ceilPow2(fn.NumF)),
	}
	if fn.NumGlobals > 0 {
		f.Globals = make([]Buf, fn.NumGlobals)
	}
	if fn.NumLocal > 0 {
		f.Locals = make([]Buf, fn.NumLocal)
	}
	return f
}

// Reset rewinds the frame to the kernel entry and clears its counts.
// Registers keep their values: scalar parameters stay bound, and every
// local variable is re-initialized by its declaration instruction.
func (f *Frame) Reset() {
	f.PC = 0
	f.Cnt = Counts{}
}

func ccHoldsI(cc int32, l, r int64) bool {
	switch cc {
	case CcLt:
		return l < r
	case CcLe:
		return l <= r
	case CcGt:
		return l > r
	case CcGe:
		return l >= r
	case CcEq:
		return l == r
	default:
		return l != r
	}
}

func ccHoldsF(cc int32, l, r float64) bool {
	switch cc {
	case CcLt:
		return l < r
	case CcLe:
		return l <= r
	case CcGt:
		return l > r
	case CcGe:
		return l >= r
	case CcEq:
		return l == r
	default:
		return l != r
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes the frame from its saved PC until the kernel halts, a
// barrier suspends it (Frame.Barrier == nil), or a fault occurs. Faults
// (out-of-bounds access, division by zero, bad work-item dimension)
// return errors with the same messages the closure tier throws.
//
// Profile counters are batched in two packed register accumulators
// (see counts.go): every opcode's counter contribution is a
// compile-time lane constant, so a counting arm is one register add
// instead of a memory counter bump, and the accumulators unpack into
// Frame.Cnt only when lane headroom runs out (checked at taken jumps,
// where the countdown bounds any linear stretch) or the item exits.
// Fault parity with the per-instruction scheme is kept by placement:
// instructions that counted before faulting (div/mod by zero, OpWIDyn,
// budget exhaustion at jumps, OpBar suspension) add their constant at
// the top of the arm; those that checked before counting (loads,
// stores) add it after the bounds check.
func (p *Func) Run(f *Frame) (Status, error) {
	code := p.Code
	ri := f.I
	rf := f.F
	// Register files are pow2-sized (NewFrame), so masked indices can
	// never leave the file and the compiler elides the bounds checks.
	mi := int32(len(ri) - 1)
	mf := int32(len(rf) - 1)
	pc := f.PC
	// Packed counter accumulators. a1 carries the spill countdown in
	// its top bits (see counts.go): taken jumps decrement it, and a
	// countdown of zero forces a spill into f.Cnt, so no lane can ever
	// overflow into its neighbor within one linear stretch of code.
	var a0 uint64
	a1 := uint64(p.room) << roomShift
	for pc < len(code) {
		in := &code[pc]
		switch in.Op {
		case OpNop:
		case OpHalt:
			p.exit(f, a0, a1, pc)
			return Halted, nil

		case OpMovI:
			ri[in.A&mi] = ri[in.B&mi]
		case OpMovF:
			rf[in.A&mf] = rf[in.B&mf]
		case OpLdcI:
			ri[in.A&mi] = in.Imm
		case OpLdcF:
			rf[in.A&mf] = p.FPool[in.Imm]
		case OpI2F:
			rf[in.A&mf] = float64(ri[in.B&mi])
		case OpF2I:
			ri[in.A&mi] = int64(rf[in.B&mf])
		case OpSnzI:
			ri[in.A&mi] = b2i(ri[in.B&mi] != 0)

		case OpAddI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] + ri[in.C&mi]
		case OpSubI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] - ri[in.C&mi]
		case OpMulI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] * ri[in.C&mi]
		case OpDivI:
			a0 += lIntOp
			d := ri[in.C&mi]
			if d == 0 {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: integer division by zero")
			}
			ri[in.A&mi] = ri[in.B&mi] / d
		case OpModI:
			a0 += lIntOp
			d := ri[in.C&mi]
			if d == 0 {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: integer modulo by zero")
			}
			ri[in.A&mi] = ri[in.B&mi] % d
		case OpAndI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] & ri[in.C&mi]
		case OpOrI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] | ri[in.C&mi]
		case OpXorI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] ^ ri[in.C&mi]
		case OpShlI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] << uint(ri[in.C&mi]&63)
		case OpShrI:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] >> uint(ri[in.C&mi]&63)
		case OpNegI:
			a0 += lIntOp
			ri[in.A&mi] = -ri[in.B&mi]
		case OpNotB:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] == 0)

		case OpAddIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] + in.Imm
		case OpMulIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] * in.Imm
		case OpDivIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] / in.Imm
		case OpModIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] % in.Imm
		case OpShlIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] << uint(in.Imm&63)
		case OpShrIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] >> uint(in.Imm&63)
		case OpAndIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] & in.Imm
		case OpOrIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] | in.Imm
		case OpXorIImm:
			a0 += lIntOp
			ri[in.A&mi] = ri[in.B&mi] ^ in.Imm

		case OpLtI:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] < ri[in.C&mi])
		case OpLeI:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] <= ri[in.C&mi])
		case OpGtI:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] > ri[in.C&mi])
		case OpGeI:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] >= ri[in.C&mi])
		case OpEqI:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] == ri[in.C&mi])
		case OpNeI:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] != ri[in.C&mi])

		case OpLtIImm:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] < in.Imm)
		case OpLeIImm:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] <= in.Imm)
		case OpGtIImm:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] > in.Imm)
		case OpGeIImm:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] >= in.Imm)
		case OpEqIImm:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] == in.Imm)
		case OpNeIImm:
			a0 += lIntOp
			ri[in.A&mi] = b2i(ri[in.B&mi] != in.Imm)

		case OpAddF:
			a0 += lFloatOp
			rf[in.A&mf] = rf[in.B&mf] + rf[in.C&mf]
		case OpSubF:
			a0 += lFloatOp
			rf[in.A&mf] = rf[in.B&mf] - rf[in.C&mf]
		case OpMulF:
			a0 += lFloatOp
			rf[in.A&mf] = rf[in.B&mf] * rf[in.C&mf]
		case OpDivF:
			a0 += lFloatOp
			rf[in.A&mf] = rf[in.B&mf] / rf[in.C&mf]
		case OpNegF:
			a0 += lFloatOp
			rf[in.A&mf] = -rf[in.B&mf]

		case OpLtF:
			a0 += lFloatOp
			ri[in.A&mi] = b2i(rf[in.B&mf] < rf[in.C&mf])
		case OpLeF:
			a0 += lFloatOp
			ri[in.A&mi] = b2i(rf[in.B&mf] <= rf[in.C&mf])
		case OpGtF:
			a0 += lFloatOp
			ri[in.A&mi] = b2i(rf[in.B&mf] > rf[in.C&mf])
		case OpGeF:
			a0 += lFloatOp
			ri[in.A&mi] = b2i(rf[in.B&mf] >= rf[in.C&mf])
		case OpEqF:
			a0 += lFloatOp
			ri[in.A&mi] = b2i(rf[in.B&mf] == rf[in.C&mf])
		case OpNeF:
			a0 += lFloatOp
			ri[in.A&mi] = b2i(rf[in.B&mf] != rf[in.C&mf])

		case OpJmp:
			a1 -= roomOne
			if a1 < roomOne {
				f.Cnt.addPacked(a0, a1)
				a0, a1 = 0, uint64(p.room)<<roomShift
			}
			if err := f.spend(); err != nil {
				p.exit(f, a0, a1, pc)
				return Halted, err
			}
			pc = int(in.Imm)
			continue
		case OpJZBr:
			a1 += lBranch
			if ri[in.A&mi] == 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJZLog:
			a0 += lIntOp
			if ri[in.A&mi] == 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJNZLog:
			a0 += lIntOp
			if ri[in.A&mi] != 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}

		case OpWI:
			a0 += lIntOp
			ri[in.A&mi] = f.WI[in.B][in.C]
		case OpWIDyn:
			a0 += lIntOp
			d := ri[in.C&mi]
			if d < 0 || d > 2 {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: work-item query dimension %d out of range", d)
			}
			ri[in.A&mi] = f.WI[in.B][d]

		case OpLdGF:
			b := &f.Globals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a0 += lGLoad
			rf[in.A&mf] = float64(b.F[i])
		case OpLdGI:
			b := &f.Globals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a0 += lGLoad
			ri[in.A&mi] = int64(b.I[i])
		case OpLdLF:
			b := &f.Locals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a1 += lLocalOp
			rf[in.A&mf] = float64(b.F[i])
		case OpLdLI:
			b := &f.Locals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a1 += lLocalOp
			ri[in.A&mi] = int64(b.I[i])

		case OpStGF:
			b := &f.Globals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a1 += lGStore
			b.F[i] = float32(rf[in.A&mf])
		case OpStGI:
			b := &f.Globals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a1 += lGStore
			b.I[i] = int32(ri[in.A&mi])
		case OpStLF:
			b := &f.Locals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a1 += lLocalOp
			b.F[i] = float32(rf[in.A&mf])
		case OpStLI:
			b := &f.Locals[in.B]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a1 += lLocalOp
			b.I[i] = int32(ri[in.A&mi])

		case OpSqrtF:
			a0 += lTransOp
			rf[in.A&mf] = math.Sqrt(rf[in.B&mf])
		case OpRsqrtF:
			a0 += lTransOp
			rf[in.A&mf] = 1 / math.Sqrt(rf[in.B&mf])
		case OpExpF:
			a0 += lTransOp
			rf[in.A&mf] = math.Exp(rf[in.B&mf])
		case OpLogF:
			a0 += lTransOp
			rf[in.A&mf] = math.Log(rf[in.B&mf])
		case OpLog2F:
			a0 += lTransOp
			rf[in.A&mf] = math.Log2(rf[in.B&mf])
		case OpSinF:
			a0 += lTransOp
			rf[in.A&mf] = math.Sin(rf[in.B&mf])
		case OpCosF:
			a0 += lTransOp
			rf[in.A&mf] = math.Cos(rf[in.B&mf])
		case OpTanF:
			a0 += lTransOp
			rf[in.A&mf] = math.Tan(rf[in.B&mf])
		case OpPowF:
			a0 += lTransOp
			rf[in.A&mf] = math.Pow(rf[in.B&mf], rf[in.C&mf])
		case OpAbsF:
			a0 += lOtherB
			rf[in.A&mf] = math.Abs(rf[in.B&mf])
		case OpFloorF:
			a0 += lOtherB
			rf[in.A&mf] = math.Floor(rf[in.B&mf])
		case OpCeilF:
			a0 += lOtherB
			rf[in.A&mf] = math.Ceil(rf[in.B&mf])
		case OpMinF:
			a0 += lOtherB
			rf[in.A&mf] = math.Min(rf[in.B&mf], rf[in.C&mf])
		case OpMaxF:
			a0 += lOtherB
			rf[in.A&mf] = math.Max(rf[in.B&mf], rf[in.C&mf])
		case OpFmaF:
			a0 += lOtherB
			rf[in.A&mf] = rf[in.B&mf]*rf[in.C&mf] + rf[int32(in.Imm)&mf]
		case OpClampF:
			a0 += lOtherB
			rf[in.A&mf] = math.Max(rf[in.C&mf], math.Min(rf[in.B&mf], rf[int32(in.Imm)&mf]))

		case OpMinI:
			a0 += lOtherB
			ri[in.A&mi] = min(ri[in.B&mi], ri[in.C&mi])
		case OpMaxI:
			a0 += lOtherB
			ri[in.A&mi] = max(ri[in.B&mi], ri[in.C&mi])
		case OpAbsI:
			a0 += lOtherB
			v := ri[in.B&mi]
			if v < 0 {
				v = -v
			}
			ri[in.A&mi] = v
		case OpClampI:
			a0 += lOtherB
			ri[in.A&mi] = max(ri[in.C&mi], min(ri[in.B&mi], ri[int32(in.Imm)&mi]))

		case OpBar:
			a1 += lBarrier
			if f.Barrier != nil {
				f.Barrier()
			} else {
				p.exit(f, a0, a1, pc+1)
				return Suspended, nil
			}

		case OpMulAddI:
			a0 += 2 * lIntOp
			ri[in.A&mi] = ri[in.B&mi]*ri[in.C&mi] + ri[int32(in.Imm)&mi]
		case OpMulImmAddI:
			a0 += 2 * lIntOp
			ri[in.A&mi] = ri[in.B&mi]*in.Imm + ri[in.C&mi]
		case OpMulAddF:
			a0 += 2 * lFloatOp
			// The explicit conversion forces the product to round
			// separately, matching the unfused mul-then-add exactly
			// (Go may otherwise contract the pair into an FMA).
			rf[in.A&mf] = float64(rf[in.B&mf]*rf[in.C&mf]) + rf[int32(in.Imm)&mf]
		case OpAddFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A&mf] = rf[in.B&mf] + float64(b.F[i])
		case OpMulFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A&mf] = rf[in.B&mf] * float64(b.F[i])
		case OpSubFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A&mf] = rf[in.B&mf] - float64(b.F[i])
		case OpLdSubFG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A&mf] = float64(b.F[i]) - rf[in.B&mf]
		case OpMulAccLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += 2*lFloatOp + lGLoad
			rf[in.A&mf] = rf[in.A&mf] + float64(rf[in.B&mf]*float64(b.F[i]))
		case OpMulMulF:
			a0 += 2 * lFloatOp
			rf[in.A&mf] = float64(rf[in.B&mf]*rf[in.C&mf]) * rf[int32(in.Imm)&mf]
		case OpAddRsqrtF:
			a0 += lFloatOp + lTransOp
			rf[in.A&mf] = 1 / math.Sqrt(rf[in.B&mf]+rf[in.C&mf])
		case OpLdGFIdx:
			slot, name, r3 := unpackMemIdx(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.B&mi]*ri[in.C&mi] + ri[r3&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += 2*lIntOp + lGLoad
			rf[in.A&mf] = float64(b.F[i])
		case OpMacLdGIdx:
			slot, name, r2, r3 := unpackMacIdx(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C&mi]*ri[r2&mi] + ri[r3&mi]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += 2*lIntOp + 2*lFloatOp + lGLoad
			rf[in.A&mf] = rf[in.A&mf] + float64(rf[in.B&mf]*float64(b.F[i]))

		case OpJCmpI:
			a0 += lIntOp
			a1 += lBranch
			if ccHoldsI(in.C, ri[in.A&mi], ri[in.B&mi]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJCmpIImm:
			a0 += lIntOp
			a1 += lBranch
			if ccHoldsI(in.B, ri[in.A&mi], in.Imm) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.C)
				continue
			}
		case OpJCmpF:
			a0 += lFloatOp
			a1 += lBranch
			if ccHoldsF(in.C, rf[in.A&mf], rf[in.B&mf]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpIncJCmpI:
			a0 += 2 * lIntOp
			a1 += lBranch
			v := ri[in.A&mi] + ri[in.B&mi]
			ri[in.A&mi] = v
			if ccHoldsI(int32(in.Imm>>32), v, ri[in.C&mi]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(int64(uint32(in.Imm)))
				continue
			}

		default:
			p.exit(f, a0, a1, pc)
			return Halted, fmt.Errorf("exec: vm: illegal opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
	p.exit(f, a0, a1, pc)
	return Halted, nil
}
