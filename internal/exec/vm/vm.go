package vm

import (
	"fmt"
	"math"
)

// Counts mirrors exec.Counts field-for-field so the two convert
// directly; the VM bumps exactly the counters the closure tier bumps.
type Counts struct {
	Items         int64
	IntOps        int64
	FloatOps      int64
	TransOps      int64
	OtherBuiltins int64
	GlobalLoads   int64
	GlobalStores  int64
	LocalOps      int64
	Branches      int64
	Barriers      int64
	MaxItemOps    int64
}

// Buf is a typed buffer view. Exactly one of F or I is non-nil; the
// slices alias the executor's backing buffers.
type Buf struct {
	F []float32
	I []int32
}

// ParamKind classifies a kernel parameter for argument binding.
type ParamKind uint8

// Parameter kinds.
const (
	ParamInt    ParamKind = iota // scalar in I[Index]
	ParamFloat                   // scalar in F[Index]
	ParamGlobal                  // global buffer in Globals[Index]
	ParamLocal                   // local buffer in Locals[Index]
)

// Param maps one kernel parameter to its register or buffer slot.
type Param struct {
	Kind  ParamKind
	Index int32
}

// Func is a compiled kernel: flat bytecode over two register files plus
// the constant pools and binding metadata.
type Func struct {
	Name  string
	Code  []Instr
	FPool []float64 // float constants, indexed by OpLdcF Imm
	Names []string  // buffer names for fault messages

	NumI, NumF           int // register file sizes (variables + temporaries)
	NumGlobals, NumLocal int // buffer slot table sizes
	Params               []Param
	Fused                int // super-instructions created by the peephole pass

	// room seeds the packed-counter spill countdown (see counts.go).
	room int
}

// Status reports how a Run call ended.
type Status uint8

// Run statuses.
const (
	// Halted: the work item finished (end of kernel or return).
	Halted Status = iota
	// Suspended: the work item reached a barrier with no Barrier
	// callback installed; Run resumes after the barrier on the next call.
	Suspended
)

// Frame.WI row indices, matching inspire.WIQuery order.
const (
	WIGlobalID = iota
	WILocalID
	WIGroupID
	WIGlobalSize
	WILocalSize
	WINumGroups
)

// Frame is the per-work-item execution state: the register files, the
// bound buffers, the NDRange coordinates, and the dynamic counts.
type Frame struct {
	I []int64
	F []float64

	Globals []Buf
	Locals  []Buf

	// WI holds the six work-item query vectors indexed by
	// inspire.WIQuery order: gid, lid, group, gsize, lsize, ngroups.
	WI [6][3]int64

	Cnt Counts
	PC  int

	// Barrier, when non-nil, is invoked at OpBar (blocking barrier
	// modes). When nil, OpBar suspends the frame instead (lockstep).
	Barrier func()

	// Fuel is the frame's local step allowance, decremented at taken
	// jumps (one per loop iteration). When it underflows, Run refills it
	// from B; a nil B grants an effectively unlimited lease. Fuel
	// deliberately survives Reset so a lease spans work items.
	Fuel int64
	B    *Budget
}

// spend burns one unit of fuel, refilling the lease from the budget on
// underflow. The fast path is a decrement and compare; only lease
// boundaries touch the shared budget.
func (f *Frame) spend() error {
	f.Fuel--
	if f.Fuel >= 0 {
		return nil
	}
	return f.refill()
}

// NewFrame allocates a frame sized for fn. Buffers, scalar arguments
// and WI vectors are bound by the caller.
func (fn *Func) NewFrame() *Frame {
	f := &Frame{
		I: make([]int64, fn.NumI),
		F: make([]float64, fn.NumF),
	}
	if fn.NumGlobals > 0 {
		f.Globals = make([]Buf, fn.NumGlobals)
	}
	if fn.NumLocal > 0 {
		f.Locals = make([]Buf, fn.NumLocal)
	}
	return f
}

// Reset rewinds the frame to the kernel entry and clears its counts.
// Registers keep their values: scalar parameters stay bound, and every
// local variable is re-initialized by its declaration instruction.
func (f *Frame) Reset() {
	f.PC = 0
	f.Cnt = Counts{}
}

func ccHoldsI(cc int32, l, r int64) bool {
	switch cc {
	case CcLt:
		return l < r
	case CcLe:
		return l <= r
	case CcGt:
		return l > r
	case CcGe:
		return l >= r
	case CcEq:
		return l == r
	default:
		return l != r
	}
}

func ccHoldsF(cc int32, l, r float64) bool {
	switch cc {
	case CcLt:
		return l < r
	case CcLe:
		return l <= r
	case CcGt:
		return l > r
	case CcGe:
		return l >= r
	case CcEq:
		return l == r
	default:
		return l != r
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes the frame from its saved PC until the kernel halts, a
// barrier suspends it (Frame.Barrier == nil), or a fault occurs. Faults
// (out-of-bounds access, division by zero, bad work-item dimension)
// return errors with the same messages the closure tier throws.
//
// Profile counters are batched in two packed register accumulators
// (see counts.go): every opcode's counter contribution is a
// compile-time lane constant, so a counting arm is one register add
// instead of a memory counter bump, and the accumulators unpack into
// Frame.Cnt only when lane headroom runs out (checked at taken jumps,
// where the countdown bounds any linear stretch) or the item exits.
// Fault parity with the per-instruction scheme is kept by placement:
// instructions that counted before faulting (div/mod by zero, OpWIDyn,
// budget exhaustion at jumps, OpBar suspension) add their constant at
// the top of the arm; those that checked before counting (loads,
// stores) add it after the bounds check.
func (p *Func) Run(f *Frame) (Status, error) {
	code := p.Code
	ri := f.I
	rf := f.F
	pc := f.PC
	// Packed counter accumulators. a1 carries the spill countdown in
	// its top bits (see counts.go): taken jumps decrement it, and a
	// countdown of zero forces a spill into f.Cnt, so no lane can ever
	// overflow into its neighbor within one linear stretch of code.
	var a0 uint64
	a1 := uint64(p.room) << roomShift
	for pc < len(code) {
		in := &code[pc]
		switch in.Op {
		case OpNop:
		case OpHalt:
			p.exit(f, a0, a1, pc)
			return Halted, nil

		case OpMovI:
			ri[in.A] = ri[in.B]
		case OpMovF:
			rf[in.A] = rf[in.B]
		case OpLdcI:
			ri[in.A] = in.Imm
		case OpLdcF:
			rf[in.A] = p.FPool[in.Imm]
		case OpI2F:
			rf[in.A] = float64(ri[in.B])
		case OpF2I:
			ri[in.A] = int64(rf[in.B])
		case OpSnzI:
			ri[in.A] = b2i(ri[in.B] != 0)

		case OpAddI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] + ri[in.C]
		case OpSubI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] - ri[in.C]
		case OpMulI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] * ri[in.C]
		case OpDivI:
			a0 += lIntOp
			d := ri[in.C]
			if d == 0 {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: integer division by zero")
			}
			ri[in.A] = ri[in.B] / d
		case OpModI:
			a0 += lIntOp
			d := ri[in.C]
			if d == 0 {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: integer modulo by zero")
			}
			ri[in.A] = ri[in.B] % d
		case OpAndI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] & ri[in.C]
		case OpOrI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] | ri[in.C]
		case OpXorI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] ^ ri[in.C]
		case OpShlI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] << uint(ri[in.C]&63)
		case OpShrI:
			a0 += lIntOp
			ri[in.A] = ri[in.B] >> uint(ri[in.C]&63)
		case OpNegI:
			a0 += lIntOp
			ri[in.A] = -ri[in.B]
		case OpNotB:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] == 0)

		case OpAddIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] + in.Imm
		case OpMulIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] * in.Imm
		case OpDivIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] / in.Imm
		case OpModIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] % in.Imm
		case OpShlIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] << uint(in.Imm&63)
		case OpShrIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] >> uint(in.Imm&63)
		case OpAndIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] & in.Imm
		case OpOrIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] | in.Imm
		case OpXorIImm:
			a0 += lIntOp
			ri[in.A] = ri[in.B] ^ in.Imm

		case OpLtI:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] < ri[in.C])
		case OpLeI:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] <= ri[in.C])
		case OpGtI:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] > ri[in.C])
		case OpGeI:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] >= ri[in.C])
		case OpEqI:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] == ri[in.C])
		case OpNeI:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] != ri[in.C])

		case OpLtIImm:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] < in.Imm)
		case OpLeIImm:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] <= in.Imm)
		case OpGtIImm:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] > in.Imm)
		case OpGeIImm:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] >= in.Imm)
		case OpEqIImm:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] == in.Imm)
		case OpNeIImm:
			a0 += lIntOp
			ri[in.A] = b2i(ri[in.B] != in.Imm)

		case OpAddF:
			a0 += lFloatOp
			rf[in.A] = rf[in.B] + rf[in.C]
		case OpSubF:
			a0 += lFloatOp
			rf[in.A] = rf[in.B] - rf[in.C]
		case OpMulF:
			a0 += lFloatOp
			rf[in.A] = rf[in.B] * rf[in.C]
		case OpDivF:
			a0 += lFloatOp
			rf[in.A] = rf[in.B] / rf[in.C]
		case OpNegF:
			a0 += lFloatOp
			rf[in.A] = -rf[in.B]

		case OpLtF:
			a0 += lFloatOp
			ri[in.A] = b2i(rf[in.B] < rf[in.C])
		case OpLeF:
			a0 += lFloatOp
			ri[in.A] = b2i(rf[in.B] <= rf[in.C])
		case OpGtF:
			a0 += lFloatOp
			ri[in.A] = b2i(rf[in.B] > rf[in.C])
		case OpGeF:
			a0 += lFloatOp
			ri[in.A] = b2i(rf[in.B] >= rf[in.C])
		case OpEqF:
			a0 += lFloatOp
			ri[in.A] = b2i(rf[in.B] == rf[in.C])
		case OpNeF:
			a0 += lFloatOp
			ri[in.A] = b2i(rf[in.B] != rf[in.C])

		case OpJmp:
			a1 -= roomOne
			if a1 < roomOne {
				f.Cnt.addPacked(a0, a1)
				a0, a1 = 0, uint64(p.room)<<roomShift
			}
			if err := f.spend(); err != nil {
				p.exit(f, a0, a1, pc)
				return Halted, err
			}
			pc = int(in.Imm)
			continue
		case OpJZBr:
			a1 += lBranch
			if ri[in.A] == 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJZLog:
			a0 += lIntOp
			if ri[in.A] == 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJNZLog:
			a0 += lIntOp
			if ri[in.A] != 0 {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}

		case OpWI:
			a0 += lIntOp
			ri[in.A] = f.WI[in.B][in.C]
		case OpWIDyn:
			a0 += lIntOp
			d := ri[in.C]
			if d < 0 || d > 2 {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: work-item query dimension %d out of range", d)
			}
			ri[in.A] = f.WI[in.B][d]

		case OpLdGF:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a0 += lGLoad
			rf[in.A] = float64(b.F[i])
		case OpLdGI:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a0 += lGLoad
			ri[in.A] = int64(b.I[i])
		case OpLdLF:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a1 += lLocalOp
			rf[in.A] = float64(b.F[i])
		case OpLdLI:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a1 += lLocalOp
			ri[in.A] = int64(b.I[i])

		case OpStGF:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a1 += lGStore
			b.F[i] = float32(rf[in.A])
		case OpStGI:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a1 += lGStore
			b.I[i] = int32(ri[in.A])
		case OpStLF:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			a1 += lLocalOp
			b.F[i] = float32(rf[in.A])
		case OpStLI:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			a1 += lLocalOp
			b.I[i] = int32(ri[in.A])

		case OpSqrtF:
			a0 += lTransOp
			rf[in.A] = math.Sqrt(rf[in.B])
		case OpRsqrtF:
			a0 += lTransOp
			rf[in.A] = 1 / math.Sqrt(rf[in.B])
		case OpExpF:
			a0 += lTransOp
			rf[in.A] = math.Exp(rf[in.B])
		case OpLogF:
			a0 += lTransOp
			rf[in.A] = math.Log(rf[in.B])
		case OpLog2F:
			a0 += lTransOp
			rf[in.A] = math.Log2(rf[in.B])
		case OpSinF:
			a0 += lTransOp
			rf[in.A] = math.Sin(rf[in.B])
		case OpCosF:
			a0 += lTransOp
			rf[in.A] = math.Cos(rf[in.B])
		case OpTanF:
			a0 += lTransOp
			rf[in.A] = math.Tan(rf[in.B])
		case OpPowF:
			a0 += lTransOp
			rf[in.A] = math.Pow(rf[in.B], rf[in.C])
		case OpAbsF:
			a0 += lOtherB
			rf[in.A] = math.Abs(rf[in.B])
		case OpFloorF:
			a0 += lOtherB
			rf[in.A] = math.Floor(rf[in.B])
		case OpCeilF:
			a0 += lOtherB
			rf[in.A] = math.Ceil(rf[in.B])
		case OpMinF:
			a0 += lOtherB
			rf[in.A] = math.Min(rf[in.B], rf[in.C])
		case OpMaxF:
			a0 += lOtherB
			rf[in.A] = math.Max(rf[in.B], rf[in.C])
		case OpFmaF:
			a0 += lOtherB
			rf[in.A] = rf[in.B]*rf[in.C] + rf[in.Imm]
		case OpClampF:
			a0 += lOtherB
			rf[in.A] = math.Max(rf[in.C], math.Min(rf[in.B], rf[in.Imm]))

		case OpMinI:
			a0 += lOtherB
			ri[in.A] = min(ri[in.B], ri[in.C])
		case OpMaxI:
			a0 += lOtherB
			ri[in.A] = max(ri[in.B], ri[in.C])
		case OpAbsI:
			a0 += lOtherB
			v := ri[in.B]
			if v < 0 {
				v = -v
			}
			ri[in.A] = v
		case OpClampI:
			a0 += lOtherB
			ri[in.A] = max(ri[in.C], min(ri[in.B], ri[in.Imm]))

		case OpBar:
			a1 += lBarrier
			if f.Barrier != nil {
				f.Barrier()
			} else {
				p.exit(f, a0, a1, pc+1)
				return Suspended, nil
			}

		case OpMulAddI:
			a0 += 2 * lIntOp
			ri[in.A] = ri[in.B]*ri[in.C] + ri[in.Imm]
		case OpMulImmAddI:
			a0 += 2 * lIntOp
			ri[in.A] = ri[in.B]*in.Imm + ri[in.C]
		case OpMulAddF:
			a0 += 2 * lFloatOp
			// The explicit conversion forces the product to round
			// separately, matching the unfused mul-then-add exactly
			// (Go may otherwise contract the pair into an FMA).
			rf[in.A] = float64(rf[in.B]*rf[in.C]) + rf[in.Imm]
		case OpAddFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A] = rf[in.B] + float64(b.F[i])
		case OpMulFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A] = rf[in.B] * float64(b.F[i])
		case OpSubFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A] = rf[in.B] - float64(b.F[i])
		case OpLdSubFG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += lFloatOp + lGLoad
			rf[in.A] = float64(b.F[i]) - rf[in.B]
		case OpMulAccLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += 2*lFloatOp + lGLoad
			rf[in.A] = rf[in.A] + float64(rf[in.B]*float64(b.F[i]))
		case OpMulMulF:
			a0 += 2 * lFloatOp
			rf[in.A] = float64(rf[in.B]*rf[in.C]) * rf[in.Imm]
		case OpAddRsqrtF:
			a0 += lFloatOp + lTransOp
			rf[in.A] = 1 / math.Sqrt(rf[in.B]+rf[in.C])
		case OpLdGFIdx:
			slot, name, r3 := unpackMemIdx(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.B]*ri[in.C] + ri[r3]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += 2*lIntOp + lGLoad
			rf[in.A] = float64(b.F[i])
		case OpMacLdGIdx:
			slot, name, r2, r3 := unpackMacIdx(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]*ri[r2] + ri[r3]
			if i < 0 || i >= int64(len(b.F)) {
				p.exit(f, a0, a1, pc)
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			a0 += 2*lIntOp + 2*lFloatOp + lGLoad
			rf[in.A] = rf[in.A] + float64(rf[in.B]*float64(b.F[i]))

		case OpJCmpI:
			a0 += lIntOp
			a1 += lBranch
			if ccHoldsI(in.C, ri[in.A], ri[in.B]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJCmpIImm:
			a0 += lIntOp
			a1 += lBranch
			if ccHoldsI(in.B, ri[in.A], in.Imm) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.C)
				continue
			}
		case OpJCmpF:
			a0 += lFloatOp
			a1 += lBranch
			if ccHoldsF(in.C, rf[in.A], rf[in.B]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpIncJCmpI:
			a0 += 2 * lIntOp
			a1 += lBranch
			v := ri[in.A] + ri[in.B]
			ri[in.A] = v
			if ccHoldsI(int32(in.Imm>>32), v, ri[in.C]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(); err != nil {
					p.exit(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(int64(uint32(in.Imm)))
				continue
			}

		default:
			p.exit(f, a0, a1, pc)
			return Halted, fmt.Errorf("exec: vm: illegal opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
	p.exit(f, a0, a1, pc)
	return Halted, nil
}
