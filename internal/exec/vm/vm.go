package vm

import (
	"fmt"
	"math"
)

// Counts mirrors exec.Counts field-for-field so the two convert
// directly; the VM bumps exactly the counters the closure tier bumps.
type Counts struct {
	Items         int64
	IntOps        int64
	FloatOps      int64
	TransOps      int64
	OtherBuiltins int64
	GlobalLoads   int64
	GlobalStores  int64
	LocalOps      int64
	Branches      int64
	Barriers      int64
	MaxItemOps    int64
}

// Buf is a typed buffer view. Exactly one of F or I is non-nil; the
// slices alias the executor's backing buffers.
type Buf struct {
	F []float32
	I []int32
}

// ParamKind classifies a kernel parameter for argument binding.
type ParamKind uint8

// Parameter kinds.
const (
	ParamInt    ParamKind = iota // scalar in I[Index]
	ParamFloat                   // scalar in F[Index]
	ParamGlobal                  // global buffer in Globals[Index]
	ParamLocal                   // local buffer in Locals[Index]
)

// Param maps one kernel parameter to its register or buffer slot.
type Param struct {
	Kind  ParamKind
	Index int32
}

// Func is a compiled kernel: flat bytecode over two register files plus
// the constant pools and binding metadata.
type Func struct {
	Name  string
	Code  []Instr
	FPool []float64 // float constants, indexed by OpLdcF Imm
	Names []string  // buffer names for fault messages

	NumI, NumF           int // register file sizes (variables + temporaries)
	NumGlobals, NumLocal int // buffer slot table sizes
	Params               []Param
	Fused                int // super-instructions created by the peephole pass
}

// Status reports how a Run call ended.
type Status uint8

// Run statuses.
const (
	// Halted: the work item finished (end of kernel or return).
	Halted Status = iota
	// Suspended: the work item reached a barrier with no Barrier
	// callback installed; Run resumes after the barrier on the next call.
	Suspended
)

// Frame.WI row indices, matching inspire.WIQuery order.
const (
	WIGlobalID = iota
	WILocalID
	WIGroupID
	WIGlobalSize
	WILocalSize
	WINumGroups
)

// Frame is the per-work-item execution state: the register files, the
// bound buffers, the NDRange coordinates, and the dynamic counts.
type Frame struct {
	I []int64
	F []float64

	Globals []Buf
	Locals  []Buf

	// WI holds the six work-item query vectors indexed by
	// inspire.WIQuery order: gid, lid, group, gsize, lsize, ngroups.
	WI [6][3]int64

	Cnt Counts
	PC  int

	// Barrier, when non-nil, is invoked at OpBar (blocking barrier
	// modes). When nil, OpBar suspends the frame instead (lockstep).
	Barrier func()

	// Fuel is the frame's local step allowance, decremented at taken
	// jumps (one per loop iteration). When it underflows, Run refills it
	// from B; a nil B grants an effectively unlimited lease. Fuel
	// deliberately survives Reset so a lease spans work items.
	Fuel int64
	B    *Budget
}

// spend burns one unit of fuel, refilling the lease from the budget on
// underflow. The fast path is a decrement and compare; only lease
// boundaries touch the shared budget.
func (f *Frame) spend() error {
	f.Fuel--
	if f.Fuel >= 0 {
		return nil
	}
	return f.refill()
}

// NewFrame allocates a frame sized for fn. Buffers, scalar arguments
// and WI vectors are bound by the caller.
func (fn *Func) NewFrame() *Frame {
	f := &Frame{
		I: make([]int64, fn.NumI),
		F: make([]float64, fn.NumF),
	}
	if fn.NumGlobals > 0 {
		f.Globals = make([]Buf, fn.NumGlobals)
	}
	if fn.NumLocal > 0 {
		f.Locals = make([]Buf, fn.NumLocal)
	}
	return f
}

// Reset rewinds the frame to the kernel entry and clears its counts.
// Registers keep their values: scalar parameters stay bound, and every
// local variable is re-initialized by its declaration instruction.
func (f *Frame) Reset() {
	f.PC = 0
	f.Cnt = Counts{}
}

func ccHoldsI(cc int32, l, r int64) bool {
	switch cc {
	case CcLt:
		return l < r
	case CcLe:
		return l <= r
	case CcGt:
		return l > r
	case CcGe:
		return l >= r
	case CcEq:
		return l == r
	default:
		return l != r
	}
}

func ccHoldsF(cc int32, l, r float64) bool {
	switch cc {
	case CcLt:
		return l < r
	case CcLe:
		return l <= r
	case CcGt:
		return l > r
	case CcGe:
		return l >= r
	case CcEq:
		return l == r
	default:
		return l != r
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes the frame from its saved PC until the kernel halts, a
// barrier suspends it (Frame.Barrier == nil), or a fault occurs. Faults
// (out-of-bounds access, division by zero, bad work-item dimension)
// return errors with the same messages the closure tier throws.
func (p *Func) Run(f *Frame) (Status, error) {
	code := p.Code
	ri := f.I
	rf := f.F
	c := f.Cnt
	pc := f.PC
	for pc < len(code) {
		in := &code[pc]
		switch in.Op {
		case OpNop:
		case OpHalt:
			f.PC, f.Cnt = pc, c
			return Halted, nil

		case OpMovI:
			ri[in.A] = ri[in.B]
		case OpMovF:
			rf[in.A] = rf[in.B]
		case OpLdcI:
			ri[in.A] = in.Imm
		case OpLdcF:
			rf[in.A] = p.FPool[in.Imm]
		case OpI2F:
			rf[in.A] = float64(ri[in.B])
		case OpF2I:
			ri[in.A] = int64(rf[in.B])
		case OpSnzI:
			ri[in.A] = b2i(ri[in.B] != 0)

		case OpAddI:
			c.IntOps++
			ri[in.A] = ri[in.B] + ri[in.C]
		case OpSubI:
			c.IntOps++
			ri[in.A] = ri[in.B] - ri[in.C]
		case OpMulI:
			c.IntOps++
			ri[in.A] = ri[in.B] * ri[in.C]
		case OpDivI:
			c.IntOps++
			d := ri[in.C]
			if d == 0 {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: integer division by zero")
			}
			ri[in.A] = ri[in.B] / d
		case OpModI:
			c.IntOps++
			d := ri[in.C]
			if d == 0 {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: integer modulo by zero")
			}
			ri[in.A] = ri[in.B] % d
		case OpAndI:
			c.IntOps++
			ri[in.A] = ri[in.B] & ri[in.C]
		case OpOrI:
			c.IntOps++
			ri[in.A] = ri[in.B] | ri[in.C]
		case OpXorI:
			c.IntOps++
			ri[in.A] = ri[in.B] ^ ri[in.C]
		case OpShlI:
			c.IntOps++
			ri[in.A] = ri[in.B] << uint(ri[in.C]&63)
		case OpShrI:
			c.IntOps++
			ri[in.A] = ri[in.B] >> uint(ri[in.C]&63)
		case OpNegI:
			c.IntOps++
			ri[in.A] = -ri[in.B]
		case OpNotB:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] == 0)

		case OpAddIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] + in.Imm
		case OpMulIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] * in.Imm
		case OpDivIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] / in.Imm
		case OpModIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] % in.Imm
		case OpShlIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] << uint(in.Imm&63)
		case OpShrIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] >> uint(in.Imm&63)
		case OpAndIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] & in.Imm
		case OpOrIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] | in.Imm
		case OpXorIImm:
			c.IntOps++
			ri[in.A] = ri[in.B] ^ in.Imm

		case OpLtI:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] < ri[in.C])
		case OpLeI:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] <= ri[in.C])
		case OpGtI:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] > ri[in.C])
		case OpGeI:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] >= ri[in.C])
		case OpEqI:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] == ri[in.C])
		case OpNeI:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] != ri[in.C])

		case OpLtIImm:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] < in.Imm)
		case OpLeIImm:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] <= in.Imm)
		case OpGtIImm:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] > in.Imm)
		case OpGeIImm:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] >= in.Imm)
		case OpEqIImm:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] == in.Imm)
		case OpNeIImm:
			c.IntOps++
			ri[in.A] = b2i(ri[in.B] != in.Imm)

		case OpAddF:
			c.FloatOps++
			rf[in.A] = rf[in.B] + rf[in.C]
		case OpSubF:
			c.FloatOps++
			rf[in.A] = rf[in.B] - rf[in.C]
		case OpMulF:
			c.FloatOps++
			rf[in.A] = rf[in.B] * rf[in.C]
		case OpDivF:
			c.FloatOps++
			rf[in.A] = rf[in.B] / rf[in.C]
		case OpNegF:
			c.FloatOps++
			rf[in.A] = -rf[in.B]

		case OpLtF:
			c.FloatOps++
			ri[in.A] = b2i(rf[in.B] < rf[in.C])
		case OpLeF:
			c.FloatOps++
			ri[in.A] = b2i(rf[in.B] <= rf[in.C])
		case OpGtF:
			c.FloatOps++
			ri[in.A] = b2i(rf[in.B] > rf[in.C])
		case OpGeF:
			c.FloatOps++
			ri[in.A] = b2i(rf[in.B] >= rf[in.C])
		case OpEqF:
			c.FloatOps++
			ri[in.A] = b2i(rf[in.B] == rf[in.C])
		case OpNeF:
			c.FloatOps++
			ri[in.A] = b2i(rf[in.B] != rf[in.C])

		case OpJmp:
			if err := f.spend(); err != nil {
				f.PC, f.Cnt = pc, c
				return Halted, err
			}
			pc = int(in.Imm)
			continue
		case OpJZBr:
			c.Branches++
			if ri[in.A] == 0 {
				if err := f.spend(); err != nil {
					f.PC, f.Cnt = pc, c
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJZLog:
			c.IntOps++
			if ri[in.A] == 0 {
				if err := f.spend(); err != nil {
					f.PC, f.Cnt = pc, c
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJNZLog:
			c.IntOps++
			if ri[in.A] != 0 {
				if err := f.spend(); err != nil {
					f.PC, f.Cnt = pc, c
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}

		case OpWI:
			c.IntOps++
			ri[in.A] = f.WI[in.B][in.C]
		case OpWIDyn:
			c.IntOps++
			d := ri[in.C]
			if d < 0 || d > 2 {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: work-item query dimension %d out of range", d)
			}
			ri[in.A] = f.WI[in.B][d]

		case OpLdGF:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			c.GlobalLoads++
			rf[in.A] = float64(b.F[i])
		case OpLdGI:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			c.GlobalLoads++
			ri[in.A] = int64(b.I[i])
		case OpLdLF:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			c.LocalOps++
			rf[in.A] = float64(b.F[i])
		case OpLdLI:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			c.LocalOps++
			ri[in.A] = int64(b.I[i])

		case OpStGF:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			b.F[i] = float32(rf[in.A])
			c.GlobalStores++
		case OpStGI:
			b := &f.Globals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			b.I[i] = int32(ri[in.A])
			c.GlobalStores++
		case OpStLF:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.F))
			}
			b.F[i] = float32(rf[in.A])
			c.LocalOps++
		case OpStLI:
			b := &f.Locals[in.B]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.I)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: store to %s[%d] out of bounds (len %d)", p.Names[in.Imm], i, len(b.I))
			}
			b.I[i] = int32(ri[in.A])
			c.LocalOps++

		case OpSqrtF:
			c.TransOps++
			rf[in.A] = math.Sqrt(rf[in.B])
		case OpRsqrtF:
			c.TransOps++
			rf[in.A] = 1 / math.Sqrt(rf[in.B])
		case OpExpF:
			c.TransOps++
			rf[in.A] = math.Exp(rf[in.B])
		case OpLogF:
			c.TransOps++
			rf[in.A] = math.Log(rf[in.B])
		case OpLog2F:
			c.TransOps++
			rf[in.A] = math.Log2(rf[in.B])
		case OpSinF:
			c.TransOps++
			rf[in.A] = math.Sin(rf[in.B])
		case OpCosF:
			c.TransOps++
			rf[in.A] = math.Cos(rf[in.B])
		case OpTanF:
			c.TransOps++
			rf[in.A] = math.Tan(rf[in.B])
		case OpPowF:
			c.TransOps++
			rf[in.A] = math.Pow(rf[in.B], rf[in.C])
		case OpAbsF:
			c.OtherBuiltins++
			rf[in.A] = math.Abs(rf[in.B])
		case OpFloorF:
			c.OtherBuiltins++
			rf[in.A] = math.Floor(rf[in.B])
		case OpCeilF:
			c.OtherBuiltins++
			rf[in.A] = math.Ceil(rf[in.B])
		case OpMinF:
			c.OtherBuiltins++
			rf[in.A] = math.Min(rf[in.B], rf[in.C])
		case OpMaxF:
			c.OtherBuiltins++
			rf[in.A] = math.Max(rf[in.B], rf[in.C])
		case OpFmaF:
			c.OtherBuiltins++
			rf[in.A] = rf[in.B]*rf[in.C] + rf[in.Imm]
		case OpClampF:
			c.OtherBuiltins++
			rf[in.A] = math.Max(rf[in.C], math.Min(rf[in.B], rf[in.Imm]))

		case OpMinI:
			c.OtherBuiltins++
			ri[in.A] = min(ri[in.B], ri[in.C])
		case OpMaxI:
			c.OtherBuiltins++
			ri[in.A] = max(ri[in.B], ri[in.C])
		case OpAbsI:
			c.OtherBuiltins++
			v := ri[in.B]
			if v < 0 {
				v = -v
			}
			ri[in.A] = v
		case OpClampI:
			c.OtherBuiltins++
			ri[in.A] = max(ri[in.C], min(ri[in.B], ri[in.Imm]))

		case OpBar:
			c.Barriers++
			if f.Barrier != nil {
				f.Barrier()
			} else {
				f.PC, f.Cnt = pc+1, c
				return Suspended, nil
			}

		case OpMulAddI:
			c.IntOps += 2
			ri[in.A] = ri[in.B]*ri[in.C] + ri[in.Imm]
		case OpMulImmAddI:
			c.IntOps += 2
			ri[in.A] = ri[in.B]*in.Imm + ri[in.C]
		case OpMulAddF:
			c.FloatOps += 2
			// The explicit conversion forces the product to round
			// separately, matching the unfused mul-then-add exactly
			// (Go may otherwise contract the pair into an FMA).
			rf[in.A] = float64(rf[in.B]*rf[in.C]) + rf[in.Imm]
		case OpAddFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			c.GlobalLoads++
			c.FloatOps++
			rf[in.A] = rf[in.B] + float64(b.F[i])
		case OpMulFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			c.GlobalLoads++
			c.FloatOps++
			rf[in.A] = rf[in.B] * float64(b.F[i])
		case OpSubFLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			c.GlobalLoads++
			c.FloatOps++
			rf[in.A] = rf[in.B] - float64(b.F[i])
		case OpLdSubFG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			c.GlobalLoads++
			c.FloatOps++
			rf[in.A] = float64(b.F[i]) - rf[in.B]
		case OpMulAccLdG:
			slot, name := unpackMem(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			c.GlobalLoads++
			c.FloatOps += 2
			rf[in.A] = rf[in.A] + float64(rf[in.B]*float64(b.F[i]))
		case OpMulMulF:
			c.FloatOps += 2
			rf[in.A] = float64(rf[in.B]*rf[in.C]) * rf[in.Imm]
		case OpAddRsqrtF:
			c.FloatOps++
			c.TransOps++
			rf[in.A] = 1 / math.Sqrt(rf[in.B]+rf[in.C])
		case OpLdGFIdx:
			slot, name, r3 := unpackMemIdx(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.B]*ri[in.C] + ri[r3]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			c.IntOps += 2
			c.GlobalLoads++
			rf[in.A] = float64(b.F[i])
		case OpMacLdGIdx:
			slot, name, r2, r3 := unpackMacIdx(in.Imm)
			b := &f.Globals[slot]
			i := ri[in.C]*ri[r2] + ri[r3]
			if i < 0 || i >= int64(len(b.F)) {
				f.PC, f.Cnt = pc, c
				return Halted, fmt.Errorf("exec: load %s[%d] out of bounds (len %d)", p.Names[name], i, len(b.F))
			}
			c.IntOps += 2
			c.GlobalLoads++
			c.FloatOps += 2
			rf[in.A] = rf[in.A] + float64(rf[in.B]*float64(b.F[i]))

		case OpJCmpI:
			c.IntOps++
			c.Branches++
			if ccHoldsI(in.C, ri[in.A], ri[in.B]) {
				if err := f.spend(); err != nil {
					f.PC, f.Cnt = pc, c
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJCmpIImm:
			c.IntOps++
			c.Branches++
			if ccHoldsI(in.B, ri[in.A], in.Imm) {
				if err := f.spend(); err != nil {
					f.PC, f.Cnt = pc, c
					return Halted, err
				}
				pc = int(in.C)
				continue
			}
		case OpJCmpF:
			c.FloatOps++
			c.Branches++
			if ccHoldsF(in.C, rf[in.A], rf[in.B]) {
				if err := f.spend(); err != nil {
					f.PC, f.Cnt = pc, c
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpIncJCmpI:
			c.IntOps += 2
			c.Branches++
			v := ri[in.A] + ri[in.B]
			ri[in.A] = v
			if ccHoldsI(int32(in.Imm>>32), v, ri[in.C]) {
				if err := f.spend(); err != nil {
					f.PC, f.Cnt = pc, c
					return Halted, err
				}
				pc = int(int64(uint32(in.Imm)))
				continue
			}

		default:
			f.PC, f.Cnt = pc, c
			return Halted, fmt.Errorf("exec: vm: illegal opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
	f.PC, f.Cnt = pc, c
	return Halted, nil
}
