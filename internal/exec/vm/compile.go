package vm

import (
	"fmt"

	"repro/internal/inspire"
	"repro/internal/minicl"
)

// Options controls bytecode compilation.
type Options struct {
	// NoFuse disables the peephole super-instruction pass, keeping the
	// straightforward one-IR-op-per-instruction encoding.
	NoFuse bool
}

// compileError is thrown (via panic) for unsupported constructs and
// recovered at the Compile boundary, mirroring exec's execError.
type compileError struct{ err error }

func failf(format string, args ...any) {
	panic(compileError{fmt.Errorf(format, args...)})
}

// bufRef is the compile-time location of a buffer variable: its slot in
// the global or local buffer table plus its name for fault messages.
type bufRef struct {
	local bool
	slot  int32
	name  int32
}

type loopCtx struct {
	breaks    []int // Jmp pcs to patch to the loop end
	continues []int // Jmp pcs to patch to the post/cond label
}

// retCtx is the return target of an inlined helper call: returns
// compile their value into dst and jump past the inlined body.
type retCtx struct {
	dst     int32
	isFloat bool
	jumps   []int
}

type valKind int

const (
	kindInt valKind = iota
	kindFloat
	kindBool
)

type compiler struct {
	code  []Instr
	fpool []float64
	fidx  map[float64]int32
	names []string
	nidx  map[string]int32

	// Variable locations. Helper variables are registered at each call
	// site (recursion is rejected, so one binding is live at a time).
	regI map[*inspire.Var]int32
	regF map[*inspire.Var]int32
	bufs map[*inspire.Var]bufRef

	// Register allocation is monotonic: every variable, temporary, and
	// constant gets its own register (registers are cheap frame slots,
	// and single-assignment temporaries are what lets the peephole pass
	// prove a producer/consumer pair safe to fuse). Variables of the
	// function being compiled sit below the floor; temporaries and
	// inlined helpers' variables are allocated above it.
	floorI, floorF int32
	nextI, nextF   int32

	// Constants are hoisted into dedicated registers, materialized once
	// by a prologue instead of reloaded at every use.
	constIReg map[int64]int32
	constFReg map[float64]int32
	prologue  []Instr

	nGlobal, nLocal int32
	params          []Param

	inline    []*inspire.Function // inlining stack, for recursion detection
	loops     []*loopCtx
	rets      []*retCtx
	haltJumps []int // kernel-level returns, patched to the trailing halt
}

// Compile lowers a sema-checked kernel to bytecode with fusion enabled.
func Compile(fn *inspire.Function) (*Func, error) {
	return CompileOpts(fn, Options{})
}

// CompileOpts lowers a sema-checked kernel to bytecode. Helper calls
// are inlined; recursion and constructs the closure tier rejects fail
// with the same errors.
func CompileOpts(fn *inspire.Function, opt Options) (prog *Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				prog, err = nil, ce.err
				return
			}
			panic(r)
		}
	}()
	c := &compiler{
		fidx: map[float64]int32{},
		nidx: map[string]int32{},
		regI: map[*inspire.Var]int32{},
		regF: map[*inspire.Var]int32{},
		bufs: map[*inspire.Var]bufRef{},

		constIReg: map[int64]int32{},
		constFReg: map[float64]int32{},
	}
	for _, p := range fn.Params {
		switch {
		case p.Type.Ptr && p.Type.Space == minicl.Local:
			c.bufs[p] = bufRef{local: true, slot: c.nLocal, name: c.nameOf(p.Name)}
			c.params = append(c.params, Param{Kind: ParamLocal, Index: c.nLocal})
			c.nLocal++
		case p.Type.Ptr:
			c.bufs[p] = bufRef{slot: c.nGlobal, name: c.nameOf(p.Name)}
			c.params = append(c.params, Param{Kind: ParamGlobal, Index: c.nGlobal})
			c.nGlobal++
		case p.Type.IsFloat():
			r := c.allocF()
			c.regF[p] = r
			c.params = append(c.params, Param{Kind: ParamFloat, Index: r})
		default: // int, uint, bool scalars
			r := c.allocI()
			c.regI[p] = r
			c.params = append(c.params, Param{Kind: ParamInt, Index: r})
		}
	}
	c.declareLocals(fn.Body)
	c.floorI, c.floorF = c.nextI, c.nextF
	c.block(fn.Body)
	halt := c.emit(Instr{Op: OpHalt})
	for _, pc := range c.haltJumps {
		c.code[pc].Imm = int64(halt)
	}
	// Materialize hoisted constants once, ahead of the body; every jump
	// target shifts by the prologue length. (Fusion has not run yet, so
	// these four are the only jump encodings.)
	if n := len(c.prologue); n > 0 {
		code := make([]Instr, 0, n+len(c.code))
		code = append(code, c.prologue...)
		for _, in := range c.code {
			switch in.Op {
			case OpJmp, OpJZBr, OpJZLog, OpJNZLog:
				in.Imm += int64(n)
			}
			code = append(code, in)
		}
		c.code = code
	}
	prog = &Func{
		Name:       fn.Name,
		Code:       c.code,
		FPool:      c.fpool,
		Names:      c.names,
		NumI:       int(c.nextI),
		NumF:       int(c.nextF),
		NumGlobals: int(c.nGlobal),
		NumLocal:   int(c.nLocal),
		Params:     c.params,
	}
	if !opt.NoFuse {
		fuse(prog)
	}
	if err := prog.buildProfile(); err != nil {
		return nil, err
	}
	return prog, nil
}

// declareLocals assigns registers to every variable declared in the
// block tree (including loop-init declarations).
func (c *compiler) declareLocals(b *inspire.Block) {
	inspire.WalkStmts(b, func(s inspire.Stmt) bool {
		d, ok := s.(*inspire.Decl)
		if !ok {
			return true
		}
		v := d.Var
		switch {
		case v.Type.Ptr:
			failf("exec: cannot declare pointer-typed local %s", v)
		case v.Type.IsFloat():
			c.regF[v] = c.allocF()
		default:
			c.regI[v] = c.allocI()
		}
		return true
	})
}

func (c *compiler) allocI() int32 {
	r := c.nextI
	c.nextI++
	return r
}

func (c *compiler) allocF() int32 {
	r := c.nextF
	c.nextF++
	return r
}

// constI returns the dedicated register holding integer constant v,
// materialized once in the prologue.
func (c *compiler) constI(v int64) int32 {
	if r, ok := c.constIReg[v]; ok {
		return r
	}
	r := c.allocI()
	c.constIReg[v] = r
	c.prologue = append(c.prologue, Instr{Op: OpLdcI, A: r, Imm: v})
	return r
}

// constF returns the dedicated register holding float constant v.
func (c *compiler) constF(v float64) int32 {
	if r, ok := c.constFReg[v]; ok {
		return r
	}
	r := c.allocF()
	c.constFReg[v] = r
	c.prologue = append(c.prologue, Instr{Op: OpLdcF, A: r, Imm: int64(c.fconst(v))})
	return r
}
func (c *compiler) emit(in Instr) int        { c.code = append(c.code, in); return len(c.code) - 1 }
func (c *compiler) here() int                { return len(c.code) }
func (c *compiler) patch(pc, target int)     { c.code[pc].Imm = int64(target) }

func (c *compiler) fconst(v float64) int32 {
	if i, ok := c.fidx[v]; ok {
		return i
	}
	i := int32(len(c.fpool))
	c.fpool = append(c.fpool, v)
	c.fidx[v] = i
	return i
}

func (c *compiler) nameOf(s string) int32 {
	if i, ok := c.nidx[s]; ok {
		return i
	}
	i := int32(len(c.names))
	c.names = append(c.names, s)
	c.nidx[s] = i
	return i
}

// --- statements ---

func (c *compiler) block(b *inspire.Block) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

func (c *compiler) stmt(s inspire.Stmt) {
	switch st := s.(type) {
	case *inspire.Block:
		c.block(st)
	case *inspire.Decl:
		c.assignVar(st.Var, st.Init)
	case *inspire.StoreVar:
		c.assignVar(st.Var, st.Value)
	case *inspire.StoreElem:
		c.storeElem(st)
	case *inspire.If:
		t := c.boolVal(st.Cond)
		jz := c.emit(Instr{Op: OpJZBr, A: t})
		c.block(st.Then)
		if st.Else == nil {
			c.patch(jz, c.here())
			return
		}
		jend := c.emit(Instr{Op: OpJmp})
		c.patch(jz, c.here())
		c.block(st.Else)
		c.patch(jend, c.here())
	case *inspire.For:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		lcond := c.here()
		jz := -1
		if st.Cond != nil {
			t := c.boolVal(st.Cond)
			jz = c.emit(Instr{Op: OpJZBr, A: t})
		}
		lc := &loopCtx{}
		c.loops = append(c.loops, lc)
		c.block(st.Body)
		c.loops = c.loops[:len(c.loops)-1]
		lpost := c.here()
		if st.Post != nil {
			c.stmt(st.Post)
		}
		c.emit(Instr{Op: OpJmp, Imm: int64(lcond)})
		lend := c.here()
		if jz >= 0 {
			c.patch(jz, lend)
		}
		for _, pc := range lc.breaks {
			c.patch(pc, lend)
		}
		for _, pc := range lc.continues {
			c.patch(pc, lpost)
		}
	case *inspire.While:
		lcond := c.here()
		t := c.boolVal(st.Cond)
		jz := c.emit(Instr{Op: OpJZBr, A: t})
		lc := &loopCtx{}
		c.loops = append(c.loops, lc)
		c.block(st.Body)
		c.loops = c.loops[:len(c.loops)-1]
		c.emit(Instr{Op: OpJmp, Imm: int64(lcond)})
		lend := c.here()
		c.patch(jz, lend)
		for _, pc := range lc.breaks {
			c.patch(pc, lend)
		}
		for _, pc := range lc.continues {
			c.patch(pc, lcond)
		}
	case *inspire.Return:
		if len(c.rets) == 0 {
			// Kernel-level return: evaluate for effects, jump to halt.
			if st.Value != nil {
				c.evalExpr(st.Value)
			}
			c.haltJumps = append(c.haltJumps, c.emit(Instr{Op: OpJmp}))
			return
		}
		r := c.rets[len(c.rets)-1]
		if st.Value != nil {
			if r.isFloat {
				c.fltInto(st.Value, r.dst)
			} else {
				c.intInto(st.Value, r.dst)
			}
		}
		r.jumps = append(r.jumps, c.emit(Instr{Op: OpJmp}))
	case *inspire.Break:
		if len(c.loops) == 0 {
			failf("exec: break outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, c.emit(Instr{Op: OpJmp}))
	case *inspire.Continue:
		if len(c.loops) == 0 {
			failf("exec: continue outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.continues = append(lc.continues, c.emit(Instr{Op: OpJmp}))
	case *inspire.Barrier:
		c.emit(Instr{Op: OpBar})
	case *inspire.Eval:
		if st.X.ExprType().Equal(minicl.TypeVoid) {
			failf("exec: void expression statement not supported")
		}
		c.evalExpr(st.X)
	default:
		failf("exec: cannot compile statement %T", s)
	}
}

// evalExpr compiles an expression for its side effects only.
func (c *compiler) evalExpr(e inspire.Expr) {
	if e.ExprType().IsFloat() {
		c.fltVal(e)
	} else {
		c.intVal(e)
	}
}

func (c *compiler) assignVar(v *inspire.Var, val inspire.Expr) {
	if r, ok := c.regF[v]; ok {
		if val == nil {
			c.emit(Instr{Op: OpLdcF, A: r, Imm: int64(c.fconst(0))})
		} else {
			c.fltInto(val, r)
		}
		return
	}
	r, ok := c.regI[v]
	if !ok {
		failf("exec: cannot store to pointer variable %s", v)
	}
	switch {
	case val == nil:
		c.emit(Instr{Op: OpLdcI, A: r})
	case v.Type.IsBool():
		c.boolInto(val, r)
	default:
		c.intInto(val, r)
	}
}

func (c *compiler) storeElem(st *inspire.StoreElem) {
	ref, ok := c.bufs[st.Buf]
	if !ok {
		failf("exec: cannot store to pointer variable %s", st.Buf)
	}
	idx := c.intVal(st.Index)
	if st.Buf.Type.Elem().IsFloat() {
		v := c.fltVal(st.Value)
		op := OpStGF
		if ref.local {
			op = OpStLF
		}
		c.emit(Instr{Op: op, A: v, B: ref.slot, C: idx, Imm: int64(ref.name)})
	} else {
		v := c.intVal(st.Value)
		op := OpStGI
		if ref.local {
			op = OpStLI
		}
		c.emit(Instr{Op: op, A: v, B: ref.slot, C: idx, Imm: int64(ref.name)})
	}
}

// --- expressions ---

// intVal returns a register holding the integer value of e; variable
// reads return the variable's own register without a move.
func (c *compiler) intVal(e inspire.Expr) int32 {
	t := e.ExprType()
	if t.IsBool() {
		return c.boolVal(e)
	}
	if ci, ok := e.(*inspire.ConstInt); ok {
		return c.constI(ci.Value)
	}
	if vr, ok := e.(*inspire.VarRef); ok && !t.IsFloat() {
		if r, ok := c.regI[vr.Var]; ok {
			return r
		}
	}
	r := c.allocI()
	c.intInto(e, r)
	return r
}

func (c *compiler) fltVal(e inspire.Expr) int32 {
	if cf, ok := e.(*inspire.ConstFloat); ok && e.ExprType().IsFloat() {
		return c.constF(cf.Value)
	}
	if vr, ok := e.(*inspire.VarRef); ok && e.ExprType().IsFloat() {
		if r, ok := c.regF[vr.Var]; ok {
			return r
		}
	}
	r := c.allocF()
	c.fltInto(e, r)
	return r
}

func (c *compiler) boolVal(e inspire.Expr) int32 {
	if cb, ok := e.(*inspire.ConstBool); ok && e.ExprType().IsBool() {
		if cb.Value {
			return c.constI(1)
		}
		return c.constI(0)
	}
	if vr, ok := e.(*inspire.VarRef); ok && e.ExprType().IsBool() {
		if r, ok := c.regI[vr.Var]; ok {
			return r
		}
	}
	r := c.allocI()
	c.boolInto(e, r)
	return r
}

var intBinOps = map[inspire.Op]Opcode{
	inspire.OpAdd: OpAddI, inspire.OpSub: OpSubI, inspire.OpMul: OpMulI,
	inspire.OpDiv: OpDivI, inspire.OpMod: OpModI, inspire.OpAnd: OpAndI,
	inspire.OpOr: OpOrI, inspire.OpXor: OpXorI, inspire.OpShl: OpShlI,
	inspire.OpShr: OpShrI,
}

var fltBinOps = map[inspire.Op]Opcode{
	inspire.OpAdd: OpAddF, inspire.OpSub: OpSubF,
	inspire.OpMul: OpMulF, inspire.OpDiv: OpDivF,
}

var intCmpOps = map[inspire.Op]Opcode{
	inspire.OpLt: OpLtI, inspire.OpLe: OpLeI, inspire.OpGt: OpGtI,
	inspire.OpGe: OpGeI, inspire.OpEq: OpEqI, inspire.OpNe: OpNeI,
}

var fltCmpOps = map[inspire.Op]Opcode{
	inspire.OpLt: OpLtF, inspire.OpLe: OpLeF, inspire.OpGt: OpGtF,
	inspire.OpGe: OpGeF, inspire.OpEq: OpEqF, inspire.OpNe: OpNeF,
}

// intInto compiles an integer-valued expression into I[dst] (bools
// yield 0/1, floats truncate like the closure tier).
func (c *compiler) intInto(e inspire.Expr, dst int32) {
	t := e.ExprType()
	if t.IsBool() {
		c.boolInto(e, dst)
		return
	}
	if t.IsFloat() {
		s := c.fltVal(e)
		c.emit(Instr{Op: OpF2I, A: dst, B: s})
		return
	}
	switch ex := e.(type) {
	case *inspire.ConstInt:
		c.emit(Instr{Op: OpLdcI, A: dst, Imm: ex.Value})
	case *inspire.VarRef:
		r, ok := c.regI[ex.Var]
		if !ok {
			failf("exec: int read of non-int variable %s", ex.Var)
		}
		if r != dst {
			c.emit(Instr{Op: OpMovI, A: dst, B: r})
		}
	case *inspire.Load:
		c.load(ex, dst, false)
	case *inspire.BinOp:
		op, ok := intBinOps[ex.Op]
		if !ok {
			failf("exec: bad int binop %s", ex.Op)
		}
		l := c.intVal(ex.L)
		r := c.intVal(ex.R)
		c.emit(Instr{Op: op, A: dst, B: l, C: r})
	case *inspire.UnOp:
		x := c.intVal(ex.X)
		c.emit(Instr{Op: OpNegI, A: dst, B: x})
	case *inspire.Select:
		c.selectInto(ex.Cond, ex.Then, ex.Else, dst, kindInt)
	case *inspire.Cast:
		c.intInto(ex.X, dst)
	case *inspire.WorkItem:
		c.workItem(ex, dst)
	case *inspire.CallBuiltin:
		c.intBuiltin(ex, dst)
	case *inspire.CallFunc:
		c.callInto(ex, dst, false)
	default:
		failf("exec: cannot compile int expression %T", e)
	}
}

// fltInto compiles a float-valued expression into F[dst]; integer and
// bool values are converted.
func (c *compiler) fltInto(e inspire.Expr, dst int32) {
	if !e.ExprType().IsFloat() {
		s := c.intVal(e)
		c.emit(Instr{Op: OpI2F, A: dst, B: s})
		return
	}
	switch ex := e.(type) {
	case *inspire.ConstFloat:
		c.emit(Instr{Op: OpLdcF, A: dst, Imm: int64(c.fconst(ex.Value))})
	case *inspire.VarRef:
		r, ok := c.regF[ex.Var]
		if !ok {
			failf("exec: float read of non-float variable %s", ex.Var)
		}
		if r != dst {
			c.emit(Instr{Op: OpMovF, A: dst, B: r})
		}
	case *inspire.Load:
		c.load(ex, dst, true)
	case *inspire.BinOp:
		op, ok := fltBinOps[ex.Op]
		if !ok {
			failf("exec: bad float binop %s", ex.Op)
		}
		l := c.fltVal(ex.L)
		r := c.fltVal(ex.R)
		c.emit(Instr{Op: op, A: dst, B: l, C: r})
	case *inspire.UnOp:
		x := c.fltVal(ex.X)
		c.emit(Instr{Op: OpNegF, A: dst, B: x})
	case *inspire.Select:
		c.selectInto(ex.Cond, ex.Then, ex.Else, dst, kindFloat)
	case *inspire.Cast:
		c.fltInto(ex.X, dst)
	case *inspire.CallBuiltin:
		c.fltBuiltin(ex, dst)
	case *inspire.CallFunc:
		c.callInto(ex, dst, true)
	default:
		failf("exec: cannot compile float expression %T", e)
	}
}

// boolInto compiles a bool-valued expression into I[dst] as 0/1;
// numeric values are normalized with an uncounted snz, matching the
// closure tier's uncounted != 0 read.
func (c *compiler) boolInto(e inspire.Expr, dst int32) {
	if !e.ExprType().IsBool() {
		s := c.intVal(e)
		c.emit(Instr{Op: OpSnzI, A: dst, B: s})
		return
	}
	switch ex := e.(type) {
	case *inspire.ConstBool:
		in := Instr{Op: OpLdcI, A: dst}
		if ex.Value {
			in.Imm = 1
		}
		c.emit(in)
	case *inspire.VarRef:
		r, ok := c.regI[ex.Var]
		if !ok {
			failf("exec: cannot compile bool expression %T", e)
		}
		if r != dst {
			c.emit(Instr{Op: OpMovI, A: dst, B: r})
		}
	case *inspire.UnOp: // logical not
		x := c.boolVal(ex.X)
		c.emit(Instr{Op: OpNotB, A: dst, B: x})
	case *inspire.Select:
		c.selectInto(ex.Cond, ex.Then, ex.Else, dst, kindBool)
	case *inspire.Cast:
		c.boolInto(ex.X, dst)
	case *inspire.BinOp:
		if ex.Op.IsLogical() {
			c.logical(ex, dst)
			return
		}
		if ex.L.ExprType().IsFloat() || ex.R.ExprType().IsFloat() {
			l := c.fltVal(ex.L)
			r := c.fltVal(ex.R)
			c.emit(Instr{Op: fltCmpOps[ex.Op], A: dst, B: l, C: r})
		} else {
			l := c.intVal(ex.L)
			r := c.intVal(ex.R)
			c.emit(Instr{Op: intCmpOps[ex.Op], A: dst, B: l, C: r})
		}
	default:
		failf("exec: cannot compile bool expression %T", e)
	}
}

// logical compiles a short-circuit && or ||. The left value lands in a
// scratch register first when dst could be read by the right operand
// (dst below the temp floor means it is a live variable).
func (c *compiler) logical(ex *inspire.BinOp, dst int32) {
	t := dst
	if dst < c.floorI {
		t = c.allocI()
	}
	c.boolInto(ex.L, t)
	op := OpJZLog
	if ex.Op == inspire.OpLOr {
		op = OpJNZLog
	}
	j := c.emit(Instr{Op: op, A: t})
	c.boolInto(ex.R, t)
	c.patch(j, c.here())
	if t != dst {
		c.emit(Instr{Op: OpMovI, A: dst, B: t})
	}
}

func (c *compiler) selectInto(cond, then, els inspire.Expr, dst int32, k valKind) {
	t := c.boolVal(cond)
	jz := c.emit(Instr{Op: OpJZBr, A: t})
	c.kindInto(then, dst, k)
	j := c.emit(Instr{Op: OpJmp})
	c.patch(jz, c.here())
	c.kindInto(els, dst, k)
	c.patch(j, c.here())
}

func (c *compiler) kindInto(e inspire.Expr, dst int32, k valKind) {
	switch k {
	case kindFloat:
		c.fltInto(e, dst)
	case kindBool:
		c.boolInto(e, dst)
	default:
		c.intInto(e, dst)
	}
}

func (c *compiler) load(ex *inspire.Load, dst int32, isFloat bool) {
	ref, ok := c.bufs[ex.Buf]
	if !ok {
		failf("exec: cannot compile load from %s", ex.Buf)
	}
	idx := c.intVal(ex.Index)
	var op Opcode
	switch {
	case isFloat && ref.local:
		op = OpLdLF
	case isFloat:
		op = OpLdGF
	case ref.local:
		op = OpLdLI
	default:
		op = OpLdGI
	}
	c.emit(Instr{Op: op, A: dst, B: ref.slot, C: idx, Imm: int64(ref.name)})
}

func (c *compiler) workItem(ex *inspire.WorkItem, dst int32) {
	if ci, ok := ex.Dim.(*inspire.ConstInt); ok && ci.Value >= 0 && ci.Value <= 2 {
		c.emit(Instr{Op: OpWI, A: dst, B: int32(ex.Query), C: int32(ci.Value)})
		return
	}
	d := c.intVal(ex.Dim)
	c.emit(Instr{Op: OpWIDyn, A: dst, B: int32(ex.Query), C: d})
}

var fltUnaryBuiltins = map[string]Opcode{
	"sqrt": OpSqrtF, "rsqrt": OpRsqrtF, "exp": OpExpF, "log": OpLogF,
	"log2": OpLog2F, "sin": OpSinF, "cos": OpCosF, "tan": OpTanF,
	"fabs": OpAbsF, "abs": OpAbsF, "floor": OpFloorF, "ceil": OpCeilF,
}

var fltBinaryBuiltins = map[string]Opcode{
	"pow": OpPowF, "fmin": OpMinF, "min": OpMinF, "fmax": OpMaxF, "max": OpMaxF,
}

func (c *compiler) fltBuiltin(ex *inspire.CallBuiltin, dst int32) {
	args := make([]int32, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.fltVal(a)
	}
	switch {
	case fltUnaryBuiltins[ex.Name] != 0:
		c.emit(Instr{Op: fltUnaryBuiltins[ex.Name], A: dst, B: args[0]})
	case fltBinaryBuiltins[ex.Name] != 0:
		c.emit(Instr{Op: fltBinaryBuiltins[ex.Name], A: dst, B: args[0], C: args[1]})
	case ex.Name == "fma" || ex.Name == "mad":
		c.emit(Instr{Op: OpFmaF, A: dst, B: args[0], C: args[1], Imm: int64(args[2])})
	case ex.Name == "clamp":
		c.emit(Instr{Op: OpClampF, A: dst, B: args[0], C: args[1], Imm: int64(args[2])})
	default:
		failf("exec: unknown float builtin %q", ex.Name)
	}
}

func (c *compiler) intBuiltin(ex *inspire.CallBuiltin, dst int32) {
	args := make([]int32, len(ex.Args))
	for i, a := range ex.Args {
		args[i] = c.intVal(a)
	}
	switch ex.Name {
	case "min":
		c.emit(Instr{Op: OpMinI, A: dst, B: args[0], C: args[1]})
	case "max":
		c.emit(Instr{Op: OpMaxI, A: dst, B: args[0], C: args[1]})
	case "abs":
		c.emit(Instr{Op: OpAbsI, A: dst, B: args[0]})
	case "clamp":
		c.emit(Instr{Op: OpClampI, A: dst, B: args[0], C: args[1], Imm: int64(args[2])})
	default:
		failf("exec: unknown int builtin %q", ex.Name)
	}
}

// callInto inlines a helper call: arguments are evaluated in order into
// freshly allocated callee registers, buffer arguments rebind the
// callee's slots to the caller's, and the body is compiled in place
// with returns jumping past it. The destination is zeroed first so a
// body that falls off the end yields the closure tier's zero return.
func (c *compiler) callInto(ex *inspire.CallFunc, dst int32, isFloat bool) {
	callee := ex.Callee
	for _, f := range c.inline {
		if f == callee {
			failf("exec: recursive helper %q not supported", callee.Name)
		}
	}
	saveFI, saveFF := c.floorI, c.floorF
	for i, p := range callee.Params {
		a := ex.Args[i]
		switch {
		case p.Type.Ptr && p.Type.Space == minicl.Local:
			vr, ok := a.(*inspire.VarRef)
			if !ok {
				failf("exec: local buffer argument to %q must be a parameter reference", callee.Name)
			}
			ref := c.bufs[vr.Var]
			ref.name = c.nameOf(p.Name)
			c.bufs[p] = ref
		case p.Type.Ptr:
			vr, ok := a.(*inspire.VarRef)
			if !ok {
				failf("exec: buffer argument to %q must be a parameter reference", callee.Name)
			}
			ref := c.bufs[vr.Var]
			ref.name = c.nameOf(p.Name)
			c.bufs[p] = ref
		case p.Type.IsFloat():
			r := c.allocF()
			c.fltInto(a, r)
			c.regF[p] = r
		default:
			r := c.allocI()
			if p.Type.IsBool() {
				c.boolInto(a, r)
			} else {
				c.intInto(a, r)
			}
			c.regI[p] = r
		}
	}
	c.declareLocals(callee.Body)
	c.floorI, c.floorF = c.nextI, c.nextF
	if isFloat {
		c.emit(Instr{Op: OpLdcF, A: dst, Imm: int64(c.fconst(0))})
	} else {
		c.emit(Instr{Op: OpLdcI, A: dst})
	}
	r := &retCtx{dst: dst, isFloat: isFloat}
	c.rets = append(c.rets, r)
	c.inline = append(c.inline, callee)
	c.block(callee.Body)
	c.inline = c.inline[:len(c.inline)-1]
	c.rets = c.rets[:len(c.rets)-1]
	end := c.here()
	for _, pc := range r.jumps {
		c.patch(pc, end)
	}
	c.floorI, c.floorF = saveFI, saveFF
}
