package vm

import "math"

// fuse runs the peephole super-instruction passes over a compiled
// function: constant→immediate folding, load-operate fusion,
// multiply-add fusion, and compare-branch fusion. Each fused
// instruction bumps exactly the counters its unfused pair would have,
// so profiles stay byte-identical with fusion on or off.
//
// A pair (producer, consumer) fuses only when the producer's
// destination is written and read exactly once in the whole function
// (a single-use temporary) and the consumer is not a jump target, so
// no control flow can observe the intermediate register or enter
// between the two instructions.
func fuse(p *Func) {
	n := 0
	n += fusePass(p, tryConstImm)
	n += fusePass(p, tryLoadOp)
	n += fusePass(p, tryMulAccLd)
	n += fusePass(p, tryMulAdd)
	n += fusePass(p, tryMulMul)
	n += fusePass(p, tryAddRsqrt)
	n += fusePass(p, tryIdxLoad)
	n += fusePass(p, tryCmpBranch)
	n += threadJumps(p)
	n += fusePass(p, tryIncJCmp)
	p.Fused = n
}

// regUse tallies per-register reads and writes from the operand formats
// in the opcode registry.
type regUse struct {
	rI, wI []int
	rF, wF []int
}

func useCounts(p *Func) *regUse {
	u := &regUse{
		rI: make([]int, p.NumI), wI: make([]int, p.NumI),
		rF: make([]int, p.NumF), wF: make([]int, p.NumF),
	}
	for i := range p.Code {
		in := &p.Code[i]
		info, _ := LookupOp(in.Op)
		switch info.Fmt {
		case FmtIabc:
			u.wI[in.A]++
			u.rI[in.B]++
			u.rI[in.C]++
		case FmtIab, FmtIabImm:
			u.wI[in.A]++
			u.rI[in.B]++
		case FmtIaImm:
			u.wI[in.A]++
		case FmtFabc:
			u.wF[in.A]++
			u.rF[in.B]++
			u.rF[in.C]++
		case FmtFab:
			u.wF[in.A]++
			u.rF[in.B]++
		case FmtFaPool:
			u.wF[in.A]++
		case FmtFaIb:
			u.wF[in.A]++
			u.rI[in.B]++
		case FmtIaFb:
			u.wI[in.A]++
			u.rF[in.B]++
		case FmtIaFbc:
			u.wI[in.A]++
			u.rF[in.B]++
			u.rF[in.C]++
		case FmtFabcImm:
			u.wF[in.A]++
			u.rF[in.B]++
			u.rF[in.C]++
			u.rF[in.Imm]++
		case FmtIabcImm:
			u.wI[in.A]++
			u.rI[in.B]++
			u.rI[in.C]++
			u.rI[in.Imm]++
		case FmtMulImmAdd:
			u.wI[in.A]++
			u.rI[in.B]++
			u.rI[in.C]++
		case FmtJCond:
			u.rI[in.A]++
		case FmtWI:
			u.wI[in.A]++
		case FmtWIDyn:
			u.wI[in.A]++
			u.rI[in.C]++
		case FmtLoadF:
			u.wF[in.A]++
			u.rI[in.C]++
		case FmtLoadI:
			u.wI[in.A]++
			u.rI[in.C]++
		case FmtStoreF:
			u.rF[in.A]++
			u.rI[in.C]++
		case FmtStoreI:
			u.rI[in.A]++
			u.rI[in.C]++
		case FmtFusedLdF:
			u.wF[in.A]++
			u.rF[in.B]++
			u.rI[in.C]++
		case FmtFusedMacF:
			u.wF[in.A]++
			u.rF[in.A]++
			u.rF[in.B]++
			u.rI[in.C]++
		case FmtLdIdxF:
			u.wF[in.A]++
			u.rI[in.B]++
			u.rI[in.C]++
			_, _, r := unpackMemIdx(in.Imm)
			u.rI[r]++
		case FmtMacIdxF:
			u.wF[in.A]++
			u.rF[in.A]++
			u.rF[in.B]++
			u.rI[in.C]++
			_, _, r2, r3 := unpackMacIdx(in.Imm)
			u.rI[r2]++
			u.rI[r3]++
		case FmtJCmpI:
			u.rI[in.A]++
			u.rI[in.B]++
		case FmtIncJCmpI:
			u.wI[in.A]++
			u.rI[in.A]++
			u.rI[in.B]++
			u.rI[in.C]++
		case FmtJCmpIImm:
			u.rI[in.A]++
		case FmtJCmpF:
			u.rF[in.A]++
			u.rF[in.B]++
		}
	}
	return u
}

func (u *regUse) soloI(r int32) bool { return u.wI[r] == 1 && u.rI[r] == 1 }
func (u *regUse) soloF(r int32) bool { return u.wF[r] == 1 && u.rF[r] == 1 }

// jumpTargets returns the set of instruction indices any jump lands on.
func jumpTargets(code []Instr) map[int]bool {
	t := map[int]bool{}
	for i := range code {
		switch code[i].Op {
		case OpJmp, OpJZBr, OpJZLog, OpJNZLog, OpJCmpI, OpJCmpF:
			t[int(code[i].Imm)] = true
		case OpJCmpIImm:
			t[int(code[i].C)] = true
		case OpIncJCmpI:
			_, tgt := unpackCcTarget(code[i].Imm)
			t[int(tgt)] = true
		}
	}
	return t
}

type fuseFn func(a, b *Instr, u *regUse) (Instr, bool)

// fusePass makes one left-to-right sweep, replacing each fusable
// adjacent pair with its super-instruction and remapping jump targets
// over the compacted code.
func fusePass(p *Func, try fuseFn) int {
	targets := jumpTargets(p.Code)
	u := useCounts(p)
	out := make([]Instr, 0, len(p.Code))
	newPC := make([]int, len(p.Code)+1)
	n := 0
	for i := 0; i < len(p.Code); i++ {
		newPC[i] = len(out)
		if i+1 < len(p.Code) && !targets[i+1] {
			if f, ok := try(&p.Code[i], &p.Code[i+1], u); ok {
				out = append(out, f)
				newPC[i+1] = len(out) - 1
				i++
				n++
				continue
			}
		}
		out = append(out, p.Code[i])
	}
	newPC[len(p.Code)] = len(out)
	if n == 0 {
		return 0
	}
	for i := range out {
		switch out[i].Op {
		case OpJmp, OpJZBr, OpJZLog, OpJNZLog, OpJCmpI, OpJCmpF:
			out[i].Imm = int64(newPC[out[i].Imm])
		case OpJCmpIImm:
			out[i].C = int32(newPC[out[i].C])
		case OpIncJCmpI:
			cc, tgt := unpackCcTarget(out[i].Imm)
			out[i].Imm = packCcTarget(cc, int64(newPC[tgt]))
		}
	}
	p.Code = out
	return n
}

// immForms maps a register-register integer op to its immediate form.
var immForms = map[Opcode]Opcode{
	OpAddI: OpAddIImm, OpMulI: OpMulIImm, OpDivI: OpDivIImm, OpModI: OpModIImm,
	OpShlI: OpShlIImm, OpShrI: OpShrIImm, OpAndI: OpAndIImm, OpOrI: OpOrIImm,
	OpXorI: OpXorIImm,
	OpLtI:  OpLtIImm, OpLeI: OpLeIImm, OpGtI: OpGtIImm, OpGeI: OpGeIImm,
	OpEqI: OpEqIImm, OpNeI: OpNeIImm,
}

// tryConstImm folds `ldc.i t, k` into the following instruction when it
// consumes t as its right-hand operand.
func tryConstImm(a, b *Instr, u *regUse) (Instr, bool) {
	if a.Op != OpLdcI || !u.soloI(a.A) {
		return Instr{}, false
	}
	t, k := a.A, a.Imm
	if b.C != t {
		return Instr{}, false
	}
	if b.Op == OpSubI {
		if k == math.MinInt64 {
			return Instr{}, false
		}
		return Instr{Op: OpAddIImm, A: b.A, B: b.B, Imm: -k}, true
	}
	op, ok := immForms[b.Op]
	if !ok {
		return Instr{}, false
	}
	if (op == OpDivIImm || op == OpModIImm) && k == 0 {
		return Instr{}, false
	}
	return Instr{Op: op, A: b.A, B: b.B, Imm: k}, true
}

// tryLoadOp fuses a global float load feeding a float add, multiply, or
// subtract (either side of the subtract).
func tryLoadOp(a, b *Instr, u *regUse) (Instr, bool) {
	if a.Op != OpLdGF || !u.soloF(a.A) {
		return Instr{}, false
	}
	t := a.A
	mem := packMem(a.B, int32(a.Imm))
	switch b.Op {
	case OpAddF, OpMulF:
		op := OpAddFLdG
		if b.Op == OpMulF {
			op = OpMulFLdG
		}
		var x int32
		switch t {
		case b.C:
			x = b.B
		case b.B:
			x = b.C
		default:
			return Instr{}, false
		}
		return Instr{Op: op, A: b.A, B: x, C: a.C, Imm: mem}, true
	case OpSubF:
		switch t {
		case b.C:
			return Instr{Op: OpSubFLdG, A: b.A, B: b.B, C: a.C, Imm: mem}, true
		case b.B:
			return Instr{Op: OpLdSubFG, A: b.A, B: b.C, C: a.C, Imm: mem}, true
		}
	}
	return Instr{}, false
}

// tryMulAccLd fuses a mulld.f feeding an accumulating add (the reduction
// shape `acc = acc + x * buf[i]`) into one multiply-accumulate-from-load.
func tryMulAccLd(a, b *Instr, u *regUse) (Instr, bool) {
	if a.Op != OpMulFLdG || b.Op != OpAddF || !u.soloF(a.A) {
		return Instr{}, false
	}
	t := a.A
	if (b.B == t && b.C == b.A) || (b.C == t && b.B == b.A) {
		return Instr{Op: OpMulAccLdG, A: b.A, B: a.B, C: a.C, Imm: a.Imm}, true
	}
	return Instr{}, false
}

// tryMulAdd fuses a multiply feeding an add into a two-count
// multiply-add super-instruction.
func tryMulAdd(a, b *Instr, u *regUse) (Instr, bool) {
	switch a.Op {
	case OpMulI, OpMulIImm:
		if b.Op != OpAddI || !u.soloI(a.A) {
			return Instr{}, false
		}
		var other int32
		switch a.A {
		case b.B:
			other = b.C
		case b.C:
			other = b.B
		default:
			return Instr{}, false
		}
		if a.Op == OpMulIImm {
			return Instr{Op: OpMulImmAddI, A: b.A, B: a.B, C: other, Imm: a.Imm}, true
		}
		return Instr{Op: OpMulAddI, A: b.A, B: a.B, C: a.C, Imm: int64(other)}, true
	case OpMulF:
		if b.Op != OpAddF || !u.soloF(a.A) {
			return Instr{}, false
		}
		var other int32
		switch a.A {
		case b.B:
			other = b.C
		case b.C:
			other = b.B
		default:
			return Instr{}, false
		}
		return Instr{Op: OpMulAddF, A: b.A, B: a.B, C: a.C, Imm: int64(other)}, true
	}
	return Instr{}, false
}

// tryMulMul fuses a float multiply feeding another multiply (the
// power/scaling chain `a*b*c`) into one two-count super-instruction.
func tryMulMul(a, b *Instr, u *regUse) (Instr, bool) {
	if a.Op != OpMulF || b.Op != OpMulF || !u.soloF(a.A) {
		return Instr{}, false
	}
	var other int32
	switch a.A {
	case b.B:
		other = b.C
	case b.C:
		other = b.B
	default:
		return Instr{}, false
	}
	return Instr{Op: OpMulMulF, A: b.A, B: a.B, C: a.C, Imm: int64(other)}, true
}

// tryAddRsqrt fuses a float add feeding rsqrt — the softened
// inverse-distance shape 1/sqrt(d2 + eps) in particle kernels.
func tryAddRsqrt(a, b *Instr, u *regUse) (Instr, bool) {
	if a.Op != OpAddF || b.Op != OpRsqrtF || b.B != a.A || !u.soloF(a.A) {
		return Instr{}, false
	}
	return Instr{Op: OpAddRsqrtF, A: b.A, B: a.B, C: a.C}, true
}

// tryIdxLoad folds a muladd.i address computation (the row-major
// `i*stride + j` shape) into the load it feeds.
func tryIdxLoad(a, b *Instr, u *regUse) (Instr, bool) {
	if a.Op != OpMulAddI || !u.soloI(a.A) {
		return Instr{}, false
	}
	switch b.Op {
	case OpLdGF:
		if b.C != a.A || b.B >= 1<<15 || b.Imm >= 1<<31 || a.Imm >= 1<<16 {
			return Instr{}, false
		}
		return Instr{Op: OpLdGFIdx, A: b.A, B: a.B, C: a.C,
			Imm: packMemIdx(b.B, int32(b.Imm), int32(a.Imm))}, true
	case OpMulAccLdG:
		slot, name := unpackMem(b.Imm)
		if b.C != a.A || slot >= 1<<15 || name >= 1<<16 || a.C >= 1<<16 || a.Imm >= 1<<16 {
			return Instr{}, false
		}
		return Instr{Op: OpMacLdGIdx, A: b.A, B: b.B, C: a.B,
			Imm: packMacIdx(slot, name, a.C, int32(a.Imm))}, true
	}
	return Instr{}, false
}

// negCc is the condition that makes a fused compare-branch jump exactly
// when the original jz.br would have (i.e. when the compare is false).
var negCc = map[Opcode]int32{
	OpLtI: CcGe, OpLeI: CcGt, OpGtI: CcLe, OpGeI: CcLt, OpEqI: CcNe, OpNeI: CcEq,
	OpLtIImm: CcGe, OpLeIImm: CcGt, OpGtIImm: CcLe, OpGeIImm: CcLt,
	OpEqIImm: CcNe, OpNeIImm: CcEq,
	OpLtF: CcGe, OpLeF: CcGt, OpGtF: CcLe, OpGeF: CcLt, OpEqF: CcNe, OpNeF: CcEq,
}

// tryCmpBranch fuses a comparison feeding a jz.br into one
// compare-and-branch that jumps on the negated condition.
func tryCmpBranch(a, b *Instr, u *regUse) (Instr, bool) {
	cc, ok := negCc[a.Op]
	if !ok || b.Op != OpJZBr || b.A != a.A || !u.soloI(a.A) {
		return Instr{}, false
	}
	switch {
	case a.Op >= OpLtIImm && a.Op <= OpNeIImm:
		return Instr{Op: OpJCmpIImm, A: a.B, B: cc, C: int32(b.Imm), Imm: a.Imm}, true
	case a.Op >= OpLtF && a.Op <= OpNeF:
		return Instr{Op: OpJCmpF, A: a.B, B: a.C, C: cc, Imm: b.Imm}, true
	default:
		return Instr{Op: OpJCmpI, A: a.B, B: a.C, C: cc, Imm: b.Imm}, true
	}
}

// tryIncJCmp fuses a loop counter update into the rotated backedge
// compare, so a counted loop's steady-state overhead is one dispatch.
// Both effects of the pair (the counter write and the compare-branch)
// are preserved, so no single-use condition is needed — only adjacency
// and the no-jump-target rule fusePass already enforces.
func tryIncJCmp(a, b *Instr, u *regUse) (Instr, bool) {
	if a.Op != OpAddI || b.Op != OpJCmpI || b.A != a.A {
		return Instr{}, false
	}
	var step int32
	switch a.A {
	case a.B:
		step = a.C
	case a.C:
		step = a.B
	default:
		return Instr{}, false
	}
	return Instr{Op: OpIncJCmpI, A: a.A, B: step, C: b.B,
		Imm: packCcTarget(b.C, b.Imm)}, true
}

// threadJumps rotates counted loops: a jmp whose target is a fused
// compare-branch exiting to the instruction right after the jmp is
// replaced in place by the inverted compare targeting the loop body, so
// steady-state iterations pay one dispatch instead of two. The head
// compare still guards entry; total compare/branch counts are unchanged
// (head runs once, the rotated copy runs once per iteration).
func threadJumps(p *Func) int {
	n := 0
	for i := range p.Code {
		in := &p.Code[i]
		if in.Op != OpJmp {
			continue
		}
		t := int(in.Imm)
		if t < 0 || t >= len(p.Code) {
			continue
		}
		h := p.Code[t]
		switch h.Op {
		case OpJCmpI, OpJCmpF:
			if int(h.Imm) == i+1 {
				*in = Instr{Op: h.Op, A: h.A, B: h.B, C: invCc[h.C], Imm: int64(t + 1)}
				n++
			}
		case OpJCmpIImm:
			if int(h.C) == i+1 {
				*in = Instr{Op: OpJCmpIImm, A: h.A, B: invCc[h.B], C: int32(t + 1), Imm: h.Imm}
				n++
			}
		}
	}
	return n
}
