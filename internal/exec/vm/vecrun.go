package vm

import (
	"fmt"
	"math"
)

// Diverged reports that a vector Run stopped because the group's lanes
// disagreed at a varying branch with no safe join point, or some lane
// would have faulted (out-of-bounds access, division by zero, bad
// work-item dimension). Unless the frame says otherwise (PCLaned), the
// PC is parked at the offending instruction, which has neither
// executed nor counted; the caller completes each lane on the scalar
// VM, which reproduces the canonical per-item behavior (including the
// exact fault message, if any). Lane disagreements at branches WITH a
// recorded join point are handled internally: the sides run as
// compacted sub-groups and the group re-forms (see diverge).
const Diverged Status = 2

// Run executes all W lanes of the frame from its saved PC until the
// kernel halts, the group diverges irreducibly (see Diverged), the
// frame's Stop PC — the join point of a divergence split — is reached,
// or the step budget is exhausted. Every arm mirrors the scalar VM arm
// exactly — same float expression shapes (so rounding is
// bit-identical), same counter constants, same count-vs-check
// placement — but loops over lanes inside the single dispatch.
// Memory and fault-checked arms run two passes (scan every lane's
// index, then execute) so a bail-out leaves the frame exactly at
// pre-instruction state.
//
// Scalarization: runs of instructions with uniform destinations are
// delegated to scalRun, which executes them once per dispatch on the
// scalar slots. Vector arms read uniform operands through rdI/rdF,
// which broadcast the scalar slot into scratch lanes on demand — the
// lane storage of a uniform register holds garbage and is never read
// directly. The hottest memory arms skip the broadcast entirely when
// the address is uniform: one bounds check, one load, splat the value.
func (p *VecFunc) Run(f *VecFrame) (Status, error) {
	code := p.Code
	w := f.W
	wd := int64(w)
	pc := f.PC
	var a0 uint64
	a1 := uint64(p.room) << roomShift
dispatch:
	for pc < len(code) {
		if pc == f.Stop {
			p.exitVec(f, a0, a1, pc)
			return joined, nil
		}
		if p.scal[pc] {
			// The fused counted-loop back-edge is the hottest scalarized
			// instruction — in a kernel like matmul it is the ONLY one
			// between two vector dispatches, every iteration. Execute it
			// inline (mirroring the scalRun arm exactly) instead of
			// paying the scalRun call prologue for a one-instruction run.
			if in := &code[pc]; in.Op == OpIncJCmpI {
				a0 += 2 * lIntOp
				a1 += lBranch
				v := f.SI[in.A&f.mi] + f.SI[in.B&f.mi]
				f.SI[in.A&f.mi] = v
				cc, target := unpackCcTarget(in.Imm)
				if ccHoldsI(cc, v, f.SI[in.C&f.mi]) {
					a1 -= roomOne
					if a1 < roomOne {
						f.Cnt.addPacked(a0, a1)
						a0, a1 = 0, uint64(p.room)<<roomShift
					}
					if err := f.spend(wd); err != nil {
						p.exitVec(f, a0, a1, pc)
						return Halted, err
					}
					pc = int(target)
				} else {
					pc++
				}
				continue
			}
			st, done, err := p.scalRun(f, &a0, &a1, &pc, wd)
			if done {
				return st, err
			}
			continue
		}
		in := &code[pc]
		su := p.srcU[pc]
		switch in.Op {
		case OpNop:
		case OpHalt:
			p.exitVec(f, a0, a1, pc)
			return Halted, nil

		case OpMovI:
			copy(f.lanesI(in.A), f.rdI(in.B, su&srcUB != 0, 0))
		case OpMovF:
			copy(f.lanesF(in.A), f.rdF(in.B, su&srcUB != 0, 0))
		case OpLdcI:
			d := f.lanesI(in.A)
			for l := range d {
				d[l] = in.Imm
			}
		case OpLdcF:
			d := f.lanesF(in.A)
			v := p.FPool[in.Imm]
			for l := range d {
				d[l] = v
			}
		case OpI2F:
			d := f.lanesF(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = float64(b[l])
			}
		case OpF2I:
			d := f.lanesI(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = int64(b[l])
			}
		case OpSnzI:
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] != 0)
			}

		case OpAddI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] + c[l]
			}
		case OpSubI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] - c[l]
			}
		case OpMulI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] * c[l]
			}
		case OpDivI:
			c := f.rdI(in.C, su&srcUC != 0, 1)
			for l := range c {
				if c[l] == 0 {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
			}
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c = c[:len(d)]
			for l := range d {
				d[l] = b[l] / c[l]
			}
		case OpModI:
			c := f.rdI(in.C, su&srcUC != 0, 1)
			for l := range c {
				if c[l] == 0 {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
			}
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c = c[:len(d)]
			for l := range d {
				d[l] = b[l] % c[l]
			}
		case OpAndI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] & c[l]
			}
		case OpOrI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] | c[l]
			}
		case OpXorI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] ^ c[l]
			}
		case OpShlI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] << uint(c[l]&63)
			}
		case OpShrI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] >> uint(c[l]&63)
			}
		case OpNegI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = -b[l]
			}
		case OpNotB:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] == 0)
			}

		case OpAddIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] + in.Imm
			}
		case OpMulIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] * in.Imm
			}
		case OpDivIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] / in.Imm
			}
		case OpModIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] % in.Imm
			}
		case OpShlIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] << uint(in.Imm&63)
			}
		case OpShrIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] >> uint(in.Imm&63)
			}
		case OpAndIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] & in.Imm
			}
		case OpOrIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] | in.Imm
			}
		case OpXorIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b[l] ^ in.Imm
			}

		case OpLtI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] < c[l])
			}
		case OpLeI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] <= c[l])
			}
		case OpGtI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] > c[l])
			}
		case OpGeI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] >= c[l])
			}
		case OpEqI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] == c[l])
			}
		case OpNeI:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] != c[l])
			}

		case OpLtIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] < in.Imm)
			}
		case OpLeIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] <= in.Imm)
			}
		case OpGtIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] > in.Imm)
			}
		case OpGeIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] >= in.Imm)
			}
		case OpEqIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] == in.Imm)
			}
		case OpNeIImm:
			a0 += lIntOp
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] != in.Imm)
			}

		case OpAddF:
			a0 += lFloatOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] + c[l]
			}
		case OpSubF:
			a0 += lFloatOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] - c[l]
			}
		case OpMulF:
			a0 += lFloatOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] * c[l]
			}
		case OpDivF:
			a0 += lFloatOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b[l] / c[l]
			}
		case OpNegF:
			a0 += lFloatOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = -b[l]
			}

		case OpLtF:
			a0 += lFloatOp
			d := f.lanesI(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] < c[l])
			}
		case OpLeF:
			a0 += lFloatOp
			d := f.lanesI(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] <= c[l])
			}
		case OpGtF:
			a0 += lFloatOp
			d := f.lanesI(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] > c[l])
			}
		case OpGeF:
			a0 += lFloatOp
			d := f.lanesI(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] >= c[l])
			}
		case OpEqF:
			a0 += lFloatOp
			d := f.lanesI(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] == c[l])
			}
		case OpNeF:
			a0 += lFloatOp
			d := f.lanesI(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = b2i(b[l] != c[l])
			}

		case OpJmp:
			a1 -= roomOne
			if a1 < roomOne {
				f.Cnt.addPacked(a0, a1)
				a0, a1 = 0, uint64(p.room)<<roomShift
			}
			if err := f.spend(wd); err != nil {
				p.exitVec(f, a0, a1, pc)
				return Halted, err
			}
			pc = int(in.Imm)
			continue
		case OpJZBr:
			var taken bool
			if p.condUniform[pc] {
				taken = f.lanesI(in.A)[0] == 0
			} else {
				a := f.lanesI(in.A)
				taken = a[0] == 0
				for l := 1; l < len(a); l++ {
					if (a[l] == 0) != taken {
						st, err := p.diverge(f, &a0, &a1, pc)
						if st != joined || err != nil {
							return st, err
						}
						pc = f.PC
						continue dispatch
					}
				}
			}
			a1 += lBranch
			if taken {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					p.exitVec(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJZLog:
			var taken bool
			if p.condUniform[pc] {
				taken = f.lanesI(in.A)[0] == 0
			} else {
				a := f.lanesI(in.A)
				taken = a[0] == 0
				for l := 1; l < len(a); l++ {
					if (a[l] == 0) != taken {
						st, err := p.diverge(f, &a0, &a1, pc)
						if st != joined || err != nil {
							return st, err
						}
						pc = f.PC
						continue dispatch
					}
				}
			}
			a0 += lIntOp
			if taken {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					p.exitVec(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJNZLog:
			var taken bool
			if p.condUniform[pc] {
				taken = f.lanesI(in.A)[0] != 0
			} else {
				a := f.lanesI(in.A)
				taken = a[0] != 0
				for l := 1; l < len(a); l++ {
					if (a[l] != 0) != taken {
						st, err := p.diverge(f, &a0, &a1, pc)
						if st != joined || err != nil {
							return st, err
						}
						pc = f.PC
						continue dispatch
					}
				}
			}
			a0 += lIntOp
			if taken {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					p.exitVec(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}

		case OpWI:
			a0 += lIntOp
			copy(f.lanesI(in.A), f.WI[in.B][in.C])
		case OpWIDyn:
			if su&srcUC != 0 {
				dim := f.SI[in.C&f.mi]
				if uint64(dim) > 2 {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += lIntOp
				copy(f.lanesI(in.A), f.WI[in.B][dim])
			} else {
				dim := f.lanesI(in.C)
				for l := range dim {
					if uint64(dim[l]) > 2 {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += lIntOp
				d := f.lanesI(in.A)
				dim = dim[:len(d)]
				q := &f.WI[in.B]
				for l := range d {
					d[l] = q[dim[l]][l]
				}
			}

		case OpLdGF:
			b := &f.Globals[in.B]
			n := uint64(len(b.F))
			if su&srcUC != 0 {
				// Uniform address: one bounds check, one load, splat.
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += lGLoad
				d := f.lanesF(in.A)
				v := float64(b.F[i])
				for l := range d {
					d[l] = v
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += lGLoad
				d := f.lanesF(in.A)
				ix = ix[:len(d)]
				bf := b.F
				for l := range d {
					d[l] = float64(bf[ix[l]])
				}
			}
		case OpLdGI:
			b := &f.Globals[in.B]
			n := uint64(len(b.I))
			if su&srcUC != 0 {
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += lGLoad
				d := f.lanesI(in.A)
				v := int64(b.I[i])
				for l := range d {
					d[l] = v
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += lGLoad
				d := f.lanesI(in.A)
				ix = ix[:len(d)]
				bi := b.I
				for l := range d {
					d[l] = int64(bi[ix[l]])
				}
			}
		case OpLdLF:
			b := &f.Locals[in.B]
			n := uint64(len(b.F))
			if su&srcUC != 0 {
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a1 += lLocalOp
				d := f.lanesF(in.A)
				v := float64(b.F[i])
				for l := range d {
					d[l] = v
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a1 += lLocalOp
				d := f.lanesF(in.A)
				ix = ix[:len(d)]
				bf := b.F
				for l := range d {
					d[l] = float64(bf[ix[l]])
				}
			}
		case OpLdLI:
			b := &f.Locals[in.B]
			n := uint64(len(b.I))
			if su&srcUC != 0 {
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a1 += lLocalOp
				d := f.lanesI(in.A)
				v := int64(b.I[i])
				for l := range d {
					d[l] = v
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a1 += lLocalOp
				d := f.lanesI(in.A)
				ix = ix[:len(d)]
				bi := b.I
				for l := range d {
					d[l] = int64(bi[ix[l]])
				}
			}

		case OpStGF:
			b := &f.Globals[in.B]
			ix := f.rdI(in.C, su&srcUC != 0, 0)
			n := uint64(len(b.F))
			for l := range ix {
				if uint64(ix[l]) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
			}
			a1 += lGStore
			src := f.rdF(in.A, su&srcUB != 0, 0)[:len(ix)]
			bf := b.F
			for l := range ix {
				bf[ix[l]] = float32(src[l])
			}
		case OpStGI:
			b := &f.Globals[in.B]
			ix := f.rdI(in.C, su&srcUC != 0, 0)
			n := uint64(len(b.I))
			for l := range ix {
				if uint64(ix[l]) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
			}
			a1 += lGStore
			src := f.rdI(in.A, su&srcUB != 0, 1)[:len(ix)]
			bi := b.I
			for l := range ix {
				bi[ix[l]] = int32(src[l])
			}
		case OpStLF:
			b := &f.Locals[in.B]
			ix := f.rdI(in.C, su&srcUC != 0, 0)
			n := uint64(len(b.F))
			for l := range ix {
				if uint64(ix[l]) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
			}
			a1 += lLocalOp
			src := f.rdF(in.A, su&srcUB != 0, 0)[:len(ix)]
			bf := b.F
			for l := range ix {
				bf[ix[l]] = float32(src[l])
			}
		case OpStLI:
			b := &f.Locals[in.B]
			ix := f.rdI(in.C, su&srcUC != 0, 0)
			n := uint64(len(b.I))
			for l := range ix {
				if uint64(ix[l]) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
			}
			a1 += lLocalOp
			src := f.rdI(in.A, su&srcUB != 0, 1)[:len(ix)]
			bi := b.I
			for l := range ix {
				bi[ix[l]] = int32(src[l])
			}

		case OpSqrtF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Sqrt(b[l])
			}
		case OpRsqrtF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = 1 / math.Sqrt(b[l])
			}
		case OpExpF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Exp(b[l])
			}
		case OpLogF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Log(b[l])
			}
		case OpLog2F:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Log2(b[l])
			}
		case OpSinF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Sin(b[l])
			}
		case OpCosF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Cos(b[l])
			}
		case OpTanF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Tan(b[l])
			}
		case OpPowF:
			a0 += lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = math.Pow(b[l], c[l])
			}
		case OpAbsF:
			a0 += lOtherB
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Abs(b[l])
			}
		case OpFloorF:
			a0 += lOtherB
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Floor(b[l])
			}
		case OpCeilF:
			a0 += lOtherB
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				d[l] = math.Ceil(b[l])
			}
		case OpMinF:
			a0 += lOtherB
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = math.Min(b[l], c[l])
			}
		case OpMaxF:
			a0 += lOtherB
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = math.Max(b[l], c[l])
			}
		case OpFmaF:
			a0 += lOtherB
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			m := f.rdF(int32(in.Imm), su&srcUX != 0, 2)[:len(d)]
			for l := range d {
				d[l] = b[l]*c[l] + m[l]
			}
		case OpClampF:
			a0 += lOtherB
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			m := f.rdF(int32(in.Imm), su&srcUX != 0, 2)[:len(d)]
			for l := range d {
				d[l] = math.Max(c[l], math.Min(b[l], m[l]))
			}

		case OpMinI:
			a0 += lOtherB
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = min(b[l], c[l])
			}
		case OpMaxI:
			a0 += lOtherB
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = max(b[l], c[l])
			}
		case OpAbsI:
			a0 += lOtherB
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			for l := range d {
				v := b[l]
				if v < 0 {
					v = -v
				}
				d[l] = v
			}
		case OpClampI:
			a0 += lOtherB
			d := f.lanesI(in.A)
			b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
			m := f.rdI(int32(in.Imm), su&srcUX != 0, 2)[:len(d)]
			for l := range d {
				d[l] = max(c[l], min(b[l], m[l]))
			}

		case OpBar:
			// The whole lane group is resident and instruction-level
			// lockstep is stronger than barrier-level lockstep: every
			// pre-barrier store has retired before any lane proceeds.
			// (Divergent regions never contain a barrier — computeJoins
			// refuses them — so this arm never runs in a side frame.)
			a1 += lBarrier

		case OpMulAddI:
			a0 += 2 * lIntOp
			d := f.lanesI(in.A)
			if su&(srcUC|srcUX) == srcUC|srcUX && su&srcUB == 0 {
				// The hot address shape: varying base times uniform
				// stride plus uniform offset, one multiply-add per lane
				// with no broadcast traffic.
				b := f.lanesI(in.B)[:len(d)]
				cv := f.SI[in.C&f.mi]
				xv := f.SI[int32(in.Imm)&f.mi]
				for l := range d {
					d[l] = b[l]*cv + xv
				}
			} else {
				b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
				c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
				m := f.rdI(int32(in.Imm), su&srcUX != 0, 2)[:len(d)]
				for l := range d {
					d[l] = b[l]*c[l] + m[l]
				}
			}
		case OpMulImmAddI:
			a0 += 2 * lIntOp
			d := f.lanesI(in.A)
			if su&srcUC != 0 && su&srcUB == 0 {
				b := f.lanesI(in.B)[:len(d)]
				cv := f.SI[in.C&f.mi]
				for l := range d {
					d[l] = b[l]*in.Imm + cv
				}
			} else {
				b := f.rdI(in.B, su&srcUB != 0, 0)[:len(d)]
				c := f.rdI(in.C, su&srcUC != 0, 1)[:len(d)]
				for l := range d {
					d[l] = b[l]*in.Imm + c[l]
				}
			}
		case OpMulAddF:
			a0 += 2 * lFloatOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			m := f.rdF(int32(in.Imm), su&srcUX != 0, 2)[:len(d)]
			for l := range d {
				// Explicit conversion as in the scalar arm: the product
				// rounds separately, never contracted into an FMA.
				d[l] = float64(b[l]*c[l]) + m[l]
			}
		case OpAddFLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			n := uint64(len(bb.F))
			if su&srcUC != 0 {
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				mv := float64(bb.F[i])
				for l := range d {
					d[l] = b[l] + mv
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				ix = ix[:len(d)]
				bf := bb.F
				for l := range d {
					d[l] = b[l] + float64(bf[ix[l]])
				}
			}
		case OpMulFLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			n := uint64(len(bb.F))
			if su&srcUC != 0 {
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				mv := float64(bb.F[i])
				for l := range d {
					d[l] = b[l] * mv
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				ix = ix[:len(d)]
				bf := bb.F
				for l := range d {
					d[l] = b[l] * float64(bf[ix[l]])
				}
			}
		case OpSubFLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			n := uint64(len(bb.F))
			if su&srcUC != 0 {
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				mv := float64(bb.F[i])
				for l := range d {
					d[l] = b[l] - mv
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				ix = ix[:len(d)]
				bf := bb.F
				for l := range d {
					d[l] = b[l] - float64(bf[ix[l]])
				}
			}
		case OpLdSubFG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			n := uint64(len(bb.F))
			if su&srcUC != 0 {
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				mv := float64(bb.F[i])
				for l := range d {
					d[l] = mv - b[l]
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				ix = ix[:len(d)]
				bf := bb.F
				for l := range d {
					d[l] = float64(bf[ix[l]]) - b[l]
				}
			}
		case OpMulAccLdG:
			slot, _ := unpackMem(in.Imm)
			bb := &f.Globals[slot]
			n := uint64(len(bb.F))
			if su&srcUC != 0 {
				// The matvec inner product: every lane multiplies its own
				// row element by the same vector element — one load for
				// the whole group.
				i := f.SI[in.C&f.mi]
				if uint64(i) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += 2*lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				mv := float64(bb.F[i])
				for l := range d {
					d[l] = d[l] + float64(b[l]*mv)
				}
			} else {
				ix := f.lanesI(in.C)
				for l := range ix {
					if uint64(ix[l]) >= n {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
				}
				a0 += 2*lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				ix = ix[:len(d)]
				bf := bb.F
				for l := range d {
					d[l] = d[l] + float64(b[l]*float64(bf[ix[l]]))
				}
			}
		case OpMulMulF:
			a0 += 2 * lFloatOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			m := f.rdF(int32(in.Imm), su&srcUX != 0, 2)[:len(d)]
			for l := range d {
				d[l] = float64(b[l]*c[l]) * m[l]
			}
		case OpAddRsqrtF:
			a0 += lFloatOp + lTransOp
			d := f.lanesF(in.A)
			b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
			c := f.rdF(in.C, su&srcUC != 0, 1)[:len(d)]
			for l := range d {
				d[l] = 1 / math.Sqrt(b[l]+c[l])
			}
		case OpLdGFIdx:
			slot, _, r3 := unpackMemIdx(in.Imm)
			bb := &f.Globals[slot]
			bf := bb.F
			const uniCX = srcUC | srcUX
			if su&uniCX == uniCX && su&srcUB == 0 {
				// row*stride+off with uniform stride and offset (the
				// matvec/matmul A-operand shape): hoist both scalars and
				// stream the varying row lanes — no scratch splats. The
				// int sources cannot alias the float dest, so compute,
				// check, and gather in one pass; dest lanes written
				// before a would-fault park are rewritten by the scalar
				// rerun of this very instruction.
				cs, rs := f.SI[in.C&f.mi], f.SI[r3&f.mi]
				b := f.lanesI(in.B)
				d := f.lanesF(in.A)[:len(b)]
				for l := range b {
					v := b[l]*cs + rs
					if uint64(v) >= uint64(len(bf)) {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
					d[l] = float64(bf[v])
				}
			} else {
				b := f.rdI(in.B, su&srcUB != 0, 0)
				c := f.rdI(in.C, su&srcUC != 0, 1)[:len(b)]
				r := f.rdI(r3, su&srcUX != 0, 2)[:len(b)]
				d := f.lanesF(in.A)[:len(b)]
				for l := range b {
					v := b[l]*c[l] + r[l]
					if uint64(v) >= uint64(len(bf)) {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
					d[l] = float64(bf[v])
				}
			}
			a0 += 2*lIntOp + lGLoad
		case OpMacLdGIdx:
			slot, _, r2, r3 := unpackMacIdx(in.Imm)
			bb := &f.Globals[slot]
			n := uint64(len(bb.F))
			const uniIdx = srcUC | srcUX2 | srcUX
			if su&uniIdx == uniIdx {
				// The matmul inner product: the B-matrix address
				// k*n + j is fully uniform when each lane owns a row —
				// one bounds check and one load feed all W multiply-adds.
				v := f.SI[in.C&f.mi]*f.SI[r2&f.mi] + f.SI[r3&f.mi]
				if uint64(v) >= n {
					p.exitVec(f, a0, a1, pc)
					return Diverged, nil
				}
				a0 += 2*lIntOp + 2*lFloatOp + lGLoad
				d := f.lanesF(in.A)
				b := f.rdF(in.B, su&srcUB != 0, 0)[:len(d)]
				mv := float64(bb.F[v])
				for l := range d {
					d[l] = d[l] + float64(b[l]*mv)
				}
			} else if su&(srcUC|srcUX2) == srcUC|srcUX2 {
				// k*stride uniform, the lane offset varying (the matmul
				// B-operand shape k*n+col): one scalar base, stream the
				// varying offset lanes. The MAC dest is read-modify-write,
				// so every lane must pass its bounds check before any dest
				// lane is written (a park after a partial MAC would
				// double-accumulate on the scalar rerun) — check first,
				// then recompute the cheap add in the fused MAC loop.
				base := f.SI[in.C&f.mi] * f.SI[r2&f.mi]
				bf := bb.F
				r := f.lanesI(r3)
				// Gather into the broadcast scratch (no splat uses it on
				// this path) so the bounds checks double as the fault
				// checks, then commit into the read-modify-write dest
				// only once every lane has passed.
				t := f.bcF[:f.W][:len(r)]
				for l := range r {
					v := base + r[l]
					if uint64(v) >= uint64(len(bf)) {
						p.exitVec(f, a0, a1, pc)
						return Diverged, nil
					}
					t[l] = float64(bf[v])
				}
				a0 += 2*lIntOp + 2*lFloatOp + lGLoad
				d := f.lanesF(in.A)[:len(r)]
				if su&srcUB != 0 {
					bv := f.SF[in.B&f.mf]
					for l := range d {
						d[l] = d[l] + bv*t[l]
					}
				} else {
					b := f.lanesF(in.B)[:len(d)]
					for l := range d {
						d[l] = d[l] + b[l]*t[l]
					}
				}
			} else {
				var idx []int64
				const uniStride = srcUX2 | srcUX
				if su&uniStride == uniStride {
					// row varying, stride and offset uniform
					// (row*n+k): hoist the two scalars.
					s2, s3 := f.SI[r2&f.mi], f.SI[r3&f.mi]
					c := f.lanesI(in.C)
					idx = f.idx[:len(c)]
					for l := range c {
						v := c[l]*s2 + s3
						if uint64(v) >= n {
							p.exitVec(f, a0, a1, pc)
							return Diverged, nil
						}
						idx[l] = v
					}
				} else {
					c := f.rdI(in.C, su&srcUC != 0, 0)
					i2 := f.rdI(r2, su&srcUX2 != 0, 1)[:len(c)]
					i3 := f.rdI(r3, su&srcUX != 0, 2)[:len(c)]
					idx = f.idx[:len(c)]
					for l := range c {
						v := c[l]*i2[l] + i3[l]
						if uint64(v) >= n {
							p.exitVec(f, a0, a1, pc)
							return Diverged, nil
						}
						idx[l] = v
					}
				}
				a0 += 2*lIntOp + 2*lFloatOp + lGLoad
				d := f.lanesF(in.A)
				idx = idx[:len(d)]
				bf := bb.F
				if su&srcUB != 0 {
					bv := f.SF[in.B&f.mf]
					for l := range d {
						d[l] = d[l] + float64(bv*float64(bf[idx[l]]))
					}
				} else {
					b := f.lanesF(in.B)[:len(d)]
					for l := range d {
						d[l] = d[l] + float64(b[l]*float64(bf[idx[l]]))
					}
				}
			}

		case OpJCmpI:
			var taken bool
			if p.condUniform[pc] {
				taken = ccHoldsI(in.C, f.lanesI(in.A)[0], f.lanesI(in.B)[0])
			} else {
				a := f.rdI(in.A, su&srcUB != 0, 0)
				b := f.rdI(in.B, su&srcUC != 0, 1)[:len(a)]
				taken = ccHoldsI(in.C, a[0], b[0])
				for l := 1; l < len(a); l++ {
					if ccHoldsI(in.C, a[l], b[l]) != taken {
						st, err := p.diverge(f, &a0, &a1, pc)
						if st != joined || err != nil {
							return st, err
						}
						pc = f.PC
						continue dispatch
					}
				}
			}
			a0 += lIntOp
			a1 += lBranch
			if taken {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					p.exitVec(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpJCmpIImm:
			var taken bool
			if p.condUniform[pc] {
				taken = ccHoldsI(in.B, f.lanesI(in.A)[0], in.Imm)
			} else {
				a := f.lanesI(in.A)
				taken = ccHoldsI(in.B, a[0], in.Imm)
				for l := 1; l < len(a); l++ {
					if ccHoldsI(in.B, a[l], in.Imm) != taken {
						st, err := p.diverge(f, &a0, &a1, pc)
						if st != joined || err != nil {
							return st, err
						}
						pc = f.PC
						continue dispatch
					}
				}
			}
			a0 += lIntOp
			a1 += lBranch
			if taken {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					p.exitVec(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.C)
				continue
			}
		case OpJCmpF:
			var taken bool
			if p.condUniform[pc] {
				taken = ccHoldsF(in.C, f.lanesF(in.A)[0], f.lanesF(in.B)[0])
			} else {
				a := f.rdF(in.A, su&srcUB != 0, 0)
				b := f.rdF(in.B, su&srcUC != 0, 1)[:len(a)]
				taken = ccHoldsF(in.C, a[0], b[0])
				for l := 1; l < len(a); l++ {
					if ccHoldsF(in.C, a[l], b[l]) != taken {
						st, err := p.diverge(f, &a0, &a1, pc)
						if st != joined || err != nil {
							return st, err
						}
						pc = f.PC
						continue dispatch
					}
				}
			}
			a0 += lFloatOp
			a1 += lBranch
			if taken {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					p.exitVec(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(in.Imm)
				continue
			}
		case OpIncJCmpI:
			// Vectorize guarantees a statically uniform condition here
			// (the fused counter mutates before testing), so lane 0
			// decides for the group with no agreement scan. Only reached
			// in v1 mode — with scalarization on, a uniform addjcmp.i is
			// always handled by scalRun.
			a0 += 2 * lIntOp
			a1 += lBranch
			d := f.lanesI(in.A)
			b := f.lanesI(in.B)[:len(d)]
			for l := range d {
				d[l] = d[l] + b[l]
			}
			cc, target := unpackCcTarget(in.Imm)
			if ccHoldsI(cc, d[0], f.lanesI(in.C)[0]) {
				a1 -= roomOne
				if a1 < roomOne {
					f.Cnt.addPacked(a0, a1)
					a0, a1 = 0, uint64(p.room)<<roomShift
				}
				if err := f.spend(wd); err != nil {
					p.exitVec(f, a0, a1, pc)
					return Halted, err
				}
				pc = int(target)
				continue
			}

		default:
			p.exitVec(f, a0, a1, pc)
			return Halted, fmt.Errorf("exec: vm: illegal opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
	p.exitVec(f, a0, a1, pc)
	return Halted, nil
}
