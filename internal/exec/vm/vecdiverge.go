package vm

// Divergence handling: when the lanes of a vector group disagree at a
// varying forward branch, diverge() splits the group into its two
// sides, runs each side as a compacted sub-group through the same
// dispatch loop up to the branch's join point (the immediate
// post-dominator recorded by Vectorize), and re-forms the full group
// there. Irreducible divergence — no safe join, splits nested past the
// depth cap, or a would-fault lane inside a side — degrades to the
// full scalar bail exactly like the original tier.

// joined is the internal status a side frame returns when its PC
// reaches the join point (VecFrame.Stop). It never escapes Run: the
// dispatching frame consumes it and resumes full-width.
const joined Status = 3

// maxDivergeDepth caps split nesting: a side of a side of a side still
// re-forms, anything deeper bails. Keeps worst-case sub-frame memory
// bounded at a handful of lanes arrays per group.
const maxDivergeDepth = 3

// diverge handles a lane disagreement at the varying conditional jump
// at pc. On success the group has re-formed: counts are spilled, f.PC
// is the join point, and the caller reseeds its accumulators and
// continues dispatch (status joined). On irreducible divergence the
// frame is left in the canonical bail state — either parked
// pre-instruction with the branch uncounted (no join recorded: the
// scalar rerun re-executes the branch), or scattered per-lane with
// PCLaned set (the sides ran partway: each lane resumes from its own
// PC with the branch already counted) — and the caller returns
// Diverged. A budget failure aborts with the error; both sides halting
// (join at the kernel exit) completes the group (status Halted).
func (p *VecFunc) diverge(f *VecFrame, a0, a1 *uint64, pc int) (Status, error) {
	f.Divergences++
	j := -1
	if f.depth < maxDivergeDepth {
		j = p.joinPC[pc]
	}
	if j < 0 {
		// Full bail: park pre-instruction, branch uncounted, so the
		// scalar completion re-executes it exactly once per item.
		p.exitVec(f, *a0, *a1, pc)
		return Diverged, nil
	}

	in := &p.Code[pc]
	// The branch retires for every lane whichever way it goes: charge
	// its static counts once, like any convergent instruction.
	switch in.Op {
	case OpJZBr:
		*a1 += lBranch
	case OpJZLog, OpJNZLog:
		*a0 += lIntOp
	case OpJCmpI, OpJCmpIImm:
		*a0 += lIntOp
		*a1 += lBranch
	case OpJCmpF:
		*a0 += lFloatOp
		*a1 += lBranch
	}
	p.evalTaken(f, pc)
	p.exitVec(f, *a0, *a1, pc)
	*a0, *a1 = 0, uint64(p.room)<<roomShift
	// The taken lanes each spent one step on the jump.
	if err := f.spend(int64(len(f.sel1))); err != nil {
		return Halted, err
	}

	target, _ := condJumpTarget(in, pc)
	s0 := p.subFrame(f, 0)
	p.fillSub(f, s0, f.sel0, pc+1, j, pc)
	s0.Fuel, f.Fuel = f.Fuel, 0
	st0, err := p.Run(s0)
	f.Fuel = s0.Fuel
	if err != nil {
		return Halted, err
	}
	s1 := p.subFrame(f, 1)
	p.fillSub(f, s1, f.sel1, target, j, pc)
	s1.Fuel, f.Fuel = f.Fuel, 0
	st1, err := p.Run(s1)
	f.Fuel = s1.Fuel
	if err != nil {
		return Halted, err
	}

	switch {
	case st0 == joined && st1 == joined:
		p.scatterSub(f, s0, f.sel0, false, pc)
		p.scatterSub(f, s1, f.sel1, false, pc)
		f.Reconverges++
		f.PC = j
		return joined, nil
	case st0 == Halted && st1 == Halted:
		// The join is the kernel exit: both sides ran to halt, so the
		// group is simply done, with per-lane counts.
		p.scatterSub(f, s0, f.sel0, false, pc)
		p.scatterSub(f, s1, f.sel1, false, pc)
		f.PC = len(p.Code)
		return Halted, nil
	default:
		// A side stopped short of the join (would-fault lane or a
		// nested split past the depth cap). Bail with per-lane state:
		// the scalar completion walks items in canonical order from
		// each lane's own PC, reproducing the canonical first fault.
		p.scatterSub(f, s0, f.sel0, true, pc)
		p.scatterSub(f, s1, f.sel1, true, pc)
		f.PCLaned = true
		f.PC = pc
		return Diverged, nil
	}
}

// evalTaken partitions the lanes of the varying conditional jump at pc
// into f.sel0 (fall-through) and f.sel1 (taken), reading uniform
// operands from the scalar slots.
func (p *VecFunc) evalTaken(f *VecFrame, pc int) {
	in := &p.Code[pc]
	su := p.srcU[pc]
	f.sel0 = f.sel0[:0]
	f.sel1 = f.sel1[:0]
	w := f.W
	route := func(l int, taken bool) {
		if taken {
			f.sel1 = append(f.sel1, l)
		} else {
			f.sel0 = append(f.sel0, l)
		}
	}
	switch in.Op {
	case OpJZBr, OpJZLog:
		a := f.lanesI(in.A)
		for l := 0; l < w; l++ {
			route(l, a[l] == 0)
		}
	case OpJNZLog:
		a := f.lanesI(in.A)
		for l := 0; l < w; l++ {
			route(l, a[l] != 0)
		}
	case OpJCmpI:
		a := f.rdI(in.A, su&srcUB != 0, 0)
		b := f.rdI(in.B, su&srcUC != 0, 1)
		for l := 0; l < w; l++ {
			route(l, ccHoldsI(in.C, a[l], b[l]))
		}
	case OpJCmpIImm:
		a := f.lanesI(in.A)
		for l := 0; l < w; l++ {
			route(l, ccHoldsI(in.B, a[l], in.Imm))
		}
	case OpJCmpF:
		a := f.rdF(in.A, su&srcUB != 0, 0)
		b := f.rdF(in.B, su&srcUC != 0, 1)
		for l := 0; l < w; l++ {
			route(l, ccHoldsF(in.C, a[l], b[l]))
		}
	}
}
