package vm

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/inspire"
)

var update = flag.Bool("update", false, "rewrite golden disassembly files")

// goldenKernels pin the bytecode encoding: any change to opcode
// selection, register allocation, or the fusion passes shows up as a
// golden diff and must be deliberate (regenerate with -update).
var goldenKernels = []struct {
	name   string
	kernel string
	noFuse bool
	source string
}{
	{
		name:   "saxpy",
		kernel: "saxpy",
		source: `
kernel void saxpy(global float* x, global float* y, float a, int n) {
	int i = get_global_id(0);
	if (i < n) {
		y[i] = a * x[i] + y[i];
	}
}`,
	},
	{
		name:   "saxpy_nofuse",
		kernel: "saxpy",
		noFuse: true,
		source: `
kernel void saxpy(global float* x, global float* y, float a, int n) {
	int i = get_global_id(0);
	if (i < n) {
		y[i] = a * x[i] + y[i];
	}
}`,
	},
	{
		name:   "dot_local",
		kernel: "dot",
		source: `
kernel void dot(global float* a, global float* b, global float* partial, local float* tile, int n) {
	int l = get_local_id(0);
	int i = get_global_id(0);
	tile[l] = (i < n) ? a[i] * b[i] : 0.0f;
	barrier(1);
	int half = get_local_size(0) / 2;
	while (half > 0) {
		if (l < half) {
			tile[l] = tile[l] + tile[l + half];
		}
		barrier(1);
		half = half / 2;
	}
	if (l == 0) {
		partial[get_group_id(0)] = tile[0];
	}
}`,
	},
	{
		name:   "helper_abs_diff",
		kernel: "k",
		source: `
float diff(global float* p, int i, int j) {
	return fabs(p[i] - p[j]);
}
kernel void k(global float* src, global float* out, int n) {
	int i = get_global_id(0);
	if (i > 0 && i < n) {
		out[i] = diff(src, i, i - 1);
	}
}`,
	},
	{
		name:   "branchy_loop",
		kernel: "k",
		source: `
kernel void k(global float* v, global float* out, int n, int steps) {
	int i = get_global_id(0);
	float acc = 0.0f;
	for (int s = 0; s < steps; s = s + 1) {
		int idx = (i * 3 + s) % n;
		float x = v[idx];
		if (x > 0.5f) {
			acc = acc + x * 2.0f;
		} else {
			acc = acc - x;
		}
	}
	out[i] = acc;
}`,
	},
}

func compileKernel(t *testing.T, name, source, kernel string, opts Options) *Func {
	t.Helper()
	u, err := inspire.LowerSource(name, source)
	if err != nil {
		t.Fatalf("lower %s: %v", name, err)
	}
	inspire.Optimize(u)
	k := u.Kernel(kernel)
	if k == nil {
		t.Fatalf("%s: kernel %q not found", name, kernel)
	}
	p, err := CompileOpts(k, opts)
	if err != nil {
		t.Fatalf("%s: vm compile: %v", name, err)
	}
	return p
}

func TestGoldenDisassembly(t *testing.T) {
	for _, tc := range goldenKernels {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := compileKernel(t, tc.name, tc.source, tc.kernel, Options{NoFuse: tc.noFuse})
			got := Disassemble(p)
			path := filepath.Join("testdata", tc.name+".disasm")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/exec/vm -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("disassembly drift for %s:\n--- got ---\n%s--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

// vecGoldenKernels pin the vector tier's uniformity classification:
// which branches run as one lane-0 test ('u') versus a runtime
// lane-agreement scan ('v'), and how many registers prove uniform. Any
// analysis change shows up as a golden diff (regenerate with -update).
var vecGoldenKernels = []struct {
	name   string
	kernel string
	source string
}{
	{
		// Varying forward guard: admitted with a runtime scan.
		name:   "vec_saxpy",
		kernel: "saxpy",
		source: `
kernel void saxpy(global float* x, global float* y, float a, int n) {
	int i = get_global_id(0);
	if (i < n) {
		y[i] = a * x[i] + y[i];
	}
}`,
	},
	{
		// Uniform counted loop: the back-edge tests one lane.
		name:   "vec_rowsum",
		kernel: "rowsum",
		source: `
kernel void rowsum(global const float* a, global float* out, int n) {
	int i = get_global_id(0);
	float s = 0.0f;
	for (int j = 0; j < n; j = j + 1) {
		s = s + a[i * n + j];
	}
	out[i] = s;
}`,
	},
	{
		// Compound varying guard plus a helper call.
		name:   "vec_helper_abs_diff",
		kernel: "k",
		source: `
float diff(global float* p, int i, int j) {
	return fabs(p[i] - p[j]);
}
kernel void k(global float* src, global float* out, int n) {
	int i = get_global_id(0);
	if (i > 0 && i < n) {
		out[i] = diff(src, i, i - 1);
	}
}`,
	},
}

func TestGoldenVecDisassembly(t *testing.T) {
	for _, tc := range vecGoldenKernels {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := compileKernel(t, tc.name, tc.source, tc.kernel, Options{})
			vp, err := Vectorize(p)
			if err != nil {
				t.Fatalf("%s: vectorize: %v", tc.name, err)
			}
			got := vp.Disassemble()
			path := filepath.Join("testdata", tc.name+".disasm")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/exec/vm -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("vec disassembly drift for %s:\n--- got ---\n%s--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

// TestFusionReducesCode checks the peephole pass actually fires on the
// canonical fusion shapes and that NoFuse leaves no super-instructions.
func TestFusionReducesCode(t *testing.T) {
	src := goldenKernels[0]
	fused := compileKernel(t, "f", src.source, src.kernel, Options{})
	plain := compileKernel(t, "p", src.source, src.kernel, Options{NoFuse: true})
	if plain.Fused != 0 {
		t.Fatalf("NoFuse program reports %d fused instructions", plain.Fused)
	}
	if fused.Fused == 0 {
		t.Fatalf("saxpy produced no super-instructions")
	}
	if len(fused.Code) >= len(plain.Code) {
		t.Fatalf("fusion did not shrink code: fused %d vs plain %d", len(fused.Code), len(plain.Code))
	}
	for i := range plain.Code {
		info, ok := LookupOp(plain.Code[i].Op)
		if !ok {
			t.Fatalf("unknown opcode %d in unfused code", plain.Code[i].Op)
		}
		if info.Super {
			t.Fatalf("unfused code contains super-instruction %s", info.Name)
		}
	}
}

// TestOpTable checks the opcode registry is dense and well-formed.
func TestOpTable(t *testing.T) {
	seen := map[string]Opcode{}
	for op := Opcode(0); op < opCount; op++ {
		info, ok := LookupOp(op)
		if !ok {
			t.Fatalf("opcode %d has no registry entry", op)
		}
		if info.Name == "" {
			t.Fatalf("opcode %d has empty mnemonic", op)
		}
		if prev, dup := seen[info.Name]; dup {
			t.Fatalf("mnemonic %q reused by opcodes %d and %d", info.Name, prev, op)
		}
		seen[info.Name] = op
		if op.String() != info.Name {
			t.Fatalf("String() mismatch for opcode %d", op)
		}
	}
	if _, ok := LookupOp(opCount); ok {
		t.Fatalf("out-of-range opcode resolved")
	}
}

func TestPackMemRoundtrip(t *testing.T) {
	cases := [][2]int32{{0, 0}, {1, 2}, {7, 40}, {2147483647, 2147483647}}
	for _, c := range cases {
		slot, name := unpackMem(packMem(c[0], c[1]))
		if slot != c[0] || name != c[1] {
			t.Fatalf("packMem(%d,%d) roundtripped to (%d,%d)", c[0], c[1], slot, name)
		}
	}
}
