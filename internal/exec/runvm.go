package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/exec/vm"
)

// VM execution path of the group runner. When the kernel carries a
// bytecode program, runGroup dispatches here; frames, buffer bindings
// and profile accounting mirror the closure path exactly, so buffers
// and profiles are byte-identical across tiers.

// initVM builds the per-runner VM frames and shared buffer-slot tables.
// No-op on the closure tier.
func (r *groupRunner) initVM(args []Arg) {
	p := r.c.vmProg
	if p == nil {
		return
	}
	// Buffer slot tables are shared by every frame of the runner. Local
	// slots alias the runner's per-group local buffers, so the per-group
	// clear in runGroup is visible to the VM.
	var globals, locals []vm.Buf
	if p.NumGlobals > 0 {
		globals = make([]vm.Buf, p.NumGlobals)
	}
	if p.NumLocal > 0 {
		locals = make([]vm.Buf, p.NumLocal)
	}
	for i := range p.Params {
		pr := &p.Params[i]
		switch pr.Kind {
		case vm.ParamGlobal:
			b := args[i].Buf
			globals[pr.Index] = vm.Buf{F: b.F, I: b.I}
		case vm.ParamLocal:
			lb := r.locals[r.c.paramSlots[i].idx]
			locals[pr.Index] = vm.Buf{F: lb.F, I: lb.I}
		}
	}
	r.vmFrames = make([]*vm.Frame, r.itemsPer)
	for i := range r.vmFrames {
		f := p.NewFrame()
		f.B = r.budget
		f.Globals = globals
		f.Locals = locals
		f.WI[vm.WIGlobalSize] = r.gsz
		f.WI[vm.WILocalSize] = r.lsz
		f.WI[vm.WINumGroups] = r.ngr
		// Bind scalar args once; they are identical for every item.
		for ai := range p.Params {
			pr := &p.Params[ai]
			switch pr.Kind {
			case vm.ParamInt:
				f.I[pr.Index] = args[ai].Int
			case vm.ParamFloat:
				f.F[pr.Index] = args[ai].Float
			}
		}
		r.vmFrames[i] = f
	}
	if r.barrier {
		r.vmDone = make([]bool, r.itemsPer)
		if r.bar != nil {
			r.vmBarFn = r.bar.wait
		}
	}
}

func (r *groupRunner) setupItemVM(f *vm.Frame, g0, g1, g2, l0, l1, l2 int) {
	f.WI[vm.WIGroupID] = [3]int64{int64(g0), int64(g1), int64(g2)}
	f.WI[vm.WILocalID] = [3]int64{int64(l0), int64(l1), int64(l2)}
	f.WI[vm.WIGlobalID] = [3]int64{
		int64(g0)*r.lsz[0] + int64(l0),
		int64(g1)*r.lsz[1] + int64(l1),
		int64(g2)*r.lsz[2] + int64(l2),
	}
	f.Reset()
}

// finishItemVM folds the item's counts into its dim-0 profile bucket,
// mirroring finishItem on the closure path.
func (r *groupRunner) finishItemVM(f *vm.Frame) {
	b := r.bucketByL0[f.WI[vm.WILocalID][0]]
	c := Counts(f.Cnt)
	c.Items = 1
	c.MaxItemOps = c.totalOps()
	r.buckets[b].Add(&c)
}

// vmRunToHalt drives a frame to completion on the calling goroutine.
// A Suspended status (barrier with no callback) just resumes: it only
// occurs here for single-item launches of barrier kernels, where the
// barrier is trivially satisfied.
func (r *groupRunner) vmRunToHalt(f *vm.Frame) {
	for {
		st, err := r.c.vmProg.Run(f)
		if err != nil {
			panic(execError{err})
		}
		if st == vm.Halted {
			return
		}
	}
}

// runGroupVM executes one work group on the bytecode VM.
func (r *groupRunner) runGroupVM(g0, g1, g2 int) {
	if !r.barrier {
		li := 0
		for l2 := 0; l2 < int(r.lsz[2]); l2++ {
			for l1 := 0; l1 < int(r.lsz[1]); l1++ {
				for l0 := 0; l0 < int(r.lsz[0]); l0++ {
					f := r.vmFrames[li]
					li++
					r.setupItemVM(f, g0, g1, g2, l0, l1, l2)
					r.vmRunToHalt(f)
					r.finishItemVM(f)
				}
			}
		}
		return
	}
	switch r.mode {
	case BarrierSpawn:
		r.runGroupVMSpawn(g0, g1, g2)
	case BarrierPooled:
		r.runGroupVMPooled(g0, g1, g2)
	default:
		r.runGroupVMLockstep(g0, g1, g2)
	}
}

// runGroupVMLockstep executes a barrier group entirely on the calling
// goroutine via suspend-resume: each frame runs until its next barrier
// (Suspended) or the end of the kernel (Halted); when every live frame
// has arrived, the round advances. Unlike the closure lockstep program
// this needs no uniformity proof — frames carry their own resume PC, so
// items may reach barriers from different control paths.
func (r *groupRunner) runGroupVMLockstep(g0, g1, g2 int) {
	li := 0
	for l2 := 0; l2 < int(r.lsz[2]); l2++ {
		for l1 := 0; l1 < int(r.lsz[1]); l1++ {
			for l0 := 0; l0 < int(r.lsz[0]); l0++ {
				f := r.vmFrames[li]
				r.setupItemVM(f, g0, g1, g2, l0, l1, l2)
				f.Barrier = nil
				r.vmDone[li] = false
				li++
			}
		}
	}
	remaining := r.itemsPer
	for remaining > 0 {
		for i, f := range r.vmFrames {
			if r.vmDone[i] {
				continue
			}
			st, err := r.c.vmProg.Run(f)
			if err != nil {
				panic(execError{err})
			}
			if st == vm.Halted {
				r.vmDone[i] = true
				remaining--
			}
		}
	}
	for _, f := range r.vmFrames {
		r.finishItemVM(f)
	}
}

// runGroupVMPooled executes a barrier group on the runner's persistent
// item pool, blocking at barriers via the cyclic group barrier.
func (r *groupRunner) runGroupVMPooled(g0, g1, g2 int) {
	r.bar.reset(r.itemsPer)
	li := 0
	for l2 := 0; l2 < int(r.lsz[2]); l2++ {
		for l1 := 0; l1 < int(r.lsz[1]); l1++ {
			for l0 := 0; l0 < int(r.lsz[0]); l0++ {
				f := r.vmFrames[li]
				li++
				r.setupItemVM(f, g0, g1, g2, l0, l1, l2)
				f.Barrier = r.vmBarFn
			}
		}
	}
	r.ensurePool()
	r.poolDone.Add(r.itemsPer)
	for i := 0; i < r.itemsPer; i++ {
		r.poolStart <- i
	}
	r.poolDone.Wait()
	if pv := r.poolPanic.Load(); pv != nil {
		panic(pv)
	}
	for _, f := range r.vmFrames {
		f.Barrier = nil
		r.finishItemVM(f)
	}
}

// runGroupVMSpawn is the legacy one-goroutine-per-item barrier path on
// the VM, retained behind RunOptions.BarrierSpawn for benchmarks.
func (r *groupRunner) runGroupVMSpawn(g0, g1, g2 int) {
	bar := newGroupBarrier(r.itemsPer)
	wait := bar.wait
	var wg sync.WaitGroup
	var panicVal atomic.Value
	li := 0
	for l2 := 0; l2 < int(r.lsz[2]); l2++ {
		for l1 := 0; l1 < int(r.lsz[1]); l1++ {
			for l0 := 0; l0 < int(r.lsz[0]); l0++ {
				f := r.vmFrames[li]
				li++
				r.setupItemVM(f, g0, g1, g2, l0, l1, l2)
				f.Barrier = wait
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer bar.leave()
					defer func() {
						if rec := recover(); rec != nil {
							panicVal.CompareAndSwap(nil, rec)
						}
					}()
					if _, err := r.c.vmProg.Run(f); err != nil {
						panic(execError{err})
					}
				}()
			}
		}
	}
	wg.Wait()
	if pv := panicVal.Load(); pv != nil {
		panic(pv)
	}
	for _, f := range r.vmFrames {
		f.Barrier = nil
		r.finishItemVM(f)
	}
}
