package exec

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/exec/vm"
	"repro/internal/inspire"
)

// Tier selects the kernel execution engine. The closure tree is always
// compiled and remains the reference implementation (the same role
// Profile.RangeNaive plays for range queries); the bytecode VM is the
// fast tier with byte-identical buffers and profiles.
type Tier int

const (
	// TierAuto executes on the bytecode VM whenever the kernel lowers,
	// falling back to the closure tree otherwise. This is the default.
	TierAuto Tier = iota
	// TierClosure forces the closure-tree interpreter.
	TierClosure
	// TierVM requires the bytecode VM; Compile fails if the kernel
	// cannot be lowered.
	TierVM
)

// String returns the tier's flag spelling.
func (t Tier) String() string {
	switch t {
	case TierClosure:
		return "closure"
	case TierVM:
		return "vm"
	default:
		return "auto"
	}
}

// ParseTier parses a tier name: auto, closure, or vm.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "auto", "":
		return TierAuto, nil
	case "closure", "closures":
		return TierClosure, nil
	case "vm", "bytecode":
		return TierVM, nil
	}
	return TierAuto, fmt.Errorf("exec: unknown execution tier %q (want auto, closure, or vm)", s)
}

var (
	tierOnce    sync.Once
	defaultTier atomic.Int32
)

// DefaultTier returns the process-wide execution tier: TierAuto unless
// overridden by SetDefaultTier or the REPRO_EXEC_TIER environment
// variable (read once, on first use).
func DefaultTier() Tier {
	tierOnce.Do(func() {
		if s := os.Getenv("REPRO_EXEC_TIER"); s != "" {
			if t, err := ParseTier(s); err == nil {
				defaultTier.Store(int32(t))
			}
		}
	})
	return Tier(defaultTier.Load())
}

// SetDefaultTier overrides the process-wide execution tier (e.g. from a
// -exec-tier flag). It takes precedence over REPRO_EXEC_TIER.
func SetDefaultTier(t Tier) {
	tierOnce.Do(func() {})
	defaultTier.Store(int32(t))
}

// CompileTier translates an IR function into an executable kernel on an
// explicit tier. The closure tree is always built (it carries the frame
// layout, barrier metadata, and the lockstep program); the VM program
// is attached unless the tier is TierClosure.
func CompileTier(fn *inspire.Function, tier Tier) (*Compiled, error) {
	c, err := compileClosure(fn)
	if err != nil {
		return nil, err
	}
	if tier == TierClosure {
		return c, nil
	}
	p, verr := vm.Compile(fn)
	if verr != nil {
		if tier == TierVM {
			return nil, fmt.Errorf("exec: vm tier: %w", verr)
		}
		c.vmErr = verr
		return c, nil
	}
	c.vmProg = p
	return c, nil
}

// Tier reports the tier this kernel executes on.
func (c *Compiled) Tier() Tier {
	if c.vmProg != nil {
		return TierVM
	}
	return TierClosure
}

// VM returns the kernel's bytecode program, or nil on the closure tier.
func (c *Compiled) VM() *vm.Func { return c.vmProg }

// VMError returns why the VM lowering was skipped under TierAuto, if it
// was; nil when the VM program is attached or was never requested.
func (c *Compiled) VMError() error { return c.vmErr }
