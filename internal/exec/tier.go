package exec

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/exec/vm"
	"repro/internal/inspire"
)

// Tier selects the kernel execution engine. The closure tree is always
// compiled and remains the reference implementation (the same role
// Profile.RangeNaive plays for range queries); the bytecode VM is the
// fast scalar tier, and the vector tier batches W work items per
// dispatch when the kernel's control flow is group-uniform — all with
// byte-identical buffers and profiles.
type Tier int

const (
	// TierAuto executes on the vector tier whenever the kernel is
	// vectorizable, on the scalar bytecode VM whenever it lowers, and on
	// the closure tree otherwise. This is the default.
	TierAuto Tier = iota
	// TierClosure forces the closure-tree interpreter.
	TierClosure
	// TierVM requires the scalar bytecode VM; Compile fails if the
	// kernel cannot be lowered. The vector tier is deliberately not
	// attached, so benchmarks and tests isolate the scalar VM.
	TierVM
	// TierVec requires the SIMT vector tier; Compile fails if the
	// kernel cannot be lowered or is not vectorizable.
	TierVec
)

// String returns the tier's flag spelling.
func (t Tier) String() string {
	switch t {
	case TierClosure:
		return "closure"
	case TierVM:
		return "vm"
	case TierVec:
		return "vec"
	default:
		return "auto"
	}
}

// ParseTier parses a tier name: auto, closure, vm, or vec.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "auto", "":
		return TierAuto, nil
	case "closure", "closures":
		return TierClosure, nil
	case "vm", "bytecode":
		return TierVM, nil
	case "vec", "vector", "simt":
		return TierVec, nil
	}
	return TierAuto, fmt.Errorf("exec: unknown execution tier %q (want auto, closure, vm, or vec)", s)
}

var (
	tierOnce    sync.Once
	defaultTier atomic.Int32
)

// DefaultTier returns the process-wide execution tier: TierAuto unless
// overridden by SetDefaultTier or the REPRO_EXEC_TIER environment
// variable (read once, on first use).
func DefaultTier() Tier {
	tierOnce.Do(func() {
		if s := os.Getenv("REPRO_EXEC_TIER"); s != "" {
			if t, err := ParseTier(s); err == nil {
				defaultTier.Store(int32(t))
			}
		}
	})
	return Tier(defaultTier.Load())
}

// SetDefaultTier overrides the process-wide execution tier (e.g. from a
// -exec-tier flag). It takes precedence over REPRO_EXEC_TIER.
func SetDefaultTier(t Tier) {
	tierOnce.Do(func() {})
	defaultTier.Store(int32(t))
}

// CompileTier translates an IR function into an executable kernel on an
// explicit tier. The closure tree is always built (it carries the frame
// layout, barrier metadata, and the lockstep program); the VM program
// is attached unless the tier is TierClosure, and the vectorized view
// on top of it unless the tier is TierVM.
func CompileTier(fn *inspire.Function, tier Tier) (*Compiled, error) {
	c, err := compileClosure(fn)
	if err != nil {
		return nil, err
	}
	if tier == TierClosure {
		return c, nil
	}
	p, verr := vm.Compile(fn)
	if verr != nil {
		if tier == TierVM || tier == TierVec {
			return nil, fmt.Errorf("exec: %s tier: %w", tier, verr)
		}
		c.vmErr = verr
		return c, nil
	}
	c.vmProg = p
	if tier == TierVM {
		return c, nil
	}
	vp, xerr := vm.Vectorize(p)
	if xerr != nil {
		if tier == TierVec {
			return nil, fmt.Errorf("exec: vec tier: %w", xerr)
		}
		c.vecErr = xerr
		return c, nil
	}
	c.vecProg = vp
	return c, nil
}

// Tier reports the tier this kernel executes on.
func (c *Compiled) Tier() Tier {
	if c.vecProg != nil {
		return TierVec
	}
	if c.vmProg != nil {
		return TierVM
	}
	return TierClosure
}

// VM returns the kernel's bytecode program, or nil on the closure tier.
func (c *Compiled) VM() *vm.Func { return c.vmProg }

// VMError returns why the VM lowering was skipped under TierAuto, if it
// was; nil when the VM program is attached or was never requested.
func (c *Compiled) VMError() error { return c.vmErr }

// Vec returns the kernel's vectorized program, or nil when the kernel
// runs scalar.
func (c *Compiled) Vec() *vm.VecFunc { return c.vecProg }

// VecError returns why vectorization was skipped under TierAuto, if it
// was; nil when the vector program is attached or was never requested.
func (c *Compiled) VecError() error { return c.vecErr }
