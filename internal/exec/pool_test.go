package exec

import (
	"reflect"
	"testing"
)

// scanSrc is a barrier-heavy kernel (per-group Hillis-Steele scan): every
// work item synchronizes with its group several times per launch, which is
// exactly the shape the persistent item pool accelerates.
const scanSrc = `
kernel void scan(global const float* in, global float* out, local float* tmp, int n) {
	int gid = get_global_id(0);
	int lid = get_local_id(0);
	int lsz = get_local_size(0);
	tmp[lid] = gid < n ? in[gid] : 0.0;
	barrier(1);
	for (int off = 1; off < lsz; off = off * 2) {
		float v = 0.0;
		if (lid >= off) {
			v = tmp[lid - off];
		}
		barrier(1);
		tmp[lid] += v;
		barrier(1);
	}
	out[gid] = tmp[lid];
}`

func runScan(t *testing.T, n, local int, opts RunOptions) ([]float32, *Profile) {
	t.Helper()
	c := compileSrc(t, scanSrc, "scan")
	in, out := NewFloatBuffer(n), NewFloatBuffer(n)
	for i := range in.F {
		in.F[i] = float32(i%13) * 0.25
	}
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{local, 1, 1}}
	prof, err := c.Run([]Arg{BufArg(in), BufArg(out), LocalArg(local), IntArg(n)}, nd, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out.F, prof
}

// TestBarrierModesByteIdentical is the golden determinism check for the
// barrier execution paths: lockstep (default) and the persistent item pool
// must produce buffers and profiles bit-identical to the legacy
// goroutine-per-item path, for every host worker count. Run under -race in
// CI, this also exercises the pool's synchronization (dispatch, cyclic
// barrier reuse, join) across many reused groups.
func TestBarrierModesByteIdentical(t *testing.T) {
	const n, local = 1024, 64
	wantOut, wantProf := runScan(t, n, local, RunOptions{Barrier: BarrierSpawn, Workers: 1})
	for _, mode := range []BarrierMode{BarrierAuto, BarrierPooled, BarrierSpawn} {
		for _, workers := range []int{1, 2, 4, 8} {
			gotOut, gotProf := runScan(t, n, local, RunOptions{Barrier: mode, Workers: workers})
			if !reflect.DeepEqual(gotOut, wantOut) {
				t.Fatalf("mode=%d workers=%d: output differs from spawn reference", mode, workers)
			}
			if gotProf.Global0 != wantProf.Global0 || !reflect.DeepEqual(gotProf.Buckets, wantProf.Buckets) {
				t.Fatalf("mode=%d workers=%d: profile differs from spawn reference", mode, workers)
			}
		}
	}
}

// TestLockstepEligibility checks the uniformity analysis: barrier kernels
// with group-uniform control flow compile a lockstep program; kernels
// whose barriers sit under item-divergent control fall back to the
// blocking paths.
func TestLockstepEligibility(t *testing.T) {
	eligible := compileSrc(t, scanSrc, "scan")
	if !eligible.LockstepEligible() {
		t.Error("uniform scan kernel should be lockstep-eligible")
	}
	divergent := compileSrc(t, `kernel void d(global float* o, local float* tmp, int n) {
		int lid = get_local_id(0);
		if (lid < 3) {
			tmp[lid] = 1.0;
			barrier(1);
		}
		o[get_global_id(0)] = tmp[0];
	}`, "d")
	if divergent.LockstepEligible() {
		t.Error("barrier under get_local_id condition must not be lockstep-eligible")
	}
	// Loop bound assigned from a non-uniform value through a variable.
	viaVar := compileSrc(t, `kernel void v(global float* o, local float* tmp) {
		int k = get_local_id(0);
		for (int j = 0; j < k; j++) {
			barrier(1);
		}
		o[get_global_id(0)] = 0.0;
	}`, "v")
	if viaVar.LockstepEligible() {
		t.Error("barrier in loop with item-dependent bound must not be lockstep-eligible")
	}
	// Uniform bound through a variable chain stays eligible.
	chained := compileSrc(t, `kernel void c(global float* o, local float* tmp, int n) {
		int lsz = get_local_size(0);
		int half = lsz / 2;
		int lid = get_local_id(0);
		tmp[lid] = (float)lid;
		barrier(1);
		for (int s = half; s > 0; s = s / 2) {
			if (lid < s) { tmp[lid] += tmp[lid + s]; }
			barrier(1);
		}
		o[get_global_id(0)] = tmp[0];
	}`, "c")
	if !chained.LockstepEligible() {
		t.Error("uniform bound via variable chain should be lockstep-eligible")
	}
}

// TestBarrierFallbackDivergent checks that a divergent-barrier kernel
// (ineligible for lockstep) still runs correctly on the pooled default.
func TestBarrierFallbackDivergent(t *testing.T) {
	src := `kernel void d(global float* o, local float* tmp) {
		int lid = get_local_id(0);
		if (lid == 0) {
			tmp[0] = 42.0;
			barrier(1);
		} else {
			barrier(1);
		}
		o[get_global_id(0)] = tmp[0];
	}`
	c := compileSrc(t, src, "d")
	if c.LockstepEligible() {
		t.Fatal("kernel should be ineligible")
	}
	n, local := 64, 8
	o := NewFloatBuffer(n)
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{local, 1, 1}}
	if _, err := c.Run([]Arg{BufArg(o), LocalArg(local)}, nd, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, v := range o.F {
		if v != 42 {
			t.Fatalf("o[%d] = %g, want 42", i, v)
		}
	}
}

// TestLockstepEarlyReturn checks the active-mask semantics: items that
// return before later barriers stop executing (and stop counting) exactly
// like goroutine items leaving the barrier.
func TestLockstepEarlyReturn(t *testing.T) {
	src := `kernel void e(global float* o, local float* tmp, int n) {
		int lid = get_local_id(0);
		int gid = get_global_id(0);
		tmp[lid] = (float)lid;
		barrier(1);
		if (gid >= n) {
			return;
		}
		barrier(1);
		o[gid] = tmp[get_local_size(0) - 1 - lid];
	}`
	c := compileSrc(t, src, "e")
	if !c.LockstepEligible() {
		// The early return is item-divergent but barrier-free segments
		// may contain returns; the remaining barriers are uniform at the
		// top level. If analysis is more conservative than that, the
		// fallback must still be correct — either way the outputs below
		// must hold.
		t.Log("early-return kernel not lockstep-eligible; exercising fallback")
	}
	run := func(mode BarrierMode) []float32 {
		nTotal, local, n := 64, 8, 40
		o := NewFloatBuffer(nTotal)
		nd := NDRange{Global: [3]int{nTotal, 1, 1}, Local: [3]int{local, 1, 1}}
		if _, err := c.Run([]Arg{BufArg(o), LocalArg(local), IntArg(n)}, nd, RunOptions{Barrier: mode}); err != nil {
			t.Fatal(err)
		}
		return o.F
	}
	want := run(BarrierSpawn)
	got := run(BarrierAuto)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("early-return outputs differ: %v vs %v", got, want)
	}
}

// TestBarrierPoolReusedAcrossGroups drives one runner through many barrier
// groups (64 groups on one worker) so every group after the first must hit
// the reused goroutines, and verifies the scan semantics survive.
func TestBarrierPoolReusedAcrossGroups(t *testing.T) {
	const n, local = 2048, 32
	out, prof := runScan(t, n, local, RunOptions{Workers: 1, Barrier: BarrierPooled})
	for g := 0; g < n/local; g++ {
		var want float32
		for l := 0; l < local; l++ {
			i := g*local + l
			want += float32(i%13) * 0.25
			if out[i] != want {
				t.Fatalf("group %d item %d: scan = %g, want %g", g, l, out[i], want)
			}
		}
	}
	if got := prof.Total().Items; got != n {
		t.Fatalf("profiled %d items, want %d", got, n)
	}
}

// TestBarrierPanicPropagates checks fault handling through every barrier
// path: a runtime fault inside a barrier group must surface as an error
// from Run, not hang a pool or crash the process.
func TestBarrierPanicPropagates(t *testing.T) {
	src := `kernel void bad(global float* o, local float* tmp) {
		int lid = get_local_id(0);
		tmp[lid] = 1.0;
		barrier(1);
		o[get_global_id(0) + 100000] = tmp[lid];
	}`
	c := compileSrc(t, src, "bad")
	for _, mode := range []BarrierMode{BarrierAuto, BarrierPooled, BarrierSpawn} {
		o := NewFloatBuffer(64)
		nd := NDRange{Global: [3]int{64, 1, 1}, Local: [3]int{8, 1, 1}}
		if _, err := c.Run([]Arg{BufArg(o), LocalArg(8)}, nd, RunOptions{Barrier: mode}); err == nil {
			t.Fatalf("mode=%d: out-of-bounds store in barrier group not reported", mode)
		}
	}
}

// TestDestBucketsReused checks the chunk-profile buffer recycling contract:
// a dirty caller-supplied bucket slice must be zeroed and produce a profile
// identical to a freshly allocated run, and the returned profile must alias
// the supplied storage.
func TestDestBucketsReused(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 1024
	args := []Arg{BufArg(NewFloatBuffer(n)), BufArg(NewFloatBuffer(n)), BufArg(NewFloatBuffer(n)), IntArg(n)}
	fresh, err := c.Run(args, ND1(n), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]Counts, len(fresh.Buckets))
	for i := range dirty {
		dirty[i] = Counts{Items: 999, IntOps: 999, MaxItemOps: 999}
	}
	reused, err := c.Run(args, ND1(n), RunOptions{DestBuckets: dirty})
	if err != nil {
		t.Fatal(err)
	}
	if &reused.Buckets[0] != &dirty[0] {
		t.Error("DestBuckets not used as profile storage")
	}
	if !reflect.DeepEqual(reused.Buckets, fresh.Buckets) {
		t.Error("profile from recycled buckets differs from fresh run")
	}
}
