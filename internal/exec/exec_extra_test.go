package exec

import (
	"testing"

	"repro/internal/minicl"
)

func TestRun3DRange(t *testing.T) {
	src := `kernel void idx3(global int* o, int nx, int ny, int nz) {
		int x = get_global_id(0);
		int y = get_global_id(1);
		int z = get_global_id(2);
		o[(z * ny + y) * nx + x] = x + 10 * y + 100 * z;
	}`
	c := compileSrc(t, src, "idx3")
	nx, ny, nz := 8, 4, 2
	o := NewIntBuffer(nx * ny * nz)
	nd := NDRange{Global: [3]int{nx, ny, nz}, Local: [3]int{4, 2, 1}}
	if _, err := c.Run([]Arg{BufArg(o), IntArg(nx), IntArg(ny), IntArg(nz)}, nd, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				want := int32(x + 10*y + 100*z)
				if got := o.I[(z*ny+y)*nx+x]; got != want {
					t.Fatalf("o[%d,%d,%d] = %d, want %d", x, y, z, got, want)
				}
			}
		}
	}
}

func TestRunGroupQueries(t *testing.T) {
	src := `kernel void q(global int* grp, global int* num, global int* lsz) {
		int i = get_global_id(0);
		grp[i] = get_group_id(0);
		num[i] = get_num_groups(0);
		lsz[i] = get_local_size(0);
	}`
	c := compileSrc(t, src, "q")
	n, local := 128, 32
	grp, num, lsz := NewIntBuffer(n), NewIntBuffer(n), NewIntBuffer(n)
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{local, 1, 1}}
	if _, err := c.Run([]Arg{BufArg(grp), BufArg(num), BufArg(lsz)}, nd, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if grp.I[i] != int32(i/local) {
			t.Fatalf("grp[%d] = %d, want %d", i, grp.I[i], i/local)
		}
		if num.I[i] != int32(n/local) || lsz.I[i] != int32(local) {
			t.Fatalf("num/lsz[%d] = %d/%d", i, num.I[i], lsz.I[i])
		}
	}
}

func TestRunChunkSeesFullGlobalSize(t *testing.T) {
	// Work items in a chunked (multi-device) execution must observe the
	// full NDRange, or grid-stride code would change meaning.
	src := `kernel void g(global int* o) {
		o[get_global_id(0)] = get_global_size(0);
	}`
	c := compileSrc(t, src, "g")
	n := 256
	o := NewIntBuffer(n)
	if _, err := c.Run([]Arg{BufArg(o)}, ND1(n), RunOptions{Lo: 64, Hi: 128}); err != nil {
		t.Fatal(err)
	}
	if o.I[64] != int32(n) {
		t.Errorf("chunked item saw global size %d, want %d", o.I[64], n)
	}
	if o.I[0] != 0 {
		t.Errorf("item outside chunk executed")
	}
}

func TestRunNestedHelpers(t *testing.T) {
	src := `
float inner(float x) { return x + 1.0; }
float outer(float x) { return inner(x) * 2.0; }
kernel void k(global float* o) {
	o[get_global_id(0)] = outer(3.0);
}`
	c := compileSrc(t, src, "k")
	o := NewFloatBuffer(4)
	if _, err := c.Run([]Arg{BufArg(o)}, ND1(4), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if o.F[0] != 8 {
		t.Errorf("nested helper result %g, want 8", o.F[0])
	}
}

func TestRunHelperWithBuffer(t *testing.T) {
	src := `
float sumrange(global const float* a, int lo, int hi) {
	float s = 0.0;
	for (int i = lo; i < hi; i++) {
		s += a[i];
	}
	return s;
}
kernel void k(global const float* a, global float* o, int n) {
	int i = get_global_id(0);
	o[i] = sumrange(a, 0, n);
}`
	c := compileSrc(t, src, "k")
	n := 8
	a, o := NewFloatBuffer(n), NewFloatBuffer(n)
	for i := range a.F {
		a.F[i] = 1
	}
	if _, err := c.Run([]Arg{BufArg(a), BufArg(o), IntArg(n)}, ND1(n), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if o.F[3] != float32(n) {
		t.Errorf("helper buffer sum = %g, want %d", o.F[3], n)
	}
}

func TestRunUintArithmetic(t *testing.T) {
	src := `kernel void u(global int* o, uint a, uint b) {
		uint s = a + b;
		uint d = a - b;
		o[0] = (int)s;
		o[1] = (int)d;
		o[2] = (int)(a * b);
	}`
	c := compileSrc(t, src, "u")
	o := NewIntBuffer(4)
	if _, err := c.Run([]Arg{BufArg(o), IntArg(7), IntArg(3)}, ND1(1), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 10 || o.I[1] != 4 || o.I[2] != 21 {
		t.Errorf("uint results %v", o.I[:3])
	}
}

func TestRunBoolVariables(t *testing.T) {
	src := `kernel void b(global int* o, int n) {
		bool big = n > 10;
		bool even = n % 2 == 0;
		o[0] = big && even ? 1 : 0;
		o[1] = big || even ? 1 : 0;
		o[2] = !big ? 1 : 0;
	}`
	c := compileSrc(t, src, "b")
	o := NewIntBuffer(4)
	if _, err := c.Run([]Arg{BufArg(o), IntArg(12)}, ND1(1), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if o.I[0] != 1 || o.I[1] != 1 || o.I[2] != 0 {
		t.Errorf("bool results %v", o.I[:3])
	}
}

func TestRunNegativeIndexCaught(t *testing.T) {
	src := `kernel void neg(global float* o) {
		o[get_global_id(0) - 5] = 1.0;
	}`
	c := compileSrc(t, src, "neg")
	o := NewFloatBuffer(16)
	if _, err := c.Run([]Arg{BufArg(o)}, ND1(16), RunOptions{}); err == nil {
		t.Fatal("negative index not caught")
	}
}

func TestRunLocalIntBuffer(t *testing.T) {
	src := `kernel void li(global int* o, local int* tmp) {
		int lid = get_local_id(0);
		tmp[lid] = lid * 2;
		barrier(1);
		o[get_global_id(0)] = tmp[get_local_size(0) - 1 - lid];
	}`
	c := compileSrc(t, src, "li")
	n, local := 64, 8
	o := NewIntBuffer(n)
	nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{local, 1, 1}}
	if _, err := c.Run([]Arg{BufArg(o), LocalArg(local)}, nd, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	// Item lid reads tmp[local-1-lid] = (local-1-lid)*2.
	for i := 0; i < n; i++ {
		lid := i % local
		want := int32((local - 1 - lid) * 2)
		if o.I[i] != want {
			t.Fatalf("o[%d] = %d, want %d", i, o.I[i], want)
		}
	}
}

func TestCountsAddAndBytes(t *testing.T) {
	a := Counts{Items: 1, IntOps: 2, GlobalLoads: 3, MaxItemOps: 10}
	b := Counts{Items: 2, IntOps: 5, GlobalStores: 1, MaxItemOps: 4}
	a.Add(&b)
	if a.Items != 3 || a.IntOps != 7 || a.GlobalLoads != 3 || a.GlobalStores != 1 {
		t.Errorf("Add result %+v", a)
	}
	if a.MaxItemOps != 10 {
		t.Errorf("MaxItemOps = %d, want max 10", a.MaxItemOps)
	}
	if a.GlobalLoadBytes() != 12 || a.GlobalStoreBytes() != 4 {
		t.Error("byte accounting wrong")
	}
}

func TestBufferKindMismatchRejected(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	n := 64
	wrong := NewIntBuffer(n)
	args := []Arg{BufArg(wrong), BufArg(NewFloatBuffer(n)), BufArg(NewFloatBuffer(n)), IntArg(n)}
	if _, err := c.Run(args, ND1(n), RunOptions{}); err == nil {
		t.Fatal("int buffer accepted for float parameter")
	}
	_ = minicl.TypeInt // keep import for clarity of intent
}
