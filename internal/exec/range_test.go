package exec

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomProfile builds a synthetic profile with nb <= global0 buckets (the
// invariant Run guarantees) and pseudo-random counts.
func randomProfile(rng *rand.Rand) *Profile {
	global0 := 1 + rng.Intn(5000)
	nb := 1 + rng.Intn(global0)
	if nb > 300 {
		nb = 1 + rng.Intn(300)
	}
	p := &Profile{Global0: global0, Buckets: make([]Counts, nb)}
	for b := range p.Buckets {
		c := &p.Buckets[b]
		c.Items = rng.Int63n(1000)
		c.IntOps = rng.Int63n(100000)
		c.FloatOps = rng.Int63n(100000)
		c.TransOps = rng.Int63n(5000)
		c.OtherBuiltins = rng.Int63n(5000)
		c.GlobalLoads = rng.Int63n(50000)
		c.GlobalStores = rng.Int63n(50000)
		c.LocalOps = rng.Int63n(20000)
		c.Branches = rng.Int63n(30000)
		c.Barriers = rng.Int63n(100)
		c.MaxItemOps = rng.Int63n(1 << 40)
	}
	return p
}

// TestRangePrefixMatchesNaive is the equivalence property test: the O(1)
// prefix-indexed Range must agree bit-for-bit with the O(buckets) naive
// loop on randomized profiles and ranges, including clamped and empty
// ranges.
func TestRangePrefixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		p := randomProfile(rng)
		for q := 0; q < 50; q++ {
			lo := rng.Intn(p.Global0+100) - 50
			hi := rng.Intn(p.Global0+100) - 50
			got := p.Range(lo, hi)
			want := p.RangeNaive(lo, hi)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Range(%d,%d) on %d buckets / %d items:\n got %+v\nwant %+v",
					trial, lo, hi, len(p.Buckets), p.Global0, got, want)
			}
		}
	}
}

// TestRangeWholeBucketExact checks the whole-bucket path: a range landing
// exactly on bucket boundaries must equal the exact integer sum of the
// covered buckets (the pre-existing contract, unchanged by the remainder
// scheme).
func TestRangeWholeBucketExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		p := randomProfile(rng)
		nb := len(p.Buckets)
		bLo := rng.Intn(nb)
		bHi := bLo + 1 + rng.Intn(nb-bLo)
		lo := bLo * p.Global0 / nb
		hi := bHi * p.Global0 / nb
		if lo >= hi {
			continue
		}
		var want Counts
		for b := bLo; b < bHi; b++ {
			want.Add(&p.Buckets[b])
		}
		got := p.Range(lo, hi)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Range over buckets [%d,%d): got %+v want %+v", trial, bLo, bHi, got, want)
		}
	}
}

// addMismatch reports the first additive field where a+b != c.
func addMismatch(t *testing.T, a, b, c Counts, label string) {
	t.Helper()
	sum := a
	sum.addAdditive(&b)
	sum.MaxItemOps = c.MaxItemOps // additive conservation only
	if !reflect.DeepEqual(sum, c) {
		t.Fatalf("%s: sub-ranges %+v + %+v = %+v, want whole %+v", label, a, b, sum, c)
	}
}

// TestRangeSplitConservation is the regression test for the
// fractional-bucket rounding fix: cutting any range at any point must
// conserve every additive count exactly — Range(a,m) + Range(m,b) ==
// Range(a,b) — even when the cut lands inside a bucket. It checks both a
// real profiled kernel and synthetic profiles.
func TestRangeSplitConservation(t *testing.T) {
	// Real profile: a branchy kernel so buckets carry uneven counts.
	src := `kernel void tri(global const float* a, global float* o, int n) {
		int i = get_global_id(0);
		float s = 0.0;
		for (int j = 0; j < i % 37; j++) {
			s += a[(i + j) % n];
		}
		o[i] = s;
	}`
	c := compileSrc(t, src, "tri")
	n := 4096
	a, o := NewFloatBuffer(n), NewFloatBuffer(n)
	prof, err := c.Run([]Arg{BufArg(a), BufArg(o), IntArg(n)}, ND1(n), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	checkProfile := func(p *Profile, label string) {
		for q := 0; q < 200; q++ {
			lo := rng.Intn(p.Global0)
			hi := lo + 1 + rng.Intn(p.Global0-lo)
			mid := lo + rng.Intn(hi-lo+1)
			addMismatch(t, p.Range(lo, mid), p.Range(mid, hi), p.Range(lo, hi), label)
		}
		// Many-way split: sub-ranges over a random cut sequence must sum
		// to the total.
		cuts := []int{0}
		for x := rng.Intn(97); x < p.Global0; x += 1 + rng.Intn(97) {
			cuts = append(cuts, x)
		}
		cuts = append(cuts, p.Global0)
		var sum Counts
		for i := 1; i < len(cuts); i++ {
			part := p.Range(cuts[i-1], cuts[i])
			sum.addAdditive(&part)
		}
		tot := p.Total()
		sum.MaxItemOps = tot.MaxItemOps
		if !reflect.DeepEqual(sum, tot) {
			t.Fatalf("%s: %d-way split sums to %+v, want %+v", label, len(cuts)-1, sum, tot)
		}
	}
	checkProfile(prof, "kernel profile")
	for trial := 0; trial < 50; trial++ {
		checkProfile(randomProfile(rng), "synthetic profile")
	}
}

// TestRangeTotalMatchesItemCount pins the end-to-end invariant the
// training pipeline relies on: the profile total over a full launch counts
// every work item exactly once.
func TestRangeTotalMatchesItemCount(t *testing.T) {
	c := compileSrc(t, vecaddSrc, "vecadd")
	for _, n := range []int{64, 1000, 4096, 5003} {
		a, b, o := NewFloatBuffer(n), NewFloatBuffer(n), NewFloatBuffer(n)
		prof, err := c.Run([]Arg{BufArg(a), BufArg(b), BufArg(o), IntArg(n)},
			NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{1, 1, 1}}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := prof.Total().Items; got != int64(n) {
			t.Errorf("n=%d: Total().Items = %d", n, got)
		}
		// And the items of disjoint thirds sum exactly (conservation).
		third := n / 3
		sum := prof.Range(0, third).Items + prof.Range(third, 2*third).Items + prof.Range(2*third, n).Items
		if sum != int64(n) {
			t.Errorf("n=%d: three-way item split sums to %d", n, sum)
		}
	}
}
