package exec

import (
	"context"

	"repro/internal/exec/vm"
)

// Budget and BudgetError live in package vm (the innermost execution
// layer, imported by exec) so both execution tiers share one
// implementation; exec re-exports them under the public names the rest
// of the system uses.
type (
	// Budget bounds a launch by steps, bytes, and wall clock. A nil
	// *Budget enforces nothing.
	Budget = vm.Budget
	// BudgetError is the structured, deterministic budget abort.
	BudgetError = vm.BudgetError
)

// Budget exhaustion kinds (BudgetError.Kind).
const (
	BudgetSteps    = vm.BudgetSteps
	BudgetMemory   = vm.BudgetMemory
	BudgetDeadline = vm.BudgetDeadline
)

// NewBudget builds a budget from explicit limits (0 = unlimited) plus
// the context's deadline and cancellation; nil when nothing to enforce.
func NewBudget(ctx context.Context, maxSteps, maxMemBytes int64) *Budget {
	return vm.NewBudget(ctx, maxSteps, maxMemBytes)
}
