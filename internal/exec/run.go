package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/exec/vm"
	"repro/internal/minicl"
	"repro/internal/sched"
)

// RunOptions controls a kernel launch.
type RunOptions struct {
	// Lo and Hi restrict execution to dim-0 global IDs in [Lo, Hi).
	// Hi == 0 means the full dim-0 extent. Both must align to the dim-0
	// work-group size. Work items still observe the full global size, so
	// chunked execution is semantically a multi-device split, not a
	// smaller launch.
	Lo, Hi int
	// Buckets is the profile resolution along dim 0 (default DefaultBuckets).
	Buckets int
	// Workers caps host parallelism (default: the scheduler's
	// process-wide worker budget, GOMAXPROCS unless overridden).
	Workers int
	// DestBuckets, when non-nil with length equal to the resolved bucket
	// count, is zeroed and used as the returned profile's bucket storage
	// instead of a fresh allocation. Callers that merge and discard chunk
	// profiles (runtime.Execute) recycle these buffers across launches.
	DestBuckets []Counts
	// Barrier selects the barrier-group execution path (default
	// BarrierAuto). All modes produce byte-identical buffers and profiles;
	// the explicit modes exist so benchmarks and tests can compare them.
	Barrier BarrierMode
	// Budget, when non-nil, bounds the launch by steps, memory, and wall
	// clock; exhaustion aborts the run with a *BudgetError. Nil enforces
	// nothing and adds no per-item cost beyond an amortized fuel counter.
	Budget *Budget
}

// BarrierMode selects how work groups of barrier kernels execute.
type BarrierMode int

const (
	// BarrierAuto runs groups in single-goroutine lockstep when the
	// kernel's barriers are provably under group-uniform control flow,
	// and on the pooled blocking path otherwise.
	BarrierAuto BarrierMode = iota
	// BarrierPooled forces the blocking path backed by the persistent
	// per-runner item pool (goroutines reused across all groups).
	BarrierPooled
	// BarrierSpawn forces the legacy path that spawns one goroutine per
	// work item per group.
	BarrierSpawn
)

// countsPool recycles worker-local bucket slices across launches so
// steady-state profiling allocates nothing per run.
var countsPool sync.Pool

func getCounts(n int) []Counts {
	if v := countsPool.Get(); v != nil {
		s := *v.(*[]Counts)
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]Counts, n)
}

func putCounts(s []Counts) {
	countsPool.Put(&s)
}

// Run executes the kernel over the NDRange and returns its dynamic profile.
func (c *Compiled) Run(args []Arg, nd NDRange, opts RunOptions) (*Profile, error) {
	nd, err := nd.normalized()
	if err != nil {
		return nil, err
	}
	if err := c.checkArgs(args); err != nil {
		return nil, err
	}
	lo, hi := opts.Lo, opts.Hi
	if hi == 0 {
		hi = nd.Global[0]
	}
	if lo < 0 || hi > nd.Global[0] || lo > hi {
		return nil, fmt.Errorf("exec: chunk [%d,%d) outside NDRange dim 0 [0,%d)", lo, hi, nd.Global[0])
	}
	lsz0 := nd.Local[0]
	if lo%lsz0 != 0 || hi%lsz0 != 0 {
		return nil, fmt.Errorf("exec: chunk [%d,%d) not aligned to work-group size %d", lo, hi, lsz0)
	}
	nb := opts.Buckets
	if nb <= 0 {
		nb = DefaultBuckets
	}
	if nb > nd.Global[0] {
		nb = nd.Global[0]
	}
	profBuckets := opts.DestBuckets
	if len(profBuckets) == nb {
		clear(profBuckets)
	} else {
		profBuckets = make([]Counts, nb)
	}
	prof := &Profile{Global0: nd.Global[0], Buckets: profBuckets}
	if lo == hi {
		return prof, nil
	}

	// Enumerate work groups in the chunk.
	ngrp := [3]int64{
		int64(nd.Global[0] / nd.Local[0]),
		int64(nd.Global[1] / nd.Local[1]),
		int64(nd.Global[2] / nd.Local[2]),
	}
	g0lo, g0hi := lo/lsz0, hi/lsz0
	groupsDim0 := g0hi - g0lo
	totalGroups := groupsDim0 * int(ngrp[1]) * int(ngrp[2])

	workers := sched.Workers(opts.Workers)
	if workers > totalGroups {
		workers = totalGroups
	}

	var nextGroup atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	workerBuckets := make([][]Counts, workers)
	var vecDiv, vecRec, vecBail atomic.Int64

	for w := 0; w < workers; w++ {
		wg.Add(1)
		// A single worker accumulates straight into the profile; extra
		// workers get pooled scratch buckets merged after the join.
		buckets := prof.Buckets
		if workers > 1 {
			buckets = getCounts(nb)
		}
		workerBuckets[w] = buckets
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if ee, ok := r.(execError); ok {
						errCh <- ee.err
						return
					}
					panic(r)
				}
			}()
			rt := newGroupRunner(c, args, nd, ngrp, buckets, opts.Barrier, opts.Budget)
			defer rt.close()
			defer func() {
				vecDiv.Add(rt.vecDiv)
				vecRec.Add(rt.vecRec)
				vecBail.Add(rt.vecBail)
			}()
			for {
				g := nextGroup.Add(1) - 1
				if g >= int64(totalGroups) {
					return
				}
				// Deadline/cancel backstop between groups: straight-line
				// kernels never touch fuel, but their per-group work is
				// bounded by the memory budget, so this check suffices.
				if err := opts.Budget.Expired(); err != nil {
					panic(execError{err})
				}
				// Decompose linear group index into (g0, g1, g2).
				g0 := int(g)%groupsDim0 + g0lo
				rest := int(g) / groupsDim0
				g1 := rest % int(ngrp[1])
				g2 := rest / int(ngrp[1])
				rt.runGroup(g0, g1, g2)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		if workers > 1 {
			for _, wb := range workerBuckets {
				putCounts(wb)
			}
		}
		return nil, err
	}
	if workers > 1 {
		for _, wb := range workerBuckets {
			for i := range wb {
				prof.Buckets[i].Add(&wb[i])
			}
			putCounts(wb)
		}
	}
	prof.VecDivergences = vecDiv.Load()
	prof.VecReconverges = vecRec.Load()
	prof.VecScalarBails = vecBail.Load()
	return prof, nil
}

// checkArgs validates argument kinds against the kernel signature.
func (c *Compiled) checkArgs(args []Arg) error {
	params := c.Fn.Params
	if len(args) != len(params) {
		return fmt.Errorf("exec: kernel %q takes %d arguments, got %d", c.Fn.Name, len(params), len(args))
	}
	for i, p := range params {
		a := args[i]
		switch {
		case p.Type.Ptr && p.Type.Space == minicl.Local:
			if a.LocalLen <= 0 {
				return fmt.Errorf("exec: argument %d (%s) needs LocalArg with positive length", i, p.Name)
			}
		case p.Type.Ptr:
			if a.Buf == nil {
				return fmt.Errorf("exec: argument %d (%s) needs a buffer", i, p.Name)
			}
			if p.Type.Elem().IsFloat() != (a.Buf.Kind == minicl.Float) {
				return fmt.Errorf("exec: argument %d (%s): buffer kind mismatch", i, p.Name)
			}
		}
	}
	return nil
}

// groupRunner executes work groups for one host worker, reusing frames.
type groupRunner struct {
	c       *Compiled
	nd      NDRange
	buckets []Counts
	nb      int
	global0 int

	frames   []*frame // one per work item in a group
	locals   []*Buffer
	lsz      [3]int64
	gsz      [3]int64
	ngr      [3]int64
	barrier  bool
	itemsPer int

	// bucketByL0[l0] is the profile bucket of dim-0 local index l0 within
	// the current group, refreshed once per group so finishItem performs
	// no division per work item.
	bucketByL0 []int32

	// Persistent barrier-group item pool: itemsPer goroutines created on
	// the first barrier group and reused for every subsequent group of
	// this runner. mode selects lockstep/pooled/spawn execution.
	mode      BarrierMode
	lockstep  bool
	gctx      groupExec
	bar       *groupBarrier
	poolStart chan int
	poolDone  sync.WaitGroup
	poolPanic atomic.Value

	// Bytecode VM tier state (see runvm.go); vmFrames is nil when the
	// kernel executes on the closure tier.
	vmFrames []*vm.Frame
	vmDone   []bool
	vmBarFn  func()

	// Vector tier state (see runvec.go); vecFrame is nil when the group
	// runs scalar. The scalar vmFrames stay allocated alongside it: they
	// complete the group when the lanes diverge.
	vecFrame *vm.VecFrame

	// Vector-tier divergence telemetry, accumulated per runner and
	// merged into the launch profile after the worker join.
	vecDiv  int64
	vecRec  int64
	vecBail int64

	budget *vm.Budget
}

func newGroupRunner(c *Compiled, args []Arg, nd NDRange, ngrp [3]int64, buckets []Counts, mode BarrierMode, budget *Budget) *groupRunner {
	r := &groupRunner{
		c: c, nd: nd, buckets: buckets, nb: len(buckets), global0: nd.Global[0],
		lsz: [3]int64{int64(nd.Local[0]), int64(nd.Local[1]), int64(nd.Local[2])},
		gsz: [3]int64{int64(nd.Global[0]), int64(nd.Global[1]), int64(nd.Global[2])},
		ngr: ngrp,
		budget: budget,
	}
	r.itemsPer = nd.Local[0] * nd.Local[1] * nd.Local[2]
	r.barrier = c.hasBarrier && r.itemsPer > 1
	r.mode = mode
	r.lockstep = mode == BarrierAuto && c.lockstep != nil
	if r.barrier && !r.lockstep && mode != BarrierSpawn {
		// Only the pooled path reuses one barrier across groups; the
		// spawn path creates a fresh barrier per group.
		r.bar = newGroupBarrier(r.itemsPer)
	}
	r.bucketByL0 = make([]int32, nd.Local[0])

	// Per-group local buffers (shared by all frames of the group).
	r.locals = make([]*Buffer, c.nLocal)
	globalBufs := make([]*Buffer, c.nGlobal)
	for i, p := range c.Fn.Params {
		s := c.paramSlots[i]
		switch s.kind {
		case slotGlobalBuf:
			globalBufs[s.idx] = args[i].Buf
		case slotLocalBuf:
			// Local buffers are real per-worker allocations, so they are
			// the closest thing this host runtime has to device local
			// memory: charge them against the memory budget.
			if err := budget.ChargeMem(int64(args[i].LocalLen) * 4); err != nil {
				panic(execError{err})
			}
			if p.Type.Elem().IsFloat() {
				r.locals[s.idx] = NewFloatBuffer(args[i].LocalLen)
			} else {
				r.locals[s.idx] = NewIntBuffer(args[i].LocalLen)
			}
		}
	}

	r.frames = make([]*frame, r.itemsPer)
	for i := range r.frames {
		f := &frame{
			ints:   make([]int64, c.nInts+1),
			floats: make([]float64, c.nFloats+1),
			bufs:   globalBufs,
			locals: r.locals,
			cnt:    &Counts{},
			budget: budget,
		}
		f.wi.gsz = r.gsz
		f.wi.lsz = r.lsz
		f.wi.ngr = r.ngr
		// Bind scalar args once; they are identical for every item.
		for ai, p := range c.Fn.Params {
			s := c.paramSlots[ai]
			switch s.kind {
			case slotInt:
				f.ints[s.idx] = args[ai].Int
			case slotFloat:
				if p.Type.IsFloat() {
					f.floats[s.idx] = args[ai].Float
				}
			}
		}
		r.frames[i] = f
	}
	if r.barrier && r.lockstep {
		r.gctx = groupExec{frames: r.frames, active: make([]bool, r.itemsPer)}
	}
	r.initVM(args)
	r.initVec()
	return r
}

// close releases the runner's persistent item pool, if one was started.
func (r *groupRunner) close() {
	if r.poolStart != nil {
		close(r.poolStart)
		r.poolStart = nil
	}
}

// refreshBuckets recomputes bucketByL0 for the group at dim-0 group index
// g0. Buckets are nondecreasing and step by at most one per item (the
// bucket count never exceeds the dim-0 extent), so one division seeds the
// scan and the rest is carried incrementally.
func (r *groupRunner) refreshBuckets(g0 int) {
	base := g0 * int(r.lsz[0])
	b := base * r.nb / r.global0
	acc := base*r.nb - b*r.global0
	for l0 := range r.bucketByL0 {
		r.bucketByL0[l0] = int32(b)
		acc += r.nb
		for acc >= r.global0 {
			acc -= r.global0
			b++
		}
	}
}

// runGroup executes one work group: sequentially when the kernel has no
// barriers; in single-goroutine lockstep when the barriers are provably
// uniform; otherwise with one pooled goroutine per work item synchronized
// on a cyclic barrier (or freshly spawned goroutines in legacy mode).
func (r *groupRunner) runGroup(g0, g1, g2 int) {
	// Zero local buffers between groups so groups are independent.
	for _, lb := range r.locals {
		if lb == nil {
			continue
		}
		if lb.F != nil {
			clear(lb.F)
		} else {
			clear(lb.I)
		}
	}
	r.refreshBuckets(g0)
	if r.vecFrame != nil && (!r.barrier || r.mode == BarrierAuto) {
		r.runGroupVec(g0, g1, g2)
		return
	}
	if r.vmFrames != nil {
		r.runGroupVM(g0, g1, g2)
		return
	}
	if !r.barrier {
		li := 0
		for l2 := 0; l2 < int(r.lsz[2]); l2++ {
			for l1 := 0; l1 < int(r.lsz[1]); l1++ {
				for l0 := 0; l0 < int(r.lsz[0]); l0++ {
					f := r.frames[li]
					li++
					r.setupItem(f, g0, g1, g2, l0, l1, l2)
					r.c.body(f)
					r.finishItem(f)
				}
			}
		}
		return
	}
	if r.lockstep {
		r.runGroupLockstep(g0, g1, g2)
		return
	}
	if r.mode == BarrierSpawn {
		r.runGroupSpawn(g0, g1, g2)
		return
	}

	r.bar.reset(r.itemsPer)
	li := 0
	for l2 := 0; l2 < int(r.lsz[2]); l2++ {
		for l1 := 0; l1 < int(r.lsz[1]); l1++ {
			for l0 := 0; l0 < int(r.lsz[0]); l0++ {
				f := r.frames[li]
				li++
				r.setupItem(f, g0, g1, g2, l0, l1, l2)
				f.bar = r.bar
			}
		}
	}
	r.ensurePool()
	r.poolDone.Add(r.itemsPer)
	for i := 0; i < r.itemsPer; i++ {
		r.poolStart <- i
	}
	r.poolDone.Wait()
	if pv := r.poolPanic.Load(); pv != nil {
		panic(pv)
	}
	for _, f := range r.frames {
		f.bar = nil
		r.finishItem(f)
	}
}

// runGroupLockstep executes one barrier group entirely on the calling
// goroutine: the lockstep program walks the barrier-segmented statement
// tree across all items, so no goroutine ever parks at a barrier. Frame
// barriers stay nil — the Barrier closure just counts, and segment
// sequencing provides the synchronization.
func (r *groupRunner) runGroupLockstep(g0, g1, g2 int) {
	li := 0
	for l2 := 0; l2 < int(r.lsz[2]); l2++ {
		for l1 := 0; l1 < int(r.lsz[1]); l1++ {
			for l0 := 0; l0 < int(r.lsz[0]); l0++ {
				r.setupItem(r.frames[li], g0, g1, g2, l0, l1, l2)
				li++
			}
		}
	}
	for i := range r.gctx.active {
		r.gctx.active[i] = true
	}
	r.c.lockstep(&r.gctx)
	for _, f := range r.frames {
		r.finishItem(f)
	}
}

// ensurePool starts the persistent item goroutines on first use. Each
// waits for a frame index, executes that work item, and parks again; the
// pool is torn down by close when the runner finishes its launch.
func (r *groupRunner) ensurePool() {
	if r.poolStart != nil {
		return
	}
	r.poolStart = make(chan int, r.itemsPer)
	for w := 0; w < r.itemsPer; w++ {
		go func() {
			for li := range r.poolStart {
				r.runPoolItem(li)
			}
		}()
	}
}

func (r *groupRunner) runPoolItem(li int) {
	defer r.poolDone.Done()
	defer r.bar.leave()
	defer func() {
		if rec := recover(); rec != nil {
			r.poolPanic.CompareAndSwap(nil, rec)
		}
	}()
	if r.vmFrames != nil {
		if _, err := r.c.vmProg.Run(r.vmFrames[li]); err != nil {
			panic(execError{err})
		}
		return
	}
	r.c.body(r.frames[li])
}

// runGroupSpawn is the pre-pool barrier path: one fresh goroutine per work
// item per group. Retained behind RunOptions.BarrierSpawn so benchmarks
// can measure what goroutine reuse saves.
func (r *groupRunner) runGroupSpawn(g0, g1, g2 int) {
	bar := newGroupBarrier(r.itemsPer)
	var wg sync.WaitGroup
	li := 0
	var panicVal atomic.Value
	for l2 := 0; l2 < int(r.lsz[2]); l2++ {
		for l1 := 0; l1 < int(r.lsz[1]); l1++ {
			for l0 := 0; l0 < int(r.lsz[0]); l0++ {
				f := r.frames[li]
				li++
				r.setupItem(f, g0, g1, g2, l0, l1, l2)
				f.bar = bar
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer bar.leave()
					defer func() {
						if rec := recover(); rec != nil {
							panicVal.CompareAndSwap(nil, rec)
						}
					}()
					r.c.body(f)
				}()
			}
		}
	}
	wg.Wait()
	if pv := panicVal.Load(); pv != nil {
		panic(pv)
	}
	for _, f := range r.frames {
		f.bar = nil
		r.finishItem(f)
	}
}

func (r *groupRunner) setupItem(f *frame, g0, g1, g2, l0, l1, l2 int) {
	f.wi.grp = [3]int64{int64(g0), int64(g1), int64(g2)}
	f.wi.lid = [3]int64{int64(l0), int64(l1), int64(l2)}
	f.wi.gid = [3]int64{
		int64(g0)*r.lsz[0] + int64(l0),
		int64(g1)*r.lsz[1] + int64(l1),
		int64(g2)*r.lsz[2] + int64(l2),
	}
	*f.cnt = Counts{}
}

// finishItem folds the item's counts into its dim-0 profile bucket (looked
// up from the per-group table — no division here).
func (r *groupRunner) finishItem(f *frame) {
	b := r.bucketByL0[f.wi.lid[0]]
	c := f.cnt
	c.Items = 1
	c.MaxItemOps = c.totalOps()
	r.buckets[b].Add(c)
}

// groupBarrier is a cyclic barrier for the work items of one group.
// Items that finish early leave the barrier so remaining items do not
// deadlock (matching the "all items reach the barrier or none do per
// control path" contract loosely, but safely).
type groupBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int // current participant count
	count int // arrived this generation
	gen   int
}

func newGroupBarrier(n int) *groupBarrier {
	b := &groupBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// reset re-arms the barrier for the next group's n participants. It must
// only be called while no goroutine is inside wait (the runner calls it
// between groups, after the pool join).
func (b *groupBarrier) reset(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = n
	b.count = 0
}

func (b *groupBarrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.count++
	if b.count >= b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	g := b.gen
	for g == b.gen {
		b.cond.Wait()
	}
}

// leave removes a finished work item from the barrier.
func (b *groupBarrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n--
	if b.count >= b.n && b.n > 0 {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	}
}
