package runtime

import (
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/partition"
)

// TestPriceAllMatchesPrice checks that the scratch-reusing batched pricing
// path returns exactly the per-candidate Price results, in enumeration
// order, on both platforms and a finer grid.
func TestPriceAllMatchesPrice(t *testing.T) {
	l, _ := vecaddLaunch(t, 4096)
	for _, plat := range []*device.Platform{device.MC1(), device.MC2()} {
		rt := New(plat)
		prof, err := rt.Profile(l)
		if err != nil {
			t.Fatal(err)
		}
		for _, steps := range []int{10, 20} {
			space := partition.SharedSpace(plat.NumDevices(), steps)
			times, err := rt.PriceAll(l, prof, space, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(times) != len(space) {
				t.Fatalf("%s steps=%d: %d times for %d candidates", plat.Name, steps, len(times), len(space))
			}
			for i, part := range space {
				want, _, err := rt.Price(l, prof, part)
				if err != nil {
					t.Fatal(err)
				}
				if times[i] != want {
					t.Fatalf("%s steps=%d candidate %d (%s): PriceAll %v != Price %v",
						plat.Name, steps, i, part, times[i], want)
				}
			}
		}
	}
}

// TestPriceAllReusesDst checks the destination-reuse contract.
func TestPriceAllReusesDst(t *testing.T) {
	l, _ := vecaddLaunch(t, 4096)
	rt := New(device.MC2())
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	space := partition.SharedSpace(3, partition.DefaultSteps)
	dst := make([]float64, len(space))
	got, err := rt.PriceAll(l, prof, space, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[0] {
		t.Error("PriceAll did not fill the supplied destination")
	}
}

// TestPriceMakespanMatchesPriceAndAllocsNothing checks the serving
// engine's single-candidate pricing path: same makespan as Price, zero
// heap allocations once the scratch pool is warm.
func TestPriceMakespanMatchesPriceAndAllocsNothing(t *testing.T) {
	l, _ := vecaddLaunch(t, 4096)
	rt := New(device.MC2())
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	prof.Precompute()
	space := partition.SharedSpace(3, partition.DefaultSteps)
	for i, part := range space {
		want, _, err := rt.Price(l, prof, part)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.PriceMakespan(l, prof, part)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("candidate %d (%s): PriceMakespan %v != Price %v", i, part, got, want)
		}
	}
	if raceEnabled {
		return // race instrumentation allocates; correctness was checked above
	}
	part := space[len(space)/2]
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := rt.PriceMakespan(l, prof, part); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm PriceMakespan allocates %.2f/op, want 0", avg)
	}
}

// TestBestInAllocationFree pins the tentpole property: pricing a candidate
// in the oracle search must not allocate. The per-call overhead (times
// slice, one scratch, the worker pool) is constant, so the allocation
// count must not grow with the size of the searched space.
func TestBestInAllocationFree(t *testing.T) {
	l, _ := vecaddLaunch(t, 4096)
	rt := New(device.MC2())
	rt.Workers = 1
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	coarse := partition.SharedSpace(3, 10) // 66 candidates
	fine := partition.SharedSpace(3, 30)   // 496 candidates
	prof.Precompute()
	measure := func(space []partition.Partition) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, _, err := rt.BestIn(l, prof, space); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocCoarse := measure(coarse)
	allocFine := measure(fine)
	// 7.5x the candidates must not cost extra allocations beyond the
	// slightly larger times slice. Allow a tiny slack for runtime noise.
	if allocFine > allocCoarse+4 {
		t.Errorf("search allocations grow with space size: %v allocs at 66 candidates, %v at 496",
			allocCoarse, allocFine)
	}
	if allocCoarse > 25 {
		t.Errorf("oracle search allocates %v times per call, want constant small overhead", allocCoarse)
	}
}

// TestSharedSpaceBestMatchesExplicit checks Best (memoized shared space)
// against BestIn over a freshly enumerated space.
func TestSharedSpaceBestMatchesExplicit(t *testing.T) {
	l, _ := vecaddLaunch(t, 4096)
	rt := New(device.MC1())
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	p1, t1, err := rt.Best(l, prof)
	if err != nil {
		t.Fatal(err)
	}
	p2, t2, err := rt.BestIn(l, prof, partition.Space(3, partition.DefaultSteps))
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() || t1 != t2 {
		t.Fatalf("Best over shared space (%s, %v) != fresh space (%s, %v)", p1, t1, p2, t2)
	}
}

// TestExecuteReusesChunkBuffers checks that repeated partitioned
// executions recycle chunk profile storage while still returning
// independent, correct launch-wide profiles.
func TestExecuteReusesChunkBuffers(t *testing.T) {
	part := partition.Partition{Shares: []int{4, 3, 3}}
	l1, _ := heavyLaunch(t, 2048)
	rt := New(device.MC1())
	res1, err := rt.Execute(l1, part)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]exec.Counts(nil), res1.Profile.Buckets...)
	l2, _ := heavyLaunch(t, 2048)
	res2, err := rt.Execute(l2, part)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Makespan != res2.Makespan {
		t.Fatalf("identical launches priced differently: %v vs %v", res1.Makespan, res2.Makespan)
	}
	// The first result's profile must be unaffected by the second run
	// (chunk scratch is recycled; launch-wide profiles are not).
	if !reflect.DeepEqual(res1.Profile.Buckets, before) {
		t.Fatal("first profile mutated by second Execute")
	}
	if !reflect.DeepEqual(res2.Profile.Buckets, before) {
		t.Fatal("second identical launch produced a different profile")
	}
}
