package runtime

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/partition"
	"repro/internal/sim"
)

// DynamicResult reports a dynamic-scheduling run.
type DynamicResult struct {
	// Makespan is the simulated completion time.
	Makespan float64
	// Shares is the fraction of dim-0 items each device ended up
	// executing (informational; chunks interleave, so this is not a
	// contiguous static partition).
	Shares []float64
	// Chunks is the number of scheduling units dispatched.
	Chunks int
}

// DynamicSchedule simulates the classic alternative to learned static
// partitioning: a StarPU-style greedy dynamic scheduler that splits the
// iteration space into fixed-size chunks and dispatches each chunk to the
// device that would finish it earliest (earliest-finish-time heuristic).
//
// Dynamic scheduling needs no training, but pays per-chunk costs a static
// split avoids: every chunk carries its own launch overhead and transfer
// latency, and small chunks run below device saturation. The comparison
// experiment (DESIGN.md T8) quantifies this trade-off against the paper's
// learned approach.
//
// chunks is the number of equal scheduling units (default 20, i.e. 5%
// granularity).
func (r *Runtime) DynamicSchedule(l Launch, prof *exec.Profile, chunks int) (*DynamicResult, error) {
	if chunks <= 0 {
		chunks = 20
	}
	align, err := l.align()
	if err != nil {
		return nil, err
	}
	nd, err := l.ND.Normalized()
	if err != nil {
		return nil, err
	}
	global0 := nd.Global[0]
	if chunks > global0/align {
		chunks = global0 / align
		if chunks == 0 {
			chunks = 1
		}
	}
	nDev := r.Platform.NumDevices()
	ready := make([]float64, nDev)
	items := make([]int64, nDev)
	var totalItems int64

	launches := l.iterations()
	for c := 0; c < chunks; c++ {
		lo := global0 * c / chunks / align * align
		hi := global0 * (c + 1) / chunks / align * align
		if c == chunks-1 {
			hi = global0
		}
		if hi <= lo {
			continue
		}
		counts := prof.Range(lo, hi)
		in, out := l.Plan.TransferBytes(l.Args, global0, lo, hi)
		// Pick the device that finishes this chunk earliest. Each chunk
		// is its own kernel launch with its own transfers — the price of
		// deciding at run time.
		bestDev, bestFinish := -1, 0.0
		var bestCost float64
		for d := 0; d < nDev; d++ {
			w := sim.Work{
				Counts:      counts,
				Mix:         l.Plan.Mix,
				TransferIn:  in,
				TransferOut: out,
				Launches:    launches,
			}
			bd := sim.DeviceTime(r.Platform.Devices[d], w, r.Opts)
			finish := ready[d] + bd.Total
			if bestDev < 0 || finish < bestFinish {
				bestDev, bestFinish, bestCost = d, finish, bd.Total
			}
		}
		ready[bestDev] += bestCost
		items[bestDev] += counts.Items
		totalItems += counts.Items
	}

	res := &DynamicResult{Chunks: chunks, Shares: make([]float64, nDev)}
	for d := 0; d < nDev; d++ {
		if ready[d] > res.Makespan {
			res.Makespan = ready[d]
		}
		if totalItems > 0 {
			res.Shares[d] = float64(items[d]) / float64(totalItems)
		}
	}
	if res.Makespan == 0 {
		return nil, fmt.Errorf("runtime: dynamic schedule dispatched no work")
	}
	return res, nil
}

// NearestPartition snaps a share vector onto the 10%-step grid (for
// reporting dynamic schedules in partition notation).
func NearestPartition(shares []float64) partition.Partition {
	out := make([]int, len(shares))
	total := 0
	for i, s := range shares {
		out[i] = int(s*partition.DefaultSteps + 0.5)
		total += out[i]
	}
	// Fix rounding drift on the largest share.
	for total != partition.DefaultSteps && len(out) > 0 {
		maxI := 0
		for i := range out {
			if out[i] > out[maxI] {
				maxI = i
			}
		}
		if total > partition.DefaultSteps {
			out[maxI]--
			total--
		} else {
			out[maxI]++
			total++
		}
	}
	return partition.Partition{Shares: out}
}
