// Package runtime is the multi-device execution engine: the counterpart of
// the paper's Insieme runtime system. Given a compiled kernel, a backend
// plan and a task partitioning, it executes each device's contiguous dim-0
// chunk against the shared host buffers (preserving single-device
// semantics) and prices the launch on the platform's device models,
// including all host-device transfers.
//
// It also implements the two default strategies the paper compares
// against — CPU-only and (single-)GPU-only — and the oracle search over
// the full 10%-step partition space used to label training data.
package runtime

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/partition"
	"repro/internal/sim"
)

// Launch bundles everything needed to run one benchmark kernel.
type Launch struct {
	Kernel *exec.Compiled
	Plan   *backend.Plan
	Args   []exec.Arg
	ND     exec.NDRange
	// Iterations is the number of times the application launches the
	// kernel (iterative solvers). Buffers stay device-resident between
	// launches, so transfers are charged once while compute scales.
	Iterations int
}

// iterations returns the effective launch count.
func (l *Launch) iterations() int {
	if l.Iterations < 1 {
		return 1
	}
	return l.Iterations
}

// Result reports one partitioned execution.
type Result struct {
	Partition  partition.Partition
	Makespan   float64 // simulated seconds
	Breakdowns []sim.Breakdown
	Profile    *exec.Profile
}

// Runtime executes launches on one simulated platform.
type Runtime struct {
	Platform *device.Platform
	Opts     sim.Options
}

// New creates a runtime for the platform.
func New(plat *device.Platform) *Runtime { return &Runtime{Platform: plat} }

// align returns the dim-0 work-group size used for chunk alignment.
func (l *Launch) align() (int, error) {
	nd, err := l.ND.Normalized()
	if err != nil {
		return 0, err
	}
	return nd.Local[0], nil
}

// checkPartition validates the partition against the platform.
func (r *Runtime) checkPartition(p partition.Partition) error {
	if len(p.Shares) != r.Platform.NumDevices() {
		return fmt.Errorf("runtime: partition over %d devices on a %d-device platform",
			len(p.Shares), r.Platform.NumDevices())
	}
	if p.Steps() == 0 {
		return fmt.Errorf("runtime: empty partition")
	}
	return nil
}

// Execute runs the launch under the given partitioning: every device's
// chunk is executed against the shared host buffers (so outputs are real
// and verifiable) and the launch is priced on the device models. The
// returned profile covers the full NDRange and can be re-priced for other
// partitionings with Price.
func (r *Runtime) Execute(l Launch, part partition.Partition) (*Result, error) {
	if err := r.checkPartition(part); err != nil {
		return nil, err
	}
	align, err := l.align()
	if err != nil {
		return nil, err
	}
	nd, err := l.ND.Normalized()
	if err != nil {
		return nil, err
	}
	full := &exec.Profile{Global0: nd.Global[0], Buckets: make([]exec.Counts, exec.DefaultBuckets)}
	if len(full.Buckets) > full.Global0 {
		full.Buckets = make([]exec.Counts, full.Global0)
	}
	chunks := part.Chunks(nd.Global[0], align)
	for _, ch := range chunks {
		if ch[1] <= ch[0] {
			continue
		}
		prof, err := l.Kernel.Run(l.Args, nd, exec.RunOptions{Lo: ch[0], Hi: ch[1], Buckets: len(full.Buckets)})
		if err != nil {
			return nil, err
		}
		for i := range prof.Buckets {
			full.Buckets[i].Add(&prof.Buckets[i])
		}
	}
	makespan, bds, err := r.price(l, full, part, align)
	if err != nil {
		return nil, err
	}
	return &Result{Partition: part, Makespan: makespan, Breakdowns: bds, Profile: full}, nil
}

// Profile executes the full NDRange once (on the host) and returns the
// dynamic profile, without pricing. Training uses this single execution to
// price every candidate partitioning analytically.
func (r *Runtime) Profile(l Launch) (*exec.Profile, error) {
	nd, err := l.ND.Normalized()
	if err != nil {
		return nil, err
	}
	return l.Kernel.Run(l.Args, nd, exec.RunOptions{})
}

// Price computes the simulated makespan of a partitioning from an
// existing profile, without executing anything.
func (r *Runtime) Price(l Launch, prof *exec.Profile, part partition.Partition) (float64, []sim.Breakdown, error) {
	if err := r.checkPartition(part); err != nil {
		return 0, nil, err
	}
	align, err := l.align()
	if err != nil {
		return 0, nil, err
	}
	return r.price(l, prof, part, align)
}

func (r *Runtime) price(l Launch, prof *exec.Profile, part partition.Partition, align int) (float64, []sim.Breakdown, error) {
	works := l.Plan.DeviceWorks(prof, l.Args, part, align, l.iterations())
	return sim.Makespan(r.Platform, works, r.Opts)
}

// Best exhaustively searches the 10%-step partition space for the
// minimum-makespan partitioning (the oracle used to label training data).
// Ties break toward the earlier partition in enumeration order, which is
// deterministic.
func (r *Runtime) Best(l Launch, prof *exec.Profile) (partition.Partition, float64, error) {
	space := partition.Space(r.Platform.NumDevices(), partition.DefaultSteps)
	var best partition.Partition
	bestTime := -1.0
	for _, p := range space {
		t, _, err := r.Price(l, prof, p)
		if err != nil {
			return partition.Partition{}, 0, err
		}
		if bestTime < 0 || t < bestTime {
			best, bestTime = p, t
		}
	}
	return best, bestTime, nil
}

// CPUOnly is the first default strategy: everything on the CPU device.
func (r *Runtime) CPUOnly() partition.Partition {
	return partition.Single(r.Platform.NumDevices(), device.CPUIndex)
}

// GPUOnly is the second default strategy: everything on a single GPU
// (the paper compares against "a single CPU and a single GPU only").
func (r *Runtime) GPUOnly() partition.Partition {
	gpus := r.Platform.GPUIndices()
	if len(gpus) == 0 {
		return r.CPUOnly()
	}
	return partition.Single(r.Platform.NumDevices(), gpus[0])
}
