// Package runtime is the multi-device execution engine: the counterpart of
// the paper's Insieme runtime system. Given a compiled kernel, a backend
// plan and a task partitioning, it executes each device's contiguous dim-0
// chunk against the shared host buffers (preserving single-device
// semantics) and prices the launch on the platform's device models,
// including all host-device transfers.
//
// It also implements the two default strategies the paper compares
// against — CPU-only and (single-)GPU-only — and the oracle search over
// the full 10%-step partition space used to label training data.
package runtime

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/backend"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Launch bundles everything needed to run one benchmark kernel.
type Launch struct {
	Kernel *exec.Compiled
	Plan   *backend.Plan
	Args   []exec.Arg
	ND     exec.NDRange
	// Iterations is the number of times the application launches the
	// kernel (iterative solvers). Buffers stay device-resident between
	// launches, so transfers are charged once while compute scales.
	Iterations int
	// Budget, when non-nil, bounds host execution of this launch (steps,
	// memory, wall clock); shared across all device chunks so the whole
	// launch draws from one pool.
	Budget *exec.Budget
}

// iterations returns the effective launch count.
func (l *Launch) iterations() int {
	if l.Iterations < 1 {
		return 1
	}
	return l.Iterations
}

// Result reports one partitioned execution.
type Result struct {
	Partition  partition.Partition
	Makespan   float64 // simulated seconds
	Breakdowns []sim.Breakdown
	Profile    *exec.Profile
}

// Runtime executes launches on one simulated platform.
type Runtime struct {
	Platform *device.Platform
	Opts     sim.Options
	// Workers bounds the host parallelism of the oracle search (Best) and
	// of chunked execution (Execute). 0 uses the scheduler's process-wide
	// default (GOMAXPROCS unless overridden by -parallel); 1 forces the
	// sequential path. Results are identical for every setting.
	Workers int

	// chunkBufs recycles per-chunk profile bucket slices across Execute
	// calls (sync.Pool: safe under the concurrent Runtime sharing the
	// harness sweeps rely on).
	chunkBufs sync.Pool
	// priceBufs recycles single-candidate pricing scratch sets for
	// PriceMakespan — the serving engine's per-request path, which must
	// not allocate when warm.
	priceBufs sync.Pool
}

// priceScratch is the per-worker buffer set of the oracle search: chunk
// layout, device works and breakdowns are reused across every candidate a
// worker prices, so the steady-state search allocates nothing.
type priceScratch struct {
	chunks [][2]int
	works  []sim.Work
	bds    []sim.Breakdown
}

// priceInto prices one partitioning using the scratch buffers. It computes
// exactly what price computes, without allocating.
func (r *Runtime) priceInto(sc *priceScratch, l Launch, prof *exec.Profile,
	part partition.Partition, align int) (float64, error) {
	sc.works, sc.chunks = l.Plan.DeviceWorksInto(sc.works, sc.chunks, prof, l.Args, part, align, l.iterations())
	t, bds, err := sim.MakespanInto(sc.bds, r.Platform, sc.works, r.Opts)
	sc.bds = bds
	return t, err
}

// New creates a runtime for the platform.
func New(plat *device.Platform) *Runtime { return &Runtime{Platform: plat} }

// align returns the dim-0 work-group size used for chunk alignment.
func (l *Launch) align() (int, error) {
	nd, err := l.ND.Normalized()
	if err != nil {
		return 0, err
	}
	return nd.Local[0], nil
}

// checkPartition validates the partition against the platform.
func (r *Runtime) checkPartition(p partition.Partition) error {
	if len(p.Shares) != r.Platform.NumDevices() {
		return fmt.Errorf("runtime: partition over %d devices on a %d-device platform",
			len(p.Shares), r.Platform.NumDevices())
	}
	if p.Steps() == 0 {
		return fmt.Errorf("runtime: empty partition")
	}
	return nil
}

// Execute runs the launch under the given partitioning: every device's
// chunk is executed against the shared host buffers (so outputs are real
// and verifiable) and the launch is priced on the device models. The
// returned profile covers the full NDRange and can be re-priced for other
// partitionings with Price.
func (r *Runtime) Execute(l Launch, part partition.Partition) (*Result, error) {
	if err := r.checkPartition(part); err != nil {
		return nil, err
	}
	align, err := l.align()
	if err != nil {
		return nil, err
	}
	nd, err := l.ND.Normalized()
	if err != nil {
		return nil, err
	}
	full := &exec.Profile{Global0: nd.Global[0], Buckets: make([]exec.Counts, exec.DefaultBuckets)}
	if len(full.Buckets) > full.Global0 {
		full.Buckets = make([]exec.Counts, full.Global0)
	}
	// Each device's disjoint dim-0 chunk runs in its own worker. Chunks
	// write disjoint work items, the per-chunk profiles are merged in
	// device order after the join, and every Counts field is an integer
	// sum (or max), so the result is byte-identical to sequential chunk
	// execution.
	//
	// Each chunk's kernel-level worker count is proportional to its
	// share of the work: skewed partitions (shares up to 10:1) don't
	// starve the large chunk, while total parallelism stays within the
	// budget up to rounding (at most one extra worker per device).
	chunks := part.Chunks(nd.Global[0], align)
	active, totalItems := 0, 0
	for _, ch := range chunks {
		if ch[1] > ch[0] {
			active++
			totalItems += ch[1] - ch[0]
		}
	}
	budget := sched.Workers(r.Workers)
	outer := budget
	if outer > active {
		outer = active
	}
	profs, err := sched.Map(context.Background(), len(chunks), outer,
		func(_ context.Context, i int) (*exec.Profile, error) {
			ch := chunks[i]
			if ch[1] <= ch[0] {
				return nil, nil
			}
			w := budget * (ch[1] - ch[0]) / totalItems
			if w < 1 {
				w = 1
			}
			return l.Kernel.Run(l.Args, nd, exec.RunOptions{
				Lo: ch[0], Hi: ch[1], Buckets: len(full.Buckets), Workers: w,
				DestBuckets: r.getChunkBuf(len(full.Buckets)),
				Budget:      l.Budget,
			})
		})
	if err != nil {
		return nil, err
	}
	for _, prof := range profs {
		if prof == nil {
			continue
		}
		for i := range prof.Buckets {
			full.Buckets[i].Add(&prof.Buckets[i])
		}
		full.VecDivergences += prof.VecDivergences
		full.VecReconverges += prof.VecReconverges
		full.VecScalarBails += prof.VecScalarBails
		r.putChunkBuf(prof.Buckets)
	}
	makespan, bds, err := r.price(l, full, part, align)
	if err != nil {
		return nil, err
	}
	return &Result{Partition: part, Makespan: makespan, Breakdowns: bds, Profile: full}, nil
}

// getChunkBuf returns a recycled per-chunk bucket slice (Run zeroes its
// DestBuckets, so stale contents are harmless).
func (r *Runtime) getChunkBuf(n int) []exec.Counts {
	if v := r.chunkBufs.Get(); v != nil {
		b := *v.(*[]exec.Counts)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]exec.Counts, n)
}

// putChunkBuf returns a chunk bucket slice to the pool after its counts
// have been merged into the launch-wide profile.
func (r *Runtime) putChunkBuf(b []exec.Counts) { r.chunkBufs.Put(&b) }

// Profile executes the full NDRange once (on the host) and returns the
// dynamic profile, without pricing. Training uses this single execution to
// price every candidate partitioning analytically.
func (r *Runtime) Profile(l Launch) (*exec.Profile, error) {
	nd, err := l.ND.Normalized()
	if err != nil {
		return nil, err
	}
	return l.Kernel.Run(l.Args, nd, exec.RunOptions{Workers: r.Workers, Budget: l.Budget})
}

// Price computes the simulated makespan of a partitioning from an
// existing profile, without executing anything.
func (r *Runtime) Price(l Launch, prof *exec.Profile, part partition.Partition) (float64, []sim.Breakdown, error) {
	if err := r.checkPartition(part); err != nil {
		return 0, nil, err
	}
	align, err := l.align()
	if err != nil {
		return 0, nil, err
	}
	return r.price(l, prof, part, align)
}

func (r *Runtime) price(l Launch, prof *exec.Profile, part partition.Partition, align int) (float64, []sim.Breakdown, error) {
	works := l.Plan.DeviceWorks(prof, l.Args, part, align, l.iterations())
	return sim.Makespan(r.Platform, works, r.Opts)
}

// PriceMakespan is Price without the per-device breakdowns: it computes
// the same makespan through a pooled scratch set, so a warm call — the
// serving engine's per-prediction path — performs zero heap allocations.
func (r *Runtime) PriceMakespan(l Launch, prof *exec.Profile, part partition.Partition) (float64, error) {
	if err := r.checkPartition(part); err != nil {
		return 0, err
	}
	align, err := l.align()
	if err != nil {
		return 0, err
	}
	sc, _ := r.priceBufs.Get().(*priceScratch)
	if sc == nil {
		sc = new(priceScratch)
	}
	t, err := r.priceInto(sc, l, prof, part, align)
	r.priceBufs.Put(sc)
	return t, err
}

// Best exhaustively searches the 10%-step partition space for the
// minimum-makespan partitioning (the oracle used to label training data).
// Ties break toward the earlier partition in enumeration order, which is
// deterministic. The space enumeration is memoized process-wide per
// (devices, steps), so repeated searches share one canonical slice.
func (r *Runtime) Best(l Launch, prof *exec.Profile) (partition.Partition, float64, error) {
	return r.BestIn(l, prof, partition.SharedSpace(r.Platform.NumDevices(), partition.DefaultSteps))
}

// BestIn prices every candidate partitioning in parallel (pricing is
// read-only over the profile, so the search is embarrassingly parallel)
// and returns the minimum-makespan one. Each worker prices a contiguous
// shard of the space with its own scratch buffers, so the steady-state
// search performs zero allocations per candidate. The reduction runs over
// the priced times in enumeration order, so ties break toward the earlier
// candidate exactly like the sequential loop.
func (r *Runtime) BestIn(l Launch, prof *exec.Profile, space []partition.Partition) (partition.Partition, float64, error) {
	times, err := r.priceSpace(l, prof, space, make([]float64, len(space)))
	if err != nil {
		return partition.Partition{}, 0, err
	}
	best := 0
	for i, t := range times {
		if t < times[best] {
			best = i
		}
	}
	return space[best], times[best], nil
}

// PriceAll prices every candidate in the space from one profile and
// returns the per-candidate makespans in enumeration order. dst is reused
// when its length matches (training sweeps hand in the record's Times
// slice). The times are identical to calling Price per candidate.
func (r *Runtime) PriceAll(l Launch, prof *exec.Profile, space []partition.Partition, dst []float64) ([]float64, error) {
	if len(dst) != len(space) {
		dst = make([]float64, len(space))
	}
	return r.priceSpace(l, prof, space, dst)
}

// priceSpace fills dst with the makespan of every candidate. Candidates
// are validated up front (deterministic errors), the profile's O(1) range
// index is built once, and the space is sharded contiguously over the
// worker budget with per-worker scratch.
func (r *Runtime) priceSpace(l Launch, prof *exec.Profile, space []partition.Partition, dst []float64) ([]float64, error) {
	if len(space) == 0 {
		return nil, fmt.Errorf("runtime: empty partition space")
	}
	for _, p := range space {
		if err := r.checkPartition(p); err != nil {
			return nil, err
		}
	}
	align, err := l.align()
	if err != nil {
		return nil, err
	}
	prof.Precompute()
	workers := sched.Workers(r.Workers)
	if workers > len(space) {
		workers = len(space)
	}
	_, err = sched.Map(context.Background(), workers, workers,
		func(_ context.Context, s int) (struct{}, error) {
			lo := len(space) * s / workers
			hi := len(space) * (s + 1) / workers
			var sc priceScratch
			for i := lo; i < hi; i++ {
				t, err := r.priceInto(&sc, l, prof, space[i], align)
				if err != nil {
					return struct{}{}, err
				}
				dst[i] = t
			}
			return struct{}{}, nil
		})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// CPUOnly is the first default strategy: everything on the CPU device.
func (r *Runtime) CPUOnly() partition.Partition {
	return partition.Single(r.Platform.NumDevices(), device.CPUIndex)
}

// GPUOnly is the second default strategy: everything on a single GPU
// (the paper compares against "a single CPU and a single GPU only").
func (r *Runtime) GPUOnly() partition.Partition {
	gpus := r.Platform.GPUIndices()
	if len(gpus) == 0 {
		return r.CPUOnly()
	}
	return partition.Single(r.Platform.NumDevices(), gpus[0])
}
