package runtime

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/exec"
)

func TestDynamicScheduleBasics(t *testing.T) {
	rt := New(device.MC2())
	n := 65536
	in, out := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
	for i := range in.F {
		in.F[i] = 0.5
	}
	l := makeLaunch(t, heavySrc, "heavy",
		[]exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(100)}, exec.ND1(n))
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := rt.DynamicSchedule(l, prof, 20)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if dyn.Chunks != 20 {
		t.Errorf("chunks = %d, want 20", dyn.Chunks)
	}
	var total float64
	for _, s := range dyn.Shares {
		if s < 0 || s > 1 {
			t.Errorf("share %g out of range", s)
		}
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %g", total)
	}
	// On mc2 with a large compute-bound kernel, the scheduler must use
	// the GPUs for most of the work.
	if dyn.Shares[1]+dyn.Shares[2] < 0.5 {
		t.Errorf("GPUs got only %.0f%% of a compute-bound kernel", (dyn.Shares[1]+dyn.Shares[2])*100)
	}
}

func TestDynamicVsOracle(t *testing.T) {
	// Dynamic scheduling pays per-chunk overhead, so it should not beat
	// the static oracle by more than noise; and it must stay within a
	// sane factor of it for a regular kernel.
	rt := New(device.MC2())
	l, _ := vecaddLaunch(t, 131072)
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := rt.DynamicSchedule(l, prof, 20)
	if err != nil {
		t.Fatal(err)
	}
	_, oracle, err := rt.Best(l, prof)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Makespan < oracle*0.99 {
		t.Errorf("dynamic %g beats static oracle %g: per-chunk costs unaccounted", dyn.Makespan, oracle)
	}
	if dyn.Makespan > oracle*20 {
		t.Errorf("dynamic %g more than 20x off oracle %g", dyn.Makespan, oracle)
	}
}

func TestDynamicScheduleChunkClamping(t *testing.T) {
	rt := New(device.MC1())
	l, _ := vecaddLaunch(t, 256) // 4 groups of 64: at most 4 chunks
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := rt.DynamicSchedule(l, prof, 100)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Chunks > 4 {
		t.Errorf("chunks = %d, want <= 4", dyn.Chunks)
	}
}

func TestNearestPartition(t *testing.T) {
	p := NearestPartition([]float64{0.52, 0.28, 0.20})
	if p.Steps() != 10 {
		t.Fatalf("steps = %d", p.Steps())
	}
	if p.Shares[0] != 5 || p.Shares[1] != 3 || p.Shares[2] != 2 {
		t.Errorf("shares = %v, want [5 3 2]", p.Shares)
	}
	// Rounding drift repair.
	q := NearestPartition([]float64{0.55, 0.55, 0})
	if q.Steps() != 10 {
		t.Errorf("drift not repaired: %v", q.Shares)
	}
}
