package runtime

import (
	"math"
	"testing"

	"repro/internal/backend"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/inspire"
	"repro/internal/partition"
)

const vecaddSrc = `
kernel void vecadd(global const float* a, global const float* b,
                   global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}
`

// heavySrc is a compute-bound kernel: per-item transcendental loop.
const heavySrc = `
kernel void heavy(global const float* in, global float* out, int iters) {
    int i = get_global_id(0);
    float x = in[i];
    for (int k = 0; k < iters; k++) {
        x = x * 0.999 + 0.001;
        x = sqrt(x * x + 0.5);
    }
    out[i] = x;
}
`

func makeLaunch(t *testing.T, src, kernel string, args []exec.Arg, nd exec.NDRange) Launch {
	t.Helper()
	u, err := inspire.LowerSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	k := u.Kernel(kernel)
	comp, err := exec.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	return Launch{Kernel: comp, Plan: plan, Args: args, ND: nd}
}

func vecaddLaunch(t *testing.T, n int) (Launch, *exec.Buffer) {
	a, b, c := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.F[i] = float32(i)
		b.F[i] = float32(i) * 2
	}
	l := makeLaunch(t, vecaddSrc, "vecadd",
		[]exec.Arg{exec.BufArg(a), exec.BufArg(b), exec.BufArg(c), exec.IntArg(n)}, exec.ND1(n))
	return l, c
}

func TestExecutePartitionedCorrect(t *testing.T) {
	rt := New(device.MC2())
	n := 1024
	l, c := vecaddLaunch(t, n)
	res, err := rt.Execute(l, partition.Partition{Shares: []int{4, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if want := float32(3 * i); c.F[i] != want {
			t.Fatalf("c[%d] = %g, want %g", i, c.F[i], want)
		}
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if got := res.Profile.Total().Items; got != int64(n) {
		t.Errorf("profile items = %d, want %d", got, n)
	}
}

func TestPriceMatchesExecute(t *testing.T) {
	rt := New(device.MC1())
	l, _ := vecaddLaunch(t, 2048)
	part := partition.Partition{Shares: []int{6, 2, 2}}
	res, err := rt.Execute(l, part)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := rt.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	price, _, err := rt.Price(l, prof, part)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(price-res.Makespan)/res.Makespan > 0.02 {
		t.Errorf("Price %g vs Execute %g differ > 2%%", price, res.Makespan)
	}
}

func TestBestBeatsOrEqualsDefaults(t *testing.T) {
	for _, plat := range device.Platforms() {
		rt := New(plat)
		l, _ := vecaddLaunch(t, 4096)
		prof, err := rt.Profile(l)
		if err != nil {
			t.Fatal(err)
		}
		_, bestTime, err := rt.Best(l, prof)
		if err != nil {
			t.Fatal(err)
		}
		for _, def := range []partition.Partition{rt.CPUOnly(), rt.GPUOnly()} {
			dt, _, err := rt.Price(l, prof, def)
			if err != nil {
				t.Fatal(err)
			}
			if bestTime > dt*1.0000001 {
				t.Errorf("%s: best %g worse than default %s %g", plat.Name, bestTime, def, dt)
			}
		}
	}
}

func TestDefaultStrategies(t *testing.T) {
	rt := New(device.MC1())
	cpu := rt.CPUOnly()
	if idx, ok := cpu.IsSingle(); !ok || idx != device.CPUIndex {
		t.Errorf("CPUOnly = %s", cpu)
	}
	gpu := rt.GPUOnly()
	if idx, ok := gpu.IsSingle(); !ok || idx != 1 {
		t.Errorf("GPUOnly = %s", gpu)
	}
}

func TestSizeSensitivity(t *testing.T) {
	// The oracle must move work toward the GPUs as the problem grows
	// (on mc2 with a compute-bound kernel).
	rt := New(device.MC2())
	gpuShare := func(n int) float64 {
		in, out := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		for i := range in.F {
			in.F[i] = 0.5
		}
		l := makeLaunch(t, heavySrc, "heavy",
			[]exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(200)}, exec.ND1(n))
		prof, err := rt.Profile(l)
		if err != nil {
			t.Fatal(err)
		}
		best, _, err := rt.Best(l, prof)
		if err != nil {
			t.Fatal(err)
		}
		return best.Fraction(1) + best.Fraction(2)
	}
	small := gpuShare(256)
	large := gpuShare(65536)
	if large <= small {
		t.Errorf("GPU share did not grow with size: small %.0f%%, large %.0f%%", small*100, large*100)
	}
	if large < 0.5 {
		t.Errorf("large compute-bound problem should be mostly on GPUs, got %.0f%%", large*100)
	}
}

func TestPlatformAsymmetryOnDefaults(t *testing.T) {
	// For a mildly compute-bound kernel, GPU-only should look relatively
	// better on mc2 than on mc1 (the paper's central platform asymmetry).
	ratio := func(plat *device.Platform) float64 {
		rt := New(plat)
		n := 16384
		in, out := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		for i := range in.F {
			in.F[i] = 0.5
		}
		l := makeLaunch(t, heavySrc, "heavy",
			[]exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(100)}, exec.ND1(n))
		prof, err := rt.Profile(l)
		if err != nil {
			t.Fatal(err)
		}
		cpu, _, err := rt.Price(l, prof, rt.CPUOnly())
		if err != nil {
			t.Fatal(err)
		}
		gpu, _, err := rt.Price(l, prof, rt.GPUOnly())
		if err != nil {
			t.Fatal(err)
		}
		return cpu / gpu // >1 means GPU wins
	}
	r1, r2 := ratio(device.MC1()), ratio(device.MC2())
	if r2 <= r1 {
		t.Errorf("GPU should be relatively stronger on mc2: mc1 %.2f, mc2 %.2f", r1, r2)
	}
}

func TestExecuteErrors(t *testing.T) {
	rt := New(device.MC2())
	l, _ := vecaddLaunch(t, 256)
	if _, err := rt.Execute(l, partition.Partition{Shares: []int{10}}); err == nil {
		t.Error("want partition arity error")
	}
	if _, err := rt.Execute(l, partition.Partition{Shares: []int{0, 0, 0}}); err == nil {
		t.Error("want empty partition error")
	}
}

func TestIterativeLaunchPricing(t *testing.T) {
	rt := New(device.MC2())
	n := 8192
	a, b, c := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
	base := makeLaunch(t, vecaddSrc, "vecadd",
		[]exec.Arg{exec.BufArg(a), exec.BufArg(b), exec.BufArg(c), exec.IntArg(n)}, exec.ND1(n))
	prof, err := rt.Profile(base)
	if err != nil {
		t.Fatal(err)
	}
	iter := base
	iter.Iterations = 50
	p1, _, err := rt.Price(base, prof, rt.GPUOnly())
	if err != nil {
		t.Fatal(err)
	}
	p50, _, err := rt.Price(iter, prof, rt.GPUOnly())
	if err != nil {
		t.Fatal(err)
	}
	if p50 <= p1 {
		t.Error("iterations did not increase cost")
	}
	if p50 >= 50*p1 {
		t.Error("iterative pricing should amortize transfers, got full linear scaling")
	}
}
