package runtime

import (
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/partition"
)

// heavyLaunch builds a compute-bound launch with its own fresh buffers so
// sequential and parallel executions never share state.
func heavyLaunch(t *testing.T, n int) (Launch, *exec.Buffer) {
	t.Helper()
	in, out := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		in.F[i] = float32(i%97) / 97
	}
	l := makeLaunch(t, heavySrc, "heavy",
		[]exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(40)}, exec.ND1(n))
	return l, out
}

// TestBestParallelMatchesSequential is the golden determinism check for
// the oracle search: the parallel search must return the bit-identical
// partition and makespan the sequential loop returns.
func TestBestParallelMatchesSequential(t *testing.T) {
	for _, plat := range []*device.Platform{device.MC1(), device.MC2()} {
		l, _ := vecaddLaunch(t, 4096)
		seq := New(plat)
		seq.Workers = 1
		prof, err := seq.Profile(l)
		if err != nil {
			t.Fatal(err)
		}
		wantPart, wantTime, err := seq.Best(l, prof)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par := New(plat)
			par.Workers = workers
			gotPart, gotTime, err := par.Best(l, prof)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotPart, wantPart) || gotTime != wantTime {
				t.Fatalf("%s workers=%d: Best = (%v, %v), sequential = (%v, %v)",
					plat.Name, workers, gotPart, gotTime, wantPart, wantTime)
			}
		}
	}
}

// TestBestInFinerGrid checks the parallel search on a non-default space.
func TestBestInFinerGrid(t *testing.T) {
	l, _ := vecaddLaunch(t, 4096)
	seq := New(device.MC2())
	seq.Workers = 1
	prof, err := seq.Profile(l)
	if err != nil {
		t.Fatal(err)
	}
	space := partition.Space(3, 20)
	wantPart, wantTime, err := seq.BestIn(l, prof, space)
	if err != nil {
		t.Fatal(err)
	}
	par := New(device.MC2())
	par.Workers = 8
	gotPart, gotTime, err := par.BestIn(l, prof, space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPart, wantPart) || gotTime != wantTime {
		t.Fatalf("BestIn parallel (%v, %v) != sequential (%v, %v)", gotPart, gotTime, wantPart, wantTime)
	}
}

// TestExecuteParallelMatchesSequential is the golden determinism check for
// chunked execution: per-device chunks executed concurrently must produce
// the same output buffers, profile and makespan as sequential chunk
// execution.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	parts := []partition.Partition{
		{Shares: []int{4, 3, 3}},
		{Shares: []int{0, 10, 0}},
		{Shares: []int{1, 1, 8}},
	}
	for _, part := range parts {
		seqL, seqOut := heavyLaunch(t, 2048)
		seq := New(device.MC1())
		seq.Workers = 1
		seqRes, err := seq.Execute(seqL, part)
		if err != nil {
			t.Fatal(err)
		}

		parL, parOut := heavyLaunch(t, 2048)
		par := New(device.MC1())
		par.Workers = 8
		parRes, err := par.Execute(parL, part)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(seqOut.F, parOut.F) {
			t.Fatalf("partition %v: output buffers differ between sequential and parallel execution", part)
		}
		if seqRes.Makespan != parRes.Makespan {
			t.Fatalf("partition %v: makespan %v != %v", part, parRes.Makespan, seqRes.Makespan)
		}
		if !reflect.DeepEqual(seqRes.Profile, parRes.Profile) {
			t.Fatalf("partition %v: profiles differ between sequential and parallel execution", part)
		}
		if !reflect.DeepEqual(seqRes.Breakdowns, parRes.Breakdowns) {
			t.Fatalf("partition %v: breakdowns differ between sequential and parallel execution", part)
		}
	}
}

// TestExecuteParallelError checks error propagation through the worker
// pool: an invalid chunk alignment must surface as an error, not a hang or
// a partial result.
func TestExecuteParallelError(t *testing.T) {
	l, _ := vecaddLaunch(t, 1024)
	l.ND.Local[0] = 64
	rt := New(device.MC2())
	rt.Workers = 8
	// 7 devices on a 3-device platform: checkPartition must reject it.
	if _, err := rt.Execute(l, partition.Partition{Shares: []int{1, 1, 1, 1, 1, 1, 4}}); err == nil {
		t.Fatal("expected partition mismatch error")
	}
}
