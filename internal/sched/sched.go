// Package sched is the concurrent scheduling core of the framework: a
// bounded worker pool with deterministic result ordering, lowest-index
// error propagation and context cancellation.
//
// Every parallel hot path in the repository — the oracle search over the
// partition space (runtime.Best), per-device chunk execution
// (runtime.Execute), the training-data sweep (harness.Generate) and
// cross-validation folds (ml.LeaveOneGroupOut) — fans out through Map.
// Results are always returned in input index order, so callers
// that reduce over them in order produce output identical to a sequential
// loop; parallelism never changes results, only wall-clock time.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker budget used when a caller
// passes workers <= 0. Zero means GOMAXPROCS. Commands thread their
// -parallel flag here so every layer honours it without plumbing a worker
// count through each signature.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker budget.
// n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide default worker budget.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers resolves a caller-supplied worker count: n itself when positive,
// the process default otherwise.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return DefaultWorkers()
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 uses the process default) and returns the results in index
// order. With one worker it degenerates to a plain sequential loop in the
// calling goroutine.
//
// On failure the error with the smallest input index among those observed
// is returned and no results are delivered; in-flight calls are allowed to
// finish but no new indices are claimed, and the context passed to fn is
// cancelled. Cancelling ctx stops the pool the same way and returns
// ctx.Err().
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				v, err := fn(cctx, i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
