package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	fn := func(_ context.Context, i int) (float64, error) { return float64(i) * 1.5, nil }
	seq, err := Map(context.Background(), 257, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(context.Background(), 257, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %v vs parallel %v", i, seq[i], par[i])
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), 64, workers, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 50, workers, func(_ context.Context, i int) (int, error) {
			if i == 17 {
				return 0, fmt.Errorf("item %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}

// TestMapLowestIndexError checks that when several items fail, the
// reported error is the one with the smallest index among those observed —
// matching a sequential loop when fn is deterministic.
func TestMapLowestIndexError(t *testing.T) {
	var started sync.WaitGroup
	started.Add(4)
	release := make(chan struct{})
	go func() {
		started.Wait()
		close(release)
	}()
	_, err := Map(context.Background(), 4, 4, func(_ context.Context, i int) (int, error) {
		started.Done()
		<-release
		return 0, fmt.Errorf("fail-%d", i)
	})
	if err == nil || err.Error() != "fail-0" {
		t.Fatalf("err = %v, want fail-0", err)
	}
}

func TestMapStopsClaimingAfterError(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(context.Background(), 10000, 2, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("early")
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if c := calls.Load(); c > 100 {
		t.Fatalf("%d calls ran after an index-0 error; pool did not stop claiming", c)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 10000, 2, func(ctx context.Context, i int) (int, error) {
			if calls.Add(1) == 10 {
				cancel()
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if c := calls.Load(); c > 10000 {
		t.Fatalf("calls = %d", c)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestWorkersDefaults(t *testing.T) {
	if w := Workers(7); w != 7 {
		t.Fatalf("Workers(7) = %d", w)
	}
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", w)
	}
	SetDefaultWorkers(3)
	defer SetDefaultWorkers(0)
	if w := Workers(0); w != 3 {
		t.Fatalf("Workers(0) with default 3 = %d", w)
	}
	if w := Workers(5); w != 5 {
		t.Fatalf("Workers(5) with default 3 = %d", w)
	}
}
