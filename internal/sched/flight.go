package sched

import "sync"

// Memo is a generic request-deduplicating memo table: the first call for a
// key runs fn exactly once and every caller — including concurrent callers
// that arrive while fn is still running — receives that single result.
// This is the serving-path companion of Map: where Map fans one request
// out over many workers, Memo collapses many identical requests into one
// computation.
//
// Results (including errors) are cached for the lifetime of the Memo; it
// is intended for deterministic computations such as kernel compilation,
// profiled executions and model training, where a repeat request must not
// redo the work. The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoized result for key, running fn to produce it on the
// first request. Concurrent requests for the same key block until the
// single in-flight fn finishes; requests for distinct keys never block
// each other while fn runs.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	e := m.entry(key)
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// DoRetryable is Do for computations whose failures may be transient
// (artifact reads, say): an error result is not memoized — the failed
// entry is dropped so a later request retries — while concurrent
// requests still share the one in-flight attempt. The drop is
// identity-checked, so a stale failure never evicts a newer entry that a
// subsequent request is already computing.
func (m *Memo[K, V]) DoRetryable(key K, fn func() (V, error)) (V, error) {
	e := m.entry(key)
	e.once.Do(func() { e.val, e.err = fn() })
	if e.err != nil {
		m.mu.Lock()
		if m.m[key] == e {
			delete(m.m, key)
		}
		m.mu.Unlock()
	}
	return e.val, e.err
}

// entry returns (creating if needed) the current entry for key.
func (m *Memo[K, V]) entry(key K) *memoEntry[V] {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.m == nil {
		m.m = map[K]*memoEntry[V]{}
	}
	e := m.m[key]
	if e == nil {
		e = &memoEntry[V]{}
		m.m[key] = e
	}
	return e
}

// Len reports how many keys have been requested (computed or in flight).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

