package sched

import (
	"sync"
	"sync/atomic"
)

// Memo is a generic request-deduplicating memo table: the first call for a
// key runs fn exactly once and every caller — including concurrent callers
// that arrive while fn is still running — receives that single result.
// This is the serving-path companion of Map: where Map fans one request
// out over many workers, Memo collapses many identical requests into one
// computation.
//
// Results (including errors) are cached for the lifetime of the Memo; it
// is intended for deterministic computations such as kernel compilation,
// profiled executions and model training, where a repeat request must not
// redo the work. The zero value is ready to use and unbounded; a
// long-lived serving process can cap the table with SetLimit, which turns
// the memo into an LRU-ish cache (least-recently-used completed entries
// are evicted first; in-flight computations are never evicted). Recency
// is only tracked while a cap is set — the unbounded hit path
// deliberately writes nothing shared — so capping a table that already
// served unbounded traffic treats its existing entries as equally old:
// eviction among them is arbitrary until they are touched again. Set the
// cap before traffic (as the engine does) for strict LRU ordering.
//
// Lookups of existing keys — the warm serving path, where every request
// is a cache hit — are lock-free: the table publishes an immutable
// snapshot through an atomic pointer, so a warm hit is one atomic load
// plus one read-only map lookup, with no shared cache-line writes at all
// on an unbounded table (a capped table additionally stamps recency with
// two atomics). Only insertion, eviction and SetLimit take the mutex and
// republish the snapshot; key misses are exactly the computations whose
// cost dwarfs a map copy.
type Memo[K comparable, V any] struct {
	read  atomic.Pointer[map[K]*memoEntry[V]] // immutable snapshot
	mu    sync.Mutex                          // guards dirty + publication
	dirty map[K]*memoEntry[V]                 // authoritative table
	limit atomic.Int64                        // 0 = unbounded
	clock atomic.Uint64                       // recency counter (capped tables)
	// evicted counts entries removed by the LRU cap, for serving stats.
	evicted atomic.Uint64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
	// done is set after the entry's computation finishes; eviction skips
	// in-flight entries (concurrent callers hold references to them).
	done atomic.Bool
	// lastUse is the memo clock at the entry's most recent access. Atomic
	// so the lock-free hit path can stamp it; concurrent stamps race
	// benignly — whichever recent tick lands, the entry reads as recently
	// used.
	lastUse atomic.Uint64
}

// Do returns the memoized result for key, running fn to produce it on the
// first request. Concurrent requests for the same key block until the
// single in-flight fn finishes; requests for distinct keys never block
// each other while fn runs.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	e := m.entry(key)
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	return e.val, e.err
}

// DoRetryable is Do for computations whose failures may be transient
// (artifact reads, say): an error result is not memoized — the failed
// entry is dropped so a later request retries — while concurrent
// requests still share the one in-flight attempt. The drop is
// identity-checked, so a stale failure never evicts a newer entry that a
// subsequent request is already computing.
func (m *Memo[K, V]) DoRetryable(key K, fn func() (V, error)) (V, error) {
	e := m.entry(key)
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	if e.err != nil {
		m.mu.Lock()
		if m.dirty[key] == e {
			delete(m.dirty, key)
			m.publishLocked()
		}
		m.mu.Unlock()
	}
	return e.val, e.err
}

// entry returns (creating if needed) the current entry for key. The warm
// case — the key exists in the published snapshot and the table is
// within its cap — completes without the lock.
func (m *Memo[K, V]) entry(key K) *memoEntry[V] {
	if mp := m.read.Load(); mp != nil {
		if e := (*mp)[key]; e != nil {
			limit := m.limit.Load()
			if limit <= 0 {
				return e
			}
			e.lastUse.Store(m.clock.Add(1))
			if int64(len(*mp)) <= limit {
				return e
			}
			// Over the cap (a burst of in-flight entries outran it):
			// fall through to evict under the lock.
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty == nil {
		m.dirty = map[K]*memoEntry[V]{}
	}
	e := m.dirty[key]
	if e == nil {
		e = &memoEntry[V]{}
		m.dirty[key] = e
	}
	e.lastUse.Store(m.clock.Add(1))
	m.evictLocked(e)
	m.publishLocked()
	return e
}

// publishLocked snapshots the authoritative table for lock-free readers.
// Callers hold m.mu.
func (m *Memo[K, V]) publishLocked() {
	snap := make(map[K]*memoEntry[V], len(m.dirty))
	for k, e := range m.dirty {
		snap[k] = e
	}
	m.read.Store(&snap)
}

// SetLimit caps the table at n entries (0 restores unbounded growth) and
// immediately evicts down to the cap. Concurrent-safe; the cap bounds
// completed entries — a burst of distinct in-flight computations can
// transiently exceed it, since evicting an entry callers are still
// waiting on would rerun its computation.
func (m *Memo[K, V]) SetLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		n = 0
	}
	m.limit.Store(int64(n))
	m.evictLocked(nil)
	m.publishLocked()
}

// evictLocked drops least-recently-used completed entries until the table
// is within the limit. keep (the entry just accessed) is never evicted
// even if its computation has not started yet. Callers hold m.mu and
// must republish afterwards.
func (m *Memo[K, V]) evictLocked(keep *memoEntry[V]) {
	limit := int(m.limit.Load())
	if limit <= 0 {
		return
	}
	for len(m.dirty) > limit {
		var victim K
		var victimE *memoEntry[V]
		var victimUse uint64
		for k, e := range m.dirty {
			if e == keep || !e.done.Load() {
				continue
			}
			if use := e.lastUse.Load(); victimE == nil || use < victimUse {
				victim, victimE, victimUse = k, e, use
			}
		}
		if victimE == nil {
			return // everything else is in flight; let the burst drain
		}
		delete(m.dirty, victim)
		m.evicted.Add(1)
	}
}

// Evictions reports how many entries the LRU cap has removed.
func (m *Memo[K, V]) Evictions() uint64 {
	return m.evicted.Load()
}

// Len reports how many keys are currently cached (computed or in flight).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}
