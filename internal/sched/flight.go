package sched

import (
	"sync"
	"sync/atomic"
)

// Memo is a generic request-deduplicating memo table: the first call for a
// key runs fn exactly once and every caller — including concurrent callers
// that arrive while fn is still running — receives that single result.
// This is the serving-path companion of Map: where Map fans one request
// out over many workers, Memo collapses many identical requests into one
// computation.
//
// Results (including errors) are cached for the lifetime of the Memo; it
// is intended for deterministic computations such as kernel compilation,
// profiled executions and model training, where a repeat request must not
// redo the work. The zero value is ready to use and unbounded; a
// long-lived serving process can cap the table with SetLimit, which turns
// the memo into an LRU-ish cache (least-recently-used completed entries
// are evicted first; in-flight computations are never evicted).
type Memo[K comparable, V any] struct {
	mu    sync.Mutex
	m     map[K]*memoEntry[V]
	limit int    // 0 = unbounded
	clock uint64 // recency counter; each access stamps the entry
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
	// done is set after the entry's computation finishes; eviction skips
	// in-flight entries (concurrent callers hold references to them).
	done atomic.Bool
	// lastUse is the memo clock at the entry's most recent access,
	// guarded by Memo.mu.
	lastUse uint64
}

// Do returns the memoized result for key, running fn to produce it on the
// first request. Concurrent requests for the same key block until the
// single in-flight fn finishes; requests for distinct keys never block
// each other while fn runs.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	e := m.entry(key)
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	return e.val, e.err
}

// DoRetryable is Do for computations whose failures may be transient
// (artifact reads, say): an error result is not memoized — the failed
// entry is dropped so a later request retries — while concurrent
// requests still share the one in-flight attempt. The drop is
// identity-checked, so a stale failure never evicts a newer entry that a
// subsequent request is already computing.
func (m *Memo[K, V]) DoRetryable(key K, fn func() (V, error)) (V, error) {
	e := m.entry(key)
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	if e.err != nil {
		m.mu.Lock()
		if m.m[key] == e {
			delete(m.m, key)
		}
		m.mu.Unlock()
	}
	return e.val, e.err
}

// entry returns (creating if needed) the current entry for key, stamping
// its recency and evicting over-limit entries.
func (m *Memo[K, V]) entry(key K) *memoEntry[V] {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.m == nil {
		m.m = map[K]*memoEntry[V]{}
	}
	e := m.m[key]
	if e == nil {
		e = &memoEntry[V]{}
		m.m[key] = e
	}
	m.clock++
	e.lastUse = m.clock
	m.evictLocked(e)
	return e
}

// SetLimit caps the table at n entries (0 restores unbounded growth) and
// immediately evicts down to the cap. Concurrent-safe; the cap bounds
// completed entries — a burst of distinct in-flight computations can
// transiently exceed it, since evicting an entry callers are still
// waiting on would rerun its computation.
func (m *Memo[K, V]) SetLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		n = 0
	}
	m.limit = n
	m.evictLocked(nil)
}

// evictLocked drops least-recently-used completed entries until the table
// is within the limit. keep (the entry just accessed) is never evicted
// even if its computation has not started yet.
func (m *Memo[K, V]) evictLocked(keep *memoEntry[V]) {
	if m.limit <= 0 {
		return
	}
	for len(m.m) > m.limit {
		var victim K
		var victimE *memoEntry[V]
		for k, e := range m.m {
			if e == keep || !e.done.Load() {
				continue
			}
			if victimE == nil || e.lastUse < victimE.lastUse {
				victim, victimE = k, e
			}
		}
		if victimE == nil {
			return // everything else is in flight; let the burst drain
		}
		delete(m.m, victim)
	}
}

// Len reports how many keys are currently cached (computed or in flight).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
