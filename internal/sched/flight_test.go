package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOnce(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v, err := m.Do("k", func() (int, error) {
			calls.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMemoConcurrentDedup(t *testing.T) {
	var m Memo[int, string]
	var calls atomic.Int64
	const keys, per = 8, 16
	var wg sync.WaitGroup
	errs := make(chan error, keys*per)
	for k := 0; k < keys; k++ {
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, err := m.Do(k, func() (string, error) {
					calls.Add(1)
					return fmt.Sprintf("v%d", k), nil
				})
				if err != nil {
					errs <- err
					return
				}
				if want := fmt.Sprintf("v%d", k); v != want {
					errs <- fmt.Errorf("key %d: got %q, want %q", k, v, want)
				}
			}(k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if calls.Load() != keys {
		t.Fatalf("fn ran %d times, want %d", calls.Load(), keys)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := m.Do("k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing fn ran %d times, want 1 (errors are cached)", calls)
	}
}

func TestMemoDoRetryableDropsFailures(t *testing.T) {
	var m Memo[string, int]
	boom := errors.New("boom")
	calls := 0
	fail := func() (int, error) { calls++; return 0, boom }
	if _, err := m.DoRetryable("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("failed entry retained: Len = %d", m.Len())
	}
	v, err := m.DoRetryable("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
	// Success IS memoized.
	if _, err := m.DoRetryable("k", fail); err != nil {
		t.Fatalf("memoized success re-ran fn: %v", err)
	}
	if calls != 2 || m.Len() != 1 {
		t.Fatalf("calls=%d Len=%d, want 2/1", calls, m.Len())
	}
}

func TestMemoDoRetryableConcurrentSharesAttempt(t *testing.T) {
	var m Memo[int, int]
	var calls atomic.Int64
	boom := errors.New("boom")
	const clients = 16
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every client's failure is the shared first attempt; the
			// stale-failure cleanup must be idempotent under concurrency.
			if _, err := m.DoRetryable(1, func() (int, error) {
				calls.Add(1)
				return 0, boom
			}); !errors.Is(err, boom) {
				t.Errorf("err = %v", err)
			}
		}()
	}
	wg.Wait()
	// Concurrent callers shared in-flight attempts: far fewer runs than
	// clients, and at least one; afterwards the key is retryable.
	if n := calls.Load(); n < 1 || n > clients {
		t.Fatalf("fn ran %d times", n)
	}
	if v, err := m.DoRetryable(1, func() (int, error) { return 9, nil }); err != nil || v != 9 {
		t.Fatalf("retry after concurrent failures = %d, %v", v, err)
	}
}

func TestMemoLimitEvictsLRU(t *testing.T) {
	var m Memo[string, int]
	m.SetLimit(2)
	calls := map[string]int{}
	get := func(k string) int {
		v, err := m.Do(k, func() (int, error) { calls[k]++; return len(k), nil })
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	get("a")
	get("b")
	get("a")  // a is now more recent than b
	get("cc") // over limit: b (LRU) is evicted
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	get("a") // still cached
	if calls["a"] != 1 {
		t.Fatalf("a recomputed: %d calls", calls["a"])
	}
	get("b") // evicted: recomputes, evicting cc (LRU after a's touch)
	if calls["b"] != 2 {
		t.Fatalf("b ran %d times, want 2 (evicted then recomputed)", calls["b"])
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestMemoSetLimitShrinksExisting(t *testing.T) {
	var m Memo[int, int]
	for k := 0; k < 10; k++ {
		if _, err := m.Do(k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	m.SetLimit(3)
	if m.Len() != 3 {
		t.Fatalf("Len after shrink = %d, want 3", m.Len())
	}
	// The three most recently used keys (7, 8, 9) survive.
	var calls atomic.Int64
	for k := 7; k < 10; k++ {
		if _, err := m.Do(k, func() (int, error) { calls.Add(1); return 0, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("recent keys were evicted: %d recomputes", calls.Load())
	}
	// 0 restores unbounded growth.
	m.SetLimit(0)
	for k := 100; k < 120; k++ {
		if _, err := m.Do(k, func() (int, error) { return 0, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 23 {
		t.Fatalf("unbounded Len = %d, want 23", m.Len())
	}
}

// TestMemoLimitNeverEvictsInFlight pins the safety property: a capped
// memo under a burst of distinct concurrent computations may transiently
// exceed the cap, but never drops an entry other callers are waiting on.
func TestMemoLimitNeverEvictsInFlight(t *testing.T) {
	var m Memo[int, int]
	m.SetLimit(1)
	const clients = 8
	release := make(chan struct{})
	started := make(chan struct{}, clients)
	var wg sync.WaitGroup
	var calls atomic.Int64
	for k := 0; k < clients; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err := m.Do(k, func() (int, error) {
				calls.Add(1)
				started <- struct{}{}
				<-release // hold every computation in flight simultaneously
				return k * 10, nil
			})
			if err != nil || v != k*10 {
				t.Errorf("key %d: got %d, %v", k, v, err)
			}
		}(k)
	}
	for k := 0; k < clients; k++ {
		<-started
	}
	close(release)
	wg.Wait()
	if calls.Load() != clients {
		t.Fatalf("fn ran %d times, want %d (no in-flight entry dropped)", calls.Load(), clients)
	}
	// Once drained, a fresh access shrinks the table back to the cap.
	if _, err := m.Do(0, func() (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("Len after drain = %d, want 1", m.Len())
	}
}
