package sched

import (
	"sync"
	"testing"
)

func TestRingFIFOAndBounds(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push into full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from drained ring succeeded")
	}
	// Wrap-around: interleave past the physical end of the slot array.
	for round := 0; round < 10; round++ {
		if !r.TryPush(round) {
			t.Fatalf("wrap push %d rejected", round)
		}
		if v, ok := r.TryPop(); !ok || v != round {
			t.Fatalf("wrap pop %d = %d, %v", round, v, ok)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, c := range []struct{ ask, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {1000, 1024}} {
		if got := NewRing[int](c.ask).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestRingConcurrentMPMC hammers the ring from many producers and
// consumers (CI runs this package under -race): every pushed element is
// popped exactly once, nothing is invented, drops only happen on a full
// ring.
func TestRingConcurrentMPMC(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	r := NewRing[int](64)
	var wg sync.WaitGroup
	var dropped, popped sync.Map // value -> count guards via LoadOrStore

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				if !r.TryPush(v) {
					dropped.Store(v, true)
				}
			}
		}(p)
	}
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := r.TryPop()
				if ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("value %d popped twice", v)
					}
					continue
				}
				select {
				case <-done:
					// Producers are finished; drain what's left.
					for {
						v, ok := r.TryPop()
						if !ok {
							return
						}
						if _, dup := popped.LoadOrStore(v, true); dup {
							t.Errorf("value %d popped twice", v)
						}
					}
				default:
				}
			}
		}()
	}
	prodWG.Wait()
	close(done)
	wg.Wait()

	// Every value was either popped exactly once or dropped on a full
	// ring — never both, never neither.
	for p := 0; p < producers; p++ {
		for i := 0; i < perProd; i++ {
			v := p*perProd + i
			_, wasPopped := popped.Load(v)
			_, wasDropped := dropped.Load(v)
			if wasPopped == wasDropped {
				t.Fatalf("value %d: popped=%v dropped=%v", v, wasPopped, wasDropped)
			}
		}
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing[int](1024)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if r.TryPush(1) {
				r.TryPop()
			}
		}
	})
}
