package sched

import "sync/atomic"

// Ring is a bounded, lock-free, multi-producer multi-consumer queue
// (Vyukov's bounded MPMC scheme): each slot carries a sequence number
// that tickets producers and consumers through it without locks, so
// enqueueing on a hot request path costs two atomic operations and never
// blocks behind a slow consumer. A full ring rejects the push instead of
// blocking — callers decide whether to drop (the observation pipeline
// counts drops) or retry.
//
// The engine uses it as the hand-off between /execute request goroutines
// (producers) and the background observation flusher (consumer), but the
// implementation is fully generic and MPMC-safe.
type Ring[T any] struct {
	mask  uint64
	slots []ringSlot[T]
	_     [7]uint64 // keep the hot counters off the slots' cache lines
	head  atomic.Uint64
	_     [7]uint64
	tail  atomic.Uint64
}

type ringSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// NewRing builds a ring with at least the requested capacity, rounded up
// to the next power of two (minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{mask: uint64(n - 1), slots: make([]ringSlot[T], n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Len returns the approximate number of queued elements (exact when no
// push or pop is concurrently in flight).
func (r *Ring[T]) Len() int {
	n := int64(r.tail.Load()) - int64(r.head.Load())
	if n < 0 {
		n = 0
	}
	if n > int64(len(r.slots)) {
		n = int64(len(r.slots))
	}
	return int(n)
}

// TryPush enqueues v, returning false immediately when the ring is full.
func (r *Ring[T]) TryPush(v T) bool {
	for {
		tail := r.tail.Load()
		s := &r.slots[tail&r.mask]
		switch seq := s.seq.Load(); {
		case seq == tail:
			if r.tail.CompareAndSwap(tail, tail+1) {
				s.val = v
				s.seq.Store(tail + 1) // release: publishes val to the popper
				return true
			}
		case seq < tail:
			return false // the slot still holds an unconsumed element
		}
		// A racing producer advanced the tail first; retry on the new one.
	}
}

// TryPop dequeues the oldest element, returning ok=false immediately
// when the ring is empty.
func (r *Ring[T]) TryPop() (v T, ok bool) {
	for {
		head := r.head.Load()
		s := &r.slots[head&r.mask]
		switch seq := s.seq.Load(); {
		case seq == head+1:
			if r.head.CompareAndSwap(head, head+1) {
				v = s.val
				var zero T
				s.val = zero // drop references for the GC
				s.seq.Store(head + uint64(len(r.slots)))
				return v, true
			}
		case seq < head+1:
			return v, false // the slot's element is not published yet
		}
		// A racing consumer advanced the head first; retry on the new one.
	}
}
