package sched

import "testing"

// BenchmarkMemoWarmParallel measures contended reads of completed entries:
// the serving engine's per-request cache-hit pattern.
func BenchmarkMemoWarmParallel(b *testing.B) {
	var m Memo[int, int]
	const keys = 8
	for k := 0; k < keys; k++ {
		if _, err := m.Do(k, func() (int, error) { return k, nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := 0
		for pb.Next() {
			if _, err := m.Do(k%keys, func() (int, error) { return 0, nil }); err != nil {
				b.Fatal(err)
			}
			k++
		}
	})
}
