package sched

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the nearest-rank reference the estimator is judged
// against.
func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

// TestP2TracksKnownDistributions feeds the estimator samples from
// distributions with very different tail shapes and requires the
// estimate to land near the exact sample quantile. P² is an
// approximation; the tolerance is relative to the distribution's spread.
func TestP2TracksKnownDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		gen  func() float64
		tol  float64 // relative to the exact quantile
	}{
		{"uniform", func() float64 { return rng.Float64() * 1000 }, 0.05},
		{"exponential", func() float64 { return rng.ExpFloat64() * 10 }, 0.15},
		{"bimodal", func() float64 {
			if rng.Float64() < 0.9 {
				return 1 + rng.Float64()
			}
			return 100 + rng.Float64()*10
		}, 0.15},
	}
	for _, c := range cases {
		for _, q := range []float64{0.5, 0.95, 0.99} {
			p := NewP2(q)
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := c.gen()
				xs = append(xs, x)
				p.Observe(x)
			}
			got, want := p.Quantile(), exactQuantile(xs, q)
			if math.Abs(got-want) > c.tol*math.Abs(want) {
				t.Errorf("%s q=%v: estimate %.3f, exact %.3f (tol %.0f%%)", c.name, q, got, want, c.tol*100)
			}
		}
	}
}

// TestP2SmallSamples pins the bootstrap behavior: usable (nearest-rank)
// estimates before the five markers exist, zero with no data.
func TestP2SmallSamples(t *testing.T) {
	p := NewP2(0.99)
	if got := p.Quantile(); got != 0 {
		t.Fatalf("empty estimator quantile = %v, want 0", got)
	}
	if p.Count() != 0 {
		t.Fatalf("empty estimator count = %d", p.Count())
	}
	p.Observe(7)
	if got := p.Quantile(); got != 7 {
		t.Fatalf("single-sample quantile = %v, want 7", got)
	}
	for _, x := range []float64{3, 9, 1, 5} {
		p.Observe(x)
	}
	// Five samples {1,3,5,7,9}: the markers are the sorted samples and
	// the middle marker is the median.
	if got := NewP2(0.5); true {
		for _, x := range []float64{7, 3, 9, 1, 5} {
			got.Observe(x)
		}
		if q := got.Quantile(); q != 5 {
			t.Fatalf("median of {1,3,5,7,9} = %v, want 5", q)
		}
	}
}

// TestP2ShiftingLoad checks the estimate follows a regime change — the
// property admission control actually relies on: when latencies jump,
// the p99 estimate must climb toward the new tail.
func TestP2ShiftingLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewP2(0.99)
	for i := 0; i < 5000; i++ {
		p.Observe(1 + rng.Float64()) // ~1-2ms regime
	}
	low := p.Quantile()
	if low > 3 {
		t.Fatalf("baseline p99 = %v, want ~2", low)
	}
	for i := 0; i < 50000; i++ {
		p.Observe(50 + rng.Float64()*10) // overloaded regime
	}
	if got := p.Quantile(); got < 40 {
		t.Errorf("post-shift p99 = %v, want it to climb toward 50-60", got)
	}
}
