package sched

// P2 is the P² (P-squared) single-quantile estimator of Jain & Chlamtac
// (CACM 1985): a constant-space running estimate of an arbitrary
// quantile, maintained with five markers whose heights are adjusted by
// piecewise-parabolic interpolation as observations stream in. The
// serving layer uses it to track a moving p99 latency per shard without
// retaining a latency window — admission control compares the estimate
// against its target on every accept decision, so the estimator must be
// O(1) per observation and allocation-free after construction.
//
// Not safe for concurrent use; callers serialize Observe (admission
// control samples under the shard's estimator lock and republishes the
// quantile through an atomic).
type P2 struct {
	q float64 // the tracked quantile, e.g. 0.99

	// h are the marker heights, pos their integer positions (1-based as
	// in the paper), want the desired positions, and step the desired-
	// position increments per observation.
	h    [5]float64
	pos  [5]float64
	want [5]float64
	step [5]float64

	n int // observations seen
}

// NewP2 returns an estimator for the q-quantile, 0 < q < 1.
func NewP2(q float64) *P2 {
	p := &P2{q: q}
	p.step = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Count reports how many observations the estimator has absorbed.
func (p *P2) Count() int { return p.n }

// Observe absorbs one sample.
func (p *P2) Observe(x float64) {
	if p.n < 5 {
		// Bootstrap: collect the first five samples sorted.
		i := p.n
		for i > 0 && p.h[i-1] > x {
			p.h[i] = p.h[i-1]
			i--
		}
		p.h[i] = x
		p.n++
		if p.n == 5 {
			p.pos = [5]float64{1, 2, 3, 4, 5}
			p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}
	p.n++

	// Find the cell k with h[k] <= x < h[k+1], clamping outliers into
	// the extreme markers.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.step[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.h[i-1] < h && h < p.h[i+1] {
				p.h[i] = h
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height prediction for moving
// marker i by s (±1).
func (p *P2) parabolic(i int, s float64) float64 {
	num1 := p.pos[i] - p.pos[i-1] + s
	num2 := p.pos[i+1] - p.pos[i] - s
	return p.h[i] + s/(p.pos[i+1]-p.pos[i-1])*
		(num1*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			num2*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height prediction when the parabolic one would
// leave the markers unordered.
func (p *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.h[i] + s*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Quantile returns the current estimate. Before five observations it
// falls back to the nearest-rank quantile of the samples seen so far
// (zero with no samples at all), so early readings are usable rather
// than garbage.
func (p *P2) Quantile() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		i := int(p.q * float64(p.n-1))
		return p.h[i]
	}
	return p.h[2]
}
