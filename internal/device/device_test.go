package device

import "testing"

func TestPlatformsValid(t *testing.T) {
	for _, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.NumDevices() != 3 {
			t.Errorf("%s has %d devices, want 3 (1 CPU + 2 GPUs)", p.Name, p.NumDevices())
		}
		if got := p.GPUIndices(); len(got) != 2 {
			t.Errorf("%s has %d GPUs, want 2", p.Name, len(got))
		}
		if !p.Devices[CPUIndex].IsHost() {
			t.Errorf("%s CPU device should be host memory", p.Name)
		}
		for _, gi := range p.GPUIndices() {
			if p.Devices[gi].IsHost() {
				t.Errorf("%s GPU %d should not be host memory", p.Name, gi)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"mc1", "mc2"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("mc3"); err == nil {
		t.Error("ByName(mc3) should fail")
	}
}

func TestPlatformAsymmetry(t *testing.T) {
	mc1, mc2 := MC1(), MC2()
	// mc2's GPUs must be far stronger relative to its CPU than mc1's,
	// since the paper observes opposite default winners per platform.
	ratio1 := mc1.Devices[1].FloatOpsPerSec / mc1.Devices[CPUIndex].FloatOpsPerSec
	ratio2 := mc2.Devices[1].FloatOpsPerSec / mc2.Devices[CPUIndex].FloatOpsPerSec
	if ratio2 <= ratio1 {
		t.Errorf("GPU/CPU float ratio: mc1 %.1f, mc2 %.1f; want mc2 > mc1", ratio1, ratio2)
	}
	// The VLIW GPU must have the branch handicap; Fermi must not.
	if mc1.Devices[1].VLIWBranchFactor <= 0 {
		t.Error("mc1 GPU should carry a VLIW branch penalty")
	}
	if mc2.Devices[1].VLIWBranchFactor != 0 {
		t.Error("mc2 GPU should not carry a VLIW branch penalty")
	}
	if mc1.Devices[1].BranchPerSec >= mc2.Devices[1].BranchPerSec {
		t.Error("mc1 GPU branches should be slower than mc2 GPU branches")
	}
}

func TestValidateCatchesBrokenPlatforms(t *testing.T) {
	p := MC1()
	p.Devices = nil
	if err := p.Validate(); err == nil {
		t.Error("empty platform validated")
	}
	p2 := MC1()
	p2.Devices[0], p2.Devices[1] = p2.Devices[1], p2.Devices[0]
	if err := p2.Validate(); err == nil {
		t.Error("GPU-first platform validated")
	}
	p3 := MC1()
	p3.Devices[1].LinkBandwidth = 0
	if err := p3.Validate(); err == nil {
		t.Error("linkless GPU validated")
	}
	p4 := MC1()
	p4.Devices[0].FloatOpsPerSec = 0
	if err := p4.Validate(); err == nil {
		t.Error("zero-throughput device validated")
	}
}

func TestClassString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Error("Class.String broken")
	}
}
