// Package device models the OpenCL devices of the paper's two evaluation
// platforms. Because this reproduction has no physical GPUs, each device is
// an analytic performance profile — sustained throughput per operation
// class, memory bandwidth with access-pattern efficiency, interconnect
// cost, launch overhead, and SIMT/VLIW penalty knobs — that the timing
// simulator (internal/sim) prices dynamic kernel profiles against.
//
// The profiles are calibrated to reproduce the first-order behaviour the
// paper reports, not absolute hardware numbers:
//
//   - mc1 (2x AMD Opteron + 2x ATI Radeon HD 5870): the VLIW GPUs need
//     per-device tuning that the benchmark codes do not have, and pay a
//     high branch-miss penalty, so the CPU-only default usually wins.
//   - mc2 (2x Intel Xeon + 2x NVIDIA GTX 480): the scalar Fermi GPUs run
//     untuned code well, so the GPU-only default usually wins.
package device

import "fmt"

// Class distinguishes CPU from GPU devices.
type Class int

// Device classes.
const (
	CPU Class = iota
	GPU
)

// String names the class.
func (c Class) String() string {
	if c == CPU {
		return "CPU"
	}
	return "GPU"
}

// Profile is the analytic performance model of one OpenCL device.
// Throughputs are sustained aggregate rates for untuned scalar OpenCL C
// code (not marketing peaks).
type Profile struct {
	Name  string
	Class Class

	// Compute throughput, operations per second.
	IntOpsPerSec   float64
	FloatOpsPerSec float64
	TransOpsPerSec float64 // transcendental builtins
	BranchPerSec   float64 // branch decisions
	LocalOpsPerSec float64 // local/shared memory accesses

	// Global memory bandwidth in bytes/s, and the efficiency factors the
	// simulator applies to it per access pattern (1 = full bandwidth).
	MemBandwidth float64
	EffCoalesced float64
	EffStrided   float64
	EffIndirect  float64
	EffUniform   float64

	// Interconnect to host memory. Zero LinkBandwidth means the device
	// shares host memory (CPU): no transfers are needed.
	LinkBandwidth  float64 // bytes/s
	LinkLatencySec float64 // per transfer direction

	// Fixed cost per kernel launch on this device.
	LaunchOverheadSec float64

	// SaturationItems is the number of concurrent work items needed to
	// reach full throughput; smaller chunks run at proportionally lower
	// throughput (underutilized CUs / idle cores).
	SaturationItems float64

	// DivergenceFactor in [0,1] scales how strongly per-item load
	// imbalance inflates execution time (SIMT lockstep); 0 for CPUs with
	// dynamic scheduling.
	DivergenceFactor float64

	// VLIWBranchFactor adds extra per-branch cost proportional to branch
	// density, modelling the HD 5870's wide-issue stalls on control flow.
	VLIWBranchFactor float64
}

// IsHost reports whether the device shares host memory (no transfers).
func (p *Profile) IsHost() bool { return p.LinkBandwidth == 0 }

// Platform is one heterogeneous machine: a set of OpenCL devices.
// Devices[0] is always the CPU device, matching the paper's setup where
// the dual-socket CPUs appear as a single OpenCL device and the two GPUs
// as one device each.
type Platform struct {
	Name    string
	Devices []*Profile
	// LinkShared marks platforms where all discrete devices share one
	// host interconnect; concurrent transfers divide the bandwidth.
	LinkShared bool
}

// CPUIndex is the index of the CPU device in Platform.Devices.
const CPUIndex = 0

// NumDevices returns the device count.
func (p *Platform) NumDevices() int { return len(p.Devices) }

// GPUIndices returns the indices of all GPU devices.
func (p *Platform) GPUIndices() []int {
	var out []int
	for i, d := range p.Devices {
		if d.Class == GPU {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural invariants of the platform definition.
func (p *Platform) Validate() error {
	if len(p.Devices) == 0 {
		return fmt.Errorf("device: platform %q has no devices", p.Name)
	}
	if p.Devices[CPUIndex].Class != CPU {
		return fmt.Errorf("device: platform %q device 0 must be the CPU", p.Name)
	}
	for _, d := range p.Devices {
		if d.FloatOpsPerSec <= 0 || d.IntOpsPerSec <= 0 || d.MemBandwidth <= 0 {
			return fmt.Errorf("device: %q has non-positive throughput", d.Name)
		}
		if d.Class == GPU && d.LinkBandwidth <= 0 {
			return fmt.Errorf("device: GPU %q must have a host link", d.Name)
		}
		if d.EffCoalesced <= 0 || d.EffCoalesced > 1 {
			return fmt.Errorf("device: %q EffCoalesced out of (0,1]", d.Name)
		}
	}
	return nil
}

// MC1 builds the first evaluation platform: two AMD Opteron 6168-class
// CPUs (one OpenCL device) and two ATI Radeon HD 5870 GPUs. The VLIW GPUs
// get low sustained throughput on untuned scalar code, expensive branches
// and strong divergence penalties — making the CPU the usually-better
// default, as the paper observes.
func MC1() *Platform {
	cpu := &Profile{
		Name: "2x AMD Opteron 6168", Class: CPU,
		IntOpsPerSec:   45e9,
		FloatOpsPerSec: 35e9,
		TransOpsPerSec: 2.5e9,
		BranchPerSec:   30e9,
		LocalOpsPerSec: 90e9,
		MemBandwidth:   21e9,
		EffCoalesced:   1.0, EffStrided: 0.55, EffIndirect: 0.35, EffUniform: 1.0,
		LaunchOverheadSec: 6e-6,
		SaturationItems:   96,
		DivergenceFactor:  0,
	}
	mkGPU := func(i int) *Profile {
		return &Profile{
			Name: fmt.Sprintf("ATI Radeon HD 5870 #%d", i), Class: GPU,
			IntOpsPerSec:   110e9,
			FloatOpsPerSec: 170e9, // ~2.7 TF peak, ~1/16 sustained on untuned scalar code
			TransOpsPerSec: 35e9,
			BranchPerSec:   2.5e9, // high branch-miss penalty (VLIW)
			LocalOpsPerSec: 220e9,
			MemBandwidth:   110e9,
			EffCoalesced:   1.0, EffStrided: 0.18, EffIndirect: 0.10, EffUniform: 1.0,
			LinkBandwidth:     5.2e9,
			LinkLatencySec:    12e-6,
			LaunchOverheadSec: 28e-6,
			SaturationItems:   4000,
			DivergenceFactor:  0.85,
			VLIWBranchFactor:  3.0,
		}
	}
	return &Platform{
		Name:       "mc1",
		Devices:    []*Profile{cpu, mkGPU(1), mkGPU(2)},
		LinkShared: true,
	}
}

// MC2 builds the second evaluation platform: two Intel Xeon X5650-class
// CPUs (one OpenCL device) and two NVIDIA GeForce GTX 480 GPUs. The
// scalar Fermi architecture sustains a much larger fraction of peak on
// untuned code, making the GPU the usually-better default.
func MC2() *Platform {
	cpu := &Profile{
		Name: "2x Intel Xeon X5650", Class: CPU,
		IntOpsPerSec:   55e9,
		FloatOpsPerSec: 48e9,
		TransOpsPerSec: 4e9,
		BranchPerSec:   40e9,
		LocalOpsPerSec: 110e9,
		MemBandwidth:   30e9,
		EffCoalesced:   1.0, EffStrided: 0.6, EffIndirect: 0.4, EffUniform: 1.0,
		LaunchOverheadSec: 5e-6,
		SaturationItems:   48,
		DivergenceFactor:  0,
	}
	mkGPU := func(i int) *Profile {
		return &Profile{
			Name: fmt.Sprintf("NVIDIA GeForce GTX 480 #%d", i), Class: GPU,
			IntOpsPerSec:   380e9,
			FloatOpsPerSec: 520e9, // 1.35 TF peak, good sustained fraction on scalar code
			TransOpsPerSec: 140e9,
			BranchPerSec:   20e9,
			LocalOpsPerSec: 600e9,
			MemBandwidth:   135e9,
			EffCoalesced:   1.0, EffStrided: 0.25, EffIndirect: 0.15, EffUniform: 1.0,
			LinkBandwidth:     5.8e9,
			LinkLatencySec:    10e-6,
			LaunchOverheadSec: 14e-6,
			SaturationItems:   3000,
			DivergenceFactor:  0.5,
			VLIWBranchFactor:  0,
		}
	}
	return &Platform{
		Name:       "mc2",
		Devices:    []*Profile{cpu, mkGPU(1), mkGPU(2)},
		LinkShared: true,
	}
}

// Platforms returns the two evaluation platforms of the paper.
func Platforms() []*Platform { return []*Platform{MC1(), MC2()} }

// ByName returns the platform named name (mc1 or mc2).
func ByName(name string) (*Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("device: unknown platform %q (want mc1 or mc2)", name)
}
