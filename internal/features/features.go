// Package features builds the two feature classes of the paper's
// prediction model (Section 2 / Section 4):
//
//   - static program features, extracted from the INSPIRE representation
//     at compile time (operation mix, control structure, memory access
//     patterns), and
//   - problem size dependent runtime features, collected during program
//     execution (work-item counts, dynamic operation totals, transfer
//     volumes, arithmetic intensity, load imbalance).
//
// Together they form the input vector from which the machine-learning
// model predicts the best task partitioning for a program at a problem
// size.
package features

import (
	"fmt"
	"math"

	"repro/internal/backend"
	"repro/internal/exec"
	"repro/internal/inspire"
)

// Vector is a named feature vector.
type Vector struct {
	Names  []string
	Values []float64
}

// Append concatenates two vectors.
func (v Vector) Append(o Vector) Vector {
	return Vector{
		Names:  append(append([]string{}, v.Names...), o.Names...),
		Values: append(append([]float64{}, v.Values...), o.Values...),
	}
}

// Get returns the value of the named feature.
func (v Vector) Get(name string) (float64, error) {
	for i, n := range v.Names {
		if n == name {
			return v.Values[i], nil
		}
	}
	return 0, fmt.Errorf("features: no feature %q", name)
}

// log2p1 is log2(1+x), the compression used for count-valued features.
func log2p1(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Log2(1 + x)
}

// StaticNames lists the static feature names in vector order.
var StaticNames = []string{
	"s_log_ops",
	"s_frac_float",
	"s_frac_int",
	"s_frac_trans",
	"s_frac_mem",
	"s_frac_branch",
	"s_loop_depth",
	"s_num_loops",
	"s_has_barrier",
	"s_uses_local",
	"s_mix_coalesced",
	"s_mix_strided",
	"s_mix_indirect",
	"s_mix_uniform",
	"s_loop_weight",
}

// Static builds the static program feature vector from IR analysis counts.
func Static(st *inspire.StaticCounts) Vector {
	totalOps := float64(st.IntOps + st.FloatOps + st.TranscendentalOps + st.OtherBuiltins +
		st.GlobalLoads + st.GlobalStores + st.LocalLoads + st.LocalStores)
	frac := func(n int) float64 {
		if totalOps == 0 {
			return 0
		}
		return float64(n) / totalOps
	}
	mix := backend.MixOf(st)
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	// Loop weight compares loop-weighted op counts with raw ones: the
	// bigger the gap, the more of the kernel's work lives inside loops.
	rawCompute := float64(st.IntOps + st.FloatOps)
	weighted := st.WeightedIntOps + st.WeightedFloatOps
	loopWeight := 0.0
	if rawCompute > 0 {
		loopWeight = log2p1(weighted) - log2p1(rawCompute)
	}
	vals := []float64{
		log2p1(totalOps),
		frac(st.FloatOps),
		frac(st.IntOps),
		frac(st.TranscendentalOps),
		frac(st.GlobalLoads + st.GlobalStores),
		frac(st.Branches),
		float64(st.MaxLoopDepth),
		float64(st.Loops),
		b2f(st.Barriers > 0),
		b2f(st.LocalLoads+st.LocalStores > 0),
		mix.Coalesced,
		mix.Strided,
		mix.Indirect,
		mix.Uniform,
		loopWeight,
	}
	return Vector{Names: StaticNames, Values: vals}
}

// RuntimeNames lists the runtime (problem size dependent) feature names.
var RuntimeNames = []string{
	"r_log_items",
	"r_log_ops",
	"r_log_ops_per_item",
	"r_log_bytes_in",
	"r_log_bytes_out",
	"r_log_intensity",
	"r_imbalance",
	"r_log_launches",
	"r_frac_float_dyn",
	"r_frac_mem_dyn",
}

// RuntimeInput bundles what the runtime feature extractor needs: one
// profiled execution plus the launch context that determines transfer
// volumes.
type RuntimeInput struct {
	Profile    *exec.Profile
	Plan       *backend.Plan
	Args       []exec.Arg
	Iterations int
}

// Runtime builds the problem-size dependent feature vector.
func Runtime(in RuntimeInput) Vector {
	tot := in.Profile.Total()
	items := float64(tot.Items)
	totalOps := float64(tot.IntOps + tot.FloatOps + 4*tot.TransOps + tot.OtherBuiltins +
		tot.GlobalLoads + tot.GlobalStores + tot.LocalOps)
	iters := in.Iterations
	if iters < 1 {
		iters = 1
	}
	totalOps *= float64(iters)

	bytesIn, bytesOut := in.Plan.TransferBytes(in.Args, in.Profile.Global0, 0, in.Profile.Global0)
	intensity := totalOps / float64(bytesIn+bytesOut+1)

	imbalance := 1.0
	if tot.Items > 0 {
		mean := (totalOps / float64(iters)) / items
		if mean > 0 && tot.MaxItemOps > 0 {
			imbalance = float64(tot.MaxItemOps) / mean
		}
	}
	fracFloat, fracMem := 0.0, 0.0
	if totalOps > 0 {
		fracFloat = float64(tot.FloatOps+4*tot.TransOps) * float64(iters) / totalOps
		fracMem = float64(tot.GlobalLoads+tot.GlobalStores) * float64(iters) / totalOps
	}
	vals := []float64{
		log2p1(items),
		log2p1(totalOps),
		log2p1(totalOps / math.Max(items, 1)),
		log2p1(float64(bytesIn)),
		log2p1(float64(bytesOut)),
		log2p1(intensity),
		math.Min(imbalance, 64),
		log2p1(float64(iters)),
		fracFloat,
		fracMem,
	}
	return Vector{Names: RuntimeNames, Values: vals}
}

// Combined builds the full feature vector (static ++ runtime) used by the
// partitioning model.
func Combined(st *inspire.StaticCounts, in RuntimeInput) Vector {
	return Static(st).Append(Runtime(in))
}

// NumFeatures is the length of the combined vector.
func NumFeatures() int { return len(StaticNames) + len(RuntimeNames) }
