package features

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/exec"
	"repro/internal/inspire"
)

const vecaddSrc = `
kernel void vecadd(global const float* a, global const float* b,
                   global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) { c[i] = a[i] + b[i]; }
}
`

const heavySrc = `
kernel void heavy(global const float* in, global float* out, int iters) {
    int i = get_global_id(0);
    float x = in[i];
    for (int k = 0; k < iters; k++) {
        x = sqrt(x * x + 0.5) + exp(-x);
    }
    out[i] = x;
}
`

func setup(t *testing.T, src, kernel string, n, iters int) (*inspire.StaticCounts, RuntimeInput) {
	t.Helper()
	u, err := inspire.LowerSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	k := u.Kernel(kernel)
	comp, err := exec.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	in, out := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
	for i := range in.F {
		in.F[i] = 0.5
	}
	var args []exec.Arg
	if kernel == "vecadd" {
		args = []exec.Arg{exec.BufArg(in), exec.BufArg(out.Clone()), exec.BufArg(out), exec.IntArg(n)}
	} else {
		args = []exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(iters)}
	}
	prof, err := comp.Run(args, exec.ND1(n), exec.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inspire.Analyze(k), RuntimeInput{Profile: prof, Plan: plan, Args: args, Iterations: 1}
}

func TestVectorShapes(t *testing.T) {
	st, rin := setup(t, vecaddSrc, "vecadd", 1024, 0)
	sv := Static(st)
	if len(sv.Names) != len(sv.Values) || len(sv.Names) != len(StaticNames) {
		t.Fatalf("static vector shape %d/%d", len(sv.Names), len(sv.Values))
	}
	rv := Runtime(rin)
	if len(rv.Names) != len(rv.Values) || len(rv.Names) != len(RuntimeNames) {
		t.Fatalf("runtime vector shape %d/%d", len(rv.Names), len(rv.Values))
	}
	cv := Combined(st, rin)
	if len(cv.Values) != NumFeatures() {
		t.Fatalf("combined length %d, want %d", len(cv.Values), NumFeatures())
	}
}

func TestStaticDistinguishesKernels(t *testing.T) {
	stV, _ := setup(t, vecaddSrc, "vecadd", 256, 0)
	stH, _ := setup(t, heavySrc, "heavy", 256, 10)
	v, h := Static(stV), Static(stH)
	vTrans, _ := v.Get("s_frac_trans")
	hTrans, _ := h.Get("s_frac_trans")
	if hTrans <= vTrans {
		t.Errorf("transcendental fraction: heavy %g should exceed vecadd %g", hTrans, vTrans)
	}
	vLoops, _ := v.Get("s_num_loops")
	hLoops, _ := h.Get("s_num_loops")
	if vLoops != 0 || hLoops != 1 {
		t.Errorf("loops: vecadd %g heavy %g, want 0/1", vLoops, hLoops)
	}
	vMix, _ := v.Get("s_mix_coalesced")
	if vMix < 0.99 {
		t.Errorf("vecadd coalesced mix %g, want ~1", vMix)
	}
}

func TestRuntimeGrowsWithProblemSize(t *testing.T) {
	_, small := setup(t, heavySrc, "heavy", 256, 20)
	_, large := setup(t, heavySrc, "heavy", 4096, 20)
	sv, lv := Runtime(small), Runtime(large)
	for _, name := range []string{"r_log_items", "r_log_ops", "r_log_bytes_in"} {
		s, _ := sv.Get(name)
		l, _ := lv.Get(name)
		if l <= s {
			t.Errorf("%s did not grow with size: %g -> %g", name, s, l)
		}
	}
	// Ops per item should be roughly size-independent for this kernel.
	s, _ := sv.Get("r_log_ops_per_item")
	l, _ := lv.Get("r_log_ops_per_item")
	if diff := l - s; diff > 0.5 || diff < -0.5 {
		t.Errorf("r_log_ops_per_item drifted: %g -> %g", s, l)
	}
}

func TestRuntimeIterationsScaleOps(t *testing.T) {
	_, rin := setup(t, vecaddSrc, "vecadd", 1024, 0)
	one := Runtime(rin)
	rin.Iterations = 16
	many := Runtime(rin)
	o, _ := one.Get("r_log_ops")
	m, _ := many.Get("r_log_ops")
	if m <= o {
		t.Errorf("iterations did not scale dynamic ops: %g vs %g", m, o)
	}
	lo, _ := many.Get("r_log_launches")
	if lo != 4 { // log2(1+16) ~ 4.09 ... actually log2(17)=4.09
		t.Logf("r_log_launches = %g", lo)
	}
}

func TestImbalanceFeature(t *testing.T) {
	src := `kernel void tri(global float* o, int n) {
		int i = get_global_id(0);
		float s = 0.0;
		for (int j = 0; j < i; j++) { s += 1.0; }
		o[i] = s;
	}`
	_, rin := setup2(t, src, "tri", 512)
	v := Runtime(rin)
	imb, _ := v.Get("r_imbalance")
	if imb < 1.5 {
		t.Errorf("triangular workload imbalance = %g, want > 1.5", imb)
	}
	_, rinU := setup(t, vecaddSrc, "vecadd", 512, 0)
	u := Runtime(rinU)
	imbU, _ := u.Get("r_imbalance")
	if imbU > 1.3 {
		t.Errorf("uniform workload imbalance = %g, want ~1", imbU)
	}
}

// setup2 is setup for single-output kernels of the form k(out, n).
func setup2(t *testing.T, src, kernel string, n int) (*inspire.StaticCounts, RuntimeInput) {
	t.Helper()
	u, err := inspire.LowerSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	k := u.Kernel(kernel)
	comp, err := exec.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := backend.Analyze(k)
	if err != nil {
		t.Fatal(err)
	}
	o := exec.NewFloatBuffer(n)
	args := []exec.Arg{exec.BufArg(o), exec.IntArg(n)}
	prof, err := comp.Run(args, exec.ND1(n), exec.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inspire.Analyze(k), RuntimeInput{Profile: prof, Plan: plan, Args: args, Iterations: 1}
}

func TestVectorHelpers(t *testing.T) {
	v := Vector{Names: []string{"a", "b"}, Values: []float64{1, 2}}
	w := Vector{Names: []string{"c"}, Values: []float64{3}}
	c := v.Append(w)
	if len(c.Names) != 3 || c.Values[2] != 3 {
		t.Errorf("Append = %+v", c)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Error("Get(missing) should fail")
	}
	if got, _ := c.Get("b"); got != 2 {
		t.Errorf("Get(b) = %g", got)
	}
	// Append must not mutate the receiver.
	if len(v.Names) != 2 {
		t.Error("Append mutated receiver")
	}
}
