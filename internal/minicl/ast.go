package minicl

// Node is the interface implemented by all AST nodes.
type Node interface {
	// NodePos returns the source position of the node.
	NodePos() Pos
}

// Program is a parsed MiniCL translation unit: one or more kernel or helper
// functions.
type Program struct {
	Funcs []*FuncDecl
}

// Kernel returns the kernel function named name, or nil.
func (p *Program) Kernel(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.IsKernel && f.Name == name {
			return f
		}
	}
	return nil
}

// Kernels returns all kernel-qualified functions in declaration order.
func (p *Program) Kernels() []*FuncDecl {
	var ks []*FuncDecl
	for _, f := range p.Funcs {
		if f.IsKernel {
			ks = append(ks, f)
		}
	}
	return ks
}

// Param is a function parameter declaration.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// FuncDecl is a function definition; kernels have IsKernel set.
type FuncDecl struct {
	Name     string
	IsKernel bool
	Params   []*Param
	Ret      Type
	Body     *BlockStmt
	Pos      Pos
}

// NodePos implements Node.
func (f *FuncDecl) NodePos() Pos { return f.Pos }

// --- Statements ---

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt declares a scalar local variable with an optional initializer.
type DeclStmt struct {
	Name string
	Type Type
	Init Expr // may be nil
	Pos  Pos
}

// AssignStmt stores to a variable or buffer element. Op is Assign or one of
// the compound-assignment kinds (PlusAssign etc.).
type AssignStmt struct {
	Target Expr // *Ident or *Index
	Op     Kind
	Value  Expr
	Pos    Pos
}

// IncDecStmt is i++ / i-- used as a statement.
type IncDecStmt struct {
	Target Expr
	Dec    bool
	Pos    Pos
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt or nil
	Pos  Pos
}

// ForStmt is the canonical three-clause counted loop.
type ForStmt struct {
	Init Stmt // *DeclStmt or *AssignStmt, may be nil
	Cond Expr // may be nil (treated as true)
	Post Stmt // *AssignStmt or *IncDecStmt, may be nil
	Body *BlockStmt
	Pos  Pos
}

// WhileStmt is a condition-controlled loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ReturnStmt exits the function; kernels return void so Value is usually nil.
type ReturnStmt struct {
	Value Expr // may be nil
	Pos   Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects (builtin calls such
// as barrier()).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// NodePos implementations.
func (s *BlockStmt) NodePos() Pos    { return s.Pos }
func (s *DeclStmt) NodePos() Pos     { return s.Pos }
func (s *AssignStmt) NodePos() Pos   { return s.Pos }
func (s *IncDecStmt) NodePos() Pos   { return s.Pos }
func (s *IfStmt) NodePos() Pos       { return s.Pos }
func (s *ForStmt) NodePos() Pos      { return s.Pos }
func (s *WhileStmt) NodePos() Pos    { return s.Pos }
func (s *ReturnStmt) NodePos() Pos   { return s.Pos }
func (s *BreakStmt) NodePos() Pos    { return s.Pos }
func (s *ContinueStmt) NodePos() Pos { return s.Pos }
func (s *ExprStmt) NodePos() Pos     { return s.Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// --- Expressions ---

// Expr is implemented by all expression nodes. After type checking, Type()
// reports the expression's MiniCL type.
type Expr interface {
	Node
	exprNode()
	// Type returns the checked type (zero Type before sema).
	Type() Type
}

// typed carries the sema-assigned type; embedded in all expression nodes.
type typed struct{ typ Type }

// Type returns the checked type of the expression.
func (t *typed) Type() Type { return t.typ }

func (t *typed) setType(ty Type) { t.typ = ty }

// Ident is a reference to a parameter or local variable.
type Ident struct {
	typed
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	typed
	Value int64
	Pos   Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typed
	Value float64
	Pos   Pos
}

// BoolLit is true or false.
type BoolLit struct {
	typed
	Value bool
	Pos   Pos
}

// BinaryExpr is a binary operation; Op is one of the operator token kinds.
type BinaryExpr struct {
	typed
	Op   Kind
	L, R Expr
	Pos  Pos
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	typed
	Op  Kind
	X   Expr
	Pos Pos
}

// CondExpr is the ternary c ? a : b.
type CondExpr struct {
	typed
	Cond, Then, Else Expr
	Pos              Pos
}

// Index is a buffer element access buf[i].
type Index struct {
	typed
	Base  Expr // pointer-typed
	Index Expr // integer-typed
	Pos   Pos
}

// CallExpr is a call to a builtin or helper function.
type CallExpr struct {
	typed
	Name string
	Args []Expr
	Pos  Pos
}

// CastExpr is an explicit conversion (float)x or (int)x.
type CastExpr struct {
	typed
	To  Type
	X   Expr
	Pos Pos
}

// NodePos implementations.
func (e *Ident) NodePos() Pos      { return e.Pos }
func (e *IntLit) NodePos() Pos     { return e.Pos }
func (e *FloatLit) NodePos() Pos   { return e.Pos }
func (e *BoolLit) NodePos() Pos    { return e.Pos }
func (e *BinaryExpr) NodePos() Pos { return e.Pos }
func (e *UnaryExpr) NodePos() Pos  { return e.Pos }
func (e *CondExpr) NodePos() Pos   { return e.Pos }
func (e *Index) NodePos() Pos      { return e.Pos }
func (e *CallExpr) NodePos() Pos   { return e.Pos }
func (e *CastExpr) NodePos() Pos   { return e.Pos }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CondExpr) exprNode()   {}
func (*Index) exprNode()      {}
func (*CallExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}
