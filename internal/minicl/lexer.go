package minicl

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns MiniCL source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		begin := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[begin:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: start}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.lexNumber(start)
	}
	l.advance()
	two := func(next byte, k2, k1 Kind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: k2, Text: string(c) + string(next), Pos: start}
		}
		return Token{Kind: k1, Text: string(c), Pos: start}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Text: "(", Pos: start}, nil
	case ')':
		return Token{Kind: RParen, Text: ")", Pos: start}, nil
	case '{':
		return Token{Kind: LBrace, Text: "{", Pos: start}, nil
	case '}':
		return Token{Kind: RBrace, Text: "}", Pos: start}, nil
	case '[':
		return Token{Kind: LBracket, Text: "[", Pos: start}, nil
	case ']':
		return Token{Kind: RBracket, Text: "]", Pos: start}, nil
	case ',':
		return Token{Kind: Comma, Text: ",", Pos: start}, nil
	case ';':
		return Token{Kind: Semicolon, Text: ";", Pos: start}, nil
	case '?':
		return Token{Kind: Question, Text: "?", Pos: start}, nil
	case ':':
		return Token{Kind: Colon, Text: ":", Pos: start}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: PlusPlus, Text: "++", Pos: start}, nil
		}
		return two('=', PlusAssign, Plus), nil
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: MinusMinus, Text: "--", Pos: start}, nil
		}
		return two('=', MinusAssign, Minus), nil
	case '*':
		return two('=', StarAssign, Star), nil
	case '/':
		return two('=', SlashAssign, Slash), nil
	case '%':
		return Token{Kind: Percent, Text: "%", Pos: start}, nil
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: Shl, Text: "<<", Pos: start}, nil
		}
		return two('=', Le, Lt), nil
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: Shr, Text: ">>", Pos: start}, nil
		}
		return two('=', Ge, Gt), nil
	case '=':
		return two('=', EqEq, Assign), nil
	case '!':
		return two('=', NotEq, Not), nil
	case '&':
		return two('&', AndAnd, Amp), nil
	case '|':
		return two('|', OrOr, Pipe), nil
	case '^':
		return Token{Kind: Caret, Text: "^", Pos: start}, nil
	}
	return Token{}, errf(start, "unexpected character %q", string(c))
}

func (l *Lexer) lexNumber(start Pos) (Token, error) {
	begin := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: INTLIT, Text: l.src[begin:l.off], Pos: start}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			// Not an exponent after all (e.g. identifier suffix); back up.
			l.off = save
		} else {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	text := l.src[begin:l.off]
	if l.peek() == 'f' || l.peek() == 'F' {
		l.advance()
		isFloat = true
	}
	if isFloat {
		return Token{Kind: FLOATLIT, Text: strings.TrimSuffix(text, "f"), Pos: start}, nil
	}
	return Token{Kind: INTLIT, Text: text, Pos: start}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// LexAll tokenizes the whole input, returning all tokens including the
// trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
