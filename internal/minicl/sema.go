package minicl

import "fmt"

// BuiltinInfo describes a MiniCL builtin function signature.
type BuiltinInfo struct {
	Name string
	// Args lists parameter types; for Poly builtins the types are patterns
	// resolved against the first numeric argument.
	Args []Type
	Ret  Type
	// Poly marks numeric-polymorphic builtins (min/max/clamp/abs): all
	// numeric arguments and the result take the type of the first argument.
	Poly bool
	// WorkItem marks NDRange-query builtins (get_global_id etc.).
	WorkItem bool
	// Barrier marks the work-group barrier.
	Barrier bool
	// Float marks floating-point math builtins (cost class "transcendental"
	// or heavy float op in the cost model).
	Float bool
}

// Builtins is the table of functions callable from MiniCL kernels.
var Builtins = map[string]*BuiltinInfo{
	"get_global_id":   {Name: "get_global_id", Args: []Type{TypeInt}, Ret: TypeInt, WorkItem: true},
	"get_local_id":    {Name: "get_local_id", Args: []Type{TypeInt}, Ret: TypeInt, WorkItem: true},
	"get_group_id":    {Name: "get_group_id", Args: []Type{TypeInt}, Ret: TypeInt, WorkItem: true},
	"get_global_size": {Name: "get_global_size", Args: []Type{TypeInt}, Ret: TypeInt, WorkItem: true},
	"get_local_size":  {Name: "get_local_size", Args: []Type{TypeInt}, Ret: TypeInt, WorkItem: true},
	"get_num_groups":  {Name: "get_num_groups", Args: []Type{TypeInt}, Ret: TypeInt, WorkItem: true},
	"barrier":         {Name: "barrier", Ret: TypeVoid, Barrier: true},

	"sqrt":  {Name: "sqrt", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"rsqrt": {Name: "rsqrt", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"fabs":  {Name: "fabs", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"exp":   {Name: "exp", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"log":   {Name: "log", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"log2":  {Name: "log2", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"sin":   {Name: "sin", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"cos":   {Name: "cos", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"tan":   {Name: "tan", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"pow":   {Name: "pow", Args: []Type{TypeFloat, TypeFloat}, Ret: TypeFloat, Float: true},
	"fmin":  {Name: "fmin", Args: []Type{TypeFloat, TypeFloat}, Ret: TypeFloat, Float: true},
	"fmax":  {Name: "fmax", Args: []Type{TypeFloat, TypeFloat}, Ret: TypeFloat, Float: true},
	"fma":   {Name: "fma", Args: []Type{TypeFloat, TypeFloat, TypeFloat}, Ret: TypeFloat, Float: true},
	"mad":   {Name: "mad", Args: []Type{TypeFloat, TypeFloat, TypeFloat}, Ret: TypeFloat, Float: true},
	"floor": {Name: "floor", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},
	"ceil":  {Name: "ceil", Args: []Type{TypeFloat}, Ret: TypeFloat, Float: true},

	"min":   {Name: "min", Args: []Type{{}, {}}, Poly: true},
	"max":   {Name: "max", Args: []Type{{}, {}}, Poly: true},
	"abs":   {Name: "abs", Args: []Type{{}}, Poly: true},
	"clamp": {Name: "clamp", Args: []Type{{}, {}, {}}, Poly: true},
}

// scope is a lexically nested symbol table for sema.
type scope struct {
	parent *scope
	vars   map[string]Type
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]Type{}}
}

func (s *scope) lookup(name string) (Type, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return Type{}, false
}

func (s *scope) declare(name string, t Type) bool {
	if _, exists := s.vars[name]; exists {
		return false
	}
	s.vars[name] = t
	return true
}

// checker carries per-function checking state.
type checker struct {
	prog      *Program
	fn        *FuncDecl
	loopDepth int
	helpers   map[string]*FuncDecl
}

// Check type-checks the whole program in place, annotating expression types.
func Check(prog *Program) error {
	helpers := make(map[string]*FuncDecl, len(prog.Funcs))
	for _, f := range prog.Funcs {
		if _, dup := helpers[f.Name]; dup {
			return errf(f.Pos, "duplicate function %q", f.Name)
		}
		if _, isBuiltin := Builtins[f.Name]; isBuiltin {
			return errf(f.Pos, "function %q shadows a builtin", f.Name)
		}
		helpers[f.Name] = f
	}
	for _, f := range prog.Funcs {
		c := &checker{prog: prog, fn: f, helpers: helpers}
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	if f.IsKernel && !f.Ret.Equal(TypeVoid) {
		return errf(f.Pos, "kernel %q must return void", f.Name)
	}
	sc := newScope(nil)
	for _, p := range f.Params {
		if p.Type.Basic == Void {
			return errf(p.Pos, "parameter %q has void type", p.Name)
		}
		if !sc.declare(p.Name, p.Type) {
			return errf(p.Pos, "duplicate parameter %q", p.Name)
		}
	}
	return c.checkBlock(f.Body, newScope(sc))
}

func (c *checker) checkBlock(b *BlockStmt, sc *scope) error {
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st, newScope(sc))
	case *DeclStmt:
		if st.Type.Ptr {
			return errf(st.Pos, "local pointer variables are not supported; use buffer parameters")
		}
		if st.Type.Basic == Void {
			return errf(st.Pos, "cannot declare void variable %q", st.Name)
		}
		if st.Init != nil {
			it, err := c.checkExpr(st.Init, sc)
			if err != nil {
				return err
			}
			if !assignable(st.Type, it) {
				return errf(st.Pos, "cannot initialize %s %q with %s", st.Type, st.Name, it)
			}
		}
		if !sc.declare(st.Name, st.Type) {
			return errf(st.Pos, "redeclaration of %q", st.Name)
		}
		return nil
	case *AssignStmt:
		tt, err := c.checkLValue(st.Target, sc)
		if err != nil {
			return err
		}
		vt, err := c.checkExpr(st.Value, sc)
		if err != nil {
			return err
		}
		if st.Op != Assign && !tt.IsNumeric() {
			return errf(st.Pos, "compound assignment requires numeric target, got %s", tt)
		}
		if !assignable(tt, vt) {
			return errf(st.Pos, "cannot assign %s to %s", vt, tt)
		}
		return nil
	case *IncDecStmt:
		tt, err := c.checkLValue(st.Target, sc)
		if err != nil {
			return err
		}
		if !tt.IsInteger() {
			return errf(st.Pos, "++/-- requires integer target, got %s", tt)
		}
		return nil
	case *IfStmt:
		ct, err := c.checkExpr(st.Cond, sc)
		if err != nil {
			return err
		}
		if !condOK(ct) {
			return errf(st.Pos, "if condition must be bool or integer, got %s", ct)
		}
		if err := c.checkBlock(st.Then, newScope(sc)); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else, newScope(sc))
		}
		return nil
	case *ForStmt:
		inner := newScope(sc)
		if st.Init != nil {
			if err := c.checkStmt(st.Init, inner); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			ct, err := c.checkExpr(st.Cond, inner)
			if err != nil {
				return err
			}
			if !condOK(ct) {
				return errf(st.Pos, "for condition must be bool or integer, got %s", ct)
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post, inner); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.checkBlock(st.Body, newScope(inner))
		c.loopDepth--
		return err
	case *WhileStmt:
		ct, err := c.checkExpr(st.Cond, sc)
		if err != nil {
			return err
		}
		if !condOK(ct) {
			return errf(st.Pos, "while condition must be bool or integer, got %s", ct)
		}
		c.loopDepth++
		err = c.checkBlock(st.Body, newScope(sc))
		c.loopDepth--
		return err
	case *ReturnStmt:
		if st.Value == nil {
			if !c.fn.Ret.Equal(TypeVoid) {
				return errf(st.Pos, "missing return value in %q", c.fn.Name)
			}
			return nil
		}
		vt, err := c.checkExpr(st.Value, sc)
		if err != nil {
			return err
		}
		if !assignable(c.fn.Ret, vt) {
			return errf(st.Pos, "cannot return %s from function returning %s", vt, c.fn.Ret)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.X, sc)
		return err
	}
	return fmt.Errorf("minicl: unknown statement %T", s)
}

// checkLValue checks a store target: a scalar variable or a buffer element.
func (c *checker) checkLValue(e Expr, sc *scope) (Type, error) {
	switch t := e.(type) {
	case *Ident:
		ty, ok := sc.lookup(t.Name)
		if !ok {
			return Type{}, errf(t.Pos, "undefined variable %q", t.Name)
		}
		if ty.Ptr {
			return Type{}, errf(t.Pos, "cannot assign to buffer parameter %q", t.Name)
		}
		t.setType(ty)
		return ty, nil
	case *Index:
		bt, err := c.checkExpr(t.Base, sc)
		if err != nil {
			return Type{}, err
		}
		if !bt.Ptr {
			return Type{}, errf(t.Pos, "indexing non-pointer type %s", bt)
		}
		if bt.Const {
			return Type{}, errf(t.Pos, "cannot store through const pointer")
		}
		it, err := c.checkExpr(t.Index, sc)
		if err != nil {
			return Type{}, err
		}
		if !it.IsInteger() {
			return Type{}, errf(t.Pos, "index must be integer, got %s", it)
		}
		el := bt.Elem()
		t.setType(el)
		return el, nil
	}
	return Type{}, errf(e.NodePos(), "invalid assignment target")
}

func (c *checker) checkExpr(e Expr, sc *scope) (Type, error) {
	switch t := e.(type) {
	case *IntLit:
		t.setType(TypeInt)
		return TypeInt, nil
	case *FloatLit:
		t.setType(TypeFloat)
		return TypeFloat, nil
	case *BoolLit:
		t.setType(TypeBool)
		return TypeBool, nil
	case *Ident:
		ty, ok := sc.lookup(t.Name)
		if !ok {
			return Type{}, errf(t.Pos, "undefined variable %q", t.Name)
		}
		t.setType(ty)
		return ty, nil
	case *Index:
		bt, err := c.checkExpr(t.Base, sc)
		if err != nil {
			return Type{}, err
		}
		if !bt.Ptr {
			return Type{}, errf(t.Pos, "indexing non-pointer type %s", bt)
		}
		it, err := c.checkExpr(t.Index, sc)
		if err != nil {
			return Type{}, err
		}
		if !it.IsInteger() {
			return Type{}, errf(t.Pos, "index must be integer, got %s", it)
		}
		el := bt.Elem()
		t.setType(el)
		return el, nil
	case *UnaryExpr:
		xt, err := c.checkExpr(t.X, sc)
		if err != nil {
			return Type{}, err
		}
		switch t.Op {
		case Minus:
			if !xt.IsNumeric() {
				return Type{}, errf(t.Pos, "unary - requires numeric operand, got %s", xt)
			}
			t.setType(xt)
			return xt, nil
		case Not:
			if !condOK(xt) {
				return Type{}, errf(t.Pos, "! requires bool operand, got %s", xt)
			}
			t.setType(TypeBool)
			return TypeBool, nil
		}
		return Type{}, errf(t.Pos, "unknown unary operator %s", t.Op)
	case *BinaryExpr:
		return c.checkBinary(t, sc)
	case *CondExpr:
		ct, err := c.checkExpr(t.Cond, sc)
		if err != nil {
			return Type{}, err
		}
		if !condOK(ct) {
			return Type{}, errf(t.Pos, "ternary condition must be bool, got %s", ct)
		}
		tt, err := c.checkExpr(t.Then, sc)
		if err != nil {
			return Type{}, err
		}
		et, err := c.checkExpr(t.Else, sc)
		if err != nil {
			return Type{}, err
		}
		rt, ok := unify(tt, et)
		if !ok {
			return Type{}, errf(t.Pos, "ternary branches have mismatched types %s and %s", tt, et)
		}
		t.setType(rt)
		return rt, nil
	case *CastExpr:
		xt, err := c.checkExpr(t.X, sc)
		if err != nil {
			return Type{}, err
		}
		if t.To.Ptr || xt.Ptr {
			return Type{}, errf(t.Pos, "pointer casts are not supported")
		}
		t.setType(t.To)
		return t.To, nil
	case *CallExpr:
		return c.checkCall(t, sc)
	}
	return Type{}, fmt.Errorf("minicl: unknown expression %T", e)
}

func (c *checker) checkBinary(b *BinaryExpr, sc *scope) (Type, error) {
	lt, err := c.checkExpr(b.L, sc)
	if err != nil {
		return Type{}, err
	}
	rt, err := c.checkExpr(b.R, sc)
	if err != nil {
		return Type{}, err
	}
	switch b.Op {
	case Plus, Minus, Star, Slash:
		ut, ok := unify(lt, rt)
		if !ok || !ut.IsNumeric() {
			return Type{}, errf(b.Pos, "operator %s requires numeric operands, got %s and %s", b.Op, lt, rt)
		}
		b.setType(ut)
		return ut, nil
	case Percent, Amp, Pipe, Caret, Shl, Shr:
		if !lt.IsInteger() || !rt.IsInteger() {
			return Type{}, errf(b.Pos, "operator %s requires integer operands, got %s and %s", b.Op, lt, rt)
		}
		b.setType(lt)
		return lt, nil
	case Lt, Gt, Le, Ge, EqEq, NotEq:
		ut, ok := unify(lt, rt)
		if !ok || (!ut.IsNumeric() && !ut.IsBool()) {
			return Type{}, errf(b.Pos, "cannot compare %s and %s", lt, rt)
		}
		b.setType(TypeBool)
		return TypeBool, nil
	case AndAnd, OrOr:
		if !condOK(lt) || !condOK(rt) {
			return Type{}, errf(b.Pos, "operator %s requires bool operands, got %s and %s", b.Op, lt, rt)
		}
		b.setType(TypeBool)
		return TypeBool, nil
	}
	return Type{}, errf(b.Pos, "unknown binary operator %s", b.Op)
}

func (c *checker) checkCall(call *CallExpr, sc *scope) (Type, error) {
	if bi, ok := Builtins[call.Name]; ok {
		return c.checkBuiltin(call, bi, sc)
	}
	f, ok := c.helpers[call.Name]
	if !ok {
		return Type{}, errf(call.Pos, "call to undefined function %q", call.Name)
	}
	if f.IsKernel {
		return Type{}, errf(call.Pos, "cannot call kernel %q", call.Name)
	}
	if len(call.Args) != len(f.Params) {
		return Type{}, errf(call.Pos, "%q expects %d arguments, got %d", call.Name, len(f.Params), len(call.Args))
	}
	for i, a := range call.Args {
		at, err := c.checkExpr(a, sc)
		if err != nil {
			return Type{}, err
		}
		if !assignable(f.Params[i].Type, at) {
			return Type{}, errf(a.NodePos(), "argument %d of %q: cannot pass %s as %s",
				i+1, call.Name, at, f.Params[i].Type)
		}
	}
	call.setType(f.Ret)
	return f.Ret, nil
}

func (c *checker) checkBuiltin(call *CallExpr, bi *BuiltinInfo, sc *scope) (Type, error) {
	if bi.Barrier {
		// barrier() or barrier(CLK_LOCAL_MEM_FENCE)-style single int arg.
		if len(call.Args) > 1 {
			return Type{}, errf(call.Pos, "barrier takes at most one argument")
		}
		for _, a := range call.Args {
			if _, err := c.checkExpr(a, sc); err != nil {
				return Type{}, err
			}
		}
		call.setType(TypeVoid)
		return TypeVoid, nil
	}
	if len(call.Args) != len(bi.Args) {
		return Type{}, errf(call.Pos, "%q expects %d arguments, got %d", bi.Name, len(bi.Args), len(call.Args))
	}
	if bi.Poly {
		var ret Type
		for i, a := range call.Args {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return Type{}, err
			}
			if !at.IsNumeric() {
				return Type{}, errf(a.NodePos(), "argument %d of %q must be numeric, got %s", i+1, bi.Name, at)
			}
			if i == 0 {
				ret = at
			} else if u, ok := unify(ret, at); ok {
				ret = u
			} else {
				return Type{}, errf(a.NodePos(), "mismatched argument types in %q", bi.Name)
			}
		}
		call.setType(ret)
		return ret, nil
	}
	for i, a := range call.Args {
		at, err := c.checkExpr(a, sc)
		if err != nil {
			return Type{}, err
		}
		if !assignable(bi.Args[i], at) {
			return Type{}, errf(a.NodePos(), "argument %d of %q: cannot pass %s as %s",
				i+1, bi.Name, at, bi.Args[i])
		}
	}
	call.setType(bi.Ret)
	return bi.Ret, nil
}

// assignable reports whether a value of type src can be stored into dst.
// Implicit int<->uint and int->float conversions are allowed, matching
// OpenCL C's usual arithmetic conversions for the subset we support.
func assignable(dst, src Type) bool {
	if dst.Equal(src) {
		return true
	}
	if dst.Ptr || src.Ptr {
		return false
	}
	if dst.Basic == Float && src.IsInteger() {
		return true
	}
	if dst.IsInteger() && src.IsInteger() {
		return true
	}
	return false
}

// unify returns the common arithmetic type of two operands.
func unify(a, b Type) (Type, bool) {
	if a.Equal(b) {
		return a, true
	}
	if a.Ptr || b.Ptr {
		return Type{}, false
	}
	if a.Basic == Float && b.IsInteger() {
		return TypeFloat, true
	}
	if b.Basic == Float && a.IsInteger() {
		return TypeFloat, true
	}
	if a.IsInteger() && b.IsInteger() {
		return TypeInt, true
	}
	return Type{}, false
}

// condOK reports whether a type can be used as a branch condition.
func condOK(t Type) bool { return t.IsBool() || t.IsInteger() }
