package minicl

import (
	"strings"
	"testing"
)

const vecaddSrc = `
kernel void vecadd(global const float* a, global const float* b,
                   global float* c, int n) {
    int i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

func TestParseVecadd(t *testing.T) {
	prog, err := Parse(vecaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernel("vecadd")
	if k == nil {
		t.Fatal("kernel vecadd not found")
	}
	if len(k.Params) != 4 {
		t.Fatalf("got %d params, want 4", len(k.Params))
	}
	if !k.Params[0].Type.Ptr || k.Params[0].Type.Space != Global || !k.Params[0].Type.Const {
		t.Errorf("param a type = %s, want global const float*", k.Params[0].Type)
	}
	if k.Params[3].Type != TypeInt {
		t.Errorf("param n type = %s, want int", k.Params[3].Type)
	}
	if len(k.Body.Stmts) != 2 {
		t.Fatalf("got %d body statements, want 2", len(k.Body.Stmts))
	}
	if _, ok := k.Body.Stmts[1].(*IfStmt); !ok {
		t.Errorf("second statement is %T, want *IfStmt", k.Body.Stmts[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`kernel void f(global float* o) { o[0] = 1.0 + 2.0 * 3.0; }`)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	add, ok := as.Value.(*BinaryExpr)
	if !ok || add.Op != Plus {
		t.Fatalf("top operator = %v, want +", as.Value)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != Star {
		t.Fatalf("right operand = %v, want *", add.R)
	}
}

func TestParseForLoop(t *testing.T) {
	src := `kernel void f(global float* o, int n) {
		float s = 0.0;
		for (int i = 0; i < n; i++) { s += 1.0; }
		o[0] = s;
	}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := prog.Funcs[0].Body.Stmts[1].(*ForStmt)
	if !ok {
		t.Fatalf("statement 1 is %T, want *ForStmt", prog.Funcs[0].Body.Stmts[1])
	}
	if _, ok := fs.Init.(*DeclStmt); !ok {
		t.Errorf("for init is %T, want *DeclStmt", fs.Init)
	}
	if _, ok := fs.Post.(*IncDecStmt); !ok {
		t.Errorf("for post is %T, want *IncDecStmt", fs.Post)
	}
}

func TestParseWhileBreakContinue(t *testing.T) {
	src := `kernel void f(global int* o, int n) {
		int i = 0;
		while (i < n) {
			i++;
			if (i == 3) { continue; }
			if (i > 10) { break; }
		}
		o[0] = i;
	}`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	src := `kernel void f(global float* o, int n) {
		float x = (float)n;
		o[0] = n > 0 ? x : -x;
	}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	decl := prog.Funcs[0].Body.Stmts[0].(*DeclStmt)
	if _, ok := decl.Init.(*CastExpr); !ok {
		t.Errorf("init is %T, want *CastExpr", decl.Init)
	}
	as := prog.Funcs[0].Body.Stmts[1].(*AssignStmt)
	if _, ok := as.Value.(*CondExpr); !ok {
		t.Errorf("value is %T, want *CondExpr", as.Value)
	}
}

func TestParseHelperFunction(t *testing.T) {
	src := `
float square(float x) { return x * x; }
kernel void f(global float* o) { o[0] = square(3.0); }
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(prog.Funcs))
	}
	if prog.Funcs[0].IsKernel {
		t.Error("helper square marked as kernel")
	}
	if len(prog.Kernels()) != 1 {
		t.Errorf("got %d kernels, want 1", len(prog.Kernels()))
	}
}

func TestParseDanglingElse(t *testing.T) {
	src := `kernel void f(global int* o, int n) {
		if (n > 0)
			if (n > 1) o[0] = 1;
			else o[0] = 2;
	}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Funcs[0].Body.Stmts[0].(*IfStmt)
	if outer.Else != nil {
		t.Error("else bound to outer if; want inner")
	}
	inner := outer.Then.Stmts[0].(*IfStmt)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing paren", "kernel void f( { }", "expected type"},
		{"missing semi", "kernel void f() { int x = 1 }", "expected ;"},
		{"bad toplevel", "42", "expected type"},
		{"empty", "", "empty program"},
		{"unterminated block", "kernel void f() { int x = 1;", "unterminated block"},
		{"addrspace on scalar", "kernel void f(global int n) { }", "address space qualifier requires a pointer"},
		{"expr expected", "kernel void f() { int x = ; }", "expected expression"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined var", "kernel void f(global int* o) { o[0] = y; }", "undefined variable"},
		{"kernel non void", "kernel int f() { return 1; }", "must return void"},
		{"assign to buffer param", "kernel void f(global int* o) { o = o; }", "cannot assign to buffer parameter"},
		{"store via const", "kernel void f(global const float* a) { a[0] = 1.0; }", "const pointer"},
		{"float index", "kernel void f(global float* o) { o[1.5] = 0.0; }", "index must be integer"},
		{"index scalar", "kernel void f(int n) { n[0]; }", "indexing non-pointer"},
		{"float to int", "kernel void f(global int* o) { int x = 1.5; }", "cannot initialize"},
		{"redeclare", "kernel void f() { int x = 1; int x = 2; }", "redeclaration"},
		{"dup param", "kernel void f(int a, int a) { }", "duplicate parameter"},
		{"break outside", "kernel void f() { break; }", "break outside loop"},
		{"continue outside", "kernel void f() { continue; }", "continue outside loop"},
		{"undefined fn", "kernel void f() { frobnicate(); }", "undefined function"},
		{"call kernel", "kernel void g() { } kernel void f() { g(); }", "cannot call kernel"},
		{"arity", "kernel void f(global float* o) { o[0] = sqrt(1.0, 2.0); }", "expects 1 arguments"},
		{"bad builtin arg", "kernel void f(global float* o, global float* p) { o[0] = sqrt(p); }", "cannot pass"},
		{"dup function", "void h() { } void h() { }", "duplicate function"},
		{"shadow builtin", "void sqrt(float x) { }", "shadows a builtin"},
		{"float mod", "kernel void f(global float* o) { o[0] = 1.5 % 2.0; }", "requires integer operands"},
		{"compare ptr", "kernel void f(global float* a, global float* b, global int* o) { if (a < b) { o[0]=1; } }", "cannot compare"},
		{"inc float", "kernel void f() { float x = 0.0; x++; }", "requires integer target"},
		{"void var", "kernel void f() { void x; }", "void"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src)
			if err == nil {
				t.Fatalf("Compile succeeded, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestSemaTypesAnnotated(t *testing.T) {
	prog, err := Compile(vecaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernel("vecadd")
	ifs := k.Body.Stmts[1].(*IfStmt)
	if got := ifs.Cond.Type(); !got.IsBool() {
		t.Errorf("condition type = %s, want bool", got)
	}
	as := ifs.Then.Stmts[0].(*AssignStmt)
	if got := as.Value.Type(); !got.IsFloat() {
		t.Errorf("rhs type = %s, want float", got)
	}
}

func TestSemaImplicitConversions(t *testing.T) {
	src := `kernel void f(global float* o, int n) {
		float x = n;        // int -> float init
		x = x + n;          // mixed arithmetic
		uint u = 3;
		int i = u;          // uint -> int
		o[0] = x + i;
	}`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestSemaPolyBuiltins(t *testing.T) {
	src := `kernel void f(global float* o, global int* p, int n) {
		o[0] = min(1.0, 2.0);
		p[0] = max(1, n);
		o[1] = clamp(o[0], 0.0, 1.0);
		p[1] = abs(-3);
	}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// min(1.0, 2.0) should be float-typed.
	as := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if got := as.Value.Type(); !got.IsFloat() {
		t.Errorf("min(float,float) type = %s, want float", got)
	}
}

func TestSemaBarrierForms(t *testing.T) {
	src := `kernel void f(local float* tmp, global float* o) {
		tmp[get_local_id(0)] = 1.0;
		barrier();
		barrier(1);
		o[0] = tmp[0];
	}`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseAllBuiltinsCallable(t *testing.T) {
	src := `kernel void f(global float* o, global int* p, int n) {
		int i = get_global_id(0) + get_local_id(0) + get_group_id(0)
			+ get_global_size(0) + get_local_size(0) + get_num_groups(0);
		float x = 0.5;
		o[0] = sqrt(x) + rsqrt(x) + fabs(x) + exp(x) + log(x) + log2(x)
			+ sin(x) + cos(x) + tan(x) + pow(x, 2.0) + fmin(x, 1.0)
			+ fmax(x, 0.0) + fma(x, x, x) + mad(x, x, x) + floor(x) + ceil(x);
		p[0] = i + min(1, 2) + max(3, 4) + abs(-1) + clamp(n, 0, 7);
	}`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}
