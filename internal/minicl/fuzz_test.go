package minicl_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/minicl"
)

// The front end is the trust boundary for uploaded kernels: arbitrary
// bytes arrive at POST /kernels and flow through lexer → parser → sema.
// Each stage must return an error for malformed input, never panic or
// hang. The seed corpus is the full built-in suite (every construct the
// dialect supports) plus handcrafted near-miss inputs.

func seedSources(f *testing.F) {
	f.Helper()
	for _, p := range bench.All() {
		f.Add(p.Source)
	}
	for _, s := range []string{
		"",
		"kernel",
		"kernel void k() {}",
		"kernel void k(global float* a) { a[0] = ; }",
		"kernel void k(int n) { while (1) {} }",
		"int f(int x) { return f(x); } kernel void k() {}",
		"kernel void k() { int x = 2147483647 + 1; }",
		"/* unterminated",
		`"unterminated string`,
		"kernel void k() { for (int i = 0; i < 10; i = i + 1) { barrier(); } }",
		"kernel void k(local float* t, global float* a) { t[get_local_id(0)] = a[get_global_id(0)]; }",
		strings.Repeat("{", 1000),
		"kernel void k() { 0x }",
		"kernel void \x00() {}",
	} {
		f.Add(s)
	}
}

func FuzzLexer(f *testing.F) {
	seedSources(f)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := minicl.LexAll(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("no tokens and no error")
		}
	})
}

func FuzzParser(f *testing.F) {
	seedSources(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minicl.Parse(src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
	})
}

func FuzzSema(f *testing.F) {
	seedSources(f)
	f.Fuzz(func(t *testing.T, src string) {
		// Compile = Parse + Check: the full front end uploads go through.
		prog, err := minicl.Compile(src)
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
	})
}
