package minicl

import "testing"

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		ty   Type
		want string
	}{
		{TypeVoid, "void"},
		{TypeInt, "int"},
		{TypeUint, "uint"},
		{TypeFloat, "float"},
		{TypeBool, "bool"},
		{GlobalPtr(Float, true), "global const float*"},
		{GlobalPtr(Int, false), "global int*"},
		{LocalPtr(Float), "local float*"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !TypeInt.IsNumeric() || !TypeFloat.IsNumeric() || TypeBool.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	if !TypeInt.IsInteger() || !TypeUint.IsInteger() || TypeFloat.IsInteger() {
		t.Error("IsInteger wrong")
	}
	if GlobalPtr(Float, false).IsNumeric() {
		t.Error("pointer is not numeric")
	}
	if !TypeBool.IsBool() || TypeInt.IsBool() {
		t.Error("IsBool wrong")
	}
}

func TestTypeElemAndSize(t *testing.T) {
	p := GlobalPtr(Float, true)
	el := p.Elem()
	if !el.IsFloat() || el.Ptr {
		t.Errorf("Elem = %s", el)
	}
	if TypeFloat.Size() != 4 || TypeInt.Size() != 4 || TypeBool.Size() != 1 || TypeVoid.Size() != 0 {
		t.Error("Size wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Elem on scalar should panic")
		}
	}()
	TypeInt.Elem()
}

func TestTypeEqualIgnoresConst(t *testing.T) {
	a := GlobalPtr(Float, true)
	b := GlobalPtr(Float, false)
	if !a.Equal(b) {
		t.Error("const should not affect type identity")
	}
	if a.Equal(LocalPtr(Float)) {
		t.Error("address spaces must distinguish pointer types")
	}
	if TypeInt.Equal(TypeFloat) {
		t.Error("int == float")
	}
}

func TestAddrSpaceString(t *testing.T) {
	if Global.String() != "global" || Local.String() != "local" || Private.String() != "private" {
		t.Error("AddrSpace.String wrong")
	}
}

func TestPosString(t *testing.T) {
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Error("Pos.String wrong")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Text: "foo"}
	if got := tok.String(); got != `identifier "foo"` {
		t.Errorf("Token.String = %q", got)
	}
	if got := (Token{Kind: LParen}).String(); got != "(" {
		t.Errorf("punct token String = %q", got)
	}
}
