package minicl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexSimpleTokens(t *testing.T) {
	toks, err := LexAll("kernel void f ( ) { }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwKernel, KwVoid, IDENT, LParen, RParen, LBrace, RBrace, EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Kind{
		"+": Plus, "-": Minus, "*": Star, "/": Slash, "%": Percent,
		"+=": PlusAssign, "-=": MinusAssign, "*=": StarAssign, "/=": SlashAssign,
		"<": Lt, ">": Gt, "<=": Le, ">=": Ge, "==": EqEq, "!=": NotEq,
		"&&": AndAnd, "||": OrOr, "!": Not, "&": Amp, "|": Pipe, "^": Caret,
		"<<": Shl, ">>": Shr, "?": Question, ":": Colon,
		"++": PlusPlus, "--": MinusMinus, "=": Assign,
	}
	for src, want := range cases {
		toks, err := LexAll(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != want {
			t.Errorf("%q lexed as %s, want %s", src, toks[0].Kind, want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"42", INTLIT, "42"},
		{"0", INTLIT, "0"},
		{"0x1F", INTLIT, "0x1F"},
		{"3.25", FLOATLIT, "3.25"},
		{"1e6", FLOATLIT, "1e6"},
		{"2.5e-3", FLOATLIT, "2.5e-3"},
		{"1.0f", FLOATLIT, "1.0"},
		{".5", FLOATLIT, ".5"},
		{"7f", FLOATLIT, "7"},
	}
	for _, c := range cases {
		toks, err := LexAll(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q lexed as (%s,%q), want (%s,%q)", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// a line comment
int x; /* block
comment */ float y;
`
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwInt, IDENT, Semicolon, KwFloat, IDENT, Semicolon, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := LexAll("int x; /* oops"); err == nil {
		t.Fatal("want error for unterminated comment")
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := LexAll("int @x;"); err == nil {
		t.Fatal("want error for @")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("int\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexKeywordAliases(t *testing.T) {
	toks, err := LexAll("__kernel __global __local")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwKernel, KwGlobal, KwLocal}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

// Property: lexing never panics and always terminates with EOF for
// identifier/number/operator soup built from safe characters.
func TestLexNeverPanicsOnSafeInput(t *testing.T) {
	alphabet := "abcxyz019. +-*/%<>=!&|^(){}[];,?:\n\t"
	f := func(seed []byte) bool {
		var sb strings.Builder
		for _, b := range seed {
			sb.WriteByte(alphabet[int(b)%len(alphabet)])
		}
		toks, err := LexAll(sb.String())
		if err != nil {
			return true // errors are fine; panics are not
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStringCoverage(t *testing.T) {
	for k := EOF; k <= MinusMinus; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
