package minicl

import "strconv"

// Parser is a recursive-descent parser for MiniCL.
type Parser struct {
	toks []Token
	pos  int
}

// Parse tokenizes and parses src into a Program (without type checking; use
// Check afterwards or the Compile convenience wrapper).
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// Compile parses and type-checks src, returning the checked program.
func Compile(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(EOF) {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	if len(prog.Funcs) == 0 {
		return nil, errf(Pos{1, 1}, "empty program: no functions")
	}
	return prog, nil
}

// isTypeStart reports whether the current token can begin a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KwVoid, KwInt, KwUint, KwFloat, KwBool, KwGlobal, KwLocal, KwConst:
		return true
	}
	return false
}

// parseType parses [global|local] [const] basic [*].
func (p *Parser) parseType() (Type, error) {
	var t Type
	switch p.cur().Kind {
	case KwGlobal:
		p.next()
		t.Space = Global
	case KwLocal:
		p.next()
		t.Space = Local
	}
	if p.accept(KwConst) {
		t.Const = true
	}
	switch tok := p.next(); tok.Kind {
	case KwVoid:
		t.Basic = Void
	case KwInt:
		t.Basic = Int
	case KwUint:
		t.Basic = Uint
	case KwFloat:
		t.Basic = Float
	case KwBool:
		t.Basic = Bool
	default:
		return Type{}, errf(tok.Pos, "expected type, found %s", tok)
	}
	// const may also follow the base type (OpenCL allows both orders).
	if p.accept(KwConst) {
		t.Const = true
	}
	if p.accept(Star) {
		t.Ptr = true
		if t.Space == Private {
			t.Space = Global // bare pointers default to global
		}
	} else if t.Space != Private {
		return Type{}, errf(p.cur().Pos, "address space qualifier requires a pointer type")
	}
	return t, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	start := p.cur().Pos
	isKernel := p.accept(KwKernel)
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []*Param
	if !p.at(RParen) {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			params = append(params, &Param{Name: pn.Text, Type: pt, Pos: pn.Pos})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{
		Name: name.Text, IsKernel: isKernel, Params: params, Ret: ret,
		Body: body, Pos: start,
	}, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // consume }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case LBrace:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwReturn:
		tok := p.next()
		var val Expr
		if !p.at(Semicolon) {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: val, Pos: tok.Pos}, nil
	case KwBreak:
		tok := p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: tok.Pos}, nil
	case KwContinue:
		tok := p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: tok.Pos}, nil
	}
	if p.isTypeStart() {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return d, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseDecl() (*DeclStmt, error) {
	start := p.cur().Pos
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	var init Expr
	if p.accept(Assign) {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &DeclStmt{Name: name.Text, Type: t, Init: init, Pos: start}, nil
}

// parseSimpleStmt parses assignment, inc/dec, or expression statements
// (without the trailing semicolon, so it can be reused by for-clauses).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign:
		op := p.next().Kind
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lhs, Op: op, Value: rhs, Pos: start}, nil
	case PlusPlus:
		p.next()
		return &IncDecStmt{Target: lhs, Pos: start}, nil
	case MinusMinus:
		p.next()
		return &IncDecStmt{Target: lhs, Dec: true, Pos: start}, nil
	}
	return &ExprStmt{X: lhs, Pos: start}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	tok := p.next() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	var els Stmt
	if p.accept(KwElse) {
		if p.at(KwIf) {
			els, err = p.parseIf()
		} else {
			els, err = p.parseBlockOrSingle()
		}
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Pos: tok.Pos}, nil
}

// parseBlockOrSingle allows single-statement bodies without braces.
func (p *Parser) parseBlockOrSingle() (*BlockStmt, error) {
	if p.at(LBrace) {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &BlockStmt{Stmts: []Stmt{s}, Pos: s.NodePos()}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	tok := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var init Stmt
	var err error
	if !p.at(Semicolon) {
		if p.isTypeStart() {
			init, err = p.parseDecl()
		} else {
			init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	var cond Expr
	if !p.at(Semicolon) {
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	var post Stmt
	if !p.at(RParen) {
		post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Pos: tok.Pos}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	tok := p.next() // while
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: tok.Pos}, nil
}

// --- Expressions (precedence climbing) ---

// Binary operator precedence, higher binds tighter.
func precOf(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case EqEq, NotEq:
		return 6
	case Lt, Gt, Le, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.at(Question) {
		return cond, nil
	}
	q := p.next()
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Pos: q.Pos}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := precOf(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, L: lhs, R: rhs, Pos: op.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Minus:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: Minus, X: x, Pos: tok.Pos}, nil
	case Not:
		tok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: Not, X: x, Pos: tok.Pos}, nil
	case LParen:
		// Could be a cast "(int)expr" or a parenthesized expression.
		if p.castAhead() {
			tok := p.next() // (
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{To: t, X: x, Pos: tok.Pos}, nil
		}
	}
	return p.parsePostfix()
}

// castAhead reports whether the token after '(' begins a type followed by ')'.
func (p *Parser) castAhead() bool {
	if !p.at(LParen) {
		return false
	}
	switch p.toks[p.pos+1].Kind {
	case KwInt, KwUint, KwFloat, KwBool:
		return p.toks[p.pos+2].Kind == RParen
	}
	return false
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(LBracket) {
		lb := p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		x = &Index{Base: x, Index: idx, Pos: lb.Pos}
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(tok.Text, 0, 64)
		if err != nil {
			return nil, errf(tok.Pos, "bad integer literal %q", tok.Text)
		}
		return &IntLit{Value: v, Pos: tok.Pos}, nil
	case FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, errf(tok.Pos, "bad float literal %q", tok.Text)
		}
		return &FloatLit{Value: v, Pos: tok.Pos}, nil
	case KwTrue:
		p.next()
		return &BoolLit{Value: true, Pos: tok.Pos}, nil
	case KwFalse:
		p.next()
		return &BoolLit{Value: false, Pos: tok.Pos}, nil
	case IDENT:
		p.next()
		if p.at(LParen) {
			p.next()
			var args []Expr
			if !p.at(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return &CallExpr{Name: tok.Text, Args: args, Pos: tok.Pos}, nil
		}
		return &Ident{Name: tok.Text, Pos: tok.Pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(tok.Pos, "expected expression, found %s", tok)
}
