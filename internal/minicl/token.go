// Package minicl implements the front-end for MiniCL, an OpenCL-C-like
// kernel language used as the input language of the partitioning framework.
//
// MiniCL covers the subset of OpenCL C exercised by the 23-program
// benchmark suite: scalar int/float arithmetic, global/local pointer
// parameters, work-item builtins (get_global_id and friends), structured
// control flow (if/for/while), and the common math builtins. The front-end
// produces a typed AST which internal/inspire lowers into the INSPIRE-like
// intermediate representation.
package minicl

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT

	// Keywords.
	KwKernel
	KwVoid
	KwInt
	KwUint
	KwFloat
	KwBool
	KwGlobal
	KwLocal
	KwConst
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwTrue
	KwFalse
	KwBreak
	KwContinue

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	Plus
	Minus
	Star
	Slash
	Percent
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not
	Amp
	Pipe
	Caret
	Shl
	Shr
	Question
	Colon
	PlusPlus
	MinusMinus
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal", FLOATLIT: "float literal",
	KwKernel: "kernel", KwVoid: "void", KwInt: "int", KwUint: "uint", KwFloat: "float",
	KwBool: "bool", KwGlobal: "global", KwLocal: "local", KwConst: "const",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while", KwReturn: "return",
	KwTrue: "true", KwFalse: "false", KwBreak: "break", KwContinue: "continue",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Comma: ",", Semicolon: ";", Assign: "=", PlusAssign: "+=", MinusAssign: "-=",
	StarAssign: "*=", SlashAssign: "/=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Lt: "<", Gt: ">", Le: "<=", Ge: ">=", EqEq: "==", NotEq: "!=",
	AndAnd: "&&", OrOr: "||", Not: "!", Amp: "&", Pipe: "|", Caret: "^",
	Shl: "<<", Shr: ">>", Question: "?", Colon: ":", PlusPlus: "++", MinusMinus: "--",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"kernel": KwKernel, "__kernel": KwKernel,
	"void": KwVoid, "int": KwInt, "uint": KwUint, "float": KwFloat, "bool": KwBool,
	"global": KwGlobal, "__global": KwGlobal,
	"local": KwLocal, "__local": KwLocal,
	"const": KwConst,
	"if":    KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
	"return": KwReturn, "true": KwTrue, "false": KwFalse,
	"break": KwBreak, "continue": KwContinue,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
