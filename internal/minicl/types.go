package minicl

import "fmt"

// BasicKind enumerates the scalar types of MiniCL.
type BasicKind int

// Scalar type kinds.
const (
	Void BasicKind = iota
	Int
	Uint
	Float
	Bool
)

// AddrSpace is an OpenCL address space qualifier for pointer types.
type AddrSpace int

// Address spaces. Private is used for scalars and is the default.
const (
	Private AddrSpace = iota
	Global
	Local
)

// String returns the OpenCL spelling of the address space.
func (a AddrSpace) String() string {
	switch a {
	case Global:
		return "global"
	case Local:
		return "local"
	default:
		return "private"
	}
}

// Type is a MiniCL type: either a scalar or a pointer to a scalar in a
// specific address space.
type Type struct {
	Basic BasicKind
	// Ptr marks pointer-to-Basic types (buffer parameters).
	Ptr bool
	// Space is the address space for pointer types.
	Space AddrSpace
	// Const marks read-only pointer parameters.
	Const bool
}

// Convenient prototypes for common types.
var (
	TypeVoid  = Type{Basic: Void}
	TypeInt   = Type{Basic: Int}
	TypeUint  = Type{Basic: Uint}
	TypeFloat = Type{Basic: Float}
	TypeBool  = Type{Basic: Bool}
)

// GlobalPtr returns a global-address-space pointer to the basic kind.
func GlobalPtr(b BasicKind, readOnly bool) Type {
	return Type{Basic: b, Ptr: true, Space: Global, Const: readOnly}
}

// LocalPtr returns a local-address-space pointer to the basic kind.
func LocalPtr(b BasicKind) Type {
	return Type{Basic: b, Ptr: true, Space: Local}
}

// IsNumeric reports whether the type is a scalar int, uint or float.
func (t Type) IsNumeric() bool {
	return !t.Ptr && (t.Basic == Int || t.Basic == Uint || t.Basic == Float)
}

// IsInteger reports whether the type is a scalar int or uint.
func (t Type) IsInteger() bool {
	return !t.Ptr && (t.Basic == Int || t.Basic == Uint)
}

// IsFloat reports whether the type is the scalar float type.
func (t Type) IsFloat() bool { return !t.Ptr && t.Basic == Float }

// IsBool reports whether the type is the scalar bool type.
func (t Type) IsBool() bool { return !t.Ptr && t.Basic == Bool }

// Elem returns the scalar type pointed to by a pointer type.
func (t Type) Elem() Type {
	if !t.Ptr {
		panic("minicl: Elem on non-pointer type")
	}
	return Type{Basic: t.Basic}
}

// Size returns the size in bytes of one element of the type.
func (t Type) Size() int {
	switch t.Basic {
	case Int, Uint, Float:
		return 4
	case Bool:
		return 1
	default:
		return 0
	}
}

// String returns the OpenCL-style spelling of the type.
func (t Type) String() string {
	base := ""
	switch t.Basic {
	case Void:
		base = "void"
	case Int:
		base = "int"
	case Uint:
		base = "uint"
	case Float:
		base = "float"
	case Bool:
		base = "bool"
	default:
		base = fmt.Sprintf("basic(%d)", int(t.Basic))
	}
	if !t.Ptr {
		return base
	}
	s := ""
	if t.Space != Private {
		s = t.Space.String() + " "
	}
	if t.Const {
		s += "const "
	}
	return s + base + "*"
}

// Equal reports type identity ignoring constness (which only affects
// assignability of stores, not value category).
func (t Type) Equal(o Type) bool {
	return t.Basic == o.Basic && t.Ptr == o.Ptr && (!t.Ptr || t.Space == o.Space)
}
