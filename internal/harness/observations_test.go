package harness

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// obsDB builds a small two-record database with a 3-class space.
func obsDB() *DB {
	names := []string{"s_a", "r_b"}
	return &DB{
		Space: []string{"100/0/0", "50/50/0", "0/100/0"},
		Records: []Record{
			{Program: "p1", Platform: "mc2", SizeIdx: 0, FeatureNames: names,
				Features: []float64{1, 2}, Times: []float64{3, 2, 1}, BestClass: 2,
				BestPartition: "0/100/0", OracleTime: 1, CPUOnlyTime: 3, GPUOnlyTime: 1},
			{Program: "p1", Platform: "mc2", SizeIdx: 1, FeatureNames: names,
				Features: []float64{1, 4}, Times: []float64{6, 4, 2}, BestClass: 2,
				BestPartition: "0/100/0", OracleTime: 2, CPUOnlyTime: 6, GPUOnlyTime: 2},
		},
	}
}

func labeledObs(program string, sizeIdx int) obs.Observation {
	return obs.Observation{
		Platform: "mc2", Program: program, SizeIdx: sizeIdx,
		FeatureNames: []string{"s_a", "r_b"}, Features: []float64{9, 9},
		Class: 1, Makespan: 4, Verified: true,
		Labeled: true, BestClass: 0, BestPartition: "100/0/0",
		OracleTime: 1.5, CPUOnlyTime: 1.5, GPUOnlyTime: 5,
		Times: []float64{1.5, 4, 5},
	}
}

func TestDBAppendInvalidatesIndex(t *testing.T) {
	db := obsDB()
	// Build the index first, then append: Find must see the new record.
	if db.Find("mc2", "p2", 0) != nil {
		t.Fatal("phantom record")
	}
	if _, ok := db.MaxSizeIdx("mc2", "p1"); !ok {
		t.Fatal("existing record not indexed")
	}
	rec, err := ObservationRecord(db.Space, labeledObs("p2", 3))
	if err != nil {
		t.Fatal(err)
	}
	db.Append(rec)
	got := db.Find("mc2", "p2", 3)
	if got == nil || got.BestClass != 0 || got.BestPartition != "100/0/0" {
		t.Fatalf("appended record not indexed: %+v", got)
	}
	if m, ok := db.MaxSizeIdx("mc2", "p2"); !ok || m != 3 {
		t.Fatalf("MaxSizeIdx after append = %d, %v", m, ok)
	}
	// Appending a duplicate cell must not displace the original (first
	// occurrence wins, same as the linear scan and lazy build).
	dup := rec
	dup.SizeIdx = 0
	dup.Program = "p1"
	db.Append(dup)
	if r := db.Find("mc2", "p1", 0); r.BestClass != 2 {
		t.Fatalf("duplicate displaced original: %+v", r)
	}
	// An append before any lookup leaves the index lazy and correct.
	db2 := obsDB()
	db2.Append(rec)
	if r := db2.Find("mc2", "p2", 3); r == nil {
		t.Fatal("lazy index missed appended record")
	}
}

func TestObservationRecordValidation(t *testing.T) {
	space := []string{"100/0/0", "50/50/0", "0/100/0"}
	good := labeledObs("p", 0)
	if _, err := ObservationRecord(space, good); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*obs.Observation){
		"unlabeled":       func(o *obs.Observation) { o.Labeled = false },
		"unverified":      func(o *obs.Observation) { o.Verified = false },
		"short times":     func(o *obs.Observation) { o.Times = o.Times[:2] },
		"bad best class":  func(o *obs.Observation) { o.BestClass = 7 },
		"no features":     func(o *obs.Observation) { o.FeatureNames = nil },
		"ragged features": func(o *obs.Observation) { o.Features = o.Features[:1] },
	}
	for name, mut := range cases {
		o := labeledObs("p", 0)
		mut(&o)
		if _, err := ObservationRecord(space, o); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestAppendObservations(t *testing.T) {
	db := obsDB()
	other := labeledObs("p3", 1)
	other.Platform = "mc1" // fine: platform is carried per record
	mismatch := labeledObs("p4", 0)
	mismatch.FeatureNames = []string{"s_a", "r_DIFFERENT"}
	unlabeled := labeledObs("p5", 0)
	unlabeled.Labeled = false

	added, skipped := db.AppendObservations([]obs.Observation{
		labeledObs("p2", 2), other, mismatch, unlabeled,
	})
	if added != 2 || skipped != 2 {
		t.Fatalf("added=%d skipped=%d, want 2/2", added, skipped)
	}
	if db.Find("mc2", "p2", 2) == nil || db.Find("mc1", "p3", 1) == nil {
		t.Fatal("appended observations not findable")
	}
	// The merged records participate in datasets like sweep records.
	ds := db.Dataset("mc2", nil)
	if ds.Len() != 3 {
		t.Fatalf("dataset has %d rows, want 3", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Soft) != 3 {
		t.Fatalf("observation records lack soft labels: %d", len(ds.Soft))
	}
}

// TestDBAppendConcurrentWithFind is the -race witness for the adaptive
// serving path: request handlers call Find while the retrainer appends.
func TestDBAppendConcurrentWithFind(t *testing.T) {
	db := obsDB()
	const writers, readers, per = 4, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec, err := ObservationRecord(db.Space, labeledObs("px", w*per+i+10))
				if err != nil {
					t.Error(err)
					return
				}
				db.Append(rec)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if rec := db.Find("mc2", "p1", 0); rec == nil || rec.BestClass != 2 {
					t.Error("stable record lost during appends")
					return
				}
				db.MaxSizeIdx("mc2", "px")
				db.PlatformRecords("mc2")
			}
		}()
	}
	wg.Wait()
	if got := len(db.PlatformRecords("mc2")); got != 2+writers*per {
		t.Fatalf("record count = %d, want %d", got, 2+writers*per)
	}
}
