package harness

import (
	"sync"
	"testing"
)

// findNaive is the linear scan Find replaced; the index must agree with
// it on every key, present or absent.
func findNaive(db *DB, platform, program string, sizeIdx int) *Record {
	for i := range db.Records {
		r := &db.Records[i]
		if r.Platform == platform && r.Program == program && r.SizeIdx == sizeIdx {
			return r
		}
	}
	return nil
}

func TestFindIndexMatchesLinearScan(t *testing.T) {
	db := testDB(t)
	platforms := []string{"mc1", "mc2", "nope"}
	programs := append(db.Programs(), "missing")
	for _, plat := range platforms {
		for _, prog := range programs {
			for sz := -1; sz <= 6; sz++ {
				want := findNaive(db, plat, prog, sz)
				got := db.Find(plat, prog, sz)
				if want != got {
					t.Fatalf("Find(%s,%s,%d) = %v, want %v", plat, prog, sz, got, want)
				}
			}
		}
	}
}

func TestFindIndexConcurrent(t *testing.T) {
	// Lazy index construction must be safe under concurrent first use
	// (the serving engine hits Find from many request goroutines).
	db := testDB(t)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, prog := range db.Programs() {
				for sz := 0; sz <= 2; sz++ {
					if db.Find("mc2", prog, sz) == nil {
						t.Errorf("Find(mc2,%s,%d) = nil", prog, sz)
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestMaxSizeIdx(t *testing.T) {
	db := testDB(t)
	if m, ok := db.MaxSizeIdx("mc2", "vecadd"); !ok || m != 2 {
		t.Errorf("MaxSizeIdx(mc2, vecadd) = %d, %t; want 2, true", m, ok)
	}
	if _, ok := db.MaxSizeIdx("mc2", "missing"); ok {
		t.Error("MaxSizeIdx reported a record for a missing program")
	}
}
