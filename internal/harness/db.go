// Package harness implements the offline training pipeline and the
// evaluation experiments of the paper.
//
// Training phase (paper Section 2): every benchmark program is profiled at
// every problem size; all candidate task partitionings (the 10%-step
// space) are priced on each platform's device models; the best
// partitioning, the static+runtime feature vector and all measurements are
// stored in a database. Models are trained from that database.
//
// Deployment phase / evaluation (Section 3): leave-one-program-out
// prediction reproduces Figure 1 — the speedup of the ML-guided
// partitioning over the CPU-only and GPU-only default strategies on mc1
// and mc2 — plus the supporting analyses listed in DESIGN.md.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/features"
	"repro/internal/inspire"
	"repro/internal/ml"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// Record is one training pattern: "the static features of a program, its
// runtime features for a certain problem size as well as the best task
// partitioning for the given program with the current input size" (paper
// Section 3), extended with the full measurement vector so that every
// candidate partitioning's simulated time is reusable by the experiments.
type Record struct {
	Program   string `json:"program"`
	Suite     string `json:"suite"`
	Platform  string `json:"platform"`
	SizeIdx   int    `json:"sizeIdx"`
	SizeLabel string `json:"sizeLabel"`
	SizeN     int    `json:"sizeN"`

	FeatureNames []string  `json:"featureNames"`
	Features     []float64 `json:"features"`

	// Times[i] is the simulated makespan of partition.Space(3,10)[i].
	Times []float64 `json:"times"`

	BestClass     int     `json:"bestClass"`
	BestPartition string  `json:"bestPartition"`
	OracleTime    float64 `json:"oracleTime"`
	CPUOnlyTime   float64 `json:"cpuOnlyTime"`
	GPUOnlyTime   float64 `json:"gpuOnlyTime"`
}

// DB is the training database. Generate builds it append-only; the
// adaptive loop keeps appending afterwards (Append, AppendObservations),
// so the lazily built lookup indexes are invalidated incrementally under
// a lock. Point lookups (Find, MaxSizeIdx) are safe concurrently with
// Append; bulk readers (Dataset, PlatformRecords, Save) take a coherent
// snapshot of the record slice under the same lock.
type DB struct {
	// Space is the canonical partition space ("100/0/0", ...), in the
	// class-index order used by BestClass.
	Space   []string `json:"space"`
	Records []Record `json:"records"`

	// mu guards Records growth and the lazy lookup maps. idx maps
	// (platform, program, sizeIdx) to the record's position, built on
	// the first Find and updated in place by Append. Serving paths hit
	// Find per request; a linear scan over every record per lookup does
	// not survive heavy traffic. maxSize tracks the largest size index
	// present per (platform, program).
	mu      sync.RWMutex
	idx     map[recordKey]int
	maxSize map[progKey]int
}

// recordKey identifies one record for O(1) lookup.
type recordKey struct {
	platform string
	program  string
	sizeIdx  int
}

// progKey identifies one program's records on one platform.
type progKey struct {
	platform string
	program  string
}

// buildIndexLocked fills the lookup maps; first occurrence wins, matching
// the linear scan it replaces. Callers hold db.mu for writing.
func (db *DB) buildIndexLocked() {
	db.idx = make(map[recordKey]int, len(db.Records))
	db.maxSize = map[progKey]int{}
	for i := range db.Records {
		db.indexRecordLocked(i)
	}
}

// indexRecordLocked folds Records[i] into the lookup maps.
func (db *DB) indexRecordLocked(i int) {
	r := &db.Records[i]
	k := recordKey{platform: r.Platform, program: r.Program, sizeIdx: r.SizeIdx}
	if _, ok := db.idx[k]; !ok {
		db.idx[k] = i
	}
	pk := progKey{platform: r.Platform, program: r.Program}
	if m, ok := db.maxSize[pk]; !ok || r.SizeIdx > m {
		db.maxSize[pk] = r.SizeIdx
	}
}

// ensureIndex builds the lookup maps if they do not exist yet and leaves
// the database read-locked; the caller must RUnlock.
func (db *DB) ensureIndexRLocked() {
	db.mu.RLock()
	if db.idx != nil {
		return
	}
	db.mu.RUnlock()
	db.mu.Lock()
	if db.idx == nil {
		db.buildIndexLocked()
	}
	db.mu.Unlock()
	db.mu.RLock()
}

// Append adds records to the database, keeping the lookup indexes
// coherent: an already-built index is extended in place (first
// occurrence still wins for Find), an unbuilt one stays lazy. Safe
// concurrently with Find/MaxSizeIdx — the adaptive serving path appends
// harvested observations while request handlers keep reading.
func (db *DB) Append(recs ...Record) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range recs {
		db.Records = append(db.Records, r)
		if db.idx != nil {
			db.indexRecordLocked(len(db.Records) - 1)
		}
	}
}

// MaxSizeIdx returns the largest size index recorded for the program on
// the platform, and whether any record exists.
func (db *DB) MaxSizeIdx(platform, program string) (int, bool) {
	db.ensureIndexRLocked()
	defer db.mu.RUnlock()
	m, ok := db.maxSize[progKey{platform: platform, program: program}]
	return m, ok
}

// spaceStrings renders the canonical 3-device 10%-step space.
func spaceStrings() []string {
	ps := partition.SharedSpace(3, partition.DefaultSteps)
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

// GenOptions configures database generation.
type GenOptions struct {
	// Platforms to measure on (default: mc1 and mc2).
	Platforms []*device.Platform
	// Programs restricts the suite by name (default: all 23).
	Programs []string
	// MaxSizeIdx caps the size family (inclusive; default 5 = all sizes).
	MaxSizeIdx int
	// Log receives progress lines (nil = silent).
	Log io.Writer
	// Workers bounds the sweep's total parallelism: the budget is divided
	// between the (program, size) cell fan-out and kernel-level profiling
	// within each cell (0 = the scheduler's process-wide default, 1 =
	// fully sequential). The resulting database is identical for every
	// setting.
	Workers int
	// Cache supplies memoized profiled executions so repeated sweeps stop
	// re-profiling (nil = the package-wide shared cache).
	Cache *ProfileCache
}

// genLogger serializes progress lines from concurrent sweep workers.
type genLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (g *genLogger) logf(format string, args ...any) {
	if g.w != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		fmt.Fprintf(g.w, format+"\n", args...)
	}
}

// Generate builds the training database: one profiled execution per
// (program, size), priced under every candidate partitioning on every
// platform. Profiles are platform-independent, so each kernel runs only
// once per size regardless of platform count.
//
// The sweep fans out over (program, size) cells on the scheduler's worker
// pool; each cell prices all platforms. Cell results are joined back in
// sweep order, so the database is byte-identical to a sequential run
// regardless of the worker count.
func Generate(opts GenOptions) (*DB, error) {
	if len(opts.Platforms) == 0 {
		opts.Platforms = device.Platforms()
	}
	if opts.MaxSizeIdx <= 0 || opts.MaxSizeIdx > 5 {
		opts.MaxSizeIdx = 5
	}
	if opts.Cache == nil {
		opts.Cache = sharedProfiles
	}
	progs := bench.All()
	if len(opts.Programs) > 0 {
		progs = progs[:0:0]
		for _, name := range opts.Programs {
			p, err := bench.Get(name)
			if err != nil {
				return nil, err
			}
			progs = append(progs, p)
		}
	}
	// The candidate space and every profile's range index are shared
	// across all (program, size) cells: the space is memoized process-wide
	// and the profile cache hands out prefix-indexed profiles.
	space := partition.SharedSpace(3, partition.DefaultSteps)
	db := &DB{Space: spaceStrings()}

	type cell struct {
		prog *bench.Program
		st   *inspire.StaticCounts
		sz   int
	}
	var cells []cell
	for _, p := range progs {
		// Static features depend only on the kernel, not the size:
		// compute them once per program, not once per cell.
		st, err := p.Static()
		if err != nil {
			return nil, err
		}
		for sz := 0; sz <= opts.MaxSizeIdx && sz < len(p.Sizes); sz++ {
			cells = append(cells, cell{prog: p, st: st, sz: sz})
		}
	}

	// Divide the budget between the cell fan-out and kernel-level
	// profiling within a cell, so total parallelism stays within the
	// budget (Workers=1 is sequential at every level).
	outer, inner := splitBudget(opts.Workers, len(cells))
	runtimes := make([]*runtime.Runtime, len(opts.Platforms))
	for i, plat := range opts.Platforms {
		if err := plat.Validate(); err != nil {
			return nil, err
		}
		runtimes[i] = runtime.New(plat)
		// Pricing inside a cell stays sequential (Workers=1): the cell
		// fan-out already saturates the budget, and per-candidate pricing
		// is too cheap to shard further.
		runtimes[i].Workers = 1
	}
	// Only the profiling runtime executes kernels (profiles are
	// platform-independent); it gets the budget left over by the fan-out.
	profRT := runtime.New(opts.Platforms[0])
	profRT.Workers = inner

	log := &genLogger{w: opts.Log}
	cellRecords, err := sched.Map(context.Background(), len(cells), outer,
		func(_ context.Context, ci int) ([]Record, error) {
			p, st, sz := cells[ci].prog, cells[ci].st, cells[ci].sz
			l, _, err := p.Build(sz)
			if err != nil {
				return nil, err
			}
			prof, err := opts.Cache.Profile(profRT, p.Name, sz, l)
			if err != nil {
				return nil, fmt.Errorf("harness: profiling %s/%s: %w", p.Name, p.Sizes[sz].Label, err)
			}
			fv := features.Combined(st, features.RuntimeInput{
				Profile:    prof,
				Plan:       l.Plan,
				Args:       l.Args,
				Iterations: l.Iterations,
			})
			log.logf("profiled %-14s %s (%d items)", p.Name, p.Sizes[sz].Label, prof.Total().Items)

			recs := make([]Record, 0, len(runtimes))
			for pi, rt := range runtimes {
				rec := Record{
					Program:      p.Name,
					Suite:        p.Suite,
					Platform:     opts.Platforms[pi].Name,
					SizeIdx:      sz,
					SizeLabel:    p.Sizes[sz].Label,
					SizeN:        p.Sizes[sz].N,
					FeatureNames: fv.Names,
					Features:     fv.Values,
					Times:        make([]float64, len(space)),
				}
				// One scratch-reusing pass prices the whole space; the
				// tie-break (strict less, earlier candidate wins) matches
				// the per-candidate loop it replaces.
				if _, err := rt.PriceAll(l, prof, space, rec.Times); err != nil {
					return nil, err
				}
				best, bestTime := 0, rec.Times[0]
				for ci, tm := range rec.Times {
					if tm < bestTime {
						best, bestTime = ci, tm
					}
				}
				rec.BestClass = best
				rec.BestPartition = db.Space[best]
				rec.OracleTime = bestTime
				cpuClass := classOf(space, rt.CPUOnly())
				gpuClass := classOf(space, rt.GPUOnly())
				rec.CPUOnlyTime = rec.Times[cpuClass]
				rec.GPUOnlyTime = rec.Times[gpuClass]
				recs = append(recs, rec)
			}
			return recs, nil
		})
	if err != nil {
		return nil, err
	}
	for _, recs := range cellRecords {
		db.Records = append(db.Records, recs...)
	}
	return db, nil
}

// classOf finds the class index of a partition in the space.
func classOf(space []partition.Partition, p partition.Partition) int {
	for i, q := range space {
		same := true
		for d := range q.Shares {
			if q.Shares[d] != p.Shares[d] {
				same = false
				break
			}
		}
		if same {
			return i
		}
	}
	return -1
}

// Save writes the database as JSON.
func (db *DB) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db.mu.RLock()
	defer db.mu.RUnlock()
	enc := json.NewEncoder(f)
	return enc.Encode(db)
}

// LoadDB reads a database from JSON.
func LoadDB(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db := &DB{}
	if err := json.NewDecoder(f).Decode(db); err != nil {
		return nil, err
	}
	return db, nil
}

// PlatformRecords returns a copy of the records measured on the named
// platform — a coherent snapshot even while Append runs concurrently.
func (db *DB) PlatformRecords(platform string) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Record
	for _, r := range db.Records {
		if r.Platform == platform {
			out = append(out, r)
		}
	}
	return out
}

// Find returns the record for (platform, program, size), or nil. The
// first call builds a lookup index; subsequent calls are O(1). Safe for
// concurrent use, including concurrently with Append; records are never
// mutated once appended, so the returned pointer stays valid.
func (db *DB) Find(platform, program string, sizeIdx int) *Record {
	db.ensureIndexRLocked()
	defer db.mu.RUnlock()
	if i, ok := db.idx[recordKey{platform: platform, program: program, sizeIdx: sizeIdx}]; ok {
		return &db.Records[i]
	}
	return nil
}

// softBeta controls the cost-sensitive label temperature: the soft target
// probability of partition c is proportional to exp(-beta*(T_c/T_best-1)),
// so a partition 10% off the oracle keeps ~37% of the oracle's mass while
// one 2x off is negligible. This teaches distribution-aware models (MLP)
// which mispredictions are cheap and which are catastrophic.
const softBeta = 10.0

// Dataset converts the platform's records into an ML dataset, grouped by
// program for leave-one-program-out cross validation. featureFilter
// optionally selects a subset of features by name prefix ("s_" static,
// "r_" runtime); nil keeps everything. Cost-sensitive soft labels are
// attached alongside the hard oracle labels.
func (db *DB) Dataset(platform string, featureFilter func(name string) bool) *ml.Dataset {
	d := &ml.Dataset{}
	for _, r := range db.PlatformRecords(platform) {
		if d.Names == nil {
			for _, n := range r.FeatureNames {
				if featureFilter == nil || featureFilter(n) {
					d.Names = append(d.Names, n)
				}
			}
		}
		var x []float64
		for i, n := range r.FeatureNames {
			if featureFilter == nil || featureFilter(n) {
				x = append(x, r.Features[i])
			}
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, r.BestClass)
		d.Groups = append(d.Groups, r.Program)
		d.Soft = append(d.Soft, softLabels(r.Times, r.OracleTime))
	}
	return d
}

// softLabels builds the cost-sensitive target distribution for one record.
func softLabels(times []float64, oracle float64) []float64 {
	out := make([]float64, len(times))
	total := 0.0
	for i, t := range times {
		v := math.Exp(-softBeta * (t/oracle - 1))
		out[i] = v
		total += v
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Programs returns the distinct program names in the database.
func (db *DB) Programs() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, r := range db.Records {
		if !seen[r.Program] {
			seen[r.Program] = true
			out = append(out, r.Program)
		}
	}
	return out
}
