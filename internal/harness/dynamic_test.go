package harness

import (
	"testing"

	"repro/internal/ml"
)

func TestDynamicComparison(t *testing.T) {
	rows, err := DynamicComparison("mc2", []string{"vecadd", "matmul"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Dynamic <= 0 || r.Oracle <= 0 {
			t.Errorf("%s: empty times", r.Program)
		}
		// The dynamic scheduler must beat the worst default (it adapts),
		// and the static oracle must not lose to it by a large margin.
		worst := r.CPUOnly
		if r.GPUOnly > worst {
			worst = r.GPUOnly
		}
		if r.Dynamic > worst {
			t.Errorf("%s: dynamic %g worse than worst default %g", r.Program, r.Dynamic, worst)
		}
	}
	dyn, def := DynamicGeoMeans(rows)
	if dyn <= 0 || def <= 0 {
		t.Error("geomeans empty")
	}
}

func TestDynamicComparisonErrors(t *testing.T) {
	if _, err := DynamicComparison("mc9", []string{"vecadd"}, 10); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := DynamicComparison("mc1", []string{"nope"}, 10); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestTwoStageModelOnDB(t *testing.T) {
	db := testDB(t)
	data := db.Dataset("mc2", nil)
	cv, err := ml.LeaveOneGroupOut(data, TwoStageModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Folds) == 0 {
		t.Fatal("no folds")
	}
	// Every prediction must be a valid class of the 66-way space.
	for _, fold := range cv.Folds {
		for _, p := range fold.Predicted {
			if p < 0 || p >= 66 {
				t.Fatalf("prediction %d outside partition space", p)
			}
		}
	}
}

func TestFigure1WithTwoStage(t *testing.T) {
	db := testDB(t)
	res, err := Figure1(db, "mc1", TwoStageModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOracleEff < 0.4 {
		t.Errorf("two-stage oracle efficiency %.2f too low", res.MeanOracleEff)
	}
}
