package harness

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// benchDefault returns the canonical default size index of a program.
func benchDefault(program string) int {
	p, err := bench.Get(program)
	if err != nil {
		return 0
	}
	return p.DefaultSize
}

// StepRow is one cell of the partition-step ablation (T7): the oracle
// makespan achievable when the partition grid uses the given step count.
type StepRow struct {
	Program    string
	Platform   string
	Steps      int     // share units (10 = the paper's 10% step)
	SpaceSize  int     // number of candidate partitionings
	OracleTime float64 // best achievable makespan on that grid
}

// StepAblation reproduces T7: how much oracle quality depends on the
// discretization step. Finer grids can only improve the oracle; the
// experiment quantifies by how much, justifying the paper's 10% choice.
// Sizes are evaluated at each program's default size. Programs are
// processed by concurrent workers (profiles come from the shared cache,
// the oracle search itself is parallel) and rows are joined in input
// order, so the output matches a sequential run.
func StepAblation(platformName string, programs []string, stepsList []int) ([]StepRow, error) {
	plat, err := device.ByName(platformName)
	if err != nil {
		return nil, err
	}
	for _, steps := range stepsList {
		if steps <= 0 {
			return nil, fmt.Errorf("harness: invalid step count %d", steps)
		}
	}
	// Divide the worker budget between the program-level fan-out and the
	// inner stages (profiling, oracle search): with few programs the
	// inner parallelism fills the idle budget; with many programs the
	// fan-out saturates it and inner stages run sequentially.
	rt := runtime.New(plat)
	outer, inner := splitBudget(0, len(programs))
	rt.Workers = inner
	perProgram, err := sched.Map(context.Background(), len(programs), outer,
		func(_ context.Context, i int) ([]StepRow, error) {
			name := programs[i]
			p, err := bench.Get(name)
			if err != nil {
				return nil, err
			}
			l, _, err := p.Build(p.DefaultSize)
			if err != nil {
				return nil, err
			}
			prof, err := sharedProfiles.Profile(rt, name, p.DefaultSize, l)
			if err != nil {
				return nil, err
			}
			var out []StepRow
			for _, steps := range stepsList {
				// Every program prices the same grids; share the memoized
				// enumerations instead of re-generating them per cell.
				space := partition.SharedSpace(plat.NumDevices(), steps)
				_, best, err := rt.BestIn(l, prof, space)
				if err != nil {
					return nil, err
				}
				out = append(out, StepRow{
					Program:    name,
					Platform:   platformName,
					Steps:      steps,
					SpaceSize:  len(space),
					OracleTime: best,
				})
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	var out []StepRow
	for _, rows := range perProgram {
		out = append(out, rows...)
	}
	return out, nil
}
