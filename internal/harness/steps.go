package harness

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// benchDefault returns the canonical default size index of a program.
func benchDefault(program string) int {
	p, err := bench.Get(program)
	if err != nil {
		return 0
	}
	return p.DefaultSize
}

// StepRow is one cell of the partition-step ablation (T7): the oracle
// makespan achievable when the partition grid uses the given step count.
type StepRow struct {
	Program    string
	Platform   string
	Steps      int     // share units (10 = the paper's 10% step)
	SpaceSize  int     // number of candidate partitionings
	OracleTime float64 // best achievable makespan on that grid
}

// StepAblation reproduces T7: how much oracle quality depends on the
// discretization step. Finer grids can only improve the oracle; the
// experiment quantifies by how much, justifying the paper's 10% choice.
// Sizes are evaluated at each program's default size.
func StepAblation(platformName string, programs []string, stepsList []int) ([]StepRow, error) {
	plat, err := device.ByName(platformName)
	if err != nil {
		return nil, err
	}
	rt := runtime.New(plat)
	var out []StepRow
	for _, name := range programs {
		p, err := bench.Get(name)
		if err != nil {
			return nil, err
		}
		l, _, err := p.Build(p.DefaultSize)
		if err != nil {
			return nil, err
		}
		prof, err := rt.Profile(l)
		if err != nil {
			return nil, err
		}
		for _, steps := range stepsList {
			if steps <= 0 {
				return nil, fmt.Errorf("harness: invalid step count %d", steps)
			}
			space := partition.Space(plat.NumDevices(), steps)
			best := -1.0
			for _, part := range space {
				tm, _, err := rt.Price(l, prof, part)
				if err != nil {
					return nil, err
				}
				if best < 0 || tm < best {
					best = tm
				}
			}
			out = append(out, StepRow{
				Program:    name,
				Platform:   platformName,
				Steps:      steps,
				SpaceSize:  len(space),
				OracleTime: best,
			})
		}
	}
	return out, nil
}
