package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
)

// DefaultModel builds the framework's default predictor (MLP, matching the
// Insieme line of work). Seed fixes initialization for reproducibility.
func DefaultModel() ml.NewModel {
	return func() ml.Classifier { return ml.NewMLP(32, 42) }
}

// FastModel is a cheaper model used by tests and quick runs.
func FastModel() ml.NewModel {
	return func() ml.Classifier { return ml.NewKNN(5) }
}

// ---------------------------------------------------------------------------
// Figure 1: speedup of ML-guided partitioning over CPU-only and GPU-only.
// ---------------------------------------------------------------------------

// Fig1Row is one program's bars in Figure 1 for one platform.
type Fig1Row struct {
	Program      string
	Predicted    string  // predicted partition (CPU/GPU1/GPU2 percentages)
	Oracle       string  // oracle partition
	PredTime     float64 // simulated seconds under the predicted partitioning
	OracleTime   float64
	SpeedupVsCPU float64 // CPUOnlyTime / PredTime
	SpeedupVsGPU float64 // GPUOnlyTime / PredTime
	OracleEff    float64 // OracleTime / PredTime (1 = perfect prediction)
}

// Fig1Result is Figure 1 for one platform.
type Fig1Result struct {
	Platform      string
	SizeLabel     string
	Rows          []Fig1Row
	GeoMeanVsCPU  float64
	GeoMeanVsGPU  float64
	MeanOracleEff float64
}

// Figure1 reproduces the paper's Figure 1 for one platform: for every
// program, a model is trained on the remaining programs' records (all
// problem sizes, leave-one-program-out — the deployment scenario) and
// predicts the partitioning at the program's default size. Speedups
// compare against the CPU-only and GPU-only default strategies.
func Figure1(db *DB, platform string, mk ml.NewModel) (*Fig1Result, error) {
	data := db.Dataset(platform, nil)
	if data.Len() == 0 {
		return nil, fmt.Errorf("harness: no records for platform %q", platform)
	}
	cv, err := ml.LeaveOneGroupOut(data, mk)
	if err != nil {
		return nil, err
	}
	recs := db.PlatformRecords(platform)
	res := &Fig1Result{Platform: platform}
	gmCPU, gmGPU, effSum := 0.0, 0.0, 0.0
	for _, fold := range cv.Folds {
		// Pick the held-out sample at the program's default size.
		var row *Fig1Row
		for fi, ti := range fold.TestIdx {
			r := recs[ti]
			def, err := defaultSizeIdx(db, platform, r.Program)
			if err != nil {
				return nil, err
			}
			if r.SizeIdx != def {
				continue
			}
			cls := fold.Predicted[fi]
			if cls < 0 || cls >= len(r.Times) {
				cls = 0
			}
			predTime := r.Times[cls]
			row = &Fig1Row{
				Program:      r.Program,
				Predicted:    db.Space[cls],
				Oracle:       r.BestPartition,
				PredTime:     predTime,
				OracleTime:   r.OracleTime,
				SpeedupVsCPU: r.CPUOnlyTime / predTime,
				SpeedupVsGPU: r.GPUOnlyTime / predTime,
				OracleEff:    r.OracleTime / predTime,
			}
			res.SizeLabel = r.SizeLabel
		}
		if row == nil {
			return nil, fmt.Errorf("harness: no default-size record for group %q", fold.Group)
		}
		res.Rows = append(res.Rows, *row)
		gmCPU += math.Log(row.SpeedupVsCPU)
		gmGPU += math.Log(row.SpeedupVsGPU)
		effSum += row.OracleEff
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Program < res.Rows[j].Program })
	n := float64(len(res.Rows))
	res.GeoMeanVsCPU = math.Exp(gmCPU / n)
	res.GeoMeanVsGPU = math.Exp(gmGPU / n)
	res.MeanOracleEff = effSum / n
	return res, nil
}

// defaultSizeIdx returns the benchmark's default size index, capped to the
// sizes actually present in the database (reduced test databases). Both
// lookups go through the database's O(1) index.
func defaultSizeIdx(db *DB, platform, program string) (int, error) {
	maxIdx, ok := db.MaxSizeIdx(platform, program)
	if !ok {
		return 0, fmt.Errorf("harness: program %q not in database for %q", program, platform)
	}
	if def := benchDefault(program); db.Find(platform, program, def) != nil {
		return def, nil
	}
	// Prefer the largest generated size if the canonical default is missing.
	return maxIdx, nil
}

// ---------------------------------------------------------------------------
// T2: defaults asymmetry — which default wins where (paper claim C2).
// ---------------------------------------------------------------------------

// DefaultsRow summarizes CPU-only vs GPU-only on one platform.
type DefaultsRow struct {
	Platform   string
	CPUWins    int // records where CPU-only beats GPU-only
	GPUWins    int
	MeanCPUGPU float64 // geomean of GPUOnlyTime/CPUOnlyTime (>1: CPU better)
}

// DefaultsAsymmetry computes T2 over all records of each platform.
func DefaultsAsymmetry(db *DB, platforms []string) []DefaultsRow {
	var out []DefaultsRow
	for _, plat := range platforms {
		row := DefaultsRow{Platform: plat}
		logSum, n := 0.0, 0
		for _, r := range db.PlatformRecords(plat) {
			if r.CPUOnlyTime < r.GPUOnlyTime {
				row.CPUWins++
			} else {
				row.GPUWins++
			}
			logSum += math.Log(r.GPUOnlyTime / r.CPUOnlyTime)
			n++
		}
		if n > 0 {
			row.MeanCPUGPU = math.Exp(logSum / float64(n))
		}
		out = append(out, row)
	}
	return out
}

// ---------------------------------------------------------------------------
// T3: problem-size sensitivity of the oracle partitioning (claim C1).
// ---------------------------------------------------------------------------

// SizeRow is the oracle partitioning of one program across problem sizes.
type SizeRow struct {
	Program    string
	Platform   string
	PerSize    []string  // oracle partition per size label
	SizeLabels []string  // matching labels
	GPUShare   []float64 // GPU fraction per size (0..1)
}

// SizeSensitivity computes T3 for the given programs on one platform.
func SizeSensitivity(db *DB, platform string, programs []string) ([]SizeRow, error) {
	var out []SizeRow
	for _, prog := range programs {
		row := SizeRow{Program: prog, Platform: platform}
		for sz := 0; sz <= 5; sz++ {
			r := db.Find(platform, prog, sz)
			if r == nil {
				continue
			}
			row.PerSize = append(row.PerSize, r.BestPartition)
			row.SizeLabels = append(row.SizeLabels, r.SizeLabel)
			row.GPUShare = append(row.GPUShare, gpuShareOf(r.BestPartition))
		}
		if len(row.PerSize) == 0 {
			return nil, fmt.Errorf("harness: no records for %s on %s", prog, platform)
		}
		out = append(out, row)
	}
	return out, nil
}

// gpuShareOf parses "c/g1/g2" and returns (g1+g2)/100.
func gpuShareOf(p string) float64 {
	var c, g1, g2 int
	fmt.Sscanf(p, "%d/%d/%d", &c, &g1, &g2)
	return float64(g1+g2) / 100
}

// ---------------------------------------------------------------------------
// T4: model comparison under leave-one-program-out CV.
// ---------------------------------------------------------------------------

// ModelRow reports one model family's quality on one platform.
type ModelRow struct {
	Model     string
	Platform  string
	Accuracy  float64 // exact-label accuracy (66 classes; strict)
	OracleEff float64 // mean oracle/predicted time ratio (1 = oracle)
	VsCPU     float64 // geomean speedup of predicted vs CPU-only
	VsGPU     float64
}

// CompareModels runs T4: each model family cross-validated on the platform.
func CompareModels(db *DB, platform string, models map[string]ml.NewModel) ([]ModelRow, error) {
	data := db.Dataset(platform, nil)
	recs := db.PlatformRecords(platform)
	var names []string
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []ModelRow
	for _, name := range names {
		cv, err := ml.LeaveOneGroupOut(data, models[name])
		if err != nil {
			return nil, err
		}
		row := ModelRow{Model: name, Platform: platform, Accuracy: cv.Accuracy()}
		effSum, cpuLog, gpuLog, n := 0.0, 0.0, 0.0, 0
		for _, fold := range cv.Folds {
			for fi, ti := range fold.TestIdx {
				r := recs[ti]
				cls := fold.Predicted[fi]
				if cls < 0 || cls >= len(r.Times) {
					cls = 0
				}
				pt := r.Times[cls]
				effSum += r.OracleTime / pt
				cpuLog += math.Log(r.CPUOnlyTime / pt)
				gpuLog += math.Log(r.GPUOnlyTime / pt)
				n++
			}
		}
		row.OracleEff = effSum / float64(n)
		row.VsCPU = math.Exp(cpuLog / float64(n))
		row.VsGPU = math.Exp(gpuLog / float64(n))
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// T5: feature-class ablation (static-only / runtime-only / combined).
// ---------------------------------------------------------------------------

// AblationRow reports prediction quality for one feature subset.
type AblationRow struct {
	Features  string
	Platform  string
	Accuracy  float64
	OracleEff float64
}

// FeatureAblation runs T5 with the given model on one platform.
func FeatureAblation(db *DB, platform string, mk ml.NewModel) ([]AblationRow, error) {
	subsets := []struct {
		name   string
		filter func(string) bool
	}{
		{"static-only", func(n string) bool { return n[0] == 's' }},
		{"runtime-only", func(n string) bool { return n[0] == 'r' }},
		{"combined", nil},
	}
	recs := db.PlatformRecords(platform)
	var out []AblationRow
	for _, sub := range subsets {
		data := db.Dataset(platform, sub.filter)
		cv, err := ml.LeaveOneGroupOut(data, mk)
		if err != nil {
			return nil, err
		}
		row := AblationRow{Features: sub.name, Platform: platform, Accuracy: cv.Accuracy()}
		effSum, n := 0.0, 0
		for _, fold := range cv.Folds {
			for fi, ti := range fold.TestIdx {
				r := recs[ti]
				cls := fold.Predicted[fi]
				if cls < 0 || cls >= len(r.Times) {
					cls = 0
				}
				effSum += r.OracleTime / r.Times[cls]
				n++
			}
		}
		row.OracleEff = effSum / float64(n)
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// T6: oracle gap — how much the best partitioning beats the best single
// device, and how close prediction gets.
// ---------------------------------------------------------------------------

// OracleGapRow summarizes the headroom multi-device partitioning offers.
type OracleGapRow struct {
	Platform string
	// MeanOracleVsBestSingle is the geomean of bestSingleDevice/oracle
	// (>1 means partitioning beats any single device).
	MeanOracleVsBestSingle float64
	// FracMultiDevice is the fraction of records whose oracle uses >1 device.
	FracMultiDevice float64
	// FracSizeDependent is the fraction of programs whose oracle
	// partitioning changes across problem sizes (claim C1).
	FracSizeDependent float64
}

// OracleGap computes T6 for one platform.
func OracleGap(db *DB, platform string) OracleGapRow {
	recs := db.PlatformRecords(platform)
	row := OracleGapRow{Platform: platform}
	logSum, n, multi := 0.0, 0, 0
	perProgram := map[string]map[string]bool{}
	for _, r := range recs {
		single := math.Min(r.CPUOnlyTime, r.GPUOnlyTime)
		logSum += math.Log(single / r.OracleTime)
		n++
		if gpuShareOf(r.BestPartition) > 0 && gpuShareOf(r.BestPartition) < 1 {
			multi++
		}
		if perProgram[r.Program] == nil {
			perProgram[r.Program] = map[string]bool{}
		}
		perProgram[r.Program][r.BestPartition] = true
	}
	if n > 0 {
		row.MeanOracleVsBestSingle = math.Exp(logSum / float64(n))
		row.FracMultiDevice = float64(multi) / float64(n)
	}
	changed := 0
	for _, parts := range perProgram {
		if len(parts) > 1 {
			changed++
		}
	}
	if len(perProgram) > 0 {
		row.FracSizeDependent = float64(changed) / float64(len(perProgram))
	}
	return row
}
