package harness

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/ml"
)

// testDB builds a small database once per test run: 8 diverse programs at
// the first 3 problem sizes on both platforms.
var testDBCache *DB

func testDB(t *testing.T) *DB {
	t.Helper()
	if testDBCache != nil {
		return testDBCache
	}
	db, err := Generate(GenOptions{
		Programs: []string{
			"vecadd", "matmul", "blackscholes", "spmv",
			"mandelbrot", "reduction", "stencil2d", "nbody",
		},
		MaxSizeIdx: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	testDBCache = db
	return db
}

func TestGenerateShape(t *testing.T) {
	db := testDB(t)
	// 8 programs x 3 sizes x 2 platforms.
	if got := len(db.Records); got != 48 {
		t.Fatalf("got %d records, want 48", got)
	}
	if len(db.Space) != 66 {
		t.Fatalf("space size %d, want 66", len(db.Space))
	}
	for _, r := range db.Records {
		if len(r.Times) != 66 {
			t.Fatalf("%s: %d times", r.Program, len(r.Times))
		}
		if r.OracleTime <= 0 {
			t.Errorf("%s/%s: zero oracle time", r.Program, r.SizeLabel)
		}
		for _, tm := range r.Times {
			if tm < r.OracleTime*0.999999 {
				t.Errorf("%s: time %g below oracle %g", r.Program, tm, r.OracleTime)
			}
		}
		if r.BestPartition != db.Space[r.BestClass] {
			t.Errorf("%s: label/partition mismatch", r.Program)
		}
		if r.CPUOnlyTime < r.OracleTime || r.GPUOnlyTime < r.OracleTime {
			t.Errorf("%s: default beats oracle", r.Program)
		}
		if len(r.Features) != len(r.FeatureNames) {
			t.Errorf("%s: feature shape mismatch", r.Program)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	db1, err := Generate(GenOptions{Programs: []string{"vecadd"}, MaxSizeIdx: 1})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Generate(GenOptions{Programs: []string{"vecadd"}, MaxSizeIdx: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range db1.Records {
		r1, r2 := db1.Records[i], db2.Records[i]
		if r1.BestClass != r2.BestClass || r1.OracleTime != r2.OracleTime {
			t.Fatal("Generate is not deterministic")
		}
		for j := range r1.Features {
			if r1.Features[j] != r2.Features[j] {
				t.Fatal("features differ between runs")
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "db.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != len(db.Records) {
		t.Fatalf("loaded %d records, want %d", len(loaded.Records), len(db.Records))
	}
	if loaded.Records[3].BestPartition != db.Records[3].BestPartition {
		t.Error("round trip lost labels")
	}
}

func TestFigure1SmallDB(t *testing.T) {
	db := testDB(t)
	for _, plat := range []string{"mc1", "mc2"} {
		res, err := Figure1(db, plat, FastModel())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 8 {
			t.Fatalf("%s: %d rows, want 8", plat, len(res.Rows))
		}
		for _, row := range res.Rows {
			if row.PredTime <= 0 {
				t.Errorf("%s/%s: zero predicted time", plat, row.Program)
			}
			if row.OracleEff > 1.0000001 {
				t.Errorf("%s/%s: oracle efficiency %g > 1", plat, row.Program, row.OracleEff)
			}
		}
		// The predicted partitioning must not be catastrophically worse
		// than the oracle on average even with the fast model.
		if res.MeanOracleEff < 0.4 {
			t.Errorf("%s: mean oracle efficiency %.2f too low", plat, res.MeanOracleEff)
		}
	}
}

func TestDefaultsAsymmetry(t *testing.T) {
	db := testDB(t)
	rows := DefaultsAsymmetry(db, []string{"mc1", "mc2"})
	if len(rows) != 2 {
		t.Fatal("want 2 platforms")
	}
	mc1, mc2 := rows[0], rows[1]
	// Claim C2: CPU-only stronger on mc1 than on mc2, relatively.
	if mc1.MeanCPUGPU <= mc2.MeanCPUGPU {
		t.Errorf("defaults asymmetry inverted: mc1 %.2f, mc2 %.2f (want mc1 > mc2)",
			mc1.MeanCPUGPU, mc2.MeanCPUGPU)
	}
	if mc1.CPUWins+mc1.GPUWins != 24 {
		t.Errorf("mc1 covers %d records, want 24", mc1.CPUWins+mc1.GPUWins)
	}
}

func TestSizeSensitivity(t *testing.T) {
	db := testDB(t)
	rows, err := SizeSensitivity(db, "mc2", []string{"matmul", "blackscholes", "mandelbrot"})
	if err != nil {
		t.Fatal(err)
	}
	// Claim C1: at least one program's oracle partitioning must change
	// with the problem size.
	changed := false
	for _, row := range rows {
		for i := 1; i < len(row.PerSize); i++ {
			if row.PerSize[i] != row.PerSize[0] {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("no program's oracle partitioning changes with size (claim C1 not visible)")
	}
}

func TestCompareModels(t *testing.T) {
	db := testDB(t)
	models := map[string]ml.NewModel{
		"knn":    func() ml.Classifier { return ml.NewKNN(5) },
		"dtree":  func() ml.Classifier { return ml.NewTree() },
		"logreg": func() ml.Classifier { return ml.NewLogReg(42) },
	}
	rows, err := CompareModels(db, "mc2", models)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.OracleEff <= 0 || row.OracleEff > 1.0000001 {
			t.Errorf("%s: oracle efficiency %g out of (0,1]", row.Model, row.OracleEff)
		}
		if row.Accuracy < 0 || row.Accuracy > 1 {
			t.Errorf("%s: accuracy %g", row.Model, row.Accuracy)
		}
	}
}

func TestFeatureAblation(t *testing.T) {
	db := testDB(t)
	rows, err := FeatureAblation(db, "mc2", FastModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Features] = r
	}
	// Static-only cannot distinguish problem sizes: for programs whose
	// best partitioning is size-dependent it must not beat combined.
	if byName["static-only"].OracleEff > byName["combined"].OracleEff+0.05 {
		t.Errorf("static-only (%.3f) outperforms combined (%.3f)",
			byName["static-only"].OracleEff, byName["combined"].OracleEff)
	}
}

func TestOracleGap(t *testing.T) {
	db := testDB(t)
	for _, plat := range []string{"mc1", "mc2"} {
		row := OracleGap(db, plat)
		if row.MeanOracleVsBestSingle < 1 {
			t.Errorf("%s: oracle worse than best single device (%.3f)", plat, row.MeanOracleVsBestSingle)
		}
		if row.FracSizeDependent == 0 {
			t.Errorf("%s: no size-dependent programs", plat)
		}
	}
}

func TestStepAblation(t *testing.T) {
	rows, err := StepAblation("mc2", []string{"vecadd"}, []int{4, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Finer grids can only match or improve the oracle.
	bySteps := map[int]float64{}
	for _, r := range rows {
		bySteps[r.Steps] = r.OracleTime
	}
	if bySteps[20] > bySteps[10]*1.000001 || bySteps[10] > bySteps[4]*1.000001 {
		t.Errorf("finer grid worsened oracle: %v", bySteps)
	}
	if rows[0].SpaceSize >= rows[1].SpaceSize {
		t.Error("space size should grow with steps")
	}
}

func TestDatasetFilter(t *testing.T) {
	db := testDB(t)
	all := db.Dataset("mc1", nil)
	static := db.Dataset("mc1", func(n string) bool { return n[0] == 's' })
	if static.Dim() >= all.Dim() {
		t.Errorf("filtered dim %d not smaller than %d", static.Dim(), all.Dim())
	}
	if static.Len() != all.Len() {
		t.Error("filter changed sample count")
	}
	if math.IsNaN(static.X[0][0]) {
		t.Error("NaN in filtered dataset")
	}
}
