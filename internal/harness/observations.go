package harness

import (
	"fmt"

	"repro/internal/obs"
)

// ObservationRecord converts one labeled observation into a training
// record for a database whose class space is space. The observation must
// be labeled (its measured-best class sampled), verified, and carry the
// complete feature vector and per-class time vector — i.e. everything
// the offline sweep would have produced for the same (program, size)
// cell. The deployment engine records exactly this shape, so serving
// traffic and Generate feed one training pipeline.
func ObservationRecord(space []string, o obs.Observation) (Record, error) {
	if !o.Labeled {
		return Record{}, fmt.Errorf("harness: observation %d (%s/%d) is unlabeled", o.Seq, o.Program, o.SizeIdx)
	}
	if !o.Verified {
		return Record{}, fmt.Errorf("harness: observation %d (%s/%d) failed output verification", o.Seq, o.Program, o.SizeIdx)
	}
	if len(o.Times) != len(space) {
		return Record{}, fmt.Errorf("harness: observation %d prices %d classes, space has %d", o.Seq, len(o.Times), len(space))
	}
	if o.BestClass < 0 || o.BestClass >= len(space) {
		return Record{}, fmt.Errorf("harness: observation %d best class %d outside space", o.Seq, o.BestClass)
	}
	if len(o.FeatureNames) == 0 || len(o.Features) != len(o.FeatureNames) {
		return Record{}, fmt.Errorf("harness: observation %d has %d features for %d names", o.Seq, len(o.Features), len(o.FeatureNames))
	}
	return Record{
		Program:       o.Program,
		Suite:         o.Suite,
		Platform:      o.Platform,
		SizeIdx:       o.SizeIdx,
		SizeLabel:     o.SizeLabel,
		SizeN:         o.SizeN,
		FeatureNames:  append([]string{}, o.FeatureNames...),
		Features:      append([]float64{}, o.Features...),
		Times:         append([]float64{}, o.Times...),
		BestClass:     o.BestClass,
		BestPartition: space[o.BestClass],
		OracleTime:    o.OracleTime,
		CPUOnlyTime:   o.CPUOnlyTime,
		GPUOnlyTime:   o.GPUOnlyTime,
	}, nil
}

// ObservationRecords converts every eligible observation for the given
// platform ("" = all platforms), skipping the rest: unlabeled or
// unverified observations, other platforms, and feature schemas that do
// not match wantNames (nil = accept any single schema, pinned by the
// first eligible observation). Returns the records and how many
// observations were skipped.
//
// Skipping rather than failing is deliberate: an observation log may mix
// platforms and span binary versions with different feature schemas; the
// caller trains on the consistent subset and reports the rest.
func ObservationRecords(space []string, wantNames []string, platform string, list []obs.Observation) (recs []Record, skipped int) {
	for _, o := range list {
		if platform != "" && o.Platform != platform {
			skipped++
			continue
		}
		rec, err := ObservationRecord(space, o)
		if err != nil {
			skipped++
			continue
		}
		if wantNames == nil {
			wantNames = rec.FeatureNames
		}
		if !sameNames(rec.FeatureNames, wantNames) {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	return recs, skipped
}

// sameNames reports whether two feature schemas are identical (same
// names, same order — positional feature vectors tolerate nothing less).
func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AppendObservations merges a log's labeled observations into the
// database as first-class training records (the offline
// `train -from-observations` path). Observations must match the
// database's feature schema when the database already has records; the
// lookup indexes stay coherent (Find keeps preferring the original
// sweep's record for a cell both sources cover — measured-on-sweep data
// is the reference, observations extend coverage). Returns how many
// records were added and how many observations were skipped.
func (db *DB) AppendObservations(list []obs.Observation) (added, skipped int) {
	var wantNames []string
	db.mu.RLock()
	if len(db.Records) > 0 {
		wantNames = db.Records[0].FeatureNames
	}
	space := db.Space
	db.mu.RUnlock()
	recs, skipped := ObservationRecords(space, wantNames, "", list)
	db.Append(recs...)
	return len(recs), skipped
}
