package harness

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal text table writer for experiment reports.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// WriteFigure1 renders a Fig1Result as the paper's Figure 1 rows.
func WriteFigure1(w io.Writer, res *Fig1Result) {
	fmt.Fprintf(w, "Figure 1 — speedup of ML-guided partitioning (platform %s, default sizes)\n", res.Platform)
	tb := newTable("program", "predicted", "oracle", "vs CPU-only", "vs GPU-only", "oracle-eff")
	for _, r := range res.Rows {
		tb.add(r.Program, r.Predicted, r.Oracle,
			fmt.Sprintf("%.2fx", r.SpeedupVsCPU),
			fmt.Sprintf("%.2fx", r.SpeedupVsGPU),
			fmt.Sprintf("%.2f", r.OracleEff))
	}
	tb.add("GEOMEAN", "", "",
		fmt.Sprintf("%.2fx", res.GeoMeanVsCPU),
		fmt.Sprintf("%.2fx", res.GeoMeanVsGPU),
		fmt.Sprintf("%.2f", res.MeanOracleEff))
	tb.write(w)
}

// WriteDefaults renders the T2 defaults-asymmetry table.
func WriteDefaults(w io.Writer, rows []DefaultsRow) {
	fmt.Fprintln(w, "T2 — default strategy asymmetry (all programs x sizes)")
	tb := newTable("platform", "CPU-only wins", "GPU-only wins", "geomean GPU/CPU time")
	for _, r := range rows {
		tb.add(r.Platform,
			fmt.Sprintf("%d", r.CPUWins),
			fmt.Sprintf("%d", r.GPUWins),
			fmt.Sprintf("%.2f", r.MeanCPUGPU))
	}
	tb.write(w)
	fmt.Fprintln(w, "  (>1: CPU-only faster on average; <1: GPU-only faster)")
}

// WriteSizeSensitivity renders the T3 oracle-partitioning-vs-size table.
func WriteSizeSensitivity(w io.Writer, rows []SizeRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "T3 — oracle partitioning vs problem size (platform %s, CPU/GPU1/GPU2)\n", rows[0].Platform)
	header := append([]string{"program"}, rows[0].SizeLabels...)
	tb := newTable(header...)
	for _, r := range rows {
		tb.add(append([]string{r.Program}, r.PerSize...)...)
	}
	tb.write(w)
}

// WriteModels renders the T4 model-comparison table.
func WriteModels(w io.Writer, rows []ModelRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "T4 — model comparison, leave-one-program-out (platform %s)\n", rows[0].Platform)
	tb := newTable("model", "label accuracy", "oracle-eff", "vs CPU-only", "vs GPU-only")
	for _, r := range rows {
		tb.add(r.Model,
			fmt.Sprintf("%.2f", r.Accuracy),
			fmt.Sprintf("%.2f", r.OracleEff),
			fmt.Sprintf("%.2fx", r.VsCPU),
			fmt.Sprintf("%.2fx", r.VsGPU))
	}
	tb.write(w)
}

// WriteAblation renders the T5 feature-ablation table.
func WriteAblation(w io.Writer, rows []AblationRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "T5 — feature-class ablation (platform %s)\n", rows[0].Platform)
	tb := newTable("features", "label accuracy", "oracle-eff")
	for _, r := range rows {
		tb.add(r.Features, fmt.Sprintf("%.2f", r.Accuracy), fmt.Sprintf("%.2f", r.OracleEff))
	}
	tb.write(w)
}

// WriteOracleGap renders the T6 oracle-gap summary.
func WriteOracleGap(w io.Writer, rows []OracleGapRow) {
	fmt.Fprintln(w, "T6 — oracle headroom over the best single device")
	tb := newTable("platform", "oracle vs best-single", "multi-device oracles", "size-dependent programs")
	for _, r := range rows {
		tb.add(r.Platform,
			fmt.Sprintf("%.2fx", r.MeanOracleVsBestSingle),
			fmt.Sprintf("%.0f%%", r.FracMultiDevice*100),
			fmt.Sprintf("%.0f%%", r.FracSizeDependent*100))
	}
	tb.write(w)
}

// WriteDynamic renders the T8 dynamic-vs-learned comparison.
func WriteDynamic(w io.Writer, rows []DynamicRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "T8 — dynamic chunk scheduler vs static oracle (platform %s, default sizes)\n", rows[0].Platform)
	tb := newTable("program", "dynamic", "static oracle", "dyn/oracle", "CPU-only", "GPU-only")
	for _, r := range rows {
		tb.add(r.Program,
			fmt.Sprintf("%.4g ms", r.Dynamic*1e3),
			fmt.Sprintf("%.4g ms", r.Oracle*1e3),
			fmt.Sprintf("%.2fx", r.Dynamic/r.Oracle),
			fmt.Sprintf("%.4g ms", r.CPUOnly*1e3),
			fmt.Sprintf("%.4g ms", r.GPUOnly*1e3))
	}
	dyn, def := DynamicGeoMeans(rows)
	tb.add("GEOMEAN", "", "", fmt.Sprintf("%.2fx", dyn), "", fmt.Sprintf("best-default %.2fx", def))
	tb.write(w)
}

// WriteSteps renders the T7 step-size ablation.
func WriteSteps(w io.Writer, rows []StepRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "T7 — partition grid step ablation (platform %s, default sizes)\n", rows[0].Platform)
	tb := newTable("program", "steps", "candidates", "oracle time")
	for _, r := range rows {
		tb.add(r.Program,
			fmt.Sprintf("%d", r.Steps),
			fmt.Sprintf("%d", r.SpaceSize),
			fmt.Sprintf("%.4g ms", r.OracleTime*1e3))
	}
	tb.write(w)
}
