package harness

import (
	"strings"
	"testing"

	"repro/internal/ml"
)

func TestWriteFigure1Format(t *testing.T) {
	db := testDB(t)
	res, err := Figure1(db, "mc2", FastModel())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteFigure1(&sb, res)
	out := sb.String()
	for _, want := range []string{"Figure 1", "mc2", "GEOMEAN", "vs CPU-only", "vs GPU-only", "vecadd"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, out)
		}
	}
	// One row per program plus header, separator and geomean.
	lines := strings.Count(out, "\n")
	if lines < len(res.Rows)+3 {
		t.Errorf("only %d lines for %d rows", lines, len(res.Rows))
	}
}

func TestWriteTablesSmoke(t *testing.T) {
	db := testDB(t)
	var sb strings.Builder

	WriteDefaults(&sb, DefaultsAsymmetry(db, []string{"mc1", "mc2"}))
	if !strings.Contains(sb.String(), "T2") {
		t.Error("T2 header missing")
	}

	sb.Reset()
	rows, err := SizeSensitivity(db, "mc1", []string{"vecadd", "matmul"})
	if err != nil {
		t.Fatal(err)
	}
	WriteSizeSensitivity(&sb, rows)
	if !strings.Contains(sb.String(), "oracle partitioning vs problem size") {
		t.Error("T3 header missing")
	}

	sb.Reset()
	ab, err := FeatureAblation(db, "mc1", FastModel())
	if err != nil {
		t.Fatal(err)
	}
	WriteAblation(&sb, ab)
	for _, want := range []string{"static-only", "runtime-only", "combined"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("T5 output missing %q", want)
		}
	}

	sb.Reset()
	WriteOracleGap(&sb, []OracleGapRow{OracleGap(db, "mc1")})
	if !strings.Contains(sb.String(), "T6") {
		t.Error("T6 header missing")
	}

	sb.Reset()
	st, err := StepAblation("mc1", []string{"vecadd"}, []int{4, 10})
	if err != nil {
		t.Fatal(err)
	}
	WriteSteps(&sb, st)
	if !strings.Contains(sb.String(), "T7") {
		t.Error("T7 header missing")
	}

	sb.Reset()
	dyn, err := DynamicComparison("mc1", []string{"vecadd"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	WriteDynamic(&sb, dyn)
	if !strings.Contains(sb.String(), "T8") {
		t.Error("T8 header missing")
	}

	sb.Reset()
	mr, err := CompareModels(db, "mc1", map[string]ml.NewModel{
		"knn": func() ml.Classifier { return ml.NewKNN(3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	WriteModels(&sb, mr)
	if !strings.Contains(sb.String(), "T4") {
		t.Error("T4 header missing")
	}
}
