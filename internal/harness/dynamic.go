package harness

import (
	"context"
	"math"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/ml"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// TwoStageModel builds the hierarchical predictor (gate: CPU-only /
// GPU-only / mixed, then a split classifier), wired to the canonical
// 3-device 10%-step partition space.
func TwoStageModel() ml.NewModel {
	space := partition.Space(3, partition.DefaultSteps)
	kindOf := func(class int) ml.StageKind {
		if class < 0 || class >= len(space) {
			return ml.StageMixed
		}
		idx, single := space[class].IsSingle()
		switch {
		case single && idx == device.CPUIndex:
			return ml.StageCPUOnly
		case single:
			return ml.StageGPUOnly
		default:
			return ml.StageMixed
		}
	}
	cpuClass := classOf(space, partition.Single(3, device.CPUIndex))
	gpuClass := classOf(space, partition.Single(3, 1))
	return func() ml.Classifier {
		return ml.NewTwoStage(kindOf, cpuClass, gpuClass,
			func() ml.Classifier { return ml.NewMLP(16, 42) },
			func() ml.Classifier { return ml.NewMLP(32, 43) })
	}
}

// DynamicRow is one cell of the T8 dynamic-vs-learned comparison.
type DynamicRow struct {
	Program  string
	Platform string
	// Times in simulated seconds.
	Dynamic float64 // StarPU-style greedy chunk scheduler (no training)
	Oracle  float64 // best static partitioning (exhaustive)
	CPUOnly float64
	GPUOnly float64
	// DynChunks is the scheduler's chunk count.
	DynChunks int
}

// DynamicComparison runs T8: the dynamic baseline against the static
// oracle for every requested program at its default size. Programs are
// processed by concurrent workers (profiles come from the shared cache)
// and rows are joined in input order, matching a sequential run.
func DynamicComparison(platformName string, programs []string, chunks int) ([]DynamicRow, error) {
	plat, err := device.ByName(platformName)
	if err != nil {
		return nil, err
	}
	// Divide the worker budget between the program-level fan-out and the
	// inner stages (profiling, oracle search): with few programs the
	// inner parallelism fills the idle budget; with many programs the
	// fan-out saturates it and inner stages run sequentially.
	rt := runtime.New(plat)
	outer, inner := splitBudget(0, len(programs))
	rt.Workers = inner
	return sched.Map(context.Background(), len(programs), outer,
		func(_ context.Context, i int) (DynamicRow, error) {
			name := programs[i]
			p, err := bench.Get(name)
			if err != nil {
				return DynamicRow{}, err
			}
			l, _, err := p.Build(p.DefaultSize)
			if err != nil {
				return DynamicRow{}, err
			}
			prof, err := sharedProfiles.Profile(rt, name, p.DefaultSize, l)
			if err != nil {
				return DynamicRow{}, err
			}
			dyn, err := rt.DynamicSchedule(l, prof, chunks)
			if err != nil {
				return DynamicRow{}, err
			}
			_, oracle, err := rt.Best(l, prof)
			if err != nil {
				return DynamicRow{}, err
			}
			cpu, _, err := rt.Price(l, prof, rt.CPUOnly())
			if err != nil {
				return DynamicRow{}, err
			}
			gpu, _, err := rt.Price(l, prof, rt.GPUOnly())
			if err != nil {
				return DynamicRow{}, err
			}
			return DynamicRow{
				Program:   name,
				Platform:  platformName,
				Dynamic:   dyn.Makespan,
				Oracle:    oracle,
				CPUOnly:   cpu,
				GPUOnly:   gpu,
				DynChunks: dyn.Chunks,
			}, nil
		})
}

// DynamicGeoMeans summarizes T8: geomean of dynamic/oracle and
// bestDefault/oracle.
func DynamicGeoMeans(rows []DynamicRow) (dynVsOracle, defaultVsOracle float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	sd, sb := 0.0, 0.0
	for _, r := range rows {
		sd += math.Log(r.Dynamic / r.Oracle)
		best := math.Min(r.CPUOnly, r.GPUOnly)
		sb += math.Log(best / r.Oracle)
	}
	n := float64(len(rows))
	return math.Exp(sd / n), math.Exp(sb / n)
}
