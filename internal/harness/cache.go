package harness

import (
	"repro/internal/exec"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// profileKey identifies one profiled execution: profiles depend only on
// the program's kernel, its input data (deterministic per size index) and
// the launch geometry — not on the platform the profile is later priced
// on.
type profileKey struct {
	Program string
	SizeIdx int
	ND      exec.NDRange
}

// ProfileCache memoizes profiled kernel executions keyed by (program,
// size, NDRange), so repeated sweeps — training-database generation, the
// step ablation, the dynamic-scheduler comparison, benchmark reruns —
// stop re-executing kernels they have already profiled. Concurrent
// requests for the same key share one execution (sched.Memo); it is safe
// for concurrent use by sweep workers and serving-path callers alike.
type ProfileCache struct {
	memo sched.Memo[profileKey, *exec.Profile]
}

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{}
}

// sharedProfiles is the package-wide cache used when callers do not
// supply their own.
var sharedProfiles = NewProfileCache()

// Profile returns the dynamic profile for the launch, executing the kernel
// only on the first request for its key. Concurrent requests for the same
// key block until the single execution finishes.
func (c *ProfileCache) Profile(rt *runtime.Runtime, program string, sizeIdx int, l runtime.Launch) (*exec.Profile, error) {
	key := profileKey{Program: program, SizeIdx: sizeIdx, ND: l.ND}
	return c.memo.Do(key, func() (*exec.Profile, error) {
		prof, err := rt.Profile(l)
		if err != nil {
			return nil, err
		}
		// Build the O(1) range index once here so every sweep cell
		// pricing this profile shares the prefix structure instead of
		// racing to construct it.
		prof.Precompute()
		return prof, nil
	})
}

// Len reports how many profiles the cache holds.
func (c *ProfileCache) Len() int { return c.memo.Len() }

// SetLimit caps the cache at n profiles with LRU-ish eviction (0 =
// unbounded, the default — batch sweeps want every profile kept). A
// long-lived serving process sets a cap so the cache cannot grow without
// bound.
func (c *ProfileCache) SetLimit(n int) { c.memo.SetLimit(n) }

// splitBudget divides a worker budget (0 = the scheduler's process-wide
// default) between an outer fan-out over n items and the inner work each
// item performs: outer concurrency is capped at n, and the remaining
// budget goes to each item's inner stages so total concurrency stays near
// the budget instead of multiplying or stranding cores.
func splitBudget(workers, n int) (outer, inner int) {
	budget := sched.Workers(workers)
	outer = budget
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}
