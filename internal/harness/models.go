package harness

import (
	"fmt"
	"sort"

	"repro/internal/ml"
)

// modelFamilies maps CLI-facing family names to constructors with the
// canonical hyperparameters used across the experiments.
var modelFamilies = map[string]ml.NewModel{
	"mlp":    DefaultModel(),
	"knn":    FastModel(),
	"tree":   func() ml.Classifier { return ml.NewTree() },
	"forest": func() ml.Classifier { return ml.NewForest(50, 42) },
	"logreg": func() ml.Classifier { return ml.NewLogReg(42) },
}

// ModelByName resolves a CLI model family name ("mlp", "knn", "tree",
// "forest", "logreg") to its constructor.
func ModelByName(name string) (ml.NewModel, error) {
	if mk, ok := modelFamilies[name]; ok {
		return mk, nil
	}
	return nil, fmt.Errorf("harness: unknown model family %q (have %v)", name, ModelNames())
}

// ModelNames lists the known model family names, sorted.
func ModelNames() []string {
	var out []string
	for name := range modelFamilies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
