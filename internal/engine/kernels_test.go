package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/harness"
)

const scaleSrc = `kernel void scale(global float* a, global float* out, int n) {
	int i = get_global_id(0);
	out[i] = a[i] * 2.0;
}`

// spinSrc loops forever; only a resource budget stops it.
const spinSrc = `kernel void spin(global float* out) {
	int i = 0;
	while (i < 2) {
		i = i - 1;
	}
	out[get_global_id(0)] = 1.0;
}`

// TestRegisterKernelEndToEnd: an uploaded kernel predicts and executes
// like a built-in under its tenant-qualified name.
func TestRegisterKernelEndToEnd(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	info, err := eng.RegisterKernel("", KernelSpec{Name: "scale", Source: scaleSrc})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "public/scale" || info.Tenant != DefaultTenant || info.Kernel != "scale" {
		t.Fatalf("info: %+v", info)
	}
	if got := eng.Stats().KernelsRegistered; got != 1 {
		t.Fatalf("KernelsRegistered = %d, want 1", got)
	}

	p, err := eng.Predict(Request{Program: "public/scale", SizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Partition == "" {
		t.Fatalf("prediction: %+v", p)
	}
	ex, err := eng.Execute(context.Background(), Request{Program: "public/scale", SizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Program != "public/scale" {
		t.Fatalf("execution: %+v", ex)
	}

	// Name collisions are ErrKernelExists; other tenants are disjoint.
	if _, err := eng.RegisterKernel("", KernelSpec{Name: "scale", Source: scaleSrc}); !errors.Is(err, ErrKernelExists) {
		t.Fatalf("duplicate register err = %v, want ErrKernelExists", err)
	}
	if _, err := eng.RegisterKernel("alice", KernelSpec{Name: "scale", Source: scaleSrc}); err != nil {
		t.Fatalf("other-tenant register: %v", err)
	}
	if got := len(eng.ListKernels()); got != 2 {
		t.Fatalf("ListKernels = %d entries, want 2", got)
	}
}

// TestExecuteCanceledMidKernel: a client hanging up mid-execution kills
// the kernel promptly with a deadline-kind budget abort — the hostile
// loop does not keep burning a worker.
func TestExecuteCanceledMidKernel(t *testing.T) {
	opts := fastOpts(t)
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterKernel("", KernelSpec{Name: "spin", Source: spinSrc}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Execute(ctx, Request{Program: "public/spin", SizeIdx: 0})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		var be *exec.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("err = %v (%T), want *exec.BudgetError", err, err)
		}
		if be.Kind != exec.BudgetDeadline {
			t.Fatalf("Kind = %q, want deadline", be.Kind)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled execution did not abort within 30s")
	}
	if got := eng.Stats().BudgetAbortsDeadline; got != 1 {
		t.Fatalf("BudgetAbortsDeadline = %d, want 1", got)
	}
}

// TestTenantConcurrencyCap: in-flight executions over the cap fail fast
// with a QuotaError carrying a Retry-After hint; releasing a slot
// restores service.
func TestTenantConcurrencyCap(t *testing.T) {
	opts := fastOpts(t)
	opts.Tenant = TenantLimits{MaxConcurrent: 2, RetryAfter: 3 * time.Second}
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the cap without running anything: hold the slots directly.
	rel1, err := eng.acquireTenantSlot("bob")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := eng.acquireTenantSlot("bob")
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0, Tenant: "bob"})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-cap err = %v, want *QuotaError", err)
	}
	if qe.Tenant != "bob" || qe.RetryAfter != 3*time.Second {
		t.Fatalf("quota error: %+v", qe)
	}
	if got := eng.Stats().QuotaRejections; got != 1 {
		t.Fatalf("QuotaRejections = %d, want 1", got)
	}
	// Other tenants are unaffected; and bob recovers once a slot frees.
	if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0, Tenant: "carol"}); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	rel1()
	if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0, Tenant: "bob"}); err != nil {
		t.Fatalf("after release: %v", err)
	}
	rel2()
}

// TestTenantConcurrencyCapRace hammers one capped tenant from many
// goroutines: every request either succeeds or fails with a QuotaError,
// and the engine never deadlocks or loses a slot.
func TestTenantConcurrencyCapRace(t *testing.T) {
	opts := fastOpts(t)
	opts.Tenant = TenantLimits{MaxConcurrent: 2}
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the program once so concurrent requests exercise the cap, not
	// the compile memo.
	if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0})
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range errs {
		if err == nil {
			ok++
			continue
		}
		var qe *QuotaError
		if !errors.As(err, &qe) {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	if ok == 0 {
		t.Fatal("every request was rejected; cap should admit up to 2 at a time")
	}
	// All slots returned: a fresh request succeeds.
	if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0}); err != nil {
		t.Fatalf("post-race request: %v", err)
	}
}

// TestKernelEvictionRecompiles: with a tiny program cache, an idle user
// kernel's compiled form is evicted (visible in stats) and transparently
// recompiled from its stored source on next use.
func TestKernelEvictionRecompiles(t *testing.T) {
	opts := Options{Platform: "mc2", DB: testDB(t), Model: harness.FastModel(), CacheLimit: 1}
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterKernel("", KernelSpec{Name: "scale", Source: scaleSrc}); err != nil {
		t.Fatal(err)
	}
	// Touch built-ins to push the user kernel out of the 1-entry cache.
	for _, prog := range []string{"vecadd", "matmul"} {
		if _, err := eng.Predict(Request{Program: prog, SizeIdx: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Stats().ProgramsEvicted; got == 0 {
		t.Fatal("no evictions with CacheLimit=1 after three programs")
	}
	// The kernel still serves: the engine recompiles from stored source.
	ex, err := eng.Execute(context.Background(), Request{Program: "public/scale", SizeIdx: 0})
	if err != nil {
		t.Fatalf("post-eviction execute: %v", err)
	}
	if ex.Program != "public/scale" {
		t.Fatalf("execution: %+v", ex)
	}
}

// TestRegisterKernelValidation: bad specs are rejected with typed errors
// before any compile work.
func TestRegisterKernelValidation(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RegisterKernel("", KernelSpec{Name: "no/slash", Source: scaleSrc}); !errors.Is(err, ErrInvalidKernel) {
		t.Fatalf("bad name err = %v, want ErrInvalidKernel", err)
	}
	if _, err := eng.RegisterKernel("", KernelSpec{Name: "odd", Source: scaleSrc, BaseN: 100}); !errors.Is(err, ErrInvalidKernel) {
		t.Fatalf("bad base size err = %v, want ErrInvalidKernel", err)
	}
	var ce *CompileError
	if _, err := eng.RegisterKernel("", KernelSpec{Name: "broken", Source: "kernel void b() { x = ; }"}); !errors.As(err, &ce) {
		t.Fatalf("bad source err = %v, want *CompileError", err)
	}
	// Source-size quota.
	opts := fastOpts(t)
	opts.Tenant = TenantLimits{MaxSourceBytes: 10}
	small, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = small.RegisterKernel("", KernelSpec{Name: "scale", Source: scaleSrc})
	var qe *QuotaError
	if !errors.As(err, &qe) || !strings.Contains(qe.Reason, "source bytes") {
		t.Fatalf("source quota err = %v, want *QuotaError about source bytes", err)
	}
}
