// Package engine is the persistent deployment half of the pipeline: a
// long-lived serving engine built on core.Framework.
//
// The paper splits the system into an offline training phase and an
// online deployment phase. Training produces a database and model
// artifacts; this engine owns everything the deployment phase needs to
// answer prediction and execution requests under sustained traffic
// without redoing offline work:
//
//   - a compiled-program registry (each benchmark kernel is compiled
//     once per process),
//   - a trained-model artifact cache keyed by (platform, left-out
//     program), backed by artifact files on disk with a train-on-the-fly
//     fallback,
//   - a per-(program, size) feature/profile cache, so the one profiled
//     execution that runtime feature collection requires happens once.
//
// All three caches deduplicate concurrent identical requests through
// sched.Memo: two clients asking for the same cold entry share one
// computation. A warm engine answers repeat requests with zero
// retraining and zero recompilation (pinned by tests and benchmarks).
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/harness"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// Options configures a deployment engine.
type Options struct {
	// Platform is the target platform name ("mc1" or "mc2").
	Platform string
	// DB supplies reference times for responses and the training data
	// for the train-on-the-fly fallback. Optional if every requested
	// model resolves from ArtifactDir.
	DB *harness.DB
	// ArtifactDir holds model artifact files (see ArtifactPath).
	// Artifacts found there are served without retraining.
	ArtifactDir string
	// Model constructs the fallback model family when no artifact
	// exists (default: the harness default, an MLP).
	Model ml.NewModel
	// SaveTrained persists models trained by the fallback path — and
	// models promoted by the retrainer — into ArtifactDir, so the next
	// process skips training entirely.
	SaveTrained bool

	// ObsLog, when set, records every executed request into the durable
	// observation store: the adaptive loop's raw material. Nil disables
	// observation (the engine behaves exactly as before).
	ObsLog *obs.Log
	// OracleSampleEvery labels every Nth execution with its measured-best
	// class (the full candidate space is priced on the already-measured
	// profile — the same oracle labeling the offline sweep performs).
	// 0 and 1 label every execution; negative disables labeling.
	// Unlabeled observations still feed traffic statistics but cannot
	// train.
	OracleSampleEvery int
	// HoldoutFrac is the fraction of the merged training set the
	// no-regression gate holds out for the live-vs-candidate comparison
	// (default 0.25, clamped to [0, 0.5]).
	HoldoutFrac float64
	// CacheLimit caps the compiled-program and feature/profile caches
	// with LRU-ish eviction (0 = unbounded, the right default for batch
	// tools; long-lived serve processes set a cap).
	CacheLimit int
	// ObsQueue sizes the asynchronous observation ring buffer between
	// /execute requests and the background flusher (rounded up to a power
	// of two). 0 uses DefaultObsQueue; a negative value disables the
	// flusher and records observations synchronously inside Execute (the
	// pre-async behavior — useful for tools that exit immediately).
	ObsQueue int

	// MaxSteps bounds the kernel steps one execution request may spend
	// (0 = unlimited). Enforced inside both execution tiers; exhaustion
	// aborts the run with a structured *exec.BudgetError.
	MaxSteps int64
	// MaxMemBytes bounds the buffer bytes one execution request may
	// allocate (0 = unlimited).
	MaxMemBytes int64
	// ExecTimeout bounds one execution request's wall clock (0 = only
	// the caller context's own deadline applies). Profiling runs under
	// the same step/memory/time limits but never under a request
	// context, so one client's cancellation cannot poison the shared
	// feature cache.
	ExecTimeout time.Duration
	// Tenant configures per-tenant kernel quotas and concurrency caps.
	Tenant TenantLimits
	// SharedTenants, when set, is the tenant quota table this engine
	// charges instead of a private one. A fleet router passes the same
	// table to every shard so per-tenant caps hold across the whole
	// fleet rather than per shard.
	SharedTenants *TenantTable

	// obsGate, when set (tests only), makes the flusher receive from the
	// channel before processing each dequeued observation, so tests can
	// hold the durable append back and prove Execute never waits on it.
	obsGate chan struct{}
}

// DefaultObsQueue is the observation ring capacity when Options leaves
// ObsQueue zero: deep enough to absorb bursts of concurrent executes,
// small enough that a stalled flusher caps memory at a few MB.
const DefaultObsQueue = 1024

// ArtifactPath names the artifact file for (platform, leftOut) inside
// dir. Train-phase writers and the engine's loader agree through this
// function.
func ArtifactPath(dir, platform, leftOut string) string {
	if leftOut == "" {
		return filepath.Join(dir, platform+".json")
	}
	return filepath.Join(dir, platform+"-loo-"+leftOut+".json")
}

// Engine is a long-lived deployment engine for one platform. All methods
// are safe for concurrent use.
type Engine struct {
	fw   *core.Framework
	opts Options

	programs sched.Memo[string, *programEntry]
	models   sched.Memo[string, *registry] // key = left-out program ("" = full)
	features sched.Memo[featureKey, *featureEntry]

	// space / spaceStrs mirror the framework's partition space; cpuClass
	// and gpuClass are the reference strategies' class indices. All are
	// fixed at construction — observation labeling reads them per
	// execution.
	space     []partition.Partition
	spaceStrs []string
	cpuClass  int
	gpuClass  int

	stats   engineCounters
	retrain retrainState
	obsq    obsQueue

	// kernels is the runtime-registered user-kernel table (kernels.go);
	// tenants holds per-tenant quota accounting (tenant.go).
	kernels kernelTable
	tenants *TenantTable
}

// programEntry is one registry slot: the benchmark definition plus the
// framework-compiled program.
type programEntry struct {
	bench *bench.Program
	prog  *core.Program
}

// Model provenance values reported in Prediction.ModelSource.
const (
	// ModelFromArtifact: loaded from an artifact file in ArtifactDir.
	ModelFromArtifact = "artifact"
	// ModelTrained: trained on the fly from the database.
	ModelTrained = "trained"
	// ModelTrainedSaved: trained on the fly and persisted to ArtifactDir.
	ModelTrainedSaved = "trained+saved"
	// ModelTrainedSaveFailed: trained on the fly; persisting it failed
	// (the model still serves — persistence is an optimization).
	ModelTrainedSaveFailed = "trained+save-failed"
	// ModelRetrained: promoted by the adaptive retrainer after passing
	// the no-regression gate.
	ModelRetrained = "retrained"
)

// featureKey identifies one feature/profile computation.
type featureKey struct {
	program string
	sizeIdx int
}

// featureEntry caches the result of runtime feature collection: the
// combined feature vector, the profile it came from, and the launch the
// profile was collected on (reused to price candidate partitionings).
type featureEntry struct {
	fv     features.Vector
	prof   *exec.Profile
	launch runtime.Launch
}

// engineCounters are the engine's monotonically increasing stats.
type engineCounters struct {
	predictRequests atomic.Uint64
	executeRequests atomic.Uint64
	executions      atomic.Uint64
	compiles        atomic.Uint64
	featureComputes atomic.Uint64
	trainings       atomic.Uint64
	artifactLoads   atomic.Uint64
	saveFailures    atomic.Uint64
	clamped         atomic.Uint64

	observations    atomic.Uint64
	observedLabeled atomic.Uint64
	observeFails    atomic.Uint64
	observeDropped  atomic.Uint64
	retrainAttempts atomic.Uint64
	retrainPromoted atomic.Uint64
	retrainRejected atomic.Uint64
	rollbacks       atomic.Uint64

	kernelsRegistered   atomic.Uint64
	quotaRejections     atomic.Uint64
	budgetAbortSteps    atomic.Uint64
	budgetAbortMem      atomic.Uint64
	budgetAbortDeadline atomic.Uint64

	vecDivergences atomic.Uint64
	vecReconverges atomic.Uint64
	vecScalarBails atomic.Uint64
}

// Stats is a point-in-time snapshot of the engine's counters and cache
// sizes. Warmness is visible here: a warm engine serves repeat requests
// without Compiles, FeatureComputes, Trainings or ArtifactLoads moving.
type Stats struct {
	Platform           string `json:"platform"`
	PredictRequests    uint64 `json:"predictRequests"`
	ExecuteRequests    uint64 `json:"executeRequests"`
	Executions         uint64 `json:"executions"`
	Compiles           uint64 `json:"compiles"`
	FeatureComputes    uint64 `json:"featureComputes"`
	Trainings          uint64 `json:"trainings"`
	ArtifactLoads      uint64 `json:"artifactLoads"`
	ArtifactSaveFails  uint64 `json:"artifactSaveFailures"`
	ClampedPredictions uint64 `json:"clampedPredictions"`
	CachedPrograms     int    `json:"cachedPrograms"`
	CachedModels       int    `json:"cachedModels"`
	CachedFeatures     int    `json:"cachedFeatures"`

	// Adaptive-loop counters (all zero when no observation log is
	// configured). Observations counts records the background flusher has
	// durably appended; ObservationsPending counts executions still
	// queued in the async ring; ObservationsDropped counts executions the
	// full ring rejected under overload (the deliberate shed: responses
	// never stall on the log).
	Observations        uint64 `json:"observations"`
	ObservationsLabeled uint64 `json:"observationsLabeled"`
	ObservationsPending uint64 `json:"observationsPending"`
	ObservationsDropped uint64 `json:"observationsDropped"`
	ObserveFailures     uint64 `json:"observeFailures"`
	RetrainAttempts     uint64 `json:"retrainAttempts"`
	RetrainPromotions   uint64 `json:"retrainPromotions"`
	RetrainRejections   uint64 `json:"retrainRejections"`
	Rollbacks           uint64 `json:"rollbacks"`

	// Untrusted-kernel serving counters. ProgramsEvicted counts compiled
	// programs the LRU cap removed (idle tenant kernels recompile from
	// source on next use); the budget-abort counters split deterministic
	// resource aborts by which budget ran out.
	KernelsRegistered    uint64 `json:"kernelsRegistered"`
	ProgramsEvicted      uint64 `json:"programsEvicted"`
	QuotaRejections      uint64 `json:"quotaRejections"`
	BudgetAbortsSteps    uint64 `json:"budgetAbortsSteps"`
	BudgetAbortsMemory   uint64 `json:"budgetAbortsMemory"`
	BudgetAbortsDeadline uint64 `json:"budgetAbortsDeadline"`

	// Vector-tier execution-path counters, accumulated across every
	// execution's profile: group splits at varying branches, how many of
	// those re-formed at the join point and finished vectorized, and how
	// many degraded to per-item scalar completion.
	VecDivergences uint64 `json:"vecDivergences"`
	VecReconverges uint64 `json:"vecReconverges"`
	VecScalarBails uint64 `json:"vecScalarBails"`
}

// New builds an engine for the platform named in opts.
func New(opts Options) (*Engine, error) {
	plat, err := device.ByName(opts.Platform)
	if err != nil {
		return nil, err
	}
	fw, err := core.New(plat)
	if err != nil {
		return nil, err
	}
	if opts.Model == nil {
		opts.Model = harness.DefaultModel()
	}
	e := &Engine{fw: fw, opts: opts}
	e.tenants = opts.SharedTenants
	if e.tenants == nil {
		e.tenants = NewTenantTable()
	}
	e.space = partition.SharedSpace(plat.NumDevices(), partition.DefaultSteps)
	e.spaceStrs = make([]string, len(e.space))
	for i, p := range e.space {
		e.spaceStrs[i] = p.String()
	}
	e.cpuClass = e.classOf(fw.Runtime.CPUOnly())
	e.gpuClass = e.classOf(fw.Runtime.GPUOnly())
	if opts.CacheLimit > 0 {
		e.programs.SetLimit(opts.CacheLimit)
		e.features.SetLimit(opts.CacheLimit)
	}
	if opts.ObsLog != nil && opts.ObsQueue >= 0 {
		e.obsq.start(e, opts.ObsQueue)
	}
	return e, nil
}

// classOf finds the class index of a partition in the engine's space
// (-1 if absent — cannot happen for the reference strategies).
func (e *Engine) classOf(p partition.Partition) int {
	for i, q := range e.space {
		same := true
		for d := range q.Shares {
			if q.Shares[d] != p.Shares[d] {
				same = false
				break
			}
		}
		if same {
			return i
		}
	}
	return -1
}

// Framework exposes the underlying core framework (runtime access for
// callers that need pricing or reference strategies).
func (e *Engine) Framework() *core.Framework { return e.fw }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Platform:           e.opts.Platform,
		PredictRequests:    e.stats.predictRequests.Load(),
		ExecuteRequests:    e.stats.executeRequests.Load(),
		Executions:         e.stats.executions.Load(),
		Compiles:           e.stats.compiles.Load(),
		FeatureComputes:    e.stats.featureComputes.Load(),
		Trainings:          e.stats.trainings.Load(),
		ArtifactLoads:      e.stats.artifactLoads.Load(),
		ArtifactSaveFails:  e.stats.saveFailures.Load(),
		ClampedPredictions: e.stats.clamped.Load(),
		CachedPrograms:     e.programs.Len(),
		CachedModels:       e.models.Len(),
		CachedFeatures:     e.features.Len(),

		Observations:        e.stats.observations.Load(),
		ObservationsLabeled: e.stats.observedLabeled.Load(),
		ObservationsPending: e.obsq.pending(),
		ObservationsDropped: e.stats.observeDropped.Load(),
		ObserveFailures:     e.stats.observeFails.Load(),
		RetrainAttempts:     e.stats.retrainAttempts.Load(),
		RetrainPromotions:   e.stats.retrainPromoted.Load(),
		RetrainRejections:   e.stats.retrainRejected.Load(),
		Rollbacks:           e.stats.rollbacks.Load(),

		KernelsRegistered:    e.stats.kernelsRegistered.Load(),
		ProgramsEvicted:      e.programs.Evictions(),
		QuotaRejections:      e.stats.quotaRejections.Load(),
		BudgetAbortsSteps:    e.stats.budgetAbortSteps.Load(),
		BudgetAbortsMemory:   e.stats.budgetAbortMem.Load(),
		BudgetAbortsDeadline: e.stats.budgetAbortDeadline.Load(),

		VecDivergences: e.stats.vecDivergences.Load(),
		VecReconverges: e.stats.vecReconverges.Load(),
		VecScalarBails: e.stats.vecScalarBails.Load(),
	}
}

// Request identifies one prediction or execution request.
type Request struct {
	// Program is the benchmark program name.
	Program string `json:"program"`
	// SizeIdx is the problem size index; negative selects the program's
	// default size.
	SizeIdx int `json:"size"`
	// LeaveOut holds the requested program out of the training set
	// (evaluation mode: the paper's unseen-program scenario). The full
	// model is used otherwise.
	LeaveOut bool `json:"leaveOut,omitempty"`
	// Tenant is the requesting tenant (set by the serving layer from the
	// X-Tenant header, never from the request body; empty means
	// DefaultTenant). Concurrency caps are charged against it.
	Tenant string `json:"-"`
}

// Prediction is the engine's answer to one predict request.
type Prediction struct {
	Program   string `json:"program"`
	Platform  string `json:"platform"`
	SizeIdx   int    `json:"size"`
	SizeLabel string `json:"sizeLabel"`
	SizeN     int    `json:"sizeN"`

	// Class is the served class; RawClass is the model's unclamped
	// output. Clamped marks a prediction outside the partition space,
	// served as class 0.
	Class    int  `json:"class"`
	RawClass int  `json:"rawClass"`
	Clamped  bool `json:"clamped,omitempty"`

	// Partition is the served partitioning (CPU/GPU1/GPU2 percentages).
	Partition string `json:"partition"`
	Model     string `json:"model"`
	// ModelSource is the model's provenance: ModelFromArtifact,
	// ModelTrained, ModelTrainedSaved, ModelTrainedSaveFailed or
	// ModelRetrained.
	ModelSource string `json:"modelSource"`
	// ModelVersion is the registry version that served this prediction;
	// it moves when the retrainer promotes a gated candidate (or an
	// operator rolls back) without a restart.
	ModelVersion int    `json:"modelVersion"`
	LeftOut      string `json:"leftOut,omitempty"`

	// PredictedTime is the simulated makespan under the served
	// partitioning. The remaining reference times come from the
	// training database when available.
	PredictedTime   float64 `json:"predictedTime"`
	OracleTime      float64 `json:"oracleTime,omitempty"`
	OraclePartition string  `json:"oraclePartition,omitempty"`
	CPUOnlyTime     float64 `json:"cpuOnlyTime,omitempty"`
	GPUOnlyTime     float64 `json:"gpuOnlyTime,omitempty"`
}

// Execution is the engine's answer to one execute request: the
// prediction plus the result of actually running the kernel partitioned
// across the platform's devices.
type Execution struct {
	Prediction
	// Makespan is the simulated wall time of the partitioned execution.
	Makespan float64 `json:"makespan"`
	// Verified reports whether the outputs matched the program's Go
	// reference implementation.
	Verified    bool   `json:"verified"`
	VerifyError string `json:"verifyError,omitempty"`
}

// program resolves the registry entry for name, compiling the kernel on
// first use. The name is validated against the benchmark registry (or
// the user-kernel table for qualified "tenant/name" names) BEFORE
// touching the memo: requests for unknown programs (attacker-chosen
// input on the serving path) must not grow the cache.
func (e *Engine) program(name string) (*programEntry, error) {
	bp, err := e.benchFor(name)
	if err != nil {
		return nil, err
	}
	return e.programs.Do(name, func() (*programEntry, error) {
		cp, err := core.CompileSource(bp.Name, bp.Source, bp.Kernel)
		if err != nil {
			return nil, err
		}
		e.stats.compiles.Add(1)
		return &programEntry{bench: bp, prog: cp}, nil
	})
}

// featuresFor resolves the feature/profile cache entry for (program,
// size), profiling one execution on first use. The profiling run is
// budgeted with the engine's default limits — user kernels must not
// wedge the profiler any more than the executor — plus the caller's
// context, so a disconnected client aborts even a first-touch profile
// of a hostile kernel. Failures are not cached (DoRetryable): a budget
// abort or cancellation on first profile must not poison the (program,
// size) key forever — coalesced waiters see the error once and the
// next request re-profiles.
func (e *Engine) featuresFor(ctx context.Context, pe *programEntry, sizeIdx int) (*featureEntry, error) {
	return e.features.DoRetryable(featureKey{program: pe.bench.Name, sizeIdx: sizeIdx}, func() (*featureEntry, error) {
		inst, err := pe.bench.Instance(sizeIdx)
		if err != nil {
			return nil, err
		}
		budget, cancel := e.budgetFor(ctx)
		defer cancel()
		if err := budget.ChargeMem(instanceBytes(inst)); err != nil {
			return nil, err
		}
		spec := core.LaunchSpec{Args: inst.Args, ND: inst.ND, Iterations: pe.bench.Iterations, Budget: budget}
		fv, prof, err := e.fw.Features(pe.prog, spec)
		if err != nil {
			return nil, err
		}
		prof.Precompute()
		e.stats.featureComputes.Add(1)
		return &featureEntry{fv: fv, prof: prof, launch: e.launch(pe, inst)}, nil
	})
}

// budgetFor builds one kernel run's budget: engine default limits,
// ExecTimeout, and the caller context's own deadline and cancellation
// (client disconnects abort the kernel promptly).
func (e *Engine) budgetFor(ctx context.Context) (*exec.Budget, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if e.opts.ExecTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, e.opts.ExecTimeout)
	}
	return exec.NewBudget(ctx, e.opts.MaxSteps, e.opts.MaxMemBytes), cancel
}

// instanceBytes is the memory-budget charge for one instance: the bytes
// of every global buffer the setup allocated for the request. (Local
// buffers are charged inside exec at their true per-worker allocation
// sites.)
func instanceBytes(inst *bench.Instance) int64 {
	var n int64
	for _, a := range inst.Args {
		if a.Buf != nil {
			n += a.Buf.Bytes()
		}
	}
	return n
}

// noteBudgetAbort classifies a request error into the per-kind budget
// abort counters; non-budget errors are ignored.
func (e *Engine) noteBudgetAbort(err error) {
	var be *exec.BudgetError
	if !errors.As(err, &be) {
		return
	}
	switch be.Kind {
	case exec.BudgetSteps:
		e.stats.budgetAbortSteps.Add(1)
	case exec.BudgetMemory:
		e.stats.budgetAbortMem.Add(1)
	case exec.BudgetDeadline:
		e.stats.budgetAbortDeadline.Add(1)
	}
}

// launch assembles a runtime launch from the registry's compiled program
// and a benchmark instance.
func (e *Engine) launch(pe *programEntry, inst *bench.Instance) runtime.Launch {
	return runtime.Launch{
		Kernel:     pe.prog.Compiled,
		Plan:       pe.prog.Plan,
		Args:       inst.Args,
		ND:         inst.ND,
		Iterations: pe.bench.Iterations,
	}
}

// Model resolves the artifact currently serving the given left-out
// program (empty = the full model): registry first, then an artifact
// file in ArtifactDir, then training from the database. Concurrent
// requests for the same cold model share one resolution. Failures are
// not cached (sched.Memo.DoRetryable): a transient load error — corrupt
// file mid-deploy, fd exhaustion — must not poison the key until
// restart.
func (e *Engine) Model(leftOut string) (*ml.Artifact, error) {
	v, err := e.resolveModel(leftOut)
	if err != nil {
		return nil, err
	}
	return v.art, nil
}

// resolveModel returns the serving version for leftOut — the per-request
// path: one memo hit plus one atomic load on a warm engine.
func (e *Engine) resolveModel(leftOut string) (*ModelVersion, error) {
	reg, err := e.registryFor(leftOut)
	if err != nil {
		return nil, err
	}
	return reg.current(), nil
}

// registryFor resolves (creating on first use) the version registry for
// leftOut. Version 1 comes from an artifact file when one exists,
// otherwise from training on the database.
func (e *Engine) registryFor(leftOut string) (*registry, error) {
	return e.models.DoRetryable(leftOut, func() (*registry, error) {
		if e.opts.ArtifactDir != "" {
			path := ArtifactPath(e.opts.ArtifactDir, e.opts.Platform, leftOut)
			if _, err := os.Stat(path); err == nil {
				a, err := ml.LoadArtifact(path)
				if err != nil {
					return nil, err
				}
				if err := e.checkArtifact(a, leftOut); err != nil {
					return nil, fmt.Errorf("engine: artifact %s: %w", path, err)
				}
				e.stats.artifactLoads.Add(1)
				return newRegistry(a, ModelFromArtifact), nil
			}
		}
		art, source, err := e.train(leftOut)
		if err != nil {
			return nil, err
		}
		return newRegistry(art, source), nil
	})
}

// ModelVersions lists the registry for leftOut: the serving version
// number plus every version's lineage, oldest first.
func (e *Engine) ModelVersions(leftOut string) (current int, versions []ModelVersion, err error) {
	reg, err := e.registryFor(leftOut)
	if err != nil {
		return 0, nil, err
	}
	current, versions = reg.list()
	return current, versions, nil
}

// Rollback makes an earlier version of the full model current again.
// In-flight requests see the swap atomically, exactly like a promotion.
// With SaveTrained, the rolled-back version is also re-persisted to
// ArtifactDir — promotions overwrite the on-disk artifact, so without
// this a restart would silently reinstate the model the operator just
// rejected.
func (e *Engine) Rollback(version int) (ModelVersion, error) {
	reg, err := e.registryFor("")
	if err != nil {
		return ModelVersion{}, err
	}
	v, err := reg.rollback(version)
	if err != nil {
		return ModelVersion{}, err
	}
	e.stats.rollbacks.Add(1)
	if e.opts.SaveTrained && e.opts.ArtifactDir != "" {
		path := ArtifactPath(e.opts.ArtifactDir, e.opts.Platform, "")
		if err := ml.SaveArtifact(path, v.art); err != nil {
			e.stats.saveFailures.Add(1)
		}
	}
	return *v, nil
}

// checkArtifact validates a loaded artifact against the engine's
// platform, partition space (via the framework's shared check) and the
// requested left-out program.
func (e *Engine) checkArtifact(a *ml.Artifact, leftOut string) error {
	if err := e.fw.CheckArtifact(a); err != nil {
		return err
	}
	if a.LeftOut != leftOut {
		return fmt.Errorf("trained with left-out program %q, request needs %q", a.LeftOut, leftOut)
	}
	return nil
}

// train is the fallback path: fit a fresh model from the database.
func (e *Engine) train(leftOut string) (*ml.Artifact, string, error) {
	if e.opts.DB == nil {
		return nil, "", fmt.Errorf("engine: no artifact for (%s, leftOut=%q) and no training database", e.opts.Platform, leftOut)
	}
	data := e.opts.DB.Dataset(e.opts.Platform, nil)
	if data.Len() == 0 {
		return nil, "", fmt.Errorf("engine: database has no records for %q", e.opts.Platform)
	}
	if leftOut != "" {
		trainIdx, _ := data.SplitByGroup(leftOut)
		if len(trainIdx) == 0 {
			return nil, "", fmt.Errorf("engine: leaving out %q empties the training set", leftOut)
		}
		data = data.Subset(trainIdx)
	}
	a, err := ml.TrainArtifact(data, e.opts.Model)
	if err != nil {
		return nil, "", err
	}
	a.Platform = e.opts.Platform
	a.LeftOut = leftOut
	a.Space = append([]string{}, e.opts.DB.Space...)
	// The database's class space must be the framework's partition
	// space, or the trained model's class indices would map to the
	// wrong partitions — same check the artifact load path runs.
	if err := e.fw.CheckArtifact(a); err != nil {
		return nil, "", fmt.Errorf("engine: training database: %w", err)
	}
	e.stats.trainings.Add(1)
	source := ModelTrained
	if e.opts.SaveTrained && e.opts.ArtifactDir != "" {
		// Persistence is an optimization: a failed write (disk full,
		// read-only dir) must not discard the trained model or poison
		// this model's cache entry with the error.
		path := ArtifactPath(e.opts.ArtifactDir, e.opts.Platform, leftOut)
		if err := ml.SaveArtifact(path, a); err != nil {
			e.stats.saveFailures.Add(1)
			source = ModelTrainedSaveFailed
		} else {
			source = ModelTrainedSaved
		}
	}
	return a, source, nil
}

// Predict answers one prediction request. Repeat requests on a warm
// engine touch only caches: no retraining, no recompilation, no
// re-profiling.
func (e *Engine) Predict(req Request) (*Prediction, error) {
	p := new(Prediction)
	if err := e.PredictInto(req, p); err != nil {
		return nil, err
	}
	return p, nil
}

// PredictInto is Predict into a caller-owned struct: the serving hot
// path. A warm call performs zero heap allocations (every buffer it
// needs — model scratch, pricing scratch — comes from per-engine pools),
// so callers that pool their Prediction structs serve requests without
// touching the garbage collector at all. On error *p is left in an
// unspecified state.
func (e *Engine) PredictInto(req Request, p *Prediction) error {
	e.stats.predictRequests.Add(1)
	if err := e.predictInto(context.Background(), req, p); err != nil {
		e.noteBudgetAbort(err)
		return err
	}
	return nil
}

func (e *Engine) predictInto(ctx context.Context, req Request, p *Prediction) error {
	pe, err := e.program(req.Program)
	if err != nil {
		return err
	}
	sz := req.SizeIdx
	if sz < 0 {
		sz = pe.bench.DefaultSize
	}
	if sz >= len(pe.bench.Sizes) {
		return fmt.Errorf("engine: %s has %d sizes, requested index %d", req.Program, len(pe.bench.Sizes), sz)
	}
	fe, err := e.featuresFor(ctx, pe, sz)
	if err != nil {
		return err
	}
	leftOut := ""
	if req.LeaveOut {
		leftOut = req.Program
	}
	ver, err := e.resolveModel(leftOut)
	if err != nil {
		return err
	}
	art := ver.art
	// The artifact's recorded feature schema must be exactly the schema
	// this binary extracts — same names, same order — or the scaler's
	// per-position statistics would apply to the wrong features.
	if len(art.FeatureNames) > 0 {
		if len(art.FeatureNames) != len(fe.fv.Names) {
			return fmt.Errorf("engine: artifact expects %d features, program yields %d", len(art.FeatureNames), len(fe.fv.Names))
		}
		for i, name := range art.FeatureNames {
			if name != fe.fv.Names[i] {
				return fmt.Errorf("engine: artifact feature %d is %q, this binary extracts %q", i, name, fe.fv.Names[i])
			}
		}
	}

	raw := art.Predict(fe.fv.Values)
	served, clamped := raw, false
	if nc := e.fw.NumClasses(); served < 0 || served >= nc {
		served, clamped = 0, true
		e.stats.clamped.Add(1)
	}
	// The partition string comes from the precomputed space table and the
	// makespan from the pooled pricing scratch: neither renders nor
	// allocates per request.
	predTime, err := e.fw.Runtime.PriceMakespan(fe.launch, fe.prof, e.fw.ClassPartition(served))
	if err != nil {
		return err
	}

	*p = Prediction{
		Program:       req.Program,
		Platform:      e.opts.Platform,
		SizeIdx:       sz,
		SizeLabel:     pe.bench.Sizes[sz].Label,
		SizeN:         pe.bench.Sizes[sz].N,
		Class:         served,
		RawClass:      raw,
		Clamped:       clamped,
		Partition:     e.spaceStrs[served],
		Model:         art.ModelName,
		ModelSource:   ver.Source,
		ModelVersion:  ver.Version,
		LeftOut:       leftOut,
		PredictedTime: predTime,
	}
	if e.opts.DB != nil {
		if rec := e.opts.DB.Find(e.opts.Platform, req.Program, sz); rec != nil {
			p.OracleTime = rec.OracleTime
			p.OraclePartition = rec.BestPartition
			p.CPUOnlyTime = rec.CPUOnlyTime
			p.GPUOnlyTime = rec.GPUOnlyTime
		}
	}
	return nil
}

// Execute answers one execution request: predict, then run the kernel
// partitioned across the platform's devices on a fresh deterministic
// instance, and verify the outputs against the Go reference. When an
// observation log is configured, every execution is recorded — the
// closed loop's data collection — asynchronously: the request only
// enqueues onto a bounded lock-free ring, and a background flusher does
// the oracle labeling and the durable append off the response path. A
// recording failure never fails a request (ObserveFailures counts it);
// under overload a full ring drops the observation instead of stalling
// the response (ObservationsDropped counts those).
//
// The run is bounded by the engine's resource budgets plus ctx's
// deadline and cancellation: a hostile or runaway kernel aborts
// deterministically with a *exec.BudgetError, and a disconnected client
// frees its workers promptly. Per-tenant concurrency caps reject
// over-cap requests fast with a *QuotaError.
func (e *Engine) Execute(ctx context.Context, req Request) (*Execution, error) {
	e.stats.executeRequests.Add(1)
	release, err := e.acquireTenantSlot(req.Tenant)
	if err != nil {
		e.stats.quotaRejections.Add(1)
		return nil, err
	}
	defer release()
	out, err := e.execute(ctx, req)
	if err != nil {
		e.noteBudgetAbort(err)
		return nil, err
	}
	return out, nil
}

func (e *Engine) execute(ctx context.Context, req Request) (*Execution, error) {
	var pred Prediction
	if err := e.predictInto(ctx, req, &pred); err != nil {
		return nil, err
	}
	pe, err := e.program(req.Program)
	if err != nil {
		return nil, err
	}
	inst, err := pe.bench.Instance(pred.SizeIdx)
	if err != nil {
		return nil, err
	}
	budget, cancel := e.budgetFor(ctx)
	defer cancel()
	if err := budget.ChargeMem(instanceBytes(inst)); err != nil {
		return nil, err
	}
	l := e.launch(pe, inst)
	l.Budget = budget
	res, err := e.fw.Runtime.Execute(l, e.fw.ClassPartition(pred.Class))
	if err != nil {
		return nil, err
	}
	e.stats.executions.Add(1)
	if p := res.Profile; p != nil {
		e.stats.vecDivergences.Add(uint64(p.VecDivergences))
		e.stats.vecReconverges.Add(uint64(p.VecReconverges))
		e.stats.vecScalarBails.Add(uint64(p.VecScalarBails))
	}
	out := &Execution{Prediction: pred, Makespan: res.Makespan, Verified: true}
	if err := pe.bench.Verify(inst, pred.SizeIdx); err != nil {
		out.Verified = false
		out.VerifyError = err.Error()
	}
	if e.opts.ObsLog != nil {
		e.enqueueObservation(pe, out, res)
	}
	return out, nil
}

// observe assembles and appends one execution's observation record; the
// background flusher calls it for each dequeued execution (or Execute
// itself in synchronous mode). Every OracleSampleEvery-th observation
// (per engine, counted across all programs in dequeue order) is labeled:
// the full candidate space is priced against the already-measured
// profile — O(classes) constant-time range queries, no extra kernel
// execution — and the measured-best class recorded, which is exactly the
// oracle label the offline sweep produces.
func (e *Engine) observe(pe *programEntry, ex *Execution, deviceTimes []float64) error {
	fe, err := e.featuresFor(context.Background(), pe, ex.SizeIdx)
	if err != nil {
		return err
	}
	n := e.stats.observations.Add(1)
	o := obs.Observation{
		Time:         time.Now().UnixNano(),
		Platform:     e.opts.Platform,
		Program:      pe.bench.Name,
		Suite:        pe.bench.Suite,
		SizeIdx:      ex.SizeIdx,
		SizeLabel:    ex.SizeLabel,
		SizeN:        ex.SizeN,
		FeatureNames: fe.fv.Names,
		Features:     fe.fv.Values,
		Class:        ex.Class,
		Partition:    ex.Partition,
		Makespan:     ex.Makespan,
		Verified:     ex.Verified,
		DeviceTimes:  deviceTimes,
	}
	every := e.opts.OracleSampleEvery
	if every == 0 {
		every = 1
	}
	if every > 0 && (n-1)%uint64(every) == 0 {
		times := make([]float64, len(e.space))
		if _, err := e.fw.Runtime.PriceAll(fe.launch, fe.prof, e.space, times); err != nil {
			return err
		}
		best := 0
		for c, tm := range times {
			if tm < times[best] {
				best = c
			}
		}
		o.Labeled = true
		o.BestClass = best
		o.BestPartition = e.spaceStrs[best]
		o.OracleTime = times[best]
		o.Times = times
		if e.cpuClass >= 0 {
			o.CPUOnlyTime = times[e.cpuClass]
		}
		if e.gpuClass >= 0 {
			o.GPUOnlyTime = times[e.gpuClass]
		}
		e.stats.observedLabeled.Add(1)
	}
	_, err = e.opts.ObsLog.Append(o)
	return err
}
