// Package engine is the persistent deployment half of the pipeline: a
// long-lived serving engine built on core.Framework.
//
// The paper splits the system into an offline training phase and an
// online deployment phase. Training produces a database and model
// artifacts; this engine owns everything the deployment phase needs to
// answer prediction and execution requests under sustained traffic
// without redoing offline work:
//
//   - a compiled-program registry (each benchmark kernel is compiled
//     once per process),
//   - a trained-model artifact cache keyed by (platform, left-out
//     program), backed by artifact files on disk with a train-on-the-fly
//     fallback,
//   - a per-(program, size) feature/profile cache, so the one profiled
//     execution that runtime feature collection requires happens once.
//
// All three caches deduplicate concurrent identical requests through
// sched.Memo: two clients asking for the same cold entry share one
// computation. A warm engine answers repeat requests with zero
// retraining and zero recompilation (pinned by tests and benchmarks).
package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/harness"
	"repro/internal/ml"
	"repro/internal/runtime"
	"repro/internal/sched"
)

// Options configures a deployment engine.
type Options struct {
	// Platform is the target platform name ("mc1" or "mc2").
	Platform string
	// DB supplies reference times for responses and the training data
	// for the train-on-the-fly fallback. Optional if every requested
	// model resolves from ArtifactDir.
	DB *harness.DB
	// ArtifactDir holds model artifact files (see ArtifactPath).
	// Artifacts found there are served without retraining.
	ArtifactDir string
	// Model constructs the fallback model family when no artifact
	// exists (default: the harness default, an MLP).
	Model ml.NewModel
	// SaveTrained persists models trained by the fallback path into
	// ArtifactDir, so the next process skips training entirely.
	SaveTrained bool
}

// ArtifactPath names the artifact file for (platform, leftOut) inside
// dir. Train-phase writers and the engine's loader agree through this
// function.
func ArtifactPath(dir, platform, leftOut string) string {
	if leftOut == "" {
		return filepath.Join(dir, platform+".json")
	}
	return filepath.Join(dir, platform+"-loo-"+leftOut+".json")
}

// Engine is a long-lived deployment engine for one platform. All methods
// are safe for concurrent use.
type Engine struct {
	fw   *core.Framework
	opts Options

	programs sched.Memo[string, *programEntry]
	models   sched.Memo[string, modelEntry] // key = left-out program ("" = full)
	features sched.Memo[featureKey, *featureEntry]

	stats engineCounters
}

// programEntry is one registry slot: the benchmark definition plus the
// framework-compiled program.
type programEntry struct {
	bench *bench.Program
	prog  *core.Program
}

// Model provenance values reported in Prediction.ModelSource.
const (
	// ModelFromArtifact: loaded from an artifact file in ArtifactDir.
	ModelFromArtifact = "artifact"
	// ModelTrained: trained on the fly from the database.
	ModelTrained = "trained"
	// ModelTrainedSaved: trained on the fly and persisted to ArtifactDir.
	ModelTrainedSaved = "trained+saved"
	// ModelTrainedSaveFailed: trained on the fly; persisting it failed
	// (the model still serves — persistence is an optimization).
	ModelTrainedSaveFailed = "trained+save-failed"
)

// modelEntry is one resolved model with its provenance.
type modelEntry struct {
	art    *ml.Artifact
	source string
}

// featureKey identifies one feature/profile computation.
type featureKey struct {
	program string
	sizeIdx int
}

// featureEntry caches the result of runtime feature collection: the
// combined feature vector, the profile it came from, and the launch the
// profile was collected on (reused to price candidate partitionings).
type featureEntry struct {
	fv     features.Vector
	prof   *exec.Profile
	launch runtime.Launch
}

// engineCounters are the engine's monotonically increasing stats.
type engineCounters struct {
	predictRequests atomic.Uint64
	executeRequests atomic.Uint64
	executions      atomic.Uint64
	compiles        atomic.Uint64
	featureComputes atomic.Uint64
	trainings       atomic.Uint64
	artifactLoads   atomic.Uint64
	saveFailures    atomic.Uint64
	clamped         atomic.Uint64
}

// Stats is a point-in-time snapshot of the engine's counters and cache
// sizes. Warmness is visible here: a warm engine serves repeat requests
// without Compiles, FeatureComputes, Trainings or ArtifactLoads moving.
type Stats struct {
	Platform           string `json:"platform"`
	PredictRequests    uint64 `json:"predictRequests"`
	ExecuteRequests    uint64 `json:"executeRequests"`
	Executions         uint64 `json:"executions"`
	Compiles           uint64 `json:"compiles"`
	FeatureComputes    uint64 `json:"featureComputes"`
	Trainings          uint64 `json:"trainings"`
	ArtifactLoads      uint64 `json:"artifactLoads"`
	ArtifactSaveFails  uint64 `json:"artifactSaveFailures"`
	ClampedPredictions uint64 `json:"clampedPredictions"`
	CachedPrograms     int    `json:"cachedPrograms"`
	CachedModels       int    `json:"cachedModels"`
	CachedFeatures     int    `json:"cachedFeatures"`
}

// New builds an engine for the platform named in opts.
func New(opts Options) (*Engine, error) {
	plat, err := device.ByName(opts.Platform)
	if err != nil {
		return nil, err
	}
	fw, err := core.New(plat)
	if err != nil {
		return nil, err
	}
	if opts.Model == nil {
		opts.Model = harness.DefaultModel()
	}
	return &Engine{fw: fw, opts: opts}, nil
}

// Framework exposes the underlying core framework (runtime access for
// callers that need pricing or reference strategies).
func (e *Engine) Framework() *core.Framework { return e.fw }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Platform:           e.opts.Platform,
		PredictRequests:    e.stats.predictRequests.Load(),
		ExecuteRequests:    e.stats.executeRequests.Load(),
		Executions:         e.stats.executions.Load(),
		Compiles:           e.stats.compiles.Load(),
		FeatureComputes:    e.stats.featureComputes.Load(),
		Trainings:          e.stats.trainings.Load(),
		ArtifactLoads:      e.stats.artifactLoads.Load(),
		ArtifactSaveFails:  e.stats.saveFailures.Load(),
		ClampedPredictions: e.stats.clamped.Load(),
		CachedPrograms:     e.programs.Len(),
		CachedModels:       e.models.Len(),
		CachedFeatures:     e.features.Len(),
	}
}

// Request identifies one prediction or execution request.
type Request struct {
	// Program is the benchmark program name.
	Program string `json:"program"`
	// SizeIdx is the problem size index; negative selects the program's
	// default size.
	SizeIdx int `json:"size"`
	// LeaveOut holds the requested program out of the training set
	// (evaluation mode: the paper's unseen-program scenario). The full
	// model is used otherwise.
	LeaveOut bool `json:"leaveOut,omitempty"`
}

// Prediction is the engine's answer to one predict request.
type Prediction struct {
	Program   string `json:"program"`
	Platform  string `json:"platform"`
	SizeIdx   int    `json:"size"`
	SizeLabel string `json:"sizeLabel"`
	SizeN     int    `json:"sizeN"`

	// Class is the served class; RawClass is the model's unclamped
	// output. Clamped marks a prediction outside the partition space,
	// served as class 0.
	Class    int  `json:"class"`
	RawClass int  `json:"rawClass"`
	Clamped  bool `json:"clamped,omitempty"`

	// Partition is the served partitioning (CPU/GPU1/GPU2 percentages).
	Partition string `json:"partition"`
	Model     string `json:"model"`
	// ModelSource is the model's provenance: ModelFromArtifact,
	// ModelTrained, ModelTrainedSaved or ModelTrainedSaveFailed.
	ModelSource string `json:"modelSource"`
	LeftOut     string `json:"leftOut,omitempty"`

	// PredictedTime is the simulated makespan under the served
	// partitioning. The remaining reference times come from the
	// training database when available.
	PredictedTime   float64 `json:"predictedTime"`
	OracleTime      float64 `json:"oracleTime,omitempty"`
	OraclePartition string  `json:"oraclePartition,omitempty"`
	CPUOnlyTime     float64 `json:"cpuOnlyTime,omitempty"`
	GPUOnlyTime     float64 `json:"gpuOnlyTime,omitempty"`
}

// Execution is the engine's answer to one execute request: the
// prediction plus the result of actually running the kernel partitioned
// across the platform's devices.
type Execution struct {
	Prediction
	// Makespan is the simulated wall time of the partitioned execution.
	Makespan float64 `json:"makespan"`
	// Verified reports whether the outputs matched the program's Go
	// reference implementation.
	Verified    bool   `json:"verified"`
	VerifyError string `json:"verifyError,omitempty"`
}

// program resolves the registry entry for name, compiling the kernel on
// first use. The name is validated against the benchmark registry BEFORE
// touching the memo: requests for unknown programs (attacker-chosen
// input on the serving path) must not grow the cache.
func (e *Engine) program(name string) (*programEntry, error) {
	bp, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	return e.programs.Do(name, func() (*programEntry, error) {
		cp, err := core.CompileSource(bp.Name, bp.Source, bp.Kernel)
		if err != nil {
			return nil, err
		}
		e.stats.compiles.Add(1)
		return &programEntry{bench: bp, prog: cp}, nil
	})
}

// featuresFor resolves the feature/profile cache entry for (program,
// size), profiling one execution on first use.
func (e *Engine) featuresFor(pe *programEntry, sizeIdx int) (*featureEntry, error) {
	return e.features.Do(featureKey{program: pe.bench.Name, sizeIdx: sizeIdx}, func() (*featureEntry, error) {
		inst, err := pe.bench.Instance(sizeIdx)
		if err != nil {
			return nil, err
		}
		spec := core.LaunchSpec{Args: inst.Args, ND: inst.ND, Iterations: pe.bench.Iterations}
		fv, prof, err := e.fw.Features(pe.prog, spec)
		if err != nil {
			return nil, err
		}
		prof.Precompute()
		e.stats.featureComputes.Add(1)
		return &featureEntry{fv: fv, prof: prof, launch: e.launch(pe, inst)}, nil
	})
}

// launch assembles a runtime launch from the registry's compiled program
// and a benchmark instance.
func (e *Engine) launch(pe *programEntry, inst *bench.Instance) runtime.Launch {
	return runtime.Launch{
		Kernel:     pe.prog.Compiled,
		Plan:       pe.prog.Plan,
		Args:       inst.Args,
		ND:         inst.ND,
		Iterations: pe.bench.Iterations,
	}
}

// Model resolves the artifact for the given left-out program (empty =
// the full model): memory first, then an artifact file in ArtifactDir,
// then training from the database. Concurrent requests for the same
// cold model share one resolution. Failures are not cached
// (sched.Memo.DoRetryable): a transient load error — corrupt file
// mid-deploy, fd exhaustion — must not poison the key until restart.
func (e *Engine) Model(leftOut string) (*ml.Artifact, error) {
	ent, err := e.resolveModel(leftOut)
	if err != nil {
		return nil, err
	}
	return ent.art, nil
}

func (e *Engine) resolveModel(leftOut string) (modelEntry, error) {
	return e.models.DoRetryable(leftOut, func() (modelEntry, error) {
		if e.opts.ArtifactDir != "" {
			path := ArtifactPath(e.opts.ArtifactDir, e.opts.Platform, leftOut)
			if _, err := os.Stat(path); err == nil {
				a, err := ml.LoadArtifact(path)
				if err != nil {
					return modelEntry{}, err
				}
				if err := e.checkArtifact(a, leftOut); err != nil {
					return modelEntry{}, fmt.Errorf("engine: artifact %s: %w", path, err)
				}
				e.stats.artifactLoads.Add(1)
				return modelEntry{art: a, source: ModelFromArtifact}, nil
			}
		}
		return e.train(leftOut)
	})
}

// checkArtifact validates a loaded artifact against the engine's
// platform, partition space (via the framework's shared check) and the
// requested left-out program.
func (e *Engine) checkArtifact(a *ml.Artifact, leftOut string) error {
	if err := e.fw.CheckArtifact(a); err != nil {
		return err
	}
	if a.LeftOut != leftOut {
		return fmt.Errorf("trained with left-out program %q, request needs %q", a.LeftOut, leftOut)
	}
	return nil
}

// train is the fallback path: fit a fresh model from the database.
func (e *Engine) train(leftOut string) (modelEntry, error) {
	if e.opts.DB == nil {
		return modelEntry{}, fmt.Errorf("engine: no artifact for (%s, leftOut=%q) and no training database", e.opts.Platform, leftOut)
	}
	data := e.opts.DB.Dataset(e.opts.Platform, nil)
	if data.Len() == 0 {
		return modelEntry{}, fmt.Errorf("engine: database has no records for %q", e.opts.Platform)
	}
	if leftOut != "" {
		trainIdx, _ := data.SplitByGroup(leftOut)
		if len(trainIdx) == 0 {
			return modelEntry{}, fmt.Errorf("engine: leaving out %q empties the training set", leftOut)
		}
		data = data.Subset(trainIdx)
	}
	a, err := ml.TrainArtifact(data, e.opts.Model)
	if err != nil {
		return modelEntry{}, err
	}
	a.Platform = e.opts.Platform
	a.LeftOut = leftOut
	a.Space = append([]string{}, e.opts.DB.Space...)
	// The database's class space must be the framework's partition
	// space, or the trained model's class indices would map to the
	// wrong partitions — same check the artifact load path runs.
	if err := e.fw.CheckArtifact(a); err != nil {
		return modelEntry{}, fmt.Errorf("engine: training database: %w", err)
	}
	e.stats.trainings.Add(1)
	ent := modelEntry{art: a, source: ModelTrained}
	if e.opts.SaveTrained && e.opts.ArtifactDir != "" {
		// Persistence is an optimization: a failed write (disk full,
		// read-only dir) must not discard the trained model or poison
		// this model's cache entry with the error.
		path := ArtifactPath(e.opts.ArtifactDir, e.opts.Platform, leftOut)
		if err := ml.SaveArtifact(path, a); err != nil {
			e.stats.saveFailures.Add(1)
			ent.source = ModelTrainedSaveFailed
		} else {
			ent.source = ModelTrainedSaved
		}
	}
	return ent, nil
}

// Predict answers one prediction request. Repeat requests on a warm
// engine touch only caches: no retraining, no recompilation, no
// re-profiling.
func (e *Engine) Predict(req Request) (*Prediction, error) {
	e.stats.predictRequests.Add(1)
	return e.predict(req)
}

func (e *Engine) predict(req Request) (*Prediction, error) {
	pe, err := e.program(req.Program)
	if err != nil {
		return nil, err
	}
	sz := req.SizeIdx
	if sz < 0 {
		sz = pe.bench.DefaultSize
	}
	if sz >= len(pe.bench.Sizes) {
		return nil, fmt.Errorf("engine: %s has %d sizes, requested index %d", req.Program, len(pe.bench.Sizes), sz)
	}
	fe, err := e.featuresFor(pe, sz)
	if err != nil {
		return nil, err
	}
	leftOut := ""
	if req.LeaveOut {
		leftOut = req.Program
	}
	ent, err := e.resolveModel(leftOut)
	if err != nil {
		return nil, err
	}
	art := ent.art
	// The artifact's recorded feature schema must be exactly the schema
	// this binary extracts — same names, same order — or the scaler's
	// per-position statistics would apply to the wrong features.
	if len(art.FeatureNames) > 0 {
		if len(art.FeatureNames) != len(fe.fv.Names) {
			return nil, fmt.Errorf("engine: artifact expects %d features, program yields %d", len(art.FeatureNames), len(fe.fv.Names))
		}
		for i, name := range art.FeatureNames {
			if name != fe.fv.Names[i] {
				return nil, fmt.Errorf("engine: artifact feature %d is %q, this binary extracts %q", i, name, fe.fv.Names[i])
			}
		}
	}

	raw := art.Predict(fe.fv.Values)
	served, clamped := raw, false
	if nc := e.fw.NumClasses(); served < 0 || served >= nc {
		served, clamped = 0, true
		e.stats.clamped.Add(1)
	}
	part := e.fw.ClassPartition(served)
	predTime, _, err := e.fw.Runtime.Price(fe.launch, fe.prof, part)
	if err != nil {
		return nil, err
	}

	p := &Prediction{
		Program:       req.Program,
		Platform:      e.opts.Platform,
		SizeIdx:       sz,
		SizeLabel:     pe.bench.Sizes[sz].Label,
		SizeN:         pe.bench.Sizes[sz].N,
		Class:         served,
		RawClass:      raw,
		Clamped:       clamped,
		Partition:     part.String(),
		Model:         art.ModelName,
		ModelSource:   ent.source,
		LeftOut:       leftOut,
		PredictedTime: predTime,
	}
	if e.opts.DB != nil {
		if rec := e.opts.DB.Find(e.opts.Platform, req.Program, sz); rec != nil {
			p.OracleTime = rec.OracleTime
			p.OraclePartition = rec.BestPartition
			p.CPUOnlyTime = rec.CPUOnlyTime
			p.GPUOnlyTime = rec.GPUOnlyTime
		}
	}
	return p, nil
}

// Execute answers one execution request: predict, then run the kernel
// partitioned across the platform's devices on a fresh deterministic
// instance, and verify the outputs against the Go reference.
func (e *Engine) Execute(req Request) (*Execution, error) {
	e.stats.executeRequests.Add(1)
	pred, err := e.predict(req)
	if err != nil {
		return nil, err
	}
	pe, err := e.program(req.Program)
	if err != nil {
		return nil, err
	}
	inst, err := pe.bench.Instance(pred.SizeIdx)
	if err != nil {
		return nil, err
	}
	res, err := e.fw.Runtime.Execute(e.launch(pe, inst), e.fw.ClassPartition(pred.Class))
	if err != nil {
		return nil, err
	}
	e.stats.executions.Add(1)
	out := &Execution{Prediction: *pred, Makespan: res.Makespan, Verified: true}
	if err := pe.bench.Verify(inst, pred.SizeIdx); err != nil {
		out.Verified = false
		out.VerifyError = err.Error()
	}
	return out, nil
}
