package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ml"
)

// ModelVersion is one entry in a model registry: a deployable artifact
// plus the lineage that explains why it exists. Version 1 is the seed
// model (loaded from an artifact file or trained from the database);
// later versions are promoted by the retrainer after passing the
// no-regression gate against their parent.
type ModelVersion struct {
	// Version is the registry-assigned number, starting at 1.
	Version int `json:"version"`
	// Source is the provenance tag (ModelFromArtifact, ModelTrained,
	// ModelTrainedSaved, ModelTrainedSaveFailed or ModelRetrained).
	Source string `json:"source"`
	// ModelName is the model family.
	ModelName string `json:"model"`
	// Parent is the version this model was gated against (0 for v1).
	Parent int `json:"parent,omitempty"`
	// SeedRecords / ObsRecords is the training-set composition: offline
	// sweep rows vs. rows harvested from the observation log.
	SeedRecords int `json:"seedRecords,omitempty"`
	ObsRecords  int `json:"obsRecords,omitempty"`
	// GateLive and GateCandidate are the held-out accuracies that
	// admitted this version (candidate must not drop below live), over
	// HoldoutSize samples. Zero for v1, which predates the gate.
	GateLive      float64 `json:"gateLive,omitempty"`
	GateCandidate float64 `json:"gateCandidate,omitempty"`
	HoldoutSize   int     `json:"holdoutSize,omitempty"`

	art *ml.Artifact
}

// Artifact returns the version's deployable artifact.
func (v *ModelVersion) Artifact() *ml.Artifact { return v.art }

// registry is the versioned model store for one (platform, leftOut) key.
// The serving path reads the current version through one atomic pointer
// load — a hot swap is a single Store, so an in-flight Predict/Execute
// observes either the old version or the new one, never a torn mix of
// artifact and metadata. The full history is retained for lineage
// listing and rollback.
type registry struct {
	mu       sync.Mutex // guards versions and promotion/rollback ordering
	cur      atomic.Pointer[ModelVersion]
	versions []*ModelVersion
}

// newRegistry starts a registry at version 1.
func newRegistry(art *ml.Artifact, source string) *registry {
	v := &ModelVersion{Version: 1, Source: source, ModelName: art.ModelName, art: art}
	if art.Lineage != nil {
		// An artifact persisted by a previous adaptive run carries its
		// own lineage; surface it instead of pretending it is a seed.
		v.Parent = art.Lineage.Parent
		v.SeedRecords = art.Lineage.SeedRecords
		v.ObsRecords = art.Lineage.ObsRecords
		v.GateLive = art.Lineage.GateLive
		v.GateCandidate = art.Lineage.GateCandidate
		v.HoldoutSize = art.Lineage.HoldoutSize
	}
	r := &registry{versions: []*ModelVersion{v}}
	r.cur.Store(v)
	return r
}

// current returns the serving version. Lock-free: this is the per-request
// hot path.
func (r *registry) current() *ModelVersion { return r.cur.Load() }

// promote appends a gated candidate as the next version and hot-swaps it
// into service. The artifact's lineage is stamped here, under the
// registry lock, before the version becomes visible — the artifact must
// not be shared until promote returns.
func (r *registry) promote(art *ml.Artifact, source string, v ModelVersion) *ModelVersion {
	r.mu.Lock()
	defer r.mu.Unlock()
	v.Version = len(r.versions) + 1
	v.Parent = r.cur.Load().Version
	v.Source = source
	v.ModelName = art.ModelName
	v.art = art
	var trainedAt int64
	if art.Lineage != nil {
		trainedAt = art.Lineage.TrainedAtUnix // stamped by the trainer
	}
	art.Lineage = &ml.Lineage{
		ModelVersion:  v.Version,
		Parent:        v.Parent,
		SeedRecords:   v.SeedRecords,
		ObsRecords:    v.ObsRecords,
		GateLive:      v.GateLive,
		GateCandidate: v.GateCandidate,
		HoldoutSize:   v.HoldoutSize,
		TrainedAtUnix: trainedAt,
	}
	nv := &v
	r.versions = append(r.versions, nv)
	r.cur.Store(nv)
	return nv
}

// rollback makes an earlier version current again. The version stays in
// the history; nothing is deleted — a later promote still gets the next
// sequential number.
func (r *registry) rollback(version int) (*ModelVersion, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.versions {
		if v.Version == version {
			r.cur.Store(v)
			return v, nil
		}
	}
	return nil, fmt.Errorf("engine: no model version %d (have 1..%d)", version, len(r.versions))
}

// list returns the current version number and a copy of the full history
// in version order.
func (r *registry) list() (current int, out []ModelVersion) {
	r.mu.Lock()
	defer r.mu.Unlock()
	current = r.cur.Load().Version
	out = make([]ModelVersion, len(r.versions))
	for i, v := range r.versions {
		out[i] = *v
	}
	return current, out
}
