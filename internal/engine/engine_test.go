package engine

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/features"
	"repro/internal/harness"
	"repro/internal/ml"
)

// testDB builds one small training database for the whole package: 3
// programs at 2 sizes on both platforms.
var (
	testDBOnce sync.Once
	testDBVal  *harness.DB
	testDBErr  error
)

func testDB(t testing.TB) *harness.DB {
	t.Helper()
	testDBOnce.Do(func() {
		testDBVal, testDBErr = harness.Generate(harness.GenOptions{
			Programs:   []string{"vecadd", "matmul", "blackscholes"},
			MaxSizeIdx: 1,
		})
	})
	if testDBErr != nil {
		t.Fatal(testDBErr)
	}
	return testDBVal
}

// fastOpts is the baseline engine configuration for tests: kNN fallback
// model, no artifact store.
func fastOpts(t testing.TB) Options {
	return Options{Platform: "mc2", DB: testDB(t), Model: harness.FastModel()}
}

func TestEngineWarmPredictNoRework(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Program: "vecadd", SizeIdx: 1}
	first, err := eng.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()
	if cold.Compiles != 1 || cold.FeatureComputes != 1 || cold.Trainings != 1 {
		t.Fatalf("cold request: compiles=%d features=%d trainings=%d, want 1/1/1", cold.Compiles, cold.FeatureComputes, cold.Trainings)
	}

	// The acceptance criterion: a warm engine answers repeat requests
	// with zero retraining, zero recompilation and zero re-profiling.
	for i := 0; i < 10; i++ {
		again, err := eng.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		if *again != *first {
			t.Fatalf("warm response drifted: %+v vs %+v", again, first)
		}
	}
	warm := eng.Stats()
	if warm.Compiles != cold.Compiles || warm.FeatureComputes != cold.FeatureComputes ||
		warm.Trainings != cold.Trainings || warm.ArtifactLoads != cold.ArtifactLoads {
		t.Fatalf("warm requests redid offline work: cold=%+v warm=%+v", cold, warm)
	}
	if warm.PredictRequests != 11 {
		t.Fatalf("predictRequests = %d, want 11", warm.PredictRequests)
	}
}

func TestEnginePredictMatchesDatabase(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(t)
	p, err := eng.Predict(Request{Program: "matmul", SizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	rec := db.Find("mc2", "matmul", 0)
	if rec == nil {
		t.Fatal("record missing")
	}
	// The live-priced makespan must equal the sweep's stored time for
	// the served class (same deterministic profile, same device models).
	if p.PredictedTime != rec.Times[p.Class] {
		t.Errorf("PredictedTime %g != stored time %g for class %d", p.PredictedTime, rec.Times[p.Class], p.Class)
	}
	if p.OracleTime != rec.OracleTime || p.CPUOnlyTime != rec.CPUOnlyTime || p.GPUOnlyTime != rec.GPUOnlyTime {
		t.Errorf("reference times drifted from record")
	}
	if p.Partition != db.Space[p.Class] {
		t.Errorf("partition %q does not match space class %d (%q)", p.Partition, p.Class, db.Space[p.Class])
	}
}

func TestEngineDefaultSize(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Predict(Request{Program: "vecadd", SizeIdx: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p.SizeIdx < 0 || p.SizeLabel == "" {
		t.Fatalf("default size not resolved: %+v", p)
	}
}

func TestEngineLeaveOneOutDistinctModel(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	full, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 1})
	if err != nil {
		t.Fatal(err)
	}
	loo, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 1, LeaveOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if loo.LeftOut != "vecadd" || full.LeftOut != "" {
		t.Fatalf("leftOut bookkeeping: full=%q loo=%q", full.LeftOut, loo.LeftOut)
	}
	if s := eng.Stats(); s.Trainings != 2 || s.CachedModels != 2 {
		t.Fatalf("expected two distinct models (full + leave-one-out), stats=%+v", s)
	}
	// The leave-one-out model must have been fitted without the target
	// program's samples: verify through the artifact metadata.
	a, err := eng.Model("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if a.LeftOut != "vecadd" {
		t.Fatalf("artifact leftOut = %q", a.LeftOut)
	}
}

// TestEngineArtifactByteIdenticalPredictions pins the PR's acceptance
// criterion end to end: an engine serving from a loaded artifact file
// answers every (program, size) request with exactly the classes a
// freshly trained model produces.
func TestEngineArtifactByteIdenticalPredictions(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()

	// Train once, persist the artifact.
	fresh, err := New(Options{Platform: "mc2", DB: db, Model: harness.DefaultModel()})
	if err != nil {
		t.Fatal(err)
	}
	art, err := fresh.Model("")
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.SaveArtifact(ArtifactPath(dir, "mc2", ""), art); err != nil {
		t.Fatal(err)
	}

	// A separate engine must serve from the artifact without training.
	warm, err := New(Options{Platform: "mc2", DB: db, Model: harness.DefaultModel(), ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range db.Programs() {
		for sz := 0; sz <= 1; sz++ {
			req := Request{Program: prog, SizeIdx: sz}
			a, err := fresh.Predict(req)
			if err != nil {
				t.Fatal(err)
			}
			b, err := warm.Predict(req)
			if err != nil {
				t.Fatal(err)
			}
			if a.Class != b.Class || a.RawClass != b.RawClass || a.Partition != b.Partition || a.PredictedTime != b.PredictedTime {
				t.Fatalf("%s/%d: fresh=%+v loaded=%+v", prog, sz, a, b)
			}
		}
	}
	s := warm.Stats()
	if s.Trainings != 0 || s.ArtifactLoads != 1 {
		t.Fatalf("artifact engine trained anyway: %+v", s)
	}
}

func TestEngineSaveTrainedWarmStart(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	first, err := New(Options{Platform: "mc2", DB: db, Model: harness.FastModel(), ArtifactDir: dir, SaveTrained: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Predict(Request{Program: "vecadd", SizeIdx: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ArtifactPath(dir, "mc2", "")); err != nil {
		t.Fatalf("trained artifact not persisted: %v", err)
	}

	// A new process (second engine) warm-starts from the file.
	second, err := New(Options{Platform: "mc2", DB: db, Model: harness.FastModel(), ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Predict(Request{Program: "vecadd", SizeIdx: 0}); err != nil {
		t.Fatal(err)
	}
	if s := second.Stats(); s.Trainings != 0 || s.ArtifactLoads != 1 {
		t.Fatalf("second engine did not warm-start: %+v", s)
	}
}

func TestEngineConcurrentRequestsDeduplicate(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	preds := make([]*Prediction, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			preds[c], errs[c] = eng.Predict(Request{Program: "blackscholes", SizeIdx: 1})
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatal(errs[c])
		}
		if *preds[c] != *preds[0] {
			t.Fatalf("client %d diverged: %+v vs %+v", c, preds[c], preds[0])
		}
	}
	s := eng.Stats()
	if s.Compiles != 1 || s.FeatureComputes != 1 || s.Trainings != 1 {
		t.Fatalf("concurrent identical requests did not share work: %+v", s)
	}
	if s.PredictRequests != clients {
		t.Fatalf("predictRequests = %d, want %d", s.PredictRequests, clients)
	}
}

func TestEngineExecuteVerifies(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("execution failed verification: %s", res.VerifyError)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
	if res.Makespan != res.PredictedTime {
		t.Errorf("executed makespan %g != predicted %g (same partition, same profile)", res.Makespan, res.PredictedTime)
	}
	if s := eng.Stats(); s.Executions != 1 || s.ExecuteRequests != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestEngineClampedPredictionSurfaced(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	// Craft an artifact whose model always answers a class far outside
	// the 66-partition space.
	dim := features.NumFeatures()
	bad := &ml.Dataset{X: [][]float64{make([]float64, dim)}, Y: []int{500}}
	art, err := ml.TrainArtifact(bad, func() ml.Classifier { return ml.NewKNN(1) })
	if err != nil {
		t.Fatal(err)
	}
	art.Platform = "mc2"
	art.FeatureNames = nil // skip schema check; this artifact is a fault probe
	if err := ml.SaveArtifact(ArtifactPath(dir, "mc2", ""), art); err != nil {
		t.Fatal(err)
	}
	eng, err := New(Options{Platform: "mc2", DB: db, ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Clamped || p.RawClass != 500 || p.Class != 0 {
		t.Fatalf("out-of-range prediction not surfaced: %+v", p)
	}
	if s := eng.Stats(); s.ClampedPredictions != 1 {
		t.Fatalf("clamped counter: %+v", s)
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := New(Options{Platform: "nope"}); err == nil {
		t.Error("unknown platform accepted")
	}
	eng, err := New(Options{Platform: "mc2"}) // no DB, no artifacts
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 0}); err == nil {
		t.Error("predict without model source succeeded")
	}
	eng2, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Predict(Request{Program: "unknown-prog", SizeIdx: 0}); err == nil {
		t.Error("unknown program accepted")
	}
	if _, err := eng2.Predict(Request{Program: "vecadd", SizeIdx: 99}); err == nil {
		t.Error("out-of-range size accepted")
	}
}

// BenchmarkEnginePredictWarm measures the warm serving path: every
// request after the first touches only the caches.
func BenchmarkEnginePredictWarm(b *testing.B) {
	eng, err := New(fastOpts(b))
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Program: "vecadd", SizeIdx: 1}
	if _, err := eng.Predict(req); err != nil {
		b.Fatal(err)
	}
	start := eng.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Predict(req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	end := eng.Stats()
	if end.Trainings != start.Trainings || end.Compiles != start.Compiles || end.FeatureComputes != start.FeatureComputes {
		b.Fatalf("warm benchmark redid offline work: %+v -> %+v", start, end)
	}
}

// BenchmarkEnginePredictInto measures the allocation-free serving hot
// path: a pooled Prediction struct filled in place. The CI alloc smoke
// fails the build if this reports nonzero allocs/op.
func BenchmarkEnginePredictInto(b *testing.B) {
	eng, err := New(fastOpts(b))
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Program: "vecadd", SizeIdx: 1}
	var p Prediction
	if err := eng.PredictInto(req, &p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.PredictInto(req, &p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePredictIntoParallel measures the same path under
// concurrent clients: the caches are lock-free on hits, the model is an
// atomic pointer load and the scratch pools are per-P, so throughput
// should scale with cores.
func BenchmarkEnginePredictIntoParallel(b *testing.B) {
	eng, err := New(fastOpts(b))
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Program: "vecadd", SizeIdx: 1}
	var warm Prediction
	if err := eng.PredictInto(req, &warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var p Prediction
		for pb.Next() {
			if err := eng.PredictInto(req, &p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnginePredictColdModel measures the train-on-the-fly fallback
// for comparison (how much work the artifact cache saves per request).
func BenchmarkEnginePredictColdModel(b *testing.B) {
	db := testDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := New(Options{Platform: "mc2", DB: db, Model: harness.FastModel()})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEngineUnknownProgramDoesNotGrowCaches(t *testing.T) {
	// The serving path takes attacker-chosen program names; failed
	// lookups must not leave permanent cache entries behind.
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := eng.Predict(Request{Program: fmt.Sprintf("bogus-%d", i)}); err == nil {
			t.Fatal("bogus program accepted")
		}
	}
	if s := eng.Stats(); s.CachedPrograms != 0 || s.CachedFeatures != 0 {
		t.Fatalf("failed lookups leaked cache entries: %+v", s)
	}
}

func TestEngineRejectsSpaceMismatchedArtifact(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	eng, err := New(Options{Platform: "mc2", DB: db, Model: harness.FastModel()})
	if err != nil {
		t.Fatal(err)
	}
	art, err := eng.Model("")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the class space: indices would map to wrong partitions.
	bad := *art
	bad.Space = append([]string{}, art.Space...)
	bad.Space[0] = "7/7/7"
	if err := ml.SaveArtifact(ArtifactPath(dir, "mc2", ""), &bad); err != nil {
		t.Fatal(err)
	}
	eng2, err := New(Options{Platform: "mc2", ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Predict(Request{Program: "vecadd", SizeIdx: 0}); err == nil {
		t.Fatal("space-mismatched artifact served predictions")
	}
}

func TestEngineSaveFailureStillServes(t *testing.T) {
	db := testDB(t)
	// ArtifactDir points at a path that cannot be a directory: the
	// persistence write fails, but the freshly trained model must still
	// serve (and keep serving) rather than poisoning the cache.
	file := ArtifactPath(t.TempDir(), "x", "") // a plain file path
	if err := os.WriteFile(file, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := New(Options{Platform: "mc2", DB: db, Model: harness.FastModel(),
		ArtifactDir: file + "/sub", SaveTrained: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 0}); err != nil {
			t.Fatalf("request %d failed after persistence error: %v", i, err)
		}
	}
	if s := eng.Stats(); s.ArtifactSaveFails != 1 || s.Trainings != 1 {
		t.Fatalf("stats after failed persistence: %+v", s)
	}
}

func TestEngineModelLoadFailureNotCached(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	path := ArtifactPath(dir, "mc2", "")
	// First request sees a corrupt artifact mid-deploy and fails...
	if err := os.WriteFile(path, []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := New(Options{Platform: "mc2", DB: db, Model: harness.FastModel(), ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 0}); err == nil {
		t.Fatal("corrupt artifact served")
	}
	// ...but once the operator replaces the file, the engine recovers
	// without a restart (the failure was not memoized).
	art, err := ml.TrainArtifact(db.Dataset("mc2", nil), harness.FastModel())
	if err != nil {
		t.Fatal(err)
	}
	art.Platform = "mc2"
	art.Space = append([]string{}, db.Space...)
	if err := ml.SaveArtifact(path, art); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 0}); err != nil {
		t.Fatalf("engine did not recover after artifact was fixed: %v", err)
	}
	if s := eng.Stats(); s.ArtifactLoads != 1 || s.Trainings != 0 {
		t.Fatalf("recovery stats: %+v", s)
	}
}
