package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the tenant requests without an explicit tenant belong
// to. Every quota applies to it like any other tenant.
const DefaultTenant = "public"

// TenantLimits configures per-tenant quotas and caps. Zero values
// disable the corresponding limit.
type TenantLimits struct {
	// MaxKernels caps how many kernels one tenant may have registered.
	MaxKernels int
	// MaxSourceBytes caps the total MiniCL source bytes one tenant may
	// have registered across all its kernels.
	MaxSourceBytes int64
	// MaxConcurrent caps a tenant's in-flight executions; requests over
	// the cap fail fast with a QuotaError instead of queueing.
	MaxConcurrent int
	// RetryAfter is the backoff hint attached to concurrency rejections
	// (default 1s).
	RetryAfter time.Duration
}

// QuotaError reports a request rejected by a tenant quota. The serving
// layer maps it to 429 with a Retry-After header.
type QuotaError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("engine: tenant %q over quota: %s", e.Tenant, e.Reason)
}

// tenantState is one tenant's live accounting. kernels and srcBytes are
// guarded by the kernel table's mutex (they change only on register);
// inflight is atomic so the execute path never takes a lock.
type tenantState struct {
	inflight atomic.Int64
	kernels  int
	srcBytes int64
}

// tenantTable holds per-tenant state, created on first touch.
type tenantTable struct {
	mu sync.Mutex
	m  map[string]*tenantState
}

// tenantName normalizes an empty tenant to DefaultTenant.
func tenantName(s string) string {
	if s == "" {
		return DefaultTenant
	}
	return s
}

func (t *tenantTable) state(name string) *tenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]*tenantState{}
	}
	ts := t.m[name]
	if ts == nil {
		ts = &tenantState{}
		t.m[name] = ts
	}
	return ts
}

func (e *Engine) retryAfter() time.Duration {
	if e.opts.Tenant.RetryAfter > 0 {
		return e.opts.Tenant.RetryAfter
	}
	return time.Second
}

// acquireTenantSlot claims one of the tenant's concurrent-execution
// slots, returning the release func, or a QuotaError when the tenant is
// at its cap. With no cap configured it is free.
func (e *Engine) acquireTenantSlot(tenant string) (func(), error) {
	maxc := e.opts.Tenant.MaxConcurrent
	if maxc <= 0 {
		return func() {}, nil
	}
	name := tenantName(tenant)
	ts := e.tenants.state(name)
	if ts.inflight.Add(1) > int64(maxc) {
		ts.inflight.Add(-1)
		return nil, &QuotaError{
			Tenant:     name,
			Reason:     fmt.Sprintf("%d concurrent executions in flight (cap %d)", maxc, maxc),
			RetryAfter: e.retryAfter(),
		}
	}
	return func() { ts.inflight.Add(-1) }, nil
}
