package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenant is the tenant requests without an explicit tenant belong
// to. Every quota applies to it like any other tenant.
const DefaultTenant = "public"

// TenantLimits configures per-tenant quotas and caps. Zero values
// disable the corresponding limit.
type TenantLimits struct {
	// MaxKernels caps how many kernels one tenant may have registered.
	MaxKernels int
	// MaxSourceBytes caps the total MiniCL source bytes one tenant may
	// have registered across all its kernels.
	MaxSourceBytes int64
	// MaxConcurrent caps a tenant's in-flight executions; requests over
	// the cap fail fast with a QuotaError instead of queueing.
	MaxConcurrent int
	// RetryAfter is the backoff hint attached to concurrency rejections
	// (default 1s).
	RetryAfter time.Duration
}

// QuotaError reports a request rejected by a tenant quota. The serving
// layer maps it to 429 with a Retry-After header.
type QuotaError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("engine: tenant %q over quota: %s", e.Tenant, e.Reason)
}

// tenantState is one tenant's live accounting. kernels and srcBytes are
// guarded by the owning TenantTable's mutex (they change only on
// register); inflight is atomic so the execute path never takes a lock.
type tenantState struct {
	inflight atomic.Int64
	kernels  int
	srcBytes int64
}

// TenantTable holds per-tenant quota state, created on first touch. A
// fleet of engines shares one table (Options.SharedTenants) so kernel,
// source-byte and concurrency quotas are enforced per tenant across
// every shard, not per shard — otherwise a tenant's caps would multiply
// by the shard count. Safe for concurrent use.
type TenantTable struct {
	mu sync.Mutex
	m  map[string]*tenantState
}

// NewTenantTable returns an empty table.
func NewTenantTable() *TenantTable {
	return &TenantTable{m: map[string]*tenantState{}}
}

// tenantName normalizes an empty tenant to DefaultTenant.
func tenantName(s string) string {
	if s == "" {
		return DefaultTenant
	}
	return s
}

func (t *TenantTable) state(name string) *tenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stateLocked(name)
}

func (t *TenantTable) stateLocked(name string) *tenantState {
	ts := t.m[name]
	if ts == nil {
		ts = &tenantState{}
		t.m[name] = ts
	}
	return ts
}

// checkRegistration is the read-only quota pre-check for registering a
// kernel of srcLen bytes: cheap rejection before compile work is spent.
func (t *TenantTable) checkRegistration(tenant string, srcLen int64, lim TenantLimits, retryAfter time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.registrationErrLocked(tenant, srcLen, lim, retryAfter)
}

// reserveRegistration atomically re-checks the quotas and commits the
// kernel/source-byte accounting. This is the authoritative gate: two
// shards racing the same tenant's last kernel slot serialize here.
func (t *TenantTable) reserveRegistration(tenant string, srcLen int64, lim TenantLimits, retryAfter time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.registrationErrLocked(tenant, srcLen, lim, retryAfter); err != nil {
		return err
	}
	ts := t.stateLocked(tenant)
	ts.kernels++
	ts.srcBytes += srcLen
	return nil
}

func (t *TenantTable) registrationErrLocked(tenant string, srcLen int64, lim TenantLimits, retryAfter time.Duration) error {
	ts := t.stateLocked(tenant)
	if lim.MaxKernels > 0 && ts.kernels >= lim.MaxKernels {
		return &QuotaError{Tenant: tenant,
			Reason:     fmt.Sprintf("%d kernels registered (cap %d)", ts.kernels, lim.MaxKernels),
			RetryAfter: retryAfter}
	}
	if lim.MaxSourceBytes > 0 && ts.srcBytes+srcLen > lim.MaxSourceBytes {
		return &QuotaError{Tenant: tenant,
			Reason:     fmt.Sprintf("%d source bytes registered + %d uploaded exceeds cap %d", ts.srcBytes, srcLen, lim.MaxSourceBytes),
			RetryAfter: retryAfter}
	}
	return nil
}

func (e *Engine) retryAfter() time.Duration {
	if e.opts.Tenant.RetryAfter > 0 {
		return e.opts.Tenant.RetryAfter
	}
	return time.Second
}

// acquireTenantSlot claims one of the tenant's concurrent-execution
// slots, returning the release func, or a QuotaError when the tenant is
// at its cap. With no cap configured it is free. The slot pool lives in
// the (possibly shared) TenantTable, so the cap spans every shard the
// tenant touches.
func (e *Engine) acquireTenantSlot(tenant string) (func(), error) {
	maxc := e.opts.Tenant.MaxConcurrent
	if maxc <= 0 {
		return func() {}, nil
	}
	name := tenantName(tenant)
	ts := e.tenants.state(name)
	if ts.inflight.Add(1) > int64(maxc) {
		ts.inflight.Add(-1)
		return nil, &QuotaError{
			Tenant:     name,
			Reason:     fmt.Sprintf("%d concurrent executions in flight (cap %d)", maxc, maxc),
			RetryAfter: e.retryAfter(),
		}
	}
	return func() { ts.inflight.Add(-1) }, nil
}
