// Asynchronous observation recording: the serving half of the closed
// loop used to append (and oracle-label) observations inline with the
// /execute response, paying pricing and durable-write latency per
// request. Now Execute only pushes onto a bounded lock-free ring
// (sched.Ring) and a single background flusher drains it: labeling and
// the JSONL append happen entirely off the response path. A full ring
// sheds the observation (counted, never blocking), and shutdown flushes
// whatever is still queued.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runtime"
	"repro/internal/sched"
)

// pendingObs is one executed request waiting to be recorded.
type pendingObs struct {
	pe *programEntry
	ex Execution
	// deviceTimes are the per-device busy times of the measured
	// execution, extracted before enqueueing (the runtime result is not
	// retained).
	deviceTimes []float64
}

// obsQueue is the ring + flusher pair owned by one engine.
type obsQueue struct {
	ring   *sched.Ring[pendingObs]
	notify chan struct{} // capacity 1: "the ring may be non-empty"
	stop   chan struct{}
	done   chan struct{} // closed when the flusher has exited

	enqueued  atomic.Uint64 // successfully pushed
	processed atomic.Uint64 // dequeued and recorded (or counted failed)

	closeOnce sync.Once
}

// pending reports how many enqueued observations the flusher has not
// processed yet. Zero when the queue never started (synchronous mode).
func (q *obsQueue) pending() uint64 {
	e, p := q.enqueued.Load(), q.processed.Load()
	if e < p {
		return 0
	}
	return e - p
}

// start sizes the ring and launches the flusher goroutine.
func (q *obsQueue) start(e *Engine, capacity int) {
	if capacity == 0 {
		capacity = DefaultObsQueue
	}
	q.ring = sched.NewRing[pendingObs](capacity)
	q.notify = make(chan struct{}, 1)
	q.stop = make(chan struct{})
	q.done = make(chan struct{})
	go q.run(e)
}

// run is the flusher loop: sleep until nudged, then drain the ring. On
// stop it performs one final drain, so Close loses nothing that was
// enqueued.
func (q *obsQueue) run(e *Engine) {
	defer close(q.done)
	for {
		select {
		case <-q.stop:
			q.drain(e)
			return
		case <-q.notify:
			q.drain(e)
		}
	}
}

// drain processes everything currently in the ring.
func (q *obsQueue) drain(e *Engine) {
	for {
		po, ok := q.ring.TryPop()
		if !ok {
			return
		}
		if e.opts.obsGate != nil {
			<-e.opts.obsGate // test hook: hold the durable append back
		}
		if err := e.observe(po.pe, &po.ex, po.deviceTimes); err != nil {
			e.stats.observeFails.Add(1)
		}
		q.processed.Add(1)
	}
}

// enqueueObservation hands one executed request to the flusher, or
// records it synchronously when the queue is disabled (ObsQueue < 0).
// Never blocks: a full ring drops the observation and counts the drop.
func (e *Engine) enqueueObservation(pe *programEntry, ex *Execution, res *runtime.Result) {
	po := pendingObs{pe: pe, ex: *ex}
	if len(res.Breakdowns) > 0 {
		po.deviceTimes = make([]float64, 0, len(res.Breakdowns))
		for _, b := range res.Breakdowns {
			po.deviceTimes = append(po.deviceTimes, b.Total)
		}
	}
	if e.obsq.ring == nil {
		// Synchronous mode: the pre-async behavior.
		if err := e.observe(pe, ex, po.deviceTimes); err != nil {
			e.stats.observeFails.Add(1)
		}
		return
	}
	if !e.obsq.ring.TryPush(po) {
		e.stats.observeDropped.Add(1)
		return
	}
	e.obsq.enqueued.Add(1)
	select {
	case e.obsq.notify <- struct{}{}:
	default: // a nudge is already pending
	}
}

// FlushObservations blocks until every observation enqueued before the
// call has been durably recorded (or counted as a failure). It is the
// barrier between traffic and anything reading the log — Retrain calls
// it before snapshotting, tests call it before asserting on stats.
// A no-op in synchronous mode.
func (e *Engine) FlushObservations() {
	e.flushObservations(0)
}

// TryFlushObservations is FlushObservations with a deadline: it reports
// whether the queue drained within the timeout. Request handlers that
// only want read-your-writes freshness use this, so a stalled flusher
// (hung filesystem under the log, say) degrades them to slightly stale
// stats instead of blocking them forever.
func (e *Engine) TryFlushObservations(timeout time.Duration) bool {
	return e.flushObservations(timeout)
}

func (e *Engine) flushObservations(timeout time.Duration) bool {
	q := &e.obsq
	if q.ring == nil {
		return true
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	target := q.enqueued.Load()
	for q.processed.Load() < target {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false
		}
		select {
		case q.notify <- struct{}{}:
		default:
		}
		time.Sleep(100 * time.Microsecond)
	}
	return true
}

// Close stops the observation flusher after a final drain: everything
// enqueued by Execute calls that returned before Close is durably
// recorded. Safe to call multiple times and on engines without an
// observation log. Callers stop traffic first (the HTTP server drains
// in-flight requests before the engine closes).
func (e *Engine) Close() error {
	q := &e.obsq
	if q.ring == nil {
		return nil
	}
	q.closeOnce.Do(func() {
		close(q.stop)
		<-q.done
	})
	return nil
}
