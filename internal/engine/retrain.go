// Adaptive retraining: the engine's closed loop. Observations harvested
// from served executions are merged with the seed training database,
// a candidate model is trained, and a no-regression gate decides whether
// it replaces the live model — atomically, while requests keep flowing.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/ml"
)

// defaultHoldoutFrac is the gate's held-out slice when Options leaves
// HoldoutFrac zero.
const defaultHoldoutFrac = 0.25

// retrainSeedBase seeds the deterministic stratified holdout; each
// attempt shifts it so successive gates evaluate different slices (a
// candidate cannot pass by overfitting one fixed slice).
const retrainSeedBase = 20130223 // PPoPP'13

// ErrRetrainInProgress is returned when a retrain is triggered while
// another is still running; retraining is deliberately single-flight.
var ErrRetrainInProgress = errors.New("engine: retrain already in progress")

// RetrainResult reports one retrain attempt.
type RetrainResult struct {
	// Attempt numbers the attempt (monotonic per engine).
	Attempt uint64 `json:"attempt"`
	// Promoted reports whether the candidate passed the gate and was
	// hot-swapped in as NewVersion.
	Promoted   bool `json:"promoted"`
	NewVersion int  `json:"newVersion,omitempty"`
	// LiveVersion is the version the candidate was gated against.
	LiveVersion int `json:"liveVersion"`
	// GateLive / GateCandidate are held-out accuracies over HoldoutSize
	// samples: the live configuration (same model family, seed data
	// only) vs the candidate configuration (seed + observations), each
	// refit without the holdout so the comparison is symmetric. The
	// gate requires GateCandidate >= GateLive.
	GateLive      float64 `json:"gateLive"`
	GateCandidate float64 `json:"gateCandidate"`
	HoldoutSize   int     `json:"holdoutSize"`
	// SeedRecords / ObsRecords is the merged training-set composition.
	SeedRecords int `json:"seedRecords"`
	ObsRecords  int `json:"obsRecords"`
	// SkippedObservations counts log entries that could not train
	// (unlabeled, unverified, other platform, mismatched schema) or
	// were superseded by a newer observation of the same cell.
	SkippedObservations int `json:"skippedObservations,omitempty"`
	// Reason explains a non-promotion.
	Reason string `json:"reason,omitempty"`
}

// RetrainStatus is the retrainer's point-in-time state.
type RetrainStatus struct {
	// Enabled reports whether the engine has an observation log (the
	// loop's prerequisite); Background whether a retrainer goroutine is
	// running.
	Enabled    bool `json:"enabled"`
	Background bool `json:"background"`
	InProgress bool `json:"inProgress"`

	Attempts   uint64 `json:"attempts"`
	Promotions uint64 `json:"promotions"`
	Rejections uint64 `json:"rejections"`

	// LabeledObservations is the log's current labeled count;
	// LastTrainedLabeled the count when the last attempt ran (the
	// background threshold compares the two).
	LabeledObservations uint64 `json:"labeledObservations"`
	LastTrainedLabeled  uint64 `json:"lastTrainedLabeled"`

	Last      *RetrainResult `json:"last,omitempty"`
	LastError string         `json:"lastError,omitempty"`
}

// retrainState serializes retrain attempts and remembers the last
// outcome for status reporting.
type retrainState struct {
	runMu sync.Mutex // held for the duration of one attempt (TryLock)

	mu             sync.Mutex // guards the fields below
	last           *RetrainResult
	lastErr        string
	inProgress     bool
	background     bool
	trainedLabeled uint64 // labeled count at the last attempt
}

// Retrain runs one synchronous retrain attempt: snapshot the observation
// log, merge with the seed database, train a candidate, gate it against
// the live model on a stratified held-out slice, and promote it into the
// registry if it does not regress. Single-flight: a concurrent call
// returns ErrRetrainInProgress.
//
// A gate rejection is a successful attempt (Promoted=false with a
// Reason), not an error; errors mean the attempt itself could not run.
func (e *Engine) Retrain() (*RetrainResult, error) {
	if e.opts.ObsLog == nil {
		return nil, errors.New("engine: adaptive retraining requires an observation log")
	}
	if !e.retrain.runMu.TryLock() {
		return nil, ErrRetrainInProgress
	}
	defer e.retrain.runMu.Unlock()
	e.retrain.mu.Lock()
	e.retrain.inProgress = true
	e.retrain.mu.Unlock()

	// Recorded traffic must be visible to this attempt: wait for the
	// async flusher to durably append everything already executed.
	e.FlushObservations()
	// Capture the labeled count BEFORE the snapshot: labels arriving
	// while training runs are not in this attempt's training set, so
	// they must still count toward the next threshold check.
	labeledBefore := e.opts.ObsLog.LabeledCount()
	attempt := e.stats.retrainAttempts.Add(1)
	res, err := e.retrainOnce(attempt)

	e.retrain.mu.Lock()
	e.retrain.inProgress = false
	if err != nil {
		// A failed attempt consumed nothing: leave trainedLabeled alone
		// so the background loop retries on its next tick instead of
		// waiting for minNew brand-new labels.
		e.retrain.lastErr = err.Error()
	} else {
		e.retrain.trainedLabeled = labeledBefore
		e.retrain.last = res
		e.retrain.lastErr = ""
	}
	e.retrain.mu.Unlock()
	return res, err
}

func (e *Engine) retrainOnce(attempt uint64) (*RetrainResult, error) {
	snap, err := e.opts.ObsLog.Snapshot()
	if err != nil {
		return nil, err
	}
	// Resolving the registry also materializes the live model: the gate
	// needs something to compare against even before the first request.
	reg, err := e.registryFor("")
	if err != nil {
		return nil, err
	}
	live := reg.current()
	res := &RetrainResult{Attempt: attempt, LiveVersion: live.Version}

	// Only observations matching the live model's feature schema can
	// join its training set (positional vectors tolerate nothing less).
	wantNames := live.art.FeatureNames
	obsRecs, skipped := harness.ObservationRecords(e.spaceStrs, wantNames, e.opts.Platform, snap)
	// Repeat executions of one deterministic cell are identical rows:
	// left in, copies of the same row land on BOTH sides of the holdout
	// split and let a memorizing candidate inflate its gate score. Keep
	// only the newest observation per cell.
	obsRecs, dups := dedupeNewestPerCell(obsRecs)
	res.ObsRecords, res.SkippedObservations = len(obsRecs), skipped+dups
	if len(obsRecs) == 0 {
		res.Reason = "no usable labeled observations"
		e.stats.retrainRejected.Add(1)
		return res, nil
	}

	// Merge: seed sweep records + harvested observations, each through
	// the same Dataset pipeline (soft labels included) the offline
	// phase uses.
	obsDB := &harness.DB{Space: append([]string{}, e.spaceStrs...), Records: obsRecs}
	data := obsDB.Dataset(e.opts.Platform, nil)
	if e.opts.DB != nil {
		seed := e.opts.DB.Dataset(e.opts.Platform, nil)
		res.SeedRecords = seed.Len()
		if data, err = ml.MergeDatasets(seed, data); err != nil {
			return nil, err
		}
	}

	frac := e.opts.HoldoutFrac
	if frac == 0 {
		frac = defaultHoldoutFrac
	}
	trainIdx, holdIdx := ml.StratifiedHoldout(data, frac, retrainSeedBase+int64(attempt))
	if len(holdIdx) == 0 || len(trainIdx) == 0 {
		res.Reason = fmt.Sprintf("dataset too small to gate (%d samples)", data.Len())
		e.stats.retrainRejected.Add(1)
		return res, nil
	}
	res.HoldoutSize = len(holdIdx)

	// The no-regression gate is SYMMETRIC: the candidate recipe (seed +
	// observations) and the live recipe (seed only — what the serving
	// model was trained from) are each refit on the train split and
	// scored on the same held-out slice, which neither refit saw.
	// Comparing against a refit of the live configuration rather than
	// the live artifact itself keeps the incumbent honest: the live
	// model trained on the holdout rows, so scoring IT there would
	// measure memory, not accuracy, and no candidate could ever clear
	// the bar on matching data. (Without seed data there is nothing to
	// refit, so the live artifact itself is the baseline.)
	gateCand, err := ml.TrainArtifact(data.Subset(trainIdx), e.opts.Model)
	if err != nil {
		return nil, err
	}
	res.GateCandidate = gateCand.AccuracyOn(data, holdIdx)
	if seedTrain := indicesBelow(trainIdx, res.SeedRecords); len(seedTrain) > 0 {
		baseline, err := ml.TrainArtifact(data.Subset(seedTrain), e.opts.Model)
		if err != nil {
			return nil, err
		}
		res.GateLive = baseline.AccuracyOn(data, holdIdx)
	} else {
		res.GateLive = live.art.AccuracyOn(data, holdIdx)
	}
	if res.GateCandidate < res.GateLive {
		res.Reason = fmt.Sprintf("candidate held-out accuracy %.4f regresses vs live %.4f", res.GateCandidate, res.GateLive)
		e.stats.retrainRejected.Add(1)
		return res, nil
	}

	// Gate passed: the deployable model is refit on the COMPLETE merged
	// dataset (select on holdout, fit on all) so serving benefits from
	// every sample, including the gate slice.
	cand, err := ml.TrainArtifact(data, e.opts.Model)
	if err != nil {
		return nil, err
	}
	cand.Platform = e.opts.Platform
	cand.Space = append([]string{}, e.spaceStrs...)
	if err := e.fw.CheckArtifact(cand); err != nil {
		return nil, err
	}
	e.stats.trainings.Add(1)

	cand.Lineage = &ml.Lineage{TrainedAtUnix: time.Now().Unix()} // rest stamped by promote
	nv := reg.promote(cand, ModelRetrained, ModelVersion{
		SeedRecords:   res.SeedRecords,
		ObsRecords:    res.ObsRecords,
		GateLive:      res.GateLive,
		GateCandidate: res.GateCandidate,
		HoldoutSize:   res.HoldoutSize,
	})
	res.Promoted, res.NewVersion = true, nv.Version
	e.stats.retrainPromoted.Add(1)

	if e.opts.SaveTrained && e.opts.ArtifactDir != "" {
		// Persist the promoted model so a restart warm-starts from the
		// latest validated version; failure is counted, never fatal.
		path := ArtifactPath(e.opts.ArtifactDir, e.opts.Platform, "")
		if err := ml.SaveArtifact(path, cand); err != nil {
			e.stats.saveFailures.Add(1)
		}
	}
	return res, nil
}

// indicesBelow filters idx to values < n (the merged dataset lays out
// the n seed rows first, so these are the seed side of a split).
func indicesBelow(idx []int, n int) []int {
	var out []int
	for _, i := range idx {
		if i < n {
			out = append(out, i)
		}
	}
	return out
}

// dedupeNewestPerCell keeps, per (program, size) cell, only the newest
// record (the input is in log order). Platform is uniform here: the
// caller already filtered to the engine's platform.
func dedupeNewestPerCell(recs []harness.Record) (out []harness.Record, dropped int) {
	type cell struct {
		program string
		sizeIdx int
	}
	last := map[cell]int{}
	for i, r := range recs {
		last[cell{r.Program, r.SizeIdx}] = i
	}
	out = make([]harness.Record, 0, len(last))
	for i, r := range recs {
		if last[cell{r.Program, r.SizeIdx}] == i {
			out = append(out, r)
		}
	}
	return out, len(recs) - len(out)
}

// RetrainStatus reports the retrainer's current state.
func (e *Engine) RetrainStatus() RetrainStatus {
	st := RetrainStatus{
		Enabled:    e.opts.ObsLog != nil,
		Attempts:   e.stats.retrainAttempts.Load(),
		Promotions: e.stats.retrainPromoted.Load(),
		Rejections: e.stats.retrainRejected.Load(),
	}
	if st.Enabled {
		st.LabeledObservations = e.opts.ObsLog.LabeledCount()
	}
	e.retrain.mu.Lock()
	st.Background = e.retrain.background
	st.InProgress = e.retrain.inProgress
	st.Last = e.retrain.last
	st.LastError = e.retrain.lastErr
	st.LastTrainedLabeled = e.retrain.trainedLabeled
	e.retrain.mu.Unlock()
	return st
}

// StartRetrainer launches the background retraining loop: every
// interval, if at least minNew labeled observations arrived since the
// last attempt, run Retrain. Returns a stop function that halts the loop
// and waits for an in-flight attempt to finish. The loop never crashes
// the engine: attempt errors are recorded in RetrainStatus.
func (e *Engine) StartRetrainer(interval time.Duration, minNew int) (stop func(), err error) {
	if e.opts.ObsLog == nil {
		return nil, errors.New("engine: adaptive retraining requires an observation log")
	}
	if interval <= 0 {
		interval = time.Minute
	}
	if minNew < 1 {
		minNew = 1
	}
	e.retrain.mu.Lock()
	if e.retrain.background {
		e.retrain.mu.Unlock()
		return nil, errors.New("engine: retrainer already running")
	}
	e.retrain.background = true
	e.retrain.mu.Unlock()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				e.retrain.mu.Lock()
				trained := e.retrain.trainedLabeled
				e.retrain.mu.Unlock()
				if e.opts.ObsLog.LabeledCount() < trained+uint64(minNew) {
					continue
				}
				// Errors and rejections land in RetrainStatus; a
				// concurrent manual trigger (ErrRetrainInProgress) just
				// means the work is already happening.
				e.Retrain() //nolint:errcheck
			}
		}
	}()
	var stopOnce sync.Once
	return func() {
		stopOnce.Do(func() {
			close(done)
			wg.Wait()
			e.retrain.mu.Lock()
			e.retrain.background = false
			e.retrain.mu.Unlock()
		})
	}, nil
}
