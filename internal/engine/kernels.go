package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/inspire"
)

// Runtime kernel registration: untrusted MiniCL source uploaded through
// POST /kernels, compiled through the same front end as the built-in
// suite and registered under a tenant-qualified name ("tenant/name").
// Qualified names are disjoint from the built-in namespace (no built-in
// contains a "/"), so user kernels flow through the existing program
// memo — including its LRU eviction, which makes idle tenant programs
// recompile-on-next-use instead of pinning compiled code forever.

// ErrKernelExists reports a registration under an already-taken name.
var ErrKernelExists = errors.New("engine: kernel name already registered")

// ErrInvalidKernel reports a spec rejected before compilation (bad
// name, bad size family) — a client error, not a quota or compile one.
var ErrInvalidKernel = errors.New("engine: invalid kernel spec")

// CompileError wraps a front-end failure for an uploaded kernel so the
// serving layer can answer 400 with the MiniCL position intact.
type CompileError struct {
	Name string
	Err  error
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("engine: kernel %s: compile failed: %v", e.Name, e.Err)
}

func (e *CompileError) Unwrap() error { return e.Err }

// KernelSpec is one kernel upload.
type KernelSpec struct {
	// Name is the tenant-local kernel name ([a-zA-Z0-9_-], ≤ 64 chars).
	Name string `json:"name"`
	// Source is the MiniCL source text.
	Source string `json:"source"`
	// Kernel names the kernel function to serve; defaults to the
	// source's only kernel (required when the source defines several).
	Kernel string `json:"kernel,omitempty"`
	// BaseN is the smallest problem size (default 1024; must be a
	// multiple of the work-group size).
	BaseN int `json:"baseSize,omitempty"`
	// NumSizes is the size-family length (default 4, doubling from
	// BaseN).
	NumSizes int `json:"sizes,omitempty"`
}

// KernelInfo describes one registered kernel.
type KernelInfo struct {
	Name        string `json:"name"` // qualified: tenant/name
	Tenant      string `json:"tenant"`
	Kernel      string `json:"kernel"`
	SourceBytes int    `json:"sourceBytes"`
	SizeNs      []int  `json:"sizeNs"`
	Tier        string `json:"tier"`
}

// userKernel is one registered upload. The bench program retains the
// source, so an evicted compiled program is rebuilt from here on demand.
type userKernel struct {
	bench  *bench.Program
	tenant string
	info   KernelInfo
}

type kernelTable struct {
	mu sync.RWMutex
	m  map[string]*userKernel
}

func validKernelName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		ok := r == '_' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// RegisterKernel compiles and registers an uploaded kernel for tenant.
// On success the kernel serves /predict and /execute immediately under
// its qualified name.
func (e *Engine) RegisterKernel(tenant string, spec KernelSpec) (*KernelInfo, error) {
	tn := tenantName(tenant)
	if !validKernelName(spec.Name) {
		return nil, fmt.Errorf("%w: name %q (want [a-zA-Z0-9_-], at most 64 chars)", ErrInvalidKernel, spec.Name)
	}
	qname := tn + "/" + spec.Name

	// Quota pre-check before spending compile work; re-checked at
	// insertion, which is the authoritative gate.
	if err := e.checkKernelQuota(tn, int64(len(spec.Source)), qname); err != nil {
		e.noteQuotaRejection(err)
		return nil, err
	}

	// Front end: lex/parse/sema → INSPIRE. Errors carry line:column.
	u, err := inspire.LowerSource(qname, spec.Source)
	if err != nil {
		return nil, &CompileError{Name: qname, Err: err}
	}
	kernelName := spec.Kernel
	if kernelName == "" {
		if len(u.Kernels) != 1 {
			return nil, &CompileError{Name: qname,
				Err: fmt.Errorf("source defines %d kernels; specify which to serve", len(u.Kernels))}
		}
		kernelName = u.Kernels[0].Name
	}
	fn := u.Kernel(kernelName)
	if fn == nil {
		return nil, &CompileError{Name: qname, Err: fmt.Errorf("kernel %q not found in source", kernelName)}
	}

	bp, err := bench.UserProgram(qname, "user", spec.Source, kernelName, fn, spec.BaseN, spec.NumSizes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKernel, err)
	}
	// Full pipeline — optimize, verify, exec-compile, backend analysis —
	// exactly what the program memo runs for built-ins, so upload-time
	// success means serve-time compiles cannot fail.
	cp, err := core.CompileSource(qname, spec.Source, kernelName)
	if err != nil {
		return nil, &CompileError{Name: qname, Err: err}
	}

	info := KernelInfo{
		Name:        qname,
		Tenant:      tn,
		Kernel:      kernelName,
		SourceBytes: len(spec.Source),
		Tier:        cp.Compiled.Tier().String(),
	}
	for _, s := range bp.Sizes {
		info.SizeNs = append(info.SizeNs, s.N)
	}

	// Authoritative gate. Name existence is per-engine (kernels register
	// into one shard); the quota accounting commits in the — possibly
	// fleet-shared — tenant table. Lock order: kernels.mu, then the
	// tenant table's mutex inside reserveRegistration.
	e.kernels.mu.Lock()
	if e.kernels.m[qname] != nil {
		e.kernels.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrKernelExists, qname)
	}
	if err := e.tenants.reserveRegistration(tn, int64(len(spec.Source)), e.opts.Tenant, e.retryAfter()); err != nil {
		e.kernels.mu.Unlock()
		e.noteQuotaRejection(err)
		return nil, err
	}
	if e.kernels.m == nil {
		e.kernels.m = map[string]*userKernel{}
	}
	e.kernels.m[qname] = &userKernel{bench: bp, tenant: tn, info: info}
	e.kernels.mu.Unlock()

	// Seed the program memo with the already-compiled entry so the first
	// request does not recompile; eviction falls back to the stored
	// source.
	e.programs.Do(qname, func() (*programEntry, error) {
		return &programEntry{bench: bp, prog: cp}, nil
	})
	e.stats.kernelsRegistered.Add(1)
	return &info, nil
}

// noteQuotaRejection counts quota-typed registration failures (name
// conflicts and validation errors are not quota pressure).
func (e *Engine) noteQuotaRejection(err error) {
	var qe *QuotaError
	if errors.As(err, &qe) {
		e.stats.quotaRejections.Add(1)
	}
}

// checkKernelQuota is the pre-compile rejection: name taken or tenant
// over quota, checked without committing anything.
func (e *Engine) checkKernelQuota(tenant string, srcLen int64, qname string) error {
	e.kernels.mu.RLock()
	taken := e.kernels.m[qname] != nil
	e.kernels.mu.RUnlock()
	if taken {
		return fmt.Errorf("%w: %s", ErrKernelExists, qname)
	}
	return e.tenants.checkRegistration(tenant, srcLen, e.opts.Tenant, e.retryAfter())
}

// ListKernels returns every registered user kernel, sorted by qualified
// name.
func (e *Engine) ListKernels() []KernelInfo {
	e.kernels.mu.RLock()
	out := make([]KernelInfo, 0, len(e.kernels.m))
	for _, uk := range e.kernels.m {
		out = append(out, uk.info)
	}
	e.kernels.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// userBench resolves a qualified user-kernel name to its bench program.
func (e *Engine) userBench(qname string) (*bench.Program, error) {
	e.kernels.mu.RLock()
	uk := e.kernels.m[qname]
	e.kernels.mu.RUnlock()
	if uk == nil {
		return nil, fmt.Errorf("engine: unknown kernel %q", qname)
	}
	return uk.bench, nil
}

// benchFor routes a program name: qualified names (containing "/") are
// user kernels, everything else the built-in suite.
func (e *Engine) benchFor(name string) (*bench.Program, error) {
	if strings.Contains(name, "/") {
		return e.userBench(name)
	}
	return bench.Get(name)
}
