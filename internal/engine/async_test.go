package engine

import (
	"context"
	"testing"
	"time"
)

// TestExecuteDoesNotWaitForObservationAppend pins the async acceptance
// criterion: /execute latency no longer includes the observation append.
// The flusher is gated shut, yet Execute returns — the record is only
// pending, nothing has touched the log.
func TestExecuteDoesNotWaitForObservationAppend(t *testing.T) {
	opts, log := adaptiveOpts(t)
	gate := make(chan struct{})
	opts.obsGate = gate
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ex, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0})
	if err != nil {
		t.Fatal(err) // would deadlock here if the append were inline
	}
	if !ex.Verified {
		t.Fatalf("execution failed verification: %s", ex.VerifyError)
	}
	// The response is out; the observation is queued, not durable.
	if st := log.Stats(); st.Total != 0 {
		t.Fatalf("observation reached the log before the flusher ran: %+v", st)
	}
	if s := eng.Stats(); s.Observations != 0 || s.ObservationsPending != 1 {
		t.Fatalf("stats before release: %+v", s)
	}

	// A bounded flush against the stalled flusher gives up instead of
	// blocking (this keeps /observations responsive on a hung log).
	if eng.TryFlushObservations(10 * time.Millisecond) {
		t.Fatal("TryFlushObservations claimed to drain past a closed gate")
	}

	close(gate)
	eng.FlushObservations()
	if !eng.TryFlushObservations(time.Second) {
		t.Fatal("TryFlushObservations failed on a drained queue")
	}
	if st := log.Stats(); st.Total != 1 || st.Labeled != 1 {
		t.Fatalf("flushed log: %+v", st)
	}
	if s := eng.Stats(); s.Observations != 1 || s.ObservationsPending != 0 {
		t.Fatalf("stats after flush: %+v", s)
	}
}

// TestObservationOverloadShedsAndCounts: with a tiny ring and a stalled
// flusher, excess executions shed their observations (counted, never
// blocking the response); every execution is either recorded or counted
// dropped — none vanish.
func TestObservationOverloadShedsAndCounts(t *testing.T) {
	opts, log := adaptiveOpts(t)
	gate := make(chan struct{})
	opts.obsGate = gate
	opts.ObsQueue = 2
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const executes = 10
	for i := 0; i < executes; i++ {
		if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0}); err != nil {
			t.Fatal(err)
		}
	}
	// The stalled flusher holds at most one popped record; the ring holds
	// two more. Everything else must have been shed.
	if s := eng.Stats(); s.ObservationsDropped < executes-3 || s.ObservationsDropped >= executes {
		t.Fatalf("dropped = %d with ring cap 2, want within [%d, %d)", s.ObservationsDropped, executes-3, executes)
	}

	close(gate)
	eng.FlushObservations()
	s := eng.Stats()
	if s.Observations+s.ObservationsDropped != executes {
		t.Fatalf("recorded %d + dropped %d != executed %d", s.Observations, s.ObservationsDropped, executes)
	}
	if st := log.Stats(); st.Total != s.Observations {
		t.Fatalf("log holds %d, stats claim %d", st.Total, s.Observations)
	}
}

// TestEngineCloseFlushesObservations: Close performs the final drain, so
// everything enqueued by completed Execute calls is durable afterwards —
// no explicit flush needed on the shutdown path.
func TestEngineCloseFlushesObservations(t *testing.T) {
	opts, log := adaptiveOpts(t)
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	const executes = 5
	for i := 0; i < executes; i++ {
		if _, err := eng.Execute(context.Background(), Request{Program: "matmul", SizeIdx: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if st := log.Stats(); st.Total != executes {
		t.Fatalf("log after Close: %+v, want %d records", st, executes)
	}
}

// TestEngineSynchronousObservationMode: ObsQueue < 0 restores inline
// recording — the observation is durable the moment Execute returns.
func TestEngineSynchronousObservationMode(t *testing.T) {
	opts, log := adaptiveOpts(t)
	opts.ObsQueue = -1
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 1}); err != nil {
		t.Fatal(err)
	}
	if st := log.Stats(); st.Total != 1 {
		t.Fatalf("synchronous mode did not record inline: %+v", st)
	}
	eng.FlushObservations() // no-op, must not hang
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePredictIntoZeroAllocs pins the serving acceptance criterion:
// a warm PredictInto performs zero heap allocations.
func TestEnginePredictIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Program: "vecadd", SizeIdx: 1}
	var p Prediction
	if err := eng.PredictInto(req, &p); err != nil {
		t.Fatal(err) // warm every cache and pool
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := eng.PredictInto(req, &p); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm PredictInto allocates %.2f/op, want 0", avg)
	}
	// PredictInto answers exactly what Predict answers.
	q, err := eng.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if *q != p {
		t.Fatalf("PredictInto %+v != Predict %+v", p, *q)
	}
}
