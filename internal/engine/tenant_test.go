package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/harness"
)

// TestSharedTenantTableSpansEngines: two engines handed the same
// TenantTable enforce one fleet-wide quota, not one per engine — the
// property the shard router depends on.
func TestSharedTenantTableSpansEngines(t *testing.T) {
	shared := NewTenantTable()
	db := testDB(t)
	mk := func(platform string) *Engine {
		eng, err := New(Options{
			Platform: platform, DB: db, Model: harness.FastModel(),
			Tenant:        TenantLimits{MaxKernels: 2},
			SharedTenants: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := mk("mc1"), mk("mc2")

	if _, err := a.RegisterKernel("alice", KernelSpec{Name: "k1", Source: scaleSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterKernel("alice", KernelSpec{Name: "k2", Source: scaleSrc}); err != nil {
		t.Fatal(err)
	}
	// Third registration exceeds the fleet-wide cap even though each
	// engine has only seen one kernel from this tenant.
	var qe *QuotaError
	if _, err := a.RegisterKernel("alice", KernelSpec{Name: "k3", Source: scaleSrc}); !errors.As(err, &qe) {
		t.Fatalf("third register err = %v, want QuotaError", err)
	}
	// A different tenant is unaffected.
	if _, err := b.RegisterKernel("bob", KernelSpec{Name: "k1", Source: scaleSrc}); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
}

// TestSharedTenantConcurrencySpansEngines: the in-flight execution cap
// also charges the shared table across engines.
func TestSharedTenantConcurrencySpansEngines(t *testing.T) {
	shared := NewTenantTable()
	db := testDB(t)
	mk := func(platform string) *Engine {
		eng, err := New(Options{
			Platform: platform, DB: db, Model: harness.FastModel(),
			Tenant:        TenantLimits{MaxConcurrent: 1},
			SharedTenants: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := mk("mc1"), mk("mc2")

	releaseA, err := a.acquireTenantSlot("carol")
	if err != nil {
		t.Fatal(err)
	}
	// Engine b sees the slot taken even though it never served carol.
	if _, err := b.acquireTenantSlot("carol"); err == nil {
		t.Fatal("second slot granted across engines; want QuotaError")
	}
	releaseA()
	releaseB, err := b.acquireTenantSlot("carol")
	if err != nil {
		t.Fatalf("slot after release: %v", err)
	}
	releaseB()

	// And the full Execute path still works against a shared table.
	if _, err := a.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0, Tenant: "carol"}); err != nil {
		t.Fatal(err)
	}
}
