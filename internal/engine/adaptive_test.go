package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/ml"
	"repro/internal/obs"
)

// adaptiveOpts is the adaptive-loop test configuration: the shared seed
// database (3 programs at sizes 0-1), a fresh observation log, kNN.
func adaptiveOpts(t testing.TB) (Options, *obs.Log) {
	t.Helper()
	log, err := obs.Open(obs.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	o := fastOpts(t)
	o.ObsLog = log
	return o, log
}

// TestEngineAdaptiveClosedLoop pins the PR's acceptance criterion end to
// end: a warm engine fed executions for a program size ABSENT from the
// seed database (size 2; the seed holds sizes 0-1) produces a new model
// version that passes the no-regression gate and serves subsequent
// predictions without restart.
func TestEngineAdaptiveClosedLoop(t *testing.T) {
	opts, log := adaptiveOpts(t)
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	before, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 2})
	if err != nil {
		t.Fatal(err)
	}
	if before.ModelVersion != 1 {
		t.Fatalf("seed model version = %d, want 1", before.ModelVersion)
	}

	// Serve traffic: every execution is recorded and oracle-labeled.
	const executes = 8
	for i := 0; i < executes; i++ {
		ex, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Verified {
			t.Fatalf("execution %d failed verification: %s", i, ex.VerifyError)
		}
	}
	// Recording is asynchronous: the flush barrier makes every enqueued
	// observation durable before the assertions read the log.
	eng.FlushObservations()
	st := eng.Stats()
	if st.Observations != executes || st.ObservationsLabeled != executes {
		t.Fatalf("observations = %d labeled = %d, want %d/%d", st.Observations, st.ObservationsLabeled, executes, executes)
	}
	if st.ObservationsPending != 0 || st.ObservationsDropped != 0 {
		t.Fatalf("after flush: pending = %d dropped = %d, want 0/0", st.ObservationsPending, st.ObservationsDropped)
	}
	snap, err := log.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	oracleClass := snap[0].BestClass
	if !snap[0].Labeled || len(snap[0].Times) == 0 {
		t.Fatalf("observation not oracle-labeled: %+v", snap[0])
	}

	// Close the loop.
	res, err := eng.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.NewVersion != 2 {
		t.Fatalf("retrain did not promote: %+v", res)
	}
	// The 8 identical executions dedupe to ONE training record (repeat
	// observations of a deterministic cell carry no new information and
	// must not leak across the gate's holdout split).
	if res.ObsRecords != 1 || res.SkippedObservations != executes-1 || res.SeedRecords == 0 || res.HoldoutSize == 0 {
		t.Fatalf("retrain composition: %+v", res)
	}
	if res.GateCandidate < res.GateLive {
		t.Fatalf("promoted through a failing gate: %+v", res)
	}

	// The new version serves immediately, no restart.
	after, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 2})
	if err != nil {
		t.Fatal(err)
	}
	if after.ModelVersion != 2 || after.ModelSource != ModelRetrained {
		t.Fatalf("post-swap prediction served by %+v", after)
	}
	// The loop actually learned: the retrained model reproduces the
	// measured-best class for the cell it observed (its nearest
	// neighbours now include that exact point).
	if after.Class != oracleClass {
		t.Errorf("retrained model predicts class %d for the observed cell, oracle measured %d", after.Class, oracleClass)
	}

	// Lineage is recorded end to end.
	cur, versions, err := eng.ModelVersions("")
	if err != nil {
		t.Fatal(err)
	}
	if cur != 2 || len(versions) != 2 {
		t.Fatalf("registry: current=%d len=%d", cur, len(versions))
	}
	v2 := versions[1]
	if v2.Parent != 1 || v2.ObsRecords != 1 || v2.Source != ModelRetrained {
		t.Fatalf("lineage: %+v", v2)
	}
	art := v2.Artifact()
	if art.Lineage == nil || art.Lineage.ModelVersion != 2 || art.Lineage.Parent != 1 {
		t.Fatalf("artifact lineage: %+v", art.Lineage)
	}
}

func TestEngineRetrainRejectsWithoutLabels(t *testing.T) {
	opts, _ := adaptiveOpts(t)
	opts.OracleSampleEvery = -1 // record, never label
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 0}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Retrain() // flushes pending observations itself
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted || res.Reason == "" {
		t.Fatalf("labelless retrain promoted: %+v", res)
	}
	if s := eng.Stats(); s.RetrainRejections != 1 || s.RetrainPromotions != 0 {
		t.Fatalf("stats: %+v", s)
	}
	// Predictions still come from version 1.
	p, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelVersion != 1 {
		t.Fatalf("rejected retrain moved the served version: %d", p.ModelVersion)
	}
}

func TestEngineRetrainRequiresObsLog(t *testing.T) {
	eng, err := New(fastOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Retrain(); err == nil {
		t.Error("retrain without observation log succeeded")
	}
	if _, err := eng.StartRetrainer(time.Second, 1); err == nil {
		t.Error("retrainer without observation log started")
	}
	st := eng.RetrainStatus()
	if st.Enabled {
		t.Errorf("status claims adaptive loop enabled: %+v", st)
	}
}

func TestEngineRollback(t *testing.T) {
	opts, _ := adaptiveOpts(t)
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Execute(context.Background(), Request{Program: "matmul", SizeIdx: 2}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("retrain rejected: %+v", res)
	}
	v, err := eng.Rollback(1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != 1 {
		t.Fatalf("rollback landed on %d", v.Version)
	}
	p, err := eng.Predict(Request{Program: "matmul", SizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelVersion != 1 {
		t.Fatalf("post-rollback prediction from version %d", p.ModelVersion)
	}
	// History survives rollback; bogus versions are rejected.
	if cur, versions, _ := eng.ModelVersions(""); cur != 1 || len(versions) != 2 {
		t.Fatalf("registry after rollback: cur=%d len=%d", cur, len(versions))
	}
	if _, err := eng.Rollback(99); err == nil {
		t.Error("rollback to unknown version succeeded")
	}
	if s := eng.Stats(); s.Rollbacks != 1 {
		t.Fatalf("rollback counter: %+v", s)
	}
}

// TestEngineAdaptivePersistsPromotedModel: with SaveTrained, a promoted
// model lands in ArtifactDir, and a NEW process (second engine)
// warm-starts from the validated artifact, lineage intact.
func TestEngineAdaptivePersistsPromotedModel(t *testing.T) {
	opts, _ := adaptiveOpts(t)
	opts.ArtifactDir = t.TempDir()
	opts.SaveTrained = true
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Execute(context.Background(), Request{Program: "blackscholes", SizeIdx: 2}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("retrain rejected: %+v", res)
	}

	art, err := ml.LoadArtifact(ArtifactPath(opts.ArtifactDir, "mc2", ""))
	if err != nil {
		t.Fatal(err)
	}
	if art.Lineage == nil || art.Lineage.ModelVersion != 2 {
		t.Fatalf("persisted artifact lineage: %+v", art.Lineage)
	}

	second, err := New(Options{Platform: "mc2", DB: testDB(t), Model: harness.FastModel(), ArtifactDir: opts.ArtifactDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Predict(Request{Program: "blackscholes", SizeIdx: 2}); err != nil {
		t.Fatal(err)
	}
	if s := second.Stats(); s.Trainings != 0 || s.ArtifactLoads != 1 {
		t.Fatalf("second engine did not warm-start from the promoted model: %+v", s)
	}
	// The reloaded registry's v1 surfaces the promoted model's history.
	_, versions, err := second.ModelVersions("")
	if err != nil {
		t.Fatal(err)
	}
	if versions[0].ObsRecords == 0 || versions[0].GateCandidate == 0 {
		t.Fatalf("reloaded version lost its lineage: %+v", versions[0])
	}
}

// TestEngineHotSwapUnderConcurrentServing hammers Predict and Execute
// from many goroutines while the main goroutine retrains (hot-swapping
// versions) and rolls back, repeatedly. The race detector (CI runs this
// package with -race) proves no torn swap; the assertions prove every
// request was served by a complete, plausible version.
func TestEngineHotSwapUnderConcurrentServing(t *testing.T) {
	opts, _ := adaptiveOpts(t)
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the caches so the hammer measures serving, not compilation.
	if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 2}); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if c%2 == 0 {
					p, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 2})
					if err != nil {
						t.Errorf("predict during swap: %v", err)
						return
					}
					if p.ModelVersion < 1 || p.Model == "" || p.Partition == "" {
						t.Errorf("torn prediction: %+v", p)
						return
					}
				} else {
					ex, err := eng.Execute(context.Background(), Request{Program: "matmul", SizeIdx: 2})
					if err != nil {
						t.Errorf("execute during swap: %v", err)
						return
					}
					if ex.ModelVersion < 1 || !ex.Verified {
						t.Errorf("torn execution: %+v", ex)
						return
					}
				}
			}
		}(c)
	}

	// Drive promotions and rollbacks under load.
	swaps := 0
	for i := 0; i < 3; i++ {
		res, err := eng.Retrain()
		if err != nil && !errors.Is(err, ErrRetrainInProgress) {
			t.Errorf("retrain %d: %v", i, err)
			break
		}
		if err == nil && res.Promoted {
			swaps++
		}
	}
	if swaps > 0 {
		if _, err := eng.Rollback(1); err != nil {
			t.Errorf("rollback under load: %v", err)
		}
	}
	close(done)
	wg.Wait()
	if swaps == 0 {
		t.Fatal("no promotion happened; the hammer never crossed a swap")
	}
	eng.FlushObservations()
	if s := eng.Stats(); s.ObserveFailures != 0 {
		t.Fatalf("observation failures under load: %+v", s)
	}
}

// TestEngineBackgroundRetrainer drives the full background loop: traffic
// arrives, the ticker notices enough new labels, retrains, promotes, and
// the served version moves — all without an explicit trigger.
func TestEngineBackgroundRetrainer(t *testing.T) {
	opts, _ := adaptiveOpts(t)
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := eng.StartRetrainer(20*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := eng.StartRetrainer(time.Second, 1); err == nil {
		t.Fatal("second retrainer started")
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 2}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		st := eng.RetrainStatus()
		if !st.Background || !st.Enabled {
			t.Fatalf("status: %+v", st)
		}
		if st.Promotions > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("background retrainer never promoted: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
	p, err := eng.Predict(Request{Program: "vecadd", SizeIdx: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelVersion < 2 {
		t.Fatalf("background promotion not serving: version %d", p.ModelVersion)
	}
	stop()
	// After stop, no further attempts occur.
	st := eng.RetrainStatus()
	if st.Background {
		t.Fatalf("retrainer still marked running: %+v", st)
	}
	attempts := st.Attempts
	for i := 0; i < 3; i++ {
		if _, err := eng.Execute(context.Background(), Request{Program: "vecadd", SizeIdx: 3}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond)
	if got := eng.RetrainStatus().Attempts; got != attempts {
		t.Fatalf("stopped retrainer kept retraining: %d -> %d", attempts, got)
	}
}
