package wire

import (
	"testing"

	"repro/internal/engine"
)

// The encode/decode benchmarks below are pinned at 0 allocs/op by
// scripts/alloc_smoke.sh — they are the wire half of the zero-alloc
// serving guarantee.

func BenchmarkWireEncodePrediction(b *testing.B) {
	p := samplePrediction(0)
	buf := AppendPrediction(nil, &p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendPrediction(buf[:0], &p)
	}
	_ = buf
}

func BenchmarkWireDecodePredictRequest(b *testing.B) {
	req := engine.Request{Program: "vecadd", SizeIdx: 3}
	frame := AppendPredictRequest(nil, &req)
	_, payload, err := ParseFrame(frame)
	if err != nil {
		b.Fatal(err)
	}
	in := NewIntern()
	var out engine.Request
	if err := DecodePredictRequest(payload, &out, in); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodePredictRequest(payload, &out, in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeBatch64(b *testing.B) {
	p := samplePrediction(0)
	var enc BatchEncoder
	enc.Begin(nil)
	for i := 0; i < 64; i++ {
		enc.Prediction(&p)
	}
	buf := enc.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Begin(buf[:0])
		for j := 0; j < 64; j++ {
			enc.Prediction(&p)
		}
		buf = enc.Finish()
	}
	_ = buf
}

func BenchmarkWireDecodeBatchRequest64(b *testing.B) {
	reqs := make([]engine.Request, 64)
	for i := range reqs {
		reqs[i] = engine.Request{Program: "vecadd", SizeIdx: i % 12}
	}
	frame := AppendBatchRequest(nil, reqs)
	_, payload, err := ParseFrame(frame)
	if err != nil {
		b.Fatal(err)
	}
	in := NewIntern()
	in.Str([]byte("vecadd"))
	var out engine.Request
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := DecodeBatchRequest(payload)
		if err != nil {
			b.Fatal(err)
		}
		for it.Next(&out, in) {
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
