package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/engine"
)

// reader walks a payload with sticky-error semantics: after the first
// failure every accessor returns a zero value, so decoders read the
// whole field list unconditionally and check err once. All reads are
// bounds-checked against the payload — never against declared lengths —
// so hostile frames cannot drive reads or allocations past the input.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrTruncated, what, r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.off+2 > len(r.b) {
		r.fail("u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) i32() int32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail("i32")
		return 0
	}
	v := int32(binary.LittleEndian.Uint32(r.b[r.off:]))
	r.off += 4
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("f64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *reader) bool() bool {
	v := r.u8()
	if r.err == nil && v > 1 {
		r.err = fmt.Errorf("%w: bool byte %d", ErrBadValue, v)
	}
	return v == 1
}

// strBytes returns the string's bytes borrowed from the payload —
// valid only while the payload is; callers either intern or copy.
func (r *reader) strBytes() []byte {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail("str")
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) str() string { return string(r.strBytes()) }

// done rejects payloads with bytes past the last field: trailing
// garbage means a framing bug or a hostile client either way.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d bytes past payload", ErrTrailing, len(r.b)-r.off)
	}
	return nil
}

// decodeRequestBody reads the shared predict/execute request body into
// req. Program names are interned so warm decodes allocate nothing.
func decodeRequestBody(r *reader, req *engine.Request, in *Intern) {
	flags := r.u8()
	if r.err == nil && flags&^byte(1) != 0 {
		r.err = fmt.Errorf("%w: request flags %#x", ErrBadValue, flags)
		return
	}
	req.LeaveOut = flags&1 != 0
	req.SizeIdx = int(r.i32())
	req.Program = in.Str(r.strBytes())
	req.Tenant = ""
}

// DecodePredictRequest decodes a MsgPredictReq (or MsgExecuteReq —
// identical shape) payload into req.
func DecodePredictRequest(payload []byte, req *engine.Request, in *Intern) error {
	r := reader{b: payload}
	decodeRequestBody(&r, req, in)
	return r.done()
}

// BatchIter streams the items of a MsgBatchReq payload so the server
// can decode-predict-encode point by point without materializing the
// batch.
type BatchIter struct {
	r         reader
	remaining int
}

// DecodeBatchRequest validates the batch header and returns an
// iterator. Count() lets the caller enforce its own batch cap before
// touching any item.
func DecodeBatchRequest(payload []byte) (BatchIter, error) {
	r := reader{b: payload}
	n := int(r.u16())
	if r.err != nil {
		return BatchIter{}, r.err
	}
	// Each item is at least flags+size+len = 7 bytes; a count the
	// payload cannot hold is rejected before iteration starts.
	if n*7 > len(payload)-r.off {
		return BatchIter{}, fmt.Errorf("%w: %d items in %d bytes", ErrBadValue, n, len(payload)-r.off)
	}
	return BatchIter{r: r, remaining: n}, nil
}

// Count reports the number of items declared by the batch header.
func (it *BatchIter) Count() int { return it.remaining }

// Next decodes the next item into req. It returns false when the batch
// is exhausted — after which Err must be checked, since exhaustion and
// malformed input both stop iteration.
func (it *BatchIter) Next(req *engine.Request, in *Intern) bool {
	if it.remaining == 0 || it.r.err != nil {
		return false
	}
	it.remaining--
	decodeRequestBody(&it.r, req, in)
	return it.r.err == nil
}

// Err returns the first decode error, including trailing garbage after
// the final item.
func (it *BatchIter) Err() error {
	if it.r.err != nil {
		return it.r.err
	}
	if it.remaining == 0 {
		return it.r.done()
	}
	return nil
}

// decodePredictionBody mirrors appendPredictionBody. Response decoding
// happens in clients and tests, so plain string allocation is fine.
func decodePredictionBody(r *reader, p *engine.Prediction) {
	p.Program = r.str()
	p.Platform = r.str()
	p.SizeIdx = int(r.i32())
	p.SizeLabel = r.str()
	p.SizeN = int(r.i32())
	p.Class = int(r.i32())
	p.RawClass = int(r.i32())
	p.Clamped = r.bool()
	p.Partition = r.str()
	p.Model = r.str()
	p.ModelSource = r.str()
	p.ModelVersion = int(r.i32())
	p.LeftOut = r.str()
	p.PredictedTime = r.f64()
	p.OracleTime = r.f64()
	p.OraclePartition = r.str()
	p.CPUOnlyTime = r.f64()
	p.GPUOnlyTime = r.f64()
}

// DecodePrediction decodes a MsgPredictResp payload.
func DecodePrediction(payload []byte, p *engine.Prediction) error {
	r := reader{b: payload}
	decodePredictionBody(&r, p)
	return r.done()
}

// DecodeExecution decodes a MsgExecuteResp payload.
func DecodeExecution(payload []byte, x *engine.Execution) error {
	r := reader{b: payload}
	decodePredictionBody(&r, &x.Prediction)
	x.Makespan = r.f64()
	x.Verified = r.bool()
	x.VerifyError = r.str()
	return r.done()
}

// BatchItem is one point of a decoded batch response: a prediction, or
// the per-point error that replaced it.
type BatchItem struct {
	Pred engine.Prediction
	Err  string
	OK   bool
}

// DecodeBatchResponse decodes a MsgBatchResp payload, returning the
// items and the error count from the header (which must match the
// per-item flags).
func DecodeBatchResponse(payload []byte) ([]BatchItem, int, error) {
	r := reader{b: payload}
	n := int(r.u16())
	errs := int(r.u16())
	if r.err != nil {
		return nil, 0, r.err
	}
	// Minimum item is ok-flag + error-string length = 3 bytes: bound the
	// allocation by what the payload can actually contain.
	if n*3 > len(payload)-r.off {
		return nil, 0, fmt.Errorf("%w: %d items in %d bytes", ErrBadValue, n, len(payload)-r.off)
	}
	items := make([]BatchItem, 0, n)
	seenErrs := 0
	for i := 0; i < n; i++ {
		var it BatchItem
		it.OK = r.bool()
		if it.OK {
			decodePredictionBody(&r, &it.Pred)
		} else {
			it.Err = r.str()
			seenErrs++
		}
		if r.err != nil {
			return nil, 0, r.err
		}
		items = append(items, it)
	}
	if err := r.done(); err != nil {
		return nil, 0, err
	}
	if seenErrs != errs {
		return nil, 0, fmt.Errorf("%w: header says %d errors, items carry %d", ErrBadValue, errs, seenErrs)
	}
	return items, errs, nil
}

// ErrorFrame is a decoded MsgError payload.
type ErrorFrame struct {
	Status         int
	Code           string
	Message        string
	RetryAfterSecs int
}

// DecodeError decodes a MsgError payload.
func DecodeError(payload []byte) (ErrorFrame, error) {
	r := reader{b: payload}
	var e ErrorFrame
	e.Status = int(r.u16())
	e.Code = r.str()
	e.Message = r.str()
	e.RetryAfterSecs = int(r.u16())
	return e, r.done()
}
