package wire

import "repro/internal/engine"

// Encoders are append-style: the caller owns the buffer (typically a
// sync.Pool'd []byte in cmd/serve) and each call returns the extended
// slice, so a warm encode touches no allocator once the buffer has
// grown to its working size.

// appendRequestBody writes the shared predict/execute request payload:
// u8 flags (bit0 = leaveOut) | i32 size | str program.
func appendRequestBody(dst []byte, req *engine.Request) []byte {
	var flags byte
	if req.LeaveOut {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendI32(dst, int32(req.SizeIdx))
	return appendStr(dst, req.Program)
}

// AppendPredictRequest appends a complete MsgPredictReq frame. Tenant
// travels in the X-Tenant header, never in the frame, mirroring the
// JSON protocol.
func AppendPredictRequest(dst []byte, req *engine.Request) []byte {
	dst, start := beginFrame(dst, MsgPredictReq)
	dst = appendRequestBody(dst, req)
	return endFrame(dst, start)
}

// AppendExecuteRequest appends a complete MsgExecuteReq frame (same
// payload shape as predict).
func AppendExecuteRequest(dst []byte, req *engine.Request) []byte {
	dst, start := beginFrame(dst, MsgExecuteReq)
	dst = appendRequestBody(dst, req)
	return endFrame(dst, start)
}

// AppendBatchRequest appends a MsgBatchReq frame:
// u16 count | count x request bodies.
func AppendBatchRequest(dst []byte, reqs []engine.Request) []byte {
	dst, start := beginFrame(dst, MsgBatchReq)
	dst = appendU16(dst, uint16(len(reqs)))
	for i := range reqs {
		dst = appendRequestBody(dst, &reqs[i])
	}
	return endFrame(dst, start)
}

// appendPredictionBody writes the prediction payload shared by
// MsgPredictResp, MsgExecuteResp and batch items. Field order is the
// wire contract; see README's wire format table.
func appendPredictionBody(dst []byte, p *engine.Prediction) []byte {
	dst = appendStr(dst, p.Program)
	dst = appendStr(dst, p.Platform)
	dst = appendI32(dst, int32(p.SizeIdx))
	dst = appendStr(dst, p.SizeLabel)
	dst = appendI32(dst, int32(p.SizeN))
	dst = appendI32(dst, int32(p.Class))
	dst = appendI32(dst, int32(p.RawClass))
	dst = appendBool(dst, p.Clamped)
	dst = appendStr(dst, p.Partition)
	dst = appendStr(dst, p.Model)
	dst = appendStr(dst, p.ModelSource)
	dst = appendI32(dst, int32(p.ModelVersion))
	dst = appendStr(dst, p.LeftOut)
	dst = appendF64(dst, p.PredictedTime)
	dst = appendF64(dst, p.OracleTime)
	dst = appendStr(dst, p.OraclePartition)
	dst = appendF64(dst, p.CPUOnlyTime)
	return appendF64(dst, p.GPUOnlyTime)
}

// AppendPrediction appends a complete MsgPredictResp frame.
func AppendPrediction(dst []byte, p *engine.Prediction) []byte {
	dst, start := beginFrame(dst, MsgPredictResp)
	dst = appendPredictionBody(dst, p)
	return endFrame(dst, start)
}

// AppendExecution appends a MsgExecuteResp frame: the prediction body
// plus f64 makespan | bool verified | str verifyError.
func AppendExecution(dst []byte, x *engine.Execution) []byte {
	dst, start := beginFrame(dst, MsgExecuteResp)
	dst = appendPredictionBody(dst, &x.Prediction)
	dst = appendF64(dst, x.Makespan)
	dst = appendBool(dst, x.Verified)
	dst = appendStr(dst, x.VerifyError)
	return endFrame(dst, start)
}

// AppendError appends a MsgError frame:
// u16 httpStatus | str code | str message | u16 retryAfterSecs.
// retryAfterSecs is zero when no Retry-After applies; values beyond the
// u16 range saturate.
func AppendError(dst []byte, status int, code, message string, retryAfterSecs int) []byte {
	dst, start := beginFrame(dst, MsgError)
	dst = appendU16(dst, uint16(status))
	dst = appendStr(dst, code)
	dst = appendStr(dst, message)
	if retryAfterSecs < 0 {
		retryAfterSecs = 0
	} else if retryAfterSecs > 0xffff {
		retryAfterSecs = 0xffff
	}
	dst = appendU16(dst, uint16(retryAfterSecs))
	return endFrame(dst, start)
}

// BatchEncoder streams a MsgBatchResp frame:
// u16 count | u16 errCount | count x { bool ok | prediction body or str error }.
// The server appends each point's result as it is produced and Finish
// back-patches the counts and frame length, so the whole batch response
// is built in one pooled buffer with no intermediate slices.
type BatchEncoder struct {
	buf         []byte
	start       int
	count, errs int
}

// Begin starts the frame in dst. The encoder takes over the slice until
// Finish returns it.
func (e *BatchEncoder) Begin(dst []byte) {
	e.buf, e.start = beginFrame(dst, MsgBatchResp)
	e.buf = appendU16(e.buf, 0) // count, patched by Finish
	e.buf = appendU16(e.buf, 0) // errCount, patched by Finish
	e.count, e.errs = 0, 0
}

// Prediction appends one successful point.
func (e *BatchEncoder) Prediction(p *engine.Prediction) {
	e.buf = appendBool(e.buf, true)
	e.buf = appendPredictionBody(e.buf, p)
	e.count++
}

// Error appends one failed point.
func (e *BatchEncoder) Error(msg string) {
	e.buf = appendBool(e.buf, false)
	e.buf = appendStr(e.buf, msg)
	e.count++
	e.errs++
}

// Finish patches the counts and length and returns the completed
// buffer.
func (e *BatchEncoder) Finish() []byte {
	b := e.buf[e.start+5:]
	b[0], b[1] = byte(e.count), byte(e.count>>8)
	b[2], b[3] = byte(e.errs), byte(e.errs>>8)
	return endFrame(e.buf, e.start)
}
