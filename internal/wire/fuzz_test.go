package wire

import (
	"testing"

	"repro/internal/engine"
)

// FuzzWireDecode drives every decoder with arbitrary bytes. The
// contract under fuzzing: malformed frames error, never panic, and
// never allocate proportionally to declared (rather than actual)
// lengths. It runs in the CI fuzz smoke step next to the MiniCL
// front-end fuzzers.
func FuzzWireDecode(f *testing.F) {
	req := engine.Request{Program: "vecadd", SizeIdx: 3}
	f.Add(AppendPredictRequest(nil, &req))
	f.Add(AppendExecuteRequest(nil, &req))
	f.Add(AppendBatchRequest(nil, []engine.Request{req, {Program: "matmul", LeaveOut: true}}))
	p := engine.Prediction{Program: "vecadd", Platform: "mc1", Partition: "CPU 50% / GPU1 50%"}
	f.Add(AppendPrediction(nil, &p))
	f.Add(AppendExecution(nil, &engine.Execution{Prediction: p, Makespan: 1e-3, Verified: true}))
	var enc BatchEncoder
	enc.Begin(nil)
	enc.Prediction(&p)
	enc.Error("boom")
	f.Add(enc.Finish())
	f.Add(AppendError(nil, 429, "shed", "overloaded", 1))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})

	in := NewIntern()
	f.Fuzz(func(t *testing.T, b []byte) {
		msg, payload, err := ParseFrame(b)
		if err != nil {
			return
		}
		// Decode the payload as every message shape regardless of the
		// declared type — a hostile client controls that byte too.
		_ = msg
		var r engine.Request
		_ = DecodePredictRequest(payload, &r, in)
		if it, err := DecodeBatchRequest(payload); err == nil {
			var item engine.Request
			for it.Next(&item, in) {
			}
			_ = it.Err()
		}
		var pred engine.Prediction
		_ = DecodePrediction(payload, &pred)
		var ex engine.Execution
		_ = DecodeExecution(payload, &ex)
		_, _, _ = DecodeBatchResponse(payload)
		_, _ = DecodeError(payload)
	})
}
