// Package wire is the compact binary protocol spoken by cmd/serve and
// cmd/loadgen alongside JSON. At ~127k points/s the JSON encode/decode
// on /predict/batch was the dominant serving cost (see ROADMAP item 3);
// this codec replaces it with length-prefixed little-endian frames that
// encode and decode with zero allocations on the warm path (pooled
// buffers for responses, interned program names for requests).
//
// A frame is
//
//	u32le n | u8 msgType | payload (n-1 bytes)
//
// where n counts the message-type byte plus the payload, so an empty
// payload is n=1. Within a payload:
//
//	str  = u16le length | bytes (UTF-8, no terminator)
//	i32  = int32 little-endian
//	f64  = IEEE-754 bits as u64le
//	bool = u8 0 or 1 (any other value is a decode error)
//
// Multi-byte integers are little-endian throughout. Decoders reject
// short frames, trailing garbage, lengths beyond MaxFrame, and
// out-of-range bools/flags: a malformed frame must error, never panic
// or over-allocate (fuzzed by FuzzWireDecode).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ContentType negotiates the binary protocol over HTTP: a request body
// carrying this Content-Type is a wire frame, and the response will be
// one too.
const ContentType = "application/x-repro-wire"

// MaxFrame bounds the declared frame length (message type + payload).
// It matches cmd/serve's 1 MiB request-body cap so neither layer can be
// tricked into buffering more than the other accepts.
const MaxFrame = 1 << 20

// Message types. Requests are odd where they pair with a response
// (predict 1/2, batch 3/4, execute 5/6); MsgError is the universal
// failure response.
const (
	MsgPredictReq  byte = 1
	MsgPredictResp byte = 2
	MsgBatchReq    byte = 3
	MsgBatchResp   byte = 4
	MsgExecuteReq  byte = 5
	MsgExecuteResp byte = 6
	MsgError       byte = 7
)

// Decode errors. All malformed-input failures wrap one of these so
// callers can branch without string matching.
var (
	ErrShortFrame  = errors.New("wire: frame shorter than header")
	ErrFrameLength = errors.New("wire: declared frame length invalid")
	ErrTrailing    = errors.New("wire: trailing bytes after frame")
	ErrTruncated   = errors.New("wire: payload truncated")
	ErrBadValue    = errors.New("wire: field value out of range")
	ErrBadMessage  = errors.New("wire: unexpected message type")
)

// ParseFrame validates and splits one complete frame. The input must be
// exactly one frame — HTTP delivers bodies whole, so trailing bytes
// mean a corrupt or hostile client and are rejected.
func ParseFrame(b []byte) (msg byte, payload []byte, err error) {
	if len(b) < 5 {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d", ErrFrameLength, n)
	}
	if uint64(len(b)) != 4+uint64(n) {
		if uint64(len(b)) > 4+uint64(n) {
			return 0, nil, fmt.Errorf("%w: %d past frame end", ErrTrailing, uint64(len(b))-4-uint64(n))
		}
		return 0, nil, fmt.Errorf("%w: have %d of %d payload bytes", ErrTruncated, len(b)-4, n)
	}
	return b[4], b[5 : 4+n], nil
}

// beginFrame appends the frame header with a zero length placeholder
// and returns the buffer plus the offset of the placeholder for
// endFrame to patch.
func beginFrame(dst []byte, msg byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0, msg), start
}

// endFrame patches the length field once the payload is in place.
func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendI32(dst []byte, v int32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendStr writes a length-prefixed string, truncating at the u16
// limit. Nothing the server emits approaches 64 KiB (program names,
// partition labels, error text), so truncation is a formality rather
// than a data-loss path.
func appendStr(dst []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}
