package wire

import (
	"sync"
	"sync/atomic"
)

// internCap bounds the interning table. The realistic key population is
// tiny (benchmark programs plus registered user kernels), so the cap
// only matters under attack: once hostile traffic fills the table,
// unknown names fall back to plain allocation instead of growing the
// map without bound.
const internCap = 4096

// Intern deduplicates request strings so the warm decode path performs
// no allocations: looking up a []byte key in a map[string]string
// compiles to a no-copy probe, and a hit returns the long-lived
// canonical string. The table is read-mostly — a copy-on-write map
// behind an atomic pointer makes hits lock-free; misses take a mutex to
// republish.
type Intern struct {
	p  atomic.Pointer[map[string]string]
	mu sync.Mutex
}

// NewIntern returns an empty table.
func NewIntern() *Intern {
	in := &Intern{}
	m := make(map[string]string)
	in.p.Store(&m)
	return in
}

// Str returns the canonical string for b, interning it on first sight
// (unless the table is full, in which case the copy is returned
// without being retained).
func (in *Intern) Str(b []byte) string {
	m := *in.p.Load()
	if s, ok := m[string(b)]; ok { // no-alloc map probe on []byte key
		return s
	}
	s := string(b)
	in.mu.Lock()
	defer in.mu.Unlock()
	cur := *in.p.Load()
	if got, ok := cur[s]; ok { // raced with another miss
		return got
	}
	if len(cur) >= internCap {
		return s
	}
	next := make(map[string]string, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[s] = s
	in.p.Store(&next)
	return s
}

// Len reports the number of interned strings (tests and stats).
func (in *Intern) Len() int { return len(*in.p.Load()) }
