package wire

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
)

func samplePrediction(i int) engine.Prediction {
	return engine.Prediction{
		Program:         "vecadd",
		Platform:        "mc2",
		SizeIdx:         i,
		SizeLabel:       "1048576",
		SizeN:           1 << 20,
		Class:           3 + i%2,
		RawClass:        7,
		Clamped:         i%2 == 1,
		Partition:       "CPU 30% / GPU1 40% / GPU2 30%",
		Model:           "tree",
		ModelSource:     "artifact",
		ModelVersion:    2,
		LeftOut:         "",
		PredictedTime:   1.25e-3,
		OracleTime:      1.1e-3,
		OraclePartition: "CPU 20% / GPU1 50% / GPU2 30%",
		CPUOnlyTime:     9.7e-3,
		GPUOnlyTime:     2.2e-3,
	}
}

func TestPredictRequestRoundTrip(t *testing.T) {
	in := NewIntern()
	for _, want := range []engine.Request{
		{Program: "vecadd", SizeIdx: 3},
		{Program: "matmul", SizeIdx: -1, LeaveOut: true},
		{Program: "", SizeIdx: 0},
	} {
		frame := AppendPredictRequest(nil, &want)
		msg, payload, err := ParseFrame(frame)
		if err != nil {
			t.Fatalf("ParseFrame: %v", err)
		}
		if msg != MsgPredictReq {
			t.Fatalf("msg = %d, want %d", msg, MsgPredictReq)
		}
		var got engine.Request
		if err := DecodePredictRequest(payload, &got, in); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Errorf("round trip = %+v, want %+v", got, want)
		}
	}
}

func TestExecuteRequestRoundTrip(t *testing.T) {
	want := engine.Request{Program: "tenant/blur", SizeIdx: 2}
	frame := AppendExecuteRequest(nil, &want)
	msg, payload, err := ParseFrame(frame)
	if err != nil || msg != MsgExecuteReq {
		t.Fatalf("ParseFrame: msg=%d err=%v", msg, err)
	}
	var got engine.Request
	if err := DecodePredictRequest(payload, &got, NewIntern()); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	reqs := []engine.Request{
		{Program: "vecadd", SizeIdx: 0},
		{Program: "matmul", SizeIdx: 5, LeaveOut: true},
		{Program: "knn", SizeIdx: 11},
	}
	frame := AppendBatchRequest(nil, reqs)
	msg, payload, err := ParseFrame(frame)
	if err != nil || msg != MsgBatchReq {
		t.Fatalf("ParseFrame: msg=%d err=%v", msg, err)
	}
	it, err := DecodeBatchRequest(payload)
	if err != nil {
		t.Fatalf("DecodeBatchRequest: %v", err)
	}
	if it.Count() != len(reqs) {
		t.Fatalf("Count = %d, want %d", it.Count(), len(reqs))
	}
	in := NewIntern()
	var got []engine.Request
	var req engine.Request
	for it.Next(&req, in) {
		got = append(got, req)
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iter: %v", err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Errorf("round trip = %+v, want %+v", got, reqs)
	}
}

func TestPredictionRoundTrip(t *testing.T) {
	want := samplePrediction(1)
	frame := AppendPrediction(nil, &want)
	msg, payload, err := ParseFrame(frame)
	if err != nil || msg != MsgPredictResp {
		t.Fatalf("ParseFrame: msg=%d err=%v", msg, err)
	}
	var got engine.Prediction
	if err := DecodePrediction(payload, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestExecutionRoundTrip(t *testing.T) {
	want := engine.Execution{
		Prediction: samplePrediction(0),
		Makespan:   3.75e-3,
		Verified:   true,
	}
	frame := AppendExecution(nil, &want)
	msg, payload, err := ParseFrame(frame)
	if err != nil || msg != MsgExecuteResp {
		t.Fatalf("ParseFrame: msg=%d err=%v", msg, err)
	}
	var got engine.Execution
	if err := DecodeExecution(payload, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	p0, p1 := samplePrediction(0), samplePrediction(1)
	var enc BatchEncoder
	enc.Begin(nil)
	enc.Prediction(&p0)
	enc.Error("unknown program \"nope\"")
	enc.Prediction(&p1)
	frame := enc.Finish()

	msg, payload, err := ParseFrame(frame)
	if err != nil || msg != MsgBatchResp {
		t.Fatalf("ParseFrame: msg=%d err=%v", msg, err)
	}
	items, errs, err := DecodeBatchResponse(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if errs != 1 || len(items) != 3 {
		t.Fatalf("items=%d errs=%d, want 3/1", len(items), errs)
	}
	if !items[0].OK || items[0].Pred != p0 {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[1].OK || items[1].Err != "unknown program \"nope\"" {
		t.Errorf("item 1 = %+v", items[1])
	}
	if !items[2].OK || items[2].Pred != p1 {
		t.Errorf("item 2 = %+v", items[2])
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, 429, "quota:concurrency", "tenant over limit", 2)
	msg, payload, err := ParseFrame(frame)
	if err != nil || msg != MsgError {
		t.Fatalf("ParseFrame: msg=%d err=%v", msg, err)
	}
	got, err := DecodeError(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := ErrorFrame{Status: 429, Code: "quota:concurrency", Message: "tenant over limit", RetryAfterSecs: 2}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestSpecialFloatValues(t *testing.T) {
	p := samplePrediction(0)
	p.OracleTime = math.Inf(1)
	p.CPUOnlyTime = math.SmallestNonzeroFloat64
	p.GPUOnlyTime = math.MaxFloat64
	frame := AppendPrediction(nil, &p)
	_, payload, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var got engine.Prediction
	if err := DecodePrediction(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("special floats mangled: %+v", got)
	}
}

func TestMalformedFrames(t *testing.T) {
	req := engine.Request{Program: "vecadd", SizeIdx: 1}
	good := AppendPredictRequest(nil, &req)
	in := NewIntern()

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShortFrame},
		{"header only", good[:4], ErrShortFrame},
		{"truncated body", good[:len(good)-2], ErrTruncated},
		{"trailing garbage", append(append([]byte(nil), good...), 0xde, 0xad), ErrTrailing},
		{"zero length", []byte{0, 0, 0, 0, 1}, ErrFrameLength},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0x7f, 1}, ErrFrameLength},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := ParseFrame(c.b)
			if !errors.Is(err, c.want) {
				t.Errorf("ParseFrame err = %v, want %v", err, c.want)
			}
		})
	}

	t.Run("bad flags", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[5] = 0xff // flags byte
		_, payload, err := ParseFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		var r engine.Request
		if err := DecodePredictRequest(payload, &r, in); !errors.Is(err, ErrBadValue) {
			t.Errorf("decode err = %v, want ErrBadValue", err)
		}
	})

	t.Run("payload trailing", func(t *testing.T) {
		var r engine.Request
		payload := append(good[5:len(good):len(good)], 0)
		if err := DecodePredictRequest(payload, &r, in); !errors.Is(err, ErrTrailing) {
			t.Errorf("decode err = %v, want ErrTrailing", err)
		}
	})

	t.Run("batch count overruns payload", func(t *testing.T) {
		frame := AppendBatchRequest(nil, []engine.Request{{Program: "vecadd"}})
		_, payload, err := ParseFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		b := append([]byte(nil), payload...)
		b[0], b[1] = 0xff, 0xff // count = 65535
		if _, err := DecodeBatchRequest(b); !errors.Is(err, ErrBadValue) {
			t.Errorf("err = %v, want ErrBadValue", err)
		}
	})

	t.Run("batch response count mismatch", func(t *testing.T) {
		var enc BatchEncoder
		enc.Begin(nil)
		enc.Error("boom")
		frame := enc.Finish()
		_, payload, err := ParseFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		b := append([]byte(nil), payload...)
		b[2], b[3] = 0, 0 // claim zero errors
		if _, _, err := DecodeBatchResponse(b); !errors.Is(err, ErrBadValue) {
			t.Errorf("err = %v, want ErrBadValue", err)
		}
	})
}

func TestAppendStrTruncates(t *testing.T) {
	long := strings.Repeat("x", 0x10001)
	b := appendStr(nil, long)
	r := reader{b: b}
	got := r.str()
	if err := r.done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0xffff {
		t.Errorf("len = %d, want %d", len(got), 0xffff)
	}
}

func TestInternDeduplicates(t *testing.T) {
	in := NewIntern()
	a := in.Str([]byte("vecadd"))
	b := in.Str([]byte("vecadd"))
	// Same backing string must come back on a hit: compare headers.
	if a != "vecadd" || b != "vecadd" {
		t.Fatalf("intern returned %q, %q", a, b)
	}
	if in.Len() != 1 {
		t.Errorf("Len = %d, want 1", in.Len())
	}
}

func TestInternCapStopsGrowth(t *testing.T) {
	in := NewIntern()
	buf := make([]byte, 8)
	for i := 0; i < internCap+100; i++ {
		for j := range buf {
			buf[j] = byte('a' + (i>>(4*j))&0xf)
		}
		in.Str(buf)
	}
	if in.Len() > internCap {
		t.Errorf("Len = %d, want <= %d", in.Len(), internCap)
	}
}

func TestInternConcurrent(t *testing.T) {
	in := NewIntern()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			names := []string{"vecadd", "matmul", "knn", "blur"}
			for i := 0; i < 2000; i++ {
				s := in.Str([]byte(names[(i+g)%len(names)]))
				if s == "" {
					t.Error("empty intern result")
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if in.Len() != 4 {
		t.Errorf("Len = %d, want 4", in.Len())
	}
}
