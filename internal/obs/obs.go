// Package obs is the durable observation store of the adaptive learning
// loop: an append-only JSONL log recording every executed request the
// deployment engine serves — the feature vector it predicted from, the
// partition class it chose, the measured timings, and (when sampled) the
// measured-best class, which is exactly the oracle label the offline
// training sweep produces.
//
// A production deployment serving heavy traffic is sitting on a stream
// of free training labels; this package makes that stream durable so the
// background retrainer (internal/engine) and the offline training path
// (cmd/train -from-observations) can fold it back into the model.
//
// The log is a directory of numbered JSONL segments:
//
//	obs-00000000.jsonl
//	obs-00000001.jsonl   <- rotation starts a new segment
//	...
//
// Appends go to the highest segment; when it exceeds the size budget the
// writer seals it and starts the next — readers never observe a torn
// segment boundary because every record is one complete line. Compaction
// rewrites the survivors into a single fresh segment via temp-file +
// rename (atomic on POSIX) before unlinking the old ones, and sequence
// numbers are preserved, so a crash anywhere leaves either the old
// segments or a superset (deduplicated on read by sequence number).
//
// A Log is safe for concurrent use by any number of writers and readers
// in one process.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Observation is one recorded execution. Fields mirror harness.Record
// where they overlap, so labeled observations convert losslessly into
// training records.
//
// Labeled marks observations whose measured-best class was sampled: the
// engine priced the full candidate space on the measured profile and
// recorded the winner (BestClass) plus the whole time vector (Times),
// which is the same oracle labeling the offline sweep performs. Only
// labeled observations can train; unlabeled ones still feed traffic
// statistics.
type Observation struct {
	// Seq is the log-assigned, strictly increasing sequence number.
	Seq uint64 `json:"seq"`
	// Time is the caller-supplied wall clock in Unix nanoseconds (0 if
	// the caller wants a fully deterministic record, e.g. golden tests).
	Time int64 `json:"time,omitempty"`

	Platform  string `json:"platform"`
	Program   string `json:"program"`
	Suite     string `json:"suite,omitempty"`
	SizeIdx   int    `json:"sizeIdx"`
	SizeLabel string `json:"sizeLabel,omitempty"`
	SizeN     int    `json:"sizeN,omitempty"`

	FeatureNames []string  `json:"featureNames,omitempty"`
	Features     []float64 `json:"features,omitempty"`

	// Class is the partition class the engine served; Partition is its
	// rendered form. Makespan is the measured (simulated) wall time and
	// DeviceTimes the per-device busy times under that partitioning.
	Class       int       `json:"class"`
	Partition   string    `json:"partition,omitempty"`
	Makespan    float64   `json:"makespan"`
	DeviceTimes []float64 `json:"deviceTimes,omitempty"`
	Verified    bool      `json:"verified"`

	// Oracle label (present when Labeled): the measured-best class over
	// the full candidate space, its time, the reference strategy times
	// and the complete per-class time vector.
	Labeled       bool      `json:"labeled,omitempty"`
	BestClass     int       `json:"bestClass,omitempty"`
	BestPartition string    `json:"bestPartition,omitempty"`
	OracleTime    float64   `json:"oracleTime,omitempty"`
	CPUOnlyTime   float64   `json:"cpuOnlyTime,omitempty"`
	GPUOnlyTime   float64   `json:"gpuOnlyTime,omitempty"`
	Times         []float64 `json:"times,omitempty"`
}

// Key identifies the training cell an observation belongs to. Compaction
// and per-cell statistics group by it.
type Key struct {
	Platform string
	Program  string
	SizeIdx  int
}

// Key returns the observation's cell key.
func (o *Observation) Key() Key {
	return Key{Platform: o.Platform, Program: o.Program, SizeIdx: o.SizeIdx}
}

// Stats is a point-in-time summary of the log's contents.
type Stats struct {
	// Total and Labeled count observations (after dedup by sequence).
	Total   uint64 `json:"total"`
	Labeled uint64 `json:"labeled"`
	// Unverified counts observations whose execution failed output
	// verification; those never become training records.
	Unverified uint64 `json:"unverified"`
	// Segments is the number of on-disk segment files.
	Segments int `json:"segments"`
	// Cells is the number of distinct (platform, program, size) cells.
	Cells int `json:"cells"`
	// ByProgram counts observations per program name.
	ByProgram map[string]uint64 `json:"byProgram,omitempty"`
}

// Options configures a Log.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// size (default 4 MiB). Rotation granularity is one record: a record
	// is never split across segments.
	MaxSegmentBytes int64
}

// DefaultMaxSegmentBytes is the rotation threshold when Options leaves
// MaxSegmentBytes zero.
const DefaultMaxSegmentBytes = 4 << 20

const (
	segPrefix = "obs-"
	segSuffix = ".jsonl"
)

// Log is a durable observation log over one directory.
//
// The full record set is mirrored in memory (populated by Open's replay,
// extended by Append): Snapshot serves from that mirror without touching
// the disk, so a retrain snapshot never stalls concurrent Append calls —
// i.e. in-flight /execute responses — behind segment re-reads. Bounded
// by Compact; observations are small, so the mirror is the deliberate
// latency-for-memory trade.
type Log struct {
	mu      sync.Mutex
	dir     string
	maxSeg  int64
	segIdx  int      // index of the active segment
	f       *os.File // active segment, opened O_APPEND
	size    int64    // bytes written to the active segment
	nextSeq uint64
	recs    []Observation // in-memory mirror of the durable records
	stats   statsAcc
}

// statsAcc is the in-memory running tally behind Stats.
type statsAcc struct {
	total, labeled, unverified uint64
	byProgram                  map[string]uint64
	cells                      map[Key]struct{}
}

func (s *statsAcc) add(o *Observation) {
	s.total++
	if o.Labeled {
		s.labeled++
	}
	if !o.Verified {
		s.unverified++
	}
	if s.byProgram == nil {
		s.byProgram = map[string]uint64{}
		s.cells = map[Key]struct{}{}
	}
	s.byProgram[o.Program]++
	s.cells[o.Key()] = struct{}{}
}

// Open opens (creating if needed) the observation log in opts.Dir and
// replays existing segments to restore sequence numbering and stats.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("obs: empty log directory")
	}
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: opts.Dir, maxSeg: opts.MaxSegmentBytes}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) > 0 {
		l.segIdx = segs[len(segs)-1]
	}
	// A crash mid-Append can leave a torn trailing record in the active
	// segment; drop it before replay so the durable history stays
	// readable (the torn record was never acknowledged to its writer).
	if err := l.repairActive(); err != nil {
		return nil, err
	}
	all, err := l.load(segs)
	if err != nil {
		return nil, err
	}
	l.recs = all
	for i := range all {
		o := &all[i]
		l.stats.add(o)
		if o.Seq >= l.nextSeq {
			l.nextSeq = o.Seq + 1
		}
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	return l, nil
}

// segPath names segment idx.
func (l *Log) segPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
}

// segments lists the existing segment indices in ascending order.
func (l *Log) segments() ([]int, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &idx); err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// repairActive truncates a torn trailing record — one without its final
// newline, the signature of a crash mid-write — off the active segment.
// Sealed segments never need this: rotation only happens on complete
// record boundaries.
func (l *Log) repairActive() error {
	path := l.segPath(l.segIdx)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(b) == 0 || b[len(b)-1] == '\n' {
		return nil
	}
	cut := bytes.LastIndexByte(b, '\n') + 1
	return os.Truncate(path, int64(cut))
}

// openActive opens the active segment for appending and records its size.
func (l *Log) openActive() error {
	f, err := os.OpenFile(l.segPath(l.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, st.Size()
	return nil
}

// load reads the given segments and returns their observations sorted by
// sequence number, deduplicated (first occurrence wins — duplicates can
// only exist after a crash between compaction's rename and unlink).
func (l *Log) load(segs []int) ([]Observation, error) {
	var out []Observation
	seen := map[uint64]bool{}
	for _, idx := range segs {
		f, err := os.Open(l.segPath(idx))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		line := 0
		for sc.Scan() {
			line++
			b := sc.Bytes()
			if len(b) == 0 {
				continue
			}
			var o Observation
			if err := json.Unmarshal(b, &o); err != nil {
				f.Close()
				return nil, fmt.Errorf("obs: %s line %d: %w", l.segPath(idx), line, err)
			}
			if seen[o.Seq] {
				continue
			}
			seen[o.Seq] = true
			out = append(out, o)
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("obs: reading %s: %w", l.segPath(idx), err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Append writes one observation to the log, assigning and returning its
// sequence number. The caller's Seq field is ignored. Safe for concurrent
// use; each record is written as one complete JSONL line.
func (l *Log) Append(o Observation) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("obs: log is closed")
	}
	o.Seq = l.nextSeq
	b, err := json.Marshal(&o)
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	if l.size > 0 && l.size+int64(len(b)) > l.maxSeg {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(b); err != nil {
		// Self-heal: a failed write may have left partial bytes that
		// would glue onto the NEXT record and corrupt the segment
		// mid-file (beyond repairActive's reach). Truncate back to the
		// last known-good size; if even that fails, seal the damaged
		// segment and start a fresh one.
		if terr := l.f.Truncate(l.size); terr != nil {
			l.f.Close()
			l.segIdx++
			if oerr := l.openActive(); oerr != nil {
				l.f = nil // closed: further Appends fail loudly
			}
		}
		return 0, err
	}
	l.size += int64(len(b))
	l.nextSeq++
	l.recs = append(l.recs, o)
	l.stats.add(&o)
	return o.Seq, nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segIdx++
	return l.openActive()
}

// Snapshot returns every observation currently in the log, in sequence
// order, from the in-memory mirror — no disk reads, so concurrent
// Appends are held up only for the copy. The returned slice is the
// caller's to keep.
func (l *Log) Snapshot() ([]Observation, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Observation(nil), l.recs...), nil
}

// Stats returns the log's running tally.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, _ := l.segments()
	st := Stats{
		Total:      l.stats.total,
		Labeled:    l.stats.labeled,
		Unverified: l.stats.unverified,
		Segments:   len(segs),
		Cells:      len(l.stats.cells),
	}
	if len(l.stats.byProgram) > 0 {
		st.ByProgram = make(map[string]uint64, len(l.stats.byProgram))
		for k, v := range l.stats.byProgram {
			st.ByProgram[k] = v
		}
	}
	return st
}

// LabeledCount returns the number of labeled observations without
// touching the disk (the retrainer's threshold check polls this).
func (l *Log) LabeledCount() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats.labeled
}

// Compact rewrites the log keeping only the newest keepPerCell labeled
// and newest keepPerCell unlabeled observations of every (platform,
// program, size) cell — repeat executions of the same deterministic cell
// carry no extra training information. The survivors land in one fresh
// segment written via temp file + atomic rename before the old segments
// are unlinked; sequence numbers are preserved. Returns how many
// observations were kept and dropped.
func (l *Log) Compact(keepPerCell int) (kept, dropped int, err error) {
	if keepPerCell < 1 {
		keepPerCell = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, 0, fmt.Errorf("obs: log is closed")
	}
	segs, err := l.segments()
	if err != nil {
		return 0, 0, err
	}
	all := l.recs

	// Count per (cell, labeledness) from the newest backwards; keep the
	// newest keepPerCell of each.
	type bucket struct {
		key     Key
		labeled bool
	}
	counts := map[bucket]int{}
	keep := make([]bool, len(all))
	for i := len(all) - 1; i >= 0; i-- {
		b := bucket{key: all[i].Key(), labeled: all[i].Labeled}
		if counts[b] < keepPerCell {
			counts[b]++
			keep[i] = true
			kept++
		} else {
			dropped++
		}
	}

	// Write survivors to a temp file, fsync, and rename it into place as
	// the next segment index — strictly newer than every existing
	// segment, so a crash before the unlinks below leaves a readable
	// superset (deduplicated by Seq on load).
	tmp, err := os.CreateTemp(l.dir, ".compact-*")
	if err != nil {
		return 0, 0, err
	}
	w := bufio.NewWriter(tmp)
	for i := range all {
		if !keep[i] {
			continue
		}
		b, err := json.Marshal(&all[i])
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return 0, 0, err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return 0, 0, err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, err
	}
	newIdx := l.segIdx + 1
	if err := os.Rename(tmp.Name(), l.segPath(newIdx)); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, err
	}

	// The compacted segment is now durable; retire the old ones and make
	// it the active segment. From here on the log must stay usable no
	// matter what fails: removals are best-effort (a leftover old
	// segment only yields duplicates, deduplicated by Seq on load), and
	// the first error is reported after the active segment is restored.
	firstErr := l.f.Close()
	for _, idx := range segs {
		if err := os.Remove(l.segPath(idx)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	l.segIdx = newIdx
	if err := l.openActive(); err != nil {
		// No usable active segment: mark the log closed so Append fails
		// loudly instead of writing to a closed file.
		l.f = nil
		return 0, 0, err
	}

	// Rebuild the mirror and tally from the survivors.
	survivors := make([]Observation, 0, kept)
	l.stats = statsAcc{}
	for i := range all {
		if keep[i] {
			survivors = append(survivors, all[i])
			l.stats.add(&all[i])
		}
	}
	l.recs = survivors
	return kept, dropped, firstErr
}

// Close seals the log. Further Appends fail; a new Open resumes where
// this log left off.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
