package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden observation log")

// goldenObservations is a fixed set spanning the format: an unlabeled
// observation, a labeled one with the full oracle vector, and a failed
// verification. Time is zero so the golden bytes are deterministic.
func goldenObservations() []Observation {
	return []Observation{
		{
			Platform: "mc2", Program: "vecadd", Suite: "micro",
			SizeIdx: 1, SizeLabel: "S", SizeN: 2048,
			FeatureNames: []string{"s_ops", "r_items"},
			Features:     []float64{12, 2048},
			Class:        3, Partition: "70/30/0", Makespan: 0.125,
			DeviceTimes: []float64{0.125, 0.08, 0},
			Verified:    true,
		},
		{
			Platform: "mc2", Program: "matmul", Suite: "linalg",
			SizeIdx: 0, SizeLabel: "XS", SizeN: 64,
			FeatureNames: []string{"s_ops", "r_items"},
			Features:     []float64{48, 64},
			Class:        0, Partition: "100/0/0", Makespan: 0.5,
			Verified: true,
			Labeled:  true, BestClass: 2, BestPartition: "80/20/0",
			OracleTime: 0.25, CPUOnlyTime: 0.5, GPUOnlyTime: 0.75,
			Times: []float64{0.5, 0.375, 0.25},
		},
		{
			Platform: "mc1", Program: "nbody", SizeIdx: 2,
			Class: 5, Makespan: 1.75, Verified: false,
		},
	}
}

// TestObservationGoldenFormat pins the JSONL wire format: a fixed append
// sequence must produce byte-identical segment contents. Any field
// rename, reorder or encoding change shows up here before it corrupts a
// production log.
func TestObservationGoldenFormat(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range goldenObservations() {
		if _, err := l.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "obs-00000000.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "observations.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("observation JSONL format drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLogAppendSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	in := goldenObservations()
	for i, o := range in {
		seq, err := l.Append(o)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(in) {
		t.Fatalf("snapshot has %d observations, want %d", len(snap), len(in))
	}
	for i := range snap {
		if snap[i].Seq != uint64(i) {
			t.Fatalf("snapshot[%d].Seq = %d", i, snap[i].Seq)
		}
		if snap[i].Program != in[i].Program || snap[i].Class != in[i].Class ||
			snap[i].Labeled != in[i].Labeled || snap[i].Makespan != in[i].Makespan {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], in[i])
		}
	}
	st := l.Stats()
	if st.Total != 3 || st.Labeled != 1 || st.Unverified != 1 || st.Cells != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByProgram["vecadd"] != 1 || st.ByProgram["matmul"] != 1 {
		t.Fatalf("byProgram = %v", st.ByProgram)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sequence numbering and stats must resume.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, err := l2.Append(Observation{Platform: "mc2", Program: "vecadd", Class: 1, Verified: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("resumed seq = %d, want 3", seq)
	}
	if st := l2.Stats(); st.Total != 4 {
		t.Fatalf("resumed stats = %+v", st)
	}
}

func TestLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// A tiny budget forces rotation every couple of records.
	l, err := Open(Options{Dir: dir, MaxSegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := l.Append(Observation{Platform: "mc2", Program: fmt.Sprintf("p%d", i), Class: i, Verified: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", st.Segments)
	}
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != n {
		t.Fatalf("snapshot across segments has %d records, want %d", len(snap), n)
	}
	for i := range snap {
		if snap[i].Seq != uint64(i) {
			t.Fatalf("snapshot out of order at %d: seq %d", i, snap[i].Seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen across many segments.
	l2, err := Open(Options{Dir: dir, MaxSegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if seq, err := l2.Append(Observation{Platform: "mc2", Program: "x", Verified: true}); err != nil || seq != n {
		t.Fatalf("seq after reopen = %d (%v), want %d", seq, err, n)
	}
}

func TestLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, MaxSegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	// 10 repeats of the same cell (5 labeled, 5 not) + one other cell.
	for i := 0; i < 10; i++ {
		if _, err := l.Append(Observation{
			Platform: "mc2", Program: "vecadd", SizeIdx: 1, Class: i,
			Verified: true, Labeled: i%2 == 0, Times: []float64{1, 2, 3},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Append(Observation{Platform: "mc2", Program: "matmul", SizeIdx: 0, Verified: true}); err != nil {
		t.Fatal(err)
	}
	kept, dropped, err := l.Compact(1)
	if err != nil {
		t.Fatal(err)
	}
	// Survivors: newest labeled + newest unlabeled of the vecadd cell,
	// plus the matmul observation.
	if kept != 3 || dropped != 8 {
		t.Fatalf("compact kept %d dropped %d, want 3/8", kept, dropped)
	}
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("post-compact snapshot has %d records", len(snap))
	}
	// The newest of each kind survived (classes 8 labeled, 9 unlabeled).
	var classes []int
	for _, o := range snap {
		if o.Program == "vecadd" {
			classes = append(classes, o.Class)
		}
	}
	if len(classes) != 2 || classes[0] != 8 || classes[1] != 9 {
		t.Fatalf("surviving vecadd classes = %v, want [8 9]", classes)
	}
	if st := l.Stats(); st.Total != 3 || st.Labeled != 1 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	// Appends continue with preserved numbering, and a reopen agrees.
	if seq, err := l.Append(Observation{Platform: "mc2", Program: "new", Verified: true}); err != nil || seq != 11 {
		t.Fatalf("post-compact seq = %d (%v), want 11", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Total != 4 {
		t.Fatalf("reopened post-compact stats = %+v", st)
	}
}

// TestLogConcurrentAppend hammers one log from many writers; every
// record must land exactly once with a unique sequence number. Run under
// -race in CI.
func TestLogConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, MaxSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(Observation{
					Platform: "mc2", Program: fmt.Sprintf("w%d", w), SizeIdx: i, Verified: true,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != writers*each {
		t.Fatalf("snapshot has %d records, want %d", len(snap), writers*each)
	}
	seen := map[uint64]bool{}
	for _, o := range snap {
		if seen[o.Seq] {
			t.Fatalf("duplicate seq %d", o.Seq)
		}
		seen[o.Seq] = true
	}
	if st := l.Stats(); st.Total != writers*each {
		t.Fatalf("stats total = %d", st.Total)
	}
}

func TestLogErrors(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Observation{}); err == nil {
		t.Error("append on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// A COMPLETE but invalid line is real corruption and must fail
	// loudly on open, not silently drop data. (A torn trailing line
	// without its newline is different: that is crash recovery, covered
	// by TestLogRecoversFromTornTail.)
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "obs-00000000.jsonl"), []byte("{corrupt but complete}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: bad}); err == nil {
		t.Error("corrupt segment accepted")
	}
}

// TestLogRecoversFromTornTail simulates a crash mid-Append: the active
// segment ends in a partial record without its newline. Open must drop
// the torn (never-acknowledged) record, keep everything before it, and
// resume appending cleanly.
func TestLogRecoversFromTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Observation{Platform: "mc2", Program: "p", SizeIdx: i, Verified: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: a partial record with no trailing newline.
	seg := filepath.Join(dir, "obs-00000000.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"platform":"mc2","prog`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("torn tail made the log unopenable: %v", err)
	}
	defer l2.Close()
	snap, err := l2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("recovered %d records, want 3", len(snap))
	}
	// New appends land after the complete records, not glued to torn
	// bytes (seq 3 was never acknowledged, so its number is reused).
	if seq, err := l2.Append(Observation{Platform: "mc2", Program: "p", SizeIdx: 9, Verified: true}); err != nil || seq != 3 {
		t.Fatalf("post-recovery append: seq=%d err=%v", seq, err)
	}
	snap, err = l2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 4 || snap[3].SizeIdx != 9 {
		t.Fatalf("post-recovery snapshot: %+v", snap)
	}
}
