package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exec"
)

// --- 12. convolution2d: 3x3 convolution with fixed taps (PolyBench 2DCONV) ---

var conv2dProg = register(&Program{
	Name:  "convolution2d",
	Suite: "polybench",
	Source: `
kernel void conv2d(global const float* in, global float* out, int w, int h) {
	int x = get_global_id(0);
	int y = get_global_id(1);
	if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
		out[y * w + x] =
			0.2 * in[(y - 1) * w + x - 1] + 0.5 * in[(y - 1) * w + x] - 0.8 * in[(y - 1) * w + x + 1] +
			-0.3 * in[y * w + x - 1] + 0.6 * in[y * w + x] - 0.9 * in[y * w + x + 1] +
			0.4 * in[(y + 1) * w + x - 1] + 0.7 * in[(y + 1) * w + x] + 0.1 * in[(y + 1) * w + x + 1];
	} else if (x < w && y < h) {
		out[y * w + x] = 0.0;
	}
}`,
	Kernel: "conv2d",
	Sizes: []Size{
		{"S0", 64}, {"S1", 128}, {"S2", 256}, {"S3", 384}, {"S4", 512}, {"S5", 768},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		in, out := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n)
		fillUniform(in, rng, -1, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(n), exec.IntArg(n)},
			ND:   exec.ND2(n, n),
		}
	},
	verify: func(inst *Instance, n int) error {
		in, out := inst.Args[0].Buf, inst.Args[1].Buf
		at := func(y, x int) float64 { return float64(in.F[y*n+x]) }
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				var want float64
				if x > 0 && x < n-1 && y > 0 && y < n-1 {
					want = 0.2*at(y-1, x-1) + 0.5*at(y-1, x) - 0.8*at(y-1, x+1) +
						-0.3*at(y, x-1) + 0.6*at(y, x) - 0.9*at(y, x+1) +
						0.4*at(y+1, x-1) + 0.7*at(y+1, x) + 0.1*at(y+1, x+1)
				}
				if !approxEq(out.F[y*n+x], float32(want), 1e-4) {
					return fmt.Errorf("out[%d,%d] = %g, want %g", y, x, out.F[y*n+x], want)
				}
			}
		}
		return nil
	},
})

// --- 13. stencil2d: 5-point weighted stencil (SHOC Stencil2D) ---

var stencilProg = register(&Program{
	Name:  "stencil2d",
	Suite: "shoc",
	Source: `
kernel void stencil(global const float* in, global float* out, int w, int h,
                    float wCenter, float wSide) {
	int x = get_global_id(0);
	int y = get_global_id(1);
	if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
		out[y * w + x] = wCenter * in[y * w + x] +
			wSide * (in[(y - 1) * w + x] + in[(y + 1) * w + x] +
			         in[y * w + x - 1] + in[y * w + x + 1]);
	} else if (x < w && y < h) {
		out[y * w + x] = in[y * w + x];
	}
}`,
	Kernel: "stencil",
	Sizes: []Size{
		{"S0", 64}, {"S1", 128}, {"S2", 256}, {"S3", 384}, {"S4", 512}, {"S5", 768},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		in, out := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n)
		fillUniform(in, rng, 0, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(n), exec.IntArg(n),
				exec.FloatArg(0.6), exec.FloatArg(0.1)},
			ND: exec.ND2(n, n),
		}
	},
	verify: func(inst *Instance, n int) error {
		in, out := inst.Args[0].Buf, inst.Args[1].Buf
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				var want float64
				if x > 0 && x < n-1 && y > 0 && y < n-1 {
					want = 0.6*float64(in.F[y*n+x]) + 0.1*(float64(in.F[(y-1)*n+x])+
						float64(in.F[(y+1)*n+x])+float64(in.F[y*n+x-1])+float64(in.F[y*n+x+1]))
				} else {
					want = float64(in.F[y*n+x])
				}
				if !approxEq(out.F[y*n+x], float32(want), 1e-4) {
					return fmt.Errorf("out[%d,%d] = %g, want %g", y, x, out.F[y*n+x], want)
				}
			}
		}
		return nil
	},
})

// --- 14. hotspot: iterative thermal simulation step (Rodinia) ---

var hotspotProg = register(&Program{
	Name:  "hotspot",
	Suite: "rodinia",
	Source: `
kernel void hotspot(global const float* temp, global const float* power, global float* out,
                    int w, int h, float cap, float cond) {
	int x = get_global_id(0);
	int y = get_global_id(1);
	if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
		float t = temp[y * w + x];
		float delta = cap * (power[y * w + x] +
			cond * (temp[(y - 1) * w + x] + temp[(y + 1) * w + x] +
			        temp[y * w + x - 1] + temp[y * w + x + 1] - 4.0 * t));
		out[y * w + x] = t + delta;
	} else if (x < w && y < h) {
		out[y * w + x] = temp[y * w + x];
	}
}`,
	Kernel:     "hotspot",
	Iterations: 16,
	Sizes: []Size{
		{"S0", 64}, {"S1", 128}, {"S2", 192}, {"S3", 256}, {"S4", 384}, {"S5", 512},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		temp, power, out := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n)
		fillUniform(temp, rng, 320, 340)
		fillUniform(power, rng, 0, 0.5)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(temp), exec.BufArg(power), exec.BufArg(out),
				exec.IntArg(n), exec.IntArg(n), exec.FloatArg(0.5), exec.FloatArg(0.1)},
			ND: exec.ND2(n, n),
		}
	},
	verify: func(inst *Instance, n int) error {
		temp, power, out := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				t := float64(temp.F[y*n+x])
				want := t
				if x > 0 && x < n-1 && y > 0 && y < n-1 {
					want = t + 0.5*(float64(power.F[y*n+x])+
						0.1*(float64(temp.F[(y-1)*n+x])+float64(temp.F[(y+1)*n+x])+
							float64(temp.F[y*n+x-1])+float64(temp.F[y*n+x+1])-4*t))
				}
				if !approxEq(out.F[y*n+x], float32(want), 1e-4) {
					return fmt.Errorf("out[%d,%d] = %g, want %g", y, x, out.F[y*n+x], want)
				}
			}
		}
		return nil
	},
})

// --- 15. srad: speckle-reducing anisotropic diffusion step (Rodinia) ---

var sradProg = register(&Program{
	Name:  "srad",
	Suite: "rodinia",
	Source: `
kernel void srad(global const float* img, global float* out, int w, int h, float lambda) {
	int x = get_global_id(0);
	int y = get_global_id(1);
	if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
		float c = img[y * w + x];
		float dN = img[(y - 1) * w + x] - c;
		float dS = img[(y + 1) * w + x] - c;
		float dW = img[y * w + x - 1] - c;
		float dE = img[y * w + x + 1] - c;
		float g2 = (dN * dN + dS * dS + dW * dW + dE * dE) / (c * c + 0.0001);
		float l = (dN + dS + dW + dE) / (c + 0.0001);
		float num = 0.5 * g2 - 0.0625 * l * l;
		float den = 1.0 + 0.25 * l;
		float q = num / (den * den + 0.0001);
		float coef = exp(-q);
		coef = clamp(coef, 0.0, 1.0);
		out[y * w + x] = c + 0.25 * lambda * coef * (dN + dS + dW + dE);
	} else if (x < w && y < h) {
		out[y * w + x] = img[y * w + x];
	}
}`,
	Kernel:     "srad",
	Iterations: 8,
	Sizes: []Size{
		{"S0", 64}, {"S1", 128}, {"S2", 192}, {"S3", 256}, {"S4", 384}, {"S5", 512},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		img, out := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n)
		fillUniform(img, rng, 0.5, 1.5)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(img), exec.BufArg(out), exec.IntArg(n), exec.IntArg(n),
				exec.FloatArg(0.5)},
			ND: exec.ND2(n, n),
		}
	},
	verify: func(inst *Instance, n int) error {
		img, out := inst.Args[0].Buf, inst.Args[1].Buf
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				c := float64(img.F[y*n+x])
				dN := float64(img.F[(y-1)*n+x]) - c
				dS := float64(img.F[(y+1)*n+x]) - c
				dW := float64(img.F[y*n+x-1]) - c
				dE := float64(img.F[y*n+x+1]) - c
				g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (c*c + 0.0001)
				l := (dN + dS + dW + dE) / (c + 0.0001)
				num := 0.5*g2 - 0.0625*l*l
				den := 1.0 + 0.25*l
				q := num / (den*den + 0.0001)
				coef := math.Exp(-q)
				if coef > 1 {
					coef = 1
				}
				if coef < 0 {
					coef = 0
				}
				want := c + 0.25*0.5*coef*(dN+dS+dW+dE)
				if !approxEq(out.F[y*n+x], float32(want), 1e-3) {
					return fmt.Errorf("out[%d,%d] = %g, want %g", y, x, out.F[y*n+x], want)
				}
			}
		}
		return nil
	},
})

// --- 16. pathfinder: dynamic-programming row relaxation (Rodinia) ---

var pathfinderProg = register(&Program{
	Name:  "pathfinder",
	Suite: "rodinia",
	Source: `
kernel void pathfinder(global const float* src, global const float* wall, global float* dst,
                       int n, int row) {
	int i = get_global_id(0);
	if (i < n) {
		float best = src[i];
		if (i > 0) {
			best = fmin(best, src[i - 1]);
		}
		if (i < n - 1) {
			best = fmin(best, src[i + 1]);
		}
		dst[i] = wall[row * n + i] + best;
	}
}`,
	Kernel:      "pathfinder",
	Iterations:  64,
	Sizes:       geomSizes(sizeLabels, 8192),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		src := exec.NewFloatBuffer(n)
		fillUniform(src, rng, 0, 10)
		wall := exec.NewFloatBuffer(n * 2) // two DP rows' worth of weights
		fillUniform(wall, rng, 0, 10)
		dst := exec.NewFloatBuffer(n)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(src), exec.BufArg(wall), exec.BufArg(dst),
				exec.IntArg(n), exec.IntArg(1)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		src, wall, dst := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		for i := 0; i < n; i++ {
			best := src.F[i]
			if i > 0 && src.F[i-1] < best {
				best = src.F[i-1]
			}
			if i < n-1 && src.F[i+1] < best {
				best = src.F[i+1]
			}
			want := wall.F[n+i] + best // row 1
			if !approxEq(dst.F[i], want, 1e-5) {
				return fmt.Errorf("dst[%d] = %g, want %g", i, dst.F[i], want)
			}
		}
		return nil
	},
})
