package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
)

// --- 1. vecadd: canonical streaming kernel (vendor sample) ---

var vecaddProg = register(&Program{
	Name:  "vecadd",
	Suite: "vendor",
	Source: `
kernel void vecadd(global const float* a, global const float* b, global float* c, int n) {
	int i = get_global_id(0);
	if (i < n) {
		c[i] = a[i] + b[i];
	}
}`,
	Kernel:      "vecadd",
	Sizes:       geomSizes(sizeLabels, 32768),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		a, b, c := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(a, rng, 0, 1)
		fillUniform(b, rng, 0, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(a), exec.BufArg(b), exec.BufArg(c), exec.IntArg(n)},
			ND:   exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		a, b, c := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			want[i] = a.F[i] + b.F[i]
		}
		return checkFloats("c", c.F, want, 1e-6)
	},
})

// --- 2. saxpy: scaled streaming update (vendor sample) ---

var saxpyProg = register(&Program{
	Name:  "saxpy",
	Suite: "vendor",
	Source: `
kernel void saxpy(global const float* x, global float* y, float alpha, int n) {
	int i = get_global_id(0);
	if (i < n) {
		y[i] = alpha * x[i] + y[i];
	}
}`,
	Kernel:      "saxpy",
	Sizes:       geomSizes(sizeLabels, 32768),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		x, y := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(x, rng, -1, 1)
		fillUniform(y, rng, -1, 1)
		return &Instance{
			Args:  []exec.Arg{exec.BufArg(x), exec.BufArg(y), exec.FloatArg(2.5), exec.IntArg(n)},
			ND:    exec.ND1(n),
			Extra: map[string]*exec.Buffer{"y0": y.Clone()},
		}
	},
	verify: func(inst *Instance, n int) error {
		x, y, y0 := inst.Args[0].Buf, inst.Args[1].Buf, inst.Extra["y0"]
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			want[i] = 2.5*x.F[i] + y0.F[i]
		}
		return checkFloats("y", y.F, want, 1e-6)
	},
})

// --- 3. dotprod: two-stage reduction with work-group cooperation ---

var dotprodProg = register(&Program{
	Name:  "dotprod",
	Suite: "vendor",
	Source: `
kernel void dotprod(global const float* a, global const float* b, global float* partial,
                    local float* tmp, int n) {
	int gid = get_global_id(0);
	int lid = get_local_id(0);
	tmp[lid] = gid < n ? a[gid] * b[gid] : 0.0;
	barrier(1);
	for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {
		if (lid < s) {
			tmp[lid] += tmp[lid + s];
		}
		barrier(1);
	}
	if (lid == 0) {
		partial[get_group_id(0)] = tmp[0];
	}
}`,
	Kernel:      "dotprod",
	LocalSize:   64,
	Sizes:       geomSizes(sizeLabels, 16384),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		a, b := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(a, rng, 0, 1)
		fillUniform(b, rng, 0, 1)
		partial := exec.NewFloatBuffer(n / 64)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(a), exec.BufArg(b), exec.BufArg(partial),
				exec.LocalArg(64), exec.IntArg(n)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		a, b, partial := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		var got, want float64
		for _, p := range partial.F {
			got += float64(p)
		}
		for i := 0; i < n; i++ {
			want += float64(a.F[i]) * float64(b.F[i])
		}
		if !approxEq(float32(got), float32(want), 1e-3) {
			return fmt.Errorf("dot = %g, want %g", got, want)
		}
		return nil
	},
})

// --- 4. reduction: SHOC-style tree sum ---

var reductionProg = register(&Program{
	Name:  "reduction",
	Suite: "shoc",
	Source: `
kernel void reduction(global const float* in, global float* partial, local float* tmp, int n) {
	int gid = get_global_id(0);
	int lid = get_local_id(0);
	tmp[lid] = gid < n ? in[gid] : 0.0;
	barrier(1);
	for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {
		if (lid < s) {
			tmp[lid] += tmp[lid + s];
		}
		barrier(1);
	}
	if (lid == 0) {
		partial[get_group_id(0)] = tmp[0];
	}
}`,
	Kernel:      "reduction",
	LocalSize:   64,
	Sizes:       geomSizes(sizeLabels, 16384),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		in := exec.NewFloatBuffer(n)
		fillUniform(in, rng, 0, 1)
		partial := exec.NewFloatBuffer(n / 64)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(in), exec.BufArg(partial), exec.LocalArg(64), exec.IntArg(n)},
			ND:   exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		in, partial := inst.Args[0].Buf, inst.Args[1].Buf
		var got, want float64
		for _, p := range partial.F {
			got += float64(p)
		}
		for i := 0; i < n; i++ {
			want += float64(in.F[i])
		}
		if !approxEq(float32(got), float32(want), 1e-3) {
			return fmt.Errorf("sum = %g, want %g", got, want)
		}
		return nil
	},
})

// --- 5. prefixsum: per-block Hillis-Steele scan (vendor sample) ---

var prefixsumProg = register(&Program{
	Name:  "prefixsum",
	Suite: "vendor",
	Source: `
kernel void prefixsum(global const float* in, global float* out, global float* sums,
                      local float* tmp, int n) {
	int gid = get_global_id(0);
	int lid = get_local_id(0);
	int lsz = get_local_size(0);
	tmp[lid] = gid < n ? in[gid] : 0.0;
	barrier(1);
	for (int off = 1; off < lsz; off = off * 2) {
		float v = 0.0;
		if (lid >= off) {
			v = tmp[lid - off];
		}
		barrier(1);
		tmp[lid] += v;
		barrier(1);
	}
	if (gid < n) {
		out[gid] = tmp[lid];
	}
	if (lid == lsz - 1) {
		sums[get_group_id(0)] = tmp[lid];
	}
}`,
	Kernel:      "prefixsum",
	LocalSize:   64,
	Sizes:       geomSizes(sizeLabels, 16384),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		in := exec.NewFloatBuffer(n)
		fillUniform(in, rng, 0, 1)
		out := exec.NewFloatBuffer(n)
		sums := exec.NewFloatBuffer(n / 64)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.BufArg(sums),
				exec.LocalArg(64), exec.IntArg(n)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		in, out, sums := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		const blk = 64
		for g := 0; g < n/blk; g++ {
			var acc float64
			for l := 0; l < blk; l++ {
				i := g*blk + l
				acc += float64(in.F[i])
				if !approxEq(out.F[i], float32(acc), 1e-3) {
					return fmt.Errorf("scan[%d] = %g, want %g", i, out.F[i], acc)
				}
			}
			if !approxEq(sums.F[g], float32(acc), 1e-3) {
				return fmt.Errorf("blocksum[%d] = %g, want %g", g, sums.F[g], acc)
			}
		}
		return nil
	},
})

// --- 6. histogram: privatized per-item binning (vendor sample) ---
//
// Scatter-free formulation: each work item counts the values of its own
// 16-element chunk into each of 16 bins (branch-heavy, integer-heavy) and
// writes a private count row; the host merges rows. This keeps the kernel
// race-free under any partitioning, as a multi-device histogram must be.

const histChunk = 16
const histBins = 16

var histogramProg = register(&Program{
	Name:  "histogram",
	Suite: "vendor",
	Source: `
kernel void histogram(global const float* data, global int* counts, int n, int k, int bins) {
	int i = get_global_id(0);
	if (i < n) {
		int base = i * k;
		for (int b = 0; b < bins; b++) {
			int c = 0;
			for (int j = 0; j < k; j++) {
				int v = (int)(data[base + j] * (float)bins);
				v = clamp(v, 0, bins - 1);
				if (v == b) {
					c++;
				}
			}
			counts[i * bins + b] = c;
		}
	}
}`,
	Kernel:      "histogram",
	Sizes:       geomSizes(sizeLabels, 4096),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		data := exec.NewFloatBuffer(n * histChunk)
		fillUniform(data, rng, 0, 1)
		counts := exec.NewIntBuffer(n * histBins)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(data), exec.BufArg(counts),
				exec.IntArg(n), exec.IntArg(histChunk), exec.IntArg(histBins)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		data, counts := inst.Args[0].Buf, inst.Args[1].Buf
		merged := make([]int64, histBins)
		for i := 0; i < n*histBins; i++ {
			merged[i%histBins] += int64(counts.I[i])
		}
		want := make([]int64, histBins)
		for i := 0; i < n*histChunk; i++ {
			v := int(data.F[i] * histBins)
			if v < 0 {
				v = 0
			}
			if v > histBins-1 {
				v = histBins - 1
			}
			want[v]++
		}
		for b := range want {
			if merged[b] != want[b] {
				return fmt.Errorf("bin %d = %d, want %d", b, merged[b], want[b])
			}
		}
		return nil
	},
})
