package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exec"
)

// --- 17. blackscholes: transcendental-heavy option pricing (vendor sample) ---

var blackscholesProg = register(&Program{
	Name:  "blackscholes",
	Suite: "vendor",
	Source: `
float cnd(float d) {
	float k = 1.0 / (1.0 + 0.2316419 * fabs(d));
	float poly = k * (0.31938153 + k * (-0.356563782 + k * (1.781477937 +
		k * (-1.821255978 + k * 1.330274429))));
	float v = 1.0 - 0.39894228 * exp(-0.5 * d * d) * poly;
	if (d < 0.0) {
		return 1.0 - v;
	}
	return v;
}

kernel void blackscholes(global const float* price, global const float* strike,
                         global const float* years, global float* call, global float* put, int n) {
	int i = get_global_id(0);
	if (i < n) {
		float s = price[i];
		float k = strike[i];
		float t = years[i];
		float r = 0.02;
		float v = 0.30;
		float sq = v * sqrt(t);
		float d1 = (log(s / k) + (r + 0.5 * v * v) * t) / sq;
		float d2 = d1 - sq;
		float expRT = exp(-r * t);
		float c = s * cnd(d1) - k * expRT * cnd(d2);
		call[i] = c;
		put[i] = c + k * expRT - s;
	}
}`,
	Kernel:      "blackscholes",
	Sizes:       geomSizes(sizeLabels, 8192),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		price, strike, years := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(price, rng, 5, 30)
		fillUniform(strike, rng, 1, 100)
		fillUniform(years, rng, 0.25, 10)
		call, put := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(price), exec.BufArg(strike), exec.BufArg(years),
				exec.BufArg(call), exec.BufArg(put), exec.IntArg(n)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		price, strike, years := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		call, put := inst.Args[3].Buf, inst.Args[4].Buf
		cnd := func(d float64) float64 {
			k := 1.0 / (1.0 + 0.2316419*math.Abs(d))
			poly := k * (0.31938153 + k*(-0.356563782+k*(1.781477937+
				k*(-1.821255978+k*1.330274429))))
			v := 1.0 - 0.39894228*math.Exp(-0.5*d*d)*poly
			if d < 0 {
				return 1.0 - v
			}
			return v
		}
		for i := 0; i < n; i++ {
			s, k, t := float64(price.F[i]), float64(strike.F[i]), float64(years.F[i])
			r, v := 0.02, 0.30
			sq := v * math.Sqrt(t)
			d1 := (math.Log(s/k) + (r+0.5*v*v)*t) / sq
			d2 := d1 - sq
			expRT := math.Exp(-r * t)
			c := s*cnd(d1) - k*expRT*cnd(d2)
			if !approxEq(call.F[i], float32(c), 1e-3) {
				return fmt.Errorf("call[%d] = %g, want %g", i, call.F[i], c)
			}
			if !approxEq(put.F[i], float32(c+k*expRT-s), 1e-3) {
				return fmt.Errorf("put[%d] = %g, want %g", i, put.F[i], c+k*expRT-s)
			}
		}
		return nil
	},
})

// --- 18. nbody: all-pairs gravitational forces (vendor sample) ---

var nbodyProg = register(&Program{
	Name:  "nbody",
	Suite: "vendor",
	Source: `
kernel void nbody(global const float* x, global const float* y, global const float* m,
                  global float* ax, global float* ay, int n) {
	int i = get_global_id(0);
	if (i < n) {
		float xi = x[i];
		float yi = y[i];
		float fx = 0.0;
		float fy = 0.0;
		for (int j = 0; j < n; j++) {
			float dx = x[j] - xi;
			float dy = y[j] - yi;
			float r2 = dx * dx + dy * dy + 0.0001;
			float inv = rsqrt(r2);
			float f = m[j] * inv * inv * inv;
			fx += f * dx;
			fy += f * dy;
		}
		ax[i] = fx;
		ay[i] = fy;
	}
}`,
	Kernel:    "nbody",
	LocalSize: 64,
	Sizes: []Size{
		{"S0", 128}, {"S1", 256}, {"S2", 512}, {"S3", 768}, {"S4", 1024}, {"S5", 1536},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		x, y, m := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(x, rng, -1, 1)
		fillUniform(y, rng, -1, 1)
		fillUniform(m, rng, 0.1, 1)
		ax, ay := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(x), exec.BufArg(y), exec.BufArg(m),
				exec.BufArg(ax), exec.BufArg(ay), exec.IntArg(n)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		x, y, m := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		ax, ay := inst.Args[3].Buf, inst.Args[4].Buf
		for i := 0; i < n; i++ {
			var fx, fy float64
			for j := 0; j < n; j++ {
				dx := float64(x.F[j]) - float64(x.F[i])
				dy := float64(y.F[j]) - float64(y.F[i])
				r2 := dx*dx + dy*dy + 0.0001
				inv := 1 / math.Sqrt(r2)
				f := float64(m.F[j]) * inv * inv * inv
				fx += f * dx
				fy += f * dy
			}
			if !approxEq(ax.F[i], float32(fx), 5e-3) || !approxEq(ay.F[i], float32(fy), 5e-3) {
				return fmt.Errorf("force[%d] = (%g,%g), want (%g,%g)", i, ax.F[i], ay.F[i], fx, fy)
			}
		}
		return nil
	},
})

// --- 19. mandelbrot: divergent escape-time iteration (vendor sample) ---

const mandelMaxIter = 32

var mandelbrotProg = register(&Program{
	Name:  "mandelbrot",
	Suite: "vendor",
	Source: `
kernel void mandelbrot(global int* out, int w, int h, int maxIter) {
	int x = get_global_id(0);
	int y = get_global_id(1);
	if (x < w && y < h) {
		float cr = (float)x / (float)w * 3.5 - 2.5;
		float ci = (float)y / (float)h * 2.0 - 1.0;
		float zr = 0.0;
		float zi = 0.0;
		int it = 0;
		while (it < maxIter && zr * zr + zi * zi < 4.0) {
			float nzr = zr * zr - zi * zi + cr;
			zi = 2.0 * zr * zi + ci;
			zr = nzr;
			it++;
		}
		out[y * w + x] = it;
	}
}`,
	Kernel: "mandelbrot",
	Sizes: []Size{
		{"S0", 64}, {"S1", 128}, {"S2", 192}, {"S3", 256}, {"S4", 384}, {"S5", 512},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		out := exec.NewIntBuffer(n * n)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(out), exec.IntArg(n), exec.IntArg(n), exec.IntArg(mandelMaxIter)},
			ND:   exec.ND2(n, n),
		}
	},
	verify: func(inst *Instance, n int) error {
		out := inst.Args[0].Buf
		want := func(x, y int) int32 {
			cr := float64(float32(x)/float32(n)*3.5 - 2.5)
			ci := float64(float32(y)/float32(n)*2.0 - 1.0)
			zr, zi := 0.0, 0.0
			var it int32
			for it < mandelMaxIter && zr*zr+zi*zi < 4.0 {
				zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
				it++
			}
			return it
		}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				w := want(x, y)
				g := out.I[y*n+x]
				// float32 kernel vs float64 reference may disagree by one
				// iteration near the boundary.
				if g != w && g != w-1 && g != w+1 {
					return fmt.Errorf("iter[%d,%d] = %d, want %d", x, y, g, w)
				}
			}
		}
		return nil
	},
})

// --- 20. kmeans: cluster assignment step (Rodinia) ---

const kmeansK = 8

var kmeansProg = register(&Program{
	Name:  "kmeans",
	Suite: "rodinia",
	Source: `
kernel void kmeans(global const float* px, global const float* py,
                   global const float* cx, global const float* cy,
                   global int* assign, int n, int k) {
	int i = get_global_id(0);
	if (i < n) {
		float bestd = 1e30;
		int best = 0;
		for (int c = 0; c < k; c++) {
			float dx = px[i] - cx[c];
			float dy = py[i] - cy[c];
			float d = dx * dx + dy * dy;
			if (d < bestd) {
				bestd = d;
				best = c;
			}
		}
		assign[i] = best;
	}
}`,
	Kernel:      "kmeans",
	Iterations:  10,
	Sizes:       geomSizes(sizeLabels, 8192),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		px, py := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(px, rng, -10, 10)
		fillUniform(py, rng, -10, 10)
		cx, cy := exec.NewFloatBuffer(kmeansK), exec.NewFloatBuffer(kmeansK)
		fillUniform(cx, rng, -10, 10)
		fillUniform(cy, rng, -10, 10)
		assign := exec.NewIntBuffer(n)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(px), exec.BufArg(py), exec.BufArg(cx), exec.BufArg(cy),
				exec.BufArg(assign), exec.IntArg(n), exec.IntArg(kmeansK)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		px, py, cx, cy := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf, inst.Args[3].Buf
		assign := inst.Args[4].Buf
		want := make([]int32, n)
		for i := 0; i < n; i++ {
			bestd := math.Inf(1)
			var best int32
			for c := 0; c < kmeansK; c++ {
				dx := float64(px.F[i]) - float64(cx.F[c])
				dy := float64(py.F[i]) - float64(cy.F[c])
				if d := dx*dx + dy*dy; d < bestd {
					bestd, best = d, int32(c)
				}
			}
			want[i] = best
		}
		return checkInts("assign", assign.I, want)
	},
})

// --- 21. md: Lennard-Jones forces over neighbor lists (SHOC MD) ---

const mdNeighbors = 16

var mdProg = register(&Program{
	Name:  "md",
	Suite: "shoc",
	Source: `
kernel void md(global const float* pos, global const int* neigh, global float* force, int n, int nn) {
	int i = get_global_id(0);
	if (i < n) {
		float xi = pos[i * 3];
		float yi = pos[i * 3 + 1];
		float zi = pos[i * 3 + 2];
		float fx = 0.0;
		float fy = 0.0;
		float fz = 0.0;
		for (int j = 0; j < nn; j++) {
			int nb = neigh[i * nn + j];
			float dx = pos[nb * 3] - xi;
			float dy = pos[nb * 3 + 1] - yi;
			float dz = pos[nb * 3 + 2] - zi;
			float r2 = dx * dx + dy * dy + dz * dz + 0.01;
			float inv2 = 1.0 / r2;
			float inv6 = inv2 * inv2 * inv2;
			float f = inv6 * (inv6 - 0.5) * inv2;
			fx += f * dx;
			fy += f * dy;
			fz += f * dz;
		}
		force[i * 3] = fx;
		force[i * 3 + 1] = fy;
		force[i * 3 + 2] = fz;
	}
}`,
	Kernel:      "md",
	Sizes:       geomSizes(sizeLabels, 1024),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		pos := exec.NewFloatBuffer(n * 3)
		fillUniform(pos, rng, -2, 2)
		neigh := exec.NewIntBuffer(n * mdNeighbors)
		for i := range neigh.I {
			neigh.I[i] = int32(rng.Intn(n))
		}
		force := exec.NewFloatBuffer(n * 3)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(pos), exec.BufArg(neigh), exec.BufArg(force),
				exec.IntArg(n), exec.IntArg(mdNeighbors)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		pos, neigh, force := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		for i := 0; i < n; i++ {
			var fx, fy, fz float64
			xi, yi, zi := float64(pos.F[i*3]), float64(pos.F[i*3+1]), float64(pos.F[i*3+2])
			for j := 0; j < mdNeighbors; j++ {
				nb := neigh.I[i*mdNeighbors+j]
				dx := float64(pos.F[nb*3]) - xi
				dy := float64(pos.F[nb*3+1]) - yi
				dz := float64(pos.F[nb*3+2]) - zi
				r2 := dx*dx + dy*dy + dz*dz + 0.01
				inv2 := 1 / r2
				inv6 := inv2 * inv2 * inv2
				f := inv6 * (inv6 - 0.5) * inv2
				fx += f * dx
				fy += f * dy
				fz += f * dz
			}
			if !approxEq(force.F[i*3], float32(fx), 1e-2) ||
				!approxEq(force.F[i*3+1], float32(fy), 1e-2) ||
				!approxEq(force.F[i*3+2], float32(fz), 1e-2) {
				return fmt.Errorf("force[%d] mismatch", i)
			}
		}
		return nil
	},
})

// --- 22. bfs: pull-style breadth-first level expansion (Rodinia) ---

const bfsInDegree = 8

var bfsProg = register(&Program{
	Name:  "bfs",
	Suite: "rodinia",
	Source: `
kernel void bfs(global const int* rowptr, global const int* inedge, global const int* dist,
                global int* newdist, int n, int level) {
	int i = get_global_id(0);
	if (i < n) {
		int d = dist[i];
		if (d == -1) {
			int end = rowptr[i + 1];
			for (int e = rowptr[i]; e < end; e++) {
				int nb = inedge[e];
				if (dist[nb] == level) {
					d = level + 1;
				}
			}
		}
		newdist[i] = d;
	}
}`,
	Kernel:      "bfs",
	Iterations:  8,
	Sizes:       geomSizes(sizeLabels, 4096),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		rowptr := exec.NewIntBuffer(n + 1)
		inedge := exec.NewIntBuffer(n * bfsInDegree)
		for i := 0; i <= n; i++ {
			rowptr.I[i] = int32(i * bfsInDegree)
		}
		for i := range inedge.I {
			inedge.I[i] = int32(rng.Intn(n))
		}
		dist := exec.NewIntBuffer(n)
		for i := range dist.I {
			dist.I[i] = -1
		}
		// Seed a small frontier at level 0.
		for s := 0; s < 8; s++ {
			dist.I[rng.Intn(n)] = 0
		}
		newdist := exec.NewIntBuffer(n)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(rowptr), exec.BufArg(inedge), exec.BufArg(dist),
				exec.BufArg(newdist), exec.IntArg(n), exec.IntArg(0)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		rowptr, inedge, dist, newdist := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf, inst.Args[3].Buf
		for i := 0; i < n; i++ {
			want := dist.I[i]
			if want == -1 {
				for e := rowptr.I[i]; e < rowptr.I[i+1]; e++ {
					if dist.I[inedge.I[e]] == 0 {
						want = 1
					}
				}
			}
			if newdist.I[i] != want {
				return fmt.Errorf("newdist[%d] = %d, want %d", i, newdist.I[i], want)
			}
		}
		return nil
	},
})

// --- 23. bitonicsort: one compare-exchange stage (vendor sample) ---

var bitonicProg = register(&Program{
	Name:  "bitonicsort",
	Suite: "vendor",
	Source: `
kernel void bitonic(global float* a, int inc, int dir, int n) {
	int i = get_global_id(0);
	int lo = i & (inc - 1);
	int j = (i << 1) - lo;
	int k = j + inc;
	if (k < n) {
		bool up = (j & dir) == 0;
		float x = a[j];
		float y = a[k];
		if ((x > y) == up) {
			a[j] = y;
			a[k] = x;
		}
	}
}`,
	Kernel:      "bitonic",
	Iterations:  100, // ~log^2(n) compare-exchange stages per full sort
	Sizes:       geomSizes(sizeLabels, 16384),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		a := exec.NewFloatBuffer(n)
		fillUniform(a, rng, 0, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(a), exec.IntArg(4), exec.IntArg(8), exec.IntArg(n)},
			ND:   exec.ND1(n / 2),
			Extra: map[string]*exec.Buffer{
				"a0": a.Clone(),
			},
		}
	},
	verify: func(inst *Instance, n int) error {
		a, a0 := inst.Args[0].Buf, inst.Extra["a0"]
		inc, dir := 4, 8
		want := append([]float32(nil), a0.F...)
		for i := 0; i < n/2; i++ {
			lo := i & (inc - 1)
			j := (i << 1) - lo
			k := j + inc
			if k < n {
				up := (j & dir) == 0
				if (want[j] > want[k]) == up {
					want[j], want[k] = want[k], want[j]
				}
			}
		}
		return checkFloats("a", a.F, want, 0)
	},
})
